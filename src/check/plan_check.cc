#include "check/plan_check.h"

#include <algorithm>
#include <cmath>

namespace sim {

namespace {

void AddPlanError(CheckReport* report, std::string invariant,
                  std::string object, std::string message) {
  report->errors.push_back(CheckError{CheckLayer::kPlan, std::move(invariant),
                                      std::move(object), kInvalidSurrogate,
                                      std::move(message)});
}

// Collects every operator (depth-first, children before self is not
// required) and the binding-source node ids in iteration order (outer
// chains are emitted before the inner source they feed).
void Walk(const PhysicalOperator* op, std::vector<const PhysicalOperator*>* all,
          std::vector<int>* source_nodes, CheckReport* report) {
  all->push_back(op);
  std::vector<const PhysicalOperator*> kids = op->Children();
  for (const PhysicalOperator* kid : kids) {
    if (kid == nullptr) {
      AddPlanError(report, "plan-missing-operator", op->Describe(),
                   "operator reports a null child");
      continue;
    }
    Walk(kid, all, source_nodes, report);
  }
  if (const auto* src = dynamic_cast<const BindingSource*>(op)) {
    source_nodes->push_back(src->node());
  }
}

bool IsLoopOperator(const PhysicalOperator* op) {
  return dynamic_cast<const NestedLoop*>(op) != nullptr ||
         dynamic_cast<const BindingSource*>(op) != nullptr ||
         dynamic_cast<const OnceOp*>(op) != nullptr;
}

}  // namespace

void ValidatePlan(const PhysicalPlan& plan, const QueryTree& qt,
                  CheckReport* report) {
  if (plan.root == nullptr) {
    AddPlanError(report, "plan-missing-operator", "root",
                 "physical plan has no root operator");
    return;
  }

  std::vector<const PhysicalOperator*> all;
  std::vector<int> source_nodes;
  Walk(plan.root.get(), &all, &source_nodes, report);

  // Estimates must be sane numbers everywhere before shape analysis — the
  // optimizer compares them, EXPLAIN prints them.
  for (const PhysicalOperator* op : all) {
    if (!std::isfinite(op->est_rows) || op->est_rows < 0) {
      AddPlanError(report, "plan-estimate-invalid", op->Describe(),
                   "estimated rows is negative or not finite");
    }
  }

  // Row-operator stack: optional Limit, Distinct, Sort — in that order,
  // each at most once — then exactly one Project over exactly one
  // Filter/Type2Exists over the loop chain.
  const PhysicalOperator* op = plan.root.get();
  int stage = 0;  // 0: above Limit, 1: above Distinct, 2: above Sort
  while (true) {
    int this_stage;
    if (dynamic_cast<const LimitOp*>(op) != nullptr) {
      this_stage = 1;
    } else if (dynamic_cast<const Distinct*>(op) != nullptr) {
      this_stage = 2;
    } else if (dynamic_cast<const SortOp*>(op) != nullptr) {
      this_stage = 3;
    } else {
      break;
    }
    if (this_stage < stage + 1) {
      AddPlanError(report, "plan-shape-invalid", op->Describe(),
                   "row operators out of [Limit][Distinct][Sort] order");
    }
    stage = this_stage;
    std::vector<const PhysicalOperator*> kids = op->Children();
    if (kids.size() != 1 || kids[0] == nullptr) return;  // already reported
    op = kids[0];
  }

  const auto* project = dynamic_cast<const Project*>(op);
  if (project == nullptr) {
    AddPlanError(report, "plan-shape-invalid", op->Describe(),
                 "expected Project under the row-operator stack");
    return;
  }
  size_t projects =
      static_cast<size_t>(std::count_if(all.begin(), all.end(),
                                        [](const PhysicalOperator* o) {
                                          return dynamic_cast<const Project*>(
                                                     o) != nullptr;
                                        }));
  if (projects != 1) {
    AddPlanError(report, "plan-shape-invalid", "Project",
                 "plan holds " + std::to_string(projects) +
                     " Project operators; exactly one expected");
  }

  std::vector<const PhysicalOperator*> kids = project->Children();
  if (kids.size() != 1 || kids[0] == nullptr) return;
  const auto* filter = dynamic_cast<const Filter*>(kids[0]);
  if (filter == nullptr) {
    AddPlanError(report, "plan-shape-invalid", kids[0]->Describe(),
                 "expected Filter/Type2Exists under Project");
    return;
  }

  // Below the filter: only loop-nest operators.
  kids = filter->Children();
  if (kids.size() != 1 || kids[0] == nullptr) return;
  std::vector<const PhysicalOperator*> loop_ops;
  std::vector<int> dummy;
  Walk(kids[0], &loop_ops, &dummy, report);
  for (const PhysicalOperator* lop : loop_ops) {
    if (!IsLoopOperator(lop)) {
      AddPlanError(report, "plan-shape-invalid", lop->Describe(),
                   "row operator inside the loop nest");
    }
  }

  // Binding sources: valid node ids, no node bound twice, iteration order
  // agreeing with the plan's declared loop_nodes.
  std::set<int> seen_nodes;
  for (int node : source_nodes) {
    if (node < 0 || static_cast<size_t>(node) >= qt.nodes.size()) {
      AddPlanError(report, "plan-node-invalid", "node " + std::to_string(node),
                   "binding source names no QueryTree node");
    } else if (!seen_nodes.insert(node).second) {
      AddPlanError(report, "plan-node-duplicate",
                   "node " + std::to_string(node),
                   "two binding sources bind the same QueryTree node");
    }
  }
  if (source_nodes != plan.loop_nodes) {
    std::string got;
    for (int node : source_nodes) {
      if (!got.empty()) got += ",";
      got += std::to_string(node);
    }
    std::string want;
    for (int node : plan.loop_nodes) {
      if (!want.empty()) want += ",";
      want += std::to_string(node);
    }
    AddPlanError(report, "plan-loop-order-mismatch", "loop nest",
                 "binding sources iterate [" + got +
                     "] but the plan declares [" + want + "]");
  }
}

Status ValidatePlanOrError(const PhysicalPlan& plan, const QueryTree& qt) {
  CheckReport report;
  ValidatePlan(plan, qt, &report);
  if (report.clean()) return Status::Ok();
  return Status::Internal("physical plan failed validation: " +
                          report.errors.front().ToString());
}

Status ProtocolCheck::Open(ExecContext& cx) {
  if (state_ == State::kOpen) {
    return Status::Internal("iterator protocol: Open on an operator that is "
                            "already open");
  }
  if (input_ == nullptr) {
    return Status::Internal("iterator protocol: no wrapped operator");
  }
  SIM_RETURN_IF_ERROR(input_->Open(cx));
  state_ = State::kOpen;
  return Status::Ok();
}

Result<bool> ProtocolCheck::DoNext(ExecContext& cx, Row* out) {
  if (state_ == State::kClosed) {
    return Status::Internal("iterator protocol: Next before Open");
  }
  if (state_ == State::kExhausted) {
    return Status::Internal("iterator protocol: Next after exhaustion");
  }
  SIM_ASSIGN_OR_RETURN(bool has, input_->Next(cx, out));
  if (!has) state_ = State::kExhausted;
  return has;
}

Status ProtocolCheck::Close(ExecContext& cx) {
  if (state_ == State::kClosed) {
    return Status::Internal("iterator protocol: Close on an operator that is "
                            "not open");
  }
  state_ = State::kClosed;
  return input_->Close(cx);
}

std::vector<const PhysicalOperator*> ProtocolCheck::Children() const {
  return {input_.get()};
}

}  // namespace sim
