#ifndef SIMDB_CHECK_REPAIR_H_
#define SIMDB_CHECK_REPAIR_H_

// REPAIR DATABASE: the salvage half of the detect → contain → repair cycle
// (DESIGN.md §13). The quarantine registry has fenced off pages whose
// bytes are gone; everything else on disk is still good. The repairer's
// job is to turn a degraded database back into one whose full three-layer
// audit (check/check.h) comes back clean, losing exactly the records that
// lived on the dead pages — never a whole extent, never the database.
//
// Strategy: base records are authoritative, everything else is derived.
//
//  1. HARVEST (while still degraded): iterate every storage unit's heap
//     and the shared MV file — the iterators skip quarantined pages — and
//     collect every decodable record. Undecodable or mis-shapen records on
//     *healthy* pages (logical corruption: a record damaged before its
//     page checksum was stamped) are scheduled for deletion. EVA pairs are
//     harvested from the relationship structures, probing the inverse
//     direction for owners whose forward probe died with the bad pages —
//     §3.2's mandatory inverses are exactly what makes one-sided loss
//     recoverable.
//  2. RESOLVE (pure in-memory): re-derive each entity's effective role
//     set (ancestor-closed, justified record-for-record across units);
//     drop entities whose base record is gone; null fields that fail
//     their type or UNIQUE constraint; prune MV values and EVA pairs that
//     violate DISTINCT / MAX / single-valued cardinality or reference
//     dropped entities; then cascade REQUIRED violations to a fixpoint.
//  3. APPLY: reformat the quarantined pages as fresh empty slotted pages
//     (via WAL page images, so a crash mid-repair discards the salvage
//     while the committed quarantine payload keeps the database degraded
//     and re-repairable), delete/rewrite heap records, and rebuild every
//     derived structure — primary indexes, secondary indexes, the MV
//     index, all EVA structures, extent and pair counters — from the kept
//     records.
//
// The repairer is idempotent: run against an already-clean database it
// changes nothing; interrupted and re-run it converges to the same state.
// Callers (Database::Repair) are responsible for the durability epilogue:
// flush, persist the now-empty quarantine registry, snapshot, commit and
// checkpoint, then re-audit.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "luc/mapper.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/pager.h"
#include "storage/quarantine.h"

namespace sim {

class WriteAheadLog;

class Repairer {
 public:
  struct Report {
    uint64_t pages_reformatted = 0;
    uint64_t records_dropped = 0;   // physical heap records deleted
    uint64_t entities_dropped = 0;  // entities lost with their base record
    uint64_t fields_nulled = 0;     // constraint-violating DVA values
    uint64_t mv_values_dropped = 0;
    uint64_t eva_pairs_dropped = 0;
    uint64_t structures_rebuilt = 0;  // primary/secondary/MV/EVA structures
    // Human-readable salvage log: one line per dropped entity / record.
    std::vector<std::string> manifest;
    bool lossless() const {
      return records_dropped == 0 && entities_dropped == 0 &&
             fields_nulled == 0 && mv_values_dropped == 0 &&
             eva_pairs_dropped == 0;
    }
    std::string ToString() const;
  };

  // `pager` is the database's I/O pager (used to reformat pages when no
  // WAL is present — in-memory databases); `wal` may be null.
  Repairer(LucMapper* mapper, BufferPool* pool, Pager* pager,
           WriteAheadLog* wal, QuarantineRegistry* quarantine)
      : mapper_(mapper),
        pool_(pool),
        pager_(pager),
        wal_(wal),
        quarantine_(quarantine) {}

  // Runs the full salvage. Non-OK only on infrastructure failure (I/O on
  // healthy pages, WAL append); data damage is a Report entry, never an
  // error. On success the quarantine registry is empty and every derived
  // structure matches the kept records.
  Status Run(Report* out);

 private:
  struct RecInfo {
    RecordId rid;
    std::set<uint16_t> roles;
    std::vector<Value> fields;
    bool drop = false;
    bool dirty = false;
  };
  struct MvRec {
    RecordId rid;
    uint32_t mv_id = 0;
    SurrogateId owner = kInvalidSurrogate;
    Value value;
    bool drop = false;
  };
  // Pair multiset per EVA: normalized (min,max) for symmetric EVAs.
  using PairCounts = std::map<std::pair<SurrogateId, SurrogateId>, uint64_t>;

  Status HarvestUnits(Report* out);
  Status HarvestMvFile(Report* out);
  Status HarvestPairs(Report* out);
  Status ResolveEntities(Report* out);
  Status ResolveFields(Report* out);

  Status ResolvePairs(Report* out);
  Status EnforceRequired(Report* out);
  // Reconciles foreign-key-mapped EVA fields (in memory) with the final
  // pair sets, so Apply writes fields and structures that agree.
  Status FkWriteBack(Report* out);
  Status Apply(Report* out);

  // Marks a heap record for physical deletion (deduped across the shared
  // clustered pages two units may both iterate).
  void Junk(HeapFile* file, RecordId rid);
  void DropEntity(SurrogateId s, const std::string& why, Report* out);
  // Effective-role membership test used for EVA endpoints and MV owners.
  bool HasEffectiveRole(SurrogateId s, uint16_t code) const;
  // In-memory location of the stored field of (cls.attr) on s; rec is
  // null when the entity has no kept record carrying that field.
  struct FieldLoc {
    RecInfo* rec = nullptr;
    int field = -1;
  };
  FieldLoc Locate(const std::string& cls, const std::string& attr,
                  SurrogateId s);
  // Total surviving pair count involving `s` on the given side of eva `e`.
  uint64_t PairCountFor(int e, bool side_a, SurrogateId s) const;

  LucMapper* const mapper_;
  BufferPool* const pool_;
  Pager* const pager_;
  WriteAheadLog* const wal_;
  QuarantineRegistry* const quarantine_;

  // Harvested state. recs_[u] maps surrogate -> record info for unit u.
  std::vector<std::map<SurrogateId, RecInfo>> recs_;
  std::vector<std::pair<HeapFile*, RecordId>> junk_;
  std::set<uint64_t> junk_seen_;
  std::vector<MvRec> mv_recs_;
  std::vector<PairCounts> pairs_;  // parallel to phys().evas()
  // Lowercased "class.attr" -> (eva index, attr sits on side a).
  std::map<std::string, std::pair<int, bool>> eva_of_attr_;
  // Resolved state: effective (ancestor-closed) role sets of kept
  // entities; entities dropped with reasons in the manifest.
  std::map<SurrogateId, std::set<uint16_t>> eff_roles_;
  std::set<SurrogateId> dropped_;
  SurrogateId max_surrogate_ = 0;
};

}  // namespace sim

#endif  // SIMDB_CHECK_REPAIR_H_
