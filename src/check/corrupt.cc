#include "check/corrupt.h"

#include "luc/luc.h"
#include "storage/heap_file.h"
#include "storage/page.h"
#include "storage/record_codec.h"

namespace sim {

Status CorruptionInjector::FlipRecordByte(const std::string& cls,
                                          SurrogateId s) {
  SIM_ASSIGN_OR_RETURN(int u, mapper_->phys_->UnitOf(cls));
  UnitStore* unit = mapper_->units_[u].get();
  SIM_ASSIGN_OR_RETURN(RecordId rid, unit->FindRid(s));
  SIM_ASSIGN_OR_RETURN(PageHandle h, mapper_->pool_->Fetch(rid.page));
  SlottedPage page(h.data());
  std::string_view record;
  if (!page.Get(rid.slot, &record)) {
    return Status::Internal("record slot not found for corruption");
  }
  // Byte 4 of the wire format is the value-type tag of the first field
  // (u16 record_type | u16 field_count | u8 tag ...); flipping it makes
  // the record undecodable while PeekRecordType still succeeds.
  if (record.size() < 5) return Status::Internal("record too short to flip");
  size_t offset = static_cast<size_t>(record.data() - h.data());
  h.data()[offset + 4] ^= 0x7F;
  h.MarkDirty();
  return Status::Ok();
}

Status CorruptionInjector::DropInverseSide(const std::string& cls,
                                           const std::string& attr,
                                           SurrogateId owner,
                                           SurrogateId target) {
  SIM_ASSIGN_OR_RETURN(LucMapper::EvaSide side, mapper_->ResolveEva(cls, attr));
  const EvaPhys& eva = *side.eva;
  SurrogateId a = side.owner_is_a ? owner : target;
  SurrogateId b = side.owner_is_a ? target : owner;
  switch (eva.mapping) {
    case EvaMapping::kCommonStructure:
    case EvaMapping::kPrivateStructure: {
      RelKeyedStore* fwd = mapper_->common_fwd_.get();
      RelKeyedStore* inv = mapper_->common_inv_.get();
      if (eva.mapping == EvaMapping::kPrivateStructure) {
        auto& pair = mapper_->private_structs_.at(side.eva_idx);
        fwd = pair.first.get();
        inv = pair.second.get();
      }
      if (eva.symmetric) {
        if (a == b) return Status::Internal("self-pair has no second record");
        return fwd->Remove(eva.rel_id, b, a);
      }
      return inv->Remove(eva.rel_id, b, a);
    }
    case EvaMapping::kForeignKey: {
      if (eva.b_mv) return mapper_->fk_inv_->Remove(eva.rel_id, b, a);
      if (eva.symmetric && a != b) {
        SIM_ASSIGN_OR_RETURN(
            LucMapper::FieldRef ref,
            mapper_->Resolve(eva.class_a, eva.attr_a, true));
        return mapper_->WriteUnitField(ref.unit, b, ref.field, Value::Null(),
                                       nullptr);
      }
      SIM_ASSIGN_OR_RETURN(LucMapper::FieldRef ref,
                           mapper_->Resolve(eva.class_b, eva.attr_b, true));
      return mapper_->WriteUnitField(ref.unit, b, ref.field, Value::Null(),
                                     nullptr);
    }
  }
  return Status::Internal("unhandled EVA mapping");
}

Status CorruptionInjector::DeleteUnitRecord(const std::string& cls,
                                            SurrogateId s) {
  SIM_ASSIGN_OR_RETURN(int u, mapper_->phys_->UnitOf(cls));
  return mapper_->units_[u]->Delete(s);
}

Status CorruptionInjector::RawWriteField(const std::string& cls,
                                         const std::string& attr,
                                         SurrogateId s, const Value& v) {
  SIM_ASSIGN_OR_RETURN(LucMapper::FieldRef ref,
                       mapper_->Resolve(cls, attr, true));
  return mapper_->WriteUnitField(ref.unit, s, ref.field, v, nullptr);
}

Status CorruptionInjector::DesyncPrimaryIndex(const std::string& cls,
                                              SurrogateId s) {
  SIM_ASSIGN_OR_RETURN(int u, mapper_->phys_->UnitOf(cls));
  UnitStore* unit = mapper_->units_[u].get();
  SIM_ASSIGN_OR_RETURN(RecordId rid, unit->FindRid(s));
  uint64_t packed = PackRecordId(rid);
  SIM_RETURN_IF_ERROR(unit->primary_->Remove(0, s, packed));
  return unit->primary_->Add(0, s, packed + 1);
}

Status CorruptionInjector::RawAppendMvValue(const std::string& cls,
                                            const std::string& attr,
                                            SurrogateId s, const Value& v) {
  SIM_ASSIGN_OR_RETURN(LucMapper::FieldRef ref,
                       mapper_->Resolve(cls, attr, false));
  SIM_ASSIGN_OR_RETURN(int mv_idx,
                       mapper_->phys_->MvDvaOf(ref.owner->name,
                                               ref.attr->name));
  const MvDvaPhys& mv = mapper_->phys_->mvdvas()[mv_idx];
  if (mv.embedded) {
    SIM_ASSIGN_OR_RETURN(std::vector<Value> current,
                         mapper_->GetMvValues(s, cls, attr));
    current.push_back(v);
    return mapper_->WriteUnitField(ref.unit, s, ref.field,
                                   Value::Str(EncodeEmbeddedMv(current)),
                                   nullptr);
  }
  std::string rec = EncodeRecord(static_cast<uint16_t>(mv.id),
                                 {Value::Surrogate(s), v});
  SIM_ASSIGN_OR_RETURN(RecordId rid, mapper_->mv_file_->Insert(rec));
  return mapper_->mv_index_->Add(mv.id, s, PackRecordId(rid));
}

}  // namespace sim
