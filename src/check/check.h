#ifndef SIMDB_CHECK_CHECK_H_
#define SIMDB_CHECK_CHECK_H_

// simcheck: the semantic-invariant audit subsystem. SIM's proposition is
// that the system, not the application, maintains semantic integrity
// (paper §3): surrogates identify entities immutably (§3.1), every EVA has
// a system-maintained inverse (§3.2), subclass membership implies
// base-class membership (§3.1), and attribute options constrain stored
// data (§3.2.1). The derived structures the LUC mapper maintains to make
// that fast — inverse relationship records, subclass-unit links, secondary
// indexes, extent counters — can silently drift from the base data after a
// bug or a partial write. The InvariantChecker re-derives every invariant
// from first principles and reports each violation as a structured
// CheckError, layered so callers can audit whatever is available:
//
//   Layer 1 (catalog)  — the schema graph alone: class DAG acyclicity and
//                        single base-class ancestry (§3.1), inverse-EVA
//                        pairing symmetry (§3.2), option well-formedness
//                        (§3.2.1).
//   Layer 2 (storage)  — stored data against the catalog through the LUC
//                        mapper's structures (§5.1/§5.2): surrogate
//                        uniqueness, extent containment, record-for-record
//                        inverse agreement, option conformance, index ↔
//                        heap agreement, page checksums.
//   Layer 3 (plan)     — physical operator trees before execution; see
//                        check/plan_check.h.
//
// Entry points: Database::Audit(), the CHECK DATABASE statement, and the
// simdb_check CLI. Tests also run audits after every update statement
// (DatabaseOptions::paranoid_checks).

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "catalog/directory.h"
#include "common/query_context.h"
#include "common/status.h"
#include "common/value.h"
#include "luc/mapper.h"
#include "obs/trace.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"

namespace sim {

enum class CheckLayer { kCatalog, kStorage, kPlan };

// "catalog" / "storage" / "plan".
const char* CheckLayerName(CheckLayer layer);

// One audit finding. `invariant` is a stable kebab-case code tests assert
// on; `object` names the schema object or storage structure (class, LUC,
// index, page); `surrogate` is the entity involved (kInvalidSurrogate when
// the finding is not entity-specific).
struct CheckError {
  CheckLayer layer = CheckLayer::kCatalog;
  std::string invariant;
  std::string object;
  SurrogateId surrogate = kInvalidSurrogate;
  std::string message;

  // "[storage] eva-inverse-record-missing student.advisor s=7: ...".
  std::string ToString() const;
};

struct CheckReport {
  std::vector<CheckError> errors;

  // Work counters (what a clean audit actually looked at).
  uint64_t entities_checked = 0;
  uint64_t records_checked = 0;
  uint64_t eva_pairs_checked = 0;
  uint64_t index_entries_checked = 0;
  uint64_t pages_checked = 0;

  bool clean() const { return errors.empty(); }
  bool HasInvariant(const std::string& code) const;
  // Findings of one layer.
  size_t CountLayer(CheckLayer layer) const;
  // Multi-line human-readable report.
  std::string ToString() const;
};

// Audits a database bottom-up. The catalog is always available; the
// storage layers need a live LUC mapper. Crash recovery rehydrates the
// mapper from the logged snapshot (DESIGN.md §7), so a reopened database
// audits at full depth; only a database that never created a mapper (no
// data operations yet) degrades to the catalog layer. All parameters are
// borrowed and may be null except `dir`.
class InvariantChecker {
 public:
  InvariantChecker(const DirectoryManager* dir, LucMapper* mapper,
                   BufferPool* pool, Pager* pager)
      : dir_(dir), mapper_(mapper), pool_(pool), pager_(pager) {}

  // Optional resource governor: the entity / index / page scan loops
  // check it, so a deadline or cancellation aborts a long audit with
  // kDeadlineExceeded / kCancelled (an infrastructure status, not a
  // finding). Borrowed; may be null.
  void set_query_context(QueryContext* qctx) { qctx_ = qctx; }

  // Optional trace log: AuditAll then records one span per layer
  // (audit:catalog / audit:storage / audit:pages) with its finding
  // count, under statement `stmt`. Borrowed; may be null.
  void set_trace(obs::TraceLog* trace, uint64_t stmt) {
    trace_ = trace;
    trace_stmt_ = stmt;
  }

  // Runs every applicable layer and returns the combined report. Only
  // infrastructure failures (I/O errors while auditing, a tripped
  // governor) surface as a non-OK status; invariant violations are
  // reported as findings.
  Result<CheckReport> AuditAll();

  // Individual layers, for targeted tests.
  Status AuditCatalog(CheckReport* report);
  Status AuditStorage(CheckReport* report);
  Status AuditPages(CheckReport* report);

 private:
  // --- layer 1 ---
  void CheckClassGraph(CheckReport* report);
  void CheckInverseSymmetry(CheckReport* report);
  void CheckOptionWellFormedness(CheckReport* report);

  // --- layer 2 ---
  Status AuditUnits(CheckReport* report);
  Status AuditEntity(SurrogateId s, const std::set<uint16_t>& roles,
                     CheckReport* report);
  Status AuditEvaSide(SurrogateId s, const std::string& cls,
                      const AttributeDef& attr, CheckReport* report);
  Status AuditSecondaryIndexes(CheckReport* report);
  Status AuditMvFile(CheckReport* report);

  void AddError(CheckReport* report, CheckLayer layer, std::string invariant,
                std::string object, SurrogateId surrogate, std::string message);

  // Governor check for the scan loops; OK when no governor is installed.
  Status CheckGovernor() {
    return qctx_ != nullptr ? qctx_->Check() : Status::Ok();
  }

  const DirectoryManager* dir_;
  LucMapper* mapper_;
  BufferPool* pool_;
  Pager* pager_;
  QueryContext* qctx_ = nullptr;
  obs::TraceLog* trace_ = nullptr;
  uint64_t trace_stmt_ = 0;

  // Deduplication: closure checks run from every unit record of an entity
  // and would otherwise repeat findings.
  std::set<std::string> reported_;
  // Non-null stored values per secondary index, counted during the unit
  // scans and reconciled against the index walk.
  std::vector<uint64_t> indexed_value_counts_;
  // UNIQUE attribute (lower-cased "class.attr") -> encoded value -> first
  // entity seen holding it, for duplicate detection across the extent.
  std::map<std::string, std::map<std::string, SurrogateId>> unique_values_;
};

}  // namespace sim

#endif  // SIMDB_CHECK_CHECK_H_
