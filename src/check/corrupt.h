#ifndef SIMDB_CHECK_CORRUPT_H_
#define SIMDB_CHECK_CORRUPT_H_

// Test-only corruption injector. Each primitive plants one inconsistency
// underneath the LUC mapper's invariant-preserving API — the exact classes
// of drift the InvariantChecker exists to detect. Lives in src/check so
// it can be a friend of the storage classes; production code never calls
// it.

#include <string>

#include "common/status.h"
#include "common/value.h"
#include "luc/mapper.h"

namespace sim {

class CorruptionInjector {
 public:
  explicit CorruptionInjector(LucMapper* mapper) : mapper_(mapper) {}

  // Flips the value-type tag of the first field in the heap record of `s`
  // (unit of `cls`), making the record undecodable in place.
  Status FlipRecordByte(const std::string& cls, SurrogateId s);

  // Removes only the inverse direction of the stored EVA pair
  // (owner --attr--> target), leaving the forward direction behind.
  Status DropInverseSide(const std::string& cls, const std::string& attr,
                         SurrogateId owner, SurrogateId target);

  // Deletes the unit record of role `cls` of `s` without touching the
  // other units' records or role sets — an orphaned subclass/base row.
  Status DeleteUnitRecord(const std::string& cls, SurrogateId s);

  // Writes a stored field directly, bypassing type/UNIQUE enforcement and
  // secondary-index maintenance.
  Status RawWriteField(const std::string& cls, const std::string& attr,
                       SurrogateId s, const Value& v);

  // Re-points the primary (surrogate -> RecordId) index entry of `s` at a
  // neighbouring slot.
  Status DesyncPrimaryIndex(const std::string& cls, SurrogateId s);

  // Appends a multi-valued DVA member bypassing MAX/DISTINCT enforcement.
  Status RawAppendMvValue(const std::string& cls, const std::string& attr,
                          SurrogateId s, const Value& v);

 private:
  LucMapper* mapper_;
};

}  // namespace sim

#endif  // SIMDB_CHECK_CORRUPT_H_
