#include "check/check.h"

#include <algorithm>
#include <functional>
#include <map>

#include "catalog/luc_translation.h"
#include "common/strings.h"
#include "storage/heap_file.h"
#include "storage/page.h"
#include "storage/record_codec.h"

namespace sim {

const char* CheckLayerName(CheckLayer layer) {
  switch (layer) {
    case CheckLayer::kCatalog:
      return "catalog";
    case CheckLayer::kStorage:
      return "storage";
    case CheckLayer::kPlan:
      return "plan";
  }
  return "unknown";
}

std::string CheckError::ToString() const {
  std::string out = "[";
  out += CheckLayerName(layer);
  out += "] ";
  out += invariant;
  if (!object.empty()) {
    out += " ";
    out += object;
  }
  if (surrogate != kInvalidSurrogate) {
    out += " s=" + std::to_string(surrogate);
  }
  out += ": " + message;
  return out;
}

bool CheckReport::HasInvariant(const std::string& code) const {
  return std::any_of(errors.begin(), errors.end(),
                     [&code](const CheckError& e) { return e.invariant == code; });
}

size_t CheckReport::CountLayer(CheckLayer layer) const {
  return static_cast<size_t>(
      std::count_if(errors.begin(), errors.end(),
                    [layer](const CheckError& e) { return e.layer == layer; }));
}

std::string CheckReport::ToString() const {
  std::string out;
  for (const CheckError& e : errors) {
    out += e.ToString();
    out += "\n";
  }
  out += "audit: " + std::to_string(errors.size()) + " finding(s); checked " +
         std::to_string(entities_checked) + " entities, " +
         std::to_string(records_checked) + " records, " +
         std::to_string(eva_pairs_checked) + " EVA pairs, " +
         std::to_string(index_entries_checked) + " index entries, " +
         std::to_string(pages_checked) + " pages\n";
  return out;
}

void InvariantChecker::AddError(CheckReport* report, CheckLayer layer,
                                std::string invariant, std::string object,
                                SurrogateId surrogate, std::string message) {
  std::string key = std::string(CheckLayerName(layer)) + "|" + invariant +
                    "|" + object + "|" + std::to_string(surrogate);
  if (!reported_.insert(std::move(key)).second) return;
  report->errors.push_back(CheckError{layer, std::move(invariant),
                                      std::move(object), surrogate,
                                      std::move(message)});
}

Result<CheckReport> InvariantChecker::AuditAll() {
  CheckReport report;
  reported_.clear();
  struct LayerStage {
    const char* span;
    Status (InvariantChecker::*run)(CheckReport*);
  };
  static constexpr LayerStage kLayers[] = {
      {"audit:catalog", &InvariantChecker::AuditCatalog},
      {"audit:storage", &InvariantChecker::AuditStorage},
      {"audit:pages", &InvariantChecker::AuditPages},
  };
  for (const LayerStage& layer : kLayers) {
    obs::Span span(trace_, trace_stmt_, layer.span);
    size_t before = report.errors.size();
    SIM_RETURN_IF_ERROR((this->*layer.run)(&report));
    span.AddAttr("findings",
                 static_cast<uint64_t>(report.errors.size() - before));
    span.MarkOk();
  }
  return report;
}

// --------------------------------------------------------------------------
// Layer 1: the catalog alone. The Directory Manager validates these rules
// at DDL time; the auditor re-derives them independently so drift in a
// persisted or hand-built catalog is caught rather than trusted.
// --------------------------------------------------------------------------

Status InvariantChecker::AuditCatalog(CheckReport* report) {
  CheckClassGraph(report);
  CheckInverseSymmetry(report);
  CheckOptionWellFormedness(report);
  return Status::Ok();
}

void InvariantChecker::CheckClassGraph(CheckReport* report) {
  // §3.1: "the class interrelationships must form a directed acyclic
  // graph" and every class family has exactly one base class.
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;

  // Iterative DFS with an explicit stack (second visit pops to black).
  std::function<void(const std::string&)> visit =
      [&](const std::string& name) {
        std::vector<std::pair<std::string, bool>> stack = {{name, false}};
        while (!stack.empty()) {
          auto [cur, expanded] = stack.back();
          stack.pop_back();
          std::string lc = AsciiLower(cur);
          if (expanded) {
            color[lc] = Color::kBlack;
            continue;
          }
          if (color[lc] == Color::kBlack) continue;
          if (color[lc] == Color::kGray) {
            AddError(report, CheckLayer::kCatalog, "class-dag-cycle", cur,
                     kInvalidSurrogate,
                     "class participates in a superclass cycle");
            continue;
          }
          color[lc] = Color::kGray;
          stack.emplace_back(cur, true);
          Result<const ClassDef*> def = dir_->FindClass(cur);
          if (!def.ok()) continue;
          for (const std::string& super : (*def)->superclasses) {
            if (!dir_->HasClass(super)) {
              AddError(report, CheckLayer::kCatalog, "superclass-missing", cur,
                       kInvalidSurrogate,
                       "superclass '" + super + "' is not defined");
              continue;
            }
            std::string slc = AsciiLower(super);
            if (color[slc] == Color::kGray) {
              AddError(report, CheckLayer::kCatalog, "class-dag-cycle", cur,
                       kInvalidSurrogate,
                       "superclass edge to '" + super + "' closes a cycle");
              continue;
            }
            if (color[slc] == Color::kWhite) stack.emplace_back(super, false);
          }
        }
      };

  for (const std::string& name : dir_->class_names()) visit(name);

  // Single base-class ancestor, re-derived by a transitive walk over the
  // raw superclass edges (not via BaseOf, which assumes the rule holds).
  for (const std::string& name : dir_->class_names()) {
    std::set<std::string> bases;
    std::set<std::string> seen;
    std::vector<std::string> work = {AsciiLower(name)};
    while (!work.empty()) {
      std::string cur = work.back();
      work.pop_back();
      if (!seen.insert(cur).second) continue;
      Result<const ClassDef*> def = dir_->FindClass(cur);
      if (!def.ok()) continue;
      if ((*def)->is_base()) {
        bases.insert(AsciiLower((*def)->name));
        continue;
      }
      for (const std::string& super : (*def)->superclasses) {
        work.push_back(AsciiLower(super));
      }
    }
    if (bases.size() > 1) {
      AddError(report, CheckLayer::kCatalog, "multiple-base-ancestors", name,
               kInvalidSurrogate,
               "class reaches " + std::to_string(bases.size()) +
                   " distinct base classes (§3.1 allows one)");
    } else if (bases.empty()) {
      AddError(report, CheckLayer::kCatalog, "multiple-base-ancestors", name,
               kInvalidSurrogate, "class reaches no base class");
    }
  }
}

void InvariantChecker::CheckInverseSymmetry(CheckReport* report) {
  // §3.2: every EVA has a system-maintained inverse; the pair must point
  // at each other and the inverse's range must cover the declaring class.
  for (const std::string& name : dir_->class_names()) {
    Result<const ClassDef*> def = dir_->FindClass(name);
    if (!def.ok()) continue;
    for (const AttributeDef& attr : (*def)->attributes) {
      if (!attr.is_eva()) continue;
      std::string qual = (*def)->name + "." + attr.name;
      if (!dir_->HasClass(attr.range_class)) {
        AddError(report, CheckLayer::kCatalog, "eva-range-missing", qual,
                 kInvalidSurrogate,
                 "range class '" + attr.range_class + "' is not defined");
        continue;
      }
      if (attr.inverse_name.empty()) {
        AddError(report, CheckLayer::kCatalog, "eva-inverse-missing", qual,
                 kInvalidSurrogate, "EVA has no inverse attribute recorded");
        continue;
      }
      Result<DirectoryManager::ResolvedAttr> inv = dir_->FindInverse(attr);
      if (!inv.ok()) {
        AddError(report, CheckLayer::kCatalog, "eva-inverse-missing", qual,
                 kInvalidSurrogate,
                 "inverse '" + attr.inverse_name + "' does not resolve: " +
                     inv.status().message());
        continue;
      }
      const AttributeDef& back = *inv->attr;
      if (!back.is_eva() ||
          AsciiLower(back.inverse_name) != AsciiLower(attr.name)) {
        AddError(report, CheckLayer::kCatalog, "eva-inverse-asymmetric", qual,
                 kInvalidSurrogate,
                 "inverse '" + attr.inverse_name +
                     "' does not point back at this EVA");
      }
      Result<bool> covers = dir_->IsSubclassOrSame((*def)->name,
                                                   back.range_class);
      if (!covers.ok() || !*covers) {
        AddError(report, CheckLayer::kCatalog, "eva-inverse-asymmetric", qual,
                 kInvalidSurrogate,
                 "inverse range '" + back.range_class +
                     "' does not cover declaring class '" + (*def)->name +
                     "'");
      }
      if (!attr.order_by_attr.empty() &&
          !dir_->ResolveAttribute(attr.range_class, attr.order_by_attr).ok()) {
        AddError(report, CheckLayer::kCatalog, "eva-order-attr-missing", qual,
                 kInvalidSurrogate,
                 "ordering attribute '" + attr.order_by_attr +
                     "' not found on range class");
      }
    }
  }
}

void InvariantChecker::CheckOptionWellFormedness(CheckReport* report) {
  // §3.2.1 attribute options: DISTINCT and MAX qualify multi-valued
  // attributes; subrole value sets name immediate subclasses; symbolic
  // types need a value set; derived attributes need their expression.
  for (const std::string& name : dir_->class_names()) {
    Result<const ClassDef*> def = dir_->FindClass(name);
    if (!def.ok()) continue;
    Result<std::vector<std::string>> subs =
        dir_->ImmediateSubclassesOf((*def)->name);
    for (const AttributeDef& attr : (*def)->attributes) {
      std::string qual = (*def)->name + "." + attr.name;
      if (attr.distinct && !attr.mv) {
        AddError(report, CheckLayer::kCatalog, "option-distinct-without-mv",
                 qual, kInvalidSurrogate,
                 "DISTINCT requires a multi-valued attribute");
      }
      if (attr.max_count >= 0 && !attr.mv) {
        AddError(report, CheckLayer::kCatalog, "option-max-without-mv", qual,
                 kInvalidSurrogate,
                 "MAX requires a multi-valued attribute");
      }
      if (attr.mv && attr.max_count == 0) {
        AddError(report, CheckLayer::kCatalog, "option-max-invalid", qual,
                 kInvalidSurrogate, "MAX 0 forbids every value");
      }
      if (attr.unique && attr.mv) {
        AddError(report, CheckLayer::kCatalog, "option-unique-on-mv", qual,
                 kInvalidSurrogate,
                 "UNIQUE on a multi-valued attribute is not meaningful");
      }
      if (attr.is_derived && attr.derived_text.empty()) {
        AddError(report, CheckLayer::kCatalog, "derived-without-text", qual,
                 kInvalidSurrogate, "derived attribute has no expression");
      }
      if (attr.is_dva() && (attr.type.kind == DataTypeKind::kSymbolic ||
                            attr.type.kind == DataTypeKind::kSubrole) &&
          attr.type.symbols.empty()) {
        AddError(report, CheckLayer::kCatalog, "symbolic-empty", qual,
                 kInvalidSurrogate, "enumerated type has an empty value set");
      }
      if (attr.is_subrole && subs.ok()) {
        for (const std::string& sym : attr.type.symbols) {
          bool found = std::any_of(subs->begin(), subs->end(),
                                   [&sym](const std::string& s) {
                                     return AsciiLower(s) == AsciiLower(sym);
                                   });
          if (!found) {
            AddError(report, CheckLayer::kCatalog, "subrole-value-not-subclass",
                     qual, kInvalidSurrogate,
                     "subrole value '" + sym +
                         "' is not an immediate subclass of '" +
                         (*def)->name + "'");
          }
        }
      }
    }
  }
}

// --------------------------------------------------------------------------
// Layer 2: stored data against the catalog, through the mapper's own
// structures but re-deriving every derived fact (indexes, inverses,
// counters) from the base records.
// --------------------------------------------------------------------------

Status InvariantChecker::AuditStorage(CheckReport* report) {
  if (mapper_ == nullptr) return Status::Ok();  // degraded audit
  indexed_value_counts_.assign(mapper_->phys_->indexes().size(), 0);
  unique_values_.clear();
  SIM_RETURN_IF_ERROR(AuditUnits(report));
  SIM_RETURN_IF_ERROR(AuditSecondaryIndexes(report));
  SIM_RETURN_IF_ERROR(AuditMvFile(report));
  return Status::Ok();
}

Status InvariantChecker::AuditUnits(CheckReport* report) {
  const PhysicalSchema& phys = *mapper_->phys_;
  std::vector<uint64_t> counted_extents(dir_->class_names().size(), 0);

  for (size_t u = 0; u < mapper_->units_.size(); ++u) {
    UnitStore* unit = mapper_->units_[u].get();
    const std::string& unit_name = unit->phys_->name;
    uint64_t own_records = 0;
    std::set<SurrogateId> seen_in_unit;

    // Iterate the heap directly (not the decoding cursor) so one
    // undecodable record is reported and skipped instead of ending the
    // scan — a byte-flipped record must not hide its neighbours.
    for (HeapFile::Iterator it = unit->file_.Begin(); it.Valid(); it.Next()) {
      SIM_RETURN_IF_ERROR(CheckGovernor());
      ++report->records_checked;
      Result<uint16_t> tag = PeekRecordType(it.record());
      if (!tag.ok()) {
        AddError(report, CheckLayer::kStorage, "record-decode", unit_name,
                 kInvalidSurrogate,
                 "record " + it.rid().ToString() +
                     " has no readable type tag: " + tag.status().message());
        continue;
      }
      if (*tag != unit->unit_code_) {
        // A clustered record of another unit sharing this page.
        if (*tag >= phys.units().size()) {
          AddError(report, CheckLayer::kStorage, "record-foreign-to-unit",
                   unit_name, kInvalidSurrogate,
                   "record " + it.rid().ToString() + " carries unit tag " +
                       std::to_string(*tag) + " which names no storage unit");
        }
        continue;
      }
      uint16_t rt = 0;
      std::vector<Value> all;
      Status decoded = DecodeRecord(it.record(), &rt, &all);
      if (!decoded.ok() || all.size() != unit->phys_->fields.size() + 2 ||
          all[0].type() != ValueType::kSurrogate ||
          all[1].type() != ValueType::kString) {
        AddError(report, CheckLayer::kStorage, "record-decode", unit_name,
                 kInvalidSurrogate,
                 "record " + it.rid().ToString() + " does not decode as [" +
                     "surrogate, roles, fields...]: " +
                     (decoded.ok() ? "wrong shape" : decoded.message()));
        continue;
      }
      ++own_records;
      SurrogateId s = all[0].surrogate_value();

      // §3.1: surrogates are system-assigned, unique and immutable.
      if (s == kInvalidSurrogate || s >= mapper_->next_surrogate_) {
        AddError(report, CheckLayer::kStorage, "surrogate-invalid", unit_name,
                 s, "surrogate outside the allocated range");
      }
      if (!seen_in_unit.insert(s).second) {
        AddError(report, CheckLayer::kStorage, "surrogate-duplicate",
                 unit_name, s, "surrogate appears twice in one storage unit");
      }

      std::set<uint16_t> roles = DecodeRoles(all[1].string_value());
      if (roles.empty()) {
        AddError(report, CheckLayer::kStorage, "roles-empty", unit_name, s,
                 "record carries no role set");
        continue;
      }

      // Role codes resolve; role sets are closed under ancestors (§3.1:
      // membership in a subclass implies membership in its superclasses).
      bool belongs_here = false;
      std::string first_class;
      for (uint16_t code : roles) {
        Result<std::string> cls = phys.ClassForCode(code);
        if (!cls.ok()) {
          AddError(report, CheckLayer::kStorage, "role-code-invalid",
                   unit_name, s,
                   "role code " + std::to_string(code) + " names no class");
          continue;
        }
        if (first_class.empty()) first_class = *cls;
        Result<int> cu = phys.UnitOf(*cls);
        if (cu.ok() && *cu == static_cast<int>(u)) belongs_here = true;
        Result<std::vector<std::string>> ancestors = dir_->AncestorsOf(*cls);
        if (ancestors.ok()) {
          for (const std::string& anc : *ancestors) {
            Result<uint16_t> anc_code = phys.ClassCode(anc);
            if (anc_code.ok() && roles.count(*anc_code) == 0) {
              AddError(report, CheckLayer::kStorage,
                       "roles-not-ancestor-closed", *cls, s,
                       "role '" + *cls + "' held without ancestor role '" +
                           anc + "'");
            }
          }
        }
      }
      if (!belongs_here) {
        AddError(report, CheckLayer::kStorage, "record-foreign-to-unit",
                 unit_name, s,
                 "no role of this record maps to this storage unit");
      }

      // Primary (surrogate -> RecordId) index agreement: the §5.2 key
      // organization, whatever its form, must locate exactly this record.
      SIM_ASSIGN_OR_RETURN(std::vector<SurrogateId> rids,
                           unit->primary_->Get(0, s));
      uint64_t packed = PackRecordId(it.rid());
      if (rids.empty()) {
        AddError(report, CheckLayer::kStorage, "primary-index-missing",
                 unit_name, s, "record has no primary-index entry");
      } else if (std::find(rids.begin(), rids.end(), packed) == rids.end()) {
        AddError(report, CheckLayer::kStorage, "primary-index-mismatch",
                 unit_name, s,
                 "primary index locates a different record than the heap "
                 "holds");
      } else if (rids.size() > 1) {
        AddError(report, CheckLayer::kStorage, "primary-index-mismatch",
                 unit_name, s, "surrogate has multiple primary-index entries");
      }

      // Cross-unit closure (§3.1 / §5.2): the entity must have a record,
      // with an identical role set, in the unit of every role it holds —
      // this is the "subclass extent ⊆ base extent" containment when
      // hierarchies are split across units.
      for (uint16_t code : roles) {
        Result<std::string> cls = phys.ClassForCode(code);
        if (!cls.ok()) continue;
        Result<int> cu = phys.UnitOf(*cls);
        if (!cu.ok() || *cu == static_cast<int>(u)) continue;
        std::set<uint16_t> other_roles;
        Status read = mapper_->units_[*cu]->Read(s, &other_roles, nullptr);
        if (read.code() == StatusCode::kNotFound) {
          AddError(report, CheckLayer::kStorage, "subclass-extent-orphan",
                   *cls, s,
                   "entity holds role '" + *cls + "' but has no record in "
                   "unit '" + mapper_->units_[*cu]->phys_->name + "'");
        } else if (!read.ok()) {
          AddError(report, CheckLayer::kStorage, "record-decode",
                   mapper_->units_[*cu]->phys_->name, s, read.message());
        } else if (other_roles != roles) {
          AddError(report, CheckLayer::kStorage, "closure-roles-disagree",
                   *cls, s,
                   "role sets disagree between units of the same entity");
        }
      }

      // Entity-level checks run once per entity, from its base-unit record.
      Result<std::string> base = dir_->BaseOf(first_class);
      if (base.ok()) {
        Result<int> base_unit = phys.UnitOf(*base);
        if (base_unit.ok() && *base_unit == static_cast<int>(u)) {
          ++report->entities_checked;
          for (uint16_t code : roles) {
            if (code < counted_extents.size()) ++counted_extents[code];
          }
          SIM_RETURN_IF_ERROR(AuditEntity(s, roles, report));
        }
      }
    }

    if (own_records != unit->file_.record_count()) {
      AddError(report, CheckLayer::kStorage, "record-count-mismatch",
               unit_name, kInvalidSurrogate,
               "heap reports " + std::to_string(unit->file_.record_count()) +
                   " records but the scan found " +
                   std::to_string(own_records));
    }
    if (unit->primary_->entry_count() != own_records) {
      AddError(report, CheckLayer::kStorage, "primary-index-mismatch",
               unit_name, kInvalidSurrogate,
               "primary index holds " +
                   std::to_string(unit->primary_->entry_count()) +
                   " entries for " + std::to_string(own_records) + " records");
    }

    // Free-list sanity: the cached estimates must stay parallel to the
    // page list and inside physical bounds.
    const std::vector<PageId>& pages = unit->file_.pages();
    const std::vector<int>& free = unit->file_.free_estimates();
    if (free.size() != pages.size()) {
      AddError(report, CheckLayer::kStorage, "heap-freelist-desync", unit_name,
               kInvalidSurrogate,
               "free-space estimates out of step with the page list");
    }
    for (size_t i = 0; i < free.size() && i < pages.size(); ++i) {
      bool bad_page =
          pager_ != nullptr && pages[i] >= pager_->page_count();
      if (bad_page || free[i] < 0 || free[i] > static_cast<int>(kPageSize)) {
        AddError(report, CheckLayer::kStorage, "heap-freelist-desync",
                 unit_name, kInvalidSurrogate,
                 "page entry " + std::to_string(i) +
                     " is out of bounds (page " + std::to_string(pages[i]) +
                     ", free " + std::to_string(free[i]) + ")");
      }
    }
  }

  // Maintained extent counters vs the extents just counted.
  for (const std::string& cls : dir_->class_names()) {
    Result<uint16_t> code = phys.ClassCode(cls);
    if (!code.ok() || *code >= mapper_->extent_counts_.size()) continue;
    uint64_t counted =
        *code < counted_extents.size() ? counted_extents[*code] : 0;
    if (mapper_->extent_counts_[*code] != counted) {
      AddError(report, CheckLayer::kStorage, "extent-count-mismatch", cls,
               kInvalidSurrogate,
               "maintained extent count " +
                   std::to_string(mapper_->extent_counts_[*code]) +
                   " != counted " + std::to_string(counted));
    }
  }

  // Maintained EVA pair counters vs the forward structures. Symmetric
  // EVAs store both directions in the forward structure, so their counter
  // does not equal a one-sided sum; they are fully covered by the
  // record-for-record inverse agreement instead.
  for (size_t e = 0;
       e < phys.evas().size() && e < mapper_->eva_pair_counts_.size(); ++e) {
    const EvaPhys& eva = phys.evas()[e];
    if (eva.symmetric) continue;
    Result<std::vector<SurrogateId>> owners = mapper_->ExtentOf(eva.class_a);
    if (!owners.ok()) continue;
    uint64_t pairs = 0;
    for (SurrogateId owner : *owners) {
      Result<std::vector<SurrogateId>> targets =
          mapper_->GetEvaTargetsUnordered(eva.class_a, eva.attr_a, owner);
      if (targets.ok()) pairs += targets->size();
    }
    if (pairs != mapper_->eva_pair_counts_[e]) {
      AddError(report, CheckLayer::kStorage, "eva-pair-count-mismatch",
               eva.class_a + "." + eva.attr_a, kInvalidSurrogate,
               "maintained pair count " +
                   std::to_string(mapper_->eva_pair_counts_[e]) +
                   " != stored " + std::to_string(pairs));
    }
  }
  return Status::Ok();
}

Status InvariantChecker::AuditEntity(SurrogateId s,
                                     const std::set<uint16_t>& roles,
                                     CheckReport* report) {
  const PhysicalSchema& phys = *mapper_->phys_;
  for (uint16_t code : roles) {
    Result<std::string> cls_name = phys.ClassForCode(code);
    if (!cls_name.ok()) continue;
    Result<const ClassDef*> cls = dir_->FindClass(*cls_name);
    if (!cls.ok()) continue;
    for (const AttributeDef& attr : (*cls)->attributes) {
      std::string qual = (*cls)->name + "." + attr.name;
      if (attr.is_derived || attr.is_subrole) continue;
      if (attr.is_eva()) {
        SIM_RETURN_IF_ERROR(AuditEvaSide(s, (*cls)->name, attr, report));
        continue;
      }
      if (attr.mv) {
        Result<std::vector<Value>> values =
            mapper_->GetMvValues(s, (*cls)->name, attr.name);
        if (!values.ok()) {
          AddError(report, CheckLayer::kStorage, "mv-decode", qual, s,
                   values.status().message());
          continue;
        }
        if (attr.required && values->empty()) {
          AddError(report, CheckLayer::kStorage, "required-missing", qual, s,
                   "REQUIRED multi-valued attribute has no values");
        }
        if (attr.max_count >= 0 &&
            static_cast<int>(values->size()) > attr.max_count) {
          AddError(report, CheckLayer::kStorage, "mv-max-exceeded", qual, s,
                   std::to_string(values->size()) + " values exceed MAX " +
                       std::to_string(attr.max_count));
        }
        for (size_t i = 0; i < values->size(); ++i) {
          const Value& v = (*values)[i];
          if (v.is_null()) {
            AddError(report, CheckLayer::kStorage, "mv-value-type-invalid",
                     qual, s, "null stored as a multi-value member");
            continue;
          }
          Status type_ok = attr.type.ValidateValue(v);
          if (!type_ok.ok()) {
            AddError(report, CheckLayer::kStorage, "mv-value-type-invalid",
                     qual, s, type_ok.message());
          }
          if (attr.distinct) {
            for (size_t j = i + 1; j < values->size(); ++j) {
              if (v.StrictEquals((*values)[j])) {
                AddError(report, CheckLayer::kStorage, "mv-distinct-duplicate",
                         qual, s,
                         "DISTINCT multi-value holds duplicate " +
                             v.ToString());
              }
            }
          }
        }
        continue;
      }

      // Single-valued stored DVA.
      Result<Value> v = mapper_->GetField(s, (*cls)->name, attr.name);
      if (!v.ok()) {
        AddError(report, CheckLayer::kStorage, "record-decode", qual, s,
                 v.status().message());
        continue;
      }
      if (attr.required && v->is_null()) {
        AddError(report, CheckLayer::kStorage, "required-missing", qual, s,
                 "REQUIRED attribute is null");
      }
      if (v->is_null()) continue;
      Status type_ok = attr.type.ValidateValue(*v);
      if (!type_ok.ok()) {
        AddError(report, CheckLayer::kStorage, "field-type-invalid", qual, s,
                 type_ok.message());
      }
      Result<std::string> key = EncodeIndexKey(*v);
      if (!key.ok()) continue;
      if (attr.unique) {
        auto [it, inserted] =
            unique_values_[AsciiLower(qual)].emplace(*key, s);
        if (!inserted) {
          AddError(report, CheckLayer::kStorage, "unique-duplicate", qual, s,
                   "value " + v->ToString() + " already held by entity " +
                       std::to_string(it->second) + " (§3.2.1 UNIQUE)");
        }
      }
      int idx = phys.IndexOf((*cls)->name, attr.name);
      if (idx >= 0) {
        ++indexed_value_counts_[idx];
        SIM_ASSIGN_OR_RETURN(std::vector<uint64_t> held,
                             mapper_->sec_indexes_[idx]->GetAll(*key));
        if (std::find(held.begin(), held.end(), s) == held.end()) {
          AddError(report, CheckLayer::kStorage, "sec-index-missing-entry",
                   qual, s,
                   "stored value " + v->ToString() +
                       " has no matching index entry");
        }
      }
    }
  }
  return Status::Ok();
}

Status InvariantChecker::AuditEvaSide(SurrogateId s, const std::string& cls,
                                      const AttributeDef& attr,
                                      CheckReport* report) {
  std::string qual = cls + "." + attr.name;
  Result<std::vector<SurrogateId>> targets =
      mapper_->GetEvaTargetsUnordered(cls, attr.name, s);
  if (!targets.ok()) {
    AddError(report, CheckLayer::kStorage, "eva-target-unresolved", qual, s,
             targets.status().message());
    return Status::Ok();
  }
  if (attr.required && targets->empty()) {
    AddError(report, CheckLayer::kStorage, "required-missing", qual, s,
             "REQUIRED EVA has no target");
  }
  if (!attr.mv && targets->size() > 1) {
    AddError(report, CheckLayer::kStorage, "eva-single-valued-multiple", qual,
             s, "single-valued EVA holds " + std::to_string(targets->size()) +
                    " targets");
  }
  if (attr.max_count >= 0 &&
      static_cast<int>(targets->size()) > attr.max_count) {
    AddError(report, CheckLayer::kStorage, "eva-max-exceeded", qual, s,
             std::to_string(targets->size()) + " targets exceed MAX " +
                 std::to_string(attr.max_count));
  }
  if (attr.distinct) {
    std::set<SurrogateId> uniq(targets->begin(), targets->end());
    if (uniq.size() != targets->size()) {
      AddError(report, CheckLayer::kStorage, "eva-distinct-duplicate", qual, s,
               "DISTINCT EVA holds a duplicate target");
    }
  }
  Result<DirectoryManager::ResolvedAttr> inv = dir_->FindInverse(attr);
  for (SurrogateId t : *targets) {
    ++report->eva_pairs_checked;
    Result<bool> in_range = mapper_->HasRole(t, attr.range_class);
    if (!in_range.ok() || !*in_range) {
      AddError(report, CheckLayer::kStorage, "eva-target-unresolved", qual, s,
               "target " + std::to_string(t) +
                   " does not hold range role '" + attr.range_class + "'");
      continue;
    }
    if (!inv.ok()) continue;  // reported by the catalog layer
    // §3.2: the inverse is visible the moment the EVA is set — the pair
    // must exist record-for-record in the opposite direction.
    Result<std::vector<SurrogateId>> back = mapper_->GetEvaTargetsUnordered(
        attr.range_class, inv->attr->name, t);
    if (!back.ok()) {
      AddError(report, CheckLayer::kStorage, "eva-inverse-record-missing",
               qual, s, back.status().message());
      continue;
    }
    auto forward_count = std::count(targets->begin(), targets->end(), t);
    auto inverse_count = std::count(back->begin(), back->end(), s);
    if (inverse_count < forward_count) {
      AddError(report, CheckLayer::kStorage, "eva-inverse-record-missing",
               qual, s,
               "pair with " + std::to_string(t) + " has no inverse record "
               "on '" + attr.range_class + "." + inv->attr->name + "'");
    }
  }
  return Status::Ok();
}

Status InvariantChecker::AuditSecondaryIndexes(CheckReport* report) {
  const PhysicalSchema& phys = *mapper_->phys_;
  for (size_t i = 0; i < phys.indexes().size(); ++i) {
    const IndexPhys& idx = phys.indexes()[i];
    std::string name = idx.class_name + "." + idx.attr_name;
    BPlusTree* tree = mapper_->sec_indexes_[i].get();
    uint64_t walked = 0;
    std::string prev_key;
    bool have_prev = false;
    SIM_ASSIGN_OR_RETURN(BPlusTree::Iterator it, tree->Begin());
    while (it.Valid()) {
      SIM_RETURN_IF_ERROR(CheckGovernor());
      ++walked;
      ++report->index_entries_checked;
      const std::string key = it.key();
      SurrogateId s = it.value();
      Result<bool> has_role = mapper_->HasRole(s, idx.class_name);
      Result<Value> v = Status::NotFound("unchecked");
      if (has_role.ok() && *has_role) {
        v = mapper_->GetField(s, idx.class_name, idx.attr_name);
      }
      if (!has_role.ok() || !*has_role || !v.ok() || v->is_null()) {
        AddError(report, CheckLayer::kStorage, "sec-index-orphan", name, s,
                 "index entry has no matching stored value");
      } else {
        Result<std::string> enc = EncodeIndexKey(*v);
        if (!enc.ok() || *enc != key) {
          AddError(report, CheckLayer::kStorage, "sec-index-orphan", name, s,
                   "index key disagrees with the stored value " +
                       v->ToString());
        }
      }
      if (idx.unique && have_prev && key == prev_key) {
        AddError(report, CheckLayer::kStorage, "unique-duplicate", name, s,
                 "unique index holds a duplicate key");
      }
      prev_key = key;
      have_prev = true;
      SIM_RETURN_IF_ERROR(it.Next());
    }
    if (walked != tree->entry_count() ||
        walked != indexed_value_counts_[i]) {
      AddError(report, CheckLayer::kStorage, "sec-index-count-mismatch", name,
               kInvalidSurrogate,
               "index walk found " + std::to_string(walked) +
                   " entries; counter says " +
                   std::to_string(tree->entry_count()) +
                   ", heap holds " +
                   std::to_string(indexed_value_counts_[i]) +
                   " indexed values");
    }
  }
  return Status::Ok();
}

Status InvariantChecker::AuditMvFile(CheckReport* report) {
  const PhysicalSchema& phys = *mapper_->phys_;
  uint64_t records = 0;
  for (HeapFile::Iterator it = mapper_->mv_file_->Begin(); it.Valid();
       it.Next()) {
    SIM_RETURN_IF_ERROR(CheckGovernor());
    ++records;
    ++report->records_checked;
    uint16_t rt = 0;
    std::vector<Value> rec;
    Status decoded = DecodeRecord(it.record(), &rt, &rec);
    if (!decoded.ok() || rec.size() != 2 ||
        rec[0].type() != ValueType::kSurrogate) {
      AddError(report, CheckLayer::kStorage, "record-decode", "mvdva$records",
               kInvalidSurrogate,
               "MV DVA record " + it.rid().ToString() + " does not decode");
      continue;
    }
    const MvDvaPhys* mv = nullptr;
    for (const MvDvaPhys& cand : phys.mvdvas()) {
      if (cand.id == rt && !cand.embedded) mv = &cand;
    }
    SurrogateId owner = rec[0].surrogate_value();
    if (mv == nullptr) {
      AddError(report, CheckLayer::kStorage, "mv-record-orphan",
               "mvdva$records", owner,
               "record tagged for unknown MV DVA id " + std::to_string(rt));
      continue;
    }
    std::string qual = mv->class_name + "." + mv->attr_name;
    Result<bool> has_role = mapper_->HasRole(owner, mv->class_name);
    if (!has_role.ok() || !*has_role) {
      AddError(report, CheckLayer::kStorage, "mv-record-orphan", qual, owner,
               "owner entity does not hold role '" + mv->class_name + "'");
    }
    Result<bool> indexed =
        mapper_->mv_index_->Contains(mv->id, owner, PackRecordId(it.rid()));
    if (!indexed.ok() || !*indexed) {
      AddError(report, CheckLayer::kStorage, "mv-record-orphan", qual, owner,
               "MV DVA record is not reachable through the owner index");
    }
  }
  if (records != mapper_->mv_file_->record_count() ||
      mapper_->mv_index_->entry_count() != records) {
    AddError(report, CheckLayer::kStorage, "record-count-mismatch",
             "mvdva$records", kInvalidSurrogate,
             "MV DVA heap/index counters disagree with the scan (" +
                 std::to_string(records) + " scanned, " +
                 std::to_string(mapper_->mv_file_->record_count()) +
                 " counted, " +
                 std::to_string(mapper_->mv_index_->entry_count()) +
                 " indexed)");
  }
  return Status::Ok();
}

// --------------------------------------------------------------------------
// Page-level audit: every durable page carries a CRC32 stamped on write
// (PR 1); a torn or bit-flipped page must be detected, not interpreted.
// --------------------------------------------------------------------------

Status InvariantChecker::AuditPages(CheckReport* report) {
  if (pager_ == nullptr) return Status::Ok();
  if (pool_ != nullptr) {
    // Push dirty frames out so the durable images are current. On a full
    // device the flush cannot succeed, but the durable images are still
    // self-consistent (committed WAL state) — audit them as-is instead of
    // making CHECK DATABASE itself unavailable in read-only mode.
    Status flushed = pool_->FlushAll();
    if (!flushed.ok() && flushed.code() != StatusCode::kDiskFull) {
      return flushed;
    }
  }
  std::vector<char> buf(kPageSize);
  for (PageId id = 0; id < pager_->page_count(); ++id) {
    SIM_RETURN_IF_ERROR(CheckGovernor());
    ++report->pages_checked;
    Status read = pager_->Read(id, buf.data());
    if (!read.ok()) {
      AddError(report, CheckLayer::kStorage, "page-unreadable",
               "page " + std::to_string(id), kInvalidSurrogate,
               read.message());
      continue;
    }
    if (!PageChecksumOk(buf.data())) {
      AddError(report, CheckLayer::kStorage, "page-checksum",
               "page " + std::to_string(id), kInvalidSurrogate,
               "stored CRC32 does not match page contents");
    }
  }
  return Status::Ok();
}

}  // namespace sim
