#ifndef SIMDB_CHECK_PLAN_CHECK_H_
#define SIMDB_CHECK_PLAN_CHECK_H_

// Layer 3 of simcheck: static validation of physical plans before they
// run, plus a debug wrapper enforcing the Volcano iterator protocol at
// runtime. PhysicalPlan::Build composes the operator tree from many small
// decisions (root order, access path, row-operator stack); a bug there
// produces a tree that executes but answers the wrong query. ValidatePlan
// re-checks the structural contract the executor assumes:
//
//   [Limit] [Distinct] [Sort] Project Filter|Type2Exists <loop chain>
//
// with every binding source naming a valid, distinct QueryTree node, the
// source order agreeing with the plan's declared loop_nodes, and every
// operator carrying a sane cardinality estimate.

#include "check/check.h"
#include "exec/operators.h"
#include "exec/physical_plan.h"
#include "semantics/query_tree.h"

namespace sim {

// Structural validation; every violation is appended to `report` as a
// kPlan finding (invariant codes: "plan-missing-operator",
// "plan-shape-invalid", "plan-node-invalid", "plan-node-duplicate",
// "plan-loop-order-mismatch", "plan-estimate-invalid").
void ValidatePlan(const PhysicalPlan& plan, const QueryTree& qt,
                  CheckReport* report);

// Convenience for the executor: Internal status naming the first finding
// when the plan is malformed, OK otherwise.
Status ValidatePlanOrError(const PhysicalPlan& plan, const QueryTree& qt);

// Debug wrapper enforcing the Open -> Next* -> Close state machine on the
// operator it wraps (fail-fast Internal status on a protocol violation:
// Open while open, Next while closed, Next after exhaustion, Close while
// closed). Installed around the plan root when
// DatabaseOptions::paranoid_checks is set.
class ProtocolCheck : public PhysicalOperator {
 public:
  explicit ProtocolCheck(OperatorPtr input) : input_(std::move(input)) {
    est_rows = input_ != nullptr ? input_->est_rows : 0;
  }

  std::string Describe() const override { return "ProtocolCheck"; }
  Status Open(ExecContext& cx) override;
  Status Close(ExecContext& cx) override;
  std::vector<const PhysicalOperator*> Children() const override;

 protected:
  Result<bool> DoNext(ExecContext& cx, Row* out) override;

 private:
  enum class State { kClosed, kOpen, kExhausted };
  OperatorPtr input_;
  State state_ = State::kClosed;
};

}  // namespace sim

#endif  // SIMDB_CHECK_PLAN_CHECK_H_
