#include "check/repair.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <unordered_map>

#include "catalog/directory.h"
#include "common/strings.h"
#include "luc/luc.h"
#include "luc/relationship.h"
#include "storage/bptree.h"
#include "storage/page.h"
#include "storage/record_codec.h"
#include "storage/wal.h"

namespace sim {

namespace {

// Normalized key for a symmetric pair (unordered under symmetry).
std::pair<SurrogateId, SurrogateId> Norm(SurrogateId a, SurrogateId b) {
  return a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

std::string Repairer::Report::ToString() const {
  std::string s = "reformatted " + std::to_string(pages_reformatted) +
                  " pages, " + "dropped " + std::to_string(records_dropped) +
                  " records / " + std::to_string(entities_dropped) +
                  " entities, nulled " + std::to_string(fields_nulled) +
                  " fields, dropped " + std::to_string(mv_values_dropped) +
                  " mv values / " + std::to_string(eva_pairs_dropped) +
                  " eva pairs, rebuilt " + std::to_string(structures_rebuilt) +
                  " structures\n";
  for (const std::string& m : manifest) s += "  salvaged-away: " + m + "\n";
  return s;
}

void Repairer::Junk(HeapFile* file, RecordId rid) {
  if (junk_seen_.insert(PackRecordId(rid)).second) {
    junk_.emplace_back(file, rid);
  }
}

void Repairer::DropEntity(SurrogateId s, const std::string& why,
                          Report* out) {
  if (!dropped_.insert(s).second) return;
  eff_roles_.erase(s);
  for (auto& unit_map : recs_) {
    auto it = unit_map.find(s);
    if (it != unit_map.end()) it->second.drop = true;
  }
  for (MvRec& m : mv_recs_) {
    if (m.owner == s) m.drop = true;
  }
  ++out->entities_dropped;
  out->manifest.push_back("entity " + std::to_string(s) + ": " + why);
}

bool Repairer::HasEffectiveRole(SurrogateId s, uint16_t code) const {
  auto it = eff_roles_.find(s);
  return it != eff_roles_.end() && it->second.count(code) > 0;
}

Repairer::FieldLoc Repairer::Locate(const std::string& cls,
                                    const std::string& attr, SurrogateId s) {
  FieldLoc loc;
  Result<LucMapper::FieldRef> ref = mapper_->Resolve(cls, attr, true);
  if (!ref.ok() || ref->field < 0 || ref->unit < 0) return loc;
  auto it = recs_[ref->unit].find(s);
  if (it == recs_[ref->unit].end() || it->second.drop) return loc;
  loc.rec = &it->second;
  loc.field = ref->field;
  return loc;
}

uint64_t Repairer::PairCountFor(int e, bool side_a, SurrogateId s) const {
  const EvaPhys& eva = mapper_->phys_->evas()[e];
  uint64_t n = 0;
  for (const auto& [key, count] : pairs_[e]) {
    if (eva.symmetric) {
      if (key.first == s || key.second == s) n += count;
    } else if (side_a ? key.first == s : key.second == s) {
      n += count;
    }
  }
  return n;
}

Status Repairer::Run(Report* out) {
  recs_.clear();
  junk_.clear();
  junk_seen_.clear();
  mv_recs_.clear();
  pairs_.clear();
  eva_of_attr_.clear();
  eff_roles_.clear();
  dropped_.clear();
  max_surrogate_ = 0;

  SIM_RETURN_IF_ERROR(HarvestUnits(out));
  SIM_RETURN_IF_ERROR(HarvestMvFile(out));
  SIM_RETURN_IF_ERROR(HarvestPairs(out));
  SIM_RETURN_IF_ERROR(ResolveEntities(out));
  SIM_RETURN_IF_ERROR(ResolveFields(out));
  SIM_RETURN_IF_ERROR(ResolvePairs(out));
  SIM_RETURN_IF_ERROR(EnforceRequired(out));
  SIM_RETURN_IF_ERROR(FkWriteBack(out));
  return Apply(out);
}

Status Repairer::HarvestUnits(Report* out) {
  recs_.resize(mapper_->units_.size());
  for (size_t u = 0; u < mapper_->units_.size(); ++u) {
    UnitStore* unit = mapper_->units_[u].get();
    size_t nfields = unit->phys().fields.size();
    HeapFile::Iterator it = unit->file_.Begin();
    for (; it.Valid(); it.Next()) {
      const std::string& rec = it.record();
      Result<uint16_t> tag = PeekRecordType(rec);
      if (!tag.ok()) {
        Junk(&unit->file_, it.rid());
        out->manifest.push_back("unit " + unit->phys().name + " record " +
                                it.rid().ToString() + ": undecodable header");
        continue;
      }
      if (*tag != u) {
        // Foreign tag on a shared clustered page: the owning unit's own
        // iteration decides its fate; a tag naming no unit is garbage.
        if (*tag >= mapper_->units_.size()) {
          Junk(&unit->file_, it.rid());
          out->manifest.push_back("unit " + unit->phys().name + " record " +
                                  it.rid().ToString() +
                                  ": tag names no storage unit");
        }
        continue;
      }
      uint16_t rt = 0;
      std::vector<Value> all;
      if (!DecodeRecord(rec, &rt, &all).ok() || all.size() != nfields + 2 ||
          all[0].type() != ValueType::kSurrogate ||
          all[1].type() != ValueType::kString) {
        Junk(&unit->file_, it.rid());
        out->manifest.push_back("unit " + unit->phys().name + " record " +
                                it.rid().ToString() + ": malformed record");
        continue;
      }
      SurrogateId s = all[0].surrogate_value();
      if (s == kInvalidSurrogate) {
        Junk(&unit->file_, it.rid());
        out->manifest.push_back("unit " + unit->phys().name + " record " +
                                it.rid().ToString() + ": invalid surrogate");
        continue;
      }
      max_surrogate_ = std::max(max_surrogate_, s);
      auto [pos, inserted] = recs_[u].try_emplace(s);
      if (!inserted) {
        // Duplicate surrogate within one unit: first record encountered
        // wins, the duplicate is dropped.
        Junk(&unit->file_, it.rid());
        out->manifest.push_back("unit " + unit->phys().name + " record " +
                                it.rid().ToString() +
                                ": duplicate surrogate " + std::to_string(s));
        continue;
      }
      RecInfo& info = pos->second;
      info.rid = it.rid();
      info.roles = DecodeRoles(all[1].string_view_value());
      info.fields.assign(all.begin() + 2, all.end());
    }
    // The iterator skips quarantined pages silently; any surviving error
    // is real I/O trouble the repair cannot proceed past.
    SIM_RETURN_IF_ERROR(it.status());
  }
  return Status::Ok();
}

Status Repairer::HarvestMvFile(Report* out) {
  if (mapper_->mv_file_ == nullptr) return Status::Ok();
  const PhysicalSchema& phys = *mapper_->phys_;
  HeapFile::Iterator it = mapper_->mv_file_->Begin();
  for (; it.Valid(); it.Next()) {
    uint16_t rt = 0;
    std::vector<Value> all;
    bool ok = DecodeRecord(it.record(), &rt, &all).ok() && all.size() == 2 &&
              all[0].type() == ValueType::kSurrogate;
    const MvDvaPhys* mv = nullptr;
    if (ok) {
      for (const MvDvaPhys& cand : phys.mvdvas()) {
        if (cand.id == rt && !cand.embedded) {
          mv = &cand;
          break;
        }
      }
    }
    if (mv == nullptr) {
      Junk(mapper_->mv_file_.get(), it.rid());
      out->manifest.push_back("mv file record " + it.rid().ToString() +
                              ": malformed or unknown mv id");
      continue;
    }
    MvRec rec;
    rec.rid = it.rid();
    rec.mv_id = static_cast<uint32_t>(rt);
    rec.owner = all[0].surrogate_value();
    rec.value = all[1];
    mv_recs_.push_back(std::move(rec));
  }
  return it.status();
}

Status Repairer::HarvestPairs(Report*) {
  const PhysicalSchema& phys = *mapper_->phys_;
  pairs_.resize(phys.evas().size());

  std::set<SurrogateId> all_s;
  for (const auto& unit_map : recs_) {
    for (const auto& [s, info] : unit_map) all_s.insert(s);
  }

  std::vector<SurrogateId> buf;
  for (size_t e = 0; e < phys.evas().size(); ++e) {
    const EvaPhys& eva = phys.evas()[e];
    eva_of_attr_[AsciiLower(eva.class_a + "." + eva.attr_a)] = {int(e), true};
    eva_of_attr_[AsciiLower(eva.class_b + "." + eva.attr_b)] = {int(e), false};
    PairCounts& pc = pairs_[e];

    if (eva.mapping == EvaMapping::kForeignKey) {
      // Pairs live in the single-valued sides' stored fields (set
      // semantics: a one:one pair appears in both endpoint records).
      auto harvest_side = [&](const std::string& cls, const std::string& attr,
                              bool field_holds_b) {
        Result<LucMapper::FieldRef> ref = mapper_->Resolve(cls, attr, true);
        if (!ref.ok() || ref->field < 0 || ref->unit < 0) return;
        for (const auto& [s, info] : recs_[ref->unit]) {
          const Value& v = info.fields[ref->field];
          if (v.type() != ValueType::kSurrogate) continue;
          SurrogateId other = v.surrogate_value();
          auto key = eva.symmetric
                         ? Norm(s, other)
                         : (field_holds_b ? std::make_pair(s, other)
                                          : std::make_pair(other, s));
          pc[key] = 1;
        }
      };
      if (!eva.a_mv) harvest_side(eva.class_a, eva.attr_a, true);
      if (!eva.b_mv && !eva.symmetric) {
        harvest_side(eva.class_b, eva.attr_b, false);
      }
      // The mv side's inverse index covers pairs whose single-valued
      // endpoint record died with a quarantined page.
      if (mapper_->fk_inv_ != nullptr && (eva.a_mv || eva.b_mv)) {
        for (SurrogateId s : all_s) {
          if (!mapper_->fk_inv_->GetInto(eva.rel_id, s, &buf).ok()) continue;
          for (SurrogateId other : buf) {
            auto key = eva.a_mv ? std::make_pair(s, other)
                                : std::make_pair(other, s);
            if (eva.symmetric) key = Norm(key.first, key.second);
            pc[key] = 1;
          }
        }
      }
      continue;
    }

    RelKeyedStore* fwd = nullptr;
    RelKeyedStore* inv = nullptr;
    if (eva.mapping == EvaMapping::kCommonStructure) {
      fwd = mapper_->common_fwd_.get();
      inv = mapper_->common_inv_.get();
    } else {
      auto it = mapper_->private_structs_.find(static_cast<int>(e));
      if (it == mapper_->private_structs_.end()) continue;
      fwd = it->second.first.get();
      inv = it->second.second.get();
    }
    if (fwd == nullptr) continue;

    if (eva.symmetric) {
      // The forward structure stores both directions; a pair survives if
      // either endpoint's list is still readable.
      for (SurrogateId s : all_s) {
        if (!fwd->GetInto(eva.rel_id, s, &buf).ok()) continue;
        std::map<SurrogateId, uint64_t> occ;
        for (SurrogateId t : buf) ++occ[t];
        for (const auto& [t, n] : occ) {
          auto key = Norm(s, t);
          pc[key] = std::max(pc[key], n);
        }
      }
    } else {
      std::set<SurrogateId> fwd_broken;
      for (SurrogateId s : all_s) {
        if (!fwd->GetInto(eva.rel_id, s, &buf).ok()) {
          fwd_broken.insert(s);
          continue;
        }
        for (SurrogateId t : buf) ++pc[{s, t}];
      }
      // §3.2's mandatory inverse direction salvages pairs whose forward
      // list died with a quarantined page.
      if (!fwd_broken.empty() && inv != nullptr) {
        for (SurrogateId b : all_s) {
          if (!inv->GetInto(eva.rel_id, b, &buf).ok()) continue;
          for (SurrogateId a : buf) {
            if (fwd_broken.count(a) > 0) ++pc[{a, b}];
          }
        }
      }
    }
  }
  return Status::Ok();
}

Status Repairer::ResolveEntities(Report* out) {
  const PhysicalSchema& phys = *mapper_->phys_;
  const DirectoryManager* dir = mapper_->dir_;

  // Claimed roles per entity: the union over its surviving unit records.
  std::map<SurrogateId, std::set<uint16_t>> claimed;
  for (const auto& unit_map : recs_) {
    for (const auto& [s, info] : unit_map) {
      claimed[s].insert(info.roles.begin(), info.roles.end());
    }
  }

  // Per-code memo: the units that must hold a record for the role to be
  // justified (the declaring class's unit plus every ancestor's), or
  // nothing when the code resolves to no known class.
  std::map<uint16_t, std::vector<int>> needed_units;
  std::map<uint16_t, std::vector<uint16_t>> closure_codes;
  auto resolve_code = [&](uint16_t c) -> bool {
    if (needed_units.count(c) > 0) return true;
    if (closure_codes.count(c) > 0) return false;  // memoized failure
    Result<std::string> cls = phys.ClassForCode(c);
    if (!cls.ok()) {
      closure_codes[c];  // mark failed
      return false;
    }
    Result<std::vector<std::string>> anc = dir->AncestorsOf(*cls);
    std::vector<std::string> chain = {*cls};
    if (anc.ok()) chain.insert(chain.end(), anc->begin(), anc->end());
    std::vector<int> units;
    std::vector<uint16_t> codes;
    for (const std::string& name : chain) {
      Result<int> u = phys.UnitOf(name);
      Result<uint16_t> code = phys.ClassCode(name);
      if (!u.ok() || !code.ok()) {
        closure_codes[c] = {};
        return false;
      }
      units.push_back(*u);
      codes.push_back(*code);
    }
    needed_units[c] = std::move(units);
    closure_codes[c] = std::move(codes);
    return true;
  };

  for (const auto& [s, codes] : claimed) {
    // Ancestor-close the claimed set (unknown codes drop out here).
    std::set<uint16_t> closed;
    for (uint16_t c : codes) {
      if (!resolve_code(c)) continue;
      const std::vector<uint16_t>& cl = closure_codes[c];
      closed.insert(cl.begin(), cl.end());
    }
    // A role is effective only when the entity still has a record in the
    // declaring unit of its class and of every ancestor class.
    std::set<uint16_t> effective;
    for (uint16_t c : closed) {
      if (!resolve_code(c)) continue;
      bool justified = true;
      for (int u : needed_units[c]) {
        if (u < 0 || static_cast<size_t>(u) >= recs_.size() ||
            recs_[u].count(s) == 0) {
          justified = false;
          break;
        }
      }
      if (justified) effective.insert(c);
    }
    if (effective.empty()) {
      DropEntity(s, "no intact role chain survives the lost pages", out);
      continue;
    }
    eff_roles_[s] = std::move(effective);
  }

  // Records justified by no surviving role are deleted; kept records get
  // the (identical-everywhere) effective role set.
  for (size_t u = 0; u < recs_.size(); ++u) {
    for (auto& [s, info] : recs_[u]) {
      if (info.drop) continue;
      if (dropped_.count(s) > 0) {
        info.drop = true;
        continue;
      }
      const std::set<uint16_t>& eff = eff_roles_[s];
      bool justified = false;
      for (uint16_t c : eff) {
        auto it = needed_units.find(c);
        if (it != needed_units.end() && !it->second.empty() &&
            it->second.front() == static_cast<int>(u)) {
          justified = true;
          break;
        }
      }
      if (!justified) {
        info.drop = true;
        out->manifest.push_back(
            "entity " + std::to_string(s) + ": record in unit " +
            mapper_->units_[u]->phys().name +
            " no longer justified by any surviving role");
        continue;
      }
      if (info.roles != eff) {
        info.roles = eff;
        info.dirty = true;
      }
    }
  }
  return Status::Ok();
}

Status Repairer::ResolveFields(Report* out) {
  const PhysicalSchema& phys = *mapper_->phys_;
  const DirectoryManager* dir = mapper_->dir_;

  // Separate-unit MV records grouped by (mv id, owner), in rid order.
  std::map<std::pair<uint32_t, SurrogateId>, std::vector<MvRec*>> by_owner;
  for (MvRec& m : mv_recs_) {
    if (m.drop) continue;
    // Owners that no longer exist or lost the declaring role lose the
    // dependent records too.
    const MvDvaPhys* def = nullptr;
    for (const MvDvaPhys& cand : phys.mvdvas()) {
      if (cand.id == m.mv_id) {
        def = &cand;
        break;
      }
    }
    if (def == nullptr) {
      m.drop = true;
      continue;
    }
    Result<uint16_t> code = phys.ClassCode(def->class_name);
    if (!code.ok() || !HasEffectiveRole(m.owner, *code)) {
      m.drop = true;
      continue;
    }
    by_owner[{m.mv_id, m.owner}].push_back(&m);
  }
  for (auto& [key, vec] : by_owner) {
    std::sort(vec.begin(), vec.end(), [](const MvRec* a, const MvRec* b) {
      return PackRecordId(a->rid) < PackRecordId(b->rid);
    });
  }

  // First-wins UNIQUE tracking across the whole database, per attribute.
  std::map<std::string, std::map<std::string, SurrogateId>> unique_seen;

  for (const auto& [s, codes] : eff_roles_) {
    for (uint16_t code : codes) {
      Result<std::string> cls_name = phys.ClassForCode(code);
      if (!cls_name.ok()) continue;
      Result<const ClassDef*> cls = dir->FindClass(*cls_name);
      if (!cls.ok()) continue;
      for (const AttributeDef& attr : (*cls)->attributes) {
        if (attr.is_derived || attr.is_subrole || attr.is_eva()) continue;
        std::string qual = (*cls)->name + "." + attr.name;
        if (attr.mv) {
          Result<int> mv_idx = phys.MvDvaOf((*cls)->name, attr.name);
          if (!mv_idx.ok()) continue;
          const MvDvaPhys& mv = phys.mvdvas()[*mv_idx];
          if (mv.embedded) {
            FieldLoc loc = Locate((*cls)->name, attr.name, s);
            if (loc.rec == nullptr) continue;
            Value& slot = loc.rec->fields[loc.field];
            Result<std::vector<Value>> decoded = DecodeEmbeddedMv(slot);
            std::vector<Value> members;
            if (decoded.ok()) {
              members = std::move(*decoded);
            } else {
              out->manifest.push_back("entity " + std::to_string(s) + " " +
                                      qual + ": embedded mv undecodable");
            }
            std::vector<Value> kept;
            for (const Value& v : members) {
              if (v.is_null() || !attr.type.ValidateValue(v).ok()) {
                ++out->mv_values_dropped;
                continue;
              }
              if (attr.distinct) {
                bool dup = false;
                for (const Value& k : kept) {
                  if (k.StrictEquals(v)) {
                    dup = true;
                    break;
                  }
                }
                if (dup) {
                  ++out->mv_values_dropped;
                  continue;
                }
              }
              if (attr.max_count >= 0 &&
                  static_cast<int>(kept.size()) >= attr.max_count) {
                ++out->mv_values_dropped;
                continue;
              }
              kept.push_back(v);
            }
            if (!decoded.ok() || kept.size() != members.size()) {
              slot = Value::Str(EncodeEmbeddedMv(kept));
              loc.rec->dirty = true;
            }
          } else {
            auto it = by_owner.find({mv.id, s});
            if (it == by_owner.end()) continue;
            std::vector<Value> kept;
            for (MvRec* m : it->second) {
              const Value& v = m->value;
              bool keep = !v.is_null() && attr.type.ValidateValue(v).ok();
              if (keep && attr.distinct) {
                for (const Value& k : kept) {
                  if (k.StrictEquals(v)) {
                    keep = false;
                    break;
                  }
                }
              }
              if (keep && attr.max_count >= 0 &&
                  static_cast<int>(kept.size()) >= attr.max_count) {
                keep = false;
              }
              if (keep) {
                kept.push_back(v);
              } else {
                m->drop = true;
                ++out->mv_values_dropped;
              }
            }
          }
          continue;
        }

        // Single-valued stored DVA.
        FieldLoc loc = Locate((*cls)->name, attr.name, s);
        if (loc.rec == nullptr) continue;
        Value& slot = loc.rec->fields[loc.field];
        if (slot.is_null()) continue;
        if (!attr.type.ValidateValue(slot).ok()) {
          slot = Value::Null();
          loc.rec->dirty = true;
          ++out->fields_nulled;
          out->manifest.push_back("entity " + std::to_string(s) + " " + qual +
                                  ": type-invalid value nulled");
          continue;
        }
        if (attr.unique) {
          Result<std::string> key = EncodeIndexKey(slot);
          if (key.ok()) {
            auto [it, inserted] =
                unique_seen[AsciiLower(qual)].emplace(*key, s);
            if (!inserted && it->second != s) {
              slot = Value::Null();
              loc.rec->dirty = true;
              ++out->fields_nulled;
              out->manifest.push_back("entity " + std::to_string(s) + " " +
                                      qual + ": UNIQUE duplicate nulled");
            }
          }
        }
      }
    }
  }
  return Status::Ok();
}

Status Repairer::ResolvePairs(Report* out) {
  const PhysicalSchema& phys = *mapper_->phys_;
  const DirectoryManager* dir = mapper_->dir_;

  for (size_t e = 0; e < phys.evas().size(); ++e) {
    const EvaPhys& eva = phys.evas()[e];
    Result<uint16_t> code_a = phys.ClassCode(eva.class_a);
    Result<uint16_t> code_b = phys.ClassCode(eva.class_b);
    if (!code_a.ok() || !code_b.ok()) continue;
    Result<DirectoryManager::ResolvedAttr> ra =
        dir->ResolveAttribute(eva.class_a, eva.attr_a);
    Result<DirectoryManager::ResolvedAttr> rb =
        dir->ResolveAttribute(eva.class_b, eva.attr_b);
    int max_a = eva.a_mv && ra.ok() ? ra->attr->max_count : (eva.a_mv ? -1 : 1);
    int max_b = eva.b_mv && rb.ok() ? rb->attr->max_count : (eva.b_mv ? -1 : 1);
    bool distinct = eva.distinct || (ra.ok() && ra->attr->distinct) ||
                    (rb.ok() && rb->attr->distinct);

    uint64_t before = 0;
    for (const auto& [key, n] : pairs_[e]) before += n;

    PairCounts kept;
    std::map<SurrogateId, uint64_t> used_a, used_b;
    for (const auto& [key, n] : pairs_[e]) {
      SurrogateId a = key.first, b = key.second;
      if (!HasEffectiveRole(a, *code_a) || !HasEffectiveRole(b, *code_b)) {
        continue;
      }
      uint64_t count = distinct ? 1 : n;
      if (eva.symmetric) {
        // Each endpoint's target list sees the pair once (self-pairs
        // too); cap per endpoint, greedily in sorted pair order.
        uint64_t cap = max_a < 0 ? UINT64_MAX : static_cast<uint64_t>(max_a);
        uint64_t room_a = cap > used_a[a] ? cap - used_a[a] : 0;
        uint64_t room_b = a == b ? count
                                 : (cap > used_a[b] ? cap - used_a[b] : 0);
        count = std::min({count, room_a, room_b});
        if (count == 0) continue;
        used_a[a] += count;
        if (a != b) used_a[b] += count;
      } else {
        uint64_t cap_a = max_a < 0 ? UINT64_MAX : static_cast<uint64_t>(max_a);
        uint64_t cap_b = max_b < 0 ? UINT64_MAX : static_cast<uint64_t>(max_b);
        if (used_a[a] >= cap_a || used_b[b] >= cap_b) continue;
        count = std::min({count, cap_a - used_a[a], cap_b - used_b[b]});
        used_a[a] += count;
        used_b[b] += count;
      }
      if (count > 0) kept[key] = count;
    }

    uint64_t after = 0;
    for (const auto& [key, n] : kept) after += n;
    out->eva_pairs_dropped += before - after;
    pairs_[e] = std::move(kept);
  }
  return Status::Ok();
}

Status Repairer::EnforceRequired(Report* out) {
  const PhysicalSchema& phys = *mapper_->phys_;
  const DirectoryManager* dir = mapper_->dir_;

  bool changed = true;
  while (changed) {
    changed = false;
    // Prune pairs referencing entities dropped in the previous round.
    for (auto& pc : pairs_) {
      for (auto it = pc.begin(); it != pc.end();) {
        if (dropped_.count(it->first.first) > 0 ||
            dropped_.count(it->first.second) > 0) {
          out->eva_pairs_dropped += it->second;
          it = pc.erase(it);
        } else {
          ++it;
        }
      }
    }

    std::vector<SurrogateId> snapshot;
    snapshot.reserve(eff_roles_.size());
    for (const auto& [s, codes] : eff_roles_) snapshot.push_back(s);

    for (SurrogateId s : snapshot) {
      if (dropped_.count(s) > 0) continue;
      std::set<uint16_t> codes = eff_roles_[s];
      bool entity_dropped = false;
      for (uint16_t code : codes) {
        if (entity_dropped) break;
        Result<std::string> cls_name = phys.ClassForCode(code);
        if (!cls_name.ok()) continue;
        Result<const ClassDef*> cls = dir->FindClass(*cls_name);
        if (!cls.ok()) continue;
        for (const AttributeDef& attr : (*cls)->attributes) {
          if (!attr.required || attr.is_derived || attr.is_subrole) continue;
          std::string qual = (*cls)->name + "." + attr.name;
          if (attr.is_eva()) {
            auto it = eva_of_attr_.find(AsciiLower(qual));
            if (it == eva_of_attr_.end()) continue;
            if (PairCountFor(it->second.first, it->second.second, s) == 0) {
              DropEntity(s,
                         "REQUIRED EVA " + qual + " lost its last target",
                         out);
              entity_dropped = true;
              changed = true;
              break;
            }
            continue;
          }
          if (attr.mv) {
            Result<int> mv_idx = phys.MvDvaOf((*cls)->name, attr.name);
            if (!mv_idx.ok()) continue;
            const MvDvaPhys& mv = phys.mvdvas()[*mv_idx];
            uint64_t n = 0;
            if (mv.embedded) {
              FieldLoc loc = Locate((*cls)->name, attr.name, s);
              if (loc.rec != nullptr) {
                Result<std::vector<Value>> decoded =
                    DecodeEmbeddedMv(loc.rec->fields[loc.field]);
                if (decoded.ok()) n = decoded->size();
              }
            } else {
              for (const MvRec& m : mv_recs_) {
                if (!m.drop && m.mv_id == mv.id && m.owner == s) ++n;
              }
            }
            if (n == 0) {
              DropEntity(s, "REQUIRED MV DVA " + qual + " lost all values",
                         out);
              entity_dropped = true;
              changed = true;
              break;
            }
            continue;
          }
          FieldLoc loc = Locate((*cls)->name, attr.name, s);
          if (loc.rec == nullptr || loc.rec->fields[loc.field].is_null()) {
            DropEntity(s, "REQUIRED DVA " + qual + " lost its value", out);
            entity_dropped = true;
            changed = true;
            break;
          }
        }
      }
    }
  }
  return Status::Ok();
}

Status Repairer::FkWriteBack(Report*) {
  const PhysicalSchema& phys = *mapper_->phys_;

  for (size_t e = 0; e < phys.evas().size(); ++e) {
    const EvaPhys& eva = phys.evas()[e];
    if (eva.mapping != EvaMapping::kForeignKey) continue;
    Result<uint16_t> code_a = phys.ClassCode(eva.class_a);
    Result<uint16_t> code_b = phys.ClassCode(eva.class_b);
    if (!code_a.ok() || !code_b.ok()) continue;

    auto reconcile = [&](const std::string& cls, const std::string& attr,
                         uint16_t role_code,
                         const std::map<SurrogateId, SurrogateId>& desired) {
      Result<LucMapper::FieldRef> ref = mapper_->Resolve(cls, attr, true);
      if (!ref.ok() || ref->field < 0 || ref->unit < 0) return;
      for (auto& [s, info] : recs_[ref->unit]) {
        if (info.drop || info.roles.count(role_code) == 0) continue;
        auto it = desired.find(s);
        Value want = it == desired.end() ? Value::Null()
                                         : Value::Surrogate(it->second);
        if (!info.fields[ref->field].StrictEquals(want)) {
          info.fields[ref->field] = std::move(want);
          info.dirty = true;
        }
      }
    };

    if (eva.symmetric) {
      if (!eva.a_mv) {
        std::map<SurrogateId, SurrogateId> want;
        for (const auto& [key, n] : pairs_[e]) {
          want[key.first] = key.second;
          want[key.second] = key.first;
        }
        reconcile(eva.class_a, eva.attr_a, *code_a, want);
      }
      continue;
    }
    if (!eva.a_mv) {
      std::map<SurrogateId, SurrogateId> want;
      for (const auto& [key, n] : pairs_[e]) want[key.first] = key.second;
      reconcile(eva.class_a, eva.attr_a, *code_a, want);
    }
    if (!eva.b_mv) {
      std::map<SurrogateId, SurrogateId> want;
      for (const auto& [key, n] : pairs_[e]) want[key.second] = key.first;
      reconcile(eva.class_b, eva.attr_b, *code_b, want);
    }
  }
  return Status::Ok();
}

Status Repairer::Apply(Report* out) {
  const PhysicalSchema& phys = *mapper_->phys_;

  // Every cached frame must re-read through the post-repair state, and no
  // stale frame may mask a page we are about to reformat.
  SIM_RETURN_IF_ERROR(pool_->FlushAll());
  SIM_RETURN_IF_ERROR(pool_->InvalidateAll());

  // 1. Reformat the quarantined pages as fresh empty slotted pages. With
  // a WAL the new image masks the rotted durable page until the caller's
  // checkpoint applies it; a crash before that commit discards the
  // salvage while the committed quarantine payload keeps the database
  // degraded — and therefore re-repairable.
  for (PageId id : quarantine_->Pages()) {
    char img[kPageSize];
    std::memset(img, 0, sizeof img);
    SlottedPage::Initialize(img);
    StampPageChecksum(img);
    if (wal_ != nullptr) {
      SIM_RETURN_IF_ERROR(wal_->AppendPageImage(id, img));
    } else {
      SIM_RETURN_IF_ERROR(pager_->Write(id, img));
    }
    ++out->pages_reformatted;
  }
  quarantine_->Clear();

  // 2. Physical record surgery on the (now fully readable) heaps.
  for (const auto& [file, rid] : junk_) {
    SIM_RETURN_IF_ERROR(file->Delete(rid));
    ++out->records_dropped;
  }
  for (size_t u = 0; u < recs_.size(); ++u) {
    UnitStore* unit = mapper_->units_[u].get();
    for (auto& [s, info] : recs_[u]) {
      if (info.drop) {
        SIM_RETURN_IF_ERROR(unit->file_.Delete(info.rid));
        ++out->records_dropped;
      } else if (info.dirty) {
        unit->EncodeInto(s, info.roles, info.fields);
        SIM_ASSIGN_OR_RETURN(RecordId moved,
                             unit->file_.Update(info.rid, unit->encode_buf_));
        info.rid = moved;
      }
    }
  }
  for (const MvRec& m : mv_recs_) {
    if (m.drop) {
      SIM_RETURN_IF_ERROR(mapper_->mv_file_->Delete(m.rid));
      ++out->mv_values_dropped;
    }
  }

  // 3. Rebuild each unit's primary index and re-adopt its page list (the
  // adopted pages recompute free-space estimates from the fresh images).
  for (size_t u = 0; u < recs_.size(); ++u) {
    UnitStore* unit = mapper_->units_[u].get();
    SIM_ASSIGN_OR_RETURN(
        std::unique_ptr<RelKeyedStore> fresh,
        RelKeyedStore::Create(pool_, unit->primary_->name(),
                              unit->primary_->organization()));
    uint64_t kept = 0;
    for (const auto& [s, info] : recs_[u]) {
      if (info.drop) continue;
      SIM_RETURN_IF_ERROR(fresh->Add(0, s, PackRecordId(info.rid)));
      ++kept;
    }
    unit->primary_ = std::move(fresh);
    std::vector<PageId> pages = unit->file_.pages();
    SIM_RETURN_IF_ERROR(unit->file_.Attach(std::move(pages), kept));
    unit->scan_ordered_ = false;
    unit->any_records_ = kept > 0;
    ++out->structures_rebuilt;
  }

  // 4. MV file + index.
  if (mapper_->mv_file_ != nullptr) {
    uint64_t kept_mv = 0;
    for (const MvRec& m : mv_recs_) {
      if (!m.drop) ++kept_mv;
    }
    std::vector<PageId> pages = mapper_->mv_file_->pages();
    SIM_RETURN_IF_ERROR(mapper_->mv_file_->Attach(std::move(pages), kept_mv));
    if (mapper_->mv_index_ != nullptr) {
      SIM_ASSIGN_OR_RETURN(
          std::unique_ptr<RelKeyedStore> fresh,
          RelKeyedStore::Create(pool_, mapper_->mv_index_->name(),
                                mapper_->mv_index_->organization()));
      for (const MvRec& m : mv_recs_) {
        if (m.drop) continue;
        SIM_RETURN_IF_ERROR(
            fresh->Add(m.mv_id, m.owner, PackRecordId(m.rid)));
      }
      mapper_->mv_index_ = std::move(fresh);
      ++out->structures_rebuilt;
    }
  }

  // 5. Rebuild secondary indexes from the kept records. The old trees'
  // pages become dead (checksum-valid) space.
  for (size_t i = 0; i < phys.indexes().size(); ++i) {
    const IndexPhys& idx = phys.indexes()[i];
    Result<uint16_t> code = phys.ClassCode(idx.class_name);
    Result<LucMapper::FieldRef> ref =
        mapper_->Resolve(idx.class_name, idx.attr_name, true);
    if (!code.ok() || !ref.ok() || ref->field < 0 || ref->unit < 0) continue;
    SIM_ASSIGN_OR_RETURN(
        BPlusTree fresh,
        BPlusTree::Create(pool_, mapper_->sec_indexes_[i]->name()));
    for (const auto& [s, info] : recs_[ref->unit]) {
      if (info.drop || info.roles.count(*code) == 0) continue;
      const Value& v = info.fields[ref->field];
      if (v.is_null()) continue;
      Result<std::string> key = EncodeIndexKey(v);
      if (!key.ok()) continue;
      SIM_RETURN_IF_ERROR(fresh.Insert(*key, s));
    }
    *mapper_->sec_indexes_[i] = std::move(fresh);
    ++out->structures_rebuilt;
  }

  // 6. Rebuild the EVA structures from the final pair sets.
  std::unique_ptr<RelKeyedStore> new_fwd, new_inv, new_fk;
  if (mapper_->common_fwd_ != nullptr) {
    SIM_ASSIGN_OR_RETURN(
        new_fwd, RelKeyedStore::Create(pool_, mapper_->common_fwd_->name(),
                                       mapper_->common_fwd_->organization()));
  }
  if (mapper_->common_inv_ != nullptr) {
    SIM_ASSIGN_OR_RETURN(
        new_inv, RelKeyedStore::Create(pool_, mapper_->common_inv_->name(),
                                       mapper_->common_inv_->organization()));
  }
  if (mapper_->fk_inv_ != nullptr) {
    SIM_ASSIGN_OR_RETURN(
        new_fk, RelKeyedStore::Create(pool_, mapper_->fk_inv_->name(),
                                      mapper_->fk_inv_->organization()));
  }
  std::map<int, std::pair<std::unique_ptr<RelKeyedStore>,
                          std::unique_ptr<RelKeyedStore>>>
      new_private;
  for (const auto& [e, stores] : mapper_->private_structs_) {
    SIM_ASSIGN_OR_RETURN(
        std::unique_ptr<RelKeyedStore> f,
        RelKeyedStore::Create(pool_, stores.first->name(),
                              stores.first->organization()));
    SIM_ASSIGN_OR_RETURN(
        std::unique_ptr<RelKeyedStore> v,
        RelKeyedStore::Create(pool_, stores.second->name(),
                              stores.second->organization()));
    new_private[e] = {std::move(f), std::move(v)};
  }

  std::vector<uint64_t> pair_counts(phys.evas().size(), 0);
  for (size_t e = 0; e < phys.evas().size(); ++e) {
    const EvaPhys& eva = phys.evas()[e];
    RelKeyedStore* fwd = nullptr;
    RelKeyedStore* inv = nullptr;
    if (eva.mapping == EvaMapping::kCommonStructure) {
      fwd = new_fwd.get();
      inv = new_inv.get();
    } else if (eva.mapping == EvaMapping::kPrivateStructure) {
      auto it = new_private.find(static_cast<int>(e));
      if (it != new_private.end()) {
        fwd = it->second.first.get();
        inv = it->second.second.get();
      }
    }
    for (const auto& [key, n] : pairs_[e]) {
      pair_counts[e] += n;
      for (uint64_t k = 0; k < n; ++k) {
        SurrogateId a = key.first, b = key.second;
        if (eva.mapping == EvaMapping::kForeignKey) {
          // Fields were reconciled in memory; only the mv-side inverse
          // index is structural.
          if (new_fk != nullptr && eva.a_mv) {
            SIM_RETURN_IF_ERROR(new_fk->Add(eva.rel_id, a, b));
          }
          if (new_fk != nullptr && eva.b_mv) {
            SIM_RETURN_IF_ERROR(new_fk->Add(eva.rel_id, b, a));
          }
          continue;
        }
        if (fwd == nullptr) continue;
        if (eva.symmetric) {
          SIM_RETURN_IF_ERROR(fwd->Add(eva.rel_id, a, b));
          if (a != b) SIM_RETURN_IF_ERROR(fwd->Add(eva.rel_id, b, a));
        } else {
          SIM_RETURN_IF_ERROR(fwd->Add(eva.rel_id, a, b));
          if (inv != nullptr) {
            SIM_RETURN_IF_ERROR(inv->Add(eva.rel_id, b, a));
          }
        }
      }
    }
  }
  if (new_fwd != nullptr) {
    mapper_->common_fwd_ = std::move(new_fwd);
    ++out->structures_rebuilt;
  }
  if (new_inv != nullptr) mapper_->common_inv_ = std::move(new_inv);
  if (new_fk != nullptr) mapper_->fk_inv_ = std::move(new_fk);
  if (!new_private.empty()) {
    mapper_->private_structs_ = std::move(new_private);
    ++out->structures_rebuilt;
  }

  // 7. Recount the maintained statistics from the kept state.
  std::vector<uint64_t> extents(mapper_->extent_counts_.size(), 0);
  for (const auto& [s, codes] : eff_roles_) {
    for (uint16_t c : codes) {
      if (c < extents.size()) ++extents[c];
    }
  }
  mapper_->extent_counts_ = std::move(extents);
  mapper_->eva_pair_counts_ = std::move(pair_counts);
  mapper_->next_surrogate_ =
      std::max(mapper_->next_surrogate_, max_surrogate_ + 1);
  ++mapper_->mutation_count_;
  return Status::Ok();
}

}  // namespace sim
