#ifndef SIMDB_CATALOG_LUC_TRANSLATION_H_
#define SIMDB_CATALOG_LUC_TRANSLATION_H_

// The standard translation of a SIM schema into a LUC schema (paper §5.1:
// "Every SIM schema has a standard translation into a LUC schema with a
// LUC for every class, subclass and multi-valued DVA") plus the default
// physical mapping rules of §5.2:
//
//  * tree-structured generalization hierarchies -> one storage unit with
//    variable-format records (all immediate + inherited single-valued DVAs
//    of a class in one physical record);
//  * a class with two or more immediate superclasses -> its own storage
//    unit, connected to its parents by 1:1 subclass links (we key those
//    links by the shared surrogate);
//  * bounded multi-valued DVAs -> embedded arrays in the owner record;
//    unbounded ones -> a separate storage unit;
//  * 1:1 EVAs -> foreign keys;
//  * 1:many EVAs and non-DISTINCT many:many EVAs -> the Common EVA
//    Structure <surr1, rel-id, surr2>;
//  * DISTINCT many:many EVAs -> a private structure of the same shape.
//
// A MappingPolicy can override every rule; the §5.2 experiments toggle
// them to measure the tradeoffs the paper describes.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/directory.h"
#include "common/status.h"

namespace sim {

// How surrogate keys locate records (§5.2: "direct keys (record number),
// random keys (based on hashing) or index sequential keys").
enum class KeyOrganization {
  kDirect,          // in-memory surrogate -> address map (record-number)
  kHashed,          // page-based hash index
  kIndexSequential, // page-based B+-tree
};

enum class EvaMapping {
  kCommonStructure,   // shared <surr1, rel-id, surr2> structure
  kPrivateStructure,  // per-EVA structure of the same shape
  kForeignKey,        // surrogate-valued field on the single-valued side
};

struct MappingPolicy {
  // Variable-format co-location of tree hierarchies (§5.2 default). When
  // false every class maps to its own storage unit connected by 1:1
  // subclass links — the alternative E4 measures against.
  bool colocate_tree_hierarchies = true;
  // Embed bounded MV DVAs in the owner record (§5.2 default).
  bool embed_bounded_mvdva = true;
  KeyOrganization surrogate_org = KeyOrganization::kDirect;
  KeyOrganization eva_structure_org = KeyOrganization::kIndexSequential;
  // Per-EVA mapping override, keyed by lowercase "class.attr" of either
  // side of the pair.
  std::map<std::string, EvaMapping> eva_overrides;
  // Extra (non-unique) secondary indexes, lowercase "class.attr".
  std::set<std::string> extra_indexes;
  // PCTFREE-style per-page headroom kept by ordinary inserts so clustered
  // records can be placed near their owners later (0 = pack pages fully).
  int cluster_reserve_bytes = 0;
};

// One storage unit (physical heap file). Fields are laid out uniformly:
// record = [surrogate, roles, declared fields...]; classes sharing a unit
// leave fields of roles they lack null.
struct UnitPhys {
  std::string name;                  // root class of the unit
  std::vector<std::string> classes;  // classes stored here, topo order

  struct Field {
    std::string class_name;  // declaring class
    std::string attr_name;
    const AttributeDef* attr = nullptr;
    bool is_fk = false;        // holds a surrogate for a FK-mapped EVA
    bool is_embedded_mv = false;  // holds an encoded embedded MV-DVA array
  };
  // Declared fields only; the implicit surrogate and roles fields precede
  // them in the record (indices 0 and 1).
  std::vector<Field> fields;
  // lowercase "class.attr" -> index into fields.
  std::map<std::string, int> field_index;
};

// One EVA/inverse pair.
struct EvaPhys {
  uint32_t rel_id = 0;
  // Side A is the canonical (first-declared) side; side B its inverse.
  std::string class_a, attr_a;
  std::string class_b, attr_b;
  bool a_mv = false, b_mv = false;
  bool distinct = false;
  bool symmetric = false;  // self-inverse EVA such as SPOUSE
  EvaMapping mapping = EvaMapping::kCommonStructure;
  KeyOrganization org = KeyOrganization::kIndexSequential;

  // Cardinality descriptions per the paper §3.2.1.
  bool one_to_one() const { return !a_mv && !b_mv; }
  bool many_to_many() const { return a_mv && b_mv; }
};

// A multi-valued DVA's storage.
struct MvDvaPhys {
  uint32_t id = 0;
  std::string class_name, attr_name;
  const AttributeDef* attr = nullptr;
  bool embedded = false;  // array in the owner record vs separate unit
};

// A secondary index over one single-valued DVA.
struct IndexPhys {
  std::string class_name, attr_name;
  bool unique = false;
};

class PhysicalSchema {
 public:
  // Builds the physical schema for a finalized catalog.
  static Result<PhysicalSchema> Build(const DirectoryManager& dir,
                                      const MappingPolicy& policy);

  const MappingPolicy& policy() const { return policy_; }
  const std::vector<UnitPhys>& units() const { return units_; }
  const std::vector<EvaPhys>& evas() const { return evas_; }
  const std::vector<MvDvaPhys>& mvdvas() const { return mvdvas_; }
  const std::vector<IndexPhys>& indexes() const { return indexes_; }

  // Unit holding records of `cls` (index into units()).
  Result<int> UnitOf(const std::string& cls) const;
  // Units an entity of `cls` has records in: its own unit plus the units
  // of all its ancestor classes (deduplicated, own unit first).
  Result<std::vector<int>> UnitsOfClassClosure(const std::string& cls) const;
  // The EVA pair an attribute participates in; `is_side_a` reports which
  // side `cls.attr` is.
  Result<int> EvaOf(const std::string& cls, const std::string& attr,
                    bool* is_side_a) const;
  Result<int> MvDvaOf(const std::string& cls, const std::string& attr) const;
  // Secondary index over cls.attr, or -1.
  int IndexOf(const std::string& cls, const std::string& attr) const;

  // Global class code used in roles sets and record type tags.
  Result<uint16_t> ClassCode(const std::string& cls) const;
  Result<std::string> ClassForCode(uint16_t code) const;

  // Number of distinct record formats in unit `u` (one per class — the
  // §5.2 "variable-format records based on record types").
  int RecordFormats(int u) const {
    return static_cast<int>(units_[u].classes.size());
  }

 private:
  MappingPolicy policy_;
  std::vector<UnitPhys> units_;
  std::vector<EvaPhys> evas_;
  std::vector<MvDvaPhys> mvdvas_;
  std::vector<IndexPhys> indexes_;
  std::map<std::string, int> class_to_unit_;   // lc class name
  std::map<std::string, int> eva_lookup_;      // lc "class.attr" -> eva idx
  std::map<std::string, bool> eva_side_a_;     // lc "class.attr" -> side
  std::map<std::string, int> mvdva_lookup_;    // lc "class.attr"
  std::map<std::string, int> index_lookup_;    // lc "class.attr"
  std::map<std::string, uint16_t> class_codes_;
  std::vector<std::string> code_to_class_;
};

// Helpers shared with the mapper: the roles field encodes the set of class
// codes an entity currently has, as a sorted "|c1|c2|" string.
std::string EncodeRoles(const std::set<uint16_t>& roles);
std::set<uint16_t> DecodeRoles(std::string_view encoded);
// Membership test straight on the encoded form — the hot read path asks
// "does this entity hold role X?" far more often than it needs the set.
bool RolesContain(std::string_view encoded, uint16_t code);

}  // namespace sim

#endif  // SIMDB_CATALOG_LUC_TRANSLATION_H_
