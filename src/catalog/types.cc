#include "catalog/types.h"

#include <cmath>

#include "common/date.h"
#include "common/strings.h"

namespace sim {

const char* DataTypeKindName(DataTypeKind k) {
  switch (k) {
    case DataTypeKind::kInteger:
      return "integer";
    case DataTypeKind::kNumber:
      return "number";
    case DataTypeKind::kString:
      return "string";
    case DataTypeKind::kDate:
      return "date";
    case DataTypeKind::kBoolean:
      return "boolean";
    case DataTypeKind::kSymbolic:
      return "symbolic";
    case DataTypeKind::kSubrole:
      return "subrole";
  }
  return "?";
}

Status DataType::ValidateValue(const Value& v) const {
  if (v.is_null()) return Status::Ok();
  switch (kind) {
    case DataTypeKind::kInteger: {
      if (v.type() != ValueType::kInt) {
        return Status::TypeError(std::string("expected integer, got ") +
                                 ValueTypeName(v.type()));
      }
      if (ranges.empty()) return Status::Ok();
      for (const auto& [lo, hi] : ranges) {
        if (v.int_value() >= lo && v.int_value() <= hi) return Status::Ok();
      }
      return Status::TypeError("integer " + std::to_string(v.int_value()) +
                               " outside declared ranges of " + ToString());
    }
    case DataTypeKind::kNumber: {
      if (!v.is_numeric()) {
        return Status::TypeError(std::string("expected number, got ") +
                                 ValueTypeName(v.type()));
      }
      if (precision > 0) {
        double limit = std::pow(10.0, precision - scale);
        if (std::abs(v.AsReal()) >= limit) {
          return Status::TypeError("number " + v.ToString() +
                                   " exceeds precision of " + ToString());
        }
      }
      return Status::Ok();
    }
    case DataTypeKind::kString: {
      if (v.type() != ValueType::kString) {
        return Status::TypeError(std::string("expected string, got ") +
                                 ValueTypeName(v.type()));
      }
      if (max_length > 0 &&
          v.string_value().size() > static_cast<size_t>(max_length)) {
        return Status::TypeError("string longer than declared string[" +
                                 std::to_string(max_length) + "]");
      }
      return Status::Ok();
    }
    case DataTypeKind::kDate:
      if (v.type() != ValueType::kDate) {
        return Status::TypeError(std::string("expected date, got ") +
                                 ValueTypeName(v.type()));
      }
      return Status::Ok();
    case DataTypeKind::kBoolean:
      if (v.type() != ValueType::kBool) {
        return Status::TypeError(std::string("expected boolean, got ") +
                                 ValueTypeName(v.type()));
      }
      return Status::Ok();
    case DataTypeKind::kSymbolic:
    case DataTypeKind::kSubrole: {
      if (v.type() != ValueType::kString) {
        return Status::TypeError(std::string("expected symbolic value, got ") +
                                 ValueTypeName(v.type()));
      }
      for (const auto& s : symbols) {
        if (NameEq(s, v.string_value())) return Status::Ok();
      }
      return Status::TypeError("'" + v.string_value() +
                               "' is not a member of " + ToString());
    }
  }
  return Status::Internal("unhandled type kind");
}

Result<Value> DataType::CoerceValue(const Value& v) const {
  if (v.is_null()) return v;
  switch (kind) {
    case DataTypeKind::kNumber:
      if (v.type() == ValueType::kInt) {
        Value widened = Value::Real(static_cast<double>(v.int_value()));
        SIM_RETURN_IF_ERROR(ValidateValue(widened));
        return widened;
      }
      break;
    case DataTypeKind::kDate:
      if (v.type() == ValueType::kString) {
        SIM_ASSIGN_OR_RETURN(int64_t days, ParseDate(v.string_value()));
        return Value::Date(days);
      }
      break;
    case DataTypeKind::kSymbolic:
    case DataTypeKind::kSubrole:
      // Normalize case to the declared spelling of the symbol.
      if (v.type() == ValueType::kString) {
        for (const auto& s : symbols) {
          if (NameEq(s, v.string_value())) return Value::Str(s);
        }
        return Status::TypeError("'" + v.string_value() +
                                 "' is not a member of " + ToString());
      }
      break;
    default:
      break;
  }
  SIM_RETURN_IF_ERROR(ValidateValue(v));
  return v;
}

std::string DataType::ToString() const {
  switch (kind) {
    case DataTypeKind::kInteger: {
      if (ranges.empty()) return "integer";
      std::string s = "integer(";
      for (size_t i = 0; i < ranges.size(); ++i) {
        if (i > 0) s += ", ";
        s += std::to_string(ranges[i].first) + ".." +
             std::to_string(ranges[i].second);
      }
      return s + ")";
    }
    case DataTypeKind::kNumber:
      return "number[" + std::to_string(precision) + "," +
             std::to_string(scale) + "]";
    case DataTypeKind::kString:
      if (max_length == 0) return "string";
      return "string[" + std::to_string(max_length) + "]";
    case DataTypeKind::kDate:
      return "date";
    case DataTypeKind::kBoolean:
      return "boolean";
    case DataTypeKind::kSymbolic:
    case DataTypeKind::kSubrole: {
      std::string s =
          kind == DataTypeKind::kSymbolic ? "symbolic(" : "subrole(";
      s += Join(symbols, ", ");
      return s + ")";
    }
  }
  return "?";
}

}  // namespace sim
