#ifndef SIMDB_CATALOG_DIRECTORY_H_
#define SIMDB_CATALOG_DIRECTORY_H_

// The Directory (catalog) Manager of Figure 1. It owns every type, class
// and assertion definition, validates the interclass graph rules of §3.1
// (acyclic, at most one base-class ancestor), resolves inherited
// attributes, pairs EVAs with their inverses (synthesizing hidden inverses
// where the schema declares none) and answers the hierarchy queries the
// binder, mapper and executor need.
//
// Definition order: superclasses must be declared before their subclasses
// (as in the paper's §7 schema), but EVA range classes and subrole value
// sets may be forward references — they are checked in Finalize(), which
// must be called after a batch of DDL and before any data operation.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"

namespace sim {

class DirectoryManager {
 public:
  // A resolved attribute: the class that immediately declares it plus the
  // definition itself.
  struct ResolvedAttr {
    const ClassDef* owner = nullptr;
    const AttributeDef* attr = nullptr;
  };

  // §6-style schema statistics.
  struct SchemaStats {
    int base_classes = 0;
    int subclasses = 0;
    int eva_inverse_pairs = 0;  // declared pairs (not counting synthesized)
    int dvas = 0;
    int max_depth = 0;  // generalization levels (base class = 1)
  };

  // --- definition ---

  Status DefineType(const std::string& name, DataType type);
  Result<const DataType*> FindType(const std::string& name) const;

  Status AddClass(ClassDef def);
  Status AddVerify(VerifyDef def);
  Status AddView(ViewDef def);

  // Validates cross-references and synthesizes missing EVA inverses.
  // Idempotent; re-run after each DDL batch.
  Status Finalize();
  bool finalized() const { return finalized_; }

  // --- lookup ---

  Result<const ClassDef*> FindClass(const std::string& name) const;
  bool HasClass(const std::string& name) const;
  // Views: nullptr-free lookup; NotFound when absent.
  Result<const ViewDef*> FindView(const std::string& name) const;
  bool HasView(const std::string& name) const;
  const std::vector<std::string>& view_names() const { return view_order_; }
  // Declaration order; spelling as declared.
  const std::vector<std::string>& class_names() const { return class_order_; }

  // --- hierarchy queries (all case-insensitive) ---

  // Proper ancestors, nearest first, deduplicated (diamonds collapse).
  Result<std::vector<std::string>> AncestorsOf(const std::string& name) const;
  // Proper descendants, nearest first, deduplicated.
  Result<std::vector<std::string>> DescendantsOf(const std::string& name) const;
  // The unique base class of the family `name` belongs to.
  Result<std::string> BaseOf(const std::string& name) const;
  // True when `sub` == `super` or `sub` is a descendant of `super`.
  Result<bool> IsSubclassOrSame(const std::string& sub,
                                const std::string& super) const;
  // Immediate subclasses, declaration order.
  Result<std::vector<std::string>> ImmediateSubclassesOf(
      const std::string& name) const;
  // Generalization depth of the class (base = 1).
  Result<int> DepthOf(const std::string& name) const;

  // --- attribute resolution ---

  // Finds `attr` among the immediate and inherited attributes of `cls`
  // (paper §3.2: "an inherited attribute … can be used in any context
  // where an immediate attribute is allowed"). Ambiguity across multiple
  // superclasses is an error.
  Result<ResolvedAttr> ResolveAttribute(const std::string& cls,
                                        const std::string& attr) const;

  // All attributes applicable to `cls` (immediate first, then inherited,
  // nearest ancestor first).
  Result<std::vector<ResolvedAttr>> AllAttributes(const std::string& cls) const;

  // The inverse attribute of an EVA, resolved on its range class.
  Result<ResolvedAttr> FindInverse(const AttributeDef& eva) const;

  // All VERIFY assertions whose perspective class is `cls` or an ancestor
  // of `cls` (an entity must satisfy the assertions of every role it has).
  std::vector<const VerifyDef*> VerifiesFor(const std::string& cls) const;
  // Every verify in the catalog.
  std::vector<const VerifyDef*> AllVerifies() const;

  SchemaStats ComputeStats() const;

 private:
  Status ValidateClassDef(const ClassDef& def) const;
  Status CheckInversePairing();
  Status CheckSubroles();
  Status CheckOrderings();

  std::map<std::string, DataType> types_;        // key: lowercase name
  std::map<std::string, ClassDef> classes_;      // key: lowercase name
  std::map<std::string, ViewDef> views_;         // key: lowercase name
  std::vector<std::string> view_order_;
  std::map<std::string, std::vector<std::string>> subclasses_;  // lc -> names
  std::vector<std::string> class_order_;
  bool finalized_ = false;
};

}  // namespace sim

#endif  // SIMDB_CATALOG_DIRECTORY_H_
