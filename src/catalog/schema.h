#ifndef SIMDB_CATALOG_SCHEMA_H_
#define SIMDB_CATALOG_SCHEMA_H_

// Schema definition objects (paper §3): classes, attributes and integrity
// assertions. These are the logical catalog entries managed by the
// Directory Manager. All name handling is case-insensitive; definitions
// keep the declared spelling for display.

#include <string>
#include <vector>

#include "catalog/types.h"
#include "common/status.h"

namespace sim {

// Data-valued attribute vs entity-valued attribute (§3.2).
enum class AttrKind { kDva, kEva };

struct AttributeDef {
  std::string name;
  AttrKind kind = AttrKind::kDva;

  // DVA: the value type (including subrole types, which are
  // system-maintained and read-only).
  DataType type;

  // EVA: the range class and the inverse attribute on the range class.
  // SIM maintains an inverse for every EVA (§3.2); when the schema does
  // not declare one, the Directory Manager synthesizes a hidden inverse at
  // Finalize and records its name here.
  std::string range_class;
  std::string inverse_name;

  // Attribute options (§3.2.1).
  bool required = false;
  bool unique = false;
  bool mv = false;        // multi-valued
  bool distinct = false;  // set rather than multiset (only with mv)
  int max_count = -1;     // MAX option; -1 = unbounded
  // System-maintained ordering of an MV EVA's targets (§6 "work under
  // progress ... system-maintained ordering of classes and EVAs"):
  // `mv (ordered by <attr> [desc])` sorts delivered targets by that
  // attribute of the range class.
  std::string order_by_attr;
  bool order_desc = false;

  // True for subrole DVAs (value set = names of immediate subclasses).
  bool is_subrole = false;
  // Derived attribute (§6 "work under progress ... derived attributes"):
  // computed from `derived_text` (a DML expression over the owning class)
  // at query time; never stored, read-only.
  bool is_derived = false;
  std::string derived_text;
  // True for inverses synthesized by the system rather than declared.
  bool system_generated = false;

  bool is_eva() const { return kind == AttrKind::kEva; }
  bool is_dva() const { return kind == AttrKind::kDva; }
  bool single_valued() const { return !mv; }
};

// A VERIFY assertion (§3.3, §7): a DML selection expression with the class
// as perspective that must hold for every entity; violated updates abort
// with `message`. The condition is stored as text in the catalog and is
// parsed/analyzed by the integrity module.
struct VerifyDef {
  std::string name;
  std::string class_name;
  std::string condition_text;
  std::string message;
};

// A view (§6 "work under progress includes the design of a view
// mechanism"): a named, predicate-defined subset of a class. Views are
// usable wherever a perspective class is expected in Retrieve, Modify and
// Delete statements; the predicate is conjoined to the query's selection.
struct ViewDef {
  std::string name;
  std::string class_name;      // underlying class
  std::string condition_text;  // DML boolean expression
};

struct ClassDef {
  std::string name;
  // System-maintained extent ordering (§6): `Class X ordered by <attr>`.
  std::string order_by_attr;
  bool order_desc = false;
  // Empty for base classes; one or more superclass names for subclasses.
  // The interclass graph must be acyclic and every node's ancestor set may
  // contain at most one base class (§3.1).
  std::vector<std::string> superclasses;
  std::vector<AttributeDef> attributes;  // immediate attributes only
  std::vector<VerifyDef> verifies;

  bool is_base() const { return superclasses.empty(); }

  // Immediate attribute lookup (case-insensitive); nullptr when absent.
  const AttributeDef* FindImmediateAttribute(const std::string& name) const;
  AttributeDef* FindImmediateAttribute(const std::string& name);
};

}  // namespace sim

#endif  // SIMDB_CATALOG_SCHEMA_H_
