#include "catalog/schema.h"

#include "common/strings.h"

namespace sim {

const AttributeDef* ClassDef::FindImmediateAttribute(
    const std::string& attr_name) const {
  for (const auto& a : attributes) {
    if (NameEq(a.name, attr_name)) return &a;
  }
  return nullptr;
}

AttributeDef* ClassDef::FindImmediateAttribute(const std::string& attr_name) {
  for (auto& a : attributes) {
    if (NameEq(a.name, attr_name)) return &a;
  }
  return nullptr;
}

}  // namespace sim
