#include "catalog/schema.h"

#include "common/strings.h"

namespace sim {

const AttributeDef* ClassDef::FindImmediateAttribute(
    const std::string& name) const {
  for (const auto& a : attributes) {
    if (NameEq(a.name, name)) return &a;
  }
  return nullptr;
}

AttributeDef* ClassDef::FindImmediateAttribute(const std::string& name) {
  for (auto& a : attributes) {
    if (NameEq(a.name, name)) return &a;
  }
  return nullptr;
}

}  // namespace sim
