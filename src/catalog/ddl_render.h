#ifndef SIMDB_CATALOG_DDL_RENDER_H_
#define SIMDB_CATALOG_DDL_RENDER_H_

// Renders a catalog back to SIM DDL text. The output re-parses to an
// equivalent catalog (used by the logical dump, the shell's `.schema`
// command, and round-trip tests). System-generated inverses are omitted —
// Finalize() re-synthesizes them.

#include <string>

#include "catalog/directory.h"

namespace sim {

// One class declaration (without its verifies).
std::string RenderClassDdl(const DirectoryManager& dir, const ClassDef& cls);

// The whole schema: named types are not tracked back from attributes (they
// were inlined at parse time), so attribute types render structurally.
std::string RenderSchemaDdl(const DirectoryManager& dir);

// A SIM literal for `v` (strings quoted with "" escaping, dates ISO).
std::string RenderValueLiteral(const Value& v);

}  // namespace sim

#endif  // SIMDB_CATALOG_DDL_RENDER_H_
