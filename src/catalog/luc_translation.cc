#include "catalog/luc_translation.h"

#include <algorithm>
#include <cstdio>

#include "common/strings.h"

namespace sim {

namespace {

std::string QualKey(const std::string& cls, const std::string& attr) {
  return AsciiLower(cls) + "." + AsciiLower(attr);
}

}  // namespace

std::string EncodeRoles(const std::set<uint16_t>& roles) {
  std::string out = "|";
  for (uint16_t r : roles) {
    out += std::to_string(r);
    out += "|";
  }
  return out;
}

std::set<uint16_t> DecodeRoles(std::string_view encoded) {
  std::set<uint16_t> roles;
  size_t pos = 1;
  while (pos < encoded.size()) {
    size_t next = encoded.find('|', pos);
    if (next == std::string_view::npos) break;
    if (next > pos) {
      unsigned v = 0;
      for (size_t i = pos; i < next; ++i) {
        char c = encoded[i];
        if (c < '0' || c > '9') break;
        v = v * 10 + static_cast<unsigned>(c - '0');
      }
      roles.insert(static_cast<uint16_t>(v));
    }
    pos = next + 1;
  }
  return roles;
}

bool RolesContain(std::string_view encoded, uint16_t code) {
  char buf[10];
  int n = std::snprintf(buf, sizeof(buf), "|%u|", code);
  return encoded.find(std::string_view(buf, static_cast<size_t>(n))) !=
         std::string_view::npos;
}

Result<PhysicalSchema> PhysicalSchema::Build(const DirectoryManager& dir,
                                             const MappingPolicy& policy) {
  if (!dir.finalized()) {
    return Status::InvalidArgument(
        "catalog must be finalized before physical mapping");
  }
  PhysicalSchema phys;
  phys.policy_ = policy;

  // 1. Assign global class codes in declaration order.
  for (const auto& name : dir.class_names()) {
    uint16_t code = static_cast<uint16_t>(phys.code_to_class_.size());
    phys.class_codes_[AsciiLower(name)] = code;
    phys.code_to_class_.push_back(name);
  }

  // 2. Decide the storage unit of every class. Declaration order
  // guarantees superclasses are processed first.
  for (const auto& name : dir.class_names()) {
    SIM_ASSIGN_OR_RETURN(const ClassDef* cls, dir.FindClass(name));
    bool own_unit = cls->is_base() || cls->superclasses.size() > 1 ||
                    !policy.colocate_tree_hierarchies;
    int unit_idx;
    if (own_unit) {
      unit_idx = static_cast<int>(phys.units_.size());
      UnitPhys unit;
      unit.name = cls->name;
      phys.units_.push_back(std::move(unit));
    } else {
      auto it = phys.class_to_unit_.find(AsciiLower(cls->superclasses[0]));
      if (it == phys.class_to_unit_.end()) {
        return Status::Internal("superclass unit missing for " + name);
      }
      unit_idx = it->second;
    }
    phys.units_[unit_idx].classes.push_back(cls->name);
    phys.class_to_unit_[AsciiLower(name)] = unit_idx;
  }

  // 3. Enumerate EVA pairs (each once) and decide their mapping.
  std::set<std::string> paired;
  uint32_t next_rel_id = 1;
  for (const auto& name : dir.class_names()) {
    SIM_ASSIGN_OR_RETURN(const ClassDef* cls, dir.FindClass(name));
    for (const auto& a : cls->attributes) {
      if (!a.is_eva()) continue;
      std::string self_key = QualKey(cls->name, a.name);
      if (paired.count(self_key)) continue;
      SIM_ASSIGN_OR_RETURN(DirectoryManager::ResolvedAttr inv,
                           dir.FindInverse(a));
      std::string inv_key = QualKey(inv.owner->name, inv.attr->name);
      paired.insert(self_key);
      paired.insert(inv_key);

      EvaPhys eva;
      eva.rel_id = next_rel_id++;
      eva.class_a = cls->name;
      eva.attr_a = a.name;
      eva.class_b = inv.owner->name;
      eva.attr_b = inv.attr->name;
      eva.a_mv = a.mv;
      eva.b_mv = inv.attr->mv;
      eva.distinct = a.distinct || inv.attr->distinct;
      eva.symmetric = (self_key == inv_key);
      eva.org = policy.eva_structure_org;

      // §5.2 default mapping rules.
      if (eva.one_to_one()) {
        eva.mapping = EvaMapping::kForeignKey;
      } else if (eva.many_to_many() && eva.distinct) {
        eva.mapping = EvaMapping::kPrivateStructure;
      } else {
        eva.mapping = EvaMapping::kCommonStructure;
      }
      auto ov = policy.eva_overrides.find(self_key);
      if (ov == policy.eva_overrides.end()) {
        ov = policy.eva_overrides.find(inv_key);
      }
      if (ov != policy.eva_overrides.end()) {
        eva.mapping = ov->second;
        if (eva.mapping == EvaMapping::kForeignKey && eva.many_to_many()) {
          return Status::InvalidArgument(
              "foreign-key mapping requires a single-valued side on EVA '" +
              self_key + "'");
        }
      }

      int idx = static_cast<int>(phys.evas_.size());
      phys.eva_lookup_[self_key] = idx;
      phys.eva_side_a_[self_key] = true;
      phys.eva_lookup_[inv_key] = idx;
      if (!eva.symmetric) phys.eva_side_a_[inv_key] = false;
      phys.evas_.push_back(std::move(eva));
    }
  }

  // 4. Enumerate MV DVAs.
  for (const auto& name : dir.class_names()) {
    SIM_ASSIGN_OR_RETURN(const ClassDef* cls, dir.FindClass(name));
    for (const auto& a : cls->attributes) {
      if (!a.is_dva() || !a.mv) continue;
      MvDvaPhys mv;
      mv.id = static_cast<uint32_t>(phys.mvdvas_.size() + 1);
      mv.class_name = cls->name;
      mv.attr_name = a.name;
      mv.attr = &a;
      mv.embedded = policy.embed_bounded_mvdva && a.max_count > 0;
      phys.mvdva_lookup_[QualKey(cls->name, a.name)] =
          static_cast<int>(phys.mvdvas_.size());
      phys.mvdvas_.push_back(std::move(mv));
    }
  }

  // 5. Lay out unit fields: per class (topo order within unit), its
  // single-valued stored DVAs (subroles are computed, not stored), FK
  // fields for foreign-key-mapped EVAs on this (single-valued) side, and
  // embedded MV-DVA arrays.
  for (auto& unit : phys.units_) {
    for (const auto& cls_name : unit.classes) {
      SIM_ASSIGN_OR_RETURN(const ClassDef* cls, dir.FindClass(cls_name));
      for (const auto& a : cls->attributes) {
        std::string key = QualKey(cls->name, a.name);
        if (a.is_dva()) {
          if (a.is_subrole || a.is_derived) continue;  // computed, not stored
          if (!a.mv) {
            UnitPhys::Field f;
            f.class_name = cls->name;
            f.attr_name = a.name;
            f.attr = &a;
            unit.field_index[key] = static_cast<int>(unit.fields.size());
            unit.fields.push_back(std::move(f));
          } else {
            int mv_idx = phys.mvdva_lookup_.at(key);
            if (phys.mvdvas_[mv_idx].embedded) {
              UnitPhys::Field f;
              f.class_name = cls->name;
              f.attr_name = a.name;
              f.attr = &a;
              f.is_embedded_mv = true;
              unit.field_index[key] = static_cast<int>(unit.fields.size());
              unit.fields.push_back(std::move(f));
            }
          }
        } else {
          // EVA: a FK field when this side is single-valued and the pair
          // is foreign-key mapped.
          auto it = phys.eva_lookup_.find(key);
          if (it == phys.eva_lookup_.end()) {
            return Status::Internal("EVA not paired: " + key);
          }
          const EvaPhys& eva = phys.evas_[it->second];
          if (eva.mapping == EvaMapping::kForeignKey && !a.mv) {
            UnitPhys::Field f;
            f.class_name = cls->name;
            f.attr_name = a.name;
            f.attr = &a;
            f.is_fk = true;
            unit.field_index[key] = static_cast<int>(unit.fields.size());
            unit.fields.push_back(std::move(f));
          }
        }
      }
    }
  }

  // 6. Secondary indexes: every UNIQUE single-valued DVA, plus policy
  // extras.
  for (const auto& name : dir.class_names()) {
    SIM_ASSIGN_OR_RETURN(const ClassDef* cls, dir.FindClass(name));
    for (const auto& a : cls->attributes) {
      if (!a.is_dva() || a.mv || a.is_subrole || a.is_derived) continue;
      std::string key = QualKey(cls->name, a.name);
      bool want = a.unique || policy.extra_indexes.count(key) > 0;
      if (!want) continue;
      IndexPhys idx;
      idx.class_name = cls->name;
      idx.attr_name = a.name;
      idx.unique = a.unique;
      phys.index_lookup_[key] = static_cast<int>(phys.indexes_.size());
      phys.indexes_.push_back(std::move(idx));
    }
  }

  return phys;
}

Result<int> PhysicalSchema::UnitOf(const std::string& cls) const {
  auto it = class_to_unit_.find(AsciiLower(cls));
  if (it == class_to_unit_.end()) {
    return Status::NotFound("no storage unit for class '" + cls + "'");
  }
  return it->second;
}

Result<std::vector<int>> PhysicalSchema::UnitsOfClassClosure(
    const std::string& cls) const {
  // The caller passes the closure classes; here we map one class; kept for
  // interface symmetry. The mapper computes closures via the directory.
  SIM_ASSIGN_OR_RETURN(int unit, UnitOf(cls));
  return std::vector<int>{unit};
}

Result<int> PhysicalSchema::EvaOf(const std::string& cls,
                                  const std::string& attr,
                                  bool* is_side_a) const {
  std::string key = QualKey(cls, attr);
  auto it = eva_lookup_.find(key);
  if (it == eva_lookup_.end()) {
    return Status::NotFound("no EVA mapping for '" + key + "'");
  }
  if (is_side_a != nullptr) {
    auto side = eva_side_a_.find(key);
    *is_side_a = side == eva_side_a_.end() ? true : side->second;
  }
  return it->second;
}

Result<int> PhysicalSchema::MvDvaOf(const std::string& cls,
                                    const std::string& attr) const {
  auto it = mvdva_lookup_.find(QualKey(cls, attr));
  if (it == mvdva_lookup_.end()) {
    return Status::NotFound("no MV DVA mapping for '" + cls + "." + attr +
                            "'");
  }
  return it->second;
}

int PhysicalSchema::IndexOf(const std::string& cls,
                            const std::string& attr) const {
  auto it = index_lookup_.find(QualKey(cls, attr));
  return it == index_lookup_.end() ? -1 : it->second;
}

Result<uint16_t> PhysicalSchema::ClassCode(const std::string& cls) const {
  auto it = class_codes_.find(AsciiLower(cls));
  if (it == class_codes_.end()) {
    return Status::NotFound("no class code for '" + cls + "'");
  }
  return it->second;
}

Result<std::string> PhysicalSchema::ClassForCode(uint16_t code) const {
  if (code >= code_to_class_.size()) {
    return Status::NotFound("no class with code " + std::to_string(code));
  }
  return code_to_class_[code];
}

}  // namespace sim
