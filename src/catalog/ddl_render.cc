#include "catalog/ddl_render.h"

#include "common/strings.h"

namespace sim {

namespace {

std::string RenderAttribute(const AttributeDef& a) {
  std::string out = "  " + a.name + ": ";
  if (a.is_derived) {
    return out + "derived = " + a.derived_text;
  }
  if (a.is_eva()) {
    out += a.range_class;
    if (!a.inverse_name.empty() &&
        a.inverse_name.rfind("inverse$", 0) != 0) {
      out += " inverse is " + a.inverse_name;
    }
  } else {
    out += a.type.ToString();
  }
  if (a.unique) out += " unique";
  if (a.required) out += " required";
  if (a.mv) {
    out += " mv";
    if (a.distinct || a.max_count >= 0 || !a.order_by_attr.empty()) {
      out += " (";
      bool first = true;
      if (a.max_count >= 0) {
        out += "max " + std::to_string(a.max_count);
        first = false;
      }
      if (a.distinct) {
        if (!first) out += ", ";
        out += "distinct";
        first = false;
      }
      if (!a.order_by_attr.empty()) {
        if (!first) out += ", ";
        out += "ordered by " + a.order_by_attr;
        if (a.order_desc) out += " desc";
      }
      out += ")";
    }
  }
  return out;
}

}  // namespace

std::string RenderClassDdl(const DirectoryManager& dir, const ClassDef& cls) {
  std::string out;
  if (cls.is_base()) {
    out = "Class " + cls.name;
  } else {
    out = "Subclass " + cls.name + " of " + Join(cls.superclasses, " and ");
  }
  if (!cls.order_by_attr.empty()) {
    out += " ordered by " + cls.order_by_attr;
    if (cls.order_desc) out += " desc";
  }
  out += " (\n";
  bool first = true;
  for (const AttributeDef& a : cls.attributes) {
    if (a.system_generated) continue;  // re-synthesized at Finalize
    if (!first) out += ";\n";
    out += RenderAttribute(a);
    first = false;
  }
  out += " );\n";
  for (const VerifyDef& v : cls.verifies) {
    std::string msg;
    for (char c : v.message) {
      msg.push_back(c);
      if (c == '"') msg.push_back('"');
    }
    out += "Verify " + v.name + " on " + v.class_name + "\n  assert " +
           v.condition_text + "\n  else \"" + msg + "\";\n";
  }
  (void)dir;
  return out;
}

std::string RenderSchemaDdl(const DirectoryManager& dir) {
  std::string out;
  for (const std::string& name : dir.class_names()) {
    Result<const ClassDef*> cls = dir.FindClass(name);
    if (!cls.ok()) continue;
    out += RenderClassDdl(dir, **cls);
    out += "\n";
  }
  for (const std::string& name : dir.view_names()) {
    Result<const ViewDef*> view = dir.FindView(name);
    if (!view.ok()) continue;
    out += "View " + (*view)->name + " of " + (*view)->class_name +
           " Where " + (*view)->condition_text + ";\n";
  }
  return out;
}

std::string RenderValueLiteral(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kString: {
      std::string out = "\"";
      for (char c : v.string_value()) {
        out.push_back(c);
        if (c == '"') out.push_back('"');
      }
      out.push_back('"');
      return out;
    }
    case ValueType::kDate:
      return "\"" + v.ToString() + "\"";  // parses back via date coercion
    default:
      return v.ToString();
  }
}

}  // namespace sim
