#include "catalog/directory.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace sim {

Status DirectoryManager::DefineType(const std::string& name, DataType type) {
  std::string key = AsciiLower(name);
  if (types_.count(key)) {
    return Status::AlreadyExists("type '" + name + "' already defined");
  }
  if (type.kind == DataTypeKind::kSubrole) {
    return Status::InvalidArgument(
        "subrole types cannot be declared as named types");
  }
  types_[key] = std::move(type);
  return Status::Ok();
}

Result<const DataType*> DirectoryManager::FindType(
    const std::string& name) const {
  auto it = types_.find(AsciiLower(name));
  if (it == types_.end()) {
    return Status::NotFound("no type named '" + name + "'");
  }
  return &it->second;
}

Status DirectoryManager::ValidateClassDef(const ClassDef& def) const {
  if (def.name.empty()) {
    return Status::InvalidArgument("class name may not be empty");
  }
  if (classes_.count(AsciiLower(def.name)) ||
      views_.count(AsciiLower(def.name))) {
    return Status::AlreadyExists("class '" + def.name + "' already defined");
  }
  // Superclasses must already exist (declaration order requirement), must
  // be distinct, and their families must share a single base class (§3.1:
  // "the set of ancestors of any node contain at most one base class").
  std::set<std::string> seen;
  std::string base;
  for (const auto& super : def.superclasses) {
    std::string key = AsciiLower(super);
    if (!seen.insert(key).second) {
      return Status::InvalidArgument("duplicate superclass '" + super +
                                     "' on class '" + def.name + "'");
    }
    auto it = classes_.find(key);
    if (it == classes_.end()) {
      return Status::NotFound("superclass '" + super + "' of '" + def.name +
                              "' is not defined (declare superclasses first)");
    }
    SIM_ASSIGN_OR_RETURN(std::string super_base, BaseOf(super));
    if (base.empty()) {
      base = super_base;
    } else if (!NameEq(base, super_base)) {
      return Status::InvalidArgument(
          "class '" + def.name + "' would inherit from two base classes ('" +
          base + "' and '" + super_base + "')");
    }
  }
  // Immediate attribute names must be unique within the class and must not
  // collide with inherited attribute names.
  for (size_t i = 0; i < def.attributes.size(); ++i) {
    const AttributeDef& a = def.attributes[i];
    if (a.name.empty()) {
      return Status::InvalidArgument("attribute name may not be empty in '" +
                                     def.name + "'");
    }
    for (size_t j = i + 1; j < def.attributes.size(); ++j) {
      if (NameEq(a.name, def.attributes[j].name)) {
        return Status::AlreadyExists("duplicate attribute '" + a.name +
                                     "' in class '" + def.name + "'");
      }
    }
    for (const auto& super : def.superclasses) {
      Result<ResolvedAttr> inherited = ResolveAttribute(super, a.name);
      if (inherited.ok()) {
        return Status::AlreadyExists(
            "attribute '" + a.name + "' of class '" + def.name +
            "' collides with inherited attribute from '" +
            inherited->owner->name + "'");
      }
    }
    if (a.distinct && !a.mv) {
      return Status::InvalidArgument("DISTINCT requires MV on attribute '" +
                                     a.name + "'");
    }
    if (a.max_count >= 0 && !a.mv) {
      return Status::InvalidArgument("MAX requires MV on attribute '" +
                                     a.name + "'");
    }
    if (a.is_eva()) {
      if (a.range_class.empty()) {
        return Status::InvalidArgument("EVA '" + a.name +
                                       "' has no range class");
      }
      if (a.unique) {
        return Status::NotSupported("UNIQUE on EVA '" + a.name +
                                    "' is not supported");
      }
    } else if (a.is_subrole && a.type.kind != DataTypeKind::kSubrole) {
      return Status::Internal("subrole attribute with non-subrole type");
    }
  }
  // When two superclasses supply attributes with the same name, the
  // combination is ambiguous unless both resolve to the same definition
  // (diamond through a shared ancestor).
  if (def.superclasses.size() > 1) {
    std::map<std::string, const AttributeDef*> merged;
    for (const auto& super : def.superclasses) {
      SIM_ASSIGN_OR_RETURN(std::vector<ResolvedAttr> attrs,
                           AllAttributes(super));
      for (const auto& ra : attrs) {
        std::string key = AsciiLower(ra.attr->name);
        auto [it, inserted] = merged.emplace(key, ra.attr);
        if (!inserted && it->second != ra.attr) {
          return Status::InvalidArgument(
              "class '" + def.name + "' inherits conflicting attributes '" +
              ra.attr->name + "' from multiple superclasses");
        }
      }
    }
  }
  return Status::Ok();
}

Status DirectoryManager::AddClass(ClassDef def) {
  SIM_RETURN_IF_ERROR(ValidateClassDef(def));
  std::string key = AsciiLower(def.name);
  for (const auto& super : def.superclasses) {
    subclasses_[AsciiLower(super)].push_back(def.name);
  }
  class_order_.push_back(def.name);
  classes_.emplace(key, std::move(def));
  finalized_ = false;
  return Status::Ok();
}

Status DirectoryManager::AddVerify(VerifyDef def) {
  auto it = classes_.find(AsciiLower(def.class_name));
  if (it == classes_.end()) {
    return Status::NotFound("verify '" + def.name + "' names unknown class '" +
                            def.class_name + "'");
  }
  for (const auto& v : it->second.verifies) {
    if (NameEq(v.name, def.name)) {
      return Status::AlreadyExists("verify '" + def.name +
                                   "' already defined on '" + def.class_name +
                                   "'");
    }
  }
  it->second.verifies.push_back(std::move(def));
  return Status::Ok();
}

Status DirectoryManager::AddView(ViewDef def) {
  std::string key = AsciiLower(def.name);
  if (classes_.count(key) || views_.count(key)) {
    return Status::AlreadyExists("name '" + def.name +
                                 "' already names a class or view");
  }
  if (!classes_.count(AsciiLower(def.class_name))) {
    return Status::NotFound("view '" + def.name + "' over unknown class '" +
                            def.class_name + "'");
  }
  view_order_.push_back(def.name);
  views_.emplace(key, std::move(def));
  return Status::Ok();
}

Result<const ViewDef*> DirectoryManager::FindView(
    const std::string& name) const {
  auto it = views_.find(AsciiLower(name));
  if (it == views_.end()) {
    return Status::NotFound("no view named '" + name + "'");
  }
  return &it->second;
}

bool DirectoryManager::HasView(const std::string& name) const {
  return views_.count(AsciiLower(name)) > 0;
}

Result<const ClassDef*> DirectoryManager::FindClass(
    const std::string& name) const {
  auto it = classes_.find(AsciiLower(name));
  if (it == classes_.end()) {
    return Status::NotFound("no class named '" + name + "'");
  }
  return &it->second;
}

bool DirectoryManager::HasClass(const std::string& name) const {
  return classes_.count(AsciiLower(name)) > 0;
}

Result<std::vector<std::string>> DirectoryManager::AncestorsOf(
    const std::string& name) const {
  SIM_ASSIGN_OR_RETURN(const ClassDef* cls, FindClass(name));
  std::vector<std::string> out;
  std::set<std::string> seen;
  // Breadth-first so nearest ancestors come first.
  std::vector<const ClassDef*> frontier = {cls};
  while (!frontier.empty()) {
    std::vector<const ClassDef*> next;
    for (const ClassDef* c : frontier) {
      for (const auto& super : c->superclasses) {
        std::string key = AsciiLower(super);
        if (!seen.insert(key).second) continue;
        auto it = classes_.find(key);
        if (it == classes_.end()) {
          return Status::Internal("dangling superclass '" + super + "'");
        }
        out.push_back(it->second.name);
        next.push_back(&it->second);
      }
    }
    frontier = std::move(next);
  }
  return out;
}

Result<std::vector<std::string>> DirectoryManager::DescendantsOf(
    const std::string& name) const {
  SIM_ASSIGN_OR_RETURN(const ClassDef* cls, FindClass(name));
  std::vector<std::string> out;
  std::set<std::string> seen;
  std::vector<std::string> frontier = {cls->name};
  while (!frontier.empty()) {
    std::vector<std::string> next;
    for (const auto& c : frontier) {
      auto it = subclasses_.find(AsciiLower(c));
      if (it == subclasses_.end()) continue;
      for (const auto& sub : it->second) {
        std::string key = AsciiLower(sub);
        if (!seen.insert(key).second) continue;
        out.push_back(sub);
        next.push_back(sub);
      }
    }
    frontier = std::move(next);
  }
  return out;
}

Result<std::string> DirectoryManager::BaseOf(const std::string& name) const {
  SIM_ASSIGN_OR_RETURN(const ClassDef* cls, FindClass(name));
  const ClassDef* cur = cls;
  while (!cur->is_base()) {
    SIM_ASSIGN_OR_RETURN(cur, FindClass(cur->superclasses[0]));
  }
  return cur->name;
}

Result<bool> DirectoryManager::IsSubclassOrSame(const std::string& sub,
                                                const std::string& super) const {
  if (NameEq(sub, super)) {
    SIM_RETURN_IF_ERROR(FindClass(sub).status());
    return true;
  }
  SIM_ASSIGN_OR_RETURN(std::vector<std::string> ancestors, AncestorsOf(sub));
  for (const auto& a : ancestors) {
    if (NameEq(a, super)) return true;
  }
  SIM_RETURN_IF_ERROR(FindClass(super).status());
  return false;
}

Result<std::vector<std::string>> DirectoryManager::ImmediateSubclassesOf(
    const std::string& name) const {
  SIM_RETURN_IF_ERROR(FindClass(name).status());
  auto it = subclasses_.find(AsciiLower(name));
  if (it == subclasses_.end()) return std::vector<std::string>();
  return it->second;
}

Result<int> DirectoryManager::DepthOf(const std::string& name) const {
  SIM_ASSIGN_OR_RETURN(const ClassDef* cls, FindClass(name));
  if (cls->is_base()) return 1;
  int depth = 0;
  for (const auto& super : cls->superclasses) {
    SIM_ASSIGN_OR_RETURN(int d, DepthOf(super));
    depth = std::max(depth, d);
  }
  return depth + 1;
}

Result<DirectoryManager::ResolvedAttr> DirectoryManager::ResolveAttribute(
    const std::string& cls, const std::string& attr) const {
  SIM_ASSIGN_OR_RETURN(const ClassDef* c, FindClass(cls));
  if (const AttributeDef* a = c->FindImmediateAttribute(attr)) {
    return ResolvedAttr{c, a};
  }
  SIM_ASSIGN_OR_RETURN(std::vector<std::string> ancestors, AncestorsOf(cls));
  ResolvedAttr found;
  for (const auto& anc : ancestors) {
    SIM_ASSIGN_OR_RETURN(const ClassDef* ac, FindClass(anc));
    if (const AttributeDef* a = ac->FindImmediateAttribute(attr)) {
      if (found.attr != nullptr && found.attr != a) {
        return Status::BindError("attribute '" + attr +
                                 "' is ambiguous on class '" + cls + "'");
      }
      found = ResolvedAttr{ac, a};
    }
  }
  if (found.attr == nullptr) {
    return Status::BindError("class '" + cls + "' has no attribute '" + attr +
                             "'");
  }
  return found;
}

Result<std::vector<DirectoryManager::ResolvedAttr>>
DirectoryManager::AllAttributes(const std::string& cls) const {
  SIM_ASSIGN_OR_RETURN(const ClassDef* c, FindClass(cls));
  std::vector<ResolvedAttr> out;
  std::set<const AttributeDef*> seen;
  for (const auto& a : c->attributes) {
    out.push_back(ResolvedAttr{c, &a});
    seen.insert(&a);
  }
  SIM_ASSIGN_OR_RETURN(std::vector<std::string> ancestors, AncestorsOf(cls));
  for (const auto& anc : ancestors) {
    SIM_ASSIGN_OR_RETURN(const ClassDef* ac, FindClass(anc));
    for (const auto& a : ac->attributes) {
      if (seen.insert(&a).second) out.push_back(ResolvedAttr{ac, &a});
    }
  }
  return out;
}

Result<DirectoryManager::ResolvedAttr> DirectoryManager::FindInverse(
    const AttributeDef& eva) const {
  if (!eva.is_eva()) {
    return Status::Internal("FindInverse called on a DVA");
  }
  if (eva.inverse_name.empty()) {
    return Status::Internal("EVA '" + eva.name +
                            "' has no inverse (catalog not finalized?)");
  }
  return ResolveAttribute(eva.range_class, eva.inverse_name);
}

std::vector<const VerifyDef*> DirectoryManager::VerifiesFor(
    const std::string& cls) const {
  std::vector<const VerifyDef*> out;
  auto add = [&](const std::string& name) {
    auto it = classes_.find(AsciiLower(name));
    if (it == classes_.end()) return;
    for (const auto& v : it->second.verifies) out.push_back(&v);
  };
  add(cls);
  Result<std::vector<std::string>> ancestors = AncestorsOf(cls);
  if (ancestors.ok()) {
    for (const auto& a : *ancestors) add(a);
  }
  return out;
}

std::vector<const VerifyDef*> DirectoryManager::AllVerifies() const {
  std::vector<const VerifyDef*> out;
  for (const auto& name : class_order_) {
    auto it = classes_.find(AsciiLower(name));
    for (const auto& v : it->second.verifies) out.push_back(&v);
  }
  return out;
}

Status DirectoryManager::CheckInversePairing() {
  // First pass: validate declared inverses and detect missing ones.
  for (const auto& name : class_order_) {
    ClassDef& cls = classes_[AsciiLower(name)];
    for (AttributeDef& a : cls.attributes) {
      if (!a.is_eva()) continue;
      if (!HasClass(a.range_class)) {
        return Status::NotFound("EVA '" + cls.name + "." + a.name +
                                "' has undefined range class '" +
                                a.range_class + "'");
      }
      if (a.inverse_name.empty()) continue;
      // Declared inverse: must exist on the range class (or an ancestor)
      // and point back at (an ancestor or descendant of) this class.
      Result<ResolvedAttr> inv = ResolveAttribute(a.range_class,
                                                  a.inverse_name);
      if (!inv.ok()) {
        // "An inverse can also be explicitly named by the user" (§3.2)
        // without being declared on the range class: the second pass
        // synthesizes it under the given name.
        continue;
      }
      const AttributeDef* ia = inv->attr;
      if (!ia->is_eva()) {
        return Status::InvalidArgument("inverse '" + a.inverse_name +
                                       "' of '" + a.name + "' is not an EVA");
      }
      SIM_ASSIGN_OR_RETURN(
          bool compatible,
          IsSubclassOrSame(cls.name, ia->range_class));
      if (!compatible) {
        SIM_ASSIGN_OR_RETURN(compatible,
                             IsSubclassOrSame(ia->range_class, cls.name));
      }
      if (!compatible) {
        return Status::InvalidArgument(
            "EVA '" + cls.name + "." + a.name + "' and its inverse '" +
            inv->owner->name + "." + ia->name + "' disagree about classes");
      }
      if (!ia->inverse_name.empty() && !NameEq(ia->inverse_name, a.name)) {
        return Status::InvalidArgument(
            "EVA '" + cls.name + "." + a.name + "' names inverse '" +
            a.inverse_name + "' but that attribute's inverse is '" +
            ia->inverse_name + "'");
      }
    }
  }
  // Second pass: synthesize hidden inverses for EVAs without one, and fill
  // in the back-pointer for declared-but-one-sided pairs.
  for (const auto& name : class_order_) {
    ClassDef& cls = classes_[AsciiLower(name)];
    for (size_t i = 0; i < cls.attributes.size(); ++i) {
      AttributeDef& a = cls.attributes[i];
      if (!a.is_eva()) continue;
      if (!a.inverse_name.empty()) {
        ClassDef& range = classes_[AsciiLower(a.range_class)];
        Result<ResolvedAttr> inv = ResolveAttribute(range.name,
                                                    a.inverse_name);
        if (inv.ok()) {
          if (inv->attr->inverse_name.empty()) {
            // Fill in the back-pointer on the declared inverse.
            ClassDef& owner = classes_[AsciiLower(inv->owner->name)];
            AttributeDef* mutable_inv =
                owner.FindImmediateAttribute(a.inverse_name);
            mutable_inv->inverse_name = a.name;
          }
        } else {
          // User named an inverse that is not declared anywhere: create it
          // on the range class as an unconstrained multi-valued EVA.
          AttributeDef inv_def;
          inv_def.name = a.inverse_name;
          inv_def.kind = AttrKind::kEva;
          inv_def.range_class = cls.name;
          inv_def.inverse_name = a.name;
          inv_def.mv = true;
          range.attributes.push_back(std::move(inv_def));
        }
        continue;
      }
      // Synthesize a hidden, unconstrained (multi-valued) inverse on the
      // range class. Name it after both sides to avoid collisions.
      std::string inv_name = "inverse$" + AsciiLower(cls.name) + "$" +
                             AsciiLower(a.name);
      ClassDef& range = classes_[AsciiLower(a.range_class)];
      if (range.FindImmediateAttribute(inv_name) == nullptr) {
        AttributeDef inv;
        inv.name = inv_name;
        inv.kind = AttrKind::kEva;
        inv.range_class = cls.name;
        inv.inverse_name = a.name;
        inv.mv = true;
        inv.system_generated = true;
        // push_back may reallocate cls.attributes when range == cls, so
        // re-fetch the attribute by index afterwards.
        range.attributes.push_back(std::move(inv));
      }
      cls.attributes[i].inverse_name = inv_name;
    }
  }
  return Status::Ok();
}

Status DirectoryManager::CheckSubroles() {
  for (const auto& name : class_order_) {
    ClassDef& cls = classes_[AsciiLower(name)];
    for (AttributeDef& a : cls.attributes) {
      if (!a.is_dva() || a.type.kind != DataTypeKind::kSubrole) continue;
      a.is_subrole = true;
      SIM_ASSIGN_OR_RETURN(std::vector<std::string> subs,
                           ImmediateSubclassesOf(cls.name));
      for (const auto& sym : a.type.symbols) {
        bool found = false;
        for (const auto& sub : subs) {
          if (NameEq(sub, sym)) {
            found = true;
            break;
          }
        }
        if (!found) {
          return Status::InvalidArgument(
              "subrole attribute '" + cls.name + "." + a.name + "' lists '" +
              sym + "', which is not an immediate subclass of '" + cls.name +
              "'");
        }
      }
    }
  }
  return Status::Ok();
}

Status DirectoryManager::CheckOrderings() {
  for (const auto& name : class_order_) {
    const ClassDef& cls = classes_.at(AsciiLower(name));
    if (!cls.order_by_attr.empty()) {
      SIM_ASSIGN_OR_RETURN(ResolvedAttr ra,
                           ResolveAttribute(cls.name, cls.order_by_attr));
      if (!ra.attr->is_dva() || ra.attr->mv) {
        return Status::InvalidArgument(
            "class '" + cls.name + "' ordered by '" + cls.order_by_attr +
            "', which is not a single-valued DVA");
      }
    }
    for (const AttributeDef& a : cls.attributes) {
      if (a.order_by_attr.empty()) continue;
      if (!a.is_eva()) {
        return Status::InvalidArgument("ORDERED BY applies to EVAs only ('" +
                                       cls.name + "." + a.name + "')");
      }
      SIM_ASSIGN_OR_RETURN(ResolvedAttr ra,
                           ResolveAttribute(a.range_class, a.order_by_attr));
      if (!ra.attr->is_dva() || ra.attr->mv) {
        return Status::InvalidArgument(
            "EVA '" + cls.name + "." + a.name + "' ordered by '" +
            a.order_by_attr + "', which is not a single-valued DVA of '" +
            a.range_class + "'");
      }
    }
  }
  return Status::Ok();
}

Status DirectoryManager::Finalize() {
  SIM_RETURN_IF_ERROR(CheckInversePairing());
  SIM_RETURN_IF_ERROR(CheckSubroles());
  SIM_RETURN_IF_ERROR(CheckOrderings());
  finalized_ = true;
  return Status::Ok();
}

DirectoryManager::SchemaStats DirectoryManager::ComputeStats() const {
  SchemaStats stats;
  std::set<std::string> counted_pairs;
  for (const auto& name : class_order_) {
    const ClassDef& cls = classes_.at(AsciiLower(name));
    if (cls.is_base()) {
      ++stats.base_classes;
    } else {
      ++stats.subclasses;
    }
    Result<int> depth = DepthOf(cls.name);
    if (depth.ok()) stats.max_depth = std::max(stats.max_depth, *depth);
    for (const auto& a : cls.attributes) {
      if (a.is_dva()) {
        ++stats.dvas;
      } else if (!a.system_generated) {
        // Count each EVA/inverse pair once.
        std::string self = AsciiLower(cls.name) + "." + AsciiLower(a.name);
        std::string other =
            AsciiLower(a.range_class) + "." + AsciiLower(a.inverse_name);
        std::string pair_key = self < other ? self + "|" + other
                                            : other + "|" + self;
        if (counted_pairs.insert(pair_key).second) ++stats.eva_inverse_pairs;
      }
    }
  }
  return stats;
}

}  // namespace sim
