#ifndef SIMDB_CATALOG_TYPES_H_
#define SIMDB_CATALOG_TYPES_H_

// The SIM data type system (paper §3.2, §7). Strong typing is one of the
// model's constraint-specification techniques: every DVA has a data type
// that constrains its values — range-restricted integers, fixed-precision
// numbers, bounded strings, dates, booleans, symbolic (enumerated) types
// and the system-maintained subrole types.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace sim {

enum class DataTypeKind {
  kInteger,   // integer, optionally with ranges: integer(1001..39999, ...)
  kNumber,    // number[p, s] fixed precision/scale (stored as double)
  kString,    // string[n]
  kDate,      // calendar date
  kBoolean,   // boolean
  kSymbolic,  // symbolic (A, B, C) — enumerated names
  kSubrole,   // subrole(sub1, sub2) — system-maintained role set
};

const char* DataTypeKindName(DataTypeKind k);

struct DataType {
  DataTypeKind kind = DataTypeKind::kInteger;
  // string[n]; 0 means unbounded.
  int max_length = 0;
  // number[p, s].
  int precision = 0;
  int scale = 0;
  // integer range conditions (inclusive); empty means unrestricted.
  std::vector<std::pair<int64_t, int64_t>> ranges;
  // symbolic / subrole value sets (stored in declaration case).
  std::vector<std::string> symbols;

  static DataType Of(DataTypeKind k) {
    DataType t;
    t.kind = k;
    return t;
  }
  static DataType Integer() { return Of(DataTypeKind::kInteger); }
  static DataType IntegerRanges(std::vector<std::pair<int64_t, int64_t>> r) {
    DataType t = Of(DataTypeKind::kInteger);
    t.ranges = std::move(r);
    return t;
  }
  static DataType Number(int p, int s) {
    DataType t = Of(DataTypeKind::kNumber);
    t.precision = p;
    t.scale = s;
    return t;
  }
  static DataType String(int n) {
    DataType t = Of(DataTypeKind::kString);
    t.max_length = n;
    return t;
  }
  static DataType Date() { return Of(DataTypeKind::kDate); }
  static DataType Boolean() { return Of(DataTypeKind::kBoolean); }
  static DataType Symbolic(std::vector<std::string> syms) {
    DataType t = Of(DataTypeKind::kSymbolic);
    t.symbols = std::move(syms);
    return t;
  }
  static DataType Subrole(std::vector<std::string> subs) {
    DataType t = Of(DataTypeKind::kSubrole);
    t.symbols = std::move(subs);
    return t;
  }

  // Checks that a (non-null) runtime value conforms to this type,
  // including range / length / precision / symbol-set constraints.
  Status ValidateValue(const Value& v) const;

  // Converts a parsed literal toward this type where the conversion is
  // natural (int -> number, string -> date, string -> symbolic member) and
  // validates the result. Nulls pass through unchanged.
  Result<Value> CoerceValue(const Value& v) const;

  // DDL-style rendering, e.g. "integer(1001..39999, 60001..99999)".
  std::string ToString() const;
};

}  // namespace sim

#endif  // SIMDB_CATALOG_TYPES_H_
