#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace sim {

namespace {

constexpr uint32_t kWalMagic = 0x53494D57;  // "SIMW"
constexpr uint8_t kPageImageFrame = 1;
constexpr uint8_t kCommitFrame = 2;
// [u32 magic][u8 type][u32 page_id][u64 lsn][u32 payload_len]
constexpr size_t kFrameHeader = 4 + 1 + 4 + 8 + 4;
constexpr size_t kFrameTrailer = 4;  // u32 crc32 over [4, end-of-payload)

void PutU32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }
void PutU64(char* p, uint64_t v) { std::memcpy(p, &v, 8); }
uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& db_path, FaultInjector* injector, RetryPolicy retry) {
  std::string path = db_path + ".wal";
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open WAL " + path + ": " +
                           std::strerror(errno));
  }
  auto wal = std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(std::move(path), fd, injector, retry));
  SIM_RETURN_IF_ERROR(wal->Scan());
  return wal;
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

Status WriteAheadLog::Scan() {
  off_t file_size = ::lseek(fd_, 0, SEEK_END);
  if (file_size < 0) return Status::IoError("cannot seek WAL " + path_);
  std::string buf;
  buf.resize(static_cast<size_t>(file_size));
  if (!buf.empty()) {
    SIM_RETURN_IF_ERROR(
        FullPread(fd_, buf.data(), buf.size(), 0, "scan of WAL " + path_));
  }

  std::map<PageId, uint64_t> images;
  uint64_t commit_end = 0;
  uint64_t max_lsn = 0;
  size_t off = 0;
  while (off + kFrameHeader + kFrameTrailer <= buf.size()) {
    const char* frame = buf.data() + off;
    if (GetU32(frame) != kWalMagic) break;
    uint8_t type = static_cast<uint8_t>(frame[4]);
    PageId page_id = GetU32(frame + 5);
    uint64_t lsn = GetU64(frame + 9);
    uint32_t payload_len = GetU32(frame + 17);
    if (type == kPageImageFrame) {
      if (payload_len != kPageSize) break;
    } else if (type == kCommitFrame) {
      if (payload_len != 0) break;
    } else {
      break;
    }
    size_t frame_len = kFrameHeader + payload_len + kFrameTrailer;
    if (off + frame_len > buf.size()) break;  // torn tail
    uint32_t crc = Crc32(frame + 4, kFrameHeader - 4 + payload_len);
    if (crc != GetU32(frame + kFrameHeader + payload_len)) break;
    if (lsn > max_lsn) max_lsn = lsn;
    if (type == kPageImageFrame) {
      images[page_id] = off + kFrameHeader;
    } else {
      committed_ = images;
      commit_end = off + frame_len;
    }
    off += frame_len;
  }
  // Everything past the last complete commit record — torn frames and
  // uncommitted images alike — is discarded: appends resume there.
  append_off_ = commit_end;
  latest_ = committed_;
  stats_.truncated_tail_bytes +=
      static_cast<uint64_t>(file_size) - commit_end;
  next_lsn_ = max_lsn + 1;
  return Status::Ok();
}

Status WriteAheadLog::WriteFrame(uint8_t type, PageId id, const char* payload,
                                 size_t payload_len) {
  size_t frame_len = kFrameHeader + payload_len + kFrameTrailer;
  std::vector<char> frame(frame_len);
  PutU32(frame.data(), kWalMagic);
  frame[4] = static_cast<char>(type);
  PutU32(frame.data() + 5, id);
  PutU64(frame.data() + 9, next_lsn_);
  PutU32(frame.data() + 17, static_cast<uint32_t>(payload_len));
  if (payload_len > 0) {
    std::memcpy(frame.data() + kFrameHeader, payload, payload_len);
  }
  uint32_t crc = Crc32(frame.data() + 4, kFrameHeader - 4 + payload_len);
  PutU32(frame.data() + kFrameHeader + payload_len, crc);

  // The append is idempotent: the offset only advances on success, so a
  // retried attempt (after a transient fault or a torn/short prefix)
  // simply overwrites the same log tail with the full frame.
  SIM_RETURN_IF_ERROR(RetryTransient(retry_, &retry_stats_, [&]() -> Status {
    if (injector_ != nullptr) {
      size_t allowed = 0;
      Status s = injector_->BeginWrite(frame_len, &allowed);
      if (!s.ok()) {
        if (allowed > 0) {
          // Torn append: a prefix of the frame reaches the disk. The frame
          // CRC cannot match, so recovery truncates it.
          (void)::pwrite(fd_, frame.data(), allowed,
                         static_cast<off_t>(append_off_));
        }
        return s;
      }
    }
    return FullPwrite(fd_, frame.data(), frame_len,
                      static_cast<off_t>(append_off_),
                      "append to WAL " + path_);
  }));
  append_off_ += frame_len;
  ++next_lsn_;
  return Status::Ok();
}

Status WriteAheadLog::AppendPageImage(PageId id, const char* data) {
  char stamped[kPageSize];
  std::memcpy(stamped, data, kPageSize);
  StampPageChecksum(stamped);
  uint64_t payload_off = append_off_ + kFrameHeader;
  SIM_RETURN_IF_ERROR(WriteFrame(kPageImageFrame, id, stamped, kPageSize));
  latest_[id] = payload_off;
  ++stats_.pages_appended;
  return Status::Ok();
}

Status WriteAheadLog::AppendCommit() {
  SIM_RETURN_IF_ERROR(WriteFrame(kCommitFrame, 0, nullptr, 0));
  SIM_RETURN_IF_ERROR(Sync());
  committed_ = latest_;
  ++stats_.commits;
  return Status::Ok();
}

Status WriteAheadLog::Sync() {
  return RetryTransient(retry_, &retry_stats_, [&]() -> Status {
    if (injector_ != nullptr) SIM_RETURN_IF_ERROR(injector_->BeginSync());
    while (::fsync(fd_) != 0) {
      if (errno == EINTR) continue;
      return StatusFromIoErrno("fsync of WAL " + path_, errno);
    }
    return Status::Ok();
  });
}

Status WriteAheadLog::ReadImage(PageId id, char* out) const {
  auto it = latest_.find(id);
  if (it == latest_.end()) {
    return Status::NotFound("no WAL image for page " + std::to_string(id));
  }
  SIM_RETURN_IF_ERROR(RetryTransient(retry_, nullptr, [&]() -> Status {
    if (injector_ != nullptr) {
      Status injected = injector_->BeginRead();
      if (!injected.ok()) return injected;
    }
    return FullPread(fd_, out, kPageSize, static_cast<off_t>(it->second),
                     "image read from WAL " + path_);
  }));
  if (!PageChecksumOk(out)) {
    return Status::IoError("WAL image checksum mismatch for page " +
                           std::to_string(id));
  }
  return Status::Ok();
}

Status WriteAheadLog::ReplayImages(const std::map<PageId, uint64_t>& images,
                                   Pager* db, uint64_t* replayed) {
  char buf[kPageSize];
  for (const auto& [id, off] : images) {
    SIM_RETURN_IF_ERROR(FullPread(fd_, buf, kPageSize,
                                  static_cast<off_t>(off),
                                  "replay read from WAL " + path_));
    if (!PageChecksumOk(buf)) {
      return Status::IoError("WAL image checksum mismatch for page " +
                             std::to_string(id));
    }
    while (db->page_count() <= id) {
      SIM_RETURN_IF_ERROR(db->Allocate().status());
    }
    SIM_RETURN_IF_ERROR(db->Write(id, buf));
    if (replayed != nullptr) ++*replayed;
  }
  return Status::Ok();
}

Status WriteAheadLog::TruncateAll() {
  if (injector_ != nullptr) {
    SIM_RETURN_IF_ERROR(injector_->BeginWrite(0, nullptr));
  }
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IoError("cannot truncate WAL " + path_);
  }
  SIM_RETURN_IF_ERROR(Sync());
  append_off_ = 0;
  latest_.clear();
  committed_.clear();
  return Status::Ok();
}

Status WriteAheadLog::Checkpoint(Pager* db) {
  if (empty()) return Status::Ok();
  SIM_RETURN_IF_ERROR(ReplayImages(committed_, db, nullptr));
  SIM_RETURN_IF_ERROR(db->Sync());
  SIM_RETURN_IF_ERROR(TruncateAll());
  ++stats_.checkpoints;
  return Status::Ok();
}

Result<uint64_t> WriteAheadLog::Recover(Pager* db) {
  uint64_t replayed = 0;
  if (append_off_ == 0) {
    // Nothing committed; drop any torn/uncommitted tail left on disk.
    off_t size = ::lseek(fd_, 0, SEEK_END);
    if (size > 0) SIM_RETURN_IF_ERROR(TruncateAll());
    return replayed;
  }
  SIM_RETURN_IF_ERROR(ReplayImages(committed_, db, &replayed));
  SIM_RETURN_IF_ERROR(db->Sync());
  SIM_RETURN_IF_ERROR(TruncateAll());
  stats_.recovered_pages += replayed;
  return replayed;
}

}  // namespace sim
