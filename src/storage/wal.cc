#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <vector>

namespace sim {

namespace {

constexpr uint32_t kWalMagic = 0x53494D57;  // "SIMW"
// [u32 magic][u8 type][u32 page_id][u64 lsn][u32 payload_len]
constexpr size_t kFrameHeader = 4 + 1 + 4 + 8 + 4;
constexpr size_t kFrameTrailer = 4;  // u32 crc32 over [4, end-of-payload)

void PutU32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }
void PutU64(char* p, uint64_t v) { std::memcpy(p, &v, 8); }
uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

bool PayloadLenValidFor(uint8_t type, uint32_t payload_len) {
  switch (type) {
    case kWalFramePageImage:
      return payload_len == kPageSize;
    case kWalFrameCommit:
      return payload_len == 0;
    case kWalFrameMetaDdl:
    case kWalFrameMetaSnapshot:
    case kWalFrameMetaQuarantine:
      // Logical records are variable-length; the frame-fits-in-file and CRC
      // checks below do the real validation.
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* WalFrameTypeName(uint8_t type) {
  switch (type) {
    case kWalFramePageImage:
      return "page-image";
    case kWalFrameCommit:
      return "commit";
    case kWalFrameMetaDdl:
      return "meta-ddl";
    case kWalFrameMetaSnapshot:
      return "meta-snapshot";
    case kWalFrameMetaQuarantine:
      return "meta-quarantine";
    default:
      return "unknown";
  }
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& db_path, FaultInjector* injector, RetryPolicy retry) {
  std::string path = db_path + ".wal";
  // A crash during ResetWithBaseline can strand the temp file it was
  // staging; it is garbage by construction (the rename never happened).
  (void)::unlink((path + ".tmp").c_str());
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open WAL " + path + ": " +
                           std::strerror(errno));
  }
  auto wal = std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(std::move(path), fd, injector, retry));
  SIM_RETURN_IF_ERROR(wal->Scan());
  return wal;
}

WriteAheadLog::~WriteAheadLog() {
  StopGroupCommit();
  MutexLock lock(mu_);
  if (fd_ >= 0) ::close(fd_);
}

Status WriteAheadLog::Scan() {
  // Runs inside Open, before the log is shared; the lock is for the
  // analysis (every guarded field it writes), not for contention.
  MutexLock lock(mu_);
  off_t file_size = ::lseek(fd_, 0, SEEK_END);
  if (file_size < 0) return Status::IoError("cannot seek WAL " + path_);
  std::string buf;
  buf.resize(static_cast<size_t>(file_size));
  if (!buf.empty()) {
    SIM_RETURN_IF_ERROR(
        FullPread(fd_, buf.data(), buf.size(), 0, "scan of WAL " + path_));
  }

  std::map<PageId, uint64_t> images;
  // Metadata frames, like page images, only count once a commit record
  // seals them; a torn tail must not leak half-written DDL into recovery.
  std::vector<std::string> pending_ddl;
  std::string pending_snapshot;
  bool have_pending_snapshot = false;
  std::string pending_quarantine;
  bool have_pending_quarantine = false;
  uint64_t commit_end = 0;
  uint64_t max_lsn = 0;
  size_t off = 0;
  while (off + kFrameHeader + kFrameTrailer <= buf.size()) {
    const char* frame = buf.data() + off;
    if (GetU32(frame) != kWalMagic) break;
    uint8_t type = static_cast<uint8_t>(frame[4]);
    PageId page_id = GetU32(frame + 5);
    uint64_t lsn = GetU64(frame + 9);
    uint32_t payload_len = GetU32(frame + 17);
    if (!PayloadLenValidFor(type, payload_len)) break;
    size_t frame_len = kFrameHeader + payload_len + kFrameTrailer;
    if (off + frame_len > buf.size()) break;  // torn tail
    uint32_t crc = Crc32(frame + 4, kFrameHeader - 4 + payload_len);
    if (crc != GetU32(frame + kFrameHeader + payload_len)) break;
    // LSNs are strictly increasing within one log generation. A stale
    // frame left over from before a log rewrite carries a LOWER lsn than
    // its predecessors (next_lsn_ never rewinds), so this check stops the
    // scan from aliasing old content as a valid continuation.
    if (lsn <= max_lsn) break;
    max_lsn = lsn;
    switch (type) {
      case kWalFramePageImage:
        images[page_id] = off + kFrameHeader;
        break;
      case kWalFrameMetaDdl:
        pending_ddl.emplace_back(frame + kFrameHeader, payload_len);
        break;
      case kWalFrameMetaSnapshot:
        pending_snapshot.assign(frame + kFrameHeader, payload_len);
        have_pending_snapshot = true;
        break;
      case kWalFrameMetaQuarantine:
        pending_quarantine.assign(frame + kFrameHeader, payload_len);
        have_pending_quarantine = true;
        break;
      case kWalFrameCommit:
        committed_ = images;
        commit_end = off + frame_len;
        for (std::string& d : pending_ddl) {
          recovered_ddl_.push_back(std::move(d));
          ++stats_.recovered_meta_records;
        }
        pending_ddl.clear();
        if (have_pending_snapshot) {
          recovered_snapshot_ = std::move(pending_snapshot);
          pending_snapshot.clear();
          have_pending_snapshot = false;
          ++stats_.recovered_meta_records;
        }
        if (have_pending_quarantine) {
          recovered_quarantine_ = std::move(pending_quarantine);
          pending_quarantine.clear();
          have_pending_quarantine = false;
          quarantine_payload_ = recovered_quarantine_;
          ++stats_.recovered_meta_records;
        }
        break;
      default:
        break;
    }
    off += frame_len;
  }
  // Everything past the last complete commit record — torn frames and
  // uncommitted images alike — is discarded: appends resume there.
  append_off_ = commit_end;
  flushed_off_ = commit_end;
  latest_ = committed_;
  stats_.truncated_tail_bytes +=
      static_cast<uint64_t>(file_size) - commit_end;
  next_lsn_ = max_lsn + 1;
  return Status::Ok();
}

void WriteAheadLog::BuildFrame(uint8_t type, PageId id, const char* payload,
                               size_t payload_len, std::string* out,
                               bool stamp_page_checksum) {
  size_t frame_len = kFrameHeader + payload_len + kFrameTrailer;
  size_t base = out->size();
  out->resize(base + frame_len);
  char* frame = out->data() + base;
  PutU32(frame, kWalMagic);
  frame[4] = static_cast<char>(type);
  PutU32(frame + 5, id);
  PutU64(frame + 9, next_lsn_);
  PutU32(frame + 17, static_cast<uint32_t>(payload_len));
  if (payload_len > 0) {
    std::memcpy(frame + kFrameHeader, payload, payload_len);
  }
  if (stamp_page_checksum) StampPageChecksum(frame + kFrameHeader);
  uint32_t crc = Crc32(frame + 4, kFrameHeader - 4 + payload_len);
  PutU32(frame + kFrameHeader + payload_len, crc);
  ++next_lsn_;
}

Status WriteAheadLog::WriteFrame(uint8_t type, PageId id, const char* payload,
                                 size_t payload_len,
                                 bool stamp_page_checksum) {
  // Frames accumulate in pending_ and reach the file in one pwrite at the
  // next FlushPendingLocked (commit/sync path): a committer's append costs
  // no syscall, and a whole group-commit batch is written with a single
  // write. Durability is unchanged — nothing in pending_ is ever part of
  // the committed state until a flush + fsync has covered it.
  BuildFrame(type, id, payload, payload_len, &pending_, stamp_page_checksum);
  append_off_ += kFrameHeader + payload_len + kFrameTrailer;
  return Status::Ok();
}

Status WriteAheadLog::FlushPendingLocked() {
  if (pending_.empty()) return Status::Ok();
  // The flush is idempotent: flushed_off_ only advances on success, so a
  // retried attempt (after a transient fault or a torn/short prefix)
  // simply overwrites the same log tail with the full accumulation.
  SIM_RETURN_IF_ERROR(RetryTransient(retry_, &retry_stats_, [&]() -> Status {
    if (injector_ != nullptr) {
      size_t allowed = 0;
      Status s = injector_->BeginWrite(pending_.size(), &allowed);
      if (!s.ok()) {
        if (allowed > 0) {
          // Torn flush: a prefix reaches the disk. The first cut-off
          // frame's CRC cannot match, so recovery truncates there.
          (void)::pwrite(fd_, pending_.data(), allowed,
                         static_cast<off_t>(flushed_off_));
        }
        return s;
      }
    }
    return FullPwrite(fd_, pending_.data(), pending_.size(),
                      static_cast<off_t>(flushed_off_),
                      "append flush to WAL " + path_);
  }));
  flushed_off_ += pending_.size();
  pending_.clear();
  return Status::Ok();
}

Status WriteAheadLog::AppendPageImage(PageId id, const char* data) {
  MutexLock lock(mu_);
  uint64_t payload_off = append_off_ + kFrameHeader;
  SIM_RETURN_IF_ERROR(WriteFrame(kWalFramePageImage, id, data, kPageSize,
                                 /*stamp_page_checksum=*/true));
  latest_[id] = payload_off;
  ++stats_.pages_appended;
  return Status::Ok();
}

Status WriteAheadLog::AppendMetaLocked(uint8_t type, std::string_view payload) {
  SIM_RETURN_IF_ERROR(
      WriteFrame(type, 0, payload.data(), payload.size()));
  ++stats_.meta_frames_appended;
  return Status::Ok();
}

Status WriteAheadLog::AppendMetaDdl(std::string_view ddl_text) {
  MutexLock lock(mu_);
  return AppendMetaLocked(kWalFrameMetaDdl, ddl_text);
}

Status WriteAheadLog::AppendMetaSnapshot(std::string_view snapshot) {
  MutexLock lock(mu_);
  return AppendMetaLocked(kWalFrameMetaSnapshot, snapshot);
}

Status WriteAheadLog::AppendMetaQuarantine(std::string_view registry) {
  MutexLock lock(mu_);
  quarantine_payload_.assign(registry.data(), registry.size());
  return AppendMetaLocked(kWalFrameMetaQuarantine, registry);
}

Status WriteAheadLog::CommitLocked() {
  SIM_RETURN_IF_ERROR(WriteFrame(kWalFrameCommit, 0, nullptr, 0));
  SIM_RETURN_IF_ERROR(FlushPendingLocked());
  SIM_RETURN_IF_ERROR(SyncLocked());
  committed_ = latest_;
  ++stats_.commits;
  return Status::Ok();
}

Status WriteAheadLog::AppendCommit() {
  // Group commit: take a ticket and wait for the durability thread to
  // cover it. Several waiters' tickets ride the same commit frame + fsync.
  // The worker resolves every ticket issued before gc_stop_ is set (it
  // drains until issued == resolved before exiting), and the gc_stop_
  // check below keeps a committer racing StopGroupCommit from enqueueing
  // a ticket the departed worker would never resolve — that committer
  // falls through to the direct single-fsync path instead.
  if (gc_running_.load(std::memory_order_acquire)) {
    MutexLock lock(gc_mu_);
    if (!gc_stop_) {
      uint64_t ticket = ++gc_issued_;
      // Wake the worker only on the ticket that completes the expected
      // batch; intermediate tickets cost two context switches apiece to
      // deliver, which on one core rivals the fsync being amortized. When
      // the expected batch never fills (committers went away), the
      // worker's timed wait notices the stragglers on its own.
      uint64_t pending = gc_issued_ - gc_resolved_;
      if (pending >= gc_expected_batch_) {
        gc_work_cv_.NotifyOne();
      }
      while (gc_resolved_ < ticket) gc_done_cv_.Wait(lock);
      return gc_batch_status_;
    }
  }
  MutexLock lock(mu_);
  return CommitLocked();
}

void WriteAheadLog::BeginCommitSequence() { seq_mu_.Lock(); }
void WriteAheadLog::EndCommitSequence() { seq_mu_.Unlock(); }

Status WriteAheadLog::AppendCommitBegin(uint64_t* ticket) {
  *ticket = 0;
  // Same ticket protocol as AppendCommit, minus the wait: the caller holds
  // the commit-sequence bracket, so the worker cannot cut a frame until
  // the bracket is released — the ticket marks this sequence complete.
  if (gc_running_.load(std::memory_order_acquire)) {
    MutexLock lock(gc_mu_);
    if (!gc_stop_) {
      *ticket = ++gc_issued_;
      uint64_t pending = gc_issued_ - gc_resolved_;
      if (pending >= gc_expected_batch_) {
        gc_work_cv_.NotifyOne();
      }
      return Status::Ok();
    }
  }
  MutexLock lock(mu_);
  return CommitLocked();
}

Status WriteAheadLog::WaitCommitDurable(uint64_t ticket) {
  if (ticket == 0) return Status::Ok();
  MutexLock lock(gc_mu_);
  while (gc_resolved_ < ticket) gc_done_cv_.Wait(lock);
  return gc_batch_status_;
}

Status WriteAheadLog::DrainCommits() {
  if (!gc_running_.load(std::memory_order_acquire)) return Status::Ok();
  uint64_t last;
  {
    MutexLock lock(gc_mu_);
    last = gc_issued_;
    // Pending stragglers may be below the worker's expected batch size;
    // wake it so the drain is bounded by one fsync, not the poll timeout.
    if (last > gc_resolved_) gc_work_cv_.NotifyOne();
  }
  return WaitCommitDurable(last);
}

Status WriteAheadLog::SyncLocked() {
  return RetryTransient(retry_, &retry_stats_, [&]() -> Status {
    if (injector_ != nullptr) SIM_RETURN_IF_ERROR(injector_->BeginSync());
    return FullFsync(fd_, "fsync of WAL " + path_);
  });
}

Status WriteAheadLog::Sync() {
  MutexLock lock(mu_);
  SIM_RETURN_IF_ERROR(FlushPendingLocked());
  return SyncLocked();
}

void WriteAheadLog::StartGroupCommit(obs::Histogram* batch_size_hist) {
  if (gc_worker_.joinable()) return;
  {
    MutexLock lock(gc_mu_);
    gc_stop_ = false;
  }
  gc_batch_hist_ = batch_size_hist;
  gc_worker_ = std::thread([this] { GroupCommitLoop(); });
  gc_running_.store(true, std::memory_order_release);
}

void WriteAheadLog::StopGroupCommit() {
  if (!gc_worker_.joinable()) return;
  {
    MutexLock lock(gc_mu_);
    gc_stop_ = true;
  }
  gc_work_cv_.NotifyAll();
  gc_worker_.join();
  gc_running_.store(false, std::memory_order_release);
}

void WriteAheadLog::GroupCommitLoop() {
  for (;;) {
    uint64_t batch_begin = 0;
    uint64_t batch_end = 0;
    {
      MutexLock lock(gc_mu_);
      // Committers only signal the ticket that completes the expected
      // batch, so when fewer committers than expected remain, their
      // tickets arrive silently: poll for them on a timeout. If a full
      // timeout passes with no tickets at all, the load is gone — drop
      // back to per-ticket wakeups (expected batch 1) so the idle worker
      // can sleep indefinitely instead of polling.
      while (!(gc_stop_ || gc_issued_ > gc_resolved_)) {
        if (gc_expected_batch_ > 1) {
          if (gc_work_cv_.WaitFor(lock, std::chrono::microseconds(500)) ==
                  std::cv_status::timeout &&
              gc_issued_ == gc_resolved_) {
            gc_expected_batch_ = 1;
          }
        } else {
          gc_work_cv_.Wait(lock);
        }
      }
      if (gc_issued_ == gc_resolved_) {
        if (gc_stop_) return;
        continue;
      }
      // Adaptive batch window: committers resolved by the previous batch
      // re-enter within microseconds of being woken, but cutting the batch
      // the instant the first ticket appears would miss them — batches
      // then alternate between halves of the committer population. Expect
      // about as many tickets as the last batch carried and give them a
      // bounded window to arrive. A lone committer (expected batch 1)
      // never waits.
      if (gc_issued_ - gc_resolved_ < gc_expected_batch_) {
        auto deadline =
            std::chrono::steady_clock::now() + std::chrono::microseconds(200);
        while (!(gc_stop_ ||
                 gc_issued_ - gc_resolved_ >= gc_expected_batch_)) {
          if (gc_work_cv_.WaitUntil(lock, deadline) ==
              std::cv_status::timeout) {
            break;
          }
        }
      }
      // Everything issued by now rides one commit record. New tickets that
      // arrive while this batch fsyncs form the next batch.
      batch_end = gc_issued_;
      batch_begin = gc_resolved_ + 1;
    }
    Status s = GroupCommitBarrier();
    if (gc_batch_hist_ != nullptr) {
      gc_batch_hist_->Observe(batch_end - batch_begin + 1);
    }
    {
      MutexLock lock(gc_mu_);
      gc_expected_batch_ = batch_end - batch_begin + 1;
      // One status covers the whole batch (they shared one frame + fsync).
      // A committer from an older batch that reads a NEWER batch's status
      // is still sound: a later successful fsync durably covers every
      // earlier frame, and a later failure is merely conservative.
      gc_batch_status_ = s;
      gc_resolved_ = batch_end;
    }
    // Notify with gc_mu_ released so the first woken committer does not
    // immediately block on the mutex this thread still holds.
    gc_done_cv_.NotifyAll();
  }
}

Status WriteAheadLog::GroupCommitBarrier() {
  // Write the commit frame under mu_, but fsync OUTSIDE it (guarded by
  // sync_mu_ so the fd cannot be swapped away mid-sync): committers keep
  // appending while the barrier is in flight, which is what lets the next
  // batch grow — the whole point of group commit. The latest_ map is
  // snapshotted at the frame write; promoting the live map after the
  // fsync would claim images the barrier never covered.
  Status s;
  std::map<PageId, uint64_t> snapshot;
  uint64_t epoch = 0;
  int fd = -1;
  {
    // The commit-sequence bracket keeps the frame off the middle of a
    // concurrent committer's append run (its images would be committed
    // under the previous snapshot). Held only across the frame write +
    // flush — never across the fsync.
    seq_mu_.Lock();
    MutexLock lock(mu_);
    s = WriteFrame(kWalFrameCommit, 0, nullptr, 0);
    // One pwrite covers every frame the batch's committers buffered —
    // this is where batching pays twice: one write AND one fsync.
    if (s.ok()) s = FlushPendingLocked();
    if (!s.ok()) {
      seq_mu_.Unlock();
      ++stats_.group_commit_batches;
      return s;
    }
    snapshot = latest_;
    epoch = reset_epoch_;
    fd = fd_;
    sync_mu_.Lock();  // released after the fsync below; order: mu_ first
    seq_mu_.Unlock();
  }
  // Local retry stats: concurrent appenders update retry_stats_ under
  // mu_, which we no longer hold here.
  RetryStats local;
  s = RetryTransient(retry_, &local, [&]() -> Status {
    if (injector_ != nullptr) SIM_RETURN_IF_ERROR(injector_->BeginSync());
    return FullFsync(fd, "fsync of WAL " + path_);
  });
  sync_mu_.Unlock();
  MutexLock lock(mu_);
  retry_stats_.attempts += local.attempts;
  retry_stats_.retries += local.retries;
  retry_stats_.giveups += local.giveups;
  // A truncate/baseline reset during the fsync already invalidated the
  // image maps; promoting a stale snapshot would resurrect them.
  if (s.ok() && epoch == reset_epoch_) {
    committed_ = std::move(snapshot);
    ++stats_.commits;
  }
  ++stats_.group_commit_batches;
  return s;
}

Status WriteAheadLog::ReadImage(PageId id, char* out) const {
  MutexLock lock(mu_);
  auto it = latest_.find(id);
  if (it == latest_.end()) {
    return Status::NotFound("no WAL image for page " + std::to_string(id));
  }
  if (it->second >= flushed_off_) {
    // The image is still in the userspace append buffer; serve it from
    // memory (no injector — there is no I/O to fault).
    std::memcpy(out, pending_.data() + (it->second - flushed_off_),
                kPageSize);
    if (!PageChecksumOk(out)) {
      return Status::IoError("WAL image checksum mismatch for page " +
                             std::to_string(id));
    }
    return Status::Ok();
  }
  SIM_RETURN_IF_ERROR(RetryTransient(retry_, nullptr, [&]() -> Status {
    if (injector_ != nullptr) {
      Status injected = injector_->BeginRead();
      if (!injected.ok()) return injected;
    }
    return FullPread(fd_, out, kPageSize, static_cast<off_t>(it->second),
                     "image read from WAL " + path_);
  }));
  if (!PageChecksumOk(out)) {
    return Status::IoError("WAL image checksum mismatch for page " +
                           std::to_string(id));
  }
  return Status::Ok();
}

Status WriteAheadLog::ReplayImages(const std::map<PageId, uint64_t>& images,
                                   Pager* db, uint64_t* replayed) {
  char buf[kPageSize];
  for (const auto& [id, off] : images) {
    SIM_RETURN_IF_ERROR(FullPread(fd_, buf, kPageSize,
                                  static_cast<off_t>(off),
                                  "replay read from WAL " + path_));
    if (!PageChecksumOk(buf)) {
      return Status::IoError("WAL image checksum mismatch for page " +
                             std::to_string(id));
    }
    while (db->page_count() <= id) {
      SIM_RETURN_IF_ERROR(db->Allocate().status());
    }
    SIM_RETURN_IF_ERROR(db->Write(id, buf));
    if (replayed != nullptr) ++*replayed;
  }
  return Status::Ok();
}

Status WriteAheadLog::TruncateAllLocked() {
  if (injector_ != nullptr) {
    SIM_RETURN_IF_ERROR(injector_->BeginWrite(0, nullptr));
  }
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IoError("cannot truncate WAL " + path_);
  }
  SIM_RETURN_IF_ERROR(SyncLocked());
  append_off_ = 0;
  flushed_off_ = 0;
  pending_.clear();
  latest_.clear();
  committed_.clear();
  ++reset_epoch_;
  return Status::Ok();
}

Status WriteAheadLog::ResetWithBaselineLocked(
    const std::vector<std::string>& ddl, const std::string& snapshot) {
  // Build the whole baseline image in memory: every DDL batch in order,
  // the mapper snapshot, one commit record sealing them.
  std::string content;
  for (const std::string& d : ddl) {
    BuildFrame(kWalFrameMetaDdl, 0, d.data(), d.size(), &content);
  }
  if (!snapshot.empty()) {
    BuildFrame(kWalFrameMetaSnapshot, 0, snapshot.data(), snapshot.size(),
               &content);
  }
  if (!quarantine_payload_.empty()) {
    BuildFrame(kWalFrameMetaQuarantine, 0, quarantine_payload_.data(),
               quarantine_payload_.size(), &content);
  }
  BuildFrame(kWalFrameCommit, 0, nullptr, 0, &content);

  // Stage it in a sibling temp file and rename over the log. rename(2) is
  // atomic, so a crash at ANY point leaves either the previous log (whose
  // metadata recovery already replays idempotently) or the complete new
  // baseline — never a log whose catalog has been truncated away while the
  // data pages live on in the database file.
  std::string tmp_path = path_ + ".tmp";
  int tmp_fd = ::open(tmp_path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (tmp_fd < 0) {
    return Status::IoError("cannot open WAL staging file " + tmp_path + ": " +
                           std::strerror(errno));
  }
  Status st = RetryTransient(retry_, &retry_stats_, [&]() -> Status {
    if (injector_ != nullptr) {
      size_t allowed = 0;
      Status s = injector_->BeginWrite(content.size(), &allowed);
      if (!s.ok()) {
        if (allowed > 0) {
          (void)::pwrite(tmp_fd, content.data(), allowed, 0);
        }
        return s;
      }
    }
    return FullPwrite(tmp_fd, content.data(), content.size(), 0,
                      "baseline write to " + tmp_path);
  });
  if (st.ok()) {
    st = RetryTransient(retry_, &retry_stats_, [&]() -> Status {
      if (injector_ != nullptr) SIM_RETURN_IF_ERROR(injector_->BeginSync());
      return FullFsync(tmp_fd, "fsync of WAL staging file " + tmp_path);
    });
  }
  if (st.ok()) {
    st = RetryTransient(retry_, &retry_stats_, [&]() -> Status {
      if (injector_ != nullptr) {
        SIM_RETURN_IF_ERROR(injector_->BeginWrite(0, nullptr));
      }
      if (::rename(tmp_path.c_str(), path_.c_str()) != 0) {
        return StatusFromIoErrno("rename of WAL baseline " + tmp_path, errno);
      }
      return Status::Ok();
    });
  }
  if (!st.ok()) {
    ::close(tmp_fd);
    (void)::unlink(tmp_path.c_str());
    return st;
  }
  // The staged file IS the log now; retire the old descriptor (its inode
  // is unlinked) and adopt the new one. sync_mu_ keeps the swap out from
  // under a group-commit fsync that targets the old descriptor.
  {
    MutexLock sync_lock(sync_mu_);
    ::close(fd_);
    fd_ = tmp_fd;
  }
  append_off_ = content.size();
  flushed_off_ = content.size();
  pending_.clear();
  latest_.clear();
  committed_.clear();
  ++reset_epoch_;
  ++stats_.commits;
  return Status::Ok();
}

Status WriteAheadLog::ResetWithBaseline(const std::vector<std::string>& ddl,
                                        const std::string& snapshot) {
  MutexLock lock(mu_);
  return ResetWithBaselineLocked(ddl, snapshot);
}

Status WriteAheadLog::Checkpoint(Pager* db) {
  MutexLock lock(mu_);
  if (append_off_ == 0) return Status::Ok();
  SIM_RETURN_IF_ERROR(ReplayImages(committed_, db, nullptr));
  SIM_RETURN_IF_ERROR(db->Sync());
  SIM_RETURN_IF_ERROR(TruncateAllLocked());
  ++stats_.checkpoints;
  return Status::Ok();
}

Status WriteAheadLog::Checkpoint(Pager* db,
                                 const std::vector<std::string>& ddl,
                                 const std::string& snapshot) {
  MutexLock lock(mu_);
  SIM_RETURN_IF_ERROR(ReplayImages(committed_, db, nullptr));
  SIM_RETURN_IF_ERROR(db->Sync());
  SIM_RETURN_IF_ERROR(ResetWithBaselineLocked(ddl, snapshot));
  ++stats_.checkpoints;
  return Status::Ok();
}

Result<uint64_t> WriteAheadLog::Recover(Pager* db) {
  MutexLock lock(mu_);
  uint64_t replayed = 0;
  if (append_off_ == 0) {
    // Nothing committed; drop any torn/uncommitted tail left on disk.
    off_t size = ::lseek(fd_, 0, SEEK_END);
    if (size > 0) SIM_RETURN_IF_ERROR(TruncateAllLocked());
    return replayed;
  }
  SIM_RETURN_IF_ERROR(ReplayImages(committed_, db, &replayed));
  SIM_RETURN_IF_ERROR(db->Sync());
  if (recovered_ddl_.empty() && recovered_snapshot_.empty() &&
      recovered_quarantine_.empty()) {
    // A metadata-free log (pre-metadata files, WAL unit tests) has nothing
    // left worth keeping once its images are in the database file.
    SIM_RETURN_IF_ERROR(TruncateAllLocked());
  }
  // Otherwise the log stays intact: the caller reinstalls catalog + mapper
  // from recovered_ddl()/recovered_snapshot() and seals the log with
  // ResetWithBaseline(). If a crash intervenes before that, the next open
  // replays the very same state — recovery is idempotent.
  stats_.recovered_pages += replayed;
  return replayed;
}

Result<WalInspection> InspectWal(const std::string& wal_path) {
  std::ifstream in(wal_path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open WAL " + wal_path);
  }
  std::string buf((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  WalInspection out;
  out.file_bytes = buf.size();
  uint64_t max_lsn = 0;
  size_t off = 0;
  size_t last_commit_frame = 0;  // frames.size() at the last commit record
  while (true) {
    if (off == buf.size()) break;
    if (off + kFrameHeader + kFrameTrailer > buf.size()) {
      out.stop_reason = "truncated frame header (torn tail)";
      break;
    }
    const char* frame = buf.data() + off;
    if (GetU32(frame) != kWalMagic) {
      out.stop_reason = "bad frame magic";
      break;
    }
    WalFrameInfo info;
    info.offset = off;
    info.type = static_cast<uint8_t>(frame[4]);
    info.page_id = GetU32(frame + 5);
    info.lsn = GetU64(frame + 9);
    info.payload_len = GetU32(frame + 17);
    if (!PayloadLenValidFor(info.type, info.payload_len)) {
      out.stop_reason = "invalid frame type or payload length";
      break;
    }
    size_t frame_len = kFrameHeader + info.payload_len + kFrameTrailer;
    if (off + frame_len > buf.size()) {
      out.stop_reason = "truncated frame payload (torn tail)";
      break;
    }
    uint32_t crc = Crc32(frame + 4, kFrameHeader - 4 + info.payload_len);
    if (crc != GetU32(frame + kFrameHeader + info.payload_len)) {
      out.stop_reason = "frame crc mismatch";
      break;
    }
    if (info.lsn <= max_lsn) {
      out.stop_reason = "lsn not strictly increasing (stale frame)";
      break;
    }
    max_lsn = info.lsn;
    off += frame_len;
    out.valid_bytes = off;
    if (info.type == kWalFramePageImage) ++out.page_frames;
    if (info.type == kWalFrameMetaDdl || info.type == kWalFrameMetaSnapshot ||
        info.type == kWalFrameMetaQuarantine) {
      ++out.meta_frames;
    }
    out.frames.push_back(info);
    if (info.type == kWalFrameCommit) {
      ++out.commits;
      out.committed_bytes = off;
      last_commit_frame = out.frames.size();
    }
  }
  for (size_t i = 0; i < last_commit_frame; ++i) {
    out.frames[i].committed = true;
  }
  return out;
}

}  // namespace sim
