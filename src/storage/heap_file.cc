#include "storage/heap_file.h"

#include <algorithm>

namespace sim {

HeapFile::HeapFile(BufferPool* pool, std::string name)
    : pool_(pool), name_(std::move(name)) {}

Result<RecordId> HeapFile::Insert(std::string_view record) {
  if (record.size() > kPageSize - 64) {
    return Status::InvalidArgument("record larger than page capacity");
  }
  // Try the most recently appended pages first (cheap heuristic), guided by
  // the free-space estimates. Ordinary inserts honour the clustering
  // reserve; records that cannot fit anywhere even so still get fresh
  // pages below.
  int needed = static_cast<int>(record.size()) + reserve_bytes_;
  for (size_t i = pages_.size(); i-- > 0;) {
    if (free_estimate_[i] < needed) continue;
    Result<PageHandle> fetched = pool_->Fetch(pages_[i]);
    if (!fetched.ok()) {
      // A quarantined page cannot take new records; place the record on a
      // healthy page instead so writes keep working while degraded.
      if (fetched.status().code() == StatusCode::kDataLoss) {
        free_estimate_[i] = 0;
        continue;
      }
      return fetched.status();
    }
    PageHandle h = std::move(fetched).value();
    SlottedPage page(h.data());
    Result<int> slot = page.Insert(record);
    if (slot.ok()) {
      h.MarkDirty();
      free_estimate_[i] = page.FreeSpaceForNewRecord();
      ++record_count_;
      return RecordId{pages_[i], static_cast<uint16_t>(*slot)};
    }
    free_estimate_[i] = page.FreeSpaceForNewRecord();
    // Only probe a couple of pages before extending the file.
    if (i + 4 < pages_.size()) break;
  }
  SIM_ASSIGN_OR_RETURN(PageHandle h, pool_->New());
  SlottedPage::Initialize(h.data());
  SlottedPage page(h.data());
  SIM_ASSIGN_OR_RETURN(int slot, page.Insert(record));
  h.MarkDirty();
  pages_.push_back(h.id());
  free_estimate_.push_back(page.FreeSpaceForNewRecord());
  ++record_count_;
  return RecordId{h.id(), static_cast<uint16_t>(slot)};
}

Result<RecordId> HeapFile::InsertNear(PageId hint, std::string_view record) {
  auto it = std::find(pages_.begin(), pages_.end(), hint);
  if (it == pages_.end() && hint != kInvalidPageId &&
      hint < pool_->pager()->page_count()) {
    // Adopt a page owned by another file: clustered mappings place
    // dependent records physically next to their owner even across storage
    // units (records carry a unit tag so scans skip foreign ones).
    pages_.push_back(hint);
    free_estimate_.push_back(0);  // refreshed below
    it = pages_.end() - 1;
  }
  if (it != pages_.end()) {
    Result<PageHandle> fetched = pool_->Fetch(hint);
    if (!fetched.ok()) {
      // A quarantined hint page degrades clustering, not the insert.
      if (fetched.status().code() != StatusCode::kDataLoss) {
        return fetched.status();
      }
      free_estimate_[it - pages_.begin()] = 0;
      return Insert(record);
    }
    PageHandle h = std::move(fetched).value();
    SlottedPage page(h.data());
    Result<int> slot = page.Insert(record);
    size_t idx = static_cast<size_t>(it - pages_.begin());
    free_estimate_[idx] = page.FreeSpaceForNewRecord();
    if (slot.ok()) {
      h.MarkDirty();
      ++record_count_;
      return RecordId{hint, static_cast<uint16_t>(*slot)};
    }
  }
  return Insert(record);
}

Status HeapFile::Get(RecordId rid, std::string* out) const {
  SIM_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(rid.page));
  SlottedPage page(const_cast<char*>(h.data()));
  std::string_view rec;
  if (!page.Get(rid.slot, &rec)) {
    return Status::NotFound("no record at " + rid.ToString() + " in " + name_);
  }
  out->assign(rec.data(), rec.size());
  return Status::Ok();
}

Result<RecordId> HeapFile::Update(RecordId rid, std::string_view record) {
  {
    SIM_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(rid.page));
    SlottedPage page(h.data());
    Status s = page.Update(rid.slot, record);
    if (s.ok()) {
      h.MarkDirty();
      return rid;
    }
    if (s.code() != StatusCode::kIoError) return s;
    // Did not fit: fall through to move. Update() already tombstoned the
    // slot in the growth path only on success, so delete explicitly here.
    std::string_view existing;
    if (page.Get(rid.slot, &existing)) {
      SIM_RETURN_IF_ERROR(page.Delete(rid.slot));
      h.MarkDirty();
    }
    --record_count_;  // Insert below will re-increment.
  }
  return Insert(record);
}

Status HeapFile::Delete(RecordId rid) {
  SIM_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(rid.page));
  SlottedPage page(h.data());
  SIM_RETURN_IF_ERROR(page.Delete(rid.slot));
  h.MarkDirty();
  if (record_count_ > 0) --record_count_;
  auto it = std::find(pages_.begin(), pages_.end(), rid.page);
  if (it != pages_.end()) {
    free_estimate_[it - pages_.begin()] = page.FreeSpaceForNewRecord();
  }
  return Status::Ok();
}

Status HeapFile::Attach(std::vector<PageId> pages, uint64_t record_count) {
  pages_ = std::move(pages);
  free_estimate_.clear();
  free_estimate_.reserve(pages_.size());
  for (PageId id : pages_) {
    Result<PageHandle> fetched = pool_->Fetch(id);
    if (!fetched.ok()) {
      // A database must reopen while quarantined pages await repair: keep
      // the page in the list (REPAIR DATABASE needs to find it) but never
      // target it for inserts.
      if (fetched.status().code() == StatusCode::kDataLoss) {
        free_estimate_.push_back(0);
        continue;
      }
      return fetched.status();
    }
    SlottedPage page(fetched->data());
    free_estimate_.push_back(page.FreeSpaceForNewRecord());
  }
  record_count_ = record_count;
  return Status::Ok();
}

HeapFile::Iterator::Iterator(const HeapFile* file) : file_(file) {
  Advance(/*first=*/true);
}

void HeapFile::Iterator::Next() { Advance(/*first=*/false); }

void HeapFile::Iterator::Advance(bool first) {
  valid_ = false;
  if (!first && page_index_ >= file_->pages_.size()) return;
  while (page_index_ < file_->pages_.size()) {
    Result<PageHandle> h = file_->pool_->Fetch(file_->pages_[page_index_]);
    if (!h.ok()) {
      // Degraded service: a quarantined page loses only its own records —
      // the scan skips it (counted, never silent) and keeps delivering
      // records from every healthy page. Other errors still stop the scan.
      if (h.status().code() == StatusCode::kDataLoss) {
        ++pages_skipped_;
        ++page_index_;
        slot_ = -1;
        continue;
      }
      status_ = h.status();
      return;
    }
    SlottedPage page(h->data());
    for (int s = slot_ + 1; s < page.slot_count(); ++s) {
      std::string_view rec;
      if (page.Get(s, &rec)) {
        slot_ = s;
        rid_ = RecordId{file_->pages_[page_index_], static_cast<uint16_t>(s)};
        record_.assign(rec.data(), rec.size());
        valid_ = true;
        return;
      }
    }
    ++page_index_;
    slot_ = -1;
  }
}

}  // namespace sim
