#ifndef SIMDB_STORAGE_HASH_INDEX_H_
#define SIMDB_STORAGE_HASH_INDEX_H_

// Page-based static hash index: a fixed bucket directory, each bucket a
// chain of pages holding (key, u64 value) entries. This is the "random
// keys (based on hashing)" organization of §5.2. Lookups cost one block
// access per chain page probed; well-sized tables probe exactly one.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"

namespace sim {

class HashIndex {
 public:
  // Creates an index with `num_buckets` chains (rounded up to a power of
  // two). Bucket pages are allocated lazily.
  static Result<HashIndex> Create(BufferPool* pool, std::string name,
                                  size_t num_buckets);

  // Reattaches to an existing index whose bucket chains are already
  // durable; the directory and entry count come from a recovered snapshot.
  static HashIndex Attach(BufferPool* pool, std::string name,
                          std::vector<PageId> buckets, uint64_t entry_count) {
    HashIndex idx(pool, std::move(name), buckets.size());
    idx.buckets_ = std::move(buckets);
    idx.entry_count_ = entry_count;
    return idx;
  }

  const std::string& name() const { return name_; }
  uint64_t entry_count() const { return entry_count_; }
  // Bucket directory (head page per chain); snapshot/rehydration input.
  const std::vector<PageId>& buckets() const { return buckets_; }

  Status Insert(std::string_view key, uint64_t value);
  Status Delete(std::string_view key, uint64_t value);
  Result<std::vector<uint64_t>> GetAll(std::string_view key);
  // Same, appending into a caller-owned buffer (cleared first). Walks the
  // encoded chain pages directly, so repeated probes allocate nothing once
  // the buffer has grown.
  Status GetAllInto(std::string_view key, std::vector<uint64_t>* out);
  // Smallest value under `key` (matching GetAll's sorted-front), or empty.
  Result<std::optional<uint64_t>> GetFirst(std::string_view key);
  Result<bool> Contains(std::string_view key);

 private:
  HashIndex(BufferPool* pool, std::string name, size_t num_buckets)
      : pool_(pool),
        name_(std::move(name)),
        buckets_(num_buckets, kInvalidPageId) {}

  size_t BucketOf(std::string_view key) const;
  Result<PageId> EnsureBucketPage(size_t bucket);

  BufferPool* pool_;
  std::string name_;
  std::vector<PageId> buckets_;
  uint64_t entry_count_ = 0;
};

}  // namespace sim

#endif  // SIMDB_STORAGE_HASH_INDEX_H_
