#include "storage/hash_index.h"

#include <cstring>
#include <functional>

namespace sim {

namespace {

// Bucket page layout, after the common page header at kPageDataStart:
//   [u16 n][u32 overflow][entries: u16 klen, key, u64 val]
constexpr size_t kBucketStart = kPageDataStart;
constexpr size_t kBucketHeader = kBucketStart + 2 + 4;

struct BucketPage {
  std::vector<std::string> keys;
  std::vector<uint64_t> values;
  PageId overflow = kInvalidPageId;
};

void EncodeBucket(const BucketPage& b, char* data) {
  uint16_t n = static_cast<uint16_t>(b.keys.size());
  std::memcpy(data + kBucketStart, &n, 2);
  std::memcpy(data + kBucketStart + 2, &b.overflow, 4);
  char* p = data + kBucketHeader;
  for (size_t i = 0; i < b.keys.size(); ++i) {
    uint16_t klen = static_cast<uint16_t>(b.keys[i].size());
    std::memcpy(p, &klen, 2);
    p += 2;
    std::memcpy(p, b.keys[i].data(), klen);
    p += klen;
    std::memcpy(p, &b.values[i], 8);
    p += 8;
  }
}

void DecodeBucket(const char* data, BucketPage* b) {
  uint16_t n;
  std::memcpy(&n, data + kBucketStart, 2);
  std::memcpy(&b->overflow, data + kBucketStart + 2, 4);
  b->keys.clear();
  b->values.clear();
  const char* p = data + kBucketHeader;
  for (uint16_t i = 0; i < n; ++i) {
    uint16_t klen;
    std::memcpy(&klen, p, 2);
    p += 2;
    b->keys.emplace_back(p, klen);
    p += klen;
    uint64_t v;
    std::memcpy(&v, p, 8);
    p += 8;
    b->values.push_back(v);
  }
}

size_t BucketSize(const BucketPage& b) {
  size_t size = kBucketHeader;
  for (const auto& k : b.keys) size += 2 + k.size() + 8;
  return size;
}

}  // namespace

Result<HashIndex> HashIndex::Create(BufferPool* pool, std::string name,
                                    size_t num_buckets) {
  size_t n = 1;
  while (n < num_buckets) n <<= 1;
  return HashIndex(pool, std::move(name), n);
}

size_t HashIndex::BucketOf(std::string_view key) const {
  return std::hash<std::string_view>()(key) & (buckets_.size() - 1);
}

Result<PageId> HashIndex::EnsureBucketPage(size_t bucket) {
  if (buckets_[bucket] != kInvalidPageId) return buckets_[bucket];
  SIM_ASSIGN_OR_RETURN(PageHandle h, pool_->New());
  BucketPage empty;
  EncodeBucket(empty, h.data());
  h.MarkDirty();
  buckets_[bucket] = h.id();
  return h.id();
}

Status HashIndex::Insert(std::string_view key, uint64_t value) {
  SIM_ASSIGN_OR_RETURN(PageId page, EnsureBucketPage(BucketOf(key)));
  for (;;) {
    SIM_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(page));
    BucketPage b;
    DecodeBucket(h.data(), &b);
    if (BucketSize(b) + 2 + key.size() + 8 <= kPageSize) {
      b.keys.emplace_back(key);
      b.values.push_back(value);
      EncodeBucket(b, h.data());
      h.MarkDirty();
      ++entry_count_;
      return Status::Ok();
    }
    if (b.overflow == kInvalidPageId) {
      SIM_ASSIGN_OR_RETURN(PageHandle oh, pool_->New());
      BucketPage fresh;
      fresh.keys.emplace_back(key);
      fresh.values.push_back(value);
      EncodeBucket(fresh, oh.data());
      oh.MarkDirty();
      b.overflow = oh.id();
      EncodeBucket(b, h.data());
      h.MarkDirty();
      ++entry_count_;
      return Status::Ok();
    }
    page = b.overflow;
  }
}

Status HashIndex::Delete(std::string_view key, uint64_t value) {
  PageId page = buckets_[BucketOf(key)];
  while (page != kInvalidPageId) {
    SIM_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(page));
    BucketPage b;
    DecodeBucket(h.data(), &b);
    for (size_t i = 0; i < b.keys.size(); ++i) {
      if (b.keys[i] == key && b.values[i] == value) {
        b.keys.erase(b.keys.begin() + i);
        b.values.erase(b.values.begin() + i);
        EncodeBucket(b, h.data());
        h.MarkDirty();
        if (entry_count_ > 0) --entry_count_;
        return Status::Ok();
      }
    }
    page = b.overflow;
  }
  return Status::NotFound("(key, value) pair not in hash index");
}

Result<std::vector<uint64_t>> HashIndex::GetAll(std::string_view key) {
  std::vector<uint64_t> out;
  SIM_RETURN_IF_ERROR(GetAllInto(key, &out));
  return out;
}

Status HashIndex::GetAllInto(std::string_view key,
                             std::vector<uint64_t>* out) {
  out->clear();
  PageId page = buckets_[BucketOf(key)];
  while (page != kInvalidPageId) {
    SIM_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(page));
    // Walk the encoded entries in place; no bucket materialization.
    const char* data = h.data();
    uint16_t n;
    std::memcpy(&n, data + kBucketStart, 2);
    PageId overflow;
    std::memcpy(&overflow, data + kBucketStart + 2, 4);
    const char* p = data + kBucketHeader;
    for (uint16_t i = 0; i < n; ++i) {
      uint16_t klen;
      std::memcpy(&klen, p, 2);
      if (std::string_view(p + 2, klen) == key) {
        uint64_t v;
        std::memcpy(&v, p + 2 + klen, 8);
        out->push_back(v);
      }
      p += 2 + klen + 8;
    }
    page = overflow;
  }
  return Status::Ok();
}

Result<std::optional<uint64_t>> HashIndex::GetFirst(std::string_view key) {
  std::optional<uint64_t> best;
  PageId page = buckets_[BucketOf(key)];
  while (page != kInvalidPageId) {
    SIM_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(page));
    const char* data = h.data();
    uint16_t n;
    std::memcpy(&n, data + kBucketStart, 2);
    PageId overflow;
    std::memcpy(&overflow, data + kBucketStart + 2, 4);
    const char* p = data + kBucketHeader;
    for (uint16_t i = 0; i < n; ++i) {
      uint16_t klen;
      std::memcpy(&klen, p, 2);
      if (std::string_view(p + 2, klen) == key) {
        uint64_t v;
        std::memcpy(&v, p + 2 + klen, 8);
        if (!best || v < *best) best = v;
      }
      p += 2 + klen + 8;
    }
    page = overflow;
  }
  return best;
}

Result<bool> HashIndex::Contains(std::string_view key) {
  SIM_ASSIGN_OR_RETURN(std::vector<uint64_t> all, GetAll(key));
  return !all.empty();
}

}  // namespace sim
