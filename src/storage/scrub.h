#ifndef SIMDB_STORAGE_SCRUB_H_
#define SIMDB_STORAGE_SCRUB_H_

// Online scrubber: the detection half of the detect → contain → repair
// cycle (DESIGN.md §13). Latent media corruption is only dangerous while
// it is undiscovered — a page can rot months before a query touches it,
// and by then the WAL images that could have masked the loss are long
// checkpointed away. The scrubber walks the durable pages, verifies each
// CRC, and (on demand) decodes every heap record through RecordView, so
// damage is found and quarantined close to when it happens.
//
// Two modes share one Scrubber:
//
//  * On-demand (SCRUB DATABASE, simdb_check --scrub): ScrubPages runs a
//    full synchronous pass on the execution thread through the database's
//    own pager stack — it sees injected faults (kBitRot) and can safely
//    validate record codecs against the mapper's heap page list.
//  * Background: Start() launches a paced worker (the group-commit worker
//    idiom: sim::Mutex + CondVar + stop flag) that re-opens a PRIVATE
//    FilePager on the database path each pass, so it shares no mutable
//    pager state with the execution thread. It verifies checksums only:
//    the mapper's page lists belong to the execution thread.
//
// Both modes skip pages whose newest image lives in the WAL (the durable
// page is legitimately stale there), and both re-read a failing page once
// before quarantining it, so a racing in-flight checkpoint write is not
// mistaken for rot. Quarantining registers the page and appends the
// registry to the WAL (sealed at the next commit).

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "storage/pager.h"
#include "storage/quarantine.h"

namespace sim {

class WriteAheadLog;

class Scrubber {
 public:
  struct Report {
    uint64_t pages_scanned = 0;
    uint64_t checksum_failures = 0;   // pages failing CRC (→ quarantined)
    uint64_t record_failures = 0;     // CRC-clean records RecordView rejects
    uint64_t pages_quarantined = 0;   // newly quarantined this pass
    uint64_t pages_skipped = 0;       // WAL-image or already-quarantined
    uint64_t persist_failures = 0;    // quarantine WAL appends that failed
    bool clean() const {
      return checksum_failures == 0 && record_failures == 0;
    }
    std::string ToString() const;
  };

  // Live counter cells, registered by the Database as simdb_scrub_* views.
  struct Counters {
    obs::Counter passes;
    obs::Counter pages_scanned;
    obs::Counter errors_found;
    obs::Counter pages_quarantined;
  };

  explicit Scrubber(QuarantineRegistry* quarantine)
      : quarantine_(quarantine) {}
  ~Scrubber() { Stop(); }

  // Synchronous full pass over `pager`'s pages. `wal` (nullable) supplies
  // the has-newer-image and persist-quarantine hooks; `heap_pages` lists
  // the pages whose records should be decoded through RecordView (empty =
  // checksum only). Returns non-OK only on infrastructure failure — a
  // corrupt page is a Report entry, not an error.
  Status ScrubPages(Pager* pager, WriteAheadLog* wal,
                    const std::vector<PageId>& heap_pages, Report* out);

  // Launches the background worker over the database file at `db_path`.
  // Scrubs `pages_per_tick` pages every `interval_ms`, looping over the
  // file forever. Idempotent; Stop() (or destruction) joins.
  void Start(std::string db_path, WriteAheadLog* wal, uint64_t interval_ms,
             uint64_t pages_per_tick);
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  const Counters& counters() const { return counters_; }

 private:
  // Verifies one page; bumps `out`. `raw` is scratch of kPageSize bytes.
  void VerifyPage(Pager* pager, WriteAheadLog* wal, PageId id,
                  bool validate_records, char* raw, Report* out);
  void Loop(std::string db_path, WriteAheadLog* wal, uint64_t interval_ms,
            uint64_t pages_per_tick);

  QuarantineRegistry* const quarantine_;
  Counters counters_;

  // Background worker state (the group-commit worker pattern): the owner
  // thread touches worker_ only in Start/Stop; the worker waits on cv_
  // under mu_ so Stop() can interrupt a sleep immediately.
  std::thread worker_;
  std::atomic<bool> running_{false};
  Mutex mu_;
  CondVar cv_;
  bool stop_ SIM_GUARDED_BY(mu_) = false;
};

}  // namespace sim

#endif  // SIMDB_STORAGE_SCRUB_H_
