#include "storage/lock_manager.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "catalog/directory.h"
#include "common/strings.h"

namespace sim {

namespace {

// Separator that cannot appear in a class identifier, so record keys can
// never collide with class-extent keys.
constexpr char kRecordSep = '\x1f';

bool ModeCovers(LockManager::Mode held, LockManager::Mode want) {
  return held == LockManager::Mode::kExclusive ||
         want == LockManager::Mode::kShared;
}

}  // namespace

std::string RecordLockKey(const std::string& class_name, uint64_t surrogate) {
  std::string key = AsciiLower(class_name);
  key += kRecordSep;
  key += std::to_string(surrogate);
  return key;
}

// --- Scope ---------------------------------------------------------------

LockManager::Scope::~Scope() { lm_->ReleaseScope(this); }

void LockManager::Scope::ReleaseAll() {
  MutexLock l(lm_->mu_);
  lm_->ReleaseAllLocked(this);
  lm_->released_.NotifyAll();
}

size_t LockManager::Scope::held() const {
  MutexLock l(lm_->mu_);
  return held_keys_.size();
}

// --- LockManager ---------------------------------------------------------

void LockManager::SetDirectory(const DirectoryManager* dir) {
  MutexLock l(mu_);
  dir_ = dir;
}

std::unique_ptr<LockManager::Scope> LockManager::NewScope() {
  MutexLock l(mu_);
  auto scope = std::unique_ptr<Scope>(new Scope(this, next_scope_id_++));
  scopes_[scope->id_] = scope.get();
  return scope;
}

void LockManager::ReleaseScope(Scope* scope) {
  MutexLock l(mu_);
  ReleaseAllLocked(scope);
  scopes_.erase(scope->id_);
  released_.NotifyAll();
}

void LockManager::ReleaseAllLocked(Scope* scope) {
  for (const std::string& key : scope->held_keys_) {
    auto it = table_.find(key);
    if (it == table_.end()) continue;
    it->second.holders.erase(scope->id_);
    if (it->second.holders.empty() && it->second.waiting_x == 0) {
      table_.erase(it);
    }
  }
  scope->held_keys_.clear();
}

size_t LockManager::LockedKeys() const {
  MutexLock l(mu_);
  size_t n = 0;
  for (const auto& [key, entry] : table_) {
    if (!entry.holders.empty()) ++n;
  }
  return n;
}

std::vector<std::pair<std::string, LockManager::Mode>>
LockManager::ExpandCovers(const std::vector<std::string>& classes,
                          Mode mode) const {
  const DirectoryManager* dir;
  {
    MutexLock l(mu_);
    dir = dir_;
  }
  // Max-mode dedup in a sorted map: deterministic key order for free.
  std::map<std::string, Mode> cover;
  auto add = [&cover](const std::string& name, Mode m) {
    std::string key = AsciiLower(name);
    auto [it, inserted] = cover.emplace(std::move(key), m);
    if (!inserted && m == Mode::kExclusive) it->second = m;
  };
  for (const std::string& name : classes) {
    if (dir == nullptr) {
      add(name, mode);
      continue;
    }
    if (mode == Mode::kShared) {
      // Scan cover: the extent of C includes every subclass member.
      add(name, mode);
      auto desc = dir->DescendantsOf(name);
      if (desc.ok()) {
        for (const std::string& d : *desc) add(d, mode);
      }
    } else {
      // Write cover: role duplication touches every unit of the family.
      std::string root = name;
      auto base = dir->BaseOf(name);
      if (base.ok()) root = *base;
      add(root, mode);
      auto desc = dir->DescendantsOf(root);
      if (desc.ok()) {
        for (const std::string& d : *desc) add(d, mode);
      }
    }
  }
  return {cover.begin(), cover.end()};
}

Status LockManager::AcquireClasses(Scope* scope,
                                   const std::vector<std::string>& classes,
                                   Mode mode, QueryContext* qctx) {
  if (classes.empty()) return Status::Ok();
  return AcquireKeys(scope, ExpandCovers(classes, mode), qctx);
}

Status LockManager::AcquireAllClasses(Scope* scope, QueryContext* qctx) {
  const DirectoryManager* dir;
  {
    MutexLock l(mu_);
    dir = dir_;
  }
  if (dir == nullptr) return Status::Ok();
  std::vector<std::pair<std::string, Mode>> wants;
  wants.reserve(dir->class_names().size());
  for (const std::string& name : dir->class_names()) {
    wants.emplace_back(AsciiLower(name), Mode::kShared);
  }
  std::sort(wants.begin(), wants.end());
  return AcquireKeys(scope, std::move(wants), qctx);
}

Status LockManager::AcquireRecord(Scope* scope, const std::string& class_name,
                                  uint64_t surrogate, Mode mode,
                                  QueryContext* qctx) {
  std::vector<std::pair<std::string, Mode>> wants;
  wants.emplace_back(RecordLockKey(class_name, surrogate), mode);
  return AcquireKeys(scope, std::move(wants), qctx);
}

bool LockManager::GrantableLocked(
    const Scope& scope,
    const std::vector<std::pair<std::string, Mode>>& wants) const {
  for (const auto& [key, mode] : wants) {
    auto it = table_.find(key);
    if (it == table_.end()) continue;
    const Entry& entry = it->second;
    auto self = entry.holders.find(scope.id_);
    if (self != entry.holders.end() && ModeCovers(self->second, mode)) {
      continue;  // already held at (or above) the wanted strength
    }
    if (mode == Mode::kExclusive) {
      // X (or an S->X upgrade) needs sole ownership.
      size_t others = entry.holders.size() - (self != entry.holders.end());
      if (others > 0) return false;
    } else {
      // S conflicts with a foreign X holder, and queues behind waiting
      // writers unless this scope already holds the key (checked above).
      for (const auto& [hid, hmode] : entry.holders) {
        if (hid != scope.id_ && hmode == Mode::kExclusive) return false;
      }
      if (entry.waiting_x > 0) return false;
    }
  }
  return true;
}

void LockManager::GrantLocked(
    Scope* scope, const std::vector<std::pair<std::string, Mode>>& wants) {
  for (const auto& [key, mode] : wants) {
    Entry& entry = table_[key];
    auto [it, inserted] = entry.holders.emplace(scope->id_, mode);
    if (inserted) {
      scope->held_keys_.push_back(key);
    } else if (mode == Mode::kExclusive) {
      it->second = mode;  // S -> X upgrade
    }
  }
}

Status LockManager::CheckWaitSafeLocked(
    const Scope& scope,
    const std::vector<std::pair<std::string, Mode>>& wants) const {
  // Walk the wait-for graph outward from this request. Edges:
  //  * requester -> foreign holder of a conflicting key;
  //  * S requester -> waiting X requester on the same key (fairness queue).
  // A node that is itself blocked (in waiting_) contributes its own edges.
  // Deadlock: the walk returns to the requester. Self-wait: the walk
  // reaches a scope owned by the requester's own thread — that holder can
  // never run to release, so the wait would hang forever.
  std::vector<uint64_t> frontier;
  std::vector<uint64_t> visited;
  const std::string* blocked_on = nullptr;

  auto push_edges = [this, &frontier](
                        uint64_t from,
                        const std::vector<std::pair<std::string, Mode>>& ws)
                        SIM_REQUIRES(mu_) -> const std::string* {
    const std::string* first_conflict = nullptr;
    for (const auto& [key, mode] : ws) {
      auto it = table_.find(key);
      if (it == table_.end()) continue;
      const Entry& entry = it->second;
      auto self = entry.holders.find(from);
      if (self != entry.holders.end() && ModeCovers(self->second, mode)) {
        continue;
      }
      for (const auto& [hid, hmode] : entry.holders) {
        if (hid == from) continue;
        if (mode == Mode::kExclusive || hmode == Mode::kExclusive) {
          frontier.push_back(hid);
          if (first_conflict == nullptr) first_conflict = &key;
        }
      }
      if (mode == Mode::kShared && entry.waiting_x > 0 &&
          self == entry.holders.end()) {
        for (const auto& [wid, waiter] : waiting_) {
          if (wid == from) continue;
          for (const auto& [wkey, wmode] : *waiter.wants) {
            if (wkey == key && wmode == Mode::kExclusive) {
              frontier.push_back(wid);
              if (first_conflict == nullptr) first_conflict = &key;
              break;
            }
          }
        }
      }
    }
    return first_conflict;
  };

  blocked_on = push_edges(scope.id_, wants);
  const std::string key_name =
      blocked_on != nullptr ? *blocked_on : std::string("<unknown>");
  const std::thread::id me = std::this_thread::get_id();
  while (!frontier.empty()) {
    uint64_t node = frontier.back();
    frontier.pop_back();
    if (node == scope.id_) {
      return Status::Aborted("deadlock detected while locking '" + key_name +
                             "'; statement rolled back (retry it)");
    }
    if (std::find(visited.begin(), visited.end(), node) != visited.end()) {
      continue;
    }
    visited.push_back(node);
    auto sit = scopes_.find(node);
    if (sit != scopes_.end() && sit->second->owner_ == me) {
      return Status::Aborted(
          "lock on '" + key_name +
          "' conflicts with a lock held by this thread (close the open "
          "cursor or commit the transaction first)");
    }
    auto wit = waiting_.find(node);
    if (wit != waiting_.end()) {
      push_edges(node, *wit->second.wants);
    }
  }
  return Status::Ok();
}

Status LockManager::AcquireKeys(
    Scope* scope, std::vector<std::pair<std::string, Mode>> wants,
    QueryContext* qctx) {
  using clock = std::chrono::steady_clock;
  MutexLock l(mu_);
  scope->owner_ = std::this_thread::get_id();
  bool registered = false;
  bool waited = false;
  auto unregister = [&]() SIM_REQUIRES(mu_) {
    if (!registered) return;
    waiting_.erase(scope->id_);
    for (const auto& [key, mode] : wants) {
      if (mode != Mode::kExclusive) continue;
      auto it = table_.find(key);
      if (it == table_.end()) continue;
      if (--it->second.waiting_x == 0 && it->second.holders.empty()) {
        table_.erase(it);
      }
    }
    registered = false;
  };
  for (;;) {
    if (GrantableLocked(*scope, wants)) {
      unregister();
      GrantLocked(scope, wants);
      stats_.acquisitions.Increment();
      // A fairness queue may have been holding S requests behind our
      // waiting-X registration; wake the table so they re-check.
      released_.NotifyAll();
      return Status::Ok();
    }
    Status safe = CheckWaitSafeLocked(*scope, wants);
    if (!safe.ok()) {
      unregister();
      stats_.deadlocks.Increment();
      released_.NotifyAll();
      return safe;
    }
    if (!registered) {
      waiting_[scope->id_] = Waiter{scope, &wants};
      for (const auto& [key, mode] : wants) {
        if (mode == Mode::kExclusive) ++table_[key].waiting_x;
      }
      registered = true;
    }
    if (!waited) {
      waited = true;
      stats_.waits.Increment();
    }
    // Bounded sleep: wake on any release, and no later than the governor
    // deadline (or a short poll slice, to observe async cancellation).
    auto until = clock::now() + std::chrono::milliseconds(20);
    if (qctx != nullptr && qctx->has_deadline()) {
      if (qctx->deadline() <= clock::now()) {
        unregister();
        stats_.timeouts.Increment();
        released_.NotifyAll();
        return Status::DeadlineExceeded(
            "lock wait exceeded the statement deadline");
      }
      until = std::min(until, qctx->deadline());
    }
    released_.WaitUntil(l, until);
    if (qctx != nullptr && qctx->cancel_requested()) {
      unregister();
      stats_.timeouts.Increment();
      released_.NotifyAll();
      return Status::Cancelled("statement cancelled while waiting for a lock");
    }
  }
}

}  // namespace sim
