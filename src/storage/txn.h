#ifndef SIMDB_STORAGE_TXN_H_
#define SIMDB_STORAGE_TXN_H_

// Transactions. SIM relied on DMSII for transaction management; our
// substitute provides statement- and user-level atomicity through an undo
// log of compensation callbacks. Each layer (heap file, index, mapper)
// registers the inverse of every mutation it performs; Abort replays the
// log in reverse. This is sufficient for the paper-visible behaviour:
// a VERIFY violation or constraint failure rolls the whole statement back.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace sim {

class Transaction {
 public:
  enum class State { kActive, kCommitted, kAborted };

  explicit Transaction(uint64_t id) : id_(id) {}

  uint64_t id() const { return id_; }
  State state() const { return state_; }
  bool active() const { return state_ == State::kActive; }

  // Registers a compensation action undoing one mutation. Compensations
  // must succeed on replay (they restore previously-valid state); failures
  // are surfaced as Internal errors from Abort.
  void LogUndo(std::function<Status()> undo) {
    undo_log_.push_back(std::move(undo));
  }

  size_t undo_depth() const { return undo_log_.size(); }

  // Rolls back to a previously captured depth (statement-level rollback
  // inside a larger transaction).
  Status RollbackTo(size_t depth);

 private:
  friend class TransactionManager;

  uint64_t id_;
  State state_ = State::kActive;
  std::vector<std::function<Status()>> undo_log_;
};

class TransactionManager {
 public:
  // Runs at the start of Commit, before the transaction is marked
  // committed — the durability hook. The Database installs one that
  // flushes dirty pages to the write-ahead log and fsyncs a commit
  // record; a failure fails the commit (the transaction stays active so
  // the caller can abort it).
  using CommitHook = std::function<Status(Transaction*)>;
  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }

  // Starts a new transaction. The manager owns it until Commit/Abort,
  // which destroys it (only the counters survive). The registry latch
  // makes Begin/Commit/Abort safe from concurrent statements; each
  // Transaction OBJECT is still owned by the statement (or session)
  // driving it — the manager never mutates one concurrently.
  Transaction* Begin() SIM_EXCLUDES(tm_mu_);

  // Runs the commit hook, then discards the undo log and destroys the
  // transaction. `txn` is invalid after an OK return.
  Status Commit(Transaction* txn) SIM_EXCLUDES(tm_mu_);

  // Two-phase commit for group-commit callers: CommitBegin runs the hook
  // (which typically only BEGINS durability — appends a commit ticket)
  // and leaves the transaction active; once the ticket is durable the
  // caller finishes with CommitFinish, or aborts on failure. The split
  // lets the caller wait for the fsync OUTSIDE its critical section, so
  // concurrent committers batch into one fsync.
  Status CommitBegin(Transaction* txn);
  void CommitFinish(Transaction* txn) SIM_EXCLUDES(tm_mu_);

  // Replays the undo log in reverse, then destroys the transaction.
  // `txn` is invalid after this returns.
  Status Abort(Transaction* txn) SIM_EXCLUDES(tm_mu_);

  uint64_t committed_count() const SIM_EXCLUDES(tm_mu_) {
    MutexLock l(tm_mu_);
    return committed_;
  }
  uint64_t aborted_count() const SIM_EXCLUDES(tm_mu_) {
    MutexLock l(tm_mu_);
    return aborted_;
  }
  size_t active_count() const SIM_EXCLUDES(tm_mu_) {
    MutexLock l(tm_mu_);
    return txns_.size();
  }

 private:
  void Forget(Transaction* txn) SIM_REQUIRES(tm_mu_);

  mutable Mutex tm_mu_;
  std::vector<std::unique_ptr<Transaction>> txns_ SIM_GUARDED_BY(tm_mu_);
  CommitHook commit_hook_;
  uint64_t next_id_ SIM_GUARDED_BY(tm_mu_) = 1;
  uint64_t committed_ SIM_GUARDED_BY(tm_mu_) = 0;
  uint64_t aborted_ SIM_GUARDED_BY(tm_mu_) = 0;
};

}  // namespace sim

#endif  // SIMDB_STORAGE_TXN_H_
