#ifndef SIMDB_STORAGE_LOCK_MANAGER_H_
#define SIMDB_STORAGE_LOCK_MANAGER_H_

// Semantic lock manager: shared/exclusive locks over class extents and
// individual records, resolved through the catalog's subclass-role DAG
// (DESIGN.md §14). The paper's §5 mapping stores an entity's record set
// across every unit of its generalization family, which dictates the two
// cover rules:
//
//  * A reader scanning class C sees members of C and of every subclass of
//    C, so a shared lock on C covers {C} ∪ descendants(C).
//  * A writer mutating class C touches records in every unit of C's
//    family (role duplication writes base-class attributes into the base
//    unit, EVA inverses into range units), so an exclusive lock on C
//    widens to the whole family: {base(C)} ∪ descendants(base(C)).
//
// Conflicts are evaluated per cover element: two requests conflict when
// their covers intersect on any key with incompatible modes (S/S is
// compatible; anything involving X is not, except within one Scope — a
// scope never conflicts with itself, which is what lets the paranoid
// post-update audit take S-everything while the statement holds X).
//
// Acquisition is all-or-nothing per call: a statement's lock set is
// computed up front and granted atomically under the manager's mutex, so
// single-statement scopes cannot deadlock among themselves. Scopes that
// grow incrementally (explicit transactions, upgrades) can — a wait-for
// graph is checked each time a request blocks and the requester is killed
// with kAborted on a cycle. Waits are bounded by the statement's governor
// deadline (kDeadlineExceeded) and cancel flag (kCancelled): a contended
// lock can never hang a statement forever.
//
// Fairness: while any request is waiting for X on a key, new S requests
// on that key queue behind it (no fresh-reader starvation of writers);
// re-acquisition by a scope that already holds the key is always a no-op
// so held work is never blocked by a queued writer.

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/query_context.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace sim {

class DirectoryManager;

class LockManager {
 public:
  enum class Mode { kShared, kExclusive };

  // Monotonic cells exposed by reference to the metrics registry
  // (RegisterCounterView, simdb_lock_*).
  struct Stats {
    obs::Counter acquisitions;  // granted lock requests
    obs::Counter waits;         // requests that blocked at least once
    obs::Counter deadlocks;     // requesters killed by the detector
    obs::Counter timeouts;      // waits ended by deadline/cancel
  };

  // A Scope owns every lock granted to it and releases them all when
  // destroyed (or via ReleaseAll). One scope per statement; an explicit
  // transaction keeps a single scope alive across its statements; a
  // cursor's scope lives until the cursor closes. Attachable to a
  // QueryContext (StatementResource) so governor teardown frees the locks.
  class Scope : public StatementResource {
   public:
    ~Scope() override;
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    // Drops every lock this scope holds; idempotent.
    void ReleaseAll();

    // Number of distinct keys currently held (tests/debugging).
    size_t held() const;

   private:
    friend class LockManager;
    explicit Scope(LockManager* lm, uint64_t id) : lm_(lm), id_(id) {}

    LockManager* lm_;
    const uint64_t id_;
    // Owner thread, refreshed on each acquisition through this scope: a
    // request that blocks on a lock held by a scope owned by the *same*
    // thread can never be satisfied (the holder cannot run to release
    // it), so such waits abort instead of hanging.
    std::thread::id owner_ SIM_GUARDED_BY(lm_->mu_) =
        std::this_thread::get_id();
    std::vector<std::string> held_keys_ SIM_GUARDED_BY(lm_->mu_);
  };

  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  // The catalog used for cover expansion. May be null (no expansion:
  // every name locks exactly itself) until the schema is finalized.
  void SetDirectory(const DirectoryManager* dir) SIM_EXCLUDES(mu_);

  std::unique_ptr<Scope> NewScope() SIM_EXCLUDES(mu_);

  // Locks the extents of `classes` (deduplicated, case-folded, expanded
  // through the DAG per the cover rules above) for `scope`. Blocks until
  // granted; `qctx` (optional) bounds the wait by the statement deadline
  // and cancel flag. Returns kAborted on deadlock or same-thread
  // self-conflict, kDeadlineExceeded / kCancelled on a tripped governor.
  Status AcquireClasses(Scope* scope, const std::vector<std::string>& classes,
                        Mode mode, QueryContext* qctx) SIM_EXCLUDES(mu_);

  // Shared-locks every class in the catalog (the audit's read set).
  Status AcquireAllClasses(Scope* scope, QueryContext* qctx)
      SIM_EXCLUDES(mu_);

  // Record-granularity lock (point updates): key = class ⊕ surrogate. No
  // DAG expansion; callers hold the family X (or a future intention mode)
  // first, so today these never block — they exist to carry per-record
  // ownership into finer-grained executors and are fully exercised by the
  // lock-manager tests.
  Status AcquireRecord(Scope* scope, const std::string& class_name,
                       uint64_t surrogate, Mode mode, QueryContext* qctx)
      SIM_EXCLUDES(mu_);

  const Stats& stats() const { return stats_; }

  // Keys currently held across all scopes (tests/debugging).
  size_t LockedKeys() const SIM_EXCLUDES(mu_);

 private:
  struct Entry {
    std::unordered_map<uint64_t, Mode> holders;  // scope id -> strongest mode
    int waiting_x = 0;  // blocked requests that want X on this key
  };
  struct Waiter {
    Scope* scope = nullptr;
    const std::vector<std::pair<std::string, Mode>>* wants = nullptr;
  };

  // Builds the deduplicated (key, mode) set for a class-lock request.
  std::vector<std::pair<std::string, Mode>> ExpandCovers(
      const std::vector<std::string>& classes, Mode mode) const
      SIM_EXCLUDES(mu_);

  Status AcquireKeys(Scope* scope,
                     std::vector<std::pair<std::string, Mode>> wants,
                     QueryContext* qctx) SIM_EXCLUDES(mu_);

  // True when every wanted key is grantable to `scope` right now.
  bool GrantableLocked(const Scope& scope,
                       const std::vector<std::pair<std::string, Mode>>& wants)
      const SIM_REQUIRES(mu_);
  void GrantLocked(Scope* scope,
                   const std::vector<std::pair<std::string, Mode>>& wants)
      SIM_REQUIRES(mu_);

  // Deadlock / self-wait analysis for a request about to block: walks the
  // wait-for graph (holder edges plus waiting-X fairness edges). Returns
  // non-OK (kAborted) when the requester is on a cycle or transitively
  // waits on a scope owned by its own thread.
  Status CheckWaitSafeLocked(
      const Scope& scope,
      const std::vector<std::pair<std::string, Mode>>& wants) const
      SIM_REQUIRES(mu_);

  void ReleaseAllLocked(Scope* scope) SIM_REQUIRES(mu_);
  friend class Scope;
  void ReleaseScope(Scope* scope) SIM_EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar released_;  // signalled on every release / grant-set change
  const DirectoryManager* dir_ SIM_GUARDED_BY(mu_) = nullptr;
  std::unordered_map<std::string, Entry> table_ SIM_GUARDED_BY(mu_);
  // Scope id -> in-flight blocked request (for the wait-for graph).
  std::unordered_map<uint64_t, Waiter> waiting_ SIM_GUARDED_BY(mu_);
  // Scope id -> scope (owner-thread lookup during cycle analysis).
  std::unordered_map<uint64_t, Scope*> scopes_ SIM_GUARDED_BY(mu_);
  uint64_t next_scope_id_ SIM_GUARDED_BY(mu_) = 1;
  Stats stats_;
};

// Canonical record-lock key, exposed for tests.
std::string RecordLockKey(const std::string& class_name, uint64_t surrogate);

}  // namespace sim

#endif  // SIMDB_STORAGE_LOCK_MANAGER_H_
