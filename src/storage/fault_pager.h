#ifndef SIMDB_STORAGE_FAULT_PAGER_H_
#define SIMDB_STORAGE_FAULT_PAGER_H_

// Deterministic fault injection for crash-safety testing. A FaultInjector
// holds a scriptable plan ("fail the 3rd write, persisting only the first
// 100 bytes", "fail the 2nd sync") and global operation counters. Both the
// FaultInjectingPager decorator (database file I/O) and the write-ahead
// log (log appends and fsyncs) consult the same injector, so one plan
// describes a crash point anywhere in the combined I/O sequence and a test
// can sweep "crash at operation N" without killing the process.
//
// A fatal fault (the default) leaves the injector "dead": every subsequent
// operation fails, modelling the process disappearing at that point. The
// test then discards the Database and reopens the file, which runs
// recovery. Non-fatal faults fail a single operation and let execution
// continue, modelling a transient I/O error.
//
// Beyond the original crash faults, the injector carries a fault MODEL
// distinguishing how real devices fail (the resource-governor PR's error
// taxonomy):
//  * kTransient  — the next `times` matching operations fail with
//                  kUnavailable; the retry layer above should absorb them
//                  when `times` < its attempt budget.
//  * kPermanent  — every matching operation from `at` onwards fails with
//                  kIoError (a dead sector / pulled cable; other operation
//                  kinds still work).
//  * kDiskFull   — every write from `at` onwards fails with kDiskFull
//                  (ENOSPC-after-K-writes); reads and syncs are unaffected,
//                  so the database can degrade to read-only mode.
//  * kShortIo    — the next `times` matching writes transfer only a prefix
//                  (torn) and fail with kUnavailable; a full-page retry
//                  repairs them.
//  * kBitRot     — reads of a chosen page succeed but return deterministic
//                  byte flips in the payload (rotted media / latent sector
//                  corruption). The flips are sticky: every read of the
//                  page is corrupted until Clear(), so checksum detection,
//                  quarantine and repair can all be exercised end-to-end.

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "storage/pager.h"

namespace sim {

class FaultInjector {
 public:
  enum class Op { kWrite, kSync, kRead };

  // How the fault behaves once its operation number comes up.
  enum class Mode { kCrash, kTransient, kPermanent, kDiskFull, kShortIo,
                    kBitRot };

  struct Fault {
    Op op = Op::kWrite;
    // Fires on the Nth matching operation (1-based) counted across every
    // consumer of this injector. Range modes (kTransient/kShortIo) cover
    // operations [at, at + times); kPermanent and kDiskFull cover every
    // operation >= at.
    uint64_t at = 0;
    // For kWrite: >= 0 persists only the first `torn_bytes` bytes of the
    // payload before failing (a torn write); -1 persists nothing.
    int torn_bytes = -1;
    // Fatal faults kill the injector: all later operations fail too.
    // Only meaningful for kCrash.
    bool fatal = true;
    Mode mode = Mode::kCrash;
    // kTransient / kShortIo: number of consecutive matching operations
    // that fail before the device "recovers".
    uint64_t times = 1;
    // kBitRot only: the page whose reads rot, and the number of payload
    // bytes to flip (positions derived deterministically from the page id).
    PageId rot_page = 0;
    uint64_t rot_flips = 4;
  };

  struct Stats {
    uint64_t writes_seen = 0;
    uint64_t syncs_seen = 0;
    uint64_t reads_seen = 0;
    uint64_t faults_fired = 0;
  };

  void Schedule(Fault fault) SIM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    faults_.push_back(fault);
  }
  // Convenience forms used by the crash sweep.
  void FailNthWrite(uint64_t n, int torn_bytes = -1, bool fatal = true) {
    Schedule({Op::kWrite, n, torn_bytes, fatal});
  }
  void FailNthSync(uint64_t n, bool fatal = true) {
    Schedule({Op::kSync, n, -1, fatal});
  }
  void FailNthRead(uint64_t n, bool fatal = true) {
    Schedule({Op::kRead, n, -1, fatal});
  }
  // Fault-model forms (see the Mode comment above).
  void TransientWrites(uint64_t at, uint64_t times = 1) {
    Schedule({Op::kWrite, at, -1, false, Mode::kTransient, times});
  }
  void TransientReads(uint64_t at, uint64_t times = 1) {
    Schedule({Op::kRead, at, -1, false, Mode::kTransient, times});
  }
  void TransientSyncs(uint64_t at, uint64_t times = 1) {
    Schedule({Op::kSync, at, -1, false, Mode::kTransient, times});
  }
  void PermanentWritesFrom(uint64_t at) {
    Schedule({Op::kWrite, at, -1, false, Mode::kPermanent, 1});
  }
  void DiskFullFromWrite(uint64_t at) {
    Schedule({Op::kWrite, at, -1, false, Mode::kDiskFull, 1});
  }
  void ShortWrites(uint64_t at, int bytes, uint64_t times = 1) {
    Schedule({Op::kWrite, at, bytes, false, Mode::kShortIo, times});
  }
  // Rot `flips` payload bytes of `page` on every read until Clear().
  void BitRotPage(PageId page, uint64_t flips = 4) {
    Fault f;
    f.op = Op::kRead;
    f.fatal = false;
    f.mode = Mode::kBitRot;
    f.rot_page = page;
    f.rot_flips = flips;
    Schedule(f);
  }

  // Called by consumers before performing an operation. A non-OK status
  // means the operation must fail; for writes, *allowed_bytes is set to
  // how much of the payload to persist anyway (0 = nothing) given
  // `intended_bytes` were going to be written. One injector is shared by
  // every I/O consumer (pager, WAL appenders, the group-commit thread),
  // so the operation counters are serialized internally — concurrent
  // writers see a single global operation sequence, which keeps "crash at
  // operation N" meaningful under multi-threaded load.
  Status BeginWrite(size_t intended_bytes, size_t* allowed_bytes)
      SIM_EXCLUDES(mu_);
  Status BeginSync() SIM_EXCLUDES(mu_);
  Status BeginRead() SIM_EXCLUDES(mu_);

  // Called by FaultInjectingPager::Read AFTER a successful base read:
  // applies any scheduled kBitRot corruption to the page image in place.
  // Returns true if bytes were flipped (counted in stats().faults_fired).
  bool ApplyBitRot(PageId id, char* page) SIM_EXCLUDES(mu_);

  bool dead() const SIM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return dead_;
  }
  // Snapshot, not a reference: callers read it after (or during) runs
  // whose I/O threads are still advancing the counters.
  Stats stats() const SIM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return stats_;
  }

  // Forgets the plan and revives the injector; counters keep running.
  void Clear() SIM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    faults_.clear();
    dead_ = false;
  }

 private:
  Status CheckLocked(Op op, uint64_t seen, size_t intended_bytes,
                     size_t* allowed_bytes) SIM_REQUIRES(mu_);

  mutable Mutex mu_;
  std::vector<Fault> faults_ SIM_GUARDED_BY(mu_);
  Stats stats_ SIM_GUARDED_BY(mu_);
  bool dead_ SIM_GUARDED_BY(mu_) = false;
};

// Pager decorator forwarding to `base` unless the injector vetoes the
// operation. Torn page writes are materialized by splicing the allowed
// prefix of the new image over the old on-disk image, exactly what a
// power-cut mid-pwrite leaves behind.
class FaultInjectingPager : public Pager {
 public:
  FaultInjectingPager(Pager* base, FaultInjector* injector)
      : base_(base), injector_(injector) {}

  Status Read(PageId id, char* out) override;
  Status Write(PageId id, const char* data) override;
  Result<PageId> Allocate() override;
  uint32_t page_count() const override { return base_->page_count(); }
  Status Sync() override;

 private:
  Pager* base_;
  FaultInjector* injector_;
};

}  // namespace sim

#endif  // SIMDB_STORAGE_FAULT_PAGER_H_
