#ifndef SIMDB_STORAGE_WAL_H_
#define SIMDB_STORAGE_WAL_H_

// Physical page-image write-ahead log with logical metadata records. The
// paper's SIM delegated recovery to DMSII (§5); this is our substitute,
// giving file-backed databases crash atomicity at the page level AND
// self-contained metadata recovery: the log is the single durable home of
// the schema DDL and the mapper bootstrap state, so Database::Open on a
// crashed file yields a fully queryable database with zero external input.
//
// The log lives next to the database file as `<file_path>.wal` and holds
// framed records:
//
//   [ u32 magic | u8 type | u32 page_id | u64 lsn | u32 payload_len |
//     payload... | u32 crc32(frame after magic) ]
//
// where type is kPageImage (payload = one kPageSize page image, already
// checksum-stamped), kCommit (empty payload), kMetaDdl (payload = one
// verbatim DDL batch text) or kMetaSnapshot (payload = an encoded mapper
// bootstrap snapshot, see luc/rehydrate.h). The protocol:
//
//  * Dirty pages flushed by the buffer pool are APPENDED here; the
//    database file itself is only ever written by Checkpoint/Recover, so
//    uncommitted data never reaches it in place.
//  * Metadata frames are appended by the database: each executed DDL batch
//    verbatim (replaying the same text reproduces the same class codes the
//    durable record bytes were tagged with), and a fresh mapper snapshot
//    immediately before every commit record (the bootstrap state drifts
//    with every commit: heap page lists, index roots, next surrogate).
//  * Commit appends a commit record and fsyncs the log. Everything at or
//    before the last durable commit record is the committed state; the
//    newest committed snapshot and the committed DDL texts in order are
//    what recovery rehydrates from.
//  * Reads of pages whose latest image lives in the log are served from
//    the log (the buffer pool consults HasImage/ReadImage on a miss).
//  * Checkpoint copies each page's newest committed image into the
//    database file, fsyncs it, then atomically replaces the log with a
//    metadata-only baseline (DDL + snapshot + commit) via write-new-file +
//    rename. A crash anywhere during checkpoint is safe: either the old
//    log survives intact (recovery replays again) or the new baseline is
//    fully in place — the metadata is never lost in between.
//  * Recover (run by Database::Open) scans an existing log, stops at the
//    first torn/corrupt frame (torn-tail scanner), replays images up to
//    the last complete commit record into the database file. When the log
//    carried metadata the caller reinstalls it and then seals the log with
//    ResetWithBaseline; a metadata-free log (unit tests, pre-metadata
//    files) is truncated as before.
//
// Group commit: StartGroupCommit launches a background durability thread.
// AppendCommit then enqueues a ticket and blocks; the worker coalesces
// every ticket pending at wakeup into ONE commit frame + fsync and
// resolves the whole batch, so N concurrent committers cost one fsync.
//
// All log I/O consults an optional FaultInjector so crash schedules are
// deterministic and testable without killing the process.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "storage/fault_pager.h"
#include "storage/io_retry.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace sim {

// Frame type tags (public so the inspector's report is interpretable).
constexpr uint8_t kWalFramePageImage = 1;
constexpr uint8_t kWalFrameCommit = 2;
constexpr uint8_t kWalFrameMetaDdl = 3;
constexpr uint8_t kWalFrameMetaSnapshot = 4;
// Bad-page quarantine registry (payload = QuarantineRegistry::Encode()).
// Each frame carries the FULL current registry; the newest committed frame
// wins, and baselines re-emit it so the registry survives checkpoints.
constexpr uint8_t kWalFrameMetaQuarantine = 5;

class WriteAheadLog {
 public:
  struct Stats {
    uint64_t pages_appended = 0;
    uint64_t commits = 0;
    uint64_t checkpoints = 0;
    uint64_t recovered_pages = 0;
    uint64_t truncated_tail_bytes = 0;
    // Committed metadata frames (DDL + snapshot) seen by the opening scan.
    uint64_t recovered_meta_records = 0;
    uint64_t meta_frames_appended = 0;
    uint64_t group_commit_batches = 0;
  };

  // Opens (creating if absent) the log for database file `db_path` and
  // scans any existing content up to the first invalid frame. Call
  // Recover() next to apply it. Log I/O retries transient failures under
  // `retry` (appends are idempotent: the offset only advances on success).
  static Result<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& db_path, FaultInjector* injector = nullptr,
      RetryPolicy retry = RetryPolicy());
  ~WriteAheadLog();

  // Replays every page image at or before the last complete commit record
  // into `db` and fsyncs it. A log without metadata frames is then
  // truncated (nothing in it is worth keeping); a log carrying metadata is
  // left intact — the caller reinstalls catalog + mapper from
  // recovered_ddl()/recovered_snapshot() and calls ResetWithBaseline(),
  // which replaces the log atomically. Returns the pages replayed.
  Result<uint64_t> Recover(Pager* db) SIM_EXCLUDES(mu_);

  // Committed metadata captured by the opening scan: every committed DDL
  // batch in execution order, and the newest committed mapper snapshot
  // (empty when none was logged).
  const std::vector<std::string>& recovered_ddl() const {
    return recovered_ddl_;
  }
  const std::string& recovered_snapshot() const { return recovered_snapshot_; }
  // Newest committed quarantine registry payload ("" when none was logged).
  const std::string& recovered_quarantine() const {
    return recovered_quarantine_;
  }

  // Appends one page image (stamping its checksum). Buffered until Sync.
  Status AppendPageImage(PageId id, const char* data) SIM_EXCLUDES(mu_);

  // Appends one metadata frame. Like page images these only become part of
  // the committed state once a commit record follows.
  Status AppendMetaDdl(std::string_view ddl_text) SIM_EXCLUDES(mu_);
  Status AppendMetaSnapshot(std::string_view snapshot) SIM_EXCLUDES(mu_);
  // Appends the full quarantine registry and remembers it so every later
  // baseline rewrite (checkpoint, recovery seal) re-emits it — the
  // registry must never be lost to a log rewrite while pages are still
  // bad. An empty payload clears it (all pages repaired).
  Status AppendMetaQuarantine(std::string_view registry) SIM_EXCLUDES(mu_);

  // Appends a commit record and fsyncs the log. On return the images and
  // metadata appended so far are the durable committed state. With group
  // commit running this enqueues a ticket and blocks until the durability
  // thread has covered it with a (possibly shared) commit frame + fsync.
  Status AppendCommit() SIM_EXCLUDES(mu_, gc_mu_);

  // Concurrent-committer protocol. A committer's appends (page images +
  // metadata + the commit ticket) form one atomic sequence: the group
  // durability thread must never cut a commit frame between a sequence's
  // first append and its ticket, or recovery could see the images
  // committed under the PREVIOUS mapper snapshot. Begin/End bracket the
  // sequence; the worker's frame write takes the same bracket.
  //
  //   wal->BeginCommitSequence();
  //   ... AppendPageImage / AppendMetaSnapshot ...
  //   uint64_t ticket; Status s = wal->AppendCommitBegin(&ticket);
  //   wal->EndCommitSequence();
  //   ... release locks, leave the critical section ...
  //   s = wal->WaitCommitDurable(ticket);
  //
  // Without group commit AppendCommitBegin commits synchronously and
  // returns ticket 0 (WaitCommitDurable(0) is a no-op).
  void BeginCommitSequence() SIM_ACQUIRE(seq_mu_);
  void EndCommitSequence() SIM_RELEASE(seq_mu_);
  Status AppendCommitBegin(uint64_t* ticket)
      SIM_REQUIRES(seq_mu_) SIM_EXCLUDES(mu_, gc_mu_);
  Status WaitCommitDurable(uint64_t ticket) SIM_EXCLUDES(gc_mu_);
  // Blocks until every issued commit ticket has been resolved. Call (from
  // a context that excludes new committers) before Checkpoint: a pending
  // ticket's images are not yet in committed_, and a checkpoint would
  // silently drop them.
  Status DrainCommits() SIM_EXCLUDES(gc_mu_);

  Status Sync() SIM_EXCLUDES(mu_);

  // Launches the background durability thread. `batch_size_hist`, when
  // non-null, records the number of commit tickets each fsync covered.
  // Idempotent; StopGroupCommit (or destruction) drains and joins.
  void StartGroupCommit(obs::Histogram* batch_size_hist);
  void StopGroupCommit();
  bool group_commit_running() const {
    return gc_running_.load(std::memory_order_acquire);
  }

  // True when the newest version of `id` lives in the log rather than the
  // database file.
  bool HasImage(PageId id) const SIM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return latest_.count(id) > 0;
  }
  Status ReadImage(PageId id, char* out) const SIM_EXCLUDES(mu_);

  // Copies the newest committed image of every logged page into `db`,
  // fsyncs it, then truncates the log. Must only be called at a commit
  // boundary (no uncommitted images in the log). The metadata-preserving
  // form seals the truncated log with a fresh baseline (ResetWithBaseline)
  // instead of leaving it empty.
  Status Checkpoint(Pager* db) SIM_EXCLUDES(mu_);
  Status Checkpoint(Pager* db, const std::vector<std::string>& ddl,
                    const std::string& snapshot) SIM_EXCLUDES(mu_);

  // Atomically replaces the log's content with a metadata baseline: one
  // kMetaDdl frame per DDL batch, one kMetaSnapshot frame when `snapshot`
  // is non-empty, sealed by a commit record. Implemented as write-to-temp
  // + fsync + rename, so a crash leaves either the old log or the complete
  // new baseline — never a metadata-free gap. Drops any page images still
  // tracked (callers ensure they are durable in the database file first).
  Status ResetWithBaseline(const std::vector<std::string>& ddl,
                           const std::string& snapshot) SIM_EXCLUDES(mu_);

  // Bytes currently in the log (drives the checkpoint-threshold policy).
  // Copies under mu_: with group commit running, the durability thread
  // mutates these concurrently with the owner's policy reads — the
  // pre-annotation unlocked accessors were data races (found by TSan).
  uint64_t size_bytes() const SIM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return append_off_;
  }
  bool empty() const SIM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return append_off_ == 0;
  }
  uint64_t last_lsn() const SIM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return next_lsn_ - 1;
  }
  Stats stats() const SIM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return stats_;
  }
  RetryStats retry_stats() const SIM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return retry_stats_;
  }
  const std::string& path() const { return path_; }

 private:
  WriteAheadLog(std::string path, int fd, FaultInjector* injector,
                RetryPolicy retry)
      : path_(std::move(path)), fd_(fd), injector_(injector), retry_(retry) {}

  // Scans the log from the start, rebuilding the image maps and the
  // committed metadata; sets append_off_ to just after the last complete
  // commit record and records how much torn/uncommitted tail will be
  // discarded.
  Status Scan() SIM_EXCLUDES(mu_);

  // Serializes one frame (header + payload + crc) at the next LSN into
  // `out` and advances next_lsn_. With `stamp_page_checksum`, the payload
  // is a page image whose checksum is stamped in place after the copy —
  // callers then need no intermediate stamped buffer.
  void BuildFrame(uint8_t type, PageId id, const char* payload,
                  size_t payload_len, std::string* out,
                  bool stamp_page_checksum = false) SIM_REQUIRES(mu_);
  // Buffers one frame in pending_ (no file I/O); FlushPendingLocked
  // writes the whole accumulation with a single pwrite. Committers
  // therefore pay no syscall per append — the flush rides the commit
  // path, where one batch-sized write amortizes across every frame.
  Status WriteFrame(uint8_t type, PageId id, const char* payload,
                    size_t payload_len,
                    bool stamp_page_checksum = false) SIM_REQUIRES(mu_);
  Status FlushPendingLocked() SIM_REQUIRES(mu_);
  Status AppendMetaLocked(uint8_t type, std::string_view payload)
      SIM_REQUIRES(mu_);
  // Commit frame + fsync + promote latest_ to committed_. Callers hold mu_.
  Status CommitLocked() SIM_REQUIRES(mu_);
  Status SyncLocked() SIM_REQUIRES(mu_);
  // Copies every image in `images` into `db`, extending it when needed.
  Status ReplayImages(const std::map<PageId, uint64_t>& images, Pager* db,
                      uint64_t* replayed) SIM_REQUIRES(mu_);
  Status TruncateAllLocked() SIM_REQUIRES(mu_);
  Status ResetWithBaselineLocked(const std::vector<std::string>& ddl,
                                 const std::string& snapshot)
      SIM_REQUIRES(mu_);
  void GroupCommitLoop();
  // One group-commit barrier: commit frame + flush under mu_, fsync under
  // sync_mu_ only (appends proceed), promotion back under mu_.
  Status GroupCommitBarrier() SIM_EXCLUDES(mu_);

  std::string path_;
  // Swapped by the baseline rewrite under mu_ AND sync_mu_; the barrier
  // copies it under mu_ before fsyncing outside the lock.
  int fd_ SIM_GUARDED_BY(mu_);
  FaultInjector* const injector_;
  const RetryPolicy retry_;
  RetryStats retry_stats_ SIM_GUARDED_BY(mu_);
  // Guards the append path, the image maps and the fd swap. The group
  // durability thread does NOT hold it across its fsync (appends proceed
  // while a batch syncs); it snapshots latest_ at the commit frame so the
  // batch's coverage stays exact.
  mutable Mutex mu_;
  // Held (after mu_, released before it) around any fsync issued without
  // mu_, and by the fd-swapping baseline rewrite: the descriptor can never
  // be closed while a sync is in flight. Lock order: mu_ then sync_mu_.
  Mutex sync_mu_ SIM_ACQUIRED_AFTER(mu_);
  // Commit-sequence bracket (see BeginCommitSequence): held by a committer
  // across its appends-then-ticket sequence and by the group worker across
  // the commit frame write, so a frame only ever covers whole sequences.
  // Lock order: seq_mu_ before mu_ (and before gc_mu_).
  Mutex seq_mu_ SIM_ACQUIRED_BEFORE(mu_);
  // Bumped whenever the image maps are wholesale invalidated (truncate,
  // baseline rewrite); a group batch only promotes its snapshot if no
  // invalidation happened while it was fsyncing.
  uint64_t reset_epoch_ SIM_GUARDED_BY(mu_) = 0;
  // Byte offset where the next frame goes (== valid LOGICAL log length,
  // including frames still buffered in pending_).
  uint64_t append_off_ SIM_GUARDED_BY(mu_) = 0;
  // Frames built but not yet written to the file; always flushed (and
  // fsynced) before a commit record is considered durable, so committed_
  // offsets are always backed by the file while latest_ offsets may still
  // point into this buffer.
  std::string pending_ SIM_GUARDED_BY(mu_);
  // File bytes [0, flushed_off_) hold the flushed logical prefix.
  uint64_t flushed_off_ SIM_GUARDED_BY(mu_) = 0;
  uint64_t next_lsn_ SIM_GUARDED_BY(mu_) = 1;
  // page id -> byte offset of the newest payload for that page.
  std::map<PageId, uint64_t> latest_ SIM_GUARDED_BY(mu_);
  // Same, frozen at the last commit record.
  std::map<PageId, uint64_t> committed_ SIM_GUARDED_BY(mu_);
  // Committed metadata from the opening scan (recovery input). Written
  // only by Scan() during Open, immutable afterwards, so the const&
  // accessors above need no lock.
  std::vector<std::string> recovered_ddl_;
  std::string recovered_snapshot_;
  std::string recovered_quarantine_;
  // Newest quarantine payload appended or recovered; re-emitted by
  // ResetWithBaselineLocked so checkpoints preserve the registry.
  std::string quarantine_payload_ SIM_GUARDED_BY(mu_);
  Stats stats_ SIM_GUARDED_BY(mu_);

  // Group-commit state. Tickets are sequence numbers: a committer takes
  // ++gc_issued_ and waits until a batch result covering it appears.
  // gc_worker_ itself is touched only by the owner thread (Start/Stop/
  // destructor); committers consult gc_running_ instead so they never
  // race the join.
  std::thread gc_worker_;
  std::atomic<bool> gc_running_{false};
  Mutex gc_mu_;
  // Two condition variables so a ticket enqueue wakes ONLY the worker and
  // a batch resolution wakes ONLY the committers: with one shared cv every
  // enqueue would wake the whole blocked population (O(P^2) futex wakes
  // per batch), which dominates on a single core.
  CondVar gc_work_cv_;
  CondVar gc_done_cv_;
  bool gc_stop_ SIM_GUARDED_BY(gc_mu_) = false;
  uint64_t gc_issued_ SIM_GUARDED_BY(gc_mu_) = 0;
  uint64_t gc_resolved_ SIM_GUARDED_BY(gc_mu_) = 0;
  // Size of the last batch; the worker waits (briefly) for about this many
  // tickets before cutting the next batch, so a steady committer
  // population rides one fsync together instead of alternating halves.
  uint64_t gc_expected_batch_ SIM_GUARDED_BY(gc_mu_) = 1;
  // Status of the most recent batch. A committer whose ticket is covered
  // reads this; if it was descheduled long enough for a LATER batch to
  // resolve first, it reads that batch's status instead — safe in both
  // directions, because a later successful fsync covers every earlier
  // frame, and a later failure is merely a conservative error report.
  Status gc_batch_status_ SIM_GUARDED_BY(gc_mu_) = Status::Ok();
  // Set by StartGroupCommit before the worker exists; immutable while it
  // runs (the spawn/join are the synchronization points).
  obs::Histogram* gc_batch_hist_ = nullptr;
};

// Offline WAL inspection (`simdb_check --wal`): parses the frame chain the
// way the recovery scan does and reports every frame plus the torn-tail
// verdict, without touching the database.
struct WalFrameInfo {
  uint64_t offset = 0;
  uint8_t type = 0;
  PageId page_id = 0;
  uint64_t lsn = 0;
  uint32_t payload_len = 0;
  bool committed = false;  // at or before the last complete commit record
};

struct WalInspection {
  std::vector<WalFrameInfo> frames;
  uint64_t file_bytes = 0;
  uint64_t valid_bytes = 0;      // end of the last complete, CRC-clean frame
  uint64_t committed_bytes = 0;  // end of the last commit record
  uint64_t commits = 0;
  uint64_t page_frames = 0;
  uint64_t meta_frames = 0;
  // Why the scan stopped before end-of-file ("" when it reached the end).
  std::string stop_reason;
  bool tail_clean() const { return valid_bytes == file_bytes; }
};

const char* WalFrameTypeName(uint8_t type);
Result<WalInspection> InspectWal(const std::string& wal_path);

}  // namespace sim

#endif  // SIMDB_STORAGE_WAL_H_
