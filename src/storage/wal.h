#ifndef SIMDB_STORAGE_WAL_H_
#define SIMDB_STORAGE_WAL_H_

// Physical page-image write-ahead log. The paper's SIM delegated recovery
// to DMSII (§5); this is our substitute, giving file-backed databases
// crash atomicity at the page level.
//
// The log lives next to the database file as `<file_path>.wal` and holds
// framed records:
//
//   [ u32 magic | u8 type | u32 page_id | u64 lsn | u32 payload_len |
//     payload... | u32 crc32(frame after magic) ]
//
// where type is kPageImage (payload = one kPageSize page image, already
// checksum-stamped) or kCommit (empty payload). The protocol:
//
//  * Dirty pages flushed by the buffer pool are APPENDED here; the
//    database file itself is only ever written by Checkpoint/Recover, so
//    uncommitted data never reaches it in place.
//  * Commit appends a commit record and fsyncs the log. Everything at or
//    before the last durable commit record is the committed state.
//  * Reads of pages whose latest image lives in the log are served from
//    the log (the buffer pool consults HasImage/ReadImage on a miss).
//  * Checkpoint copies each page's newest committed image into the
//    database file, fsyncs it, then truncates the log. A crash anywhere
//    during checkpoint is safe: the log is only truncated after the
//    database file is durable.
//  * Recover (run by Database::Open) scans an existing log, stops at the
//    first torn/corrupt frame, replays images up to the last complete
//    commit record into the database file and truncates the log —
//    committed statements survive, uncommitted ones vanish.
//
// All log I/O consults an optional FaultInjector so crash schedules are
// deterministic and testable without killing the process.

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/fault_pager.h"
#include "storage/io_retry.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace sim {

class WriteAheadLog {
 public:
  struct Stats {
    uint64_t pages_appended = 0;
    uint64_t commits = 0;
    uint64_t checkpoints = 0;
    uint64_t recovered_pages = 0;
    uint64_t truncated_tail_bytes = 0;
  };

  // Opens (creating if absent) the log for database file `db_path` and
  // scans any existing content up to the first invalid frame. Call
  // Recover() next to apply it. Log I/O retries transient failures under
  // `retry` (appends are idempotent: the offset only advances on success).
  static Result<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& db_path, FaultInjector* injector = nullptr,
      RetryPolicy retry = RetryPolicy());
  ~WriteAheadLog();

  // Replays every page image at or before the last complete commit record
  // into `db`, fsyncs it, then truncates the log. No-op on an empty or
  // commit-free log (the log is still truncated: its content is all
  // uncommitted). Returns the number of pages replayed.
  Result<uint64_t> Recover(Pager* db);

  // Appends one page image (stamping its checksum). Buffered until Sync.
  Status AppendPageImage(PageId id, const char* data);

  // Appends a commit record and fsyncs the log. On return the images
  // appended so far are the durable committed state.
  Status AppendCommit();

  Status Sync();

  // True when the newest version of `id` lives in the log rather than the
  // database file.
  bool HasImage(PageId id) const { return latest_.count(id) > 0; }
  Status ReadImage(PageId id, char* out) const;

  // Copies the newest committed image of every logged page into `db`,
  // fsyncs it, then truncates the log. Must only be called at a commit
  // boundary (no uncommitted images in the log).
  Status Checkpoint(Pager* db);

  // Bytes currently in the log (drives the checkpoint-threshold policy).
  uint64_t size_bytes() const { return append_off_; }
  bool empty() const { return append_off_ == 0; }
  uint64_t last_lsn() const { return next_lsn_ - 1; }
  const Stats& stats() const { return stats_; }
  const RetryStats& retry_stats() const { return retry_stats_; }
  const std::string& path() const { return path_; }

 private:
  WriteAheadLog(std::string path, int fd, FaultInjector* injector,
                RetryPolicy retry)
      : path_(std::move(path)), fd_(fd), injector_(injector), retry_(retry) {}

  // Scans the log from the start, rebuilding the image maps; sets
  // append_off_ to just after the last complete commit record and records
  // how much torn/uncommitted tail will be discarded.
  Status Scan();

  Status WriteFrame(uint8_t type, PageId id, const char* payload,
                    size_t payload_len);
  // Copies every image in `images` into `db`, extending it when needed.
  Status ReplayImages(const std::map<PageId, uint64_t>& images, Pager* db,
                      uint64_t* replayed);
  Status TruncateAll();

  std::string path_;
  int fd_;
  FaultInjector* injector_;
  RetryPolicy retry_;
  RetryStats retry_stats_;
  // Byte offset where the next frame goes (== valid log length).
  uint64_t append_off_ = 0;
  uint64_t next_lsn_ = 1;
  // page id -> byte offset of the newest payload for that page.
  std::map<PageId, uint64_t> latest_;
  // Same, frozen at the last commit record.
  std::map<PageId, uint64_t> committed_;
  Stats stats_;
};

}  // namespace sim

#endif  // SIMDB_STORAGE_WAL_H_
