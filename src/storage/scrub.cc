#include "storage/scrub.h"

#include <algorithm>
#include <chrono>

#include "storage/record_codec.h"
#include "storage/wal.h"

namespace sim {

std::string Scrubber::Report::ToString() const {
  std::string s = "scanned " + std::to_string(pages_scanned) + " pages, " +
                  std::to_string(checksum_failures) + " checksum failures, " +
                  std::to_string(record_failures) + " record failures, " +
                  std::to_string(pages_quarantined) + " newly quarantined, " +
                  std::to_string(pages_skipped) + " skipped\n";
  return s;
}

void Scrubber::VerifyPage(Pager* pager, WriteAheadLog* wal, PageId id,
                          bool validate_records, char* raw, Report* out) {
  if (quarantine_ != nullptr && quarantine_->Contains(id)) {
    ++out->pages_skipped;
    return;
  }
  if (wal != nullptr && wal->HasImage(id)) {
    // The durable page is legitimately stale: the newest image lives in
    // the log, CRC-framed and verified on every ReadImage. Nothing to do.
    ++out->pages_skipped;
    return;
  }
  if (!pager->Read(id, raw).ok()) {
    // An unreadable page (device error) is the I/O retry layer's problem,
    // not rot; the audit's page-unreadable invariant reports it.
    ++out->pages_skipped;
    return;
  }
  ++out->pages_scanned;
  counters_.pages_scanned.Increment();
  if (!PageChecksumOk(raw)) {
    // Re-read once before declaring rot: a checkpoint's in-flight pwrite
    // can present a torn page to a concurrent pread.
    if (!pager->Read(id, raw).ok() || !PageChecksumOk(raw)) {
      ++out->checksum_failures;
      counters_.errors_found.Increment();
      if (quarantine_ != nullptr && quarantine_->Add(id)) {
        ++out->pages_quarantined;
        counters_.pages_quarantined.Increment();
        if (wal != nullptr) {
          Status logged = wal->AppendMetaQuarantine(quarantine_->Encode());
          // The corruption is still on the media, so a lost frame only
          // delays containment until the next pass re-detects it.
          if (!logged.ok()) ++out->persist_failures;
        }
      }
      return;
    }
  }
  if (!validate_records) return;
  // CRC-clean heap page: decode every live record. A failure here is
  // logical corruption (a hostile or bit-flipped record written with a
  // fresh checksum) — quarantining the page would throw away its healthy
  // neighbours, so it is only counted; REPAIR DATABASE drops the record.
  SlottedPage page(raw);
  int slots = page.slot_count();
  if (slots < 0 || slots > static_cast<int>(kPageSize / 4)) {
    ++out->record_failures;
    counters_.errors_found.Increment();
    return;
  }
  for (int s = 0; s < slots; ++s) {
    std::string_view rec;
    if (!page.Get(s, &rec)) continue;
    if (!RecordView::Open(rec).ok()) {
      ++out->record_failures;
      counters_.errors_found.Increment();
    }
  }
}

Status Scrubber::ScrubPages(Pager* pager, WriteAheadLog* wal,
                            const std::vector<PageId>& heap_pages,
                            Report* out) {
  char raw[kPageSize];
  uint32_t count = pager->page_count();
  for (PageId id = 0; id < count; ++id) {
    bool is_heap = std::find(heap_pages.begin(), heap_pages.end(), id) !=
                   heap_pages.end();
    VerifyPage(pager, wal, id, is_heap, raw, out);
  }
  counters_.passes.Increment();
  return Status::Ok();
}

void Scrubber::Start(std::string db_path, WriteAheadLog* wal,
                     uint64_t interval_ms, uint64_t pages_per_tick) {
  if (running_.load(std::memory_order_acquire)) return;
  {
    MutexLock lock(mu_);
    stop_ = false;
  }
  running_.store(true, std::memory_order_release);
  worker_ = std::thread(&Scrubber::Loop, this, std::move(db_path), wal,
                        interval_ms, pages_per_tick);
}

void Scrubber::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  worker_.join();
  running_.store(false, std::memory_order_release);
}

void Scrubber::Loop(std::string db_path, WriteAheadLog* wal,
                    uint64_t interval_ms, uint64_t pages_per_tick) {
  PageId cursor = 0;
  for (;;) {
    {
      MutexLock lock(mu_);
      if (!stop_) {
        cv_.WaitFor(lock, std::chrono::milliseconds(interval_ms));
      }
      if (stop_) return;
    }
    // A private pager per tick: the worker shares no pager state with the
    // execution thread (pread against a concurrent pwrite is the only
    // overlap, and VerifyPage's re-read absorbs a torn in-flight page).
    Result<std::unique_ptr<FilePager>> pager = FilePager::Open(db_path);
    if (!pager.ok()) continue;  // file mid-rename (checkpoint); next tick
    uint32_t count = (*pager)->page_count();
    if (count == 0) continue;
    if (cursor >= count) cursor = 0;
    Report tick;
    char raw[kPageSize];
    uint64_t budget = std::max<uint64_t>(1, pages_per_tick);
    while (budget-- > 0 && cursor < count) {
      VerifyPage(pager->get(), wal, cursor, /*validate_records=*/false, raw,
                 &tick);
      ++cursor;
    }
    if (cursor >= count) {
      counters_.passes.Increment();
      cursor = 0;
    }
  }
}

}  // namespace sim
