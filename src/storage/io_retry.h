#ifndef SIMDB_STORAGE_IO_RETRY_H_
#define SIMDB_STORAGE_IO_RETRY_H_

// I/O resilience primitives shared by the pager and the write-ahead log.
//
// Three layers, from innermost out:
//  * Full-transfer loops (FullPread / FullPwrite): POSIX allows pread and
//    pwrite to transfer fewer bytes than requested and to fail with EINTR
//    on a signal; both are routine on NFS and with profilers attached.
//    Treating either as a hard failure is a correctness bug — these
//    helpers loop until the whole transfer completes or a real error
//    occurs. The syscalls are injectable so tests can script short
//    transfers and EINTR without a real signal.
//  * Errno classification (StatusFromIoErrno): maps an errno to the error
//    taxonomy — kUnavailable (transient: EAGAIN et al.), kDiskFull
//    (ENOSPC/EDQUOT/EFBIG), kIoError (permanent: everything else).
//  * RetryTransient: bounded exponential backoff with deterministic
//    jitter around an operation, retrying only statuses classified
//    transient (kUnavailable). Everything else surfaces immediately.

#include <sys/types.h>
#include <unistd.h>

#include <cstdint>
#include <functional>
#include <string>

#include "common/relaxed_counter.h"
#include "common/status.h"

namespace sim {

// Injectable syscalls for testing short transfers and EINTR.
struct IoSyscalls {
  ssize_t (*pread)(int fd, void* buf, size_t n, off_t off) = ::pread;
  ssize_t (*pwrite)(int fd, const void* buf, size_t n, off_t off) = ::pwrite;
};

// Classifies `err` (an errno value) for operation description `what`.
Status StatusFromIoErrno(const std::string& what, int err);

// True when `s` is worth retrying (transient I/O failure).
inline bool IsTransientIo(const Status& s) {
  return s.code() == StatusCode::kUnavailable;
}

// Reads/writes exactly `n` bytes at `off`, looping over short transfers
// and EINTR. A pread hitting end-of-file is a permanent kIoError (the
// bytes do not exist); every other failure is classified by errno.
Status FullPread(int fd, char* buf, size_t n, off_t off,
                 const std::string& what, const IoSyscalls& sys = IoSyscalls());
Status FullPwrite(int fd, const char* buf, size_t n, off_t off,
                  const std::string& what,
                  const IoSyscalls& sys = IoSyscalls());

// Fsyncs `fd`, looping only on EINTR; every other failure is classified by
// errno, so a permanent device error surfaces as kIoError (and ENOSPC as
// kDiskFull) instead of being spun on. Note POSIX makes retrying a failed
// fsync unreliable (dirty pages may have been dropped), which is exactly
// why the classification must reach the caller.
Status FullFsync(int fd, const std::string& what);

// fdatasync under the same EINTR/errno discipline. Durability-equivalent
// for file data plus the metadata needed to retrieve it (the kernel still
// journals size/extent changes when present); callers that pre-zero their
// write region use it to make steady-state syncs metadata-free.
Status FullFdatasync(int fd, const std::string& what);

// Backoff policy for transient faults. Deterministic: the delay for
// attempt k is min(max, base << k) plus a jitter derived from a counter,
// so tests are reproducible and a fleet of retries decorrelates.
struct RetryPolicy {
  // Total tries per logical operation (first attempt + retries). 1
  // disables retrying.
  int max_attempts = 4;
  // Backoff before retry k (1-based) is min(max, base << (k-1)) ± jitter.
  uint32_t base_backoff_us = 100;
  uint32_t max_backoff_us = 5000;

  uint64_t BackoffUs(int retry_index, uint64_t salt) const;
};

// Fields are RelaxedCounter (copyable relaxed atomics) because
// Database's metrics callbacks sample a live RetryStats from scraper
// threads while the execution thread is inside RetryTransient; see
// common/relaxed_counter.h. The struct itself stays copyable, so
// "snapshot into a local, merge under a lock" call sites are unchanged.
struct RetryStats {
  RelaxedCounter attempts;  // operations attempted (incl. first tries)
  RelaxedCounter retries;   // re-attempts after a transient failure
  RelaxedCounter giveups;   // transient failures that outlasted budget
  RelaxedCounter backoff_us_total;
};

// Runs `op` until it returns a non-transient status or the attempt budget
// is exhausted, sleeping the policy's backoff between attempts. Returns
// the last status (kUnavailable when the budget ran out).
Status RetryTransient(const RetryPolicy& policy, RetryStats* stats,
                      const std::function<Status()>& op);

}  // namespace sim

#endif  // SIMDB_STORAGE_IO_RETRY_H_
