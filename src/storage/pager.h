#ifndef SIMDB_STORAGE_PAGER_H_
#define SIMDB_STORAGE_PAGER_H_

// Physical page storage. A Pager owns a flat, append-only address space of
// kPageSize pages and counts physical I/O. Two implementations are
// provided: an in-memory pager (the default for experiments, where block
// accesses are what matters) and a file-backed pager (durability).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/io_retry.h"
#include "storage/page.h"

namespace sim {

class Pager {
 public:
  struct Stats {
    uint64_t physical_reads = 0;
    uint64_t physical_writes = 0;
  };

  virtual ~Pager() = default;

  // Copies page `id` into `out` (kPageSize bytes).
  virtual Status Read(PageId id, char* out) = 0;
  // Writes kPageSize bytes from `data` to page `id`.
  virtual Status Write(PageId id, const char* data) = 0;
  // Extends the address space by one zeroed page and returns its id.
  virtual Result<PageId> Allocate() = 0;
  virtual uint32_t page_count() const = 0;
  // Flushes any OS buffers (no-op for the in-memory pager).
  virtual Status Sync() { return Status::Ok(); }

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

 protected:
  Stats stats_;
};

// Heap-allocated pages; contents are lost when the pager is destroyed.
class MemPager : public Pager {
 public:
  Status Read(PageId id, char* out) override;
  Status Write(PageId id, const char* data) override;
  Result<PageId> Allocate() override;
  uint32_t page_count() const override {
    return static_cast<uint32_t>(pages_.size());
  }

 private:
  std::vector<std::unique_ptr<char[]>> pages_;
};

// File-backed pages using pread/pwrite on a single database file. All
// transfers go through the full-transfer loops in storage/io_retry.h, so
// EINTR and short reads/writes (signals, NFS) never surface as failures;
// real errors are classified into the transient / disk-full / permanent
// taxonomy by errno.
class FilePager : public Pager {
 public:
  static Result<std::unique_ptr<FilePager>> Open(const std::string& path);
  ~FilePager() override;

  Status Read(PageId id, char* out) override;
  Status Write(PageId id, const char* data) override;
  Result<PageId> Allocate() override;
  uint32_t page_count() const override { return page_count_; }
  Status Sync() override;

 private:
  FilePager(int fd, uint32_t page_count) : fd_(fd), page_count_(page_count) {}

  int fd_;
  uint32_t page_count_;
};

// Retry decorator: forwards to `base`, re-attempting operations that fail
// with a transient status (kUnavailable) under a bounded exponential
// backoff with jitter. Page operations are idempotent (whole-page writes,
// reads into a caller buffer), so re-running a failed attempt is always
// safe — including after a torn/short transfer, which the full rewrite
// repairs. Permanent (kIoError) and disk-full (kDiskFull) statuses pass
// straight through. Sits ABOVE the fault-injecting pager in the stack, so
// injected transient faults exercise exactly this path.
class ResilientPager : public Pager {
 public:
  ResilientPager(Pager* base, RetryPolicy policy)
      : base_(base), policy_(policy) {}

  Status Read(PageId id, char* out) override;
  Status Write(PageId id, const char* data) override;
  Result<PageId> Allocate() override;
  uint32_t page_count() const override { return base_->page_count(); }
  Status Sync() override;

  const RetryStats& retry_stats() const { return retry_stats_; }

 private:
  Pager* base_;
  RetryPolicy policy_;
  RetryStats retry_stats_;
};

}  // namespace sim

#endif  // SIMDB_STORAGE_PAGER_H_
