#ifndef SIMDB_STORAGE_HEAP_FILE_H_
#define SIMDB_STORAGE_HEAP_FILE_H_

// A heap file is an unordered collection of variable-length records spread
// over slotted pages. It is the physical "storage unit" of §5.2: one heap
// file holds a generalization hierarchy's variable-format records, a
// multi-valued DVA's records, or a Common EVA Structure.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace sim {

struct RecordId {
  PageId page = kInvalidPageId;
  uint16_t slot = 0;

  bool valid() const { return page != kInvalidPageId; }
  bool operator==(const RecordId& o) const {
    return page == o.page && slot == o.slot;
  }
  std::string ToString() const {
    return std::to_string(page) + ":" + std::to_string(slot);
  }
};

// Packs a RecordId into the u64 payload slot of an index entry.
inline uint64_t PackRecordId(RecordId rid) {
  return (static_cast<uint64_t>(rid.page) << 16) | rid.slot;
}
inline RecordId UnpackRecordId(uint64_t packed) {
  return RecordId{static_cast<PageId>(packed >> 16),
                  static_cast<uint16_t>(packed & 0xFFFF)};
}

class HeapFile {
 public:
  HeapFile(BufferPool* pool, std::string name);

  const std::string& name() const { return name_; }

  // Appends a record wherever there is room.
  Result<RecordId> Insert(std::string_view record);

  // Clustered insert: places the record on `hint` when it fits there,
  // falling back to a normal insert. This implements the §5.2 "clustering"
  // physical mapping (first relationship instance costs 0 extra blocks).
  Result<RecordId> InsertNear(PageId hint, std::string_view record);

  // Copies the record into *out.
  Status Get(RecordId rid, std::string* out) const;

  // Rewrites a record in place when possible; if the new version does not
  // fit on its page, the record moves and the new RecordId is returned.
  Result<RecordId> Update(RecordId rid, std::string_view record);

  Status Delete(RecordId rid);

  uint64_t record_count() const { return record_count_; }
  const std::vector<PageId>& pages() const { return pages_; }
  // Cached per-page free-space estimates, parallel to pages(); exposed so
  // the invariant auditor can sanity-check them against physical bounds.
  const std::vector<int>& free_estimates() const { return free_estimate_; }

  // Reserve this many bytes per page during ordinary inserts (clustered
  // mappings' PCTFREE-style headroom). InsertNear ignores the reserve.
  void set_reserve_bytes(int bytes) { reserve_bytes_ = bytes; }
  int reserve_bytes() const { return reserve_bytes_; }

  // Re-adopts a page list recovered from a durable snapshot, refreshing the
  // free-space estimates from the pages themselves. `record_count` must be
  // passed in (not recomputed) because clustered units share pages: a scan
  // of an adopted page sees foreign records too.
  Status Attach(std::vector<PageId> pages, uint64_t record_count);

  // Forward scan over all live records. Usage:
  //   for (auto it = file.Begin(); it.Valid(); it.Next()) ...
  // Any Status error during iteration stops the scan and is exposed via
  // status().
  class Iterator {
   public:
    Iterator(const HeapFile* file);
    bool Valid() const { return valid_; }
    RecordId rid() const { return rid_; }
    const std::string& record() const { return record_; }
    void Next();
    const Status& status() const { return status_; }
    // Quarantined pages skipped so far (their records are kDataLoss; the
    // scan keeps serving records from healthy pages).
    uint64_t pages_skipped() const { return pages_skipped_; }

   private:
    void Advance(bool first);

    const HeapFile* file_;
    size_t page_index_ = 0;
    int slot_ = -1;
    bool valid_ = false;
    uint64_t pages_skipped_ = 0;
    RecordId rid_;
    std::string record_;
    Status status_;
  };

  Iterator Begin() const { return Iterator(this); }

 private:
  BufferPool* pool_;
  std::string name_;
  std::vector<PageId> pages_;
  // Cached free-space estimate per page (parallel to pages_).
  std::vector<int> free_estimate_;
  uint64_t record_count_ = 0;
  int reserve_bytes_ = 0;
};

}  // namespace sim

#endif  // SIMDB_STORAGE_HEAP_FILE_H_
