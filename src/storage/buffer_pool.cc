#include "storage/buffer_pool.h"

#include <cstring>

#include "storage/wal.h"

namespace sim {

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    id_ = other.id_;
    other.pool_ = nullptr;
    other.frame_ = -1;
    other.id_ = kInvalidPageId;
  }
  return *this;
}

char* PageHandle::data() {
  MutexLock l(pool_->pool_mu_);
  return pool_->frames_[frame_].data.get();
}

const char* PageHandle::data() const {
  MutexLock l(pool_->pool_mu_);
  return pool_->frames_[frame_].data.get();
}

void PageHandle::MarkDirty() {
  MutexLock l(pool_->pool_mu_);
  pool_->frames_[frame_].dirty = true;
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    frame_ = -1;
  }
}

BufferPool::BufferPool(Pager* pager, size_t capacity_frames,
                       WriteAheadLog* wal)
    : pager_(pager), wal_(wal) {
  MutexLock l(pool_mu_);
  frames_.resize(capacity_frames);
  for (auto& f : frames_) {
    f.data = std::make_unique<char[]>(kPageSize);
  }
}

Status BufferPool::WriteBack(Frame& f) {
  StampPageChecksum(f.data.get());
  counters_.dirty_writebacks.Increment();
  // WAL-before-data: in WAL mode the image goes to the log; the in-place
  // write to the database file is deferred to checkpoint/recovery, which
  // only runs on committed images.
  if (wal_ != nullptr) return wal_->AppendPageImage(f.page_id, f.data.get());
  return pager_->Write(f.page_id, f.data.get());
}

Status BufferPool::ReadPage(PageId id, char* out) {
  if (wal_ != nullptr && wal_->HasImage(id)) {
    // ReadImage verifies the checksum itself.
    return wal_->ReadImage(id, out);
  }
  SIM_RETURN_IF_ERROR(pager_->Read(id, out));
  if (!PageChecksumOk(out)) {
    if (quarantine_ != nullptr) {
      // Contain the damage: register the page so every later fetch fails
      // fast with the same typed loss, and log the registry so it survives
      // a crash (sealed at the next commit; until then the corruption on
      // the media re-triggers this path, so containment is self-healing).
      Status loss = Status::DataLoss(
          "page " + std::to_string(id) +
          " is quarantined (checksum mismatch); run REPAIR DATABASE");
      if (quarantine_->Add(id) && wal_ != nullptr) {
        Status logged = wal_->AppendMetaQuarantine(quarantine_->Encode());
        if (!logged.ok()) {
          loss = Status::DataLoss(loss.message() +
                                  "; quarantine not yet durable: " +
                                  logged.ToString());
        }
      }
      return loss;
    }
    return Status::IoError("checksum mismatch on page " + std::to_string(id) +
                           " (torn or corrupt write)");
  }
  return Status::Ok();
}

Result<PageHandle> BufferPool::Fetch(PageId id) {
  MutexLock l(pool_mu_);
  counters_.logical_fetches.Increment();
  auto it = page_to_frame_.find(id);
  if (it != page_to_frame_.end()) {
    Frame& f = frames_[it->second];
    ++f.pin_count;
    f.lru_tick = ++tick_;
    return PageHandle(this, it->second, id);
  }
  if (quarantine_ != nullptr && quarantine_->Contains(id)) {
    return Status::DataLoss("page " + std::to_string(id) +
                            " is quarantined; run REPAIR DATABASE");
  }
  counters_.misses.Increment();
  SIM_ASSIGN_OR_RETURN(int frame, GetVictimFrame());
  Frame& f = frames_[frame];
  SIM_RETURN_IF_ERROR(ReadPage(id, f.data.get()));
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.lru_tick = ++tick_;
  page_to_frame_[id] = frame;
  return PageHandle(this, frame, id);
}

Result<PageHandle> BufferPool::New() {
  MutexLock l(pool_mu_);
  SIM_ASSIGN_OR_RETURN(PageId id, pager_->Allocate());
  // An allocation is neither a hit nor a miss: counting it as a fetch
  // inflated the hit rate (the page is born in the pool and can never
  // miss), so it gets its own counter.
  counters_.allocations.Increment();
  SIM_ASSIGN_OR_RETURN(int frame, GetVictimFrame());
  Frame& f = frames_[frame];
  std::memset(f.data.get(), 0, kPageSize);
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = true;
  f.lru_tick = ++tick_;
  page_to_frame_[id] = frame;
  return PageHandle(this, frame, id);
}

Status BufferPool::FlushAll() {
  MutexLock l(pool_mu_);
  // Writeback counting lives in WriteBack(): FlushAll historically did
  // not count its writebacks, under-reporting against InvalidateAll and
  // eviction, which did.
  for (auto& f : frames_) {
    if (f.page_id != kInvalidPageId && f.dirty) {
      SIM_RETURN_IF_ERROR(WriteBack(f));
      f.dirty = false;
    }
  }
  return Status::Ok();
}

Status BufferPool::InvalidateAll() {
  MutexLock l(pool_mu_);
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.page_id == kInvalidPageId || f.pin_count > 0) continue;
    if (f.dirty) {
      SIM_RETURN_IF_ERROR(WriteBack(f));
    }
    page_to_frame_.erase(f.page_id);
    f.page_id = kInvalidPageId;
    f.dirty = false;
  }
  return Status::Ok();
}

void BufferPool::Unpin(int frame) {
  MutexLock l(pool_mu_);
  Frame& f = frames_[frame];
  if (f.pin_count > 0) --f.pin_count;
}

Result<int> BufferPool::GetVictimFrame() {
  int victim = -1;
  uint64_t oldest = ~uint64_t{0};
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& f = frames_[i];
    if (f.page_id == kInvalidPageId) {
      victim = static_cast<int>(i);
      break;
    }
    if (f.pin_count == 0 && f.lru_tick < oldest) {
      oldest = f.lru_tick;
      victim = static_cast<int>(i);
    }
  }
  if (victim < 0) {
    return Status::IoError("buffer pool exhausted: all frames pinned");
  }
  Frame& f = frames_[victim];
  if (f.page_id != kInvalidPageId) {
    if (f.dirty) {
      SIM_RETURN_IF_ERROR(WriteBack(f));
    }
    page_to_frame_.erase(f.page_id);
    counters_.evictions.Increment();
    f.page_id = kInvalidPageId;
  }
  return victim;
}

}  // namespace sim
