#include "storage/fault_pager.h"

#include <algorithm>
#include <cstring>

namespace sim {

Status FaultInjector::CheckLocked(Op op, uint64_t seen,
                                  size_t intended_bytes,
                                  size_t* allowed_bytes) {
  if (allowed_bytes != nullptr) *allowed_bytes = 0;
  if (dead_) {
    return Status::IoError("injected fault: device is gone (post-crash)");
  }
  for (const Fault& f : faults_) {
    if (f.op != op) continue;
    // Which operation numbers this fault covers depends on its mode.
    bool hit = false;
    switch (f.mode) {
      case Mode::kCrash:
        hit = f.at == seen;
        break;
      case Mode::kTransient:
      case Mode::kShortIo:
        hit = seen >= f.at && seen < f.at + f.times;
        break;
      case Mode::kPermanent:
      case Mode::kDiskFull:
        hit = seen >= f.at;
        break;
      case Mode::kBitRot:
        // Bit rot is page-targeted, not operation-count targeted; it is
        // applied by ApplyBitRot after the read succeeds.
        break;
    }
    if (!hit) continue;
    ++stats_.faults_fired;
    switch (f.mode) {
      case Mode::kCrash:
        if (f.fatal) dead_ = true;
        if (op == Op::kWrite && f.torn_bytes >= 0 &&
            allowed_bytes != nullptr) {
          *allowed_bytes = std::min(static_cast<size_t>(f.torn_bytes),
                                    intended_bytes);
          return Status::IoError("injected fault: torn write (" +
                                 std::to_string(*allowed_bytes) + " of " +
                                 std::to_string(intended_bytes) + " bytes)");
        }
        switch (op) {
          case Op::kWrite:
            return Status::IoError("injected fault: write failed");
          case Op::kSync:
            return Status::IoError("injected fault: sync failed");
          case Op::kRead:
            return Status::IoError("injected fault: read failed");
        }
        break;
      case Mode::kTransient:
        return Status::Unavailable("injected fault: transient failure (op " +
                                   std::to_string(seen) + ")");
      case Mode::kPermanent:
        return Status::IoError("injected fault: permanent device failure");
      case Mode::kDiskFull:
        return Status::DiskFull("injected fault: no space left on device");
      case Mode::kShortIo:
        if (op == Op::kWrite && f.torn_bytes >= 0 &&
            allowed_bytes != nullptr) {
          *allowed_bytes = std::min(static_cast<size_t>(f.torn_bytes),
                                    intended_bytes);
        }
        return Status::Unavailable(
            "injected fault: short write (" +
            std::to_string(allowed_bytes != nullptr ? *allowed_bytes : 0) +
            " of " + std::to_string(intended_bytes) + " bytes)");
      case Mode::kBitRot:
        break;  // unreachable: kBitRot never hits above
    }
  }
  return Status::Ok();
}

Status FaultInjector::BeginWrite(size_t intended_bytes,
                                 size_t* allowed_bytes) {
  MutexLock lock(mu_);
  ++stats_.writes_seen;
  return CheckLocked(Op::kWrite, stats_.writes_seen, intended_bytes,
                     allowed_bytes);
}

Status FaultInjector::BeginSync() {
  MutexLock lock(mu_);
  ++stats_.syncs_seen;
  return CheckLocked(Op::kSync, stats_.syncs_seen, 0, nullptr);
}

Status FaultInjector::BeginRead() {
  MutexLock lock(mu_);
  ++stats_.reads_seen;
  return CheckLocked(Op::kRead, stats_.reads_seen, 0, nullptr);
}

bool FaultInjector::ApplyBitRot(PageId id, char* page) {
  MutexLock lock(mu_);
  if (dead_) return false;
  bool rotted = false;
  for (const Fault& f : faults_) {
    if (f.mode != Mode::kBitRot || f.rot_page != id) continue;
    // Flip payload bytes (past the 8-byte checksum header) at positions
    // derived deterministically from the page id, so the same plan always
    // rots the same bytes and the corruption is reproducible in tests.
    for (uint64_t i = 0; i < f.rot_flips; ++i) {
      uint64_t h = (static_cast<uint64_t>(id) + 1) * 0x9e3779b97f4a7c15ULL;
      h ^= (i + 1) * 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 31;
      size_t pos = kPageHeaderSize + (h % (kPageSize - kPageHeaderSize));
      page[pos] = static_cast<char>(page[pos] ^ 0xFF);
    }
    ++stats_.faults_fired;
    rotted = true;
  }
  return rotted;
}

Status FaultInjectingPager::Read(PageId id, char* out) {
  SIM_RETURN_IF_ERROR(injector_->BeginRead());
  SIM_RETURN_IF_ERROR(base_->Read(id, out));
  injector_->ApplyBitRot(id, out);
  return Status::Ok();
}

Status FaultInjectingPager::Write(PageId id, const char* data) {
  size_t allowed = 0;
  Status s = injector_->BeginWrite(kPageSize, &allowed);
  if (s.ok()) return base_->Write(id, data);
  if (allowed > 0 && id < base_->page_count()) {
    // Torn write: the first `allowed` bytes of the new image land on disk,
    // the rest of the page keeps its previous content.
    char mixed[kPageSize];
    if (!base_->Read(id, mixed).ok()) std::memset(mixed, 0, kPageSize);
    std::memcpy(mixed, data, allowed);
    // The injected fault `s` is the outcome under test; the torn image is
    // scenery, and a failure writing it only makes the tear shorter.
    s.Update(base_->Write(id, mixed));
  }
  return s;
}

Result<PageId> FaultInjectingPager::Allocate() {
  // Extending the file is a write; a fault here models the extension
  // never reaching the disk.
  size_t allowed = 0;
  SIM_RETURN_IF_ERROR(injector_->BeginWrite(kPageSize, &allowed));
  return base_->Allocate();
}

Status FaultInjectingPager::Sync() {
  SIM_RETURN_IF_ERROR(injector_->BeginSync());
  return base_->Sync();
}

}  // namespace sim
