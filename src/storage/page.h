#ifndef SIMDB_STORAGE_PAGE_H_
#define SIMDB_STORAGE_PAGE_H_

// Slotted-page layout. Every storage unit (heap file, B+-tree node, hash
// bucket) lives in fixed-size pages; record-level structures use the
// slotted layout implemented here. The page is the unit of "block access"
// accounting that the optimizer cost model and the §5.2 mapping experiments
// observe.
//
// Every page reserves a common header in its first kPageHeaderSize bytes:
//
//   [ u32 checksum | u32 reserved ]
//
// The checksum is a CRC32 over bytes [4, kPageSize) stamped by the buffer
// pool / WAL just before the page goes to durable storage, and verified
// when a page comes back from it, so a torn in-place write is detected on
// read instead of being interpreted as data. An all-zero page (freshly
// allocated, never written) is also considered valid. Structure-specific
// layouts (slotted page, B+-tree node, hash bucket) start at
// kPageDataStart.

#include <cstdint>
#include <string_view>

#include "common/status.h"

namespace sim {

inline constexpr size_t kPageSize = 4096;

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFF;

// Common durable-page header: u32 CRC32 of bytes [4, kPageSize), u32
// reserved (always zero for now).
inline constexpr size_t kPageHeaderSize = 8;
inline constexpr size_t kPageDataStart = kPageHeaderSize;

// CRC32 (IEEE 802.3 polynomial, the zlib/PNG crc) over `len` bytes.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

// Computes and stores the checksum of `page` in its header.
void StampPageChecksum(char* page);

// True when the stored checksum matches the page contents, or when the
// whole page is zero (allocated but never written).
bool PageChecksumOk(const char* page);

// A view over one page of memory, arranged as:
//
//   [ u16 slot_count | u16 free_end | u16 garbage | slot directory ... ]
//   [ ...free space... | record data grows from the page end ]
//
// laid out after the common page header (kPageDataStart).
//
// Each slot directory entry is {u16 offset, u16 length}; offset 0 marks a
// tombstoned slot (the page and slotted headers occupy the low offsets, so
// no record can legitimately start at 0). Slot numbers are stable across
// deletes, which lets RecordIds remain valid for the lifetime of a record.
class SlottedPage {
 public:
  // Wraps existing page memory; does not take ownership.
  explicit SlottedPage(char* data) : data_(data) {}

  // Formats fresh page memory as an empty slotted page.
  static void Initialize(char* data);

  int slot_count() const;

  // Bytes available for a new record, accounting for its slot entry.
  // Includes reclaimable garbage (Insert compacts when needed).
  int FreeSpaceForNewRecord() const;

  // Appends a record; returns its slot number, or IoError if it cannot fit.
  Result<int> Insert(std::string_view record);

  // Reads the record in `slot`. Returns false if the slot is empty/deleted
  // or out of range. The returned view points into the page memory.
  bool Get(int slot, std::string_view* record) const;

  // Tombstones a slot. The space becomes garbage reclaimed by compaction.
  Status Delete(int slot);

  // Replaces the record in `slot`. Works in place when the new record is
  // not larger; otherwise re-allocates within this page (compacting if
  // needed) and fails with IoError if the page cannot hold the new size.
  Status Update(int slot, std::string_view record);

  // Live record bytes plus directory overhead currently used.
  int UsedBytes() const;

 private:
  uint16_t ReadU16(size_t off) const;
  void WriteU16(size_t off, uint16_t v);
  // Slot directory entry offsets within the page.
  static size_t SlotOffsetPos(int slot) { return kHeaderSize + slot * 4; }
  static size_t SlotLengthPos(int slot) { return kHeaderSize + slot * 4 + 2; }
  // Rewrites all live records contiguously at the page end.
  void Compact();

  // Common page header plus the slotted header fields.
  static constexpr size_t kHeaderSize = kPageDataStart + 6;

  char* data_;
};

}  // namespace sim

#endif  // SIMDB_STORAGE_PAGE_H_
