#include "storage/page.h"

#include <array>
#include <cstring>
#include <vector>

namespace sim {

namespace {

constexpr size_t kSlotEntrySize = 4;
// Slotted header fields live right after the common page header.
constexpr size_t kSlotCountPos = kPageDataStart + 0;
constexpr size_t kFreeEndPos = kPageDataStart + 2;
constexpr size_t kGarbagePos = kPageDataStart + 4;

// Slicing-by-8: eight derived tables let the hot loop fold 8 input bytes
// per iteration instead of 1. Same polynomial (0xEDB88320, reflected) and
// identical results as the classic byte-at-a-time form — page stamps and
// WAL frame CRCs are on the commit path, where two 4 KiB passes per page
// append are pure per-commit CPU cost.
std::array<std::array<uint32_t, 256>, 8> BuildCrcTables() {
  std::array<std::array<uint32_t, 256>, 8> t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    for (int j = 1; j < 8; ++j) {
      t[j][i] = (t[j - 1][i] >> 8) ^ t[0][t[j - 1][i] & 0xFFu];
    }
  }
  return t;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  static const std::array<std::array<uint32_t, 256>, 8> tables =
      BuildCrcTables();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  // The word-folding formulation assumes little-endian loads; big-endian
  // builds fall through to the byte loop below.
  while (len >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = tables[7][lo & 0xFFu] ^ tables[6][(lo >> 8) & 0xFFu] ^
        tables[5][(lo >> 16) & 0xFFu] ^ tables[4][lo >> 24] ^
        tables[3][hi & 0xFFu] ^ tables[2][(hi >> 8) & 0xFFu] ^
        tables[1][(hi >> 16) & 0xFFu] ^ tables[0][hi >> 24];
    p += 8;
    len -= 8;
  }
#endif
  for (size_t i = 0; i < len; ++i) {
    c = tables[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void StampPageChecksum(char* page) {
  uint32_t crc = Crc32(page + 4, kPageSize - 4);
  std::memcpy(page, &crc, 4);
}

bool PageChecksumOk(const char* page) {
  uint32_t stored;
  std::memcpy(&stored, page, 4);
  uint32_t actual = Crc32(page + 4, kPageSize - 4);
  if (stored == actual) return true;
  if (stored != 0) return false;
  // Never-stamped pages are valid only when fully zero.
  for (size_t i = 4; i < kPageSize; ++i) {
    if (page[i] != 0) return false;
  }
  return true;
}

uint16_t SlottedPage::ReadU16(size_t off) const {
  uint16_t v;
  std::memcpy(&v, data_ + off, 2);
  return v;
}

void SlottedPage::WriteU16(size_t off, uint16_t v) {
  std::memcpy(data_ + off, &v, 2);
}

void SlottedPage::Initialize(char* data) {
  std::memset(data, 0, kPageSize);
  SlottedPage page(data);
  page.WriteU16(kSlotCountPos, 0);
  page.WriteU16(kFreeEndPos, static_cast<uint16_t>(kPageSize));
  page.WriteU16(kGarbagePos, 0);
}

int SlottedPage::slot_count() const { return ReadU16(kSlotCountPos); }

int SlottedPage::FreeSpaceForNewRecord() const {
  int slots = slot_count();
  int free_end = ReadU16(kFreeEndPos);
  int garbage = ReadU16(kGarbagePos);
  int directory_end = static_cast<int>(kHeaderSize + slots * kSlotEntrySize);
  int contiguous = free_end - directory_end;
  int total = contiguous + garbage;
  // A new record also needs a slot entry (unless a tombstoned slot can be
  // reused; we are conservative here).
  return total - static_cast<int>(kSlotEntrySize);
}

Result<int> SlottedPage::Insert(std::string_view record) {
  const int len = static_cast<int>(record.size());
  if (len > FreeSpaceForNewRecord()) {
    return Status::IoError("record does not fit in page");
  }
  int slots = slot_count();
  // Reuse a tombstoned slot if available to bound directory growth.
  int slot = -1;
  for (int i = 0; i < slots; ++i) {
    if (ReadU16(SlotOffsetPos(i)) == 0) {
      slot = i;
      break;
    }
  }
  bool new_slot = slot < 0;
  if (new_slot) slot = slots;

  int free_end = ReadU16(kFreeEndPos);
  int directory_end = static_cast<int>(
      kHeaderSize + (slots + (new_slot ? 1 : 0)) * kSlotEntrySize);
  if (free_end - directory_end < len) {
    Compact();
    free_end = ReadU16(kFreeEndPos);
    if (free_end - directory_end < len) {
      return Status::IoError("record does not fit in page after compaction");
    }
  }
  int offset = free_end - len;
  std::memcpy(data_ + offset, record.data(), len);
  WriteU16(kFreeEndPos, static_cast<uint16_t>(offset));
  if (new_slot) WriteU16(kSlotCountPos, static_cast<uint16_t>(slots + 1));
  WriteU16(SlotOffsetPos(slot), static_cast<uint16_t>(offset));
  WriteU16(SlotLengthPos(slot), static_cast<uint16_t>(len));
  return slot;
}

bool SlottedPage::Get(int slot, std::string_view* record) const {
  if (slot < 0 || slot >= slot_count()) return false;
  uint16_t offset = ReadU16(SlotOffsetPos(slot));
  if (offset == 0) return false;
  uint16_t len = ReadU16(SlotLengthPos(slot));
  *record = std::string_view(data_ + offset, len);
  return true;
}

Status SlottedPage::Delete(int slot) {
  if (slot < 0 || slot >= slot_count()) {
    return Status::NotFound("no such slot");
  }
  uint16_t offset = ReadU16(SlotOffsetPos(slot));
  if (offset == 0) return Status::NotFound("slot already empty");
  uint16_t len = ReadU16(SlotLengthPos(slot));
  WriteU16(SlotOffsetPos(slot), 0);
  WriteU16(SlotLengthPos(slot), 0);
  WriteU16(kGarbagePos, static_cast<uint16_t>(ReadU16(kGarbagePos) + len));
  return Status::Ok();
}

Status SlottedPage::Update(int slot, std::string_view record) {
  if (slot < 0 || slot >= slot_count()) {
    return Status::NotFound("no such slot");
  }
  uint16_t offset = ReadU16(SlotOffsetPos(slot));
  if (offset == 0) return Status::NotFound("slot is empty");
  uint16_t old_len = ReadU16(SlotLengthPos(slot));
  if (record.size() <= old_len) {
    std::memcpy(data_ + offset, record.data(), record.size());
    WriteU16(SlotLengthPos(slot), static_cast<uint16_t>(record.size()));
    WriteU16(kGarbagePos,
             static_cast<uint16_t>(ReadU16(kGarbagePos) +
                                   (old_len - record.size())));
    return Status::Ok();
  }
  // Grow: delete then re-insert into the same slot.
  SIM_RETURN_IF_ERROR(Delete(slot));
  int slots = slot_count();
  int free_end = ReadU16(kFreeEndPos);
  int directory_end = static_cast<int>(kHeaderSize + slots * kSlotEntrySize);
  int len = static_cast<int>(record.size());
  if (free_end - directory_end < len) {
    Compact();
    free_end = ReadU16(kFreeEndPos);
    if (free_end - directory_end < len) {
      // Restore nothing: caller treats this as "move the record elsewhere".
      return Status::IoError("updated record does not fit in page");
    }
  }
  int new_offset = free_end - len;
  std::memcpy(data_ + new_offset, record.data(), len);
  WriteU16(kFreeEndPos, static_cast<uint16_t>(new_offset));
  WriteU16(SlotOffsetPos(slot), static_cast<uint16_t>(new_offset));
  WriteU16(SlotLengthPos(slot), static_cast<uint16_t>(len));
  return Status::Ok();
}

int SlottedPage::UsedBytes() const {
  int used = static_cast<int>(kHeaderSize + slot_count() * kSlotEntrySize);
  for (int i = 0; i < slot_count(); ++i) {
    if (ReadU16(SlotOffsetPos(i)) != 0) used += ReadU16(SlotLengthPos(i));
  }
  return used;
}

void SlottedPage::Compact() {
  int slots = slot_count();
  std::vector<std::pair<int, std::string>> live;
  live.reserve(slots);
  for (int i = 0; i < slots; ++i) {
    uint16_t offset = ReadU16(SlotOffsetPos(i));
    if (offset == 0) continue;
    uint16_t len = ReadU16(SlotLengthPos(i));
    live.emplace_back(i, std::string(data_ + offset, len));
  }
  int free_end = static_cast<int>(kPageSize);
  for (const auto& [slot, bytes] : live) {
    free_end -= static_cast<int>(bytes.size());
    std::memcpy(data_ + free_end, bytes.data(), bytes.size());
    WriteU16(SlotOffsetPos(slot), static_cast<uint16_t>(free_end));
    WriteU16(SlotLengthPos(slot), static_cast<uint16_t>(bytes.size()));
  }
  WriteU16(kFreeEndPos, static_cast<uint16_t>(free_end));
  WriteU16(kGarbagePos, 0);
}

}  // namespace sim
