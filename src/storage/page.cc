#include "storage/page.h"

#include <cstring>
#include <vector>

namespace sim {

namespace {
constexpr size_t kSlotEntrySize = 4;
}  // namespace

uint16_t SlottedPage::ReadU16(size_t off) const {
  uint16_t v;
  std::memcpy(&v, data_ + off, 2);
  return v;
}

void SlottedPage::WriteU16(size_t off, uint16_t v) {
  std::memcpy(data_ + off, &v, 2);
}

void SlottedPage::Initialize(char* data) {
  std::memset(data, 0, kPageSize);
  SlottedPage page(data);
  page.WriteU16(0, 0);                                   // slot_count
  page.WriteU16(2, static_cast<uint16_t>(kPageSize));    // free_end
  page.WriteU16(4, 0);                                   // garbage bytes
}

int SlottedPage::slot_count() const { return ReadU16(0); }

int SlottedPage::FreeSpaceForNewRecord() const {
  int slots = slot_count();
  int free_end = ReadU16(2);
  int garbage = ReadU16(4);
  int directory_end = static_cast<int>(kHeaderSize + slots * kSlotEntrySize);
  int contiguous = free_end - directory_end;
  int total = contiguous + garbage;
  // A new record also needs a slot entry (unless a tombstoned slot can be
  // reused; we are conservative here).
  return total - static_cast<int>(kSlotEntrySize);
}

Result<int> SlottedPage::Insert(std::string_view record) {
  const int len = static_cast<int>(record.size());
  if (len > FreeSpaceForNewRecord()) {
    return Status::IoError("record does not fit in page");
  }
  int slots = slot_count();
  // Reuse a tombstoned slot if available to bound directory growth.
  int slot = -1;
  for (int i = 0; i < slots; ++i) {
    if (ReadU16(SlotOffsetPos(i)) == 0) {
      slot = i;
      break;
    }
  }
  bool new_slot = slot < 0;
  if (new_slot) slot = slots;

  int free_end = ReadU16(2);
  int directory_end = static_cast<int>(
      kHeaderSize + (slots + (new_slot ? 1 : 0)) * kSlotEntrySize);
  if (free_end - directory_end < len) {
    Compact();
    free_end = ReadU16(2);
    if (free_end - directory_end < len) {
      return Status::IoError("record does not fit in page after compaction");
    }
  }
  int offset = free_end - len;
  std::memcpy(data_ + offset, record.data(), len);
  WriteU16(2, static_cast<uint16_t>(offset));
  if (new_slot) WriteU16(0, static_cast<uint16_t>(slots + 1));
  WriteU16(SlotOffsetPos(slot), static_cast<uint16_t>(offset));
  WriteU16(SlotLengthPos(slot), static_cast<uint16_t>(len));
  return slot;
}

bool SlottedPage::Get(int slot, std::string_view* record) const {
  if (slot < 0 || slot >= slot_count()) return false;
  uint16_t offset = ReadU16(SlotOffsetPos(slot));
  if (offset == 0) return false;
  uint16_t len = ReadU16(SlotLengthPos(slot));
  *record = std::string_view(data_ + offset, len);
  return true;
}

Status SlottedPage::Delete(int slot) {
  if (slot < 0 || slot >= slot_count()) {
    return Status::NotFound("no such slot");
  }
  uint16_t offset = ReadU16(SlotOffsetPos(slot));
  if (offset == 0) return Status::NotFound("slot already empty");
  uint16_t len = ReadU16(SlotLengthPos(slot));
  WriteU16(SlotOffsetPos(slot), 0);
  WriteU16(SlotLengthPos(slot), 0);
  WriteU16(4, static_cast<uint16_t>(ReadU16(4) + len));
  return Status::Ok();
}

Status SlottedPage::Update(int slot, std::string_view record) {
  if (slot < 0 || slot >= slot_count()) {
    return Status::NotFound("no such slot");
  }
  uint16_t offset = ReadU16(SlotOffsetPos(slot));
  if (offset == 0) return Status::NotFound("slot is empty");
  uint16_t old_len = ReadU16(SlotLengthPos(slot));
  if (record.size() <= old_len) {
    std::memcpy(data_ + offset, record.data(), record.size());
    WriteU16(SlotLengthPos(slot), static_cast<uint16_t>(record.size()));
    WriteU16(4, static_cast<uint16_t>(ReadU16(4) + (old_len - record.size())));
    return Status::Ok();
  }
  // Grow: delete then re-insert into the same slot.
  SIM_RETURN_IF_ERROR(Delete(slot));
  int slots = slot_count();
  int free_end = ReadU16(2);
  int directory_end = static_cast<int>(kHeaderSize + slots * kSlotEntrySize);
  int len = static_cast<int>(record.size());
  if (free_end - directory_end < len) {
    Compact();
    free_end = ReadU16(2);
    if (free_end - directory_end < len) {
      // Restore nothing: caller treats this as "move the record elsewhere".
      return Status::IoError("updated record does not fit in page");
    }
  }
  int new_offset = free_end - len;
  std::memcpy(data_ + new_offset, record.data(), len);
  WriteU16(2, static_cast<uint16_t>(new_offset));
  WriteU16(SlotOffsetPos(slot), static_cast<uint16_t>(new_offset));
  WriteU16(SlotLengthPos(slot), static_cast<uint16_t>(len));
  return Status::Ok();
}

int SlottedPage::UsedBytes() const {
  int used = static_cast<int>(kHeaderSize + slot_count() * kSlotEntrySize);
  for (int i = 0; i < slot_count(); ++i) {
    if (ReadU16(SlotOffsetPos(i)) != 0) used += ReadU16(SlotLengthPos(i));
  }
  return used;
}

void SlottedPage::Compact() {
  int slots = slot_count();
  std::vector<std::pair<int, std::string>> live;
  live.reserve(slots);
  for (int i = 0; i < slots; ++i) {
    uint16_t offset = ReadU16(SlotOffsetPos(i));
    if (offset == 0) continue;
    uint16_t len = ReadU16(SlotLengthPos(i));
    live.emplace_back(i, std::string(data_ + offset, len));
  }
  int free_end = static_cast<int>(kPageSize);
  for (const auto& [slot, bytes] : live) {
    free_end -= static_cast<int>(bytes.size());
    std::memcpy(data_ + free_end, bytes.data(), bytes.size());
    WriteU16(SlotOffsetPos(slot), static_cast<uint16_t>(free_end));
    WriteU16(SlotLengthPos(slot), static_cast<uint16_t>(bytes.size()));
  }
  WriteU16(2, static_cast<uint16_t>(free_end));
  WriteU16(4, 0);
}

}  // namespace sim
