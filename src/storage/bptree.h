#ifndef SIMDB_STORAGE_BPTREE_H_
#define SIMDB_STORAGE_BPTREE_H_

// Page-based B+-tree mapping byte-string keys (memcmp order) to u64 values.
// Duplicate keys are allowed; (key, value) pairs are unique. This is the
// "index sequential" key organization of §5.2; it also backs UNIQUE
// attribute enforcement and surrogate -> RecordId primary indexes.
//
// All node access goes through the buffer pool, so tree probes show up in
// the block-access counters used by the optimizer cost model and by the
// mapping experiments.
//
// Deletions do not rebalance (nodes may underflow); this matches the
// reproduction's needs and keeps the structure simple. Empty leaves remain
// chained and are skipped by iterators.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"

namespace sim {

class BPlusTree {
 public:
  // Creates a new empty tree (allocates the root leaf).
  static Result<BPlusTree> Create(BufferPool* pool, std::string name);

  // Reattaches to an existing tree whose pages are already durable; the
  // root/height/entry_count triple comes from a recovered snapshot.
  static BPlusTree Attach(BufferPool* pool, std::string name, PageId root,
                          int height, uint64_t entry_count) {
    BPlusTree tree(pool, std::move(name), root);
    tree.height_ = height;
    tree.entry_count_ = entry_count;
    return tree;
  }

  const std::string& name() const { return name_; }
  PageId root() const { return root_; }
  int height() const { return height_; }
  uint64_t entry_count() const { return entry_count_; }

  // Inserts a (key, value) pair. Duplicate keys allowed; inserting the
  // exact same (key, value) pair twice is also allowed (multiset).
  Status Insert(std::string_view key, uint64_t value);

  // Inserts only if the key is absent; AlreadyExists otherwise.
  Status InsertUnique(std::string_view key, uint64_t value);

  // Removes one (key, value) pair; NotFound if absent.
  Status Delete(std::string_view key, uint64_t value);

  // True if at least one entry with this key exists.
  Result<bool> Contains(std::string_view key);

  // All values stored under `key`.
  Result<std::vector<uint64_t>> GetAll(std::string_view key);

  // Same, appending into a caller-owned buffer (cleared first). Probes the
  // encoded pages directly — no node materialization — so repeated lookups
  // reuse the buffer's capacity and allocate nothing.
  Status GetAllInto(std::string_view key, std::vector<uint64_t>* out);

  // First value under `key`, if any.
  Result<std::optional<uint64_t>> GetFirst(std::string_view key);

  // Forward iterator positioned at the first entry with key >= seek_key.
  // The iterator materializes one leaf at a time.
  class Iterator {
   public:
    bool Valid() const { return valid_; }
    const std::string& key() const { return keys_[index_]; }
    uint64_t value() const { return values_[index_]; }
    Status Next();

   private:
    friend class BPlusTree;
    BPlusTree* tree_ = nullptr;
    PageId leaf_ = kInvalidPageId;
    PageId next_ = kInvalidPageId;
    std::vector<std::string> keys_;
    std::vector<uint64_t> values_;
    size_t index_ = 0;
    bool valid_ = false;

    Status LoadLeaf(PageId leaf, std::string_view seek_key);
  };

  Result<Iterator> Seek(std::string_view key);
  Result<Iterator> Begin();

 private:
  BPlusTree(BufferPool* pool, std::string name, PageId root)
      : pool_(pool), name_(std::move(name)), root_(root) {}

  struct LeafNode {
    std::vector<std::string> keys;
    std::vector<uint64_t> values;
    PageId next = kInvalidPageId;
  };
  struct InternalNode {
    std::vector<std::string> keys;      // size n
    std::vector<PageId> children;       // size n + 1
  };
  struct SplitResult {
    std::string separator;
    PageId right;
  };

  static Result<bool> IsLeafPage(const char* data);
  static void EncodeLeaf(const LeafNode& node, char* data);
  static Status DecodeLeaf(const char* data, LeafNode* node);
  static void EncodeInternal(const InternalNode& node, char* data);
  static Status DecodeInternal(const char* data, InternalNode* node);
  static size_t LeafSize(const LeafNode& node);
  static size_t InternalSize(const InternalNode& node);

  // Recursive insert; returns a split description when `page` split.
  Result<std::optional<SplitResult>> InsertRec(PageId page,
                                               std::string_view key,
                                               uint64_t value);
  // Finds the leaf that may contain `key`.
  Result<PageId> FindLeaf(std::string_view key);
  Result<PageId> LeftmostLeaf();

  BufferPool* pool_;
  std::string name_;
  PageId root_;
  int height_ = 1;
  uint64_t entry_count_ = 0;
};

}  // namespace sim

#endif  // SIMDB_STORAGE_BPTREE_H_
