#include "storage/txn.h"

namespace sim {

Status Transaction::RollbackTo(size_t depth) {
  while (undo_log_.size() > depth) {
    Status s = undo_log_.back()();
    undo_log_.pop_back();
    if (!s.ok()) {
      return Status::Internal("undo action failed: " + s.ToString());
    }
  }
  return Status::Ok();
}

Transaction* TransactionManager::Begin() {
  txns_.push_back(std::make_unique<Transaction>(next_id_++));
  return txns_.back().get();
}

Status TransactionManager::Commit(Transaction* txn) {
  if (!txn->active()) {
    return Status::InvalidArgument("transaction is not active");
  }
  if (commit_hook_) {
    // Durability first: if the WAL commit record cannot be made durable
    // the transaction stays active and the caller aborts it.
    SIM_RETURN_IF_ERROR(commit_hook_(txn));
  }
  txn->undo_log_.clear();
  txn->state_ = Transaction::State::kCommitted;
  ++committed_;
  Forget(txn);
  return Status::Ok();
}

Status TransactionManager::Abort(Transaction* txn) {
  if (!txn->active()) {
    return Status::InvalidArgument("transaction is not active");
  }
  Status result = txn->RollbackTo(0);
  txn->state_ = Transaction::State::kAborted;
  ++aborted_;
  Forget(txn);
  return result;
}

void TransactionManager::Forget(Transaction* txn) {
  // Committed/aborted transactions are destroyed immediately; retaining
  // them forever leaked the whole undo history of the session.
  for (auto it = txns_.begin(); it != txns_.end(); ++it) {
    if (it->get() == txn) {
      txns_.erase(it);
      return;
    }
  }
}

}  // namespace sim
