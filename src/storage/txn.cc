#include "storage/txn.h"

namespace sim {

Status Transaction::RollbackTo(size_t depth) {
  while (undo_log_.size() > depth) {
    Status s = undo_log_.back()();
    undo_log_.pop_back();
    if (!s.ok()) {
      return Status::Internal("undo action failed: " + s.ToString());
    }
  }
  return Status::Ok();
}

Transaction* TransactionManager::Begin() {
  MutexLock l(tm_mu_);
  txns_.push_back(std::make_unique<Transaction>(next_id_++));
  return txns_.back().get();
}

Status TransactionManager::CommitBegin(Transaction* txn) {
  if (!txn->active()) {
    return Status::InvalidArgument("transaction is not active");
  }
  if (commit_hook_) {
    // Durability first: if the WAL commit record cannot be started the
    // transaction stays active and the caller aborts it. The hook runs
    // outside tm_mu_ — it does real I/O and may block.
    SIM_RETURN_IF_ERROR(commit_hook_(txn));
  }
  return Status::Ok();
}

void TransactionManager::CommitFinish(Transaction* txn) {
  txn->undo_log_.clear();
  txn->state_ = Transaction::State::kCommitted;
  MutexLock l(tm_mu_);
  ++committed_;
  Forget(txn);
}

Status TransactionManager::Commit(Transaction* txn) {
  SIM_RETURN_IF_ERROR(CommitBegin(txn));
  CommitFinish(txn);
  return Status::Ok();
}

Status TransactionManager::Abort(Transaction* txn) {
  if (!txn->active()) {
    return Status::InvalidArgument("transaction is not active");
  }
  Status result = txn->RollbackTo(0);
  txn->state_ = Transaction::State::kAborted;
  MutexLock l(tm_mu_);
  ++aborted_;
  Forget(txn);
  return result;
}

void TransactionManager::Forget(Transaction* txn) {
  // Committed/aborted transactions are destroyed immediately; retaining
  // them forever leaked the whole undo history of the session.
  for (auto it = txns_.begin(); it != txns_.end(); ++it) {
    if (it->get() == txn) {
      txns_.erase(it);
      return;
    }
  }
}

}  // namespace sim
