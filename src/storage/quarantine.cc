#include "storage/quarantine.h"

#include <algorithm>

namespace sim {

bool QuarantineRegistry::Add(PageId id) {
  MutexLock lock(mu_);
  auto it = std::lower_bound(pages_.begin(), pages_.end(), id);
  if (it != pages_.end() && *it == id) return false;
  pages_.insert(it, id);
  return true;
}

bool QuarantineRegistry::Remove(PageId id) {
  MutexLock lock(mu_);
  auto it = std::lower_bound(pages_.begin(), pages_.end(), id);
  if (it == pages_.end() || *it != id) return false;
  pages_.erase(it);
  return true;
}

bool QuarantineRegistry::Contains(PageId id) const {
  MutexLock lock(mu_);
  return std::binary_search(pages_.begin(), pages_.end(), id);
}

void QuarantineRegistry::Clear() {
  MutexLock lock(mu_);
  pages_.clear();
}

size_t QuarantineRegistry::size() const {
  MutexLock lock(mu_);
  return pages_.size();
}

std::vector<PageId> QuarantineRegistry::Pages() const {
  MutexLock lock(mu_);
  return pages_;
}

std::string QuarantineRegistry::Encode() const {
  MutexLock lock(mu_);
  std::string out;
  for (PageId id : pages_) {
    if (!out.empty()) out += ',';
    out += std::to_string(id);
  }
  return out;
}

Status QuarantineRegistry::Load(std::string_view encoded) {
  std::vector<PageId> parsed;
  size_t pos = 0;
  while (pos < encoded.size()) {
    size_t end = encoded.find(',', pos);
    if (end == std::string_view::npos) end = encoded.size();
    if (end == pos) {
      return Status::Corruption("quarantine registry: empty page id");
    }
    uint64_t v = 0;
    for (size_t i = pos; i < end; ++i) {
      char c = encoded[i];
      if (c < '0' || c > '9') {
        return Status::Corruption("quarantine registry: non-numeric page id");
      }
      v = v * 10 + static_cast<uint64_t>(c - '0');
      if (v > kInvalidPageId) {
        return Status::Corruption("quarantine registry: page id overflow");
      }
    }
    parsed.push_back(static_cast<PageId>(v));
    pos = end + 1;
  }
  std::sort(parsed.begin(), parsed.end());
  parsed.erase(std::unique(parsed.begin(), parsed.end()), parsed.end());
  MutexLock lock(mu_);
  pages_ = std::move(parsed);
  return Status::Ok();
}

}  // namespace sim
