#include "storage/io_retry.h"

#include <cerrno>
#include <cstring>
#include <thread>

namespace sim {

Status StatusFromIoErrno(const std::string& what, int err) {
  std::string msg = what + ": " + std::strerror(err);
  switch (err) {
    case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case ENOBUFS:
    case ENOMEM:
      return Status::Unavailable(msg);
    case ENOSPC:
    case EDQUOT:
    case EFBIG:
      return Status::DiskFull(msg);
    default:
      return Status::IoError(msg);
  }
}

Status FullPread(int fd, char* buf, size_t n, off_t off,
                 const std::string& what, const IoSyscalls& sys) {
  size_t done = 0;
  while (done < n) {
    ssize_t got = sys.pread(fd, buf + done, n - done,
                            off + static_cast<off_t>(done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return StatusFromIoErrno(what, errno);
    }
    if (got == 0) {
      return Status::IoError(what + ": unexpected end of file (" +
                             std::to_string(done) + " of " +
                             std::to_string(n) + " bytes)");
    }
    done += static_cast<size_t>(got);
  }
  return Status::Ok();
}

Status FullPwrite(int fd, const char* buf, size_t n, off_t off,
                  const std::string& what, const IoSyscalls& sys) {
  size_t done = 0;
  while (done < n) {
    ssize_t put = sys.pwrite(fd, buf + done, n - done,
                             off + static_cast<off_t>(done));
    if (put < 0) {
      if (errno == EINTR) continue;
      return StatusFromIoErrno(what, errno);
    }
    if (put == 0) {
      // A zero-byte pwrite with n > 0 makes no progress; treat as ENOSPC
      // would be a guess — surface it as a permanent short write.
      return Status::IoError(what + ": pwrite made no progress (" +
                             std::to_string(done) + " of " +
                             std::to_string(n) + " bytes)");
    }
    done += static_cast<size_t>(put);
  }
  return Status::Ok();
}

Status FullFsync(int fd, const std::string& what) {
  while (::fsync(fd) != 0) {
    if (errno == EINTR) continue;
    return StatusFromIoErrno(what, errno);
  }
  return Status::Ok();
}

Status FullFdatasync(int fd, const std::string& what) {
  while (::fdatasync(fd) != 0) {
    if (errno == EINTR) continue;
    return StatusFromIoErrno(what, errno);
  }
  return Status::Ok();
}

uint64_t RetryPolicy::BackoffUs(int retry_index, uint64_t salt) const {
  if (retry_index < 1) retry_index = 1;
  uint64_t base = base_backoff_us;
  uint64_t delay = base << (retry_index - 1);
  if (delay > max_backoff_us) delay = max_backoff_us;
  // Deterministic jitter in [0, delay/4): decorrelates retry storms while
  // keeping tests reproducible (no wall-clock or RNG involved).
  uint64_t quarter = delay / 4;
  if (quarter > 0) {
    uint64_t h = (salt * 0x9e3779b97f4a7c15ULL) >> 33;
    delay += h % quarter;
  }
  return delay;
}

Status RetryTransient(const RetryPolicy& policy, RetryStats* stats,
                      const std::function<Status()>& op) {
  int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  Status last;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (stats != nullptr) ++stats->attempts;
    last = op();
    if (!IsTransientIo(last)) return last;
    if (attempt == max_attempts) break;
    uint64_t salt = stats != nullptr ? stats->attempts.value()
                                     : static_cast<uint64_t>(attempt);
    uint64_t delay_us = policy.BackoffUs(attempt, salt);
    if (stats != nullptr) {
      ++stats->retries;
      stats->backoff_us_total += delay_us;
    }
    if (delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    }
  }
  if (stats != nullptr) ++stats->giveups;
  return last;
}

}  // namespace sim
