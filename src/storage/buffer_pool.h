#ifndef SIMDB_STORAGE_BUFFER_POOL_H_
#define SIMDB_STORAGE_BUFFER_POOL_H_

// LRU buffer pool. All page access in the system flows through Fetch/New,
// so the pool's counters are the system's definition of "block accesses":
//  * logical_fetches — every page touch (what a clustered mapping saves),
//  * misses          — touches that had to go to the pager (cold/evicted).
// The §5.2 experiments read these counters directly.

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace sim {

class BufferPool;
class WriteAheadLog;

// RAII pin on a buffered page. While a handle is alive the frame cannot be
// evicted. Handles are movable but not copyable.
class PageHandle {
 public:
  PageHandle() : pool_(nullptr), frame_(-1), id_(kInvalidPageId) {}
  PageHandle(BufferPool* pool, int frame, PageId id)
      : pool_(pool), frame_(frame), id_(id) {}
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  PageHandle(PageHandle&& other) noexcept
      : pool_(nullptr), frame_(-1), id_(kInvalidPageId) {
    *this = std::move(other);
  }
  PageHandle& operator=(PageHandle&& other) noexcept;
  ~PageHandle() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  char* data();
  const char* data() const;
  // Marks the page dirty so it is written back before eviction.
  void MarkDirty();
  // Explicitly releases the pin (also done by the destructor).
  void Release();

 private:
  BufferPool* pool_;
  int frame_;
  PageId id_;
};

class BufferPool {
 public:
  struct Stats {
    uint64_t logical_fetches = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t dirty_writebacks = 0;
  };

  // When `wal` is non-null the pool runs in WAL mode: dirty pages are
  // written back as page images APPENDED to the log (never in place — the
  // database file is only written by WAL checkpoint/recovery), and misses
  // on pages whose newest image lives in the log are served from it.
  BufferPool(Pager* pager, size_t capacity_frames,
             WriteAheadLog* wal = nullptr);

  // Pins page `id`, reading it from the pager on a miss.
  Result<PageHandle> Fetch(PageId id);

  // Allocates a fresh page in the pager and pins it (counts as a miss-free
  // fetch; the new page is born in the pool).
  Result<PageHandle> New();

  // Writes back all dirty frames.
  Status FlushAll();

  // Drops every unpinned frame (writing back dirty ones). Used by
  // experiments that want a cold cache.
  Status InvalidateAll();

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }
  Pager* pager() { return pager_; }
  WriteAheadLog* wal() { return wal_; }
  size_t capacity() const { return frames_.size(); }

 private:
  friend class PageHandle;

  struct Frame {
    std::unique_ptr<char[]> data;
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    uint64_t lru_tick = 0;
  };

  void Unpin(int frame);
  // Picks an unpinned frame to reuse, writing back if dirty.
  Result<int> GetVictimFrame();
  // Stamps the page checksum and writes the frame to the WAL (WAL mode)
  // or the pager.
  Status WriteBack(Frame& f);
  // Reads page `id` into `out` from the WAL image if one exists, else the
  // pager, and verifies its checksum.
  Status ReadPage(PageId id, char* out);

  Pager* pager_;
  WriteAheadLog* wal_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, int> page_to_frame_;
  uint64_t tick_ = 0;
  Stats stats_;
};

}  // namespace sim

#endif  // SIMDB_STORAGE_BUFFER_POOL_H_
