#ifndef SIMDB_STORAGE_BUFFER_POOL_H_
#define SIMDB_STORAGE_BUFFER_POOL_H_

// LRU buffer pool. All page access in the system flows through Fetch/New,
// so the pool's counters are the system's definition of "block accesses":
//  * logical_fetches — every Fetch of an existing page (what a clustered
//    mapping saves); hits = logical_fetches - misses,
//  * misses          — fetches that had to go to the pager (cold/evicted),
//  * allocations     — pages born in the pool via New (never a hit or a
//    miss, so they are counted separately and keep the hit rate honest).
// The §5.2 experiments read these counters directly; the obs layer
// exports them (the counters are obs::Counter cells, registered with the
// Database's MetricsRegistry as views).

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "storage/page.h"
#include "storage/pager.h"
#include "storage/quarantine.h"

namespace sim {

class BufferPool;
class WriteAheadLog;

// RAII pin on a buffered page. While a handle is alive the frame cannot be
// evicted. Handles are movable but not copyable.
class PageHandle {
 public:
  PageHandle() : pool_(nullptr), frame_(-1), id_(kInvalidPageId) {}
  PageHandle(BufferPool* pool, int frame, PageId id)
      : pool_(pool), frame_(frame), id_(id) {}
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  PageHandle(PageHandle&& other) noexcept
      : pool_(nullptr), frame_(-1), id_(kInvalidPageId) {
    *this = std::move(other);
  }
  PageHandle& operator=(PageHandle&& other) noexcept;
  ~PageHandle() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  char* data();
  const char* data() const;
  // Marks the page dirty so it is written back before eviction.
  void MarkDirty();
  // Explicitly releases the pin (also done by the destructor).
  void Release();

 private:
  BufferPool* pool_;
  int frame_;
  PageId id_;
};

class BufferPool {
 public:
  // Snapshot view of the pool's counters (the cells themselves are
  // relaxed-atomic obs::Counters; see counters()).
  struct Stats {
    uint64_t logical_fetches = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t dirty_writebacks = 0;
    uint64_t allocations = 0;
  };

  // The live counter cells, exposed so the Database can register them
  // with its metrics registry as zero-copy views.
  struct Counters {
    obs::Counter logical_fetches;
    obs::Counter misses;
    obs::Counter evictions;
    obs::Counter dirty_writebacks;
    obs::Counter allocations;
  };

  // When `wal` is non-null the pool runs in WAL mode: dirty pages are
  // written back as page images APPENDED to the log (never in place — the
  // database file is only written by WAL checkpoint/recovery), and misses
  // on pages whose newest image lives in the log are served from it.
  BufferPool(Pager* pager, size_t capacity_frames,
             WriteAheadLog* wal = nullptr);

  // Pins page `id`, reading it from the pager on a miss.
  //
  // Thread safety: the frame table, LRU state and pin counts are guarded
  // by pool_mu_, so Fetch/New/FlushAll/InvalidateAll and handle release
  // are safe from concurrent statements. The page BYTES behind a pinned
  // handle are not latched here — concurrent access to the same page is
  // excluded by the semantic lock manager (readers share, writers hold
  // the family exclusively), and a pinned frame is never evicted or
  // reused, so the data pointer stays valid without the latch.
  Result<PageHandle> Fetch(PageId id) SIM_EXCLUDES(pool_mu_);

  // Allocates a fresh page in the pager and pins it (counts as a miss-free
  // fetch; the new page is born in the pool).
  Result<PageHandle> New() SIM_EXCLUDES(pool_mu_);

  // Writes back all dirty frames.
  Status FlushAll() SIM_EXCLUDES(pool_mu_);

  // Drops every unpinned frame (writing back dirty ones). Used by
  // experiments that want a cold cache.
  Status InvalidateAll() SIM_EXCLUDES(pool_mu_);

  // Snapshot of the counter cells; historical accessor, kept working.
  Stats stats() const {
    Stats s;
    s.logical_fetches = counters_.logical_fetches.value();
    s.misses = counters_.misses.value();
    s.evictions = counters_.evictions.value();
    s.dirty_writebacks = counters_.dirty_writebacks.value();
    s.allocations = counters_.allocations.value();
    return s;
  }
  const Counters& counters() const { return counters_; }
  void ResetStats() {
    counters_.logical_fetches.Reset();
    counters_.misses.Reset();
    counters_.evictions.Reset();
    counters_.dirty_writebacks.Reset();
    counters_.allocations.Reset();
  }
  Pager* pager() { return pager_; }
  WriteAheadLog* wal() { return wal_; }
  size_t capacity() const { return frames_.size(); }

  // Attaches the bad-page quarantine registry (owned by the Database).
  // With a registry attached, a fetch of a quarantined page — and any
  // fetch whose durable read fails its checksum, which auto-quarantines
  // the page — returns kDataLoss instead of kIoError, so callers can
  // distinguish "these records are gone until repair" from device failure.
  void set_quarantine(QuarantineRegistry* q) { quarantine_ = q; }
  QuarantineRegistry* quarantine() { return quarantine_; }

 private:
  friend class PageHandle;

  struct Frame {
    std::unique_ptr<char[]> data;
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    uint64_t lru_tick = 0;
  };

  void Unpin(int frame) SIM_EXCLUDES(pool_mu_);
  // Picks an unpinned frame to reuse, writing back if dirty.
  Result<int> GetVictimFrame() SIM_REQUIRES(pool_mu_);
  // Stamps the page checksum and writes the frame to the WAL (WAL mode)
  // or the pager. The single writeback-counting site for all three
  // callers (eviction, FlushAll, InvalidateAll).
  Status WriteBack(Frame& f) SIM_REQUIRES(pool_mu_);
  // Reads page `id` into `out` from the WAL image if one exists, else the
  // pager, and verifies its checksum.
  Status ReadPage(PageId id, char* out) SIM_REQUIRES(pool_mu_);

  Pager* pager_;
  WriteAheadLog* wal_;
  QuarantineRegistry* quarantine_ = nullptr;
  // Guards the frame table and all frame METADATA (page_id, pin_count,
  // dirty, lru_tick). Held across miss I/O and writeback — misses
  // serialize, which keeps eviction/readback races impossible; the hit
  // path holds it only for a hash probe and a tick bump. Frame `data`
  // buffers are allocated once in the constructor and never reallocated,
  // so a pinned handle reads its pointer without the latch.
  mutable Mutex pool_mu_;
  std::vector<Frame> frames_ SIM_GUARDED_BY(pool_mu_);
  std::unordered_map<PageId, int> page_to_frame_ SIM_GUARDED_BY(pool_mu_);
  uint64_t tick_ SIM_GUARDED_BY(pool_mu_) = 0;
  Counters counters_;
};

}  // namespace sim

#endif  // SIMDB_STORAGE_BUFFER_POOL_H_
