#ifndef SIMDB_STORAGE_RECORD_CODEC_H_
#define SIMDB_STORAGE_RECORD_CODEC_H_

// Serialization of records (tagged tuples of Values) to page bytes, and of
// Values to order-preserving index keys.
//
// Record wire format:
//   u16 record_type | u16 field_count | fields...
//   field: u8 value-type tag, then
//     null       -> (nothing)
//     bool       -> u8
//     int/date/
//     surrogate  -> i64 little-endian
//     real       -> 8-byte IEEE double
//     string     -> u32 length + bytes
//
// The record_type identifies the format of a variable-format record within
// a storage unit (paper §5.2: hierarchies map to one unit with one record
// type per class).
//
// Three access layers:
//  * RecordReader / RecordWriter — bounds-checked primitive cursors over a
//    flat byte buffer (every read checks remaining bytes; a hostile length
//    can never over-read or drive an over-allocation).
//  * RecordView — zero-copy field access over one encoded record. Open()
//    validates the whole record once (O(fields), no allocation); after
//    that, individual fields decode lazily, so a scan that projects two of
//    ten fields never materializes the other eight. A view BORROWS the
//    underlying buffer: it is valid only while those bytes are (for a heap
//    record, until the owning buffer is overwritten by the next read — see
//    DESIGN.md §11 for who may hold a view across Next()).
//  * EncodeRecord / DecodeRecord — eager whole-record conversion, built on
//    the above. EncodeRecordTo appends into a caller-reused buffer so the
//    steady-state write path allocates nothing.
//
// Index key format (memcmp-ordered):
//   u8 type class | payload
//     ints/dates/surrogates -> 8-byte big-endian with the sign bit flipped
//     reals                 -> IEEE bits transformed to sort order
//     strings               -> raw bytes (case preserved)
// Nulls are not indexed (§3.2.1: nulls are omitted from uniqueness).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace sim {

// Bounds-checked primitive reads over a byte buffer. Each TryRead*
// advances past what it consumed and returns false (without advancing)
// when fewer bytes remain than requested.
class RecordReader {
 public:
  explicit RecordReader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size(); }

  bool TryReadU8(uint8_t* v);
  bool TryReadU16(uint16_t* v);
  bool TryReadU32(uint32_t* v);
  bool TryReadI64(int64_t* v);
  bool TryReadDouble(double* v);
  // Views `n` bytes of the buffer (no copy).
  bool TryReadBytes(size_t n, std::string_view* out);
  bool TrySkip(size_t n);

 private:
  std::string_view data_;
};

// Appends records to a caller-owned buffer. The field count is patched
// into the header by Finish(), so callers can emit fields as they go.
class RecordWriter {
 public:
  RecordWriter(std::string* out, uint16_t record_type);

  void Add(const Value& v);
  void AddNull();
  void AddBool(bool b);
  void AddInt(int64_t v);
  void AddDate(int64_t days);
  void AddSurrogate(SurrogateId s);
  void AddReal(double d);
  void AddString(std::string_view s);

  uint16_t field_count() const { return count_; }
  // Patches the field count into the header. Must be called exactly once;
  // no Add* afterwards.
  void Finish();

 private:
  std::string* out_;
  size_t count_pos_;
  uint16_t count_ = 0;
};

// Zero-copy view over one encoded record.
class RecordView {
 public:
  RecordView() = default;

  // Validates the whole record: header, every field tag, every length
  // against the remaining bytes. O(field count), allocation-free. Returns
  // Corruption on truncated or hostile input. After Open succeeds, the
  // per-field accessors below cannot fail on bounds.
  static Result<RecordView> Open(std::string_view data);

  uint16_t record_type() const { return record_type_; }
  uint16_t field_count() const { return count_; }

  // Decodes field `i` (O(i) skip over the preceding fields, but only the
  // requested field becomes a Value). `i` must be < field_count().
  Value DecodeField(uint16_t i) const;
  // Zero-copy payload of a string field (the field must be kString; check
  // with DecodeField or the caller's schema knowledge). Returns an empty
  // view for non-string fields.
  std::string_view StringField(uint16_t i) const;

  // Decodes fields [first, field_count()) into *out (cleared first).
  void DecodeFieldsFrom(uint16_t first, std::vector<Value>* out) const;

 private:
  // Positions a reader at field `i`; returns the reader.
  RecordReader SeekTo(uint16_t i) const;

  std::string_view body_;  // the fields area (header stripped)
  uint16_t record_type_ = 0;
  uint16_t count_ = 0;
};

// Encodes `values` with the given record type tag.
std::string EncodeRecord(uint16_t record_type,
                         const std::vector<Value>& values);

// Same, appending to *out (cleared first) so callers can reuse a buffer's
// capacity across rows.
void EncodeRecordTo(uint16_t record_type, const std::vector<Value>& values,
                    std::string* out);

// Decodes a record; on success fills record_type and values. Truncated or
// hostile input (a string length exceeding the remaining bytes, an unknown
// tag) returns Corruption and never over-reads or over-allocates.
Status DecodeRecord(std::string_view data, uint16_t* record_type,
                    std::vector<Value>* values);

// Reads only the record-type tag (cheap dispatch during scans).
Result<uint16_t> PeekRecordType(std::string_view data);

// Order-preserving key encoding for a single value. Appends to *out.
// Returns TypeError for nulls (callers must not index nulls).
Status AppendIndexKey(const Value& v, std::string* out);

// Equality-preserving row-key encoding used by DISTINCT: two Values
// produce the same bytes iff Value::StrictEquals holds (so keys from whole
// rows can be compared with one memcmp instead of per-Value virtual
// dispatch). Differences from AppendIndexKey: nulls are allowed (their own
// marker), numerics are canonicalized through the widened double exactly
// like Value::Hash (Int(3) and Real(3.0) encode identically; -0.0
// normalizes to 0.0), dates and surrogates get distinct type classes, and
// strings are length-prefixed so adjacent values cannot alias. One
// deliberate refinement over StrictEquals: ints outside double's exact
// range keep an exact integer encoding, so distinct huge ints never
// collapse — there (and only there) keys are strictly finer than
// StrictEquals, which is not transitive in that corner anyway.
void AppendRowKey(const Value& v, std::string* out);

// Convenience: key for one value.
Result<std::string> EncodeIndexKey(const Value& v);

// Key for a (relationship-id, surrogate) pair — the Common EVA Structure
// lookup key of §5.2.
std::string EncodeRelKey(uint32_t rel_id, SurrogateId surrogate);

}  // namespace sim

#endif  // SIMDB_STORAGE_RECORD_CODEC_H_
