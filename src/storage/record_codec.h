#ifndef SIMDB_STORAGE_RECORD_CODEC_H_
#define SIMDB_STORAGE_RECORD_CODEC_H_

// Serialization of records (tagged tuples of Values) to page bytes, and of
// Values to order-preserving index keys.
//
// Record wire format:
//   u16 record_type | u16 field_count | fields...
//   field: u8 value-type tag, then
//     null       -> (nothing)
//     bool       -> u8
//     int/date/
//     surrogate  -> i64 little-endian
//     real       -> 8-byte IEEE double
//     string     -> u32 length + bytes
//
// The record_type identifies the format of a variable-format record within
// a storage unit (paper §5.2: hierarchies map to one unit with one record
// type per class).
//
// Index key format (memcmp-ordered):
//   u8 type class | payload
//     ints/dates/surrogates -> 8-byte big-endian with the sign bit flipped
//     reals                 -> IEEE bits transformed to sort order
//     strings               -> raw bytes (case preserved)
// Nulls are not indexed (§3.2.1: nulls are omitted from uniqueness).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace sim {

// Encodes `values` with the given record type tag.
std::string EncodeRecord(uint16_t record_type,
                         const std::vector<Value>& values);

// Decodes a record; on success fills record_type and values.
Status DecodeRecord(std::string_view data, uint16_t* record_type,
                    std::vector<Value>* values);

// Reads only the record-type tag (cheap dispatch during scans).
Result<uint16_t> PeekRecordType(std::string_view data);

// Order-preserving key encoding for a single value. Appends to *out.
// Returns TypeError for nulls (callers must not index nulls).
Status AppendIndexKey(const Value& v, std::string* out);

// Convenience: key for one value.
Result<std::string> EncodeIndexKey(const Value& v);

// Key for a (relationship-id, surrogate) pair — the Common EVA Structure
// lookup key of §5.2.
std::string EncodeRelKey(uint32_t rel_id, SurrogateId surrogate);

}  // namespace sim

#endif  // SIMDB_STORAGE_RECORD_CODEC_H_
