#include "storage/pager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sim {

Status MemPager::Read(PageId id, char* out) {
  if (id >= pages_.size()) return Status::IoError("read past end of pager");
  ++stats_.physical_reads;
  std::memcpy(out, pages_[id].get(), kPageSize);
  return Status::Ok();
}

Status MemPager::Write(PageId id, const char* data) {
  if (id >= pages_.size()) return Status::IoError("write past end of pager");
  ++stats_.physical_writes;
  std::memcpy(pages_[id].get(), data, kPageSize);
  return Status::Ok();
}

Result<PageId> MemPager::Allocate() {
  auto page = std::make_unique<char[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  pages_.push_back(std::move(page));
  return static_cast<PageId>(pages_.size() - 1);
}

Result<std::unique_ptr<FilePager>> FilePager::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open " + path + ": " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IoError("cannot seek " + path);
  }
  return std::unique_ptr<FilePager>(
      new FilePager(fd, static_cast<uint32_t>(size / kPageSize)));
}

FilePager::~FilePager() {
  if (fd_ >= 0) ::close(fd_);
}

Status FilePager::Read(PageId id, char* out) {
  if (id >= page_count_) return Status::IoError("read past end of pager");
  ++stats_.physical_reads;
  return FullPread(fd_, out, kPageSize, static_cast<off_t>(id) * kPageSize,
                   "read of page " + std::to_string(id));
}

Status FilePager::Write(PageId id, const char* data) {
  if (id >= page_count_) return Status::IoError("write past end of pager");
  ++stats_.physical_writes;
  return FullPwrite(fd_, data, kPageSize, static_cast<off_t>(id) * kPageSize,
                    "write of page " + std::to_string(id));
}

Result<PageId> FilePager::Allocate() {
  char zero[kPageSize];
  std::memset(zero, 0, kPageSize);
  PageId id = page_count_;
  SIM_RETURN_IF_ERROR(FullPwrite(fd_, zero, kPageSize,
                                 static_cast<off_t>(id) * kPageSize,
                                 "extension of database file"));
  ++page_count_;
  return id;
}

Status FilePager::Sync() {
  while (::fsync(fd_) != 0) {
    if (errno == EINTR) continue;
    return StatusFromIoErrno("fsync of database file", errno);
  }
  return Status::Ok();
}

// ----- ResilientPager -----

Status ResilientPager::Read(PageId id, char* out) {
  return RetryTransient(policy_, &retry_stats_,
                        [&] { return base_->Read(id, out); });
}

Status ResilientPager::Write(PageId id, const char* data) {
  return RetryTransient(policy_, &retry_stats_,
                        [&] { return base_->Write(id, data); });
}

Result<PageId> ResilientPager::Allocate() {
  // Allocate is idempotent only if a failed attempt did not extend the
  // address space; both implementations bump page_count after the write
  // succeeds, so re-running is safe.
  Result<PageId> out = Status::Internal("allocate not attempted");
  SIM_RETURN_IF_ERROR(RetryTransient(policy_, &retry_stats_, [&] {
    out = base_->Allocate();
    return out.status();
  }));
  return out;
}

Status ResilientPager::Sync() {
  return RetryTransient(policy_, &retry_stats_, [&] { return base_->Sync(); });
}

}  // namespace sim
