#include "storage/record_codec.h"

#include <cstring>

namespace sim {

namespace {

void PutU16(std::string* out, uint16_t v) {
  out->append(reinterpret_cast<const char*>(&v), 2);
}

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}

void PutI64(std::string* out, int64_t v) {
  out->append(reinterpret_cast<const char*>(&v), 8);
}

void PutDouble(std::string* out, double v) {
  out->append(reinterpret_cast<const char*>(&v), 8);
}

void PutBigEndian64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 7; i >= 0; --i) {
    buf[i] = static_cast<char>(v & 0xFF);
    v >>= 8;
  }
  out->append(buf, 8);
}

// Payload size of a field body given its tag; string payloads are length
// prefixed, so only the fixed part is returned and kString is handled
// separately. Returns -1 for unknown tags.
int FixedPayloadSize(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt:
    case ValueType::kDate:
    case ValueType::kSurrogate:
    case ValueType::kReal:
      return 8;
    case ValueType::kString:
      return 4;  // the length prefix
  }
  return -1;
}

// Advances `r` past one field body (tag already consumed). Returns false
// on truncation / unknown tag.
bool SkipFieldBody(RecordReader* r, ValueType t) {
  int fixed = FixedPayloadSize(t);
  if (fixed < 0) return false;
  if (t == ValueType::kString) {
    uint32_t len;
    if (!r->TryReadU32(&len)) return false;
    return r->TrySkip(len);
  }
  return r->TrySkip(static_cast<size_t>(fixed));
}

// Decodes one field body (tag already consumed). Bounds must have been
// validated (RecordView::Open); decode failures are impossible then.
Value DecodeFieldBody(RecordReader* r, ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      uint8_t b = 0;
      r->TryReadU8(&b);
      return Value::Bool(b != 0);
    }
    case ValueType::kInt: {
      int64_t v = 0;
      r->TryReadI64(&v);
      return Value::Int(v);
    }
    case ValueType::kDate: {
      int64_t v = 0;
      r->TryReadI64(&v);
      return Value::Date(v);
    }
    case ValueType::kSurrogate: {
      int64_t v = 0;
      r->TryReadI64(&v);
      return Value::Surrogate(static_cast<SurrogateId>(v));
    }
    case ValueType::kReal: {
      double v = 0;
      r->TryReadDouble(&v);
      return Value::Real(v);
    }
    case ValueType::kString: {
      uint32_t len = 0;
      r->TryReadU32(&len);
      std::string_view bytes;
      r->TryReadBytes(len, &bytes);
      return Value::Str(std::string(bytes));
    }
  }
  return Value::Null();
}

}  // namespace

// ----- RecordReader -----

bool RecordReader::TryReadU8(uint8_t* v) {
  if (data_.empty()) return false;
  *v = static_cast<uint8_t>(data_[0]);
  data_.remove_prefix(1);
  return true;
}

bool RecordReader::TryReadU16(uint16_t* v) {
  if (data_.size() < 2) return false;
  std::memcpy(v, data_.data(), 2);
  data_.remove_prefix(2);
  return true;
}

bool RecordReader::TryReadU32(uint32_t* v) {
  if (data_.size() < 4) return false;
  std::memcpy(v, data_.data(), 4);
  data_.remove_prefix(4);
  return true;
}

bool RecordReader::TryReadI64(int64_t* v) {
  if (data_.size() < 8) return false;
  std::memcpy(v, data_.data(), 8);
  data_.remove_prefix(8);
  return true;
}

bool RecordReader::TryReadDouble(double* v) {
  if (data_.size() < 8) return false;
  std::memcpy(v, data_.data(), 8);
  data_.remove_prefix(8);
  return true;
}

bool RecordReader::TryReadBytes(size_t n, std::string_view* out) {
  if (data_.size() < n) return false;
  *out = data_.substr(0, n);
  data_.remove_prefix(n);
  return true;
}

bool RecordReader::TrySkip(size_t n) {
  if (data_.size() < n) return false;
  data_.remove_prefix(n);
  return true;
}

// ----- RecordWriter -----

RecordWriter::RecordWriter(std::string* out, uint16_t record_type)
    : out_(out) {
  PutU16(out_, record_type);
  count_pos_ = out_->size();
  PutU16(out_, 0);  // patched by Finish()
}

void RecordWriter::AddNull() {
  out_->push_back(static_cast<char>(ValueType::kNull));
  ++count_;
}

void RecordWriter::AddBool(bool b) {
  out_->push_back(static_cast<char>(ValueType::kBool));
  out_->push_back(b ? 1 : 0);
  ++count_;
}

void RecordWriter::AddInt(int64_t v) {
  out_->push_back(static_cast<char>(ValueType::kInt));
  PutI64(out_, v);
  ++count_;
}

void RecordWriter::AddDate(int64_t days) {
  out_->push_back(static_cast<char>(ValueType::kDate));
  PutI64(out_, days);
  ++count_;
}

void RecordWriter::AddSurrogate(SurrogateId s) {
  out_->push_back(static_cast<char>(ValueType::kSurrogate));
  PutI64(out_, static_cast<int64_t>(s));
  ++count_;
}

void RecordWriter::AddReal(double d) {
  out_->push_back(static_cast<char>(ValueType::kReal));
  PutDouble(out_, d);
  ++count_;
}

void RecordWriter::AddString(std::string_view s) {
  out_->push_back(static_cast<char>(ValueType::kString));
  PutU32(out_, static_cast<uint32_t>(s.size()));
  out_->append(s);
  ++count_;
}

void RecordWriter::Add(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      AddNull();
      return;
    case ValueType::kBool:
      AddBool(v.bool_value());
      return;
    case ValueType::kInt:
      AddInt(v.int_value());
      return;
    case ValueType::kDate:
      AddDate(v.date_value());
      return;
    case ValueType::kSurrogate:
      AddSurrogate(v.surrogate_value());
      return;
    case ValueType::kReal:
      AddReal(v.real_value());
      return;
    case ValueType::kString:
      AddString(v.string_view_value());
      return;
  }
}

void RecordWriter::Finish() {
  std::memcpy(&(*out_)[count_pos_], &count_, 2);
}

// ----- RecordView -----

Result<RecordView> RecordView::Open(std::string_view data) {
  RecordReader r(data);
  RecordView view;
  if (!r.TryReadU16(&view.record_type_) || !r.TryReadU16(&view.count_)) {
    return Status::Corruption("truncated record header");
  }
  view.body_ = data.substr(4);
  // One validation walk: every tag known, every length within bounds. The
  // lazy accessors below rely on this and skip re-checking.
  RecordReader check(view.body_);
  for (uint16_t i = 0; i < view.count_; ++i) {
    uint8_t tag;
    if (!check.TryReadU8(&tag)) {
      return Status::Corruption("truncated record field");
    }
    if (FixedPayloadSize(static_cast<ValueType>(tag)) < 0) {
      return Status::Corruption("unknown value tag in record");
    }
    if (!SkipFieldBody(&check, static_cast<ValueType>(tag))) {
      return Status::Corruption("record field exceeds record bounds");
    }
  }
  return view;
}

RecordReader RecordView::SeekTo(uint16_t i) const {
  RecordReader r(body_);
  for (uint16_t k = 0; k < i; ++k) {
    uint8_t tag = 0;
    r.TryReadU8(&tag);
    SkipFieldBody(&r, static_cast<ValueType>(tag));
  }
  return r;
}

Value RecordView::DecodeField(uint16_t i) const {
  RecordReader r = SeekTo(i);
  uint8_t tag = 0;
  r.TryReadU8(&tag);
  return DecodeFieldBody(&r, static_cast<ValueType>(tag));
}

std::string_view RecordView::StringField(uint16_t i) const {
  RecordReader r = SeekTo(i);
  uint8_t tag = 0;
  r.TryReadU8(&tag);
  if (static_cast<ValueType>(tag) != ValueType::kString) {
    return std::string_view();
  }
  uint32_t len = 0;
  r.TryReadU32(&len);
  std::string_view bytes;
  r.TryReadBytes(len, &bytes);
  return bytes;
}

void RecordView::DecodeFieldsFrom(uint16_t first,
                                  std::vector<Value>* out) const {
  out->clear();
  if (first >= count_) return;
  out->reserve(count_ - first);
  RecordReader r = SeekTo(first);
  for (uint16_t i = first; i < count_; ++i) {
    uint8_t tag = 0;
    r.TryReadU8(&tag);
    out->push_back(DecodeFieldBody(&r, static_cast<ValueType>(tag)));
  }
}

// ----- whole-record conversion -----

void EncodeRecordTo(uint16_t record_type, const std::vector<Value>& values,
                    std::string* out) {
  out->clear();
  RecordWriter w(out, record_type);
  for (const Value& v : values) w.Add(v);
  w.Finish();
}

std::string EncodeRecord(uint16_t record_type,
                         const std::vector<Value>& values) {
  std::string out;
  out.reserve(16 + values.size() * 9);
  EncodeRecordTo(record_type, values, &out);
  return out;
}

Status DecodeRecord(std::string_view data, uint16_t* record_type,
                    std::vector<Value>* values) {
  SIM_ASSIGN_OR_RETURN(RecordView view, RecordView::Open(data));
  *record_type = view.record_type();
  view.DecodeFieldsFrom(0, values);
  return Status::Ok();
}

Result<uint16_t> PeekRecordType(std::string_view data) {
  uint16_t record_type;
  RecordReader r(data);
  if (!r.TryReadU16(&record_type)) {
    return Status::Corruption("truncated record header");
  }
  return record_type;
}

// ----- key encodings -----

Status AppendIndexKey(const Value& v, std::string* out) {
  switch (v.type()) {
    case ValueType::kNull:
      return Status::TypeError("null values cannot be indexed");
    case ValueType::kBool:
      out->push_back(1);
      out->push_back(v.bool_value() ? 1 : 0);
      return Status::Ok();
    case ValueType::kInt:
    case ValueType::kDate: {
      out->push_back(2);
      uint64_t bits = static_cast<uint64_t>(
          v.type() == ValueType::kInt ? v.int_value() : v.date_value());
      bits ^= (uint64_t{1} << 63);  // flip sign bit for unsigned ordering
      PutBigEndian64(out, bits);
      return Status::Ok();
    }
    case ValueType::kReal: {
      out->push_back(2);
      double d = v.real_value();
      uint64_t bits;
      std::memcpy(&bits, &d, 8);
      // IEEE-754 total-order transform.
      if (bits >> 63) {
        bits = ~bits;
      } else {
        bits |= (uint64_t{1} << 63);
      }
      PutBigEndian64(out, bits);
      return Status::Ok();
    }
    case ValueType::kSurrogate: {
      out->push_back(3);
      PutBigEndian64(out, v.surrogate_value());
      return Status::Ok();
    }
    case ValueType::kString: {
      out->push_back(4);
      out->append(v.string_view_value());
      return Status::Ok();
    }
  }
  return Status::Internal("unhandled type in AppendIndexKey");
}

namespace {

// Shared numeric canonicalization for AppendRowKey: the sort-order double
// transform with -0.0 folded into 0.0, mirroring Value::Hash's
// widened-double equality.
void AppendCanonicalDouble(double d, std::string* out) {
  if (d == 0) d = 0;  // -0.0 == 0.0 under StrictEquals
  uint64_t bits;
  std::memcpy(&bits, &d, 8);
  if (bits >> 63) {
    bits = ~bits;
  } else {
    bits |= (uint64_t{1} << 63);
  }
  out->push_back(2);
  PutBigEndian64(out, bits);
}

}  // namespace

void AppendRowKey(const Value& v, std::string* out) {
  switch (v.type()) {
    case ValueType::kNull:
      out->push_back(0);
      return;
    case ValueType::kBool:
      out->push_back(1);
      out->push_back(v.bool_value() ? 1 : 0);
      return;
    case ValueType::kInt: {
      // Canonicalize through double when exact so Int(3) == Real(3.0),
      // matching StrictEquals/Hash. Ints beyond double's exact range keep
      // an exact integer encoding (class 5) so distinct huge ints never
      // collapse.
      int64_t i = v.int_value();
      double d = static_cast<double>(i);
      // Range check first: casting a double >= 2^63 back to int64 is UB
      // (INT64_MAX rounds up to exactly 2^63).
      if (d < 9223372036854775808.0 && static_cast<int64_t>(d) == i) {
        AppendCanonicalDouble(d, out);
        return;
      }
      out->push_back(5);
      PutBigEndian64(out, static_cast<uint64_t>(i) ^ (uint64_t{1} << 63));
      return;
    }
    case ValueType::kReal:
      AppendCanonicalDouble(v.real_value(), out);
      return;
    case ValueType::kDate:
      out->push_back(6);
      PutBigEndian64(out, static_cast<uint64_t>(v.date_value()));
      return;
    case ValueType::kSurrogate:
      out->push_back(3);
      PutBigEndian64(out, v.surrogate_value());
      return;
    case ValueType::kString: {
      std::string_view s = v.string_view_value();
      out->push_back(4);
      PutU32(out, static_cast<uint32_t>(s.size()));
      out->append(s);
      return;
    }
  }
}

Result<std::string> EncodeIndexKey(const Value& v) {
  std::string out;
  SIM_RETURN_IF_ERROR(AppendIndexKey(v, &out));
  return out;
}

std::string EncodeRelKey(uint32_t rel_id, SurrogateId surrogate) {
  std::string out;
  char buf[4];
  for (int i = 3; i >= 0; --i) {
    buf[i] = static_cast<char>(rel_id & 0xFF);
    rel_id >>= 8;
  }
  out.append(buf, 4);
  PutBigEndian64(&out, surrogate);
  return out;
}

}  // namespace sim
