#include "storage/record_codec.h"

#include <cstring>

namespace sim {

namespace {

void PutU16(std::string* out, uint16_t v) {
  out->append(reinterpret_cast<const char*>(&v), 2);
}

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}

void PutI64(std::string* out, int64_t v) {
  out->append(reinterpret_cast<const char*>(&v), 8);
}

void PutDouble(std::string* out, double v) {
  out->append(reinterpret_cast<const char*>(&v), 8);
}

bool GetU16(std::string_view* in, uint16_t* v) {
  if (in->size() < 2) return false;
  std::memcpy(v, in->data(), 2);
  in->remove_prefix(2);
  return true;
}

bool GetU32(std::string_view* in, uint32_t* v) {
  if (in->size() < 4) return false;
  std::memcpy(v, in->data(), 4);
  in->remove_prefix(4);
  return true;
}

bool GetI64(std::string_view* in, int64_t* v) {
  if (in->size() < 8) return false;
  std::memcpy(v, in->data(), 8);
  in->remove_prefix(8);
  return true;
}

bool GetDouble(std::string_view* in, double* v) {
  if (in->size() < 8) return false;
  std::memcpy(v, in->data(), 8);
  in->remove_prefix(8);
  return true;
}

void PutBigEndian64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 7; i >= 0; --i) {
    buf[i] = static_cast<char>(v & 0xFF);
    v >>= 8;
  }
  out->append(buf, 8);
}

}  // namespace

std::string EncodeRecord(uint16_t record_type,
                         const std::vector<Value>& values) {
  std::string out;
  out.reserve(16 + values.size() * 9);
  PutU16(&out, record_type);
  PutU16(&out, static_cast<uint16_t>(values.size()));
  for (const Value& v : values) {
    out.push_back(static_cast<char>(v.type()));
    switch (v.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kBool:
        out.push_back(v.bool_value() ? 1 : 0);
        break;
      case ValueType::kInt:
        PutI64(&out, v.int_value());
        break;
      case ValueType::kDate:
        PutI64(&out, v.date_value());
        break;
      case ValueType::kSurrogate:
        PutI64(&out, static_cast<int64_t>(v.surrogate_value()));
        break;
      case ValueType::kReal:
        PutDouble(&out, v.real_value());
        break;
      case ValueType::kString: {
        const std::string& s = v.string_value();
        PutU32(&out, static_cast<uint32_t>(s.size()));
        out.append(s);
        break;
      }
    }
  }
  return out;
}

Status DecodeRecord(std::string_view data, uint16_t* record_type,
                    std::vector<Value>* values) {
  uint16_t count;
  if (!GetU16(&data, record_type) || !GetU16(&data, &count)) {
    return Status::Internal("truncated record header");
  }
  values->clear();
  values->reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    if (data.empty()) return Status::Internal("truncated record field");
    auto type = static_cast<ValueType>(data[0]);
    data.remove_prefix(1);
    switch (type) {
      case ValueType::kNull:
        values->push_back(Value::Null());
        break;
      case ValueType::kBool: {
        if (data.empty()) return Status::Internal("truncated bool");
        values->push_back(Value::Bool(data[0] != 0));
        data.remove_prefix(1);
        break;
      }
      case ValueType::kInt: {
        int64_t v;
        if (!GetI64(&data, &v)) return Status::Internal("truncated int");
        values->push_back(Value::Int(v));
        break;
      }
      case ValueType::kDate: {
        int64_t v;
        if (!GetI64(&data, &v)) return Status::Internal("truncated date");
        values->push_back(Value::Date(v));
        break;
      }
      case ValueType::kSurrogate: {
        int64_t v;
        if (!GetI64(&data, &v)) return Status::Internal("truncated surrogate");
        values->push_back(Value::Surrogate(static_cast<SurrogateId>(v)));
        break;
      }
      case ValueType::kReal: {
        double v;
        if (!GetDouble(&data, &v)) return Status::Internal("truncated real");
        values->push_back(Value::Real(v));
        break;
      }
      case ValueType::kString: {
        uint32_t len;
        if (!GetU32(&data, &len) || data.size() < len) {
          return Status::Internal("truncated string");
        }
        values->push_back(Value::Str(std::string(data.substr(0, len))));
        data.remove_prefix(len);
        break;
      }
      default:
        return Status::Internal("unknown value tag in record");
    }
  }
  return Status::Ok();
}

Result<uint16_t> PeekRecordType(std::string_view data) {
  uint16_t record_type;
  if (!GetU16(&data, &record_type)) {
    return Status::Internal("truncated record header");
  }
  return record_type;
}

Status AppendIndexKey(const Value& v, std::string* out) {
  switch (v.type()) {
    case ValueType::kNull:
      return Status::TypeError("null values cannot be indexed");
    case ValueType::kBool:
      out->push_back(1);
      out->push_back(v.bool_value() ? 1 : 0);
      return Status::Ok();
    case ValueType::kInt:
    case ValueType::kDate: {
      out->push_back(2);
      uint64_t bits = static_cast<uint64_t>(
          v.type() == ValueType::kInt ? v.int_value() : v.date_value());
      bits ^= (uint64_t{1} << 63);  // flip sign bit for unsigned ordering
      PutBigEndian64(out, bits);
      return Status::Ok();
    }
    case ValueType::kReal: {
      out->push_back(2);
      double d = v.real_value();
      uint64_t bits;
      std::memcpy(&bits, &d, 8);
      // IEEE-754 total-order transform.
      if (bits >> 63) {
        bits = ~bits;
      } else {
        bits |= (uint64_t{1} << 63);
      }
      PutBigEndian64(out, bits);
      return Status::Ok();
    }
    case ValueType::kSurrogate: {
      out->push_back(3);
      PutBigEndian64(out, v.surrogate_value());
      return Status::Ok();
    }
    case ValueType::kString: {
      out->push_back(4);
      out->append(v.string_value());
      return Status::Ok();
    }
  }
  return Status::Internal("unhandled type in AppendIndexKey");
}

Result<std::string> EncodeIndexKey(const Value& v) {
  std::string out;
  SIM_RETURN_IF_ERROR(AppendIndexKey(v, &out));
  return out;
}

std::string EncodeRelKey(uint32_t rel_id, SurrogateId surrogate) {
  std::string out;
  char buf[4];
  for (int i = 3; i >= 0; --i) {
    buf[i] = static_cast<char>(rel_id & 0xFF);
    rel_id >>= 8;
  }
  out.append(buf, 4);
  PutBigEndian64(&out, surrogate);
  return out;
}

}  // namespace sim
