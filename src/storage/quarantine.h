#ifndef SIMDB_STORAGE_QUARANTINE_H_
#define SIMDB_STORAGE_QUARANTINE_H_

// Bad-page quarantine registry: the containment half of the
// detect → contain → repair cycle (DESIGN.md §13).
//
// When a page comes back from durable storage failing its CRC (torn write,
// bit rot, hostile edit), the read path and the scrubber register it here
// instead of letting the whole class extent die. Reads that would touch a
// quarantined page fail fast with kDataLoss — a typed, per-record loss —
// while scans skip the page and keep serving every record on healthy
// pages, and writes elsewhere proceed normally. REPAIR DATABASE salvages
// around the quarantined pages and clears them.
//
// The registry is persisted as a kWalFrameMetaQuarantine frame carrying
// Encode()'s payload (ASCII decimal page ids, comma-separated, sorted), so
// it survives crashes AND checkpoints (baseline rewrites re-emit the
// newest payload). A crash before the frame commits merely forgets the
// registry — the corruption is still on the media, so the next read or
// scrub pass re-detects and re-quarantines: containment is self-healing,
// never durably lost.
//
// Thread-safety: fully synchronized; the background scrubber, the
// execution thread and metrics scrapes may touch it concurrently.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/page.h"

namespace sim {

class QuarantineRegistry {
 public:
  // Adds a page; returns true if it was not already quarantined.
  bool Add(PageId id) SIM_EXCLUDES(mu_);
  // Removes a page (after repair re-formats it); true if it was present.
  bool Remove(PageId id) SIM_EXCLUDES(mu_);
  bool Contains(PageId id) const SIM_EXCLUDES(mu_);
  void Clear() SIM_EXCLUDES(mu_);
  size_t size() const SIM_EXCLUDES(mu_);
  bool empty() const SIM_EXCLUDES(mu_) { return size() == 0; }
  std::vector<PageId> Pages() const SIM_EXCLUDES(mu_);

  // Wire format for the WAL meta frame: sorted page ids in ASCII decimal,
  // comma-separated ("3,17,42"); empty registry encodes as "".
  std::string Encode() const SIM_EXCLUDES(mu_);
  // Replaces the registry from an encoded payload; kCorruption on a
  // malformed payload (the registry is left unchanged).
  Status Load(std::string_view encoded) SIM_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  // Sorted; small (a handful of bad pages), so a vector beats a set.
  std::vector<PageId> pages_ SIM_GUARDED_BY(mu_);
};

}  // namespace sim

#endif  // SIMDB_STORAGE_QUARANTINE_H_
