#include "storage/bptree.h"

#include <algorithm>
#include <cstring>

namespace sim {

namespace {

// Node layout (after the common page header at kPageDataStart):
//   leaf:     [u8 1][u16 n][u32 next][entries: u16 klen, key, u64 value]
//   internal: [u8 0][u16 n][u32 child0][entries: u16 klen, key, u32 child]
constexpr size_t kNodeStart = kPageDataStart;
constexpr size_t kLeafHeader = kNodeStart + 1 + 2 + 4;
constexpr size_t kInternalHeader = kNodeStart + 1 + 2 + 4;
// Leave headroom so a node can temporarily hold one oversized entry set
// before splitting.
constexpr size_t kNodeCapacity = kPageSize;
constexpr size_t kMaxKeyLen = 1024;

void PutU16At(char* p, uint16_t v) { std::memcpy(p, &v, 2); }
uint16_t GetU16At(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
void PutU32At(char* p, uint32_t v) { std::memcpy(p, &v, 4); }
uint32_t GetU32At(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
void PutU64At(char* p, uint64_t v) { std::memcpy(p, &v, 8); }
uint64_t GetU64At(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

Result<BPlusTree> BPlusTree::Create(BufferPool* pool, std::string name) {
  SIM_ASSIGN_OR_RETURN(PageHandle h, pool->New());
  LeafNode empty;
  BPlusTree tree(pool, std::move(name), h.id());
  EncodeLeaf(empty, h.data());
  h.MarkDirty();
  return tree;
}

Result<bool> BPlusTree::IsLeafPage(const char* data) {
  uint8_t kind = static_cast<uint8_t>(data[kNodeStart]);
  if (kind > 1) return Status::Internal("corrupt b+tree node tag");
  return kind == 1;
}

void BPlusTree::EncodeLeaf(const LeafNode& node, char* data) {
  data[kNodeStart] = 1;
  PutU16At(data + kNodeStart + 1, static_cast<uint16_t>(node.keys.size()));
  PutU32At(data + kNodeStart + 3, node.next);
  char* p = data + kLeafHeader;
  for (size_t i = 0; i < node.keys.size(); ++i) {
    PutU16At(p, static_cast<uint16_t>(node.keys[i].size()));
    p += 2;
    std::memcpy(p, node.keys[i].data(), node.keys[i].size());
    p += node.keys[i].size();
    PutU64At(p, node.values[i]);
    p += 8;
  }
}

Status BPlusTree::DecodeLeaf(const char* data, LeafNode* node) {
  if (data[kNodeStart] != 1) return Status::Internal("not a leaf node");
  uint16_t n = GetU16At(data + kNodeStart + 1);
  node->next = GetU32At(data + kNodeStart + 3);
  node->keys.clear();
  node->values.clear();
  node->keys.reserve(n);
  node->values.reserve(n);
  const char* p = data + kLeafHeader;
  for (uint16_t i = 0; i < n; ++i) {
    uint16_t klen = GetU16At(p);
    p += 2;
    node->keys.emplace_back(p, klen);
    p += klen;
    node->values.push_back(GetU64At(p));
    p += 8;
  }
  return Status::Ok();
}

void BPlusTree::EncodeInternal(const InternalNode& node, char* data) {
  data[kNodeStart] = 0;
  PutU16At(data + kNodeStart + 1, static_cast<uint16_t>(node.keys.size()));
  PutU32At(data + kNodeStart + 3, node.children[0]);
  char* p = data + kInternalHeader;
  for (size_t i = 0; i < node.keys.size(); ++i) {
    PutU16At(p, static_cast<uint16_t>(node.keys[i].size()));
    p += 2;
    std::memcpy(p, node.keys[i].data(), node.keys[i].size());
    p += node.keys[i].size();
    PutU32At(p, node.children[i + 1]);
    p += 4;
  }
}

Status BPlusTree::DecodeInternal(const char* data, InternalNode* node) {
  if (data[kNodeStart] != 0) return Status::Internal("not an internal node");
  uint16_t n = GetU16At(data + kNodeStart + 1);
  node->keys.clear();
  node->children.clear();
  node->keys.reserve(n);
  node->children.reserve(n + 1);
  node->children.push_back(GetU32At(data + kNodeStart + 3));
  const char* p = data + kInternalHeader;
  for (uint16_t i = 0; i < n; ++i) {
    uint16_t klen = GetU16At(p);
    p += 2;
    node->keys.emplace_back(p, klen);
    p += klen;
    node->children.push_back(GetU32At(p));
    p += 4;
  }
  return Status::Ok();
}

size_t BPlusTree::LeafSize(const LeafNode& node) {
  size_t size = kLeafHeader;
  for (const auto& k : node.keys) size += 2 + k.size() + 8;
  return size;
}

size_t BPlusTree::InternalSize(const InternalNode& node) {
  size_t size = kInternalHeader;
  for (const auto& k : node.keys) size += 2 + k.size() + 4;
  return size;
}

Result<std::optional<BPlusTree::SplitResult>> BPlusTree::InsertRec(
    PageId page, std::string_view key, uint64_t value) {
  SIM_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(page));
  SIM_ASSIGN_OR_RETURN(bool is_leaf, IsLeafPage(h.data()));
  if (is_leaf) {
    LeafNode node;
    SIM_RETURN_IF_ERROR(DecodeLeaf(h.data(), &node));
    auto pos = std::upper_bound(node.keys.begin(), node.keys.end(), key);
    size_t idx = static_cast<size_t>(pos - node.keys.begin());
    node.keys.insert(pos, std::string(key));
    node.values.insert(node.values.begin() + idx, value);
    if (LeafSize(node) <= kNodeCapacity) {
      EncodeLeaf(node, h.data());
      h.MarkDirty();
      return std::optional<SplitResult>();
    }
    // Split: move the upper half to a new leaf.
    size_t mid = node.keys.size() / 2;
    LeafNode right;
    right.keys.assign(node.keys.begin() + mid, node.keys.end());
    right.values.assign(node.values.begin() + mid, node.values.end());
    right.next = node.next;
    node.keys.resize(mid);
    node.values.resize(mid);
    SIM_ASSIGN_OR_RETURN(PageHandle rh, pool_->New());
    node.next = rh.id();
    EncodeLeaf(node, h.data());
    h.MarkDirty();
    EncodeLeaf(right, rh.data());
    rh.MarkDirty();
    return std::optional<SplitResult>(SplitResult{right.keys.front(), rh.id()});
  }

  InternalNode node;
  SIM_RETURN_IF_ERROR(DecodeInternal(h.data(), &node));
  auto pos = std::upper_bound(node.keys.begin(), node.keys.end(), key);
  size_t child_idx = static_cast<size_t>(pos - node.keys.begin());
  PageId child = node.children[child_idx];
  // Release the parent pin while descending to keep pin pressure low.
  h.Release();
  SIM_ASSIGN_OR_RETURN(std::optional<SplitResult> split,
                       InsertRec(child, key, value));
  if (!split.has_value()) return std::optional<SplitResult>();

  SIM_ASSIGN_OR_RETURN(PageHandle h2, pool_->Fetch(page));
  SIM_RETURN_IF_ERROR(DecodeInternal(h2.data(), &node));
  auto pos2 = std::upper_bound(node.keys.begin(), node.keys.end(),
                               split->separator);
  size_t idx = static_cast<size_t>(pos2 - node.keys.begin());
  node.keys.insert(pos2, split->separator);
  node.children.insert(node.children.begin() + idx + 1, split->right);
  if (InternalSize(node) <= kNodeCapacity) {
    EncodeInternal(node, h2.data());
    h2.MarkDirty();
    return std::optional<SplitResult>();
  }
  // Split internal node: middle key moves up.
  size_t mid = node.keys.size() / 2;
  std::string up_key = node.keys[mid];
  InternalNode right;
  right.keys.assign(node.keys.begin() + mid + 1, node.keys.end());
  right.children.assign(node.children.begin() + mid + 1, node.children.end());
  node.keys.resize(mid);
  node.children.resize(mid + 1);
  SIM_ASSIGN_OR_RETURN(PageHandle rh, pool_->New());
  EncodeInternal(node, h2.data());
  h2.MarkDirty();
  EncodeInternal(right, rh.data());
  rh.MarkDirty();
  return std::optional<SplitResult>(SplitResult{std::move(up_key), rh.id()});
}

Status BPlusTree::Insert(std::string_view key, uint64_t value) {
  if (key.size() > kMaxKeyLen) {
    return Status::InvalidArgument("index key too long");
  }
  SIM_ASSIGN_OR_RETURN(std::optional<SplitResult> split,
                       InsertRec(root_, key, value));
  if (split.has_value()) {
    InternalNode new_root;
    new_root.keys.push_back(split->separator);
    new_root.children.push_back(root_);
    new_root.children.push_back(split->right);
    SIM_ASSIGN_OR_RETURN(PageHandle h, pool_->New());
    EncodeInternal(new_root, h.data());
    h.MarkDirty();
    root_ = h.id();
    ++height_;
  }
  ++entry_count_;
  return Status::Ok();
}

Status BPlusTree::InsertUnique(std::string_view key, uint64_t value) {
  SIM_ASSIGN_OR_RETURN(bool exists, Contains(key));
  if (exists) return Status::AlreadyExists("duplicate key in unique index");
  return Insert(key, value);
}

Result<PageId> BPlusTree::FindLeaf(std::string_view key) {
  PageId page = root_;
  for (;;) {
    SIM_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(page));
    SIM_ASSIGN_OR_RETURN(bool is_leaf, IsLeafPage(h.data()));
    if (is_leaf) return page;
    // Walk the encoded entries in place (entries are variable-length, so
    // this is a linear lower_bound) and descend to the leftmost child that
    // can contain `key`, so iteration over duplicates starts at the first
    // occurrence.
    const char* data = h.data();
    uint16_t n = GetU16At(data + kNodeStart + 1);
    PageId child = GetU32At(data + kNodeStart + 3);
    const char* p = data + kInternalHeader;
    for (uint16_t i = 0; i < n; ++i) {
      uint16_t klen = GetU16At(p);
      std::string_view entry_key(p + 2, klen);
      if (entry_key >= key) break;
      child = GetU32At(p + 2 + klen);
      p += 2 + klen + 4;
    }
    page = child;
  }
}

Result<PageId> BPlusTree::LeftmostLeaf() {
  PageId page = root_;
  for (;;) {
    SIM_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(page));
    SIM_ASSIGN_OR_RETURN(bool is_leaf, IsLeafPage(h.data()));
    if (is_leaf) return page;
    InternalNode node;
    SIM_RETURN_IF_ERROR(DecodeInternal(h.data(), &node));
    page = node.children[0];
  }
}

Status BPlusTree::Delete(std::string_view key, uint64_t value) {
  SIM_ASSIGN_OR_RETURN(PageId leaf, FindLeaf(key));
  while (leaf != kInvalidPageId) {
    SIM_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(leaf));
    LeafNode node;
    SIM_RETURN_IF_ERROR(DecodeLeaf(h.data(), &node));
    bool past_key = false;
    for (size_t i = 0; i < node.keys.size(); ++i) {
      if (node.keys[i] == key && node.values[i] == value) {
        node.keys.erase(node.keys.begin() + i);
        node.values.erase(node.values.begin() + i);
        EncodeLeaf(node, h.data());
        h.MarkDirty();
        if (entry_count_ > 0) --entry_count_;
        return Status::Ok();
      }
      if (node.keys[i] > std::string(key)) {
        past_key = true;
        break;
      }
    }
    if (past_key && !node.keys.empty()) break;
    leaf = node.next;
  }
  return Status::NotFound("(key, value) pair not in index");
}

Result<bool> BPlusTree::Contains(std::string_view key) {
  SIM_ASSIGN_OR_RETURN(Iterator it, Seek(key));
  return it.Valid() && it.key() == key;
}

Result<std::vector<uint64_t>> BPlusTree::GetAll(std::string_view key) {
  std::vector<uint64_t> out;
  SIM_RETURN_IF_ERROR(GetAllInto(key, &out));
  return out;
}

Status BPlusTree::GetAllInto(std::string_view key,
                             std::vector<uint64_t>* out) {
  out->clear();
  SIM_ASSIGN_OR_RETURN(PageId leaf, FindLeaf(key));
  while (leaf != kInvalidPageId) {
    SIM_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(leaf));
    const char* data = h.data();
    if (data[kNodeStart] != 1) return Status::Internal("not a leaf node");
    uint16_t n = GetU16At(data + kNodeStart + 1);
    PageId next = GetU32At(data + kNodeStart + 3);
    const char* p = data + kLeafHeader;
    for (uint16_t i = 0; i < n; ++i) {
      uint16_t klen = GetU16At(p);
      std::string_view entry_key(p + 2, klen);
      if (entry_key > key) return Status::Ok();
      if (entry_key == key) out->push_back(GetU64At(p + 2 + klen));
      p += 2 + klen + 8;
    }
    leaf = next;  // duplicates may continue in (or empty leaves precede) it
  }
  return Status::Ok();
}

Result<std::optional<uint64_t>> BPlusTree::GetFirst(std::string_view key) {
  SIM_ASSIGN_OR_RETURN(PageId leaf, FindLeaf(key));
  while (leaf != kInvalidPageId) {
    SIM_ASSIGN_OR_RETURN(PageHandle h, pool_->Fetch(leaf));
    const char* data = h.data();
    if (data[kNodeStart] != 1) return Status::Internal("not a leaf node");
    uint16_t n = GetU16At(data + kNodeStart + 1);
    PageId next = GetU32At(data + kNodeStart + 3);
    const char* p = data + kLeafHeader;
    for (uint16_t i = 0; i < n; ++i) {
      uint16_t klen = GetU16At(p);
      std::string_view entry_key(p + 2, klen);
      if (entry_key > key) return std::optional<uint64_t>();
      if (entry_key == key) {
        return std::optional<uint64_t>(GetU64At(p + 2 + klen));
      }
      p += 2 + klen + 8;
    }
    leaf = next;
  }
  return std::optional<uint64_t>();
}

Status BPlusTree::Iterator::LoadLeaf(PageId leaf, std::string_view seek_key) {
  while (leaf != kInvalidPageId) {
    SIM_ASSIGN_OR_RETURN(PageHandle h, tree_->pool_->Fetch(leaf));
    LeafNode node;
    SIM_RETURN_IF_ERROR(DecodeLeaf(h.data(), &node));
    auto pos =
        std::lower_bound(node.keys.begin(), node.keys.end(), seek_key);
    if (pos != node.keys.end()) {
      leaf_ = leaf;
      keys_ = std::move(node.keys);
      values_ = std::move(node.values);
      index_ = static_cast<size_t>(pos - keys_.begin());
      next_ = node.next;
      valid_ = true;
      return Status::Ok();
    }
    leaf = node.next;
    seek_key = std::string_view();  // everything in later leaves qualifies
  }
  valid_ = false;
  return Status::Ok();
}

Status BPlusTree::Iterator::Next() {
  if (!valid_) return Status::Ok();
  ++index_;
  if (index_ < keys_.size()) return Status::Ok();
  PageId next = next_;
  keys_.clear();
  values_.clear();
  index_ = 0;
  valid_ = false;
  return LoadLeaf(next, std::string_view());
}

Result<BPlusTree::Iterator> BPlusTree::Seek(std::string_view key) {
  Iterator it;
  it.tree_ = this;
  SIM_ASSIGN_OR_RETURN(PageId leaf, FindLeaf(key));
  SIM_RETURN_IF_ERROR(it.LoadLeaf(leaf, key));
  return it;
}

Result<BPlusTree::Iterator> BPlusTree::Begin() {
  Iterator it;
  it.tree_ = this;
  SIM_ASSIGN_OR_RETURN(PageId leaf, LeftmostLeaf());
  SIM_RETURN_IF_ERROR(it.LoadLeaf(leaf, std::string_view()));
  return it;
}

}  // namespace sim
