#ifndef SIMDB_COMMON_VALUE_H_
#define SIMDB_COMMON_VALUE_H_

// Runtime value representation. A Value holds one instance of a SIM
// displayable domain (integer, number, string, date, boolean), a surrogate
// (the system-defined entity identifier, paper §3.1), or null. Nulls
// represent both "unknown" and "inapplicable" (§3.2.1) and participate in
// 3-valued logic.

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/status.h"
#include "common/string_pool.h"
#include "common/tribool.h"

namespace sim {

// Surrogate values identify entities. They are unique within a base-class
// family, non-null, and immutable once assigned (§3.1).
using SurrogateId = uint64_t;
inline constexpr SurrogateId kInvalidSurrogate = 0;

enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,
  kReal = 3,
  kString = 4,
  kDate = 5,       // days since 1970-01-01, stored as int64
  kSurrogate = 6,  // entity identifier
};

const char* ValueTypeName(ValueType t);

class Value {
 public:
  Value() : type_(ValueType::kNull), rep_(int64_t{0}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(ValueType::kBool, int64_t{b}); }
  static Value Int(int64_t i) { return Value(ValueType::kInt, i); }
  static Value Real(double d) { return Value(ValueType::kReal, d); }
  static Value Str(std::string s) {
    return Value(ValueType::kString, std::move(s));
  }
  // Pooled string: type() is still kString, but the Value holds only a
  // {pool, handle} pair — copying it never copies bytes. The pool must
  // outlive every Value referencing it (DESIGN.md §11).
  static Value PooledStr(const StringPool* pool, StringHandle h) {
    return Value(ValueType::kString, Pooled{pool, h.id()});
  }
  static Value Date(int64_t days) { return Value(ValueType::kDate, days); }
  static Value Surrogate(SurrogateId s) {
    return Value(ValueType::kSurrogate, static_cast<int64_t>(s));
  }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }

  // Accessors; the caller must check type() first (checked in debug builds).
  bool bool_value() const { return std::get<int64_t>(rep_) != 0; }
  int64_t int_value() const { return std::get<int64_t>(rep_); }
  double real_value() const { return std::get<double>(rep_); }
  const std::string& string_value() const {
    if (const Pooled* p = std::get_if<Pooled>(&rep_)) {
      return p->pool->str(StringHandle(p->id));
    }
    return std::get<std::string>(rep_);
  }
  // Zero-copy access for either string representation.
  std::string_view string_view_value() const {
    if (const Pooled* p = std::get_if<Pooled>(&rep_)) {
      return p->pool->view(StringHandle(p->id));
    }
    return std::get<std::string>(rep_);
  }
  bool is_pooled_string() const {
    return std::holds_alternative<Pooled>(rep_);
  }
  int64_t date_value() const { return std::get<int64_t>(rep_); }
  SurrogateId surrogate_value() const {
    return static_cast<SurrogateId>(std::get<int64_t>(rep_));
  }

  bool is_numeric() const {
    return type_ == ValueType::kInt || type_ == ValueType::kReal;
  }
  // Numeric value widened to double (valid only when is_numeric()).
  double AsReal() const {
    return type_ == ValueType::kReal ? real_value()
                                     : static_cast<double>(int_value());
  }

  // Three-way comparison under SIM's strong typing: ints and reals are
  // mutually comparable (widening to real); every other comparison requires
  // identical types. Nulls are not comparable here (callers handle 3VL).
  // Returns <0, 0, >0.
  Result<int> Compare(const Value& other) const;

  // 3VL equality: unknown if either side is null.
  Result<TriBool> Equals(const Value& other) const;

  // Exact equality used for grouping, DISTINCT and container membership:
  // null equals null, and no type coercion errors (different types are
  // simply unequal, except int/real which compare numerically).
  bool StrictEquals(const Value& other) const;

  // Hash consistent with StrictEquals.
  size_t Hash() const;

  // Display form: strings unquoted, dates as YYYY-MM-DD, null as "?".
  std::string ToString() const;

 private:
  struct Pooled {
    const StringPool* pool;
    uint32_t id;
  };

  Value(ValueType t, int64_t i) : type_(t), rep_(i) {}
  Value(ValueType t, double d) : type_(t), rep_(d) {}
  Value(ValueType t, std::string s) : type_(t), rep_(std::move(s)) {}
  Value(ValueType t, Pooled p) : type_(t), rep_(p) {}

  ValueType type_;
  std::variant<int64_t, double, std::string, Pooled> rep_;
};

}  // namespace sim

#endif  // SIMDB_COMMON_VALUE_H_
