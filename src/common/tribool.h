#ifndef SIMDB_COMMON_TRIBOOL_H_
#define SIMDB_COMMON_TRIBOOL_H_

// Three-valued logic used for all predicate evaluation over possibly-null
// values (SIM paper §4.9: "Null values are treated uniformly in expression
// evaluation, and SIM follows the 3-valued logic").

namespace sim {

enum class TriBool {
  kFalse = 0,
  kUnknown = 1,
  kTrue = 2,
};

inline TriBool MakeTriBool(bool b) { return b ? TriBool::kTrue : TriBool::kFalse; }

// Kleene conjunction: false dominates, unknown otherwise unless both true.
TriBool TriAnd(TriBool a, TriBool b);
// Kleene disjunction: true dominates, unknown otherwise unless both false.
TriBool TriOr(TriBool a, TriBool b);
// Kleene negation: unknown stays unknown.
TriBool TriNot(TriBool a);

// Selection semantics: a WHERE clause keeps a row only when the predicate
// is definitely true.
inline bool IsTrue(TriBool t) { return t == TriBool::kTrue; }
inline bool IsFalse(TriBool t) { return t == TriBool::kFalse; }
inline bool IsUnknown(TriBool t) { return t == TriBool::kUnknown; }

const char* TriBoolName(TriBool t);

}  // namespace sim

#endif  // SIMDB_COMMON_TRIBOOL_H_
