#ifndef SIMDB_COMMON_STRING_POOL_H_
#define SIMDB_COMMON_STRING_POOL_H_

// Per-database interned string storage. Interning maps each distinct byte
// sequence to a stable 32-bit StringHandle; equality of handles from the
// same pool is equality of strings, and the pooled bytes are stored once
// for the lifetime of the pool. Values with the pooled-string
// representation (common/value.h) carry {pool, handle} and never copy
// bytes when the Value is copied.
//
// Storage uses a deque of std::string so the backing bytes never move:
// `str()` / `view()` references stay valid for the pool's lifetime.
// Interning is append-only; the pool is meant for low-cardinality,
// schema-derived strings (symbol-type values, encoded role sets), not for
// unbounded user data.

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace sim {

class StringHandle {
 public:
  StringHandle() = default;
  explicit StringHandle(uint32_t id) : id_(id) {}

  static constexpr uint32_t kInvalidId = 0xFFFFFFFFu;

  bool valid() const { return id_ != kInvalidId; }
  uint32_t id() const { return id_; }

  friend bool operator==(StringHandle a, StringHandle b) {
    return a.id_ == b.id_;
  }
  friend bool operator!=(StringHandle a, StringHandle b) {
    return a.id_ != b.id_;
  }

 private:
  uint32_t id_ = kInvalidId;
};

class StringPool {
 public:
  StringPool() = default;
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  // Returns the handle for `s`, interning it on first sight. Interning the
  // same bytes twice returns the same handle (O(1) expected). Safe from
  // concurrent statements: the index is latched, and because storage is
  // append-only with stable addresses, handle lookups (`view`/`str`) read
  // bytes that can never move or change once the handle exists.
  StringHandle Intern(std::string_view s) SIM_EXCLUDES(pool_mu_);

  // Lookup without interning; invalid handle when absent.
  StringHandle Find(std::string_view s) const SIM_EXCLUDES(pool_mu_);

  std::string_view view(StringHandle h) const SIM_EXCLUDES(pool_mu_) {
    MutexLock l(pool_mu_);
    return strings_[h.id()];
  }
  const std::string& str(StringHandle h) const SIM_EXCLUDES(pool_mu_) {
    MutexLock l(pool_mu_);
    return strings_[h.id()];
  }

  size_t size() const SIM_EXCLUDES(pool_mu_) {
    MutexLock l(pool_mu_);
    return strings_.size();
  }
  size_t bytes() const SIM_EXCLUDES(pool_mu_) {
    MutexLock l(pool_mu_);
    return bytes_;
  }

 private:
  struct SvHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>()(s);
    }
  };
  struct SvEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  // Latch over the index and append state. Handle-indexed reads still
  // take it briefly (a deque's map block array may reallocate during a
  // concurrent push_back even though element addresses are stable).
  mutable Mutex pool_mu_;
  std::deque<std::string> strings_ SIM_GUARDED_BY(pool_mu_);
  std::unordered_map<std::string_view, uint32_t, SvHash, SvEq> index_
      SIM_GUARDED_BY(pool_mu_);
  size_t bytes_ SIM_GUARDED_BY(pool_mu_) = 0;
};

}  // namespace sim

#endif  // SIMDB_COMMON_STRING_POOL_H_
