#include "common/query_context.h"

#include <string>

namespace sim {

QueryContext::QueryContext(const Limits& limits) : limits_(limits) {
  has_deadline_ = limits_.deadline_ms >= 0;
  if (has_deadline_) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(limits_.deadline_ms);
  }
  limited_ = has_deadline_ || limits_.max_combinations > 0 ||
             limits_.max_rows > 0 || limits_.max_bytes > 0 ||
             limits_.cancel_flag != nullptr;
}

bool QueryContext::cancel_requested() const {
  if (cancelled_.load(std::memory_order_relaxed)) return true;
  return limits_.cancel_flag != nullptr &&
         limits_.cancel_flag->load(std::memory_order_relaxed);
}

Status QueryContext::Trip(Status s) {
  terminal_ = std::move(s);
  return terminal_;
}

Status QueryContext::TripCancelled() {
  return Trip(Status::Cancelled("statement cancelled by caller"));
}

Status QueryContext::TripBudget(const char* what, uint64_t budget,
                                const char* suffix) {
  if (!terminal_.ok()) return terminal_;
  return Trip(Status::ResourceExhausted(std::string(what) +
                                        std::to_string(budget) + suffix));
}

Status QueryContext::CheckSlow() {
  if (limits_.cancel_flag != nullptr &&
      limits_.cancel_flag->load(std::memory_order_relaxed)) {
    return TripCancelled();
  }
  if (has_deadline_) {
    ++stats_.clock_reads;
    if (std::chrono::steady_clock::now() >= deadline_) {
      return Trip(Status::DeadlineExceeded(
          "statement deadline of " + std::to_string(limits_.deadline_ms) +
          " ms exceeded"));
    }
  }
  return Status::Ok();
}

}  // namespace sim
