#include "common/arena.h"

#include <cstring>

namespace sim {

Arena::Arena(size_t first_block_bytes)
    : next_block_bytes_(first_block_bytes < 64 ? 64 : first_block_bytes) {}

void* Arena::Allocate(size_t bytes, size_t align) {
  if (bytes == 0) bytes = 1;
  uintptr_t p = reinterpret_cast<uintptr_t>(ptr_);
  uintptr_t aligned = (p + align - 1) & ~(uintptr_t{align} - 1);
  size_t pad = static_cast<size_t>(aligned - p);
  if (ptr_ != nullptr && bytes + pad <= static_cast<size_t>(limit_ - ptr_)) {
    char* out = ptr_ + pad;
    ptr_ = out + bytes;
    bytes_used_ += bytes + pad;
    return out;
  }
  return AllocateSlow(bytes, align);
}

char* Arena::AllocateSlow(size_t bytes, size_t align) {
  // A fresh block from operator new[] is maximally aligned, so only
  // requests larger than the standard alignment could need padding; give
  // them a little headroom.
  size_t need = bytes + (align > alignof(std::max_align_t) ? align : 0);
  size_t block_bytes = next_block_bytes_;
  if (need > block_bytes) {
    // Oversized request: dedicated block, growth schedule unchanged.
    Block b;
    b.data = std::make_unique<char[]>(need);
    b.size = need;
    bytes_reserved_ += need;
    uintptr_t p = reinterpret_cast<uintptr_t>(b.data.get());
    uintptr_t aligned = (p + align - 1) & ~(uintptr_t{align} - 1);
    bytes_used_ += bytes;
    // Keep the current bump block as-is; park the oversized one behind it.
    blocks_.insert(blocks_.empty() ? blocks_.begin() : blocks_.end() - 1,
                   std::move(b));
    return reinterpret_cast<char*>(aligned);
  }
  Block b;
  b.data = std::make_unique<char[]>(block_bytes);
  b.size = block_bytes;
  bytes_reserved_ += block_bytes;
  ptr_ = b.data.get();
  limit_ = ptr_ + block_bytes;
  blocks_.push_back(std::move(b));
  if (next_block_bytes_ < (size_t{1} << 20)) next_block_bytes_ *= 2;
  char* out = ptr_;
  ptr_ += bytes;
  bytes_used_ += bytes;
  return out;
}

std::string_view Arena::CopyString(std::string_view s) {
  char* dst = static_cast<char*>(Allocate(s.size() ? s.size() : 1, 1));
  if (!s.empty()) std::memcpy(dst, s.data(), s.size());
  return std::string_view(dst, s.size());
}

void Arena::Reset() {
  if (blocks_.empty()) {
    bytes_used_ = 0;
    return;
  }
  // Keep the first block only; it is the steady-state working set.
  Block first = std::move(blocks_.front());
  bytes_reserved_ = first.size;
  blocks_.clear();
  ptr_ = first.data.get();
  limit_ = ptr_ + first.size;
  blocks_.push_back(std::move(first));
  bytes_used_ = 0;
}

}  // namespace sim
