#include "common/value.h"

#include <cmath>
#include <functional>

#include "common/date.h"
#include "common/strings.h"

namespace sim {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "boolean";
    case ValueType::kInt:
      return "integer";
    case ValueType::kReal:
      return "number";
    case ValueType::kString:
      return "string";
    case ValueType::kDate:
      return "date";
    case ValueType::kSurrogate:
      return "surrogate";
  }
  return "?";
}

Result<int> Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    return Status::Internal("Compare called on null value");
  }
  if (is_numeric() && other.is_numeric()) {
    if (type_ == ValueType::kInt && other.type_ == ValueType::kInt) {
      int64_t a = int_value(), b = other.int_value();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = AsReal(), b = other.AsReal();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type_ != other.type_) {
    return Status::TypeError(std::string("cannot compare ") +
                             ValueTypeName(type_) + " with " +
                             ValueTypeName(other.type_));
  }
  switch (type_) {
    case ValueType::kBool: {
      int a = bool_value() ? 1 : 0, b = other.bool_value() ? 1 : 0;
      return a - b;
    }
    case ValueType::kDate: {
      int64_t a = date_value(), b = other.date_value();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kSurrogate: {
      SurrogateId a = surrogate_value(), b = other.surrogate_value();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kString: {
      int c = string_view_value().compare(other.string_view_value());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return Status::Internal("unhandled type in Compare");
  }
}

Result<TriBool> Value::Equals(const Value& other) const {
  if (is_null() || other.is_null()) return TriBool::kUnknown;
  SIM_ASSIGN_OR_RETURN(int c, Compare(other));
  return MakeTriBool(c == 0);
}

bool Value::StrictEquals(const Value& other) const {
  if (is_null() && other.is_null()) return true;
  if (is_null() || other.is_null()) return false;
  if (is_numeric() && other.is_numeric()) {
    if (type_ == ValueType::kInt && other.type_ == ValueType::kInt) {
      return int_value() == other.int_value();
    }
    return AsReal() == other.AsReal();
  }
  if (type_ != other.type_) return false;
  switch (type_) {
    case ValueType::kBool:
      return bool_value() == other.bool_value();
    case ValueType::kDate:
      return date_value() == other.date_value();
    case ValueType::kSurrogate:
      return surrogate_value() == other.surrogate_value();
    case ValueType::kString: {
      // Same pool + same handle is byte equality without touching bytes.
      const Pooled* pa = std::get_if<Pooled>(&rep_);
      const Pooled* pb = std::get_if<Pooled>(&other.rep_);
      if (pa && pb && pa->pool == pb->pool) return pa->id == pb->id;
      return string_view_value() == other.string_view_value();
    }
    default:
      return false;
  }
}

size_t Value::Hash() const {
  switch (type_) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kReal:
    case ValueType::kInt: {
      // Numeric values hash through double so that Int(3) and Real(3.0)
      // collide, matching StrictEquals.
      double d = AsReal();
      if (d == static_cast<int64_t>(d)) {
        return std::hash<int64_t>()(static_cast<int64_t>(d)) ^ 0x1234567;
      }
      return std::hash<double>()(d) ^ 0x1234567;
    }
    case ValueType::kBool:
      return std::hash<int64_t>()(int_value()) ^ 0xb001;
    case ValueType::kDate:
      return std::hash<int64_t>()(date_value()) ^ 0xda7e;
    case ValueType::kSurrogate:
      return std::hash<int64_t>()(std::get<int64_t>(rep_)) ^ 0x5a5a;
    case ValueType::kString:
      // hash<string_view> is defined to agree with hash<string>, so pooled
      // and owned strings with the same bytes collide.
      return std::hash<std::string_view>()(string_view_value());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull:
      return "?";
    case ValueType::kBool:
      return bool_value() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(int_value());
    case ValueType::kReal: {
      double d = real_value();
      if (d == static_cast<int64_t>(d) && std::abs(d) < 1e15) {
        return std::to_string(static_cast<int64_t>(d)) + ".0";
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%g", d);
      return buf;
    }
    case ValueType::kString:
      return std::string(string_view_value());
    case ValueType::kDate:
      return FormatDate(date_value());
    case ValueType::kSurrogate:
      return "#" + std::to_string(surrogate_value());
  }
  return "?";
}

}  // namespace sim
