#ifndef SIMDB_COMMON_MUTEX_H_
#define SIMDB_COMMON_MUTEX_H_

// Annotated synchronization primitives. Every mutex in src/ is a
// sim::Mutex (scripts/lint_invariants.sh rejects naked std::mutex /
// std::lock_guard / std::condition_variable), so every lock acquisition
// is visible to Clang's thread-safety analysis: fields carry
// SIM_GUARDED_BY(mu_), lock-holding private helpers carry
// SIM_REQUIRES(mu_), and the STRICT build promotes any violation to an
// error. See DESIGN.md §12 for the lock hierarchy and the annotation
// conventions.
//
// The wrappers add no state and no behavior over the std primitives —
// Mutex is exactly a std::mutex, MutexLock exactly a lock_guard, CondVar
// exactly a condition_variable whose waits take the MutexLock by
// reference (which is what lets the analysis know the capability is held
// across the wait).

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace sim {

class CondVar;

class SIM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SIM_ACQUIRE() { mu_.lock(); }
  void Unlock() SIM_RELEASE() { mu_.unlock(); }
  bool TryLock() SIM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock. Scoped acquisition is the only idiom the codebase uses for
// public entry points; functions that must hold a lock across a call
// boundary take SIM_REQUIRES(mu) instead and are named *Locked.
class SIM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SIM_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SIM_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
};

// Condition variable bound to sim::Mutex through MutexLock. Waits adopt
// the already-held native mutex for the duration of the underlying
// std::condition_variable wait and release it back to the MutexLock
// before returning, so from the analysis's (correct) point of view the
// capability is held continuously around the wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) {
    std::unique_lock<std::mutex> native(lock.mu_.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(MutexLock& lock,
                         const std::chrono::duration<Rep, Period>& dur) {
    std::unique_lock<std::mutex> native(lock.mu_.mu_, std::adopt_lock);
    std::cv_status st = cv_.wait_for(native, dur);
    native.release();
    return st;
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    std::unique_lock<std::mutex> native(lock.mu_.mu_, std::adopt_lock);
    std::cv_status st = cv_.wait_until(native, deadline);
    native.release();
    return st;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sim

#endif  // SIMDB_COMMON_MUTEX_H_
