#include "common/status.h"

namespace sim {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDiskFull:
      return "DiskFull";
    case StatusCode::kReadOnly:
      return "ReadOnly";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace sim
