#include "common/string_pool.h"

namespace sim {

StringHandle StringPool::Intern(std::string_view s) {
  MutexLock l(pool_mu_);
  auto it = index_.find(s);
  if (it != index_.end()) return StringHandle(it->second);
  uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(s);
  bytes_ += s.size();
  // Key the index by a view into the deque-owned copy (stable address).
  index_.emplace(std::string_view(strings_.back()), id);
  return StringHandle(id);
}

StringHandle StringPool::Find(std::string_view s) const {
  MutexLock l(pool_mu_);
  auto it = index_.find(s);
  if (it == index_.end()) return StringHandle();
  return StringHandle(it->second);
}

}  // namespace sim
