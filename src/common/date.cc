#include "common/date.h"

#include <cstdio>

namespace sim {

namespace {

bool IsLeap(int y) { return y % 4 == 0 && (y % 100 != 0 || y % 400 == 0); }

int DaysInMonth(int y, int m) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeap(y)) return 29;
  return kDays[m - 1];
}

}  // namespace

int64_t DaysFromCivil(int y, int m, int d) {
  // Howard Hinnant's algorithm (http://howardhinnant.github.io/date_algorithms.html).
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);           // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* year, int* month, int* day) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                        // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                     // [1, 12]
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

bool IsValidCivilDate(int year, int month, int day) {
  if (month < 1 || month > 12) return false;
  if (day < 1 || day > DaysInMonth(year, month)) return false;
  return true;
}

namespace {

// Consumes a run of 1..4 decimal digits at *pos. Strict by construction:
// no leading whitespace, no '+'/'-' signs — exactly what sscanf's %d
// silently tolerated and the trailing-garbage check never caught.
bool ParseDigitRun(const std::string& text, size_t* pos, int* out) {
  size_t i = *pos;
  int value = 0;
  size_t digits = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    value = value * 10 + (text[i] - '0');
    ++i;
    if (++digits > 6) return false;  // bounds the run; keeps value in int
  }
  if (digits == 0) return false;
  *pos = i;
  *out = value;
  return true;
}

// <num> <sep> <num> <sep> <num>, consuming the entire string.
bool ParseThreeFields(const std::string& text, char sep, int* a, int* b,
                      int* c) {
  size_t pos = 0;
  if (!ParseDigitRun(text, &pos, a)) return false;
  if (pos >= text.size() || text[pos] != sep) return false;
  ++pos;
  if (!ParseDigitRun(text, &pos, b)) return false;
  if (pos >= text.size() || text[pos] != sep) return false;
  ++pos;
  if (!ParseDigitRun(text, &pos, c)) return false;
  return pos == text.size();
}

}  // namespace

Result<int64_t> ParseDate(const std::string& text) {
  // Strict digit-run parser: leading/embedded whitespace and sign
  // characters are rejected with the same severity as trailing garbage.
  int y = 0, m = 0, d = 0;
  bool parsed = ParseThreeFields(text, '-', &y, &m, &d);  // ISO order.
  if (!parsed) {                                          // US order.
    parsed = ParseThreeFields(text, '/', &m, &d, &y);
  }
  if (!parsed) {
    return Status::TypeError("cannot parse date: '" + text + "'");
  }
  if (!IsValidCivilDate(y, m, d)) {
    return Status::TypeError("invalid calendar date: '" + text + "'");
  }
  return DaysFromCivil(y, m, d);
}

std::string FormatDate(int64_t days) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

}  // namespace sim
