#ifndef SIMDB_COMMON_ARENA_H_
#define SIMDB_COMMON_ARENA_H_

// Bump-pointer arena for per-statement transient storage. A QueryContext
// owns one Arena; operators and the LUC mapper place short-lived row
// material (DISTINCT keys, scratch encodings) in it and the whole thing is
// released in O(1) when the statement ends. Reset() keeps the first block
// so a statement executed through a reused context reaches steady state
// with zero allocations.
//
// Lifetime rule (DESIGN.md §11): memory returned by Allocate/CopyString is
// valid until Reset() or destruction of the Arena — i.e. until the end of
// the statement. Nothing handed to the user may point into an arena.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace sim {

class Arena {
 public:
  explicit Arena(size_t first_block_bytes = 4096);
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Aligned bump allocation. Never returns null (grows by doubling blocks;
  // oversized requests get a dedicated block).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  // Copies `s` into the arena and returns a view of the copy.
  std::string_view CopyString(std::string_view s);

  // Drops every block but the first and rewinds the bump pointer. Views
  // and pointers previously returned become invalid.
  void Reset();

  // Bytes handed out since construction / last Reset().
  size_t bytes_used() const { return bytes_used_; }
  // Total block capacity currently held (survives Reset for the first
  // block).
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  char* AllocateSlow(size_t bytes, size_t align);

  std::vector<Block> blocks_;
  char* ptr_ = nullptr;    // bump pointer within the current block
  char* limit_ = nullptr;  // end of the current block
  size_t next_block_bytes_;
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace sim

#endif  // SIMDB_COMMON_ARENA_H_
