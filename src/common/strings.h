#ifndef SIMDB_COMMON_STRINGS_H_
#define SIMDB_COMMON_STRINGS_H_

// Small string utilities shared across modules. SIM identifiers and keywords
// are case-insensitive (the paper freely mixes "Student" / "STUDENT"), so
// every name comparison in the system goes through AsciiLower / NameEq.

#include <string>
#include <string_view>
#include <vector>

namespace sim {

// ASCII-lowercased copy.
std::string AsciiLower(std::string_view s);

// Case-insensitive equality of two names.
bool NameEq(std::string_view a, std::string_view b);

// Case-insensitive LIKE-style pattern match with '%' (any run) and
// '_' (any single char). Used for the DML's pattern-matching operator.
bool LikeMatch(std::string_view text, std::string_view pattern);

// Joins parts with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace sim

#endif  // SIMDB_COMMON_STRINGS_H_
