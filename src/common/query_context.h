#ifndef SIMDB_COMMON_QUERY_CONTEXT_H_
#define SIMDB_COMMON_QUERY_CONTEXT_H_

// Per-statement resource governor. SIM ran as a shared InfoExec service
// whose host (DMSII) absorbed runaway queries; our reproduction must own
// that itself. A QueryContext is created per statement and threaded
// through the execution stack; every Volcano operator Next(), every
// existential/aggregate combination and the transitive-closure BFS call
// Check()/ChargeCombinations() cooperatively, so a pathological query dies
// with a clean kDeadlineExceeded / kCancelled / kResourceExhausted status
// instead of running away.
//
// The governor enforces four independent limits:
//  * deadline      — wall-clock budget (steady clock, amortized reads);
//  * cancellation  — a flag flippable from another thread (Cursor::Cancel)
//                    or shared externally through DatabaseOptions;
//  * combinations  — §4.5 combinations examined, INCLUDING the existential
//                    inner loops of TYPE 2 variables, aggregates and
//                    quantifiers (which never show up as output rows);
//  * rows / bytes  — delivered rows and the approximate memory held by
//                    materializing operators (Sort, Distinct, ResultSet).
//
// A tripped limit is sticky: once Check() has returned a terminal status,
// every later call returns the same status, so a pipeline unwinding
// through many operators reports one coherent error.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/arena.h"
#include "common/status.h"

namespace sim {

// A resource owned by a statement and released when its QueryContext is
// destroyed (or explicitly via ReleaseResources). Type-erased so common/
// stays independent of the layers that own the concrete resources — the
// lock manager attaches the statement's lock scope through this hook.
class StatementResource {
 public:
  virtual ~StatementResource() = default;
};

class QueryContext {
 public:
  struct Limits {
    // Wall-clock budget in milliseconds; < 0 means no deadline, 0 means
    // "already expired" (cancels any in-flight work at the next check).
    int64_t deadline_ms = -1;
    // 0 = unlimited for the three budgets below.
    uint64_t max_combinations = 0;
    uint64_t max_rows = 0;
    uint64_t max_bytes = 0;
    // Optional externally-owned cancel flag (e.g. shared across threads);
    // the context also has its own internal flag set by RequestCancel().
    std::shared_ptr<const std::atomic<bool>> cancel_flag;
  };

  struct Stats {
    uint64_t checks = 0;         // cooperative check calls
    uint64_t clock_reads = 0;    // amortized deadline clock reads
    uint64_t combinations = 0;   // combinations charged (incl. existential)
    uint64_t rows = 0;           // rows charged
    uint64_t bytes = 0;          // materialized bytes charged
  };

  QueryContext() : QueryContext(Limits()) {}
  explicit QueryContext(const Limits& limits);

  // Requests cooperative cancellation. Safe to call from another thread
  // while the statement is executing.
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const;

  // Cooperative checkpoint, inlined for per-combination use. The fast
  // path is a handful of integer ops: no governor → return; tripped →
  // sticky terminal; internal cancel flag (one relaxed load) every call.
  // The expensive sources — the externally shared cancel flag and the
  // deadline clock — are consulted every kClockStride calls and on the
  // first, which bounds how late they can fire at kClockStride
  // combination-steps.
  Status Check() {
    ++stats_.checks;
    if (cancelled_.load(std::memory_order_relaxed)) {
      if (!terminal_.ok()) return terminal_;
      return TripCancelled();
    }
    if (!limited_) return Status::Ok();
    if (!terminal_.ok()) return terminal_;
    if ((ticks_++ % kClockStride) != 0) return Status::Ok();
    return CheckSlow();
  }

  // Budget charges; each also performs Check(). Stats are counted
  // unconditionally (governor_stats() reports them even without limits);
  // budget comparisons are exact (every call), only the clock/flag
  // sampling is amortized.
  Status ChargeCombinations(uint64_t n = 1) {
    stats_.combinations += n;
    if (limits_.max_combinations > 0 &&
        stats_.combinations > limits_.max_combinations) {
      return TripBudget("combination budget of ", limits_.max_combinations,
                        " exceeded");
    }
    return Check();
  }
  Status ChargeRows(uint64_t n = 1) {
    stats_.rows += n;
    if (limits_.max_rows > 0 && stats_.rows > limits_.max_rows) {
      return TripBudget("row budget of ", limits_.max_rows, " exceeded");
    }
    return Check();
  }
  Status ChargeBytes(uint64_t bytes) {
    stats_.bytes += bytes;
    if (limits_.max_bytes > 0 && stats_.bytes > limits_.max_bytes) {
      return TripBudget("memory budget of ", limits_.max_bytes,
                        " bytes exceeded");
    }
    return Check();
  }

  // True when any limit or cancel source is active; callers may skip
  // charging entirely when false (the fast path does so internally too).
  bool limited() const { return limited_; }

  // Per-statement scratch arena for transient row storage (encoded
  // duplicate-elimination keys, operator scratch). Everything allocated
  // from it dies with the statement; nothing handed to the user may point
  // into it.
  Arena& arena() { return arena_; }

  const Stats& stats() const { return stats_; }
  const Status& terminal() const { return terminal_; }

  // Deadline view for blocking waits outside the operator pipeline (lock
  // acquisition): a waiter bounds its sleep by the statement deadline so a
  // contended lock turns into kDeadlineExceeded, never an unbounded hang.
  bool has_deadline() const { return has_deadline_; }
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }

  // Attaches a resource whose lifetime is the statement's: released in
  // reverse attachment order when the context dies, or earlier via
  // ReleaseResources() (e.g. dropping locks before a durability wait).
  void AttachResource(std::unique_ptr<StatementResource> r) {
    resources_.push_back(std::move(r));
  }
  void ReleaseResources() {
    while (!resources_.empty()) resources_.pop_back();
  }

 private:
  // How many Check() calls share one clock read / external-flag sample.
  // Bounds how late a deadline or shared-flag cancel can fire: at most
  // kClockStride combination-steps.
  static constexpr uint64_t kClockStride = 256;

  // Slow path of Check(): external cancel flag + deadline clock.
  Status CheckSlow();
  // Latches a terminal status; out of line so the inline fast paths stay
  // small (the message strings are only built when a limit actually trips).
  Status Trip(Status s);
  Status TripCancelled();
  Status TripBudget(const char* what, uint64_t budget, const char* suffix);

  Limits limits_;
  bool limited_ = false;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_;
  std::atomic<bool> cancelled_{false};
  uint64_t ticks_ = 0;
  Status terminal_;  // sticky; OK until a limit trips
  Stats stats_;
  Arena arena_;
  std::vector<std::unique_ptr<StatementResource>> resources_;
};

}  // namespace sim

#endif  // SIMDB_COMMON_QUERY_CONTEXT_H_
