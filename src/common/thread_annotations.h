#ifndef SIMDB_COMMON_THREAD_ANNOTATIONS_H_
#define SIMDB_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis attribute macros (the GUARDED_BY family).
// The annotations turn the locking discipline documented in comments into
// machine-checked contracts: `-Wthread-safety` (enabled as an error in the
// STRICT build whenever the compiler supports it — CMake probes the flag)
// rejects any access to a SIM_GUARDED_BY field without its mutex held and
// any call to a SIM_REQUIRES function without the stated capability.
//
// Under GCC (which has no thread-safety analysis) every macro expands to
// nothing, so the annotated code is portable; the analysis simply runs on
// clang builds only. Follows the naming of the canonical Abseil/LLVM
// macros with a SIM_ prefix to keep the global namespace clean.

#if defined(__clang__) && !defined(SIM_NO_THREAD_SAFETY_ANALYSIS)
#define SIM_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SIM_THREAD_ANNOTATION_(x)  // no-op
#endif

// Declares a type to be a lockable capability ("mutex").
#define SIM_CAPABILITY(x) SIM_THREAD_ANNOTATION_(capability(x))

// Declares an RAII type that acquires a capability at construction and
// releases it at destruction (MutexLock).
#define SIM_SCOPED_CAPABILITY SIM_THREAD_ANNOTATION_(scoped_lockable)

// Declares that a field may only be read/written with the given mutex
// held. This is the workhorse annotation: every shared field in the WAL,
// the trace ring and the metrics registry carries one.
#define SIM_GUARDED_BY(x) SIM_THREAD_ANNOTATION_(guarded_by(x))

// Like SIM_GUARDED_BY, for pointers: the POINTED-TO data is guarded (the
// pointer itself may be read freely).
#define SIM_PT_GUARDED_BY(x) SIM_THREAD_ANNOTATION_(pt_guarded_by(x))

// Function-level contracts: the caller must hold (REQUIRES) or must NOT
// hold (EXCLUDES) the listed capabilities across the call.
#define SIM_REQUIRES(...) \
  SIM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define SIM_EXCLUDES(...) SIM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// The function acquires/releases the capability itself (Mutex::Lock /
// Unlock and the MutexLock constructor/destructor).
#define SIM_ACQUIRE(...) \
  SIM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define SIM_RELEASE(...) \
  SIM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define SIM_TRY_ACQUIRE(...) \
  SIM_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// Lock-ordering declaration: this mutex must be acquired after `x`.
#define SIM_ACQUIRED_AFTER(...) \
  SIM_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define SIM_ACQUIRED_BEFORE(...) \
  SIM_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

// The function returns a reference to a mutex-guarded object without
// taking the lock (accessors handing out cells for lock-free update).
#define SIM_LOCK_RETURNED(x) SIM_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch for code the analysis cannot follow (CondVar's adopt/
// release dance over the native handle). Use sparingly, with a comment.
#define SIM_NO_THREAD_SAFETY_ANALYSIS \
  SIM_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // SIMDB_COMMON_THREAD_ANNOTATIONS_H_
