#include "common/tribool.h"

namespace sim {

TriBool TriAnd(TriBool a, TriBool b) {
  if (a == TriBool::kFalse || b == TriBool::kFalse) return TriBool::kFalse;
  if (a == TriBool::kUnknown || b == TriBool::kUnknown) return TriBool::kUnknown;
  return TriBool::kTrue;
}

TriBool TriOr(TriBool a, TriBool b) {
  if (a == TriBool::kTrue || b == TriBool::kTrue) return TriBool::kTrue;
  if (a == TriBool::kUnknown || b == TriBool::kUnknown) return TriBool::kUnknown;
  return TriBool::kFalse;
}

TriBool TriNot(TriBool a) {
  switch (a) {
    case TriBool::kTrue:
      return TriBool::kFalse;
    case TriBool::kFalse:
      return TriBool::kTrue;
    case TriBool::kUnknown:
      return TriBool::kUnknown;
  }
  return TriBool::kUnknown;
}

const char* TriBoolName(TriBool t) {
  switch (t) {
    case TriBool::kTrue:
      return "true";
    case TriBool::kFalse:
      return "false";
    case TriBool::kUnknown:
      return "unknown";
  }
  return "unknown";
}

}  // namespace sim
