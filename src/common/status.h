#ifndef SIMDB_COMMON_STATUS_H_
#define SIMDB_COMMON_STATUS_H_

// Error model for simdb. The library does not use C++ exceptions; every
// fallible operation returns a Status, or a Result<T> when it also produces
// a value. Mirrors the style used by LevelDB/RocksDB and Abseil.

#include <optional>
#include <string>
#include <utility>

namespace sim {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,      // malformed input (bad schema, bad value, ...)
  kNotFound,             // named object or record does not exist
  kAlreadyExists,        // duplicate name / duplicate unique value
  kConstraintViolation,  // an integrity constraint rejected the operation
  kParseError,           // DDL/DML text failed to parse
  kBindError,            // qualification/binding failed (unknown attribute,
                         // ambiguous qualification, bad role conversion, ...)
  kTypeError,            // value incompatible with attribute type
  kIoError,              // storage layer failure (permanent)
  kNotSupported,         // valid SIM construct outside the implemented subset
  kAborted,              // transaction aborted (e.g., by a VERIFY condition)
  kInternal,             // invariant violation inside the library
  // Resource-governor / resilience taxonomy. Transient vs permanent vs
  // fatal is encoded in the code itself: kUnavailable is the only code the
  // I/O retry layer considers retryable; kIoError is permanent; kDiskFull
  // degrades the database to read-only.
  kCancelled,            // statement cancelled by the caller
  kDeadlineExceeded,     // statement ran past its deadline
  kResourceExhausted,    // row/combination/memory budget exceeded
  kUnavailable,          // transient I/O failure; a retry may succeed
  kDiskFull,             // ENOSPC/EDQUOT: no space to write
  kReadOnly,             // database degraded to read-only mode
  kCorruption,           // stored bytes failed validation (truncated or
                         // hostile record; never caused by caller input)
  kDataLoss,             // records lost to quarantined media; the rest of
                         // the database keeps serving (degraded mode) and
                         // REPAIR DATABASE can salvage around the loss
  kFailedPrecondition,   // operation is valid but the system is in the
                         // wrong state for it (e.g. DDL after the mapper
                         // is built); fix the call ordering, not the call
};

// Human-readable name of a StatusCode ("OK", "ParseError", ...).
const char* StatusCodeName(StatusCode code);

// A Status is either OK or carries a code plus a message describing what
// went wrong. Statuses are cheap to copy in the OK case.
//
// [[nodiscard]]: silently dropping a Status is how I/O errors, constraint
// violations and governor trips get lost — the compiler rejects it
// tree-wide (-Werror in the STRICT build). Call sites that genuinely
// cannot act on a failure (best-effort cleanup in destructors) must say
// so explicitly with a (void) cast and a comment.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status ConstraintViolation(std::string m) {
    return Status(StatusCode::kConstraintViolation, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status BindError(std::string m) {
    return Status(StatusCode::kBindError, std::move(m));
  }
  static Status TypeError(std::string m) {
    return Status(StatusCode::kTypeError, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status NotSupported(std::string m) {
    return Status(StatusCode::kNotSupported, std::move(m));
  }
  static Status Aborted(std::string m) {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status DiskFull(std::string m) {
    return Status(StatusCode::kDiskFull, std::move(m));
  }
  static Status ReadOnly(std::string m) {
    return Status(StatusCode::kReadOnly, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status DataLoss(std::string m) {
    return Status(StatusCode::kDataLoss, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // First-error-wins accumulator for cleanup/unwind paths: keeps *this
  // when already failed (the primary error), otherwise adopts `other`.
  // Makes "the primary error outranks a secondary cleanup failure" an
  // explicit, greppable policy instead of a silently discarded result.
  void Update(Status other) {
    if (ok()) *this = std::move(other);
  }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> is a Status plus, when OK, a value of type T. [[nodiscard]]
// for the same reason as Status: an ignored Result is an ignored error.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : status_(), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sim

// Propagates a non-OK Status from an expression.
#define SIM_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::sim::Status sim_status_tmp_ = (expr);         \
    if (!sim_status_tmp_.ok()) return sim_status_tmp_; \
  } while (0)

#define SIM_CONCAT_IMPL_(a, b) a##b
#define SIM_CONCAT_(a, b) SIM_CONCAT_IMPL_(a, b)

// Evaluates a Result<T> expression; on error propagates the Status,
// otherwise assigns the value to `lhs` (which may be a declaration).
#define SIM_ASSIGN_OR_RETURN(lhs, expr)                                 \
  SIM_ASSIGN_OR_RETURN_IMPL_(SIM_CONCAT_(sim_result_, __LINE__), lhs, expr)

#define SIM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

#endif  // SIMDB_COMMON_STATUS_H_
