#ifndef SIMDB_COMMON_RELAXED_COUNTER_H_
#define SIMDB_COMMON_RELAXED_COUNTER_H_

// A monotonic uint64 statistic cell that may be read by a concurrent
// metrics scrape while the owning component mutates it.
//
// Components keep plain stats structs (RetryStats, LucMapper::Stats) whose
// fields are bumped on the single execution thread, but Database's metrics
// callbacks sample those fields from arbitrary scraper threads
// (MetricsText() is documented thread-safe against statement execution).
// A plain uint64_t there is a data race — ThreadSanitizer flags it and the
// C++ memory model gives it no meaning. RelaxedCounter makes each field an
// atomic cell with relaxed ordering: increments stay a single uncontended
// RMW on the hot path, scrapes read a torn-free value, and — unlike
// std::atomic — the type is copyable, so stats structs can still be
// snapshotted, merged and reset by value exactly as before.
//
// Relaxed ordering is sufficient because each cell is an independent
// monotonic count; nothing orders against it. Anything that must be
// observed consistently with other state belongs under a sim::Mutex
// instead (see common/mutex.h and DESIGN.md §12).

#include <atomic>
#include <cstdint>

namespace sim {

class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(uint64_t v) : v_(v) {}  // NOLINT: implicit by design

  RelaxedCounter(const RelaxedCounter& other) : v_(other.value()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) {
    v_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(uint64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  operator uint64_t() const { return value(); }  // NOLINT: implicit by design

  RelaxedCounter& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator+=(uint64_t n) {
    v_.fetch_add(n, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<uint64_t> v_{0};
};

}  // namespace sim

#endif  // SIMDB_COMMON_RELAXED_COUNTER_H_
