#include "common/strings.h"

#include <cctype>

namespace sim {

std::string AsciiLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

bool NameEq(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer matcher with backtracking over the last '%'.
  // '\' escapes the next pattern character, so '\%' and '\_' match the
  // literal characters; a trailing lone '\' matches itself.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  auto eq = [](char a, char b) {
    return std::tolower(static_cast<unsigned char>(a)) ==
           std::tolower(static_cast<unsigned char>(b));
  };
  while (t < text.size()) {
    if (p + 1 < pattern.size() && pattern[p] == '\\') {
      if (eq(pattern[p + 1], text[t])) {
        ++t;
        p += 2;
      } else if (star_p != std::string_view::npos) {
        p = star_p + 1;
        t = ++star_t;
      } else {
        return false;
      }
    } else if (p < pattern.size() &&
               (pattern[p] == '_' || eq(pattern[p], text[t]))) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

}  // namespace sim
