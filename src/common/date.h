#ifndef SIMDB_COMMON_DATE_H_
#define SIMDB_COMMON_DATE_H_

// Calendar date support for the SIM `date` data type. Dates are stored as a
// count of days since the civil epoch 1970-01-01 (negative for earlier
// dates), which makes comparison and ordering trivial.

#include <cstdint>
#include <string>

#include "common/status.h"

namespace sim {

// Days since 1970-01-01 for the given proleptic-Gregorian civil date.
// Uses Howard Hinnant's days-from-civil algorithm; valid over +/- millions
// of years, far beyond any database need.
int64_t DaysFromCivil(int year, int month, int day);

// Inverse of DaysFromCivil.
void CivilFromDays(int64_t days, int* year, int* month, int* day);

// True if (year, month, day) denotes a real calendar date.
bool IsValidCivilDate(int year, int month, int day);

// Parses "YYYY-MM-DD" or "MM/DD/YYYY" into days-since-epoch.
Result<int64_t> ParseDate(const std::string& text);

// Formats days-since-epoch as "YYYY-MM-DD".
std::string FormatDate(int64_t days);

}  // namespace sim

#endif  // SIMDB_COMMON_DATE_H_
