#include "api/database.h"

#include "parser/ddl_parser.h"
#include "parser/dml_parser.h"

namespace sim {

Database::Database(DatabaseOptions options) : options_(std::move(options)) {}

Database::~Database() {
  // Clean close. Skipped when a transaction is still open: its uncommitted
  // work must not become durable. Every step is best-effort — on failure
  // the WAL simply keeps its replay work for the next Open's recovery.
  if (wal_ == nullptr || current_txn_ != nullptr || pool_ == nullptr) return;
  if (!pool_->FlushAll().ok()) return;
  if (wal_->empty()) return;
  if (!wal_->AppendCommit().ok()) return;
  (void)wal_->Checkpoint(io_pager());
}

Result<std::unique_ptr<Database>> Database::Open(
    const DatabaseOptions& options) {
  auto db = std::unique_ptr<Database>(new Database(options));
  if (options.file_path.empty()) {
    db->pager_ = std::make_unique<MemPager>();
  } else {
    SIM_ASSIGN_OR_RETURN(std::unique_ptr<FilePager> pager,
                         FilePager::Open(options.file_path));
    db->pager_ = std::move(pager);
  }
  if (options.fault_injector != nullptr) {
    db->fault_pager_ = std::make_unique<FaultInjectingPager>(
        db->pager_.get(), options.fault_injector);
  }
  if (!options.file_path.empty()) {
    // WAL mode: scan the log and replay anything a previous crash left
    // committed-but-unapplied before the first page is read.
    SIM_ASSIGN_OR_RETURN(
        db->wal_, WriteAheadLog::Open(options.file_path,
                                      options.fault_injector));
    SIM_ASSIGN_OR_RETURN(db->recovered_pages_,
                         db->wal_->Recover(db->io_pager()));
  }
  db->pool_ = std::make_unique<BufferPool>(
      db->io_pager(), options.buffer_pool_frames, db->wal_.get());
  // Durability hook: a transaction is committed once its dirty pages and a
  // commit record are durable in the WAL. The in-place checkpoint is an
  // optimization and must NOT fail the commit — the data is already safe.
  Database* raw = db.get();
  db->txn_manager_.set_commit_hook([raw](Transaction*) -> Status {
    if (raw->wal_ == nullptr) return Status::Ok();
    SIM_RETURN_IF_ERROR(raw->pool_->FlushAll());
    SIM_RETURN_IF_ERROR(raw->wal_->AppendCommit());
    if (raw->wal_->size_bytes() > raw->options_.wal_checkpoint_bytes) {
      (void)raw->wal_->Checkpoint(raw->io_pager());
    }
    return Status::Ok();
  });
  return db;
}

Status Database::ExecuteDdl(std::string_view ddl_text) {
  if (mapper_ != nullptr) {
    return Status::NotSupported(
        "schema changes after data operations are not supported; define the "
        "full schema first");
  }
  SIM_ASSIGN_OR_RETURN(std::vector<DdlStatement> statements,
                       DdlParser::Parse(ddl_text, &dir_));
  for (DdlStatement& s : statements) {
    if (s.type_decl != nullptr) {
      SIM_RETURN_IF_ERROR(
          dir_.DefineType(s.type_decl->name, std::move(s.type_decl->type)));
    } else if (s.class_decl != nullptr) {
      SIM_RETURN_IF_ERROR(dir_.AddClass(std::move(*s.class_decl)));
    } else if (s.verify_decl != nullptr) {
      SIM_RETURN_IF_ERROR(dir_.AddVerify(std::move(*s.verify_decl)));
    } else if (s.view_decl != nullptr) {
      SIM_RETURN_IF_ERROR(dir_.AddView(std::move(*s.view_decl)));
    }
  }
  return dir_.Finalize();
}

Status Database::EnsureMapper() {
  if (mapper_ != nullptr) return Status::Ok();
  if (!dir_.finalized()) {
    SIM_RETURN_IF_ERROR(dir_.Finalize());
  }
  SIM_ASSIGN_OR_RETURN(PhysicalSchema phys,
                       PhysicalSchema::Build(dir_, options_.mapping));
  phys_ = std::make_unique<PhysicalSchema>(std::move(phys));
  SIM_ASSIGN_OR_RETURN(mapper_,
                       LucMapper::Create(&dir_, phys_.get(), pool_.get()));
  integrity_ = std::make_unique<IntegrityChecker>(&dir_, mapper_.get());
  SIM_RETURN_IF_ERROR(integrity_->Prepare());
  return Status::Ok();
}

Result<LucMapper*> Database::mapper() {
  SIM_RETURN_IF_ERROR(EnsureMapper());
  return mapper_.get();
}

Result<ResultSet> Database::ExecuteQuery(std::string_view dml) {
  SIM_RETURN_IF_ERROR(EnsureMapper());
  SIM_ASSIGN_OR_RETURN(StmtPtr stmt, DmlParser::ParseStatement(dml));
  if (stmt->kind != StmtKind::kRetrieve) {
    return Status::InvalidArgument(
        "ExecuteQuery expects a Retrieve statement; use ExecuteUpdate");
  }
  const auto& retrieve = static_cast<const RetrieveStmt&>(*stmt);
  Binder binder(&dir_);
  SIM_ASSIGN_OR_RETURN(QueryTree qt, binder.BindRetrieve(retrieve));
  Executor exec(mapper_.get());
  Result<ResultSet> rs = Status::Internal("query not dispatched");
  if (options_.use_optimizer) {
    Optimizer optimizer(mapper_.get());
    SIM_ASSIGN_OR_RETURN(last_plan_, optimizer.Optimize(qt));
    rs = exec.Run(qt, &last_plan_);
  } else {
    last_plan_ = AccessPlan();
    rs = exec.Run(qt, nullptr);
  }
  last_exec_stats_ = exec.last_stats();
  return rs;
}

Result<std::string> Database::Explain(std::string_view dml) {
  SIM_RETURN_IF_ERROR(EnsureMapper());
  SIM_ASSIGN_OR_RETURN(StmtPtr stmt, DmlParser::ParseStatement(dml));
  if (stmt->kind != StmtKind::kRetrieve) {
    return Status::InvalidArgument("Explain expects a Retrieve statement");
  }
  const auto& retrieve = static_cast<const RetrieveStmt&>(*stmt);
  Binder binder(&dir_);
  SIM_ASSIGN_OR_RETURN(QueryTree qt, binder.BindRetrieve(retrieve));
  Optimizer optimizer(mapper_.get());
  SIM_ASSIGN_OR_RETURN(AccessPlan plan, optimizer.Optimize(qt));
  return qt.DebugString() + plan.Describe();
}

Result<int> Database::ExecuteUpdate(std::string_view dml) {
  SIM_RETURN_IF_ERROR(EnsureMapper());
  SIM_ASSIGN_OR_RETURN(StmtPtr stmt, DmlParser::ParseStatement(dml));

  bool implicit_txn = current_txn_ == nullptr;
  Transaction* txn =
      implicit_txn ? txn_manager_.Begin() : current_txn_;
  size_t savepoint = txn->undo_depth();

  UpdateExecutor update(mapper_.get(), integrity_.get());
  Result<UpdateExecutor::UpdateResult> result = Status::Internal("statement not dispatched");
  switch (stmt->kind) {
    case StmtKind::kInsert:
      result = update.ExecuteInsert(static_cast<const InsertStmt&>(*stmt),
                                    txn);
      break;
    case StmtKind::kModify:
      result = update.ExecuteModify(static_cast<const ModifyStmt&>(*stmt),
                                    txn);
      break;
    case StmtKind::kDelete:
      result = update.ExecuteDelete(static_cast<const DeleteStmt&>(*stmt),
                                    txn);
      break;
    case StmtKind::kRetrieve:
      if (implicit_txn) SIM_RETURN_IF_ERROR(txn_manager_.Abort(txn));
      return Status::InvalidArgument(
          "ExecuteUpdate expects Insert/Modify/Delete; use ExecuteQuery");
  }
  if (!result.ok()) {
    // Statement-level rollback; the enclosing user transaction survives.
    if (implicit_txn) {
      SIM_RETURN_IF_ERROR(txn_manager_.Abort(txn));
    } else {
      SIM_RETURN_IF_ERROR(txn->RollbackTo(savepoint));
    }
    return result.status();
  }
  if (implicit_txn) {
    Status committed = txn_manager_.Commit(txn);
    if (!committed.ok()) {
      // Commit could not be made durable; roll the statement back so the
      // in-memory state matches what recovery will reconstruct.
      (void)txn_manager_.Abort(txn);
      return committed;
    }
  }
  return result->entities_affected;
}

Status Database::ExecuteScript(std::string_view dml_script) {
  SIM_ASSIGN_OR_RETURN(std::vector<StmtPtr> statements,
                       DmlParser::ParseScript(dml_script));
  for (const StmtPtr& stmt : statements) {
    if (stmt->kind == StmtKind::kRetrieve) {
      return Status::InvalidArgument(
          "ExecuteScript accepts update statements only");
    }
  }
  // Re-execute through the single-statement path to get per-statement
  // atomicity; statements were already validated to parse.
  SIM_RETURN_IF_ERROR(EnsureMapper());
  for (const StmtPtr& stmt : statements) {
    bool implicit_txn = current_txn_ == nullptr;
    Transaction* txn = implicit_txn ? txn_manager_.Begin() : current_txn_;
    size_t savepoint = txn->undo_depth();
    UpdateExecutor update(mapper_.get(), integrity_.get());
    Result<UpdateExecutor::UpdateResult> result = Status::Internal("statement not dispatched");
    switch (stmt->kind) {
      case StmtKind::kInsert:
        result = update.ExecuteInsert(static_cast<const InsertStmt&>(*stmt),
                                      txn);
        break;
      case StmtKind::kModify:
        result = update.ExecuteModify(static_cast<const ModifyStmt&>(*stmt),
                                      txn);
        break;
      case StmtKind::kDelete:
        result = update.ExecuteDelete(static_cast<const DeleteStmt&>(*stmt),
                                      txn);
        break;
      default:
        break;
    }
    if (!result.ok()) {
      if (implicit_txn) {
        SIM_RETURN_IF_ERROR(txn_manager_.Abort(txn));
      } else {
        SIM_RETURN_IF_ERROR(txn->RollbackTo(savepoint));
      }
      return result.status();
    }
    if (implicit_txn) {
      Status committed = txn_manager_.Commit(txn);
      if (!committed.ok()) {
        (void)txn_manager_.Abort(txn);
        return committed;
      }
    }
  }
  return Status::Ok();
}

Status Database::Begin() {
  if (current_txn_ != nullptr) {
    return Status::InvalidArgument("a transaction is already active");
  }
  SIM_RETURN_IF_ERROR(EnsureMapper());
  current_txn_ = txn_manager_.Begin();
  return Status::Ok();
}

Status Database::Commit() {
  if (current_txn_ == nullptr) {
    return Status::InvalidArgument("no active transaction");
  }
  Status s = txn_manager_.Commit(current_txn_);
  if (!s.ok()) {
    // Durability failed; undo the transaction so memory and disk agree.
    (void)txn_manager_.Abort(current_txn_);
  }
  current_txn_ = nullptr;
  return s;
}

Status Database::Rollback() {
  if (current_txn_ == nullptr) {
    return Status::InvalidArgument("no active transaction");
  }
  Status s = txn_manager_.Abort(current_txn_);
  current_txn_ = nullptr;
  return s;
}

}  // namespace sim
