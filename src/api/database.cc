#include "api/database.h"

#include "check/plan_check.h"
#include "exec/physical_plan.h"
#include "parser/ddl_parser.h"
#include "parser/dml_parser.h"

namespace sim {

Database::Database(DatabaseOptions options) : options_(std::move(options)) {}

Database::~Database() {
  // Clean close. Skipped when a transaction is still open: its uncommitted
  // work must not become durable. Every step is best-effort — on failure
  // the WAL simply keeps its replay work for the next Open's recovery.
  if (wal_ == nullptr || current_txn_ != nullptr || pool_ == nullptr) return;
  if (!pool_->FlushAll().ok()) return;
  if (wal_->empty()) return;
  if (!wal_->AppendCommit().ok()) return;
  (void)wal_->Checkpoint(io_pager());
}

Result<std::unique_ptr<Database>> Database::Open(
    const DatabaseOptions& options) {
  auto db = std::unique_ptr<Database>(new Database(options));
  if (options.file_path.empty()) {
    db->pager_ = std::make_unique<MemPager>();
  } else {
    SIM_ASSIGN_OR_RETURN(std::unique_ptr<FilePager> pager,
                         FilePager::Open(options.file_path));
    db->pager_ = std::move(pager);
  }
  if (options.fault_injector != nullptr) {
    db->fault_pager_ = std::make_unique<FaultInjectingPager>(
        db->pager_.get(), options.fault_injector);
  }
  // Retry layer on top of the (possibly fault-injecting) pager: transient
  // failures are absorbed up to the policy's attempt budget before they
  // surface to the buffer pool.
  db->resilient_pager_ = std::make_unique<ResilientPager>(
      db->fault_pager_ != nullptr
          ? static_cast<Pager*>(db->fault_pager_.get())
          : db->pager_.get(),
      options.io_retry);
  if (!options.file_path.empty()) {
    // WAL mode: scan the log and replay anything a previous crash left
    // committed-but-unapplied before the first page is read.
    SIM_ASSIGN_OR_RETURN(
        db->wal_, WriteAheadLog::Open(options.file_path,
                                      options.fault_injector,
                                      options.io_retry));
    SIM_ASSIGN_OR_RETURN(db->recovered_pages_,
                         db->wal_->Recover(db->io_pager()));
  }
  db->pool_ = std::make_unique<BufferPool>(
      db->io_pager(), options.buffer_pool_frames, db->wal_.get());
  // Durability hook: a transaction is committed once its dirty pages and a
  // commit record are durable in the WAL. The in-place checkpoint is an
  // optimization and must NOT fail the commit — the data is already safe.
  Database* raw = db.get();
  db->txn_manager_.set_commit_hook([raw](Transaction*) -> Status {
    if (raw->wal_ == nullptr) return Status::Ok();
    SIM_RETURN_IF_ERROR(raw->pool_->FlushAll());
    SIM_RETURN_IF_ERROR(raw->wal_->AppendCommit());
    if (raw->wal_->size_bytes() > raw->options_.wal_checkpoint_bytes) {
      (void)raw->wal_->Checkpoint(raw->io_pager());
    }
    return Status::Ok();
  });
  return db;
}

Status Database::ExecuteDdl(std::string_view ddl_text) {
  if (mapper_ != nullptr) {
    return Status::NotSupported(
        "schema changes after data operations are not supported; define the "
        "full schema first");
  }
  SIM_ASSIGN_OR_RETURN(std::vector<DdlStatement> statements,
                       DdlParser::Parse(ddl_text, &dir_));
  for (DdlStatement& s : statements) {
    if (s.type_decl != nullptr) {
      SIM_RETURN_IF_ERROR(
          dir_.DefineType(s.type_decl->name, std::move(s.type_decl->type)));
    } else if (s.class_decl != nullptr) {
      SIM_RETURN_IF_ERROR(dir_.AddClass(std::move(*s.class_decl)));
    } else if (s.verify_decl != nullptr) {
      SIM_RETURN_IF_ERROR(dir_.AddVerify(std::move(*s.verify_decl)));
    } else if (s.view_decl != nullptr) {
      SIM_RETURN_IF_ERROR(dir_.AddView(std::move(*s.view_decl)));
    }
  }
  return dir_.Finalize();
}

Status Database::EnsureMapper() {
  if (mapper_ != nullptr) return Status::Ok();
  if (!dir_.finalized()) {
    SIM_RETURN_IF_ERROR(dir_.Finalize());
  }
  SIM_ASSIGN_OR_RETURN(PhysicalSchema phys,
                       PhysicalSchema::Build(dir_, options_.mapping));
  phys_ = std::make_unique<PhysicalSchema>(std::move(phys));
  SIM_ASSIGN_OR_RETURN(mapper_,
                       LucMapper::Create(&dir_, phys_.get(), pool_.get()));
  integrity_ = std::make_unique<IntegrityChecker>(&dir_, mapper_.get());
  SIM_RETURN_IF_ERROR(integrity_->Prepare());
  optimizer_ = std::make_unique<Optimizer>(mapper_.get());
  return Status::Ok();
}

Result<LucMapper*> Database::mapper() {
  SIM_RETURN_IF_ERROR(EnsureMapper());
  return mapper_.get();
}

Result<CheckReport> Database::Audit() {
  // Deliberately no EnsureMapper(): auditing must never change the
  // database, and a reopened file-backed database without a rebuilt
  // physical layer still gets the catalog + page-checksum layers.
  QueryContext qctx(options_.governor);
  InvariantChecker checker(&dir_, mapper_.get(), pool_.get(), io_pager());
  checker.set_query_context(&qctx);
  return checker.AuditAll();
}

Result<ResultSet> Database::ExecuteQuery(std::string_view dml) {
  SIM_RETURN_IF_ERROR(EnsureMapper());
  SIM_ASSIGN_OR_RETURN(StmtPtr stmt, DmlParser::ParseStatement(dml));
  if (stmt->kind == StmtKind::kCheck) {
    SIM_ASSIGN_OR_RETURN(CheckReport report, Audit());
    ResultSet rs;
    rs.columns = {"layer", "invariant", "object", "surrogate", "message"};
    for (const CheckError& e : report.errors) {
      Row row;
      row.values = {Value::Str(CheckLayerName(e.layer)),
                    Value::Str(e.invariant), Value::Str(e.object),
                    e.surrogate == kInvalidSurrogate
                        ? Value::Null()
                        : Value::Surrogate(e.surrogate),
                    Value::Str(e.message)};
      rs.rows.push_back(std::move(row));
    }
    return rs;
  }
  if (stmt->kind != StmtKind::kRetrieve) {
    return Status::InvalidArgument(
        "ExecuteQuery expects a Retrieve statement; use ExecuteUpdate");
  }
  const auto& retrieve = static_cast<const RetrieveStmt&>(*stmt);
  Binder binder(&dir_);
  SIM_ASSIGN_OR_RETURN(QueryTree qt, binder.BindRetrieve(retrieve));
  Executor exec(mapper_.get());
  QueryContext qctx(options_.governor);
  Result<ResultSet> rs = Status::Internal("query not dispatched");
  if (options_.use_optimizer) {
    SIM_ASSIGN_OR_RETURN(last_plan_, optimizer_->Optimize(qt));
    rs = exec.Run(qt, &last_plan_, &qctx);
  } else {
    last_plan_ = AccessPlan();
    rs = exec.Run(qt, nullptr, &qctx);
  }
  last_exec_stats_ = exec.last_stats();
  return rs;
}

struct Database::Cursor::Impl {
  // `qt` owns the nodes and bound expressions the operator tree references
  // (by node id and by stable heap pointer), so the members must stay
  // together and `qt` (and `qctx`, which `cx` points at) must be populated
  // before `cx` is built.
  QueryTree qt;
  PhysicalPlan plan;
  std::unique_ptr<QueryContext> qctx;
  std::unique_ptr<ExecContext> cx;
  bool open = false;
  bool done = false;
  // Sticky terminal status: once Next fails, every further Next returns
  // the same status without re-entering the operator tree.
  Status terminal = Status::Ok();
};

Database::Cursor::Cursor(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Database::Cursor::Cursor(Cursor&&) noexcept = default;
Database::Cursor& Database::Cursor::operator=(Cursor&&) noexcept = default;

Database::Cursor::~Cursor() {
  if (impl_ != nullptr) (void)Close();
}

const std::vector<std::string>& Database::Cursor::columns() const {
  return impl_->qt.target_labels;
}

bool Database::Cursor::structured() const {
  return impl_->qt.mode == OutputMode::kStructure;
}

Result<bool> Database::Cursor::Next(Row* row) {
  Impl* im = impl_.get();
  if (im == nullptr) return false;
  if (!im->terminal.ok()) return im->terminal;
  if (!im->open || im->done) return false;
  Result<bool> has = im->plan.root->Next(*im->cx, row);
  if (has.ok() && *has && im->qctx != nullptr) {
    Status charged = im->qctx->ChargeRows();
    if (!charged.ok()) has = charged;
  }
  if (!has.ok()) {
    im->terminal = has.status();
    (void)Close();
    return im->terminal;
  }
  if (*has) {
    ++im->cx->stats.rows_emitted;
  } else {
    im->done = true;
  }
  return *has;
}

void Database::Cursor::Cancel() {
  if (impl_ != nullptr && impl_->qctx != nullptr) {
    impl_->qctx->RequestCancel();
  }
}

Status Database::Cursor::Close() {
  Impl* im = impl_.get();
  if (im == nullptr || !im->open) return Status::Ok();
  im->open = false;
  return im->plan.root->Close(*im->cx);
}

ExecStats Database::Cursor::stats() const {
  return impl_ != nullptr && impl_->cx != nullptr ? impl_->cx->stats
                                                  : ExecStats();
}

QueryContext::Stats Database::Cursor::governor_stats() const {
  return impl_ != nullptr && impl_->qctx != nullptr ? impl_->qctx->stats()
                                                    : QueryContext::Stats();
}

Result<Database::Cursor> Database::OpenCursor(std::string_view dml) {
  SIM_RETURN_IF_ERROR(EnsureMapper());
  SIM_ASSIGN_OR_RETURN(StmtPtr stmt, DmlParser::ParseStatement(dml));
  if (stmt->kind != StmtKind::kRetrieve) {
    return Status::InvalidArgument("OpenCursor expects a Retrieve statement");
  }
  const auto& retrieve = static_cast<const RetrieveStmt&>(*stmt);
  Binder binder(&dir_);
  SIM_ASSIGN_OR_RETURN(QueryTree qt, binder.BindRetrieve(retrieve));
  auto impl = std::make_unique<Cursor::Impl>();
  if (options_.use_optimizer) {
    SIM_ASSIGN_OR_RETURN(last_plan_, optimizer_->Optimize(qt));
    SIM_ASSIGN_OR_RETURN(impl->plan,
                         PhysicalPlan::Build(qt, &last_plan_, mapper_.get()));
  } else {
    last_plan_ = AccessPlan();
    SIM_ASSIGN_OR_RETURN(impl->plan,
                         PhysicalPlan::Build(qt, nullptr, mapper_.get()));
  }
  SIM_RETURN_IF_ERROR(ValidatePlanOrError(impl->plan, qt));
  impl->qt = std::move(qt);
  if (options_.paranoid_checks) {
    impl->plan.root =
        std::make_unique<ProtocolCheck>(std::move(impl->plan.root));
  }
  impl->qctx = std::make_unique<QueryContext>(options_.governor);
  impl->cx = std::make_unique<ExecContext>(&impl->qt, mapper_.get(),
                                           impl->qctx.get());
  SIM_RETURN_IF_ERROR(impl->plan.root->Open(*impl->cx));
  impl->open = true;
  return Cursor(std::move(impl));
}

Result<std::string> Database::Explain(std::string_view dml) {
  SIM_RETURN_IF_ERROR(EnsureMapper());
  SIM_ASSIGN_OR_RETURN(StmtPtr stmt, DmlParser::ParseStatement(dml));
  if (stmt->kind != StmtKind::kRetrieve) {
    return Status::InvalidArgument("Explain expects a Retrieve statement");
  }
  const auto& retrieve = static_cast<const RetrieveStmt&>(*stmt);
  Binder binder(&dir_);
  SIM_ASSIGN_OR_RETURN(QueryTree qt, binder.BindRetrieve(retrieve));
  SIM_ASSIGN_OR_RETURN(AccessPlan plan, optimizer_->Optimize(qt));
  SIM_ASSIGN_OR_RETURN(PhysicalPlan pplan,
                       PhysicalPlan::Build(qt, &plan, mapper_.get()));
  return qt.DebugString() + plan.Describe() + "\n" + pplan.Describe(false);
}

Result<std::string> Database::ExplainAnalyze(std::string_view dml) {
  SIM_RETURN_IF_ERROR(EnsureMapper());
  SIM_ASSIGN_OR_RETURN(StmtPtr stmt, DmlParser::ParseStatement(dml));
  if (stmt->kind != StmtKind::kRetrieve) {
    return Status::InvalidArgument(
        "ExplainAnalyze expects a Retrieve statement");
  }
  const auto& retrieve = static_cast<const RetrieveStmt&>(*stmt);
  Binder binder(&dir_);
  SIM_ASSIGN_OR_RETURN(QueryTree qt, binder.BindRetrieve(retrieve));
  SIM_ASSIGN_OR_RETURN(last_plan_, optimizer_->Optimize(qt));
  SIM_ASSIGN_OR_RETURN(PhysicalPlan pplan,
                       PhysicalPlan::Build(qt, &last_plan_, mapper_.get()));
  SIM_RETURN_IF_ERROR(ValidatePlanOrError(pplan, qt));
  // Drain the pipeline so every operator has an actual row count.
  QueryContext qctx(options_.governor);
  ExecContext cx(&qt, mapper_.get(), &qctx);
  SIM_RETURN_IF_ERROR(pplan.root->Open(cx));
  Row row;
  while (true) {
    Result<bool> has = pplan.root->Next(cx, &row);
    if (!has.ok()) {
      (void)pplan.root->Close(cx);
      return has.status();
    }
    if (!*has) break;
    ++cx.stats.rows_emitted;
  }
  SIM_RETURN_IF_ERROR(pplan.root->Close(cx));
  last_exec_stats_ = cx.stats;
  return qt.DebugString() + last_plan_.Describe() + "\n" +
         pplan.Describe(true);
}

Result<int> Database::ExecuteUpdate(std::string_view dml) {
  if (read_only_) return ReadOnlyError();
  SIM_RETURN_IF_ERROR(EnsureMapper());
  SIM_ASSIGN_OR_RETURN(StmtPtr stmt, DmlParser::ParseStatement(dml));

  bool implicit_txn = current_txn_ == nullptr;
  Transaction* txn =
      implicit_txn ? txn_manager_.Begin() : current_txn_;
  size_t savepoint = txn->undo_depth();

  UpdateExecutor update(mapper_.get(), integrity_.get());
  Result<UpdateExecutor::UpdateResult> result = Status::Internal("statement not dispatched");
  switch (stmt->kind) {
    case StmtKind::kInsert:
      result = update.ExecuteInsert(static_cast<const InsertStmt&>(*stmt),
                                    txn);
      break;
    case StmtKind::kModify:
      result = update.ExecuteModify(static_cast<const ModifyStmt&>(*stmt),
                                    txn);
      break;
    case StmtKind::kDelete:
      result = update.ExecuteDelete(static_cast<const DeleteStmt&>(*stmt),
                                    txn);
      break;
    case StmtKind::kRetrieve:
    case StmtKind::kCheck:
      if (implicit_txn) SIM_RETURN_IF_ERROR(txn_manager_.Abort(txn));
      return Status::InvalidArgument(
          "ExecuteUpdate expects Insert/Modify/Delete; use ExecuteQuery");
  }
  if (!result.ok()) {
    // Statement-level rollback; the enclosing user transaction survives.
    // ENOSPC anywhere in the statement degrades the database to
    // read-only mode once the rollback has restored in-memory state.
    NoteIoStatus(result.status());
    if (implicit_txn) {
      SIM_RETURN_IF_ERROR(txn_manager_.Abort(txn));
    } else {
      SIM_RETURN_IF_ERROR(txn->RollbackTo(savepoint));
    }
    return result.status();
  }
  if (implicit_txn) {
    Status committed = txn_manager_.Commit(txn);
    if (!committed.ok()) {
      // Commit could not be made durable; roll the statement back so the
      // in-memory state matches what recovery will reconstruct.
      NoteIoStatus(committed);
      (void)txn_manager_.Abort(txn);
      return committed;
    }
  }
  if (options_.paranoid_checks) {
    SIM_ASSIGN_OR_RETURN(CheckReport report, Audit());
    if (!report.clean()) {
      return Status::Internal("paranoid audit after update statement: " +
                              report.errors.front().ToString());
    }
  }
  return result->entities_affected;
}

Status Database::ExecuteScript(std::string_view dml_script) {
  if (read_only_) return ReadOnlyError();
  SIM_ASSIGN_OR_RETURN(std::vector<StmtPtr> statements,
                       DmlParser::ParseScript(dml_script));
  for (const StmtPtr& stmt : statements) {
    if (stmt->kind == StmtKind::kRetrieve || stmt->kind == StmtKind::kCheck) {
      return Status::InvalidArgument(
          "ExecuteScript accepts update statements only");
    }
  }
  // Re-execute through the single-statement path to get per-statement
  // atomicity; statements were already validated to parse.
  SIM_RETURN_IF_ERROR(EnsureMapper());
  for (const StmtPtr& stmt : statements) {
    bool implicit_txn = current_txn_ == nullptr;
    Transaction* txn = implicit_txn ? txn_manager_.Begin() : current_txn_;
    size_t savepoint = txn->undo_depth();
    UpdateExecutor update(mapper_.get(), integrity_.get());
    Result<UpdateExecutor::UpdateResult> result = Status::Internal("statement not dispatched");
    switch (stmt->kind) {
      case StmtKind::kInsert:
        result = update.ExecuteInsert(static_cast<const InsertStmt&>(*stmt),
                                      txn);
        break;
      case StmtKind::kModify:
        result = update.ExecuteModify(static_cast<const ModifyStmt&>(*stmt),
                                      txn);
        break;
      case StmtKind::kDelete:
        result = update.ExecuteDelete(static_cast<const DeleteStmt&>(*stmt),
                                      txn);
        break;
      default:
        break;
    }
    if (!result.ok()) {
      NoteIoStatus(result.status());
      if (implicit_txn) {
        SIM_RETURN_IF_ERROR(txn_manager_.Abort(txn));
      } else {
        SIM_RETURN_IF_ERROR(txn->RollbackTo(savepoint));
      }
      return result.status();
    }
    if (implicit_txn) {
      Status committed = txn_manager_.Commit(txn);
      if (!committed.ok()) {
        NoteIoStatus(committed);
        (void)txn_manager_.Abort(txn);
        return committed;
      }
    }
  }
  return Status::Ok();
}

Status Database::Begin() {
  if (read_only_) return ReadOnlyError();
  if (current_txn_ != nullptr) {
    return Status::InvalidArgument("a transaction is already active");
  }
  SIM_RETURN_IF_ERROR(EnsureMapper());
  current_txn_ = txn_manager_.Begin();
  return Status::Ok();
}

Status Database::Commit() {
  if (current_txn_ == nullptr) {
    return Status::InvalidArgument("no active transaction");
  }
  Status s = txn_manager_.Commit(current_txn_);
  if (!s.ok()) {
    // Durability failed; undo the transaction so memory and disk agree.
    NoteIoStatus(s);
    (void)txn_manager_.Abort(current_txn_);
  }
  current_txn_ = nullptr;
  return s;
}

Status Database::Rollback() {
  if (current_txn_ == nullptr) {
    return Status::InvalidArgument("no active transaction");
  }
  Status s = txn_manager_.Abort(current_txn_);
  current_txn_ = nullptr;
  return s;
}

}  // namespace sim
