#include "api/database.h"

#include <chrono>
#include <cstdio>
#include <functional>

#include "check/plan_check.h"
#include "exec/physical_plan.h"
#include "luc/rehydrate.h"
#include "parser/ddl_parser.h"
#include "parser/dml_parser.h"

namespace sim {

Database::Database(DatabaseOptions options) : options_(std::move(options)) {}

// RAII per-statement instrumentation. Constructed at the top of each
// Execute* entry point: allocates the statement id, opens the top-level
// "statement" span (recorded on destruction), and on destruction bumps
// the statement counters and latency histogram. Failure is the default —
// call MarkOk() on the success path.
class Database::StmtObs {
 public:
  StmtObs(Database* db, obs::Counter* kind_counter, std::string_view text)
      : db_(db),
        kind_counter_(kind_counter),
        stmt_(db->trace_ != nullptr ? db->trace_->BeginStatement() : 0),
        span_(db->trace_.get(), stmt_, "statement") {
    span_.SetDetail(std::string(text));
  }
  StmtObs(const StmtObs&) = delete;
  StmtObs& operator=(const StmtObs&) = delete;
  ~StmtObs() {
    if (!db_->options_.obs.enabled) return;
    db_->m_stmt_total_->Increment();
    kind_counter_->Increment();
    if (!ok_) db_->m_stmt_errors_->Increment();
    db_->m_stmt_latency_us_->Observe(span_.ElapsedUs());
  }

  uint64_t stmt() const { return stmt_; }
  obs::TraceLog* log() const { return db_->trace_.get(); }
  void MarkOk() {
    ok_ = true;
    span_.MarkOk();
  }

 private:
  Database* db_;
  obs::Counter* kind_counter_;
  uint64_t stmt_;
  obs::Span span_;
  bool ok_ = false;
};

void Database::RegisterMetrics() {
  const BufferPool::Counters& pc = pool_->counters();
  metrics_.RegisterCounterView("simdb_pool_logical_fetches",
                               "Buffer pool fetches of existing pages "
                               "(hits + misses).",
                               &pc.logical_fetches);
  metrics_.RegisterCounterView("simdb_pool_misses",
                               "Buffer pool fetches served by the pager.",
                               &pc.misses);
  metrics_.RegisterCounterView("simdb_pool_evictions",
                               "Frames reclaimed from resident pages.",
                               &pc.evictions);
  metrics_.RegisterCounterView("simdb_pool_dirty_writebacks",
                               "Dirty frames written back (eviction, "
                               "FlushAll and InvalidateAll).",
                               &pc.dirty_writebacks);
  metrics_.RegisterCounterView("simdb_pool_allocations",
                               "Pages born in the pool via New.",
                               &pc.allocations);
  m_stmt_total_ =
      metrics_.GetCounter("simdb_stmt_total", "Statements executed.");
  m_stmt_errors_ = metrics_.GetCounter("simdb_stmt_errors_total",
                                       "Statements that returned an error.");
  m_stmt_queries_ = metrics_.GetCounter("simdb_stmt_queries_total",
                                        "Retrieve / CHECK / SHOW statements.");
  m_stmt_updates_ = metrics_.GetCounter(
      "simdb_stmt_updates_total", "Insert / Modify / Delete statements.");
  m_stmt_ddl_ =
      metrics_.GetCounter("simdb_stmt_ddl_total", "DDL batches installed.");
  m_stmt_latency_us_ = metrics_.GetHistogram(
      "simdb_stmt_latency_us", "Statement wall time in microseconds.",
      obs::Histogram::DefaultLatencyBoundsUs());
  m_exec_combinations_ =
      metrics_.GetCounter("simdb_exec_combinations_total",
                          "Combinations examined by the query driver.");
  m_exec_rows_ = metrics_.GetCounter("simdb_exec_rows_total",
                                     "Rows delivered by the query driver.");
  m_gov_checks_ = metrics_.GetCounter(
      "simdb_governor_checks_total", "Cooperative governor checkpoints.");
  m_gov_trips_ = metrics_.GetCounter(
      "simdb_governor_trips_total",
      "Statements stopped by a governor limit or cancellation.");
  // Plain-struct component stats (RetryStats, WAL Stats) are sampled
  // through callbacks at scrape time; the structs stay the source of
  // truth for their historical accessors.
  auto retry_field = [this](RelaxedCounter RetryStats::*field) {
    return [this, field]() {
      uint64_t n = (resilient_pager_->retry_stats().*field).value();
      if (wal_ != nullptr) n += (wal_->retry_stats().*field).value();
      return n;
    };
  };
  metrics_.RegisterCallback("simdb_io_retry_attempts_total",
                            "I/O operations attempted (pager + WAL).",
                            retry_field(&RetryStats::attempts));
  metrics_.RegisterCallback("simdb_io_retry_retries_total",
                            "Re-attempts after transient I/O failures.",
                            retry_field(&RetryStats::retries));
  metrics_.RegisterCallback("simdb_io_retry_giveups_total",
                            "Transient failures that outlasted the budget.",
                            retry_field(&RetryStats::giveups));
  metrics_.RegisterCallback("simdb_io_retry_backoff_us_total",
                            "Total backoff slept before retries, in "
                            "microseconds.",
                            retry_field(&RetryStats::backoff_us_total));
  auto wal_field = [this](uint64_t WriteAheadLog::Stats::*field) {
    return [this, field]() {
      return wal_ != nullptr ? wal_->stats().*field : 0;
    };
  };
  metrics_.RegisterCallback("simdb_wal_pages_appended_total",
                            "Page images appended to the WAL.",
                            wal_field(&WriteAheadLog::Stats::pages_appended));
  metrics_.RegisterCallback("simdb_wal_commits_total",
                            "Commit records appended to the WAL.",
                            wal_field(&WriteAheadLog::Stats::commits));
  metrics_.RegisterCallback("simdb_wal_checkpoints_total",
                            "WAL checkpoints into the database file.",
                            wal_field(&WriteAheadLog::Stats::checkpoints));
  metrics_.RegisterCallback("simdb_wal_recovered_pages_total",
                            "Pages replayed from the WAL by recovery.",
                            wal_field(&WriteAheadLog::Stats::recovered_pages));
  metrics_.RegisterCallback("simdb_wal_size_bytes",
                            "Current WAL length in bytes.", [this]() {
                              return wal_ != nullptr ? wal_->size_bytes() : 0;
                            });
  // Crash-recovery outcome of this Open, sampled from plain members at
  // scrape time (recovery itself runs after metric registration).
  metrics_.RegisterCallback("simdb_recovery_pages_replayed",
                            "Pages replayed from the WAL by this Open's "
                            "recovery.",
                            [this]() { return recovered_pages_; });
  metrics_.RegisterCallback("simdb_recovery_meta_records",
                            "Committed metadata records (DDL + snapshot) "
                            "replayed by this Open's recovery.",
                            [this]() { return recovered_meta_records_; });
  metrics_.RegisterCallback("simdb_recovery_us",
                            "Wall time this Open spent in crash recovery, "
                            "in microseconds.",
                            [this]() { return recovery_us_; });
  m_group_batch_ = metrics_.GetHistogram(
      "simdb_group_commit_batch_size",
      "Commit tickets coalesced into one WAL fsync by the group-commit "
      "durability thread.",
      {1, 2, 4, 8, 16, 32, 64});
  // LUC mapper update-path work and optimizer planning activity. Both
  // components are built lazily (EnsureMapper), so the callbacks must
  // tolerate sampling a database that has run no data statement yet.
  // Scrape callbacks must not read mapper_/optimizer_ (unique_ptrs the
  // execution thread assigns lazily); they read the scrape_* pointers,
  // which are release-published only once the engine is constructed.
  auto luc_field = [this](RelaxedCounter LucMapper::Stats::*field) {
    return [this, field]() -> uint64_t {
      const LucMapper* m = scrape_mapper_.load(std::memory_order_acquire);
      return m != nullptr ? (m->stats().*field).value() : 0;
    };
  };
  metrics_.RegisterCallback("simdb_luc_entities_created_total",
                            "Entities created through the LUC mapper.",
                            luc_field(&LucMapper::Stats::entities_created));
  metrics_.RegisterCallback("simdb_luc_fields_set_total",
                            "Single-valued DVA writes.",
                            luc_field(&LucMapper::Stats::fields_set));
  metrics_.RegisterCallback("simdb_luc_mv_changes_total",
                            "Multi-valued DVA adds and removes.",
                            luc_field(&LucMapper::Stats::mv_changes));
  metrics_.RegisterCallback("simdb_luc_eva_changes_total",
                            "EVA relationship instance adds and removes.",
                            luc_field(&LucMapper::Stats::eva_changes));
  metrics_.RegisterCallback("simdb_luc_mutations_total",
                            "All data mutations (the optimizer's "
                            "staleness signal).",
                            [this]() -> uint64_t {
                              const LucMapper* m = scrape_mapper_.load(
                                  std::memory_order_acquire);
                              return m != nullptr ? m->mutation_count() : 0;
                            });
  metrics_.RegisterCallback("simdb_opt_plans_total",
                            "Access plans produced by the optimizer.",
                            [this]() -> uint64_t {
                              const Optimizer* o = scrape_optimizer_.load(
                                  std::memory_order_acquire);
                              return o != nullptr ? o->plans_made() : 0;
                            });
  metrics_.RegisterCallback("simdb_opt_stats_refreshes_total",
                            "Statistics snapshots re-collected for "
                            "planning.",
                            [this]() -> uint64_t {
                              const Optimizer* o = scrape_optimizer_.load(
                                  std::memory_order_acquire);
                              return o != nullptr ? o->stats_refreshes() : 0;
                            });
  // Corruption containment & repair (DESIGN.md §13). The degraded gauge is
  // the single "is service reduced" signal: disk-full read-only mode from
  // the I/O latch, or at least one quarantined page whose records answer
  // with DataLoss.
  metrics_.RegisterGaugeCallback(
      "simdb_degraded",
      "1 while service is degraded: read-only after disk-full, or at least "
      "one page quarantined.",
      [this]() -> uint64_t {
        return read_only_.load() || !quarantine_.empty() ? 1 : 0;
      });
  metrics_.RegisterGaugeCallback(
      "simdb_quarantined_pages",
      "Pages currently quarantined for checksum failure; their records read "
      "as DataLoss until REPAIR DATABASE.",
      [this]() -> uint64_t { return quarantine_.size(); });
  const Scrubber::Counters& sc = scrubber_->counters();
  metrics_.RegisterCounterView("simdb_scrub_passes_total",
                               "Scrub passes completed (background ticks "
                               "and on-demand sweeps).",
                               &sc.passes);
  metrics_.RegisterCounterView("simdb_scrub_pages_scanned_total",
                               "Pages whose checksum the scrubber verified.",
                               &sc.pages_scanned);
  metrics_.RegisterCounterView("simdb_scrub_errors_found_total",
                               "Checksum or record-codec failures the "
                               "scrubber detected.",
                               &sc.errors_found);
  metrics_.RegisterCounterView("simdb_scrub_pages_quarantined_total",
                               "Pages the scrubber placed in quarantine.",
                               &sc.pages_quarantined);
  // Semantic lock manager (DESIGN.md §14). Waits and deadlocks are the
  // contention signals; acquisitions put them in proportion.
  const LockManager::Stats& ls = lock_manager_.stats();
  metrics_.RegisterCounterView("simdb_lock_acquisitions_total",
                               "Class/record locks granted.",
                               &ls.acquisitions);
  metrics_.RegisterCounterView("simdb_lock_waits_total",
                               "Acquisitions that blocked on a conflicting "
                               "holder.",
                               &ls.waits);
  metrics_.RegisterCounterView("simdb_lock_deadlocks_total",
                               "Acquisitions aborted to break a wait cycle.",
                               &ls.deadlocks);
  metrics_.RegisterCounterView("simdb_lock_timeouts_total",
                               "Acquisitions that exhausted the statement "
                               "deadline while waiting.",
                               &ls.timeouts);
  m_dropped_status_ = metrics_.GetCounter(
      "simdb_dropped_status_total",
      "Statuses discarded unobserved (cursor destroyed with a failing "
      "close).");
}

void Database::ObserveExec(const ExecStats& stats, const QueryContext& qctx) {
  if (!options_.obs.enabled) return;
  m_exec_combinations_->Add(stats.combinations_examined);
  m_exec_rows_->Add(stats.rows_emitted);
  m_gov_checks_->Add(qctx.stats().checks);
  if (!qctx.terminal().ok()) m_gov_trips_->Increment();
}

Database::~Database() {
  // The background scrubber reads the database file and the WAL; join it
  // before any teardown (also covers the early returns below).
  if (scrubber_ != nullptr) scrubber_->Stop();
  // Clean close. Skipped when a transaction is still open: its uncommitted
  // work must not become durable. Every step is best-effort — on failure
  // the WAL simply keeps its replay work for the next Open's recovery.
  if (wal_ == nullptr || current_txn_ != nullptr || pool_ == nullptr) return;
  if (!pool_->FlushAll().ok()) return;
  std::string snapshot;
  if (mapper_ != nullptr) {
    Result<std::string> snap = MapperRehydrator::Snapshot(*mapper_);
    if (!snap.ok()) return;
    snapshot = std::move(*snap);
    if (!wal_->AppendMetaSnapshot(snapshot).ok()) return;
  }
  if (wal_->empty()) return;
  if (!wal_->AppendCommit().ok()) return;
  // Checkpoint down to the metadata baseline: the database file absorbs
  // the committed pages and the log keeps only what the next Open needs
  // to rebuild catalog + mapper.
  // Close is best-effort, but a disk-full checkpoint failure must still
  // flip the read-only latch so a racing reader of read_only() agrees
  // with what the next Open will see.
  Status cp = ddl_history_.empty()
                  ? wal_->Checkpoint(io_pager())
                  : wal_->Checkpoint(io_pager(), ddl_history_, snapshot);
  NoteIoStatus(cp);
}

Result<std::unique_ptr<Database>> Database::Open(
    const DatabaseOptions& options) {
  auto db = std::unique_ptr<Database>(new Database(options));
  if (options.file_path.empty()) {
    db->pager_ = std::make_unique<MemPager>();
  } else {
    SIM_ASSIGN_OR_RETURN(std::unique_ptr<FilePager> pager,
                         FilePager::Open(options.file_path));
    db->pager_ = std::move(pager);
  }
  if (options.fault_injector != nullptr) {
    db->fault_pager_ = std::make_unique<FaultInjectingPager>(
        db->pager_.get(), options.fault_injector);
  }
  // Retry layer on top of the (possibly fault-injecting) pager: transient
  // failures are absorbed up to the policy's attempt budget before they
  // surface to the buffer pool.
  db->resilient_pager_ = std::make_unique<ResilientPager>(
      db->fault_pager_ != nullptr
          ? static_cast<Pager*>(db->fault_pager_.get())
          : db->pager_.get(),
      options.io_retry);
  if (!options.file_path.empty()) {
    // WAL mode: scan the log and replay anything a previous crash left
    // committed-but-unapplied before the first page is read.
    auto t0 = std::chrono::steady_clock::now();
    SIM_ASSIGN_OR_RETURN(
        db->wal_, WriteAheadLog::Open(options.file_path,
                                      options.fault_injector,
                                      options.io_retry));
    SIM_ASSIGN_OR_RETURN(db->recovered_pages_,
                         db->wal_->Recover(db->io_pager()));
    if (!db->wal_->recovered_quarantine().empty()) {
      // Containment survives the crash: reinstate the bad-page registry
      // the log carried. A malformed payload is dropped — the rot is
      // still on the media, so the next read or scrub re-quarantines it.
      Status loaded = db->quarantine_.Load(db->wal_->recovered_quarantine());
      if (!loaded.ok() && loaded.code() != StatusCode::kCorruption) {
        return loaded;
      }
    }
    db->recovery_us_ += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
  db->pool_ = std::make_unique<BufferPool>(
      db->io_pager(), options.buffer_pool_frames, db->wal_.get());
  db->pool_->set_quarantine(&db->quarantine_);
  db->scrubber_ = std::make_unique<Scrubber>(&db->quarantine_);
  if (options.obs.enabled) {
    db->trace_ = std::make_unique<obs::TraceLog>(options.obs);
  }
  db->RegisterMetrics();
  if (db->wal_ != nullptr) {
    // Self-contained crash recovery, phase 2: reinstall the catalog from
    // the logged DDL and rehydrate the mapper from the logged snapshot,
    // so the reopened database is queryable without re-running anything.
    SIM_RETURN_IF_ERROR(db->RecoverMetadata());
    if (options.group_commit) {
      db->wal_->StartGroupCommit(db->m_group_batch_);
    }
  }
  // Durability hook: a transaction is committed once its dirty pages, a
  // fresh mapper bootstrap snapshot and a commit record are durable in the
  // WAL. Runs under commit_mu_ (from CommitBegin inside the committer's
  // critical section); the appended sequence ends with a commit ticket the
  // committer awaits AFTER releasing commit_mu_, so concurrent writers'
  // fsyncs coalesce in the group-commit thread. The threshold checkpoint
  // happens later (MaybeCheckpoint), once the ticket is durable.
  Database* raw = db.get();
  db->txn_manager_.set_commit_hook([raw](Transaction*) -> Status {
    if (raw->wal_ == nullptr) {
      raw->pending_ticket_ = 0;
      return Status::Ok();
    }
    // Images + snapshot + ticket form one atomic commit sequence in the
    // log: a group-commit frame must never cut between them, or recovery
    // could pair these pages with the previous mapper snapshot.
    raw->wal_->BeginCommitSequence();
    Status s = raw->pool_->FlushAll();
    std::string snapshot;
    if (s.ok() && raw->mapper_ != nullptr) {
      // The bootstrap state (heap page lists, index roots, next
      // surrogate) drifts with every commit; each commit record must be
      // preceded by the snapshot that matches it.
      Result<std::string> snap = MapperRehydrator::Snapshot(*raw->mapper_);
      if (snap.ok()) {
        snapshot = std::move(*snap);
        s = raw->wal_->AppendMetaSnapshot(snapshot);
      } else {
        s = snap.status();
      }
    }
    uint64_t ticket = 0;
    if (s.ok()) s = raw->wal_->AppendCommitBegin(&ticket);
    raw->wal_->EndCommitSequence();
    SIM_RETURN_IF_ERROR(s);
    raw->pending_ticket_ = ticket;
    raw->pending_snapshot_ = std::move(snapshot);
    return Status::Ok();
  });
  if (options.background_scrub && !options.file_path.empty()) {
    db->scrubber_->Start(options.file_path, db->wal_.get(),
                         options.scrub_interval_ms,
                         options.scrub_pages_per_tick);
  }
  return db;
}

Status Database::InstallDdl(std::string_view ddl_text) {
  SIM_ASSIGN_OR_RETURN(std::vector<DdlStatement> statements,
                       DdlParser::Parse(ddl_text, &dir_));
  for (DdlStatement& s : statements) {
    if (s.type_decl != nullptr) {
      SIM_RETURN_IF_ERROR(
          dir_.DefineType(s.type_decl->name, std::move(s.type_decl->type)));
    } else if (s.class_decl != nullptr) {
      SIM_RETURN_IF_ERROR(dir_.AddClass(std::move(*s.class_decl)));
    } else if (s.verify_decl != nullptr) {
      SIM_RETURN_IF_ERROR(dir_.AddVerify(std::move(*s.verify_decl)));
    } else if (s.view_decl != nullptr) {
      SIM_RETURN_IF_ERROR(dir_.AddView(std::move(*s.view_decl)));
    }
  }
  return dir_.Finalize();
}

Status Database::ExecuteDdl(std::string_view ddl_text) {
  // init_mu_ pins the schema-freeze decision: EnsureMapper builds the
  // physical mapping under the same latch, so DDL can never interleave
  // with the first data statement.
  MutexLock init(init_mu_);
  if (mapper_ != nullptr) {
    return Status::FailedPrecondition(
        "schema is frozen: the physical mapping was built at the first data "
        "operation; define the full schema before any data statement "
        "(schema evolution requires a new database)");
  }
  StmtObs sobs(this, m_stmt_ddl_, ddl_text);
  {
    obs::Span span(sobs.log(), sobs.stmt(), "parse");
    SIM_RETURN_IF_ERROR(InstallDdl(ddl_text));
    span.MarkOk();
  }
  ddl_history_.emplace_back(ddl_text);
  if (wal_ != nullptr) {
    // The catalog is durable only through the log: append the batch
    // verbatim and commit, so a crash one instruction later already
    // reopens with this schema. Verbatim matters — replaying the same
    // text reproduces the same class codes the record bytes are tagged
    // with.
    Status logged = wal_->AppendMetaDdl(ddl_text);
    if (logged.ok()) logged = wal_->AppendCommit();
    if (!logged.ok()) {
      NoteIoStatus(logged);
      return logged;
    }
  }
  sobs.MarkOk();
  return Status::Ok();
}

Status Database::RecoverMetadata() {
  recovered_meta_records_ = wal_->stats().recovered_meta_records;
  const std::vector<std::string>& ddl = wal_->recovered_ddl();
  const std::string& snapshot = wal_->recovered_snapshot();
  if (ddl.empty() && snapshot.empty()) return Status::Ok();
  if (ddl.empty()) {
    return Status::Internal(
        "WAL carries a mapper snapshot but no DDL; the log is inconsistent");
  }
  auto t0 = std::chrono::steady_clock::now();
  for (const std::string& text : ddl) {
    Status s = InstallDdl(text);
    if (!s.ok()) {
      return Status::Internal("recovery failed replaying logged DDL: " +
                              s.ToString());
    }
  }
  ddl_history_ = ddl;
  if (!snapshot.empty()) {
    SIM_ASSIGN_OR_RETURN(PhysicalSchema phys,
                         PhysicalSchema::Build(dir_, options_.mapping));
    phys_ = std::make_unique<PhysicalSchema>(std::move(phys));
    SIM_ASSIGN_OR_RETURN(mapper_,
                         MapperRehydrator::Rehydrate(&dir_, phys_.get(),
                                                     pool_.get(), snapshot));
    integrity_ = std::make_unique<IntegrityChecker>(&dir_, mapper_.get());
    SIM_RETURN_IF_ERROR(integrity_->Prepare());
    optimizer_ = std::make_unique<Optimizer>(mapper_.get());
    lock_manager_.SetDirectory(&dir_);
    // Recovery runs inside Open (no scrapers exist yet), but keep the
    // invariant that scrape_* tracks mapper_/optimizer_ whenever set.
    scrape_mapper_.store(mapper_.get(), std::memory_order_release);
    scrape_optimizer_.store(optimizer_.get(), std::memory_order_release);
  }
  // Seal the log: one atomic rewrite leaves exactly the reinstalled
  // metadata as the new baseline. Until this succeeds the old log stays
  // on disk, so a crash mid-recovery just replays the same state again.
  SIM_RETURN_IF_ERROR(wal_->ResetWithBaseline(ddl_history_, snapshot));
  if (options_.recovery_audit && mapper_ != nullptr) {
    // Open is single-threaded: no locks needed for the recovery audit.
    SIM_ASSIGN_OR_RETURN(CheckReport report, AuditLocked());
    // Findings on a degraded database are expected, not fatal: rotted
    // pages (quarantined before the crash, or auto-quarantined just now
    // when the audit's heap scans touched them) answer with DataLoss and
    // REPAIR DATABASE can salvage. Refusing to open would turn contained
    // media damage into a full outage (DESIGN.md §13).
    if (!report.clean() && quarantine_.empty()) {
      return Status::Internal(
          "post-recovery audit found an inconsistency: " +
          report.errors.front().ToString());
    }
  }
  recovery_us_ += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return Status::Ok();
}

Status Database::EnsureMapper() {
  // Fast path: once published, the physical layer never changes, so the
  // acquire load pairs with the release store below and every later read
  // of mapper_/optimizer_/integrity_ on this thread is safe unlatched.
  if (scrape_mapper_.load(std::memory_order_acquire) != nullptr) {
    return Status::Ok();
  }
  MutexLock init(init_mu_);
  if (mapper_ != nullptr) return Status::Ok();
  if (!dir_.finalized()) {
    SIM_RETURN_IF_ERROR(dir_.Finalize());
  }
  SIM_ASSIGN_OR_RETURN(PhysicalSchema phys,
                       PhysicalSchema::Build(dir_, options_.mapping));
  phys_ = std::make_unique<PhysicalSchema>(std::move(phys));
  SIM_ASSIGN_OR_RETURN(mapper_,
                       LucMapper::Create(&dir_, phys_.get(), pool_.get()));
  integrity_ = std::make_unique<IntegrityChecker>(&dir_, mapper_.get());
  SIM_RETURN_IF_ERROR(integrity_->Prepare());
  optimizer_ = std::make_unique<Optimizer>(mapper_.get());
  // The lock manager expands covers through the now-final subclass DAG.
  lock_manager_.SetDirectory(&dir_);
  // Publish for concurrent metrics scrapes AND for EnsureMapper's own
  // fast path, only now that both engines are fully constructed: the
  // release stores pair with the acquire loads above and in the scrape
  // callbacks registered by RegisterMetrics.
  scrape_mapper_.store(mapper_.get(), std::memory_order_release);
  scrape_optimizer_.store(optimizer_.get(), std::memory_order_release);
  return Status::Ok();
}

Result<LucMapper*> Database::mapper() {
  SIM_RETURN_IF_ERROR(EnsureMapper());
  return mapper_.get();
}

std::vector<std::string> Database::WriteLockSet(
    const std::string& class_name) const {
  std::vector<std::string> out = {class_name};
  Result<std::string> base = dir_.BaseOf(class_name);
  if (!base.ok()) return out;
  std::vector<std::string> family = {*base};
  Result<std::vector<std::string>> desc = dir_.DescendantsOf(*base);
  if (desc.ok()) {
    family.insert(family.end(), desc->begin(), desc->end());
  }
  // Widen across EVAs: maintained inverses write into the range class's
  // units, FK-EVA removal rewrites owner records of other families, and
  // clustered inserts land on pages adopted from EVA-related units. One
  // hop suffices — cascades clear fields in neighbor families but never
  // delete entities there, so no second-order footprint exists.
  for (const std::string& member : family) {
    Result<std::vector<DirectoryManager::ResolvedAttr>> attrs =
        dir_.AllAttributes(member);
    if (!attrs.ok()) continue;
    for (const DirectoryManager::ResolvedAttr& ra : *attrs) {
      if (ra.attr != nullptr && ra.attr->is_eva()) {
        out.push_back(ra.attr->range_class);
      }
    }
  }
  return out;
}

Status Database::AcquireReadLocks(const QueryTree& qt, QueryContext* qctx,
                                  std::unique_ptr<LockManager::Scope>* own) {
  std::vector<std::string> classes;
  for (const QtNode& n : qt.nodes) {
    if (!n.class_name.empty()) classes.push_back(n.class_name);
  }
  if (classes.empty()) return Status::Ok();
  LockManager::Scope* scope = nullptr;
  {
    MutexLock session(session_mu_);
    // Only the transaction's own thread reads through its scope; a
    // foreign reader gets a fresh scope and thus waits on the
    // transaction's X locks instead of seeing uncommitted writes.
    if (current_txn_ != nullptr &&
        txn_thread_ == std::this_thread::get_id()) {
      scope = txn_scope_.get();
    }
  }
  if (scope == nullptr) {
    if (*own == nullptr) *own = lock_manager_.NewScope();
    scope = own->get();
  }
  return lock_manager_.AcquireClasses(scope, classes,
                                      LockManager::Mode::kShared, qctx);
}

Result<CheckReport> Database::AuditLocked() {
  // Deliberately no EnsureMapper(): auditing must never change the
  // database, and a reopened file-backed database without a rebuilt
  // physical layer still gets the catalog + page-checksum layers.
  QueryContext qctx(options_.governor);
  InvariantChecker checker(&dir_, mapper_.get(), pool_.get(), io_pager());
  checker.set_query_context(&qctx);
  // Per-layer audit spans; stmt 0 = not tied to a DML statement (the
  // CHECK DATABASE path additionally wraps this in its own spans).
  checker.set_trace(trace_.get(), 0);
  return checker.AuditAll();
}

Result<CheckReport> Database::Audit() {
  // The audit reads every extent and structure; S-everything excludes
  // writers while letting concurrent readers keep running. Inside an
  // explicit transaction the txn scope (which may hold X) absorbs the S
  // set — a scope never conflicts with itself.
  QueryContext qctx(options_.governor);
  LockManager::Scope* scope = nullptr;
  {
    MutexLock session(session_mu_);
    if (current_txn_ != nullptr &&
        txn_thread_ == std::this_thread::get_id()) {
      scope = txn_scope_.get();
    }
  }
  std::unique_ptr<LockManager::Scope> own;
  if (scope == nullptr) {
    own = lock_manager_.NewScope();
    scope = own.get();
  }
  SIM_RETURN_IF_ERROR(lock_manager_.AcquireAllClasses(scope, &qctx));
  return AuditLocked();
}

Result<Scrubber::Report> Database::Scrub() {
  // S-everything: the flush below must not race writer apply, and the
  // durable bytes being verified must be a statement boundary.
  QueryContext qctx(options_.governor);
  std::unique_ptr<LockManager::Scope> scope = lock_manager_.NewScope();
  SIM_RETURN_IF_ERROR(lock_manager_.AcquireAllClasses(scope.get(), &qctx));
  return ScrubLocked();
}

Result<Scrubber::Report> Database::ScrubLocked() {
  // The scrubber reads the durable file directly (it bypasses the buffer
  // pool so rot on media is seen, not masked by cached frames); flush
  // first so it verifies current content. Detection must keep working
  // after disk-full, so a kDiskFull flush degrades to scrubbing whatever
  // IS durable instead of failing.
  Status flushed = pool_->FlushAll();
  if (!flushed.ok()) {
    NoteIoStatus(flushed);
    if (flushed.code() != StatusCode::kDiskFull) return flushed;
  }
  std::vector<PageId> heap_pages;
  if (mapper_ != nullptr) heap_pages = mapper_->HeapPages();
  Scrubber::Report rep;
  SIM_RETURN_IF_ERROR(
      scrubber_->ScrubPages(io_pager(), wal_.get(), heap_pages, &rep));
  return rep;
}

Result<Database::RepairResult> Database::Repair() {
  {
    MutexLock session(session_mu_);
    if (current_txn_ != nullptr) {
      return Status::InvalidArgument(
          "REPAIR DATABASE cannot run inside an explicit transaction");
    }
  }
  if (read_only_) return ReadOnlyError();
  SIM_RETURN_IF_ERROR(EnsureMapper());
  // Exclusive access to every family: the repairer rewrites pages and
  // rebuilds derived structures behind the public API's back, so neither
  // readers nor writers may run concurrently.
  QueryContext qctx(options_.governor);
  std::unique_ptr<LockManager::Scope> scope = lock_manager_.NewScope();
  SIM_RETURN_IF_ERROR(lock_manager_.AcquireClasses(
      scope.get(), dir_.class_names(), LockManager::Mode::kExclusive, &qctx));
  RepairResult res;
  // Detect: a full sweep finds rot no read has touched yet, so the
  // repairer never trusts a page this pass has not verified.
  SIM_ASSIGN_OR_RETURN(res.scrub, ScrubLocked());
  // Contain → repair: salvage survivors, reformat the quarantined pages,
  // rebuild every derived structure from the base records.
  Repairer repairer(mapper_.get(), pool_.get(), io_pager(), wal_.get(),
                    &quarantine_);
  SIM_RETURN_IF_ERROR(repairer.Run(&res.report));
  // Durability epilogue. The closing audit reads the durable file
  // directly, so the repair's page images must be checkpointed into it,
  // not just logged — and the (now empty) quarantine registry must be the
  // one recovery would reinstate after a crash.
  Status step = pool_->FlushAll();
  if (step.ok() && wal_ != nullptr) {
    step = wal_->AppendMetaQuarantine(quarantine_.Encode());
    std::string snapshot;
    if (step.ok()) {
      Result<std::string> snap = MapperRehydrator::Snapshot(*mapper_);
      if (snap.ok()) {
        snapshot = std::move(*snap);
        step = wal_->AppendMetaSnapshot(snapshot);
      } else {
        step = snap.status();
      }
    }
    if (step.ok()) step = wal_->AppendCommit();
    if (step.ok()) {
      step = ddl_history_.empty()
                 ? wal_->Checkpoint(io_pager())
                 : wal_->Checkpoint(io_pager(), ddl_history_, snapshot);
    }
  }
  NoteIoStatus(step);
  SIM_RETURN_IF_ERROR(step);
  // Still holding X-everything (a fresh Audit() scope would self-conflict
  // with it on this thread).
  SIM_ASSIGN_OR_RETURN(CheckReport report, AuditLocked());
  res.audit_findings = report.errors.size();
  return res;
}

Result<ResultSet> Database::ExecuteQuery(std::string_view dml) {
  StmtObs sobs(this, m_stmt_queries_, dml);
  StmtPtr stmt;
  {
    obs::Span span(sobs.log(), sobs.stmt(), "parse");
    SIM_ASSIGN_OR_RETURN(stmt, DmlParser::ParseStatement(dml));
    span.MarkOk();
  }
  if (stmt->kind == StmtKind::kShowMetrics) {
    // Deliberately before EnsureMapper(): the metrics surface must work on
    // a schemaless or degraded (post-recovery) database.
    ResultSet rs;
    rs.columns = {"metric", "value"};
    for (const obs::Sample& s : metrics_.Samples()) {
      Row row;
      row.values = {Value::Str(s.name),
                    Value::Int(static_cast<int64_t>(s.value))};
      rs.rows.push_back(std::move(row));
    }
    sobs.MarkOk();
    return rs;
  }
  if (stmt->kind == StmtKind::kScrub) {
    // Deliberately before EnsureMapper(): media verification must work on
    // a schemaless or degraded database. Scrub() decodes records only when
    // a physical layer already exists.
    obs::Span span(sobs.log(), sobs.stmt(), "execute");
    SIM_ASSIGN_OR_RETURN(Scrubber::Report rep, Scrub());
    ResultSet rs;
    rs.columns = {"metric", "value"};
    auto add = [&rs](std::string_view name, uint64_t v) {
      Row row;
      row.values = {Value::Str(std::string(name)),
                    Value::Int(static_cast<int64_t>(v))};
      rs.rows.push_back(std::move(row));
    };
    add("pages_scanned", rep.pages_scanned);
    add("checksum_failures", rep.checksum_failures);
    add("record_failures", rep.record_failures);
    add("pages_quarantined", rep.pages_quarantined);
    add("pages_skipped", rep.pages_skipped);
    add("quarantined_total", quarantine_.size());
    span.AddAttr("errors", rep.checksum_failures + rep.record_failures);
    span.MarkOk();
    sobs.MarkOk();
    return rs;
  }
  if (stmt->kind == StmtKind::kRepair) {
    obs::Span span(sobs.log(), sobs.stmt(), "execute");
    SIM_ASSIGN_OR_RETURN(RepairResult res, Repair());
    ResultSet rs;
    rs.columns = {"metric", "value"};
    auto add = [&rs](std::string_view name, uint64_t v) {
      Row row;
      row.values = {Value::Str(std::string(name)),
                    Value::Int(static_cast<int64_t>(v))};
      rs.rows.push_back(std::move(row));
    };
    add("pages_reformatted", res.report.pages_reformatted);
    add("records_dropped", res.report.records_dropped);
    add("entities_dropped", res.report.entities_dropped);
    add("fields_nulled", res.report.fields_nulled);
    add("mv_values_dropped", res.report.mv_values_dropped);
    add("eva_pairs_dropped", res.report.eva_pairs_dropped);
    add("structures_rebuilt", res.report.structures_rebuilt);
    add("audit_findings", res.audit_findings);
    span.AddAttr("pages_reformatted", res.report.pages_reformatted);
    span.MarkOk();
    sobs.MarkOk();
    return rs;
  }
  SIM_RETURN_IF_ERROR(EnsureMapper());
  if (stmt->kind == StmtKind::kCheck) {
    obs::Span span(sobs.log(), sobs.stmt(), "execute");
    SIM_ASSIGN_OR_RETURN(CheckReport report, Audit());
    ResultSet rs;
    rs.columns = {"layer", "invariant", "object", "surrogate", "message"};
    for (const CheckError& e : report.errors) {
      Row row;
      row.values = {Value::Str(CheckLayerName(e.layer)),
                    Value::Str(e.invariant), Value::Str(e.object),
                    e.surrogate == kInvalidSurrogate
                        ? Value::Null()
                        : Value::Surrogate(e.surrogate),
                    Value::Str(e.message)};
      rs.rows.push_back(std::move(row));
    }
    span.AddAttr("findings", report.errors.size());
    span.MarkOk();
    sobs.MarkOk();
    return rs;
  }
  if (stmt->kind != StmtKind::kRetrieve) {
    return Status::InvalidArgument(
        "ExecuteQuery expects a Retrieve statement; use ExecuteUpdate");
  }
  const auto& retrieve = static_cast<const RetrieveStmt&>(*stmt);
  Binder binder(&dir_);
  QueryTree qt;
  {
    obs::Span span(sobs.log(), sobs.stmt(), "bind");
    SIM_ASSIGN_OR_RETURN(qt, binder.BindRetrieve(retrieve));
    span.MarkOk();
  }
  Executor exec(mapper_.get());
  exec.set_trace(sobs.log(), sobs.stmt());
  QueryContext qctx(options_.governor);
  // Shared locks on the extents this query reads: concurrent readers
  // proceed, writers to these families are excluded until the statement
  // ends (scope destruction).
  std::unique_ptr<LockManager::Scope> read_scope;
  SIM_RETURN_IF_ERROR(AcquireReadLocks(qt, &qctx, &read_scope));
  // The plan is statement-local: concurrent queries must not execute off
  // a member another thread is overwriting. last_plan_ gets a copy at the
  // end for the observability accessor.
  AccessPlan plan;
  Result<ResultSet> rs = Status::Internal("query not dispatched");
  if (options_.use_optimizer) {
    {
      obs::Span span(sobs.log(), sobs.stmt(), "optimize");
      SIM_ASSIGN_OR_RETURN(plan, optimizer_->Optimize(qt));
      span.AddAttr("strategies",
                   static_cast<uint64_t>(plan.strategies_considered));
      span.AddAttr("est_cost_blocks", static_cast<uint64_t>(plan.est_cost));
      span.MarkOk();
    }
    rs = exec.Run(qt, &plan, &qctx);
  } else {
    rs = exec.Run(qt, nullptr, &qctx);
  }
  {
    MutexLock l(stmt_mu_);
    last_plan_ = plan;
    last_exec_stats_ = exec.last_stats();
  }
  ObserveExec(exec.last_stats(), qctx);
  if (rs.ok()) sobs.MarkOk();
  return rs;
}

struct Database::Cursor::Impl {
  // `qt` owns the nodes and bound expressions the operator tree references
  // (by node id and by stable heap pointer), so the members must stay
  // together and `qt` (and `qctx`, which `cx` points at) must be populated
  // before `cx` is built.
  QueryTree qt;
  // Cursor-local access plan: the operator tree holds pointers into it,
  // and concurrent statements must not share the Database-level copy.
  AccessPlan access;
  PhysicalPlan plan;
  std::unique_ptr<QueryContext> qctx;
  std::unique_ptr<ExecContext> cx;
  bool open = false;
  bool done = false;
  // Sticky terminal status: once Next fails, every further Next returns
  // the same status without re-entering the operator tree.
  Status terminal = Status::Ok();
  // Trace context: the cursor's "execute" span runs from OpenCursor to
  // the first Close, when the event is recorded with the final counts.
  Database* db = nullptr;
  uint64_t stmt_id = 0;
  uint64_t open_us = 0;
};

Database::Cursor::Cursor(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Database::Cursor::Cursor(Cursor&&) noexcept = default;
Database::Cursor& Database::Cursor::operator=(Cursor&&) noexcept = default;

Database::Cursor::~Cursor() {
  // A destructor cannot propagate failure, but a silently vanishing
  // Status is how teardown bugs hide: when the implicit Close fails, count
  // the drop (simdb_dropped_status_total) and, under paranoid_checks, say
  // so out loud. Callers who care about teardown errors call Close()
  // themselves — an explicit Close makes the destructor a no-op.
  if (impl_ == nullptr) return;
  Status s = Close();
  if (!s.ok() && impl_->db != nullptr) {
    Database* db = impl_->db;
    db->dropped_statuses_.fetch_add(1, std::memory_order_relaxed);
    if (db->m_dropped_status_ != nullptr) db->m_dropped_status_->Increment();
    if (db->options_.paranoid_checks) {
      std::fprintf(stderr,
                   "simdb: cursor destroyed with unconsumed close status: %s\n",
                   s.ToString().c_str());
    }
  }
}

const std::vector<std::string>& Database::Cursor::columns() const {
  return impl_->qt.target_labels;
}

bool Database::Cursor::structured() const {
  return impl_->qt.mode == OutputMode::kStructure;
}

Result<bool> Database::Cursor::Next(Row* row) {
  Impl* im = impl_.get();
  if (im == nullptr) return false;
  if (!im->terminal.ok()) return im->terminal;
  if (!im->open || im->done) return false;
  Result<bool> has = im->plan.root->Next(*im->cx, row);
  if (has.ok() && *has && im->qctx != nullptr) {
    Status charged = im->qctx->ChargeRows();
    if (!charged.ok()) has = charged;
  }
  if (!has.ok()) {
    im->terminal = has.status();
    im->terminal.Update(Close());
    return im->terminal;
  }
  if (*has) {
    ++im->cx->stats.rows_emitted;
  } else {
    im->done = true;
  }
  return *has;
}

void Database::Cursor::Cancel() {
  if (impl_ != nullptr && impl_->qctx != nullptr) {
    impl_->qctx->RequestCancel();
  }
}

Status Database::Cursor::Close() {
  Impl* im = impl_.get();
  if (im == nullptr || !im->open) return Status::Ok();
  im->open = false;
  Status s = im->plan.root->Close(*im->cx);
  if (im->db != nullptr) {
    im->db->ObserveExec(im->cx->stats, *im->qctx);
    if (obs::TraceLog* log = im->db->trace_.get()) {
      obs::TraceEvent e;
      e.stmt = im->stmt_id;
      e.span = "execute";
      e.start_us = im->open_us;
      e.dur_us = log->NowUs() - im->open_us;
      e.ok = im->terminal.ok() && s.ok();
      e.attrs.emplace_back("rows", im->cx->stats.rows_emitted);
      e.attrs.emplace_back("combinations",
                           im->cx->stats.combinations_examined);
      log->Record(std::move(e));
    }
  }
  // Drop the cursor's shared locks now, not at destruction: once the
  // operator tree is closed the cursor reads nothing more, and a pending
  // writer can proceed.
  if (im->qctx != nullptr) im->qctx->ReleaseResources();
  return s;
}

ExecStats Database::Cursor::stats() const {
  return impl_ != nullptr && impl_->cx != nullptr ? impl_->cx->stats
                                                  : ExecStats();
}

QueryContext::Stats Database::Cursor::governor_stats() const {
  return impl_ != nullptr && impl_->qctx != nullptr ? impl_->qctx->stats()
                                                    : QueryContext::Stats();
}

Result<Database::Cursor> Database::OpenCursor(std::string_view dml) {
  StmtObs sobs(this, m_stmt_queries_, dml);
  SIM_RETURN_IF_ERROR(EnsureMapper());
  StmtPtr stmt;
  {
    obs::Span span(sobs.log(), sobs.stmt(), "parse");
    SIM_ASSIGN_OR_RETURN(stmt, DmlParser::ParseStatement(dml));
    span.MarkOk();
  }
  if (stmt->kind != StmtKind::kRetrieve) {
    return Status::InvalidArgument("OpenCursor expects a Retrieve statement");
  }
  const auto& retrieve = static_cast<const RetrieveStmt&>(*stmt);
  Binder binder(&dir_);
  QueryTree qt;
  {
    obs::Span span(sobs.log(), sobs.stmt(), "bind");
    SIM_ASSIGN_OR_RETURN(qt, binder.BindRetrieve(retrieve));
    span.MarkOk();
  }
  auto impl = std::make_unique<Cursor::Impl>();
  {
    obs::Span span(sobs.log(), sobs.stmt(), "optimize");
    if (options_.use_optimizer) {
      SIM_ASSIGN_OR_RETURN(impl->access, optimizer_->Optimize(qt));
    }
    span.MarkOk();
  }
  {
    obs::Span span(sobs.log(), sobs.stmt(), "map");
    SIM_ASSIGN_OR_RETURN(
        impl->plan,
        PhysicalPlan::Build(
            qt, options_.use_optimizer ? &impl->access : nullptr,
            mapper_.get()));
    SIM_RETURN_IF_ERROR(ValidatePlanOrError(impl->plan, qt));
    span.MarkOk();
  }
  impl->qt = std::move(qt);
  if (options_.paranoid_checks) {
    impl->plan.root =
        std::make_unique<ProtocolCheck>(std::move(impl->plan.root));
  }
  impl->qctx = std::make_unique<QueryContext>(options_.governor);
  // Shared locks for the cursor's whole lifetime: attached to its query
  // context, released at Close (or destruction). A writer to these
  // families waits until the stream is done — never sees a half-drained
  // scan.
  {
    std::unique_ptr<LockManager::Scope> read_scope;
    SIM_RETURN_IF_ERROR(
        AcquireReadLocks(impl->qt, impl->qctx.get(), &read_scope));
    if (read_scope != nullptr) {
      impl->qctx->AttachResource(std::move(read_scope));
    }
  }
  {
    MutexLock l(stmt_mu_);
    last_plan_ = impl->access;
  }
  impl->cx = std::make_unique<ExecContext>(&impl->qt, mapper_.get(),
                                           impl->qctx.get());
  SIM_RETURN_IF_ERROR(impl->plan.root->Open(*impl->cx));
  impl->open = true;
  impl->db = this;
  impl->stmt_id = sobs.stmt();
  if (trace_ != nullptr) impl->open_us = trace_->NowUs();
  sobs.MarkOk();
  return Cursor(std::move(impl));
}

Result<std::string> Database::Explain(std::string_view dml) {
  SIM_RETURN_IF_ERROR(EnsureMapper());
  SIM_ASSIGN_OR_RETURN(StmtPtr stmt, DmlParser::ParseStatement(dml));
  if (stmt->kind != StmtKind::kRetrieve) {
    return Status::InvalidArgument("Explain expects a Retrieve statement");
  }
  const auto& retrieve = static_cast<const RetrieveStmt&>(*stmt);
  Binder binder(&dir_);
  SIM_ASSIGN_OR_RETURN(QueryTree qt, binder.BindRetrieve(retrieve));
  SIM_ASSIGN_OR_RETURN(AccessPlan plan, optimizer_->Optimize(qt));
  SIM_ASSIGN_OR_RETURN(PhysicalPlan pplan,
                       PhysicalPlan::Build(qt, &plan, mapper_.get()));
  return qt.DebugString() + plan.Describe() + "\n" + pplan.Describe(false);
}

Result<std::string> Database::ExplainAnalyze(std::string_view dml) {
  StmtObs sobs(this, m_stmt_queries_, dml);
  SIM_RETURN_IF_ERROR(EnsureMapper());
  StmtPtr stmt;
  {
    obs::Span span(sobs.log(), sobs.stmt(), "parse");
    SIM_ASSIGN_OR_RETURN(stmt, DmlParser::ParseStatement(dml));
    span.MarkOk();
  }
  if (stmt->kind != StmtKind::kRetrieve) {
    return Status::InvalidArgument(
        "ExplainAnalyze expects a Retrieve statement");
  }
  const auto& retrieve = static_cast<const RetrieveStmt&>(*stmt);
  Binder binder(&dir_);
  QueryTree qt;
  {
    obs::Span span(sobs.log(), sobs.stmt(), "bind");
    SIM_ASSIGN_OR_RETURN(qt, binder.BindRetrieve(retrieve));
    span.MarkOk();
  }
  AccessPlan plan;
  {
    obs::Span span(sobs.log(), sobs.stmt(), "optimize");
    SIM_ASSIGN_OR_RETURN(plan, optimizer_->Optimize(qt));
    span.MarkOk();
  }
  PhysicalPlan pplan;
  {
    obs::Span span(sobs.log(), sobs.stmt(), "map");
    SIM_ASSIGN_OR_RETURN(pplan,
                         PhysicalPlan::Build(qt, &plan, mapper_.get()));
    SIM_RETURN_IF_ERROR(ValidatePlanOrError(pplan, qt));
    span.MarkOk();
  }
  // Drain the pipeline so every operator has actual row counts, per-Next
  // wall time and buffer-pool deltas.
  QueryContext qctx(options_.governor);
  std::unique_ptr<LockManager::Scope> read_scope;
  SIM_RETURN_IF_ERROR(AcquireReadLocks(qt, &qctx, &read_scope));
  ExecContext cx(&qt, mapper_.get(), &qctx);
  cx.time_operators = true;
  obs::Span exec_span(sobs.log(), sobs.stmt(), "execute");
  SIM_RETURN_IF_ERROR(pplan.root->Open(cx));
  Row row;
  while (true) {
    Result<bool> has = pplan.root->Next(cx, &row);
    if (!has.ok()) {
      Status fail = has.status();
      fail.Update(pplan.root->Close(cx));
      return fail;
    }
    if (!*has) break;
    ++cx.stats.rows_emitted;
  }
  SIM_RETURN_IF_ERROR(pplan.root->Close(cx));
  {
    MutexLock l(stmt_mu_);
    last_plan_ = plan;
    last_exec_stats_ = cx.stats;
  }
  exec_span.AddAttr("rows", cx.stats.rows_emitted);
  exec_span.AddAttr("combinations", cx.stats.combinations_examined);
  exec_span.MarkOk();
  ObserveExec(cx.stats, qctx);
  // One "op" event per operator, so the NDJSON log carries the same
  // per-operator timings the rendered tree prints.
  if (obs::TraceLog* log = trace_.get()) {
    uint64_t now = log->NowUs();
    std::function<void(const PhysicalOperator*)> emit =
        [&](const PhysicalOperator* op) {
          obs::TraceEvent e;
          e.stmt = sobs.stmt();
          e.span = "op";
          e.start_us = now;
          e.dur_us = op->time_us();
          e.detail = op->Describe();
          e.attrs.emplace_back("actual_rows", op->actual_rows());
          e.attrs.emplace_back("pool_hits", op->pool_hits());
          e.attrs.emplace_back("pool_misses", op->pool_misses());
          log->Record(std::move(e));
          for (const PhysicalOperator* child : op->Children()) emit(child);
        };
    emit(pplan.root.get());
  }
  sobs.MarkOk();
  return qt.DebugString() + plan.Describe() + "\n" + pplan.Describe(true);
}

Result<int> Database::ExecuteUpdate(std::string_view dml) {
  if (read_only_) return ReadOnlyError();
  StmtObs sobs(this, m_stmt_updates_, dml);
  SIM_RETURN_IF_ERROR(EnsureMapper());
  StmtPtr stmt;
  {
    obs::Span span(sobs.log(), sobs.stmt(), "parse");
    SIM_ASSIGN_OR_RETURN(stmt, DmlParser::ParseStatement(dml));
    span.MarkOk();
  }
  return ApplyUpdate(*stmt, &sobs);
}

Result<int> Database::ApplyUpdate(const Stmt& stmt, StmtObs* sobs) {
  std::string target;
  switch (stmt.kind) {
    case StmtKind::kInsert:
      target = static_cast<const InsertStmt&>(stmt).class_name;
      break;
    case StmtKind::kModify:
      target = static_cast<const ModifyStmt&>(stmt).class_name;
      break;
    case StmtKind::kDelete:
      target = static_cast<const DeleteStmt&>(stmt).class_name;
      break;
    case StmtKind::kRetrieve:
    case StmtKind::kCheck:
    case StmtKind::kShowMetrics:
    case StmtKind::kScrub:
    case StmtKind::kRepair:
      return Status::InvalidArgument(
          "ExecuteUpdate expects Insert/Modify/Delete; use ExecuteQuery");
  }

  // Session peek: an explicit transaction supplies its transaction and
  // lock scope (the driving thread owns both between Begin and
  // Commit/Rollback); autocommit builds statement-local ones.
  Transaction* txn = nullptr;
  LockManager::Scope* scope = nullptr;
  {
    MutexLock session(session_mu_);
    if (current_txn_ != nullptr &&
        txn_thread_ == std::this_thread::get_id()) {
      txn = current_txn_;
      scope = txn_scope_.get();
    }
  }
  const bool implicit_txn = txn == nullptr;
  std::unique_ptr<LockManager::Scope> stmt_scope;
  if (implicit_txn) {
    stmt_scope = lock_manager_.NewScope();
    scope = stmt_scope.get();
  }

  // Exclusive locks before any transaction state exists, so a blocked
  // acquisition that aborts (deadlock, deadline, cancel) leaves nothing
  // to clean up. The lock manager widens each name to its whole family.
  QueryContext qctx(options_.governor);
  Status locked = lock_manager_.AcquireClasses(scope, WriteLockSet(target),
                                               LockManager::Mode::kExclusive,
                                               &qctx);
  if (locked.ok() && options_.paranoid_checks) {
    // The post-statement audit reads everything; taking S-everything into
    // the same scope keeps it self-compatible with the X set above.
    locked = lock_manager_.AcquireAllClasses(scope, &qctx);
  }
  SIM_RETURN_IF_ERROR(locked);

  if (implicit_txn) txn = txn_manager_.Begin();
  size_t savepoint = txn->undo_depth();
  obs::Span exec_span(sobs->log(), sobs->stmt(), "execute");
  Result<UpdateExecutor::UpdateResult> result =
      Status::Internal("statement not dispatched");
  uint64_t ticket = 0;
  {
    // Apply + commit sequence under commit_mu_: the WAL's per-commit
    // mapper snapshot must capture statement boundaries, never another
    // writer mid-apply, and an aborting statement's undo must likewise be
    // invisible to concurrent flushes.
    MutexLock commit_lock(commit_mu_);
    UpdateExecutor update(mapper_.get(), integrity_.get());
    switch (stmt.kind) {
      case StmtKind::kInsert:
        result = update.ExecuteInsert(static_cast<const InsertStmt&>(stmt),
                                      txn);
        break;
      case StmtKind::kModify:
        result = update.ExecuteModify(static_cast<const ModifyStmt&>(stmt),
                                      txn);
        break;
      case StmtKind::kDelete:
        result = update.ExecuteDelete(static_cast<const DeleteStmt&>(stmt),
                                      txn);
        break;
      default:
        break;
    }
    if (!result.ok()) {
      // Statement-level rollback; the enclosing user transaction survives.
      // ENOSPC anywhere in the statement degrades the database to
      // read-only mode once the rollback has restored in-memory state.
      NoteIoStatus(result.status());
      if (implicit_txn) {
        SIM_RETURN_IF_ERROR(txn_manager_.Abort(txn));
      } else {
        SIM_RETURN_IF_ERROR(txn->RollbackTo(savepoint));
      }
      return result.status();
    }
    if (implicit_txn) {
      Status committed = txn_manager_.CommitBegin(txn);
      if (!committed.ok()) {
        // Commit could not be logged; roll the statement back so the
        // in-memory state matches what recovery will reconstruct.
        NoteIoStatus(committed);
        committed.Update(txn_manager_.Abort(txn));
        return committed;
      }
      ticket = pending_ticket_;
    }
  }
  if (implicit_txn) {
    // Durability wait outside commit_mu_: concurrent writers append their
    // own commit sequences meanwhile, and the group-commit thread settles
    // the whole batch with one fsync. The exclusive locks stay held until
    // the ticket resolves (strictness): no reader ever observes data whose
    // commit could still fail.
    Status durable =
        wal_ != nullptr ? wal_->WaitCommitDurable(ticket) : Status::Ok();
    if (!durable.ok()) {
      NoteIoStatus(durable);
      MutexLock commit_lock(commit_mu_);
      durable.Update(txn_manager_.Abort(txn));
      return durable;
    }
    txn_manager_.CommitFinish(txn);
    MaybeCheckpoint();
  }
  if (options_.paranoid_checks) {
    // Still holding X(family)+S-everything, so the audit sees a stable
    // statement boundary even with concurrent writers queued.
    SIM_ASSIGN_OR_RETURN(CheckReport report, AuditLocked());
    if (!report.clean()) {
      return Status::Internal("paranoid audit after update statement: " +
                              report.errors.front().ToString());
    }
  }
  exec_span.AddAttr("entities",
                    static_cast<uint64_t>(result->entities_affected));
  exec_span.MarkOk();
  sobs->MarkOk();
  return result->entities_affected;
}

Status Database::ExecuteScript(std::string_view dml_script) {
  if (read_only_) return ReadOnlyError();
  SIM_ASSIGN_OR_RETURN(std::vector<StmtPtr> statements,
                       DmlParser::ParseScript(dml_script));
  for (const StmtPtr& stmt : statements) {
    if (stmt->kind != StmtKind::kInsert && stmt->kind != StmtKind::kModify &&
        stmt->kind != StmtKind::kDelete) {
      return Status::InvalidArgument(
          "ExecuteScript accepts update statements only");
    }
  }
  // Re-execute through the single-statement path to get per-statement
  // atomicity; statements were already validated to parse.
  SIM_RETURN_IF_ERROR(EnsureMapper());
  for (const StmtPtr& stmt : statements) {
    const char* kind_name = stmt->kind == StmtKind::kInsert   ? "Insert"
                            : stmt->kind == StmtKind::kModify ? "Modify"
                                                              : "Delete";
    StmtObs sobs(this, m_stmt_updates_, std::string("script: ") + kind_name);
    SIM_RETURN_IF_ERROR(ApplyUpdate(*stmt, &sobs).status());
  }
  return Status::Ok();
}

void Database::MaybeCheckpoint() {
  if (wal_ == nullptr ||
      wal_->size_bytes() <= options_.wal_checkpoint_bytes) {
    return;
  }
  // A failed threshold checkpoint is retried after a later commit (the
  // log simply stays large), but disk-full must degrade to read-only.
  MutexLock commit_lock(commit_mu_);
  // Settle every issued commit ticket first: a pending ticket's images
  // are not yet in the committed set and a checkpoint would drop them.
  // New committers are excluded by commit_mu_.
  Status step = wal_->DrainCommits();
  if (step.ok()) {
    // pending_snapshot_ is the snapshot of the latest commit — exactly
    // the baseline the truncated log must carry.
    step = ddl_history_.empty()
               ? wal_->Checkpoint(io_pager())
               : wal_->Checkpoint(io_pager(), ddl_history_,
                                  pending_snapshot_);
  }
  NoteIoStatus(step);
}

Status Database::Begin() {
  if (read_only_) return ReadOnlyError();
  SIM_RETURN_IF_ERROR(EnsureMapper());
  MutexLock session(session_mu_);
  if (current_txn_ != nullptr) {
    return Status::InvalidArgument("a transaction is already active");
  }
  current_txn_ = txn_manager_.Begin();
  txn_thread_ = std::this_thread::get_id();
  txn_scope_ = lock_manager_.NewScope();
  return Status::Ok();
}

Status Database::Commit() {
  MutexLock session(session_mu_);
  if (current_txn_ == nullptr) {
    return Status::InvalidArgument("no active transaction");
  }
  Transaction* txn = current_txn_;
  uint64_t ticket = 0;
  Status s;
  {
    MutexLock commit_lock(commit_mu_);
    s = txn_manager_.CommitBegin(txn);
    if (s.ok()) ticket = pending_ticket_;
  }
  if (s.ok() && wal_ != nullptr) s = wal_->WaitCommitDurable(ticket);
  if (s.ok()) {
    txn_manager_.CommitFinish(txn);
  } else {
    // Durability failed; undo the transaction so memory and disk agree.
    NoteIoStatus(s);
    MutexLock commit_lock(commit_mu_);
    s.Update(txn_manager_.Abort(txn));
  }
  current_txn_ = nullptr;
  txn_scope_.reset();  // strict 2PL: locks release only now
  if (s.ok()) MaybeCheckpoint();
  return s;
}

Status Database::Rollback() {
  MutexLock session(session_mu_);
  if (current_txn_ == nullptr) {
    return Status::InvalidArgument("no active transaction");
  }
  Status s;
  {
    // Undo mutates mapper state; exclude concurrent writers' flushes.
    MutexLock commit_lock(commit_mu_);
    s = txn_manager_.Abort(current_txn_);
  }
  current_txn_ = nullptr;
  txn_scope_.reset();
  return s;
}

}  // namespace sim
