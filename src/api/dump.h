#ifndef SIMDB_API_DUMP_H_
#define SIMDB_API_DUMP_H_

// Logical dump and restore: a text serialization of a whole database —
// rendered schema DDL plus an entity/value/relationship listing — that
// restores into an empty database with identical logical content
// (surrogates are remapped). This is the backup/migration path; the
// format is line oriented:
//
//   SIMDB LOGICAL DUMP v1
//   --- SCHEMA
//   <DDL text>
//   --- DATA
//   E <surrogate> <role-class>[,<role-class>...]
//   F <class> <attr> <literal>          single-valued DVA of that entity
//   V <class> <attr> <literal>          one MV-DVA value
//   R <class> <attr> <target-surrogate> one EVA instance (canonical side)
//   --- END

#include <string>
#include <string_view>

#include "api/database.h"
#include "common/status.h"

namespace sim {

// Serializes schema + data. The database is read-only during the dump.
Result<std::string> DumpDatabase(Database* db);

// Restores a dump into `db`, which must have an empty catalog.
Status RestoreDatabase(Database* db, std::string_view dump);

}  // namespace sim

#endif  // SIMDB_API_DUMP_H_
