#ifndef SIMDB_API_DATABASE_H_
#define SIMDB_API_DATABASE_H_

// Public entry point of simdb — a reproduction of SIM, the Semantic
// Information Manager (SIGMOD 1988). A Database owns the whole Figure-1
// stack: Directory Manager (catalog), Parser, Binder, Optimizer, Query
// Driver (executor) and the LUC Mapper over the storage engine.
//
// Typical use:
//
//   sim::DatabaseOptions options;
//   SIM_ASSIGN_OR_RETURN(auto db, sim::Database::Open(options));
//   SIM_RETURN_IF_ERROR(db->ExecuteDdl("Class Person (name: string[30]);"));
//   SIM_RETURN_IF_ERROR(db->ExecuteUpdate(
//       "Insert Person (name := \"Ada\")").status());
//   SIM_ASSIGN_OR_RETURN(auto rs,
//       db->ExecuteQuery("From Person Retrieve name"));
//
// DDL must be complete before the first data operation (the physical
// mapping is frozen when the mapper is built); schema evolution requires a
// new database.
//
// Concurrency (DESIGN.md §14): a Database is safe for concurrent
// statements from multiple threads. Readers run in parallel under shared
// class-extent locks; writers take exclusive locks widened to the EVA
// closure of the target family and serialize their apply phase through a
// commit latch, releasing it before the durability wait so group commit
// can coalesce fsyncs across writer threads. Explicit transactions
// (Begin/Commit/Rollback) are session state pinned to the thread that
// called Begin(): that thread's statements join the transaction; other
// threads' statements run autocommit and wait on its locks like any
// foreign session.

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "catalog/directory.h"
#include "catalog/luc_translation.h"
#include "check/check.h"
#include "check/repair.h"
#include "common/query_context.h"
#include "common/status.h"
#include "exec/executor.h"
#include "exec/integrity.h"
#include "exec/output.h"
#include "exec/update_exec.h"
#include "luc/mapper.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/optimizer.h"
#include "semantics/binder.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "storage/buffer_pool.h"
#include "storage/fault_pager.h"
#include "storage/lock_manager.h"
#include "storage/pager.h"
#include "storage/quarantine.h"
#include "storage/scrub.h"
#include "storage/txn.h"
#include "storage/wal.h"

namespace sim {

struct Stmt;  // parser/ast.h

struct DatabaseOptions {
  // Physical mapping rules (§5.2); defaults follow the paper.
  MappingPolicy mapping;
  // Buffer pool size in 4 KiB frames.
  size_t buffer_pool_frames = 512;
  // Cost-based optimization of Retrieve queries; when false, queries run
  // with extent scans in perspective order.
  bool use_optimizer = true;
  // Path of a backing database file; empty runs fully in memory.
  std::string file_path;
  // File-backed databases run in WAL mode: committed page images are
  // copied from the log into the database file once the log exceeds this
  // size (and at clean close). 0 checkpoints after every commit.
  uint64_t wal_checkpoint_bytes = 1u << 20;
  // When set, every database-file and WAL operation consults this
  // injector, so crash-safety tests can script deterministic fault
  // schedules. Not owned; must outlive the Database.
  FaultInjector* fault_injector = nullptr;
  // Group commit: a background durability thread coalesces concurrent
  // commit records into one fsync (N committers, one disk flush). Off by
  // default — the single fsync-per-commit path keeps the I/O schedule
  // deterministic for single-threaded workloads and crash sweeps.
  bool group_commit = false;
  // Run a full simcheck audit at the end of metadata recovery and fail
  // Open on any finding, so a corrupt rehydration can never masquerade as
  // a healthy database. Costs one pass over the recovered data.
  bool recovery_audit = true;
  // Debug mode for tests: run the full invariant audit after every update
  // statement (failing the statement's result on any finding) and wrap
  // streaming-cursor plans in the iterator-protocol checker.
  bool paranoid_checks = false;
  // Resource governor applied to every statement: deadline_ms (-1 =
  // unlimited, 0 = cancel at the first check), max_combinations, max_rows,
  // max_bytes and an optional shared cancel flag. A fresh QueryContext is
  // built from these limits per statement.
  QueryContext::Limits governor;
  // Retry policy for transient (kUnavailable) I/O failures on the
  // database file and the WAL: bounded exponential backoff with
  // deterministic jitter. Permanent failures (kIoError) and disk-full
  // (kDiskFull) are never retried.
  RetryPolicy io_retry;
  // Observability: per-statement trace spans (parse → bind → optimize →
  // map → execute), statement counters and latency histograms, and an
  // optional NDJSON event-log sink. Component counters (buffer pool, WAL,
  // I/O retry) are maintained and scrapeable regardless of `obs.enabled`.
  obs::ObsOptions obs;
  // Online scrubber (DESIGN.md §13): when enabled on a file-backed
  // database a paced background thread walks the durable pages verifying
  // checksums and quarantining rot before a query ever touches it. SCRUB
  // DATABASE / simdb_check --scrub run a full synchronous pass regardless
  // of this flag.
  bool background_scrub = false;
  uint64_t scrub_interval_ms = 50;
  uint64_t scrub_pages_per_tick = 64;
};

class Database {
 public:
  // Opens a database. For a file-backed database this also opens the
  // write-ahead log and runs full crash recovery: committed page images
  // left by a previous crash are replayed into the file, then the catalog
  // is reinstalled from the logged DDL and the LUC mapper rehydrated from
  // the logged bootstrap snapshot — the reopened database answers queries
  // with zero external input. When `recovery_audit` is set (default) a
  // full simcheck audit gates the recovered state.
  static Result<std::unique_ptr<Database>> Open(
      const DatabaseOptions& options = DatabaseOptions());

  // Clean close: flushes the pool, logs a final mapper snapshot and
  // checkpoints the WAL down to its metadata baseline (file-backed, no
  // open transaction). Best-effort — failures leave replay work for the
  // next Open, never an inconsistent file.
  ~Database();

  // --- schema definition ---

  // Parses and installs a batch of DDL (types, classes, verifies), then
  // finalizes the catalog. Must precede the first data operation: once the
  // physical mapping exists the schema is frozen and further DDL fails
  // with kFailedPrecondition.
  Status ExecuteDdl(std::string_view ddl_text) SIM_EXCLUDES(init_mu_);

  // --- data manipulation ---

  // Runs one Retrieve statement.
  Result<ResultSet> ExecuteQuery(std::string_view dml);

  // Streaming query handle: rows are produced on demand by the Volcano
  // operator pipeline, so consuming a prefix (or closing early) does only
  // the work needed for the rows actually pulled. Must not outlive the
  // Database. Closed automatically on destruction.
  class Cursor {
   public:
    Cursor(Cursor&&) noexcept;
    Cursor& operator=(Cursor&&) noexcept;
    ~Cursor();

    // Display headers / output shape of the underlying Retrieve.
    const std::vector<std::string>& columns() const;
    bool structured() const;

    // Pulls the next row; false when the stream is exhausted. After a
    // non-OK return the cursor is terminally failed: every further Next
    // returns the same status without re-entering the operator tree.
    Result<bool> Next(Row* row);

    // Requests cooperative cancellation: the next governor check inside
    // the pipeline fails with kCancelled. Safe to call at any time,
    // including from another thread.
    void Cancel();

    // Releases operator state. Safe to call mid-stream or repeatedly.
    Status Close();

    // Pipeline counters so far (combinations examined, rows emitted).
    ExecStats stats() const;

    // Governor counters (checks, combinations, rows, bytes charged).
    QueryContext::Stats governor_stats() const;

   private:
    friend class Database;
    struct Impl;
    explicit Cursor(std::unique_ptr<Impl> impl);
    std::unique_ptr<Impl> impl_;
  };

  // Plans one Retrieve statement and returns an open streaming cursor.
  Result<Cursor> OpenCursor(std::string_view dml);

  // Runs one Insert / Modify / Delete; returns the number of entities
  // affected. Statement-atomic: any constraint or VERIFY violation rolls
  // the statement back.
  Result<int> ExecuteUpdate(std::string_view dml);

  // Runs a sequence of update statements, each statement-atomic.
  Status ExecuteScript(std::string_view dml_script);

  // --- corruption containment & repair (DESIGN.md §13) ---

  // SCRUB DATABASE: a full synchronous detection pass over the durable
  // pages — every CRC verified, every heap record decoded through
  // RecordView. Rotted pages are quarantined (and the registry logged);
  // the report carries what was found. Works while degraded or read-only.
  Result<Scrubber::Report> Scrub();

  // REPAIR DATABASE: detection sweep, then salvage (check/repair.h), then
  // the durability epilogue — flush, persist the now-empty quarantine,
  // snapshot, commit, checkpoint — then a full re-audit. Rejected inside
  // an explicit transaction and in read-only (disk-full) mode.
  struct RepairResult {
    Repairer::Report report;
    Scrubber::Report scrub;       // the pre-repair detection sweep
    uint64_t audit_findings = 0;  // findings in the post-repair audit
  };
  Result<RepairResult> Repair();

  // Bad-page registry: reads touching these pages fail with kDataLoss
  // while everything else keeps serving (degraded service).
  const QuarantineRegistry& quarantine() const { return quarantine_; }
  // True while service is degraded: read-only after disk-full, or at
  // least one page quarantined. Mirrors the simdb_degraded gauge.
  bool degraded() const { return read_only_ || !quarantine_.empty(); }

  // Runs the simcheck invariant audit over whatever is available: the
  // catalog always, storage + pages when the physical layer exists. Never
  // builds the mapper itself — but since recovery rehydrates the mapper,
  // a reopened crashed database gets the FULL audit, not a degraded one.
  // Violations are findings in the report, not a non-OK status.
  Result<CheckReport> Audit();

  // The chosen access plan for a Retrieve: query tree, root strategy and
  // the compiled physical operator tree with estimated rows, as text.
  Result<std::string> Explain(std::string_view dml);

  // Explain, then actually run the query: the operator tree is printed
  // with estimated AND actual row counts per operator.
  Result<std::string> ExplainAnalyze(std::string_view dml);

  // --- explicit transactions ---

  // Groups several statements into one atomic unit. Without an explicit
  // transaction each update statement is its own transaction.
  Status Begin() SIM_EXCLUDES(session_mu_);
  Status Commit() SIM_EXCLUDES(session_mu_, commit_mu_);
  Status Rollback() SIM_EXCLUDES(session_mu_, commit_mu_);
  // Unlatched: meaningful only on the thread driving the transaction.
  bool in_transaction() const { return current_txn_ != nullptr; }

  // --- component access (examples, tests, benches) ---

  DirectoryManager& catalog() { return dir_; }
  const DirectoryManager& catalog() const { return dir_; }
  Result<LucMapper*> mapper();  // builds the physical layer on first use
  BufferPool& buffer_pool() { return *pool_; }
  Pager& pager() { return *pager_; }
  // Null for in-memory databases.
  WriteAheadLog* wal() { return wal_.get(); }
  // True once a disk-full error degraded the database to read-only mode:
  // updates and Begin() fail with kReadOnly, retrieval and Audit() still
  // work. Reopening the database (after freeing space) clears the mode.
  bool read_only() const { return read_only_; }
  // Transient-I/O retry counters for the database-file pager.
  const RetryStats& io_retry_stats() const {
    return resilient_pager_->retry_stats();
  }
  // Pages replayed from the WAL by recovery during Open.
  uint64_t recovered_pages() const { return recovered_pages_; }
  // Committed metadata records (DDL + snapshot frames) recovery replayed.
  uint64_t recovered_meta_records() const { return recovered_meta_records_; }
  // Wall time Open spent in recovery (page replay + metadata rehydration).
  uint64_t recovery_us() const { return recovery_us_; }
  const DatabaseOptions& options() const { return options_; }
  // Lock-manager counters (simdb_lock_*): grants, waits, deadlock kills,
  // deadline/cancel aborts.
  const LockManager::Stats& lock_stats() const { return lock_manager_.stats(); }
  // Cursors destroyed while terminally failed without an explicit Close()
  // — the dropped-Status signal (simdb_dropped_status_total).
  uint64_t dropped_statuses() const {
    return dropped_statuses_.load(std::memory_order_relaxed);
  }
  // Statement execution artifacts of the most recent statement, returned
  // by value: concurrent statements each publish their own copy under
  // stmt_mu_, so observers see one coherent plan, never a torn mix.
  Executor::ExecStats last_exec_stats() const SIM_EXCLUDES(stmt_mu_) {
    MutexLock l(stmt_mu_);
    return last_exec_stats_;
  }
  AccessPlan last_plan() const SIM_EXCLUDES(stmt_mu_) {
    MutexLock l(stmt_mu_);
    return last_plan_;
  }

  // --- observability ---

  // The metrics registry (buffer pool, WAL, I/O retry, statement and
  // executor counters). Components update their cells lock-free; the
  // registry reads them at scrape time.
  obs::MetricsRegistry& metrics() { return metrics_; }
  // Prometheus-style text exposition of every registered metric — the
  // same data `SHOW METRICS` delivers as a result set.
  std::string MetricsText() const { return metrics_.TextExposition(); }
  // The in-memory trace ring as NDJSON (one finished span per line).
  // Empty when `options.obs.enabled` is false.
  std::string TraceNdjson() const {
    return trace_ != nullptr ? trace_->Ndjson() : std::string();
  }
  // Null when tracing is disabled.
  obs::TraceLog* trace_log() { return trace_.get(); }

 private:
  explicit Database(DatabaseOptions options);

  // RAII per-statement instrumentation (statement span + counters +
  // latency histogram); defined in database.cc.
  class StmtObs;

  // Registers the component views/callbacks and creates the statement
  // counters. Called once by Open after the storage stack exists.
  void RegisterMetrics();

  // Folds one finished statement's executor + governor stats into the
  // registry (no-op when obs is disabled).
  void ObserveExec(const ExecStats& stats, const QueryContext& qctx);

  // Builds physical schema + mapper + integrity checker if not yet built.
  // Thread-safe: double-checked through scrape_mapper_ with init_mu_
  // serializing the build; the first data statement wins the race.
  Status EnsureMapper() SIM_EXCLUDES(init_mu_);

  // Shared body of ExecuteUpdate and ExecuteScript: locks, applies,
  // commits (implicit transactions) one already-parsed update statement.
  Result<int> ApplyUpdate(const Stmt& stmt, StmtObs* sobs)
      SIM_EXCLUDES(session_mu_, commit_mu_);

  // The exclusive lock set for a write to `class_name`: the target class
  // plus the range class of every EVA declared anywhere in its family —
  // maintained inverses, FK-EVA rewrites and clustered inserts touch
  // units (and shared heap pages) of those families. The lock manager
  // widens each name to its whole family.
  std::vector<std::string> WriteLockSet(const std::string& class_name) const;

  // Shared-locks the extents a bound query reads (its node classes,
  // DAG-expanded by the lock manager). Uses the explicit transaction's
  // scope when one is active (the owner thread already holds exclusive
  // locks there); otherwise acquires into `own`, which the caller keeps
  // alive for the duration of execution.
  Status AcquireReadLocks(const QueryTree& qt, QueryContext* qctx,
                          std::unique_ptr<LockManager::Scope>* own)
      SIM_EXCLUDES(session_mu_);

  // Audit body without lock acquisition — for callers already holding a
  // covering lock set (paranoid post-update audit, Repair's exclusive
  // scope, recovery before concurrency exists).
  Result<CheckReport> AuditLocked();
  // Scrub body without lock acquisition (see AuditLocked).
  Result<Scrubber::Report> ScrubLocked();

  // Threshold checkpoint after a durable commit: drains pending commit
  // tickets, then folds the log into the database file under commit_mu_.
  // Best-effort — failure leaves replay work in the WAL.
  void MaybeCheckpoint() SIM_EXCLUDES(commit_mu_);

  // Parses and installs one DDL batch into the catalog (no WAL logging,
  // no statement observability) — the shared core of ExecuteDdl and
  // recovery's DDL replay.
  Status InstallDdl(std::string_view ddl_text);

  // Reinstalls catalog + mapper from the metadata the WAL scan recovered,
  // seals the log with a fresh baseline, and (by default) audits the
  // result. No-op when the log carried no metadata.
  Status RecoverMetadata();

  // The pager all I/O goes through. Decorator chain, bottom up: raw
  // Mem/FilePager -> FaultInjectingPager (when an injector is installed)
  // -> ResilientPager (transient-failure retry). The retry layer sits
  // ABOVE the injector so injected transient faults exercise it.
  Pager* io_pager() {
    if (resilient_pager_ != nullptr) return resilient_pager_.get();
    return fault_pager_ != nullptr ? fault_pager_.get() : pager_.get();
  }

  // Flips to read-only mode when an update/commit path surfaced ENOSPC.
  void NoteIoStatus(const Status& s) {
    if (s.code() == StatusCode::kDiskFull) read_only_ = true;
  }
  Status ReadOnlyError() const {
    return Status::ReadOnly(
        "database is read-only after a disk-full error; retrieval and CHECK "
        "DATABASE remain available (reopen after freeing space to resume "
        "updates)");
  }

  DatabaseOptions options_;
  // Declared before the storage stack: registered views point into
  // component-owned counter cells, so the registry must outlive nothing —
  // but the statement counters live here and the members below may be
  // registered, so keep the registry first (destroyed last).
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::TraceLog> trace_;  // non-null iff options_.obs.enabled
  // Registry-owned statement/executor counters, cached at registration.
  obs::Counter* m_stmt_total_ = nullptr;
  obs::Counter* m_stmt_errors_ = nullptr;
  obs::Counter* m_stmt_queries_ = nullptr;
  obs::Counter* m_stmt_updates_ = nullptr;
  obs::Counter* m_stmt_ddl_ = nullptr;
  obs::Histogram* m_stmt_latency_us_ = nullptr;
  obs::Counter* m_exec_combinations_ = nullptr;
  obs::Counter* m_exec_rows_ = nullptr;
  obs::Counter* m_gov_checks_ = nullptr;
  obs::Counter* m_gov_trips_ = nullptr;
  obs::Histogram* m_group_batch_ = nullptr;
  DirectoryManager dir_;
  // Declared before the storage stack: the buffer pool and the scrubber
  // hold pointers into the registry, so it must be destroyed after them.
  QuarantineRegistry quarantine_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<FaultInjectingPager> fault_pager_;
  std::unique_ptr<ResilientPager> resilient_pager_;
  std::unique_ptr<WriteAheadLog> wal_;
  std::unique_ptr<BufferPool> pool_;
  // Declared after wal_/pool_ so it is destroyed (joined) first; the
  // destructor also stops it explicitly before the clean-close sequence.
  std::unique_ptr<Scrubber> scrubber_;
  uint64_t recovered_pages_ = 0;
  uint64_t recovered_meta_records_ = 0;
  uint64_t recovery_us_ = 0;
  // Every DDL batch executed (or replayed), verbatim, in order — the
  // durable definition of the catalog. Re-logged as the WAL baseline at
  // every checkpoint; replaying the same text reproduces the same class
  // codes the record bytes on disk are tagged with.
  std::vector<std::string> ddl_history_;
  std::unique_ptr<PhysicalSchema> phys_;
  std::unique_ptr<LucMapper> mapper_;
  std::unique_ptr<IntegrityChecker> integrity_;
  // Long-lived: statistics auto-refresh via the mapper mutation counter.
  std::unique_ptr<Optimizer> optimizer_;
  // Mapper/optimizer pointers as seen by concurrent metrics scrapes. The
  // engines are built lazily on the execution thread (EnsureMapper), so a
  // scrape callback reading mapper_/optimizer_ directly would race the
  // unique_ptr assignment. These are published with a release store only
  // after the object is fully constructed; scrape callbacks acquire-load
  // them (the stats they then read are RelaxedCounter cells).
  std::atomic<LucMapper*> scrape_mapper_{nullptr};
  std::atomic<Optimizer*> scrape_optimizer_{nullptr};
  TransactionManager txn_manager_;
  // Semantic lock manager (DESIGN.md §14). Declared before the latches so
  // scopes never outlive it.
  LockManager lock_manager_;
  // init_mu_ serializes lazy construction of the physical layer
  // (EnsureMapper) against DDL: the schema freezes the instant the first
  // data statement builds the mapper. mapper_/phys_/integrity_/optimizer_
  // stay unannotated — they are written once under init_mu_, published via
  // scrape_mapper_ (release), and read raw on every execution path after
  // EnsureMapper's acquire load.
  mutable Mutex init_mu_;
  // commit_mu_ serializes every mapper mutation and the commit sequence
  // (apply → flush → snapshot → commit ticket): the WAL's per-commit
  // mapper snapshot must capture statement boundaries, never a concurrent
  // writer mid-apply. Released before the durability wait so group commit
  // batches fsyncs across writer threads. Lock order: session_mu_ → lock
  // manager waits → commit_mu_ → WAL seq_mu_.
  mutable Mutex commit_mu_;
  // Session transaction state. current_txn_/txn_scope_ are read under
  // session_mu_ at statement entry; the thread that called Begin() owns
  // them until its Commit/Rollback. The transaction is pinned to that
  // thread (txn_thread_): statements from other threads run autocommit
  // and contend through the lock manager like any foreign session —
  // without the pin, a concurrent reader would silently join the open
  // transaction's scope and see its uncommitted writes.
  mutable Mutex session_mu_;
  Transaction* current_txn_ = nullptr;
  std::thread::id txn_thread_;
  // Lock scope of the explicit transaction: grows with each statement,
  // released at Commit/Rollback (strict two-phase locking).
  std::unique_ptr<LockManager::Scope> txn_scope_;
  // Stashed by the commit hook (runs under commit_mu_), consumed by the
  // committer before releasing commit_mu_: the WAL ticket to await and the
  // mapper snapshot matching the last commit (checkpoint baseline).
  // Unannotated for the same reason as the hook itself — the analysis
  // cannot see commit_mu_ across the TransactionManager callback.
  uint64_t pending_ticket_ = 0;
  std::string pending_snapshot_;
  // Cursors that died holding a non-OK terminal status nobody read.
  std::atomic<uint64_t> dropped_statuses_{0};
  obs::Counter* m_dropped_status_ = nullptr;
  // Atomic: flipped on the execution thread, read by metrics scrape
  // threads (the simdb_degraded gauge).
  std::atomic<bool> read_only_{false};
  // stmt_mu_ guards the most-recent-statement artifacts below; concurrent
  // statements publish their statement-local copies here at completion.
  mutable Mutex stmt_mu_;
  Executor::ExecStats last_exec_stats_ SIM_GUARDED_BY(stmt_mu_);
  AccessPlan last_plan_ SIM_GUARDED_BY(stmt_mu_);
};

}  // namespace sim

#endif  // SIMDB_API_DATABASE_H_
