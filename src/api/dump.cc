#include "api/dump.h"

#include <map>
#include <sstream>

#include "catalog/ddl_render.h"
#include "common/strings.h"
#include "parser/dml_parser.h"
#include "parser/lexer.h"

namespace sim {

namespace {

constexpr const char* kHeader = "SIMDB LOGICAL DUMP v1";

// Parses a rendered literal back into a Value (type coercion against the
// attribute happens in the mapper).
Result<Value> ParseLiteral(const std::string& text) {
  SIM_ASSIGN_OR_RETURN(ExprPtr expr, DmlParser::ParseExpressionText(text));
  switch (expr->kind) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(*expr).value;
    case ExprKind::kUnary: {
      const auto& un = static_cast<const UnaryExpr&>(*expr);
      if (un.op == UnaryOp::kNeg &&
          un.operand->kind == ExprKind::kLiteral) {
        const Value& v = static_cast<const LiteralExpr&>(*un.operand).value;
        if (v.type() == ValueType::kInt) return Value::Int(-v.int_value());
        if (v.type() == ValueType::kReal) return Value::Real(-v.real_value());
      }
      break;
    }
    default:
      break;
  }
  return Status::InvalidArgument("not a literal: " + text);
}

}  // namespace

Result<std::string> DumpDatabase(Database* db) {
  SIM_ASSIGN_OR_RETURN(LucMapper * mapper, db->mapper());
  const DirectoryManager& dir = db->catalog();
  const PhysicalSchema& phys = mapper->phys();

  std::string out = kHeader;
  out += "\n--- SCHEMA\n";
  out += RenderSchemaDdl(dir);
  out += "--- DATA\n";

  for (const std::string& base : dir.class_names()) {
    SIM_ASSIGN_OR_RETURN(const ClassDef* base_cls, dir.FindClass(base));
    if (!base_cls->is_base()) continue;
    SIM_ASSIGN_OR_RETURN(std::vector<SurrogateId> extent,
                         mapper->ExtentOf(base));
    std::sort(extent.begin(), extent.end());
    for (SurrogateId s : extent) {
      SIM_ASSIGN_OR_RETURN(std::set<uint16_t> roles, mapper->RolesOf(s, base));
      std::vector<std::string> role_names;
      for (uint16_t code : roles) {
        SIM_ASSIGN_OR_RETURN(std::string name, phys.ClassForCode(code));
        role_names.push_back(name);
      }
      out += "E " + std::to_string(s) + " " + Join(role_names, ",") + "\n";
      for (const std::string& role : role_names) {
        SIM_ASSIGN_OR_RETURN(const ClassDef* cls, dir.FindClass(role));
        for (const AttributeDef& a : cls->attributes) {
          if (a.is_subrole || a.is_derived) continue;
          if (a.is_dva()) {
            if (!a.mv) {
              SIM_ASSIGN_OR_RETURN(Value v, mapper->GetField(s, role, a.name));
              if (!v.is_null()) {
                out += "F " + role + " " + a.name + " " +
                       RenderValueLiteral(v) + "\n";
              }
            } else {
              SIM_ASSIGN_OR_RETURN(std::vector<Value> values,
                                   mapper->GetMvValues(s, role, a.name));
              for (const Value& v : values) {
                out += "V " + role + " " + a.name + " " +
                       RenderValueLiteral(v) + "\n";
              }
            }
            continue;
          }
          // EVA: emit each pair once, from the canonical (A) side;
          // symmetric EVAs dedupe by surrogate order.
          bool is_side_a = true;
          Result<int> eva = phys.EvaOf(role, a.name, &is_side_a);
          if (!eva.ok()) continue;
          const EvaPhys& def = phys.evas()[*eva];
          if (!def.symmetric && !is_side_a) continue;
          SIM_ASSIGN_OR_RETURN(std::vector<SurrogateId> targets,
                               mapper->GetEvaTargets(role, a.name, s));
          for (SurrogateId t : targets) {
            if (def.symmetric && t < s) continue;
            out += "R " + role + " " + a.name + " " + std::to_string(t) +
                   "\n";
          }
        }
      }
    }
  }
  out += "--- END\n";
  return out;
}

Status RestoreDatabase(Database* db, std::string_view dump) {
  if (!db->catalog().class_names().empty()) {
    return Status::InvalidArgument(
        "restore requires a database with an empty catalog");
  }
  std::istringstream in{std::string(dump)};
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::InvalidArgument("not a simdb logical dump");
  }
  if (!std::getline(in, line) || line != "--- SCHEMA") {
    return Status::InvalidArgument("malformed dump: missing schema section");
  }
  std::string ddl;
  while (std::getline(in, line) && line != "--- DATA") {
    ddl += line;
    ddl += "\n";
  }
  SIM_RETURN_IF_ERROR(db->ExecuteDdl(ddl));
  SIM_ASSIGN_OR_RETURN(LucMapper * mapper, db->mapper());
  const DirectoryManager& dir = db->catalog();

  struct PendingRel {
    SurrogateId owner;
    std::string cls, attr;
    SurrogateId target;
  };
  std::map<SurrogateId, SurrogateId> remap;
  std::vector<PendingRel> rels;
  SurrogateId current = kInvalidSurrogate;

  auto split3 = [](const std::string& rest, std::string* a, std::string* b,
                   std::string* c) {
    size_t p1 = rest.find(' ');
    size_t p2 = rest.find(' ', p1 + 1);
    if (p1 == std::string::npos || p2 == std::string::npos) return false;
    *a = rest.substr(0, p1);
    *b = rest.substr(p1 + 1, p2 - p1 - 1);
    *c = rest.substr(p2 + 1);
    return true;
  };

  while (std::getline(in, line)) {
    if (line == "--- END") break;
    if (line.empty()) continue;
    char tag = line[0];
    std::string rest = line.size() > 2 ? line.substr(2) : "";
    switch (tag) {
      case 'E': {
        size_t sp = rest.find(' ');
        if (sp == std::string::npos) {
          return Status::InvalidArgument("malformed entity line: " + line);
        }
        SurrogateId old_id = std::stoull(rest.substr(0, sp));
        std::string roles_text = rest.substr(sp + 1);
        std::vector<std::string> roles;
        size_t pos = 0;
        while (pos <= roles_text.size()) {
          size_t comma = roles_text.find(',', pos);
          if (comma == std::string::npos) comma = roles_text.size();
          roles.push_back(roles_text.substr(pos, comma - pos));
          pos = comma + 1;
        }
        // Create with one maximal role, extend with the others.
        std::vector<std::string> leaves;
        for (const std::string& r : roles) {
          bool has_descendant = false;
          for (const std::string& other : roles) {
            if (NameEq(r, other)) continue;
            Result<bool> sub = dir.IsSubclassOrSame(other, r);
            if (sub.ok() && *sub) has_descendant = true;
          }
          if (!has_descendant) leaves.push_back(r);
        }
        if (leaves.empty()) {
          return Status::InvalidArgument("entity with no roles: " + line);
        }
        SIM_ASSIGN_OR_RETURN(SurrogateId fresh,
                             mapper->CreateEntity(leaves[0], nullptr));
        for (size_t i = 1; i < leaves.size(); ++i) {
          SIM_RETURN_IF_ERROR(mapper->AddRole(fresh, leaves[i], nullptr));
        }
        remap[old_id] = fresh;
        current = fresh;
        break;
      }
      case 'F':
      case 'V': {
        if (current == kInvalidSurrogate) {
          return Status::InvalidArgument("value line before entity: " + line);
        }
        std::string cls, attr, literal;
        if (!split3(rest, &cls, &attr, &literal)) {
          return Status::InvalidArgument("malformed value line: " + line);
        }
        SIM_ASSIGN_OR_RETURN(Value v, ParseLiteral(literal));
        if (tag == 'F') {
          SIM_RETURN_IF_ERROR(mapper->SetField(current, cls, attr, v, nullptr));
        } else {
          SIM_RETURN_IF_ERROR(
              mapper->AddMvValue(current, cls, attr, v, nullptr));
        }
        break;
      }
      case 'R': {
        if (current == kInvalidSurrogate) {
          return Status::InvalidArgument("relationship before entity: " + line);
        }
        std::string cls, attr, target;
        if (!split3(rest, &cls, &attr, &target)) {
          return Status::InvalidArgument("malformed relationship: " + line);
        }
        rels.push_back(
            {current, cls, attr, static_cast<SurrogateId>(
                                      std::stoull(target))});
        break;
      }
      default:
        return Status::InvalidArgument("unknown dump line: " + line);
    }
  }
  for (const PendingRel& r : rels) {
    auto it = remap.find(r.target);
    if (it == remap.end()) {
      return Status::InvalidArgument("relationship target " +
                                     std::to_string(r.target) +
                                     " not in dump");
    }
    SIM_RETURN_IF_ERROR(
        mapper->AddEvaPair(r.cls, r.attr, r.owner, it->second, nullptr));
  }
  return Status::Ok();
}

}  // namespace sim
