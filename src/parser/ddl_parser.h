#ifndef SIMDB_PARSER_DDL_PARSER_H_
#define SIMDB_PARSER_DDL_PARSER_H_

// Parser for the SIM schema definition language of §7:
//
//   Type <name> = <type-spec>;
//   Class <name> ( <attribute>; ... );
//   Subclass <name> of <super> [and <super>]... ( <attribute>; ... );
//   Verify <name> on <class> assert <expr> else "<message>";
//
// Attribute syntax:
//   <name>: <type-spec> [options]            -- DVA
//   <name>: <class> [inverse is <name>] [options]  -- EVA
// with options UNIQUE, REQUIRED, MV [( DISTINCT | MAX <n> ... )],
// separated by spaces or commas.
//
// Named types must be declared before use; EVA range classes may be
// forward references (resolved at catalog Finalize).

#include <map>
#include <string>
#include <vector>

#include "catalog/directory.h"
#include "common/status.h"
#include "parser/ast.h"
#include "parser/parser_base.h"

namespace sim {

class DdlParser : public ParserBase {
 public:
  // `dir` provides already-declared named types; may be null.
  static Result<std::vector<DdlStatement>> Parse(std::string_view text,
                                                 const DirectoryManager* dir);

 private:
  DdlParser(std::vector<Token> tokens, const DirectoryManager* dir)
      : ParserBase(std::move(tokens)), dir_(dir) {}

  Result<std::vector<DdlStatement>> ParseAll();
  Result<DdlStatement> ParseTypeDecl();
  Result<DdlStatement> ParseClassDecl(bool is_subclass);
  Result<DdlStatement> ParseVerifyDecl();
  Result<DdlStatement> ParseViewDecl();
  Result<AttributeDef> ParseAttribute();
  Result<DataType> ParseTypeSpec(const std::string& name);
  Status ParseAttributeOptions(AttributeDef* attr);
  bool IsTypeName(const std::string& name) const;

  const DirectoryManager* dir_;
  // Types declared earlier in this batch (lowercase name -> definition).
  std::map<std::string, DataType> local_types_;
};

}  // namespace sim

#endif  // SIMDB_PARSER_DDL_PARSER_H_
