#ifndef SIMDB_PARSER_DML_PARSER_H_
#define SIMDB_PARSER_DML_PARSER_H_

// Parser for SIM DML (§4): Retrieve queries with perspectives,
// qualification, aggregates, quantifiers, transitive closure and ISA
// tests; and the Insert / Modify / Delete update statements with
// INCLUDE/EXCLUDE and EVA selector assignments. Statements terminate with
// '.' or ';' (both accepted) or end of input.

#include <string>
#include <vector>

#include "common/status.h"
#include "parser/ast.h"
#include "parser/parser_base.h"

namespace sim {

class DmlParser : public ParserBase {
 public:
  // Parses exactly one statement (trailing terminator optional).
  static Result<StmtPtr> ParseStatement(std::string_view text);

  // Parses a sequence of statements.
  static Result<std::vector<StmtPtr>> ParseScript(std::string_view text);

  // Parses a standalone expression (used for VERIFY conditions).
  static Result<ExprPtr> ParseExpressionText(std::string_view text);
  static Result<ExprPtr> ParseExpressionTokens(std::vector<Token> tokens);

 private:
  explicit DmlParser(std::vector<Token> tokens)
      : ParserBase(std::move(tokens)) {}

  Result<StmtPtr> ParseOne();
  Result<StmtPtr> ParseRetrieve();
  Result<StmtPtr> ParseInsert();
  Result<StmtPtr> ParseModify();
  Result<StmtPtr> ParseDelete();
  Result<std::vector<Assignment>> ParseAssignmentList();
  Result<Assignment> ParseAssignment();
  // Parses one target-list item, expanding §4.2 factored qualification
  // "(a, b) of x" into multiple targets.
  Status ParseTargetItems(std::vector<ExprPtr>* out);

  // Expression grammar, loosest to tightest binding.
  Result<ExprPtr> ParseExpr();        // OR
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();  // = <> < <= > >= LIKE ISA
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseTerm();
  Result<ExprPtr> ParseFactor();
  Result<ExprPtr> ParseQualRefOrCall();
  Result<QualElement> ParseQualElement();
  // Parses "OF element OF element..." suffixes into `out`.
  Status ParseQualSuffix(std::vector<QualElement>* out);

  bool PeekIsAggregate() const;
  bool PeekIsQuantifier() const;
  // True when the current token starts a new statement keyword.
  bool AtStatementBoundary() const;
};

}  // namespace sim

#endif  // SIMDB_PARSER_DML_PARSER_H_
