#include "parser/lexer.h"

#include <cctype>
#include <cstdlib>

namespace sim {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

}  // namespace

char Lexer::Peek(size_t ahead) const {
  return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
}

char Lexer::Advance() {
  char c = input_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

Token Lexer::Make(TokenType type) const {
  Token t;
  t.type = type;
  t.line = tok_line_;
  t.column = tok_column_;
  return t;
}

Status Lexer::ErrorHere(const std::string& message) const {
  return Status::ParseError(message + " at line " + std::to_string(line_) +
                            ", column " + std::to_string(column_));
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> out;
  for (;;) {
    // Skip whitespace and (* ... *) comments.
    for (;;) {
      if (AtEnd()) break;
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
        continue;
      }
      if (c == '(' && Peek(1) == '*') {
        Advance();
        Advance();
        while (!AtEnd() && !(Peek() == '*' && Peek(1) == ')')) Advance();
        if (AtEnd()) return ErrorHere("unterminated comment");
        Advance();
        Advance();
        continue;
      }
      break;
    }
    if (AtEnd()) {
      out.push_back(Make(TokenType::kEnd));
      return out;
    }
    tok_line_ = line_;
    tok_column_ = column_;
    SIM_RETURN_IF_ERROR(LexOne(&out));
  }
}

Status Lexer::LexOne(std::vector<Token>* out) {
  char c = Peek();
  if (IsIdentStart(c)) {
    std::string text;
    text.push_back(Advance());
    for (;;) {
      char n = Peek();
      if (IsIdentChar(n)) {
        text.push_back(Advance());
      } else if (n == '-' && IsIdentChar(Peek(1))) {
        // Hyphenated identifier continuation (soc-sec-no).
        text.push_back(Advance());
        text.push_back(Advance());
      } else {
        break;
      }
    }
    Token t = Make(TokenType::kIdent);
    t.text = std::move(text);
    // The NEQ keyword is an operator.
    if (t.Is("neq")) {
      t = Make(TokenType::kNeq);
    }
    out->push_back(std::move(t));
    return Status::Ok();
  }
  if (IsDigit(c)) {
    std::string text;
    while (IsDigit(Peek())) text.push_back(Advance());
    bool is_real = false;
    if (Peek() == '.' && IsDigit(Peek(1))) {
      is_real = true;
      text.push_back(Advance());
      while (IsDigit(Peek())) text.push_back(Advance());
    }
    if (is_real) {
      Token t = Make(TokenType::kReal);
      t.real_value = std::strtod(text.c_str(), nullptr);
      t.text = std::move(text);
      out->push_back(std::move(t));
    } else {
      Token t = Make(TokenType::kInt);
      t.int_value = std::strtoll(text.c_str(), nullptr, 10);
      t.text = std::move(text);
      out->push_back(std::move(t));
    }
    return Status::Ok();
  }
  if (c == '"') {
    Advance();
    std::string text;
    for (;;) {
      if (AtEnd()) return ErrorHere("unterminated string literal");
      char n = Advance();
      if (n == '"') {
        if (Peek() == '"') {
          text.push_back('"');
          Advance();
          continue;
        }
        break;
      }
      text.push_back(n);
    }
    Token t = Make(TokenType::kString);
    t.text = std::move(text);
    out->push_back(std::move(t));
    return Status::Ok();
  }
  Advance();
  switch (c) {
    case '(':
      out->push_back(Make(TokenType::kLParen));
      return Status::Ok();
    case ')':
      out->push_back(Make(TokenType::kRParen));
      return Status::Ok();
    case '[':
      out->push_back(Make(TokenType::kLBracket));
      return Status::Ok();
    case ']':
      out->push_back(Make(TokenType::kRBracket));
      return Status::Ok();
    case ',':
      out->push_back(Make(TokenType::kComma));
      return Status::Ok();
    case ';':
      out->push_back(Make(TokenType::kSemicolon));
      return Status::Ok();
    case '.':
      if (Peek() == '.') {
        Advance();
        out->push_back(Make(TokenType::kDotDot));
      } else {
        out->push_back(Make(TokenType::kPeriod));
      }
      return Status::Ok();
    case ':':
      if (Peek() == '=') {
        Advance();
        out->push_back(Make(TokenType::kAssign));
      } else {
        out->push_back(Make(TokenType::kColon));
      }
      return Status::Ok();
    case '=':
      out->push_back(Make(TokenType::kEq));
      return Status::Ok();
    case '<':
      if (Peek() == '=') {
        Advance();
        out->push_back(Make(TokenType::kLe));
      } else if (Peek() == '>') {
        Advance();
        out->push_back(Make(TokenType::kNeq));
      } else {
        out->push_back(Make(TokenType::kLt));
      }
      return Status::Ok();
    case '>':
      if (Peek() == '=') {
        Advance();
        out->push_back(Make(TokenType::kGe));
      } else {
        out->push_back(Make(TokenType::kGt));
      }
      return Status::Ok();
    case '+':
      out->push_back(Make(TokenType::kPlus));
      return Status::Ok();
    case '-':
      out->push_back(Make(TokenType::kMinus));
      return Status::Ok();
    case '*':
      out->push_back(Make(TokenType::kStar));
      return Status::Ok();
    case '/':
      out->push_back(Make(TokenType::kSlash));
      return Status::Ok();
    default:
      return ErrorHere(std::string("unexpected character '") + c + "'");
  }
}

}  // namespace sim
