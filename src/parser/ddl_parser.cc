#include "parser/ddl_parser.h"

#include "common/strings.h"
#include "parser/dml_parser.h"
#include "parser/lexer.h"

namespace sim {

Result<std::vector<DdlStatement>> DdlParser::Parse(
    std::string_view text, const DirectoryManager* dir) {
  Lexer lexer(text);
  SIM_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  DdlParser parser(std::move(tokens), dir);
  return parser.ParseAll();
}

Result<std::vector<DdlStatement>> DdlParser::ParseAll() {
  std::vector<DdlStatement> out;
  while (!AtEnd()) {
    if (Match(TokenType::kSemicolon) || Match(TokenType::kPeriod)) continue;
    if (MatchKeyword("type")) {
      SIM_ASSIGN_OR_RETURN(DdlStatement s, ParseTypeDecl());
      out.push_back(std::move(s));
    } else if (MatchKeyword("class")) {
      SIM_ASSIGN_OR_RETURN(DdlStatement s, ParseClassDecl(false));
      out.push_back(std::move(s));
    } else if (MatchKeyword("subclass")) {
      SIM_ASSIGN_OR_RETURN(DdlStatement s, ParseClassDecl(true));
      out.push_back(std::move(s));
    } else if (MatchKeyword("verify")) {
      SIM_ASSIGN_OR_RETURN(DdlStatement s, ParseVerifyDecl());
      out.push_back(std::move(s));
    } else if (MatchKeyword("view")) {
      SIM_ASSIGN_OR_RETURN(DdlStatement s, ParseViewDecl());
      out.push_back(std::move(s));
    } else {
      return ErrorHere(
          "expected 'Type', 'Class', 'Subclass', 'Verify' or 'View' "
          "declaration");
    }
  }
  return out;
}

bool DdlParser::IsTypeName(const std::string& name) const {
  if (local_types_.count(AsciiLower(name))) return true;
  if (dir_ != nullptr && dir_->FindType(name).ok()) return true;
  return false;
}

Result<DdlStatement> DdlParser::ParseTypeDecl() {
  SIM_ASSIGN_OR_RETURN(std::string name, ExpectIdent("after 'Type'"));
  SIM_RETURN_IF_ERROR(Expect(TokenType::kEq, "in type declaration"));
  SIM_ASSIGN_OR_RETURN(std::string spec_name,
                       ExpectIdent("naming the type's representation"));
  SIM_ASSIGN_OR_RETURN(DataType type, ParseTypeSpec(spec_name));
  if (type.kind == DataTypeKind::kSubrole) {
    return ErrorHere("subrole types cannot be named types");
  }
  SIM_RETURN_IF_ERROR(Expect(TokenType::kSemicolon, "ending type declaration"));
  DdlStatement s;
  s.type_decl = std::make_unique<TypeDecl>();
  s.type_decl->name = name;
  s.type_decl->type = std::move(type);
  local_types_[AsciiLower(name)] = s.type_decl->type;
  return s;
}

Result<DataType> DdlParser::ParseTypeSpec(const std::string& name) {
  if (NameEq(name, "string")) {
    int max_length = 0;
    if (Match(TokenType::kLBracket)) {
      if (!Check(TokenType::kInt)) return ErrorHere("expected string length");
      max_length = static_cast<int>(Advance().int_value);
      SIM_RETURN_IF_ERROR(Expect(TokenType::kRBracket, "after string length"));
    }
    return DataType::String(max_length);
  }
  if (NameEq(name, "integer")) {
    if (!Match(TokenType::kLParen)) return DataType::Integer();
    std::vector<std::pair<int64_t, int64_t>> ranges;
    for (;;) {
      if (!Check(TokenType::kInt)) return ErrorHere("expected range bound");
      int64_t lo = Advance().int_value;
      SIM_RETURN_IF_ERROR(Expect(TokenType::kDotDot, "in integer range"));
      if (!Check(TokenType::kInt)) return ErrorHere("expected range bound");
      int64_t hi = Advance().int_value;
      if (hi < lo) return ErrorHere("descending integer range");
      ranges.emplace_back(lo, hi);
      if (!Match(TokenType::kComma)) break;
    }
    SIM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "after integer ranges"));
    return DataType::IntegerRanges(std::move(ranges));
  }
  if (NameEq(name, "number")) {
    SIM_RETURN_IF_ERROR(Expect(TokenType::kLBracket, "after 'number'"));
    if (!Check(TokenType::kInt)) return ErrorHere("expected precision");
    int precision = static_cast<int>(Advance().int_value);
    SIM_RETURN_IF_ERROR(Expect(TokenType::kComma, "in number[p,s]"));
    if (!Check(TokenType::kInt)) return ErrorHere("expected scale");
    int scale = static_cast<int>(Advance().int_value);
    SIM_RETURN_IF_ERROR(Expect(TokenType::kRBracket, "after number[p,s]"));
    return DataType::Number(precision, scale);
  }
  if (NameEq(name, "date")) return DataType::Date();
  if (NameEq(name, "boolean")) return DataType::Boolean();
  if (NameEq(name, "symbolic") || NameEq(name, "subrole")) {
    SIM_RETURN_IF_ERROR(Expect(TokenType::kLParen, "after symbolic/subrole"));
    std::vector<std::string> symbols;
    for (;;) {
      SIM_ASSIGN_OR_RETURN(std::string sym, ExpectIdent("symbol name"));
      symbols.push_back(std::move(sym));
      if (!Match(TokenType::kComma)) break;
    }
    SIM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "after symbol list"));
    return NameEq(name, "symbolic") ? DataType::Symbolic(std::move(symbols))
                                    : DataType::Subrole(std::move(symbols));
  }
  // Named type reference: this batch first, then the catalog.
  auto local = local_types_.find(AsciiLower(name));
  if (local != local_types_.end()) return local->second;
  if (dir_ != nullptr) {
    SIM_ASSIGN_OR_RETURN(const DataType* t, dir_->FindType(name));
    return *t;
  }
  return Status::ParseError("unknown type '" + name + "'");
}

Result<AttributeDef> DdlParser::ParseAttribute() {
  AttributeDef attr;
  SIM_ASSIGN_OR_RETURN(attr.name, ExpectIdent("attribute name"));
  SIM_RETURN_IF_ERROR(Expect(TokenType::kColon, "after attribute name"));
  if (Peek().Is("derived")) {
    // Derived attribute: <name>: derived = <expression>.
    Advance();
    SIM_RETURN_IF_ERROR(Expect(TokenType::kEq, "after 'derived'"));
    std::vector<Token> expr_tokens;
    int depth = 0;
    while (!AtEnd()) {
      const Token& t = Peek();
      if (depth == 0 && (t.type == TokenType::kSemicolon ||
                         t.type == TokenType::kRParen)) {
        break;
      }
      if (t.type == TokenType::kLParen) ++depth;
      if (t.type == TokenType::kRParen) --depth;
      expr_tokens.push_back(Advance());
    }
    Token end_token;
    end_token.type = TokenType::kEnd;
    expr_tokens.push_back(end_token);
    SIM_ASSIGN_OR_RETURN(ExprPtr expr,
                         DmlParser::ParseExpressionTokens(
                             std::move(expr_tokens)));
    attr.kind = AttrKind::kDva;
    attr.is_derived = true;
    attr.derived_text = expr->ToText();
    return attr;
  }
  SIM_ASSIGN_OR_RETURN(std::string type_name,
                       ExpectIdent("attribute type or range class"));
  bool is_builtin =
      NameEq(type_name, "string") || NameEq(type_name, "integer") ||
      NameEq(type_name, "number") || NameEq(type_name, "date") ||
      NameEq(type_name, "boolean") || NameEq(type_name, "symbolic") ||
      NameEq(type_name, "subrole");
  if (is_builtin || IsTypeName(type_name)) {
    attr.kind = AttrKind::kDva;
    SIM_ASSIGN_OR_RETURN(attr.type, ParseTypeSpec(type_name));
    if (attr.type.kind == DataTypeKind::kSubrole) attr.is_subrole = true;
  } else {
    // EVA: range class (possibly a forward reference).
    attr.kind = AttrKind::kEva;
    attr.range_class = type_name;
    if (Peek().Is("inverse")) {
      Advance();
      SIM_RETURN_IF_ERROR(ExpectKeyword("is", "in 'inverse is <name>'"));
      SIM_ASSIGN_OR_RETURN(attr.inverse_name, ExpectIdent("inverse name"));
    }
  }
  SIM_RETURN_IF_ERROR(ParseAttributeOptions(&attr));
  return attr;
}

Status DdlParser::ParseAttributeOptions(AttributeDef* attr) {
  // Options may be separated by commas or just spaces, and `mv` may carry
  // a parenthesized option list: mv (max 10, distinct).
  for (;;) {
    Match(TokenType::kComma);
    if (Peek().Is("unique")) {
      Advance();
      attr->unique = true;
    } else if (Peek().Is("required")) {
      Advance();
      attr->required = true;
    } else if (Peek().Is("mv")) {
      Advance();
      attr->mv = true;
      if (Match(TokenType::kLParen)) {
        for (;;) {
          if (Peek().Is("distinct")) {
            Advance();
            attr->distinct = true;
          } else if (Peek().Is("max")) {
            Advance();
            if (!Check(TokenType::kInt)) {
              return ErrorHere("expected integer after MAX");
            }
            attr->max_count = static_cast<int>(Advance().int_value);
          } else if (Peek().Is("ordered")) {
            Advance();
            SIM_RETURN_IF_ERROR(ExpectKeyword("by", "after 'ordered'"));
            SIM_ASSIGN_OR_RETURN(attr->order_by_attr,
                                 ExpectIdent("ordering attribute"));
            if (MatchKeyword("desc") || MatchKeyword("descending")) {
              attr->order_desc = true;
            }
          } else {
            return ErrorHere(
                "expected 'distinct', 'max' or 'ordered by' in MV options");
          }
          if (!Match(TokenType::kComma)) break;
        }
        SIM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "after MV options"));
      }
    } else if (Peek().Is("inverse")) {
      // `inverse is <name>` may also follow options.
      Advance();
      SIM_RETURN_IF_ERROR(ExpectKeyword("is", "in 'inverse is <name>'"));
      SIM_ASSIGN_OR_RETURN(attr->inverse_name, ExpectIdent("inverse name"));
    } else {
      break;
    }
  }
  return Status::Ok();
}

Result<DdlStatement> DdlParser::ParseClassDecl(bool is_subclass) {
  auto def = std::make_unique<ClassDef>();
  SIM_ASSIGN_OR_RETURN(def->name, ExpectIdent("class name"));
  if (is_subclass) {
    SIM_RETURN_IF_ERROR(ExpectKeyword("of", "after subclass name"));
    for (;;) {
      SIM_ASSIGN_OR_RETURN(std::string super, ExpectIdent("superclass name"));
      def->superclasses.push_back(std::move(super));
      if (!MatchKeyword("and")) break;
    }
  }
  if (MatchKeyword("ordered")) {
    SIM_RETURN_IF_ERROR(ExpectKeyword("by", "after 'ordered'"));
    SIM_ASSIGN_OR_RETURN(def->order_by_attr, ExpectIdent("ordering attribute"));
    if (MatchKeyword("desc") || MatchKeyword("descending")) {
      def->order_desc = true;
    }
  }
  SIM_RETURN_IF_ERROR(Expect(TokenType::kLParen, "starting class body"));
  if (!Check(TokenType::kRParen)) {
    for (;;) {
      SIM_ASSIGN_OR_RETURN(AttributeDef attr, ParseAttribute());
      def->attributes.push_back(std::move(attr));
      if (!Match(TokenType::kSemicolon)) break;
      if (Check(TokenType::kRParen)) break;  // trailing semicolon
    }
  }
  SIM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "ending class body"));
  Match(TokenType::kSemicolon);
  DdlStatement s;
  s.class_decl = std::move(def);
  return s;
}

Result<DdlStatement> DdlParser::ParseViewDecl() {
  // View <name> of <class> Where <boolexpr>;
  auto def = std::make_unique<ViewDef>();
  SIM_ASSIGN_OR_RETURN(def->name, ExpectIdent("view name"));
  SIM_RETURN_IF_ERROR(ExpectKeyword("of", "after view name"));
  SIM_ASSIGN_OR_RETURN(def->class_name, ExpectIdent("view class"));
  SIM_RETURN_IF_ERROR(ExpectKeyword("where", "in view declaration"));
  std::vector<Token> cond;
  while (!AtEnd() && !Check(TokenType::kSemicolon)) {
    cond.push_back(Advance());
  }
  Token end_token;
  end_token.type = TokenType::kEnd;
  cond.push_back(end_token);
  SIM_ASSIGN_OR_RETURN(ExprPtr expr,
                       DmlParser::ParseExpressionTokens(std::move(cond)));
  def->condition_text = expr->ToText();
  Match(TokenType::kSemicolon);
  DdlStatement s;
  s.view_decl = std::move(def);
  return s;
}

Result<DdlStatement> DdlParser::ParseVerifyDecl() {
  auto def = std::make_unique<VerifyDef>();
  SIM_ASSIGN_OR_RETURN(def->name, ExpectIdent("verify name"));
  SIM_RETURN_IF_ERROR(ExpectKeyword("on", "after verify name"));
  SIM_ASSIGN_OR_RETURN(def->class_name, ExpectIdent("verify class"));
  SIM_RETURN_IF_ERROR(ExpectKeyword("assert", "in verify declaration"));
  // Collect the condition tokens up to the ELSE keyword.
  std::vector<Token> cond;
  while (!AtEnd() && !Peek().Is("else") &&
         !Check(TokenType::kSemicolon)) {
    cond.push_back(Advance());
  }
  Token end_token;
  end_token.type = TokenType::kEnd;
  cond.push_back(end_token);
  SIM_ASSIGN_OR_RETURN(ExprPtr expr,
                       DmlParser::ParseExpressionTokens(std::move(cond)));
  def->condition_text = expr->ToText();
  if (MatchKeyword("else")) {
    if (!Check(TokenType::kString)) {
      return ErrorHere("expected message string after ELSE");
    }
    def->message = Advance().text;
  } else {
    def->message = "integrity condition '" + def->name + "' violated";
  }
  Match(TokenType::kSemicolon);
  DdlStatement s;
  s.verify_decl = std::move(def);
  return s;
}

}  // namespace sim
