#ifndef SIMDB_PARSER_TOKEN_H_
#define SIMDB_PARSER_TOKEN_H_

// Token stream for SIM's DDL and DML. SIM is an English-like language:
// keywords are case-insensitive, identifiers may contain hyphens
// (SOC-SEC-NO, COURSES-ENROLLED). A hyphen is part of an identifier when
// it is directly surrounded by identifier characters; subtraction
// therefore requires whitespace (`a - b`), the same convention COBOL-era
// languages used.

#include <cstdint>
#include <string>

namespace sim {

enum class TokenType {
  kEnd,
  kIdent,
  kString,   // "double quoted", "" escapes a quote
  kInt,
  kReal,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kSemicolon,
  kPeriod,   // statement terminator
  kColon,
  kAssign,   // :=
  kEq,
  kNeq,      // <> (the keyword NEQ also maps here during parsing)
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kDotDot,   // .. in integer ranges
};

const char* TokenTypeName(TokenType t);

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;        // identifier/keyword spelling or string contents
  int64_t int_value = 0;
  double real_value = 0;
  int line = 1;
  int column = 1;

  // Case-insensitive keyword test for identifier tokens.
  bool Is(const char* keyword) const;
  std::string Describe() const;
};

}  // namespace sim

#endif  // SIMDB_PARSER_TOKEN_H_
