#ifndef SIMDB_PARSER_PARSER_BASE_H_
#define SIMDB_PARSER_PARSER_BASE_H_

// Shared token-cursor machinery for the DDL and DML recursive-descent
// parsers.

#include <string>
#include <vector>

#include "common/status.h"
#include "parser/token.h"

namespace sim {

class ParserBase {
 protected:
  explicit ParserBase(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() {
    const Token& t = Peek();
    if (pos_ < tokens_.size() - 1) ++pos_;
    return t;
  }
  bool Check(TokenType t) const { return Peek().type == t; }
  bool Match(TokenType t) {
    if (!Check(t)) return false;
    Advance();
    return true;
  }
  bool MatchKeyword(const char* kw) {
    if (!Peek().Is(kw)) return false;
    Advance();
    return true;
  }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  Status Expect(TokenType t, const std::string& context) {
    if (Match(t)) return Status::Ok();
    return ErrorHere(std::string("expected ") + TokenTypeName(t) + " " +
                     context);
  }
  Status ExpectKeyword(const char* kw, const std::string& context) {
    if (MatchKeyword(kw)) return Status::Ok();
    return ErrorHere(std::string("expected '") + kw + "' " + context);
  }
  Result<std::string> ExpectIdent(const std::string& context) {
    if (!Check(TokenType::kIdent)) {
      return ErrorHere("expected identifier " + context);
    }
    return Advance().text;
  }

  Status ErrorHere(const std::string& message) const {
    const Token& t = Peek();
    return Status::ParseError(message + ", found " + t.Describe() +
                              " at line " + std::to_string(t.line) +
                              ", column " + std::to_string(t.column));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace sim

#endif  // SIMDB_PARSER_PARSER_BASE_H_
