#include "parser/dml_parser.h"

#include "common/strings.h"
#include "parser/lexer.h"

namespace sim {

Result<StmtPtr> DmlParser::ParseStatement(std::string_view text) {
  Lexer lexer(text);
  SIM_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  DmlParser parser(std::move(tokens));
  SIM_ASSIGN_OR_RETURN(StmtPtr stmt, parser.ParseOne());
  parser.Match(TokenType::kPeriod);
  parser.Match(TokenType::kSemicolon);
  if (!parser.AtEnd()) {
    return parser.ErrorHere("unexpected trailing input after statement");
  }
  return stmt;
}

Result<std::vector<StmtPtr>> DmlParser::ParseScript(std::string_view text) {
  Lexer lexer(text);
  SIM_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  DmlParser parser(std::move(tokens));
  std::vector<StmtPtr> out;
  while (!parser.AtEnd()) {
    if (parser.Match(TokenType::kPeriod) ||
        parser.Match(TokenType::kSemicolon)) {
      continue;
    }
    SIM_ASSIGN_OR_RETURN(StmtPtr stmt, parser.ParseOne());
    out.push_back(std::move(stmt));
  }
  return out;
}

Result<ExprPtr> DmlParser::ParseExpressionText(std::string_view text) {
  Lexer lexer(text);
  SIM_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  return ParseExpressionTokens(std::move(tokens));
}

Result<ExprPtr> DmlParser::ParseExpressionTokens(std::vector<Token> tokens) {
  DmlParser parser(std::move(tokens));
  SIM_ASSIGN_OR_RETURN(ExprPtr expr, parser.ParseExpr());
  if (!parser.AtEnd()) {
    return parser.ErrorHere("unexpected trailing input after expression");
  }
  return expr;
}

bool DmlParser::AtStatementBoundary() const {
  const Token& t = Peek();
  return t.type == TokenType::kEnd || t.Is("from") || t.Is("retrieve") ||
         t.Is("insert") || t.Is("modify") || t.Is("delete") || t.Is("check") ||
         t.Is("show") || t.Is("scrub") || t.Is("repair");
}

Result<StmtPtr> DmlParser::ParseOne() {
  if (Peek().Is("from") || Peek().Is("retrieve")) return ParseRetrieve();
  if (MatchKeyword("insert")) return ParseInsert();
  if (MatchKeyword("modify")) return ParseModify();
  if (MatchKeyword("delete")) return ParseDelete();
  if (MatchKeyword("check")) {
    SIM_RETURN_IF_ERROR(ExpectKeyword("database", "after CHECK"));
    return StmtPtr(std::make_unique<CheckStmt>());
  }
  if (MatchKeyword("show")) {
    SIM_RETURN_IF_ERROR(ExpectKeyword("metrics", "after SHOW"));
    return StmtPtr(std::make_unique<ShowMetricsStmt>());
  }
  if (MatchKeyword("scrub")) {
    SIM_RETURN_IF_ERROR(ExpectKeyword("database", "after SCRUB"));
    return StmtPtr(std::make_unique<ScrubStmt>());
  }
  if (MatchKeyword("repair")) {
    SIM_RETURN_IF_ERROR(ExpectKeyword("database", "after REPAIR"));
    return StmtPtr(std::make_unique<RepairStmt>());
  }
  return ErrorHere(
      "expected FROM, RETRIEVE, INSERT, MODIFY, DELETE, CHECK, SHOW, SCRUB "
      "or REPAIR");
}

Result<StmtPtr> DmlParser::ParseRetrieve() {
  auto stmt = std::make_unique<RetrieveStmt>();
  if (MatchKeyword("from")) {
    for (;;) {
      Perspective p;
      SIM_ASSIGN_OR_RETURN(p.class_name, ExpectIdent("perspective class"));
      // Optional explicit range variable: `From Student S, ...`.
      if (Check(TokenType::kIdent) && !Peek().Is("retrieve")) {
        p.ref_var = Advance().text;
      }
      stmt->perspectives.push_back(std::move(p));
      if (!Match(TokenType::kComma)) break;
    }
  }
  SIM_RETURN_IF_ERROR(ExpectKeyword("retrieve", "in query"));
  if (MatchKeyword("table")) {
    stmt->mode = MatchKeyword("distinct") ? OutputMode::kTableDistinct
                                          : OutputMode::kTable;
  } else if (MatchKeyword("structure")) {
    stmt->mode = OutputMode::kStructure;
  }
  // RETRIEVE FIRST n — only when followed by an integer, so an attribute
  // named FIRST still parses as a target.
  if (Peek().Is("first") && Peek(1).type == TokenType::kInt) {
    Advance();
    stmt->limit = Advance().int_value;
    if (stmt->limit < 0) return ErrorHere("FIRST requires a count >= 0");
  }
  for (;;) {
    SIM_RETURN_IF_ERROR(ParseTargetItems(&stmt->targets));
    if (!Match(TokenType::kComma)) break;
  }
  // The paper's grammar is [ORDER BY ...] [WHERE ...]; we accept the two
  // clauses in either order (each at most once), plus a trailing LIMIT n.
  while (Peek().Is("order") || Peek().Is("where") ||
         (Peek().Is("limit") && Peek(1).type == TokenType::kInt)) {
    if (Peek().Is("limit")) {
      if (stmt->limit >= 0) return ErrorHere("duplicate LIMIT / FIRST");
      Advance();
      stmt->limit = Advance().int_value;
      if (stmt->limit < 0) return ErrorHere("LIMIT requires a count >= 0");
      continue;
    }
    if (MatchKeyword("order")) {
      if (!stmt->order_by.empty()) {
        return ErrorHere("duplicate ORDER BY clause");
      }
      SIM_RETURN_IF_ERROR(ExpectKeyword("by", "after ORDER"));
      for (;;) {
        OrderItem item;
        SIM_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("desc") || MatchKeyword("descending")) {
          item.descending = true;
        } else {
          MatchKeyword("asc");
          MatchKeyword("ascending");
        }
        stmt->order_by.push_back(std::move(item));
        if (!Match(TokenType::kComma)) break;
      }
    } else if (MatchKeyword("where")) {
      if (stmt->where != nullptr) {
        return ErrorHere("duplicate WHERE clause");
      }
      SIM_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
  }
  return StmtPtr(std::move(stmt));
}

Result<StmtPtr> DmlParser::ParseInsert() {
  auto stmt = std::make_unique<InsertStmt>();
  SIM_ASSIGN_OR_RETURN(stmt->class_name, ExpectIdent("class after INSERT"));
  if (MatchKeyword("from")) {
    SIM_ASSIGN_OR_RETURN(stmt->from_class, ExpectIdent("ancestor class"));
    SIM_RETURN_IF_ERROR(ExpectKeyword("where", "in INSERT ... FROM"));
    SIM_ASSIGN_OR_RETURN(stmt->from_where, ParseExpr());
  }
  if (Match(TokenType::kLParen)) {
    if (!Check(TokenType::kRParen)) {
      SIM_ASSIGN_OR_RETURN(stmt->assignments, ParseAssignmentList());
    }
    SIM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "ending assignment list"));
  }
  return StmtPtr(std::move(stmt));
}

Result<StmtPtr> DmlParser::ParseModify() {
  auto stmt = std::make_unique<ModifyStmt>();
  SIM_ASSIGN_OR_RETURN(stmt->class_name, ExpectIdent("class after MODIFY"));
  SIM_RETURN_IF_ERROR(Expect(TokenType::kLParen, "starting assignment list"));
  SIM_ASSIGN_OR_RETURN(stmt->assignments, ParseAssignmentList());
  SIM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "ending assignment list"));
  if (MatchKeyword("where")) {
    SIM_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return StmtPtr(std::move(stmt));
}

Result<StmtPtr> DmlParser::ParseDelete() {
  auto stmt = std::make_unique<DeleteStmt>();
  SIM_ASSIGN_OR_RETURN(stmt->class_name, ExpectIdent("class after DELETE"));
  if (MatchKeyword("where")) {
    SIM_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return StmtPtr(std::move(stmt));
}

Result<std::vector<Assignment>> DmlParser::ParseAssignmentList() {
  std::vector<Assignment> out;
  for (;;) {
    SIM_ASSIGN_OR_RETURN(Assignment a, ParseAssignment());
    out.push_back(std::move(a));
    if (!Match(TokenType::kComma)) break;
  }
  return out;
}

Result<Assignment> DmlParser::ParseAssignment() {
  Assignment a;
  SIM_ASSIGN_OR_RETURN(a.attr, ExpectIdent("attribute name in assignment"));
  // Accept ":=", and also ": =" (the paper's typesetting splits them).
  if (!Match(TokenType::kAssign)) {
    if (!(Match(TokenType::kColon) && Match(TokenType::kEq))) {
      return ErrorHere("expected ':=' in assignment");
    }
  }
  if (MatchKeyword("include")) {
    a.mode = Assignment::Mode::kInclude;
  } else if (MatchKeyword("exclude")) {
    a.mode = Assignment::Mode::kExclude;
  }
  // EVA selector form: <object> WITH ( <boolexpr> ). Lookahead: an
  // identifier followed by WITH.
  if (Check(TokenType::kIdent) && Peek(1).Is("with")) {
    a.is_selector = true;
    a.with_object = Advance().text;
    Advance();  // WITH
    SIM_RETURN_IF_ERROR(Expect(TokenType::kLParen, "after WITH"));
    SIM_ASSIGN_OR_RETURN(a.with_expr, ParseExpr());
    SIM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "after WITH condition"));
    return a;
  }
  SIM_ASSIGN_OR_RETURN(a.value, ParseExpr());
  return a;
}

Status DmlParser::ParseTargetItems(std::vector<ExprPtr>* out) {
  // §4.2: "Qualifications of multiple target list items can also be
  // parenthetically factored": (Name, Salary) of Advisor expands to
  // Name of Advisor, Salary of Advisor. Distinguished from a parenthesized
  // expression by the OF following the closing parenthesis.
  if (Check(TokenType::kLParen)) {
    size_t saved = pos_;
    Advance();
    std::vector<ExprPtr> inner;
    bool factored = true;
    for (;;) {
      Result<ExprPtr> e = ParseExpr();
      if (!e.ok()) {
        factored = false;
        break;
      }
      inner.push_back(std::move(*e));
      if (Match(TokenType::kComma)) continue;
      break;
    }
    if (factored && Match(TokenType::kRParen) && Peek().Is("of")) {
      std::vector<QualElement> suffix;
      SIM_RETURN_IF_ERROR(ParseQualSuffix(&suffix));
      for (ExprPtr& e : inner) {
        if (e->kind != ExprKind::kQualRef) {
          return ErrorHere(
              "factored qualification requires attribute references");
        }
        auto* ref = static_cast<QualRefExpr*>(e.get());
        ref->elements.insert(ref->elements.end(), suffix.begin(),
                             suffix.end());
        out->push_back(std::move(e));
      }
      return Status::Ok();
    }
    pos_ = saved;  // not factored: re-parse as an ordinary expression
  }
  SIM_ASSIGN_OR_RETURN(ExprPtr target, ParseExpr());
  out->push_back(std::move(target));
  return Status::Ok();
}

// ----- expressions -----

Result<ExprPtr> DmlParser::ParseExpr() {
  SIM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (MatchKeyword("or")) {
    SIM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(lhs),
                                       std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> DmlParser::ParseAnd() {
  SIM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
  while (MatchKeyword("and")) {
    SIM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
    lhs = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(lhs),
                                       std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> DmlParser::ParseNot() {
  if (MatchKeyword("not")) {
    SIM_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
    return ExprPtr(
        std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(operand)));
  }
  return ParseComparison();
}

Result<ExprPtr> DmlParser::ParseComparison() {
  SIM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
  BinaryOp op;
  if (Match(TokenType::kEq)) {
    op = BinaryOp::kEq;
  } else if (Match(TokenType::kNeq)) {
    op = BinaryOp::kNeq;
  } else if (Match(TokenType::kLe)) {
    op = BinaryOp::kLe;
  } else if (Match(TokenType::kLt)) {
    op = BinaryOp::kLt;
  } else if (Match(TokenType::kGe)) {
    op = BinaryOp::kGe;
  } else if (Match(TokenType::kGt)) {
    op = BinaryOp::kGt;
  } else if (MatchKeyword("like")) {
    op = BinaryOp::kLike;
  } else if (MatchKeyword("isa")) {
    auto isa = std::make_unique<IsaExpr>();
    isa->entity = std::move(lhs);
    SIM_ASSIGN_OR_RETURN(isa->class_name, ExpectIdent("class after ISA"));
    return ExprPtr(std::move(isa));
  } else {
    return lhs;
  }
  SIM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
  return ExprPtr(std::make_unique<BinaryExpr>(op, std::move(lhs),
                                              std::move(rhs)));
}

Result<ExprPtr> DmlParser::ParseAdditive() {
  SIM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseTerm());
  for (;;) {
    BinaryOp op;
    if (Match(TokenType::kPlus)) {
      op = BinaryOp::kAdd;
    } else if (Match(TokenType::kMinus)) {
      op = BinaryOp::kSub;
    } else {
      return lhs;
    }
    SIM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseTerm());
    lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
  }
}

Result<ExprPtr> DmlParser::ParseTerm() {
  SIM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseFactor());
  for (;;) {
    BinaryOp op;
    if (Match(TokenType::kStar)) {
      op = BinaryOp::kMul;
    } else if (Match(TokenType::kSlash)) {
      op = BinaryOp::kDiv;
    } else {
      return lhs;
    }
    SIM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseFactor());
    lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
  }
}

bool DmlParser::PeekIsAggregate() const {
  const Token& t = Peek();
  if (!(t.Is("count") || t.Is("sum") || t.Is("avg") || t.Is("min") ||
        t.Is("max"))) {
    return false;
  }
  // Must be followed by '(' or 'distinct ('.
  if (Peek(1).type == TokenType::kLParen) return true;
  return Peek(1).Is("distinct") && Peek(2).type == TokenType::kLParen;
}

bool DmlParser::PeekIsQuantifier() const {
  const Token& t = Peek();
  return (t.Is("some") || t.Is("all") || t.Is("no")) &&
         Peek(1).type == TokenType::kLParen;
}

Result<ExprPtr> DmlParser::ParseFactor() {
  const Token& t = Peek();
  if (t.type == TokenType::kInt) {
    Advance();
    return ExprPtr(std::make_unique<LiteralExpr>(Value::Int(t.int_value)));
  }
  if (t.type == TokenType::kReal) {
    Advance();
    return ExprPtr(std::make_unique<LiteralExpr>(Value::Real(t.real_value)));
  }
  if (t.type == TokenType::kString) {
    Advance();
    return ExprPtr(std::make_unique<LiteralExpr>(Value::Str(t.text)));
  }
  if (t.type == TokenType::kMinus) {
    Advance();
    SIM_ASSIGN_OR_RETURN(ExprPtr operand, ParseFactor());
    return ExprPtr(
        std::make_unique<UnaryExpr>(UnaryOp::kNeg, std::move(operand)));
  }
  if (t.type == TokenType::kLParen) {
    Advance();
    SIM_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
    SIM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "closing parenthesis"));
    return inner;
  }
  if (t.Is("true")) {
    Advance();
    return ExprPtr(std::make_unique<LiteralExpr>(Value::Bool(true)));
  }
  if (t.Is("false")) {
    Advance();
    return ExprPtr(std::make_unique<LiteralExpr>(Value::Bool(false)));
  }
  if (t.Is("null")) {
    Advance();
    return ExprPtr(std::make_unique<LiteralExpr>(Value::Null()));
  }
  if (PeekIsAggregate()) {
    auto agg = std::make_unique<AggregateExpr>();
    const Token& f = Advance();
    if (f.Is("count")) agg->func = AggFunc::kCount;
    if (f.Is("sum")) agg->func = AggFunc::kSum;
    if (f.Is("avg")) agg->func = AggFunc::kAvg;
    if (f.Is("min")) agg->func = AggFunc::kMin;
    if (f.Is("max")) agg->func = AggFunc::kMax;
    agg->distinct = MatchKeyword("distinct");
    SIM_RETURN_IF_ERROR(Expect(TokenType::kLParen, "after aggregate name"));
    SIM_ASSIGN_OR_RETURN(agg->arg, ParseExpr());
    SIM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "after aggregate argument"));
    SIM_RETURN_IF_ERROR(ParseQualSuffix(&agg->outer));
    return ExprPtr(std::move(agg));
  }
  if (PeekIsQuantifier()) {
    auto q = std::make_unique<QuantifiedExpr>();
    const Token& f = Advance();
    if (f.Is("some")) q->quantifier = Quantifier::kSome;
    if (f.Is("all")) q->quantifier = Quantifier::kAll;
    if (f.Is("no")) q->quantifier = Quantifier::kNo;
    SIM_RETURN_IF_ERROR(Expect(TokenType::kLParen, "after quantifier"));
    SIM_ASSIGN_OR_RETURN(q->arg, ParseExpr());
    SIM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "after quantifier argument"));
    return ExprPtr(std::move(q));
  }
  if (t.type == TokenType::kIdent) {
    static const char* kFunctions[] = {"length", "upper",  "lower", "abs",
                                       "round",  "year",   "month", "day"};
    if (Peek(1).type == TokenType::kLParen) {
      for (const char* f : kFunctions) {
        if (t.Is(f)) {
          auto call = std::make_unique<FunctionExpr>();
          call->name = f;
          Advance();
          Advance();  // '('
          if (!Check(TokenType::kRParen)) {
            for (;;) {
              SIM_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
              call->args.push_back(std::move(arg));
              if (!Match(TokenType::kComma)) break;
            }
          }
          SIM_RETURN_IF_ERROR(
              Expect(TokenType::kRParen, "after function arguments"));
          return ExprPtr(std::move(call));
        }
      }
    }
    return ParseQualRefOrCall();
  }
  return ErrorHere("expected expression");
}

Result<QualElement> DmlParser::ParseQualElement() {
  QualElement e;
  if (Peek().Is("transitive") && Peek(1).type == TokenType::kLParen) {
    Advance();
    Advance();
    if (Peek().Is("inverse") && Peek(1).type == TokenType::kLParen) {
      Advance();
      Advance();
      e.inverse = true;
      SIM_ASSIGN_OR_RETURN(e.name, ExpectIdent("EVA name in INVERSE()"));
      SIM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "closing INVERSE()"));
    } else {
      SIM_ASSIGN_OR_RETURN(e.name, ExpectIdent("EVA name in TRANSITIVE()"));
    }
    e.transitive = true;
    SIM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "closing TRANSITIVE()"));
  } else if (Peek().Is("inverse") && Peek(1).type == TokenType::kLParen) {
    Advance();
    Advance();
    e.inverse = true;
    SIM_ASSIGN_OR_RETURN(e.name, ExpectIdent("EVA name in INVERSE()"));
    SIM_RETURN_IF_ERROR(Expect(TokenType::kRParen, "closing INVERSE()"));
  } else {
    SIM_ASSIGN_OR_RETURN(e.name, ExpectIdent("qualification element"));
  }
  if (MatchKeyword("as")) {
    SIM_ASSIGN_OR_RETURN(e.as_class, ExpectIdent("class after AS"));
  }
  return e;
}

Status DmlParser::ParseQualSuffix(std::vector<QualElement>* out) {
  while (Peek().Is("of")) {
    Advance();
    SIM_ASSIGN_OR_RETURN(QualElement e, ParseQualElement());
    out->push_back(std::move(e));
  }
  return Status::Ok();
}

Result<ExprPtr> DmlParser::ParseQualRefOrCall() {
  auto ref = std::make_unique<QualRefExpr>();
  SIM_ASSIGN_OR_RETURN(QualElement first, ParseQualElement());
  ref->elements.push_back(std::move(first));
  SIM_RETURN_IF_ERROR(ParseQualSuffix(&ref->elements));
  return ExprPtr(std::move(ref));
}

}  // namespace sim
