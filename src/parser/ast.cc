#include "parser/ast.h"

namespace sim {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr:
      return "or";
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNeq:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kLike:
      return "like";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
  }
  return "?";
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "?";
}

const char* QuantifierName(Quantifier q) {
  switch (q) {
    case Quantifier::kSome:
      return "some";
    case Quantifier::kAll:
      return "all";
    case Quantifier::kNo:
      return "no";
  }
  return "?";
}

std::string LiteralExpr::ToText() const {
  if (value.type() == ValueType::kString) {
    std::string out = "\"";
    for (char c : value.string_value()) {
      out.push_back(c);
      if (c == '"') out.push_back('"');
    }
    out.push_back('"');
    return out;
  }
  return value.ToString();
}

std::string QualElement::ToText() const {
  std::string out;
  if (transitive) {
    out = "transitive(" + name + ")";
  } else if (inverse) {
    out = "inverse(" + name + ")";
  } else {
    out = name;
  }
  if (!as_class.empty()) out += " as " + as_class;
  return out;
}

std::string QualRefExpr::ToText() const {
  std::string out;
  for (size_t i = 0; i < elements.size(); ++i) {
    if (i > 0) out += " of ";
    out += elements[i].ToText();
  }
  return out;
}

std::string BinaryExpr::ToText() const {
  return "(" + lhs->ToText() + " " + BinaryOpName(op) + " " + rhs->ToText() +
         ")";
}

std::string UnaryExpr::ToText() const {
  if (op == UnaryOp::kNot) return "(not " + operand->ToText() + ")";
  return "(-" + operand->ToText() + ")";
}

std::string AggregateExpr::ToText() const {
  std::string out = AggFuncName(func);
  if (distinct) out += " distinct";
  out += "(" + arg->ToText() + ")";
  for (const auto& e : outer) out += " of " + e.ToText();
  return out;
}

std::string QuantifiedExpr::ToText() const {
  return std::string(QuantifierName(quantifier)) + "(" + arg->ToText() + ")";
}

std::string FunctionExpr::ToText() const {
  std::string out = name + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i]->ToText();
  }
  return out + ")";
}

std::string IsaExpr::ToText() const {
  return "(" + entity->ToText() + " isa " + class_name + ")";
}

}  // namespace sim
