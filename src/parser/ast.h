#ifndef SIMDB_PARSER_AST_H_
#define SIMDB_PARSER_AST_H_

// Abstract syntax for SIM DML (§4) and the declarations of the DDL (§7).
// Qualification chains are kept exactly as written (leftmost attribute
// first); the binder completes and resolves them against the perspective
// classes.

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace sim {

// ----- expressions -----

enum class ExprKind {
  kLiteral,
  kQualRef,
  kBinary,
  kUnary,
  kAggregate,
  kQuantified,
  kIsa,
  kFunction,
};

struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;
  ExprKind kind;

  // Round-trips the expression back to DML text (used for catalog storage
  // of VERIFY conditions and for diagnostics).
  virtual std::string ToText() const = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

struct LiteralExpr : Expr {
  explicit LiteralExpr(Value v) : Expr(ExprKind::kLiteral), value(std::move(v)) {}
  Value value;
  std::string ToText() const override;
};

// One element of a qualification chain: an attribute name, a perspective
// class name or a reference variable, optionally wrapped in INVERSE(...) or
// TRANSITIVE(...) and optionally role-converted with AS.
struct QualElement {
  std::string name;
  std::string as_class;   // AS <class> role conversion; empty if absent
  bool inverse = false;    // INVERSE(<eva>)
  bool transitive = false; // TRANSITIVE(<eva>)
  std::string ToText() const;
};

// "<e1> OF <e2> OF ... OF <ek>" stored leftmost-first: elements[0] is the
// final attribute, elements.back() is nearest the perspective.
struct QualRefExpr : Expr {
  QualRefExpr() : Expr(ExprKind::kQualRef) {}
  std::vector<QualElement> elements;
  std::string ToText() const override;
};

enum class BinaryOp {
  kOr,
  kAnd,
  kEq,
  kNeq,
  kLt,
  kLe,
  kGt,
  kGe,
  kLike,
  kAdd,
  kSub,
  kMul,
  kDiv,
};

const char* BinaryOpName(BinaryOp op);

struct BinaryExpr : Expr {
  BinaryExpr(BinaryOp o, ExprPtr l, ExprPtr r)
      : Expr(ExprKind::kBinary), op(o), lhs(std::move(l)), rhs(std::move(r)) {}
  BinaryOp op;
  ExprPtr lhs, rhs;
  std::string ToText() const override;
};

enum class UnaryOp { kNot, kNeg };

struct UnaryExpr : Expr {
  UnaryExpr(UnaryOp o, ExprPtr e)
      : Expr(ExprKind::kUnary), op(o), operand(std::move(e)) {}
  UnaryOp op;
  ExprPtr operand;
  std::string ToText() const override;
};

enum class AggFunc { kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncName(AggFunc f);

// <func> [DISTINCT] ( <arg> ) [OF <outer qualification>]
// The argument is evaluated in a fresh binding scope rooted where the
// outer qualification anchors (§4.6: aggregates delimit their scope).
struct AggregateExpr : Expr {
  AggregateExpr() : Expr(ExprKind::kAggregate) {}
  AggFunc func = AggFunc::kCount;
  bool distinct = false;
  ExprPtr arg;
  std::vector<QualElement> outer;  // leftmost-first, may be empty
  std::string ToText() const override;
};

enum class Quantifier { kSome, kAll, kNo };

const char* QuantifierName(Quantifier q);

// SOME/ALL/NO ( <path> ) — appears as a comparison operand (§4.6/§4.9).
struct QuantifiedExpr : Expr {
  QuantifiedExpr() : Expr(ExprKind::kQuantified) {}
  Quantifier quantifier = Quantifier::kSome;
  ExprPtr arg;
  std::string ToText() const override;
};

// Scalar primitive functions (§4.9: "an array of operators and primitive
// functions"): LENGTH, UPPER, LOWER, ABS, ROUND, YEAR, MONTH, DAY.
struct FunctionExpr : Expr {
  FunctionExpr() : Expr(ExprKind::kFunction) {}
  std::string name;  // lowercase
  std::vector<ExprPtr> args;
  std::string ToText() const override;
};

// <entity path> ISA <class> (§4.9 example 7).
struct IsaExpr : Expr {
  IsaExpr() : Expr(ExprKind::kIsa) {}
  ExprPtr entity;
  std::string class_name;
  std::string ToText() const override;
};

// ----- DML statements -----

enum class StmtKind {
  kRetrieve,
  kInsert,
  kModify,
  kDelete,
  kCheck,
  kShowMetrics,
  kScrub,
  kRepair,
};

struct Stmt {
  explicit Stmt(StmtKind k) : kind(k) {}
  virtual ~Stmt() = default;
  StmtKind kind;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct Perspective {
  std::string class_name;
  std::string ref_var;  // optional explicit range variable
};

enum class OutputMode { kDefault, kTable, kTableDistinct, kStructure };

struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

struct RetrieveStmt : Stmt {
  RetrieveStmt() : Stmt(StmtKind::kRetrieve) {}
  std::vector<Perspective> perspectives;  // empty = derive from targets
  OutputMode mode = OutputMode::kDefault;
  std::vector<ExprPtr> targets;
  std::vector<OrderItem> order_by;
  ExprPtr where;  // may be null
  // RETRIEVE FIRST n / trailing LIMIT n; -1 = no limit.
  int64_t limit = -1;
};

// One assignment inside INSERT or MODIFY (§4.8):
//   <attr> := <expr>
//   <attr> := [INCLUDE|EXCLUDE] <expr>                      (MV DVA)
//   <attr> := [INCLUDE|EXCLUDE] <object> WITH ( <boolexpr> ) (EVA)
struct Assignment {
  enum class Mode { kSet, kInclude, kExclude };
  std::string attr;
  Mode mode = Mode::kSet;
  // EVA selector form: entities of `with_object` satisfying `with_expr`.
  bool is_selector = false;
  std::string with_object;
  ExprPtr with_expr;
  // Plain expression form.
  ExprPtr value;
};

struct InsertStmt : Stmt {
  InsertStmt() : Stmt(StmtKind::kInsert) {}
  std::string class_name;
  // Role-extension form: INSERT <class> FROM <ancestor> WHERE <expr>.
  std::string from_class;
  ExprPtr from_where;
  std::vector<Assignment> assignments;
};

struct ModifyStmt : Stmt {
  ModifyStmt() : Stmt(StmtKind::kModify) {}
  std::string class_name;
  std::vector<Assignment> assignments;
  ExprPtr where;
};

struct DeleteStmt : Stmt {
  DeleteStmt() : Stmt(StmtKind::kDelete) {}
  std::string class_name;
  ExprPtr where;
};

// CHECK DATABASE — run the invariant audit and deliver the findings as a
// result set (simcheck extension; not part of the paper's DML).
struct CheckStmt : Stmt {
  CheckStmt() : Stmt(StmtKind::kCheck) {}
};

// SHOW METRICS — dump the metrics registry as a (name, value) result set
// (obs extension; not part of the paper's DML).
struct ShowMetricsStmt : Stmt {
  ShowMetricsStmt() : Stmt(StmtKind::kShowMetrics) {}
};

// SCRUB DATABASE — synchronous media-verification pass: every page's CRC,
// every heap record's codec; quarantines rotted pages (DESIGN.md §13).
struct ScrubStmt : Stmt {
  ScrubStmt() : Stmt(StmtKind::kScrub) {}
};

// REPAIR DATABASE — salvage: reformat quarantined pages, drop what they
// took, rebuild every derived structure, then re-audit (DESIGN.md §13).
struct RepairStmt : Stmt {
  RepairStmt() : Stmt(StmtKind::kRepair) {}
};

// ----- DDL statements -----

struct TypeDecl {
  std::string name;
  DataType type;
};

struct DdlStatement {
  // Exactly one of these is populated.
  std::unique_ptr<TypeDecl> type_decl;
  std::unique_ptr<ClassDef> class_decl;
  std::unique_ptr<VerifyDef> verify_decl;
  std::unique_ptr<ViewDef> view_decl;
};

}  // namespace sim

#endif  // SIMDB_PARSER_AST_H_
