#ifndef SIMDB_PARSER_LEXER_H_
#define SIMDB_PARSER_LEXER_H_

// Tokenizer for SIM DDL/DML text. Supports (* ... *) comments, hyphenated
// identifiers, "string" literals with "" escapes, integer and decimal
// literals, `..` range punctuation and `:=` assignment.

#include <string>
#include <vector>

#include "common/status.h"
#include "parser/token.h"

namespace sim {

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  // Tokenizes the whole input; the final token is always kEnd.
  Result<std::vector<Token>> Tokenize();

 private:
  Status LexOne(std::vector<Token>* out);
  char Peek(size_t ahead = 0) const;
  char Advance();
  bool AtEnd() const { return pos_ >= input_.size(); }
  Token Make(TokenType type) const;
  Status ErrorHere(const std::string& message) const;

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  int tok_line_ = 1;
  int tok_column_ = 1;
};

}  // namespace sim

#endif  // SIMDB_PARSER_LEXER_H_
