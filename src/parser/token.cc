#include "parser/token.h"

#include "common/strings.h"

namespace sim {

const char* TokenTypeName(TokenType t) {
  switch (t) {
    case TokenType::kEnd:
      return "end of input";
    case TokenType::kIdent:
      return "identifier";
    case TokenType::kString:
      return "string literal";
    case TokenType::kInt:
      return "integer literal";
    case TokenType::kReal:
      return "number literal";
    case TokenType::kLParen:
      return "'('";
    case TokenType::kRParen:
      return "')'";
    case TokenType::kLBracket:
      return "'['";
    case TokenType::kRBracket:
      return "']'";
    case TokenType::kComma:
      return "','";
    case TokenType::kSemicolon:
      return "';'";
    case TokenType::kPeriod:
      return "'.'";
    case TokenType::kColon:
      return "':'";
    case TokenType::kAssign:
      return "':='";
    case TokenType::kEq:
      return "'='";
    case TokenType::kNeq:
      return "'<>'";
    case TokenType::kLt:
      return "'<'";
    case TokenType::kLe:
      return "'<='";
    case TokenType::kGt:
      return "'>'";
    case TokenType::kGe:
      return "'>='";
    case TokenType::kPlus:
      return "'+'";
    case TokenType::kMinus:
      return "'-'";
    case TokenType::kStar:
      return "'*'";
    case TokenType::kSlash:
      return "'/'";
    case TokenType::kDotDot:
      return "'..'";
  }
  return "?";
}

bool Token::Is(const char* keyword) const {
  return type == TokenType::kIdent && NameEq(text, keyword);
}

std::string Token::Describe() const {
  if (type == TokenType::kIdent) return "'" + text + "'";
  if (type == TokenType::kString) return "string \"" + text + "\"";
  if (type == TokenType::kInt) return "integer " + std::to_string(int_value);
  if (type == TokenType::kReal) return "number literal";
  return TokenTypeName(type);
}

}  // namespace sim
