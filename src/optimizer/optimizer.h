#ifndef SIMDB_OPTIMIZER_OPTIMIZER_H_
#define SIMDB_OPTIMIZER_OPTIMIZER_H_

// Query optimization (§5.1): build the query graph over LUC objects
// (here: the bound QT), enumerate strategies, cost each and pick the
// cheapest. Strategies cover the perspective (root) access paths — extent
// scan vs. secondary-index equality lookup — and, for multi-perspective
// queries, the join (root iteration) order. A strategy that does not
// preserve the perspective-implied output ordering carries an explicit
// sort cost ("Transformation of a query graph for a strategy is tested to
// see if it is semantics-preserving, and, if it is not, the cost of
// reordering/sorting output is added").

#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/relaxed_counter.h"
#include "common/thread_annotations.h"
#include "luc/mapper.h"
#include "optimizer/cost_model.h"
#include "optimizer/stats.h"
#include "semantics/query_tree.h"

namespace sim {

struct PhysicalPlan;  // exec/physical_plan.h

struct AccessPlan {
  enum class RootMethod { kScan, kIndexEq };

  struct RootAccess {
    int node = -1;
    RootMethod method = RootMethod::kScan;
    // For kIndexEq: the indexed attribute and the literal to probe with.
    std::string index_class, index_attr;
    Value eq_value;
    double est_cardinality = 0;
  };

  // Roots in chosen iteration order (may differ from declaration order).
  std::vector<RootAccess> roots;
  // True when the root order matches the perspective list, so the output
  // comes out in perspective order without sorting.
  bool order_preserving = true;
  double est_cost = 0;
  double sort_cost = 0;
  int strategies_considered = 0;

  std::string Describe() const;
};

class Optimizer {
 public:
  explicit Optimizer(LucMapper* mapper)
      : mapper_(mapper),
        stats_(StatsSnapshot::Collect(mapper)),
        cost_model_(&mapper->phys(), &stats_),
        stats_mutation_count_(mapper->mutation_count()) {}

  // Re-reads statistics from the mapper.
  void RefreshStats() SIM_EXCLUDES(opt_mu_);

  // Chooses the cheapest root-access strategy. Statistics are refreshed
  // automatically when the mapper's mutation counter has advanced since
  // they were collected, so a long-lived Optimizer never plans on stale
  // cardinalities. Planning is latched (opt_mu_): a refresh mutates the
  // snapshot and cost model in place, so concurrent statements serialize
  // through here briefly before executing in parallel.
  Result<AccessPlan> Optimize(const QueryTree& qt) SIM_EXCLUDES(opt_mu_);

  // Full physical planning: Optimize + compile the winning strategy into
  // a Volcano operator tree.
  Result<PhysicalPlan> Plan(const QueryTree& qt);

  const CostModel& cost_model() const { return cost_model_; }
  const StatsSnapshot& stats() const { return stats_; }

  // Cumulative work counts, sampled by the Database's metrics registry
  // (simdb_opt_plans_total / simdb_opt_stats_refreshes_total). A refresh
  // rate approaching the plan rate means every statement pays a
  // statistics scan — the signal the mutation-counter coupling exists to
  // keep low.
  uint64_t plans_made() const { return plans_made_; }
  uint64_t stats_refreshes() const { return stats_refreshes_; }

 private:
  struct IndexCandidate {
    int root = -1;
    std::string index_class, index_attr;
    Value eq_value;
  };

  void RefreshStatsLocked() SIM_REQUIRES(opt_mu_);

  // Finds `field(root) = literal` conjuncts with a secondary index.
  void CollectIndexCandidates(const QueryTree& qt, const BExpr* expr,
                              std::vector<IndexCandidate>* out) const;

  // Cost of one complete strategy.
  double CostStrategy(const QueryTree& qt,
                      const std::vector<AccessPlan::RootAccess>& roots) const;

  double ChildTraversalCost(const QueryTree& qt, int node,
                            double parent_card) const;

  LucMapper* mapper_;
  // Guarded by opt_mu_ during planning; the unlatched accessors above are
  // for single-threaded tests and tools.
  mutable Mutex opt_mu_;
  StatsSnapshot stats_;
  CostModel cost_model_;
  // Mapper mutation count at the time stats_ was collected.
  uint64_t stats_mutation_count_ = 0;
  // Sampled by metrics scrapes concurrent with planning; see
  // common/relaxed_counter.h.
  RelaxedCounter plans_made_;
  RelaxedCounter stats_refreshes_;
};

}  // namespace sim

#endif  // SIMDB_OPTIMIZER_OPTIMIZER_H_
