#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "exec/physical_plan.h"

namespace sim {

std::string AccessPlan::Describe() const {
  std::string out = "plan(";
  for (size_t i = 0; i < roots.size(); ++i) {
    if (i > 0) out += ", ";
    out += "X" + std::to_string(roots[i].node);
    if (roots[i].method == RootMethod::kIndexEq) {
      out += ":index[" + roots[i].index_class + "." + roots[i].index_attr +
             "=" + roots[i].eq_value.ToString() + "]";
    } else {
      out += ":scan";
    }
  }
  out += ") cost=" + std::to_string(est_cost);
  if (!order_preserving) {
    out += " +sort=" + std::to_string(sort_cost);
  }
  return out;
}

void Optimizer::RefreshStats() {
  MutexLock l(opt_mu_);
  RefreshStatsLocked();
}

void Optimizer::RefreshStatsLocked() {
  ++stats_refreshes_;
  stats_ = StatsSnapshot::Collect(mapper_);
  cost_model_ = CostModel(&mapper_->phys(), &stats_);
  stats_mutation_count_ = mapper_->mutation_count();
}

void Optimizer::CollectIndexCandidates(const QueryTree& qt, const BExpr* expr,
                                       std::vector<IndexCandidate>* out) const {
  if (expr == nullptr) return;
  if (expr->kind != BExprKind::kBinary) return;
  const auto* bin = static_cast<const BBinary*>(expr);
  if (bin->op == BinaryOp::kAnd) {
    CollectIndexCandidates(qt, bin->lhs.get(), out);
    CollectIndexCandidates(qt, bin->rhs.get(), out);
    return;
  }
  if (bin->op != BinaryOp::kEq) return;
  const BExpr* field_side = bin->lhs.get();
  const BExpr* value_side = bin->rhs.get();
  if (field_side->kind != BExprKind::kField) {
    std::swap(field_side, value_side);
  }
  if (field_side->kind != BExprKind::kField ||
      value_side->kind != BExprKind::kLiteral) {
    return;
  }
  const auto* field = static_cast<const BField*>(field_side);
  const auto* lit = static_cast<const BLiteral*>(value_side);
  // Only root (perspective) nodes benefit from an index entry point.
  bool is_root = false;
  for (int r : qt.roots) {
    if (r == field->node) is_root = true;
  }
  if (!is_root) return;
  if (!mapper_->HasIndex(field->owner->name, field->attr->name)) return;
  IndexCandidate c;
  c.root = field->node;
  c.index_class = field->owner->name;
  c.index_attr = field->attr->name;
  c.eq_value = lit->value;
  out->push_back(std::move(c));
}

double Optimizer::ChildTraversalCost(const QueryTree& qt, int node,
                                     double parent_card) const {
  double total = 0;
  for (int c : qt.MainChildren(node)) {
    const QtNode& child = qt.nodes[c];
    double per_parent = 1.0;
    double child_card = parent_card;
    if (child.derivation == NodeDerivation::kEva ||
        child.derivation == NodeDerivation::kTransitiveEva) {
      bool is_side_a = true;
      Result<int> eva = mapper_->phys().EvaOf(child.via_owner->name,
                                              child.via_attr->name,
                                              &is_side_a);
      if (eva.ok()) {
        per_parent = cost_model_.EvaTraverseCost(*eva, is_side_a);
        double fanout =
            static_cast<size_t>(*eva) < stats_.evas.size()
                ? (is_side_a ? stats_.evas[*eva].fanout_a
                             : stats_.evas[*eva].fanout_b)
                : 1.0;
        child_card = parent_card * std::max(fanout, 0.01);
        if (child.derivation == NodeDerivation::kTransitiveEva) {
          // Closures revisit the structure once per reached entity.
          per_parent *= 4.0;
          child_card *= 4.0;
        }
      }
    } else if (child.derivation == NodeDerivation::kMvDva) {
      per_parent = 1.0;  // one dependent-unit or embedded access
    }
    total += parent_card * per_parent + ChildTraversalCost(qt, c, child_card);
  }
  return total;
}

double Optimizer::CostStrategy(
    const QueryTree& qt,
    const std::vector<AccessPlan::RootAccess>& roots) const {
  double cost = 0;
  double outer_card = 1.0;
  for (const auto& r : roots) {
    const QtNode& node = qt.nodes[r.node];
    double access_cost;
    double card;
    if (r.method == AccessPlan::RootMethod::kIndexEq) {
      access_cost = cost_model_.IndexLookupCost();
      card = 1.0;
    } else {
      access_cost = cost_model_.ExtentScanCost(node.class_name);
      card = std::max<double>(
          1.0, static_cast<double>(stats_.CardinalityOf(node.class_name)));
    }
    cost += outer_card * access_cost;
    outer_card *= card;
  }
  // Descend into each root's subtree with its (post-access) cardinality.
  for (const auto& r : roots) {
    const QtNode& node = qt.nodes[r.node];
    double card = r.method == AccessPlan::RootMethod::kIndexEq
                      ? 1.0
                      : std::max<double>(1.0, static_cast<double>(
                                                  stats_.CardinalityOf(
                                                      node.class_name)));
    cost += ChildTraversalCost(qt, r.node, card);
  }
  return cost;
}

Result<PhysicalPlan> Optimizer::Plan(const QueryTree& qt) {
  SIM_ASSIGN_OR_RETURN(AccessPlan access, Optimize(qt));
  return PhysicalPlan::Build(qt, &access, mapper_);
}

Result<AccessPlan> Optimizer::Optimize(const QueryTree& qt) {
  MutexLock l(opt_mu_);
  ++plans_made_;
  // Data has changed since the statistics snapshot: re-collect before
  // costing, so cardinalities and fanouts reflect the current extents.
  if (mapper_->mutation_count() != stats_mutation_count_) {
    RefreshStatsLocked();
  }
  std::vector<IndexCandidate> candidates;
  CollectIndexCandidates(qt, qt.where.get(), &candidates);

  // Base accesses in declaration order.
  std::vector<AccessPlan::RootAccess> base;
  for (int r : qt.roots) {
    AccessPlan::RootAccess a;
    a.node = r;
    a.method = AccessPlan::RootMethod::kScan;
    a.est_cardinality = static_cast<double>(
        stats_.CardinalityOf(qt.nodes[r].class_name));
    base.push_back(std::move(a));
  }

  AccessPlan best;
  best.roots = base;
  best.est_cost = CostStrategy(qt, base);
  best.order_preserving = true;
  int considered = 1;

  // Strategy space: each subset assignment of index candidates (use / not
  // use, one per root) x root permutations. Both spaces are tiny.
  std::vector<std::vector<AccessPlan::RootAccess>> access_options = {base};
  for (const IndexCandidate& c : candidates) {
    size_t existing = access_options.size();
    for (size_t i = 0; i < existing; ++i) {
      std::vector<AccessPlan::RootAccess> with_index = access_options[i];
      for (auto& ra : with_index) {
        if (ra.node == c.root &&
            ra.method == AccessPlan::RootMethod::kScan) {
          ra.method = AccessPlan::RootMethod::kIndexEq;
          ra.index_class = c.index_class;
          ra.index_attr = c.index_attr;
          ra.eq_value = c.eq_value;
          ra.est_cardinality = 1.0;
          access_options.push_back(with_index);
          break;
        }
      }
    }
  }

  for (const auto& option : access_options) {
    // Permute root order (≤ 4 roots: bounded).
    std::vector<size_t> perm(option.size());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    if (perm.size() > 4) {
      // Too many perspectives to permute exhaustively; keep declaration
      // order only.
      double cost = CostStrategy(qt, option);
      ++considered;
      if (cost < best.est_cost) {
        best.roots = option;
        best.est_cost = cost;
        best.order_preserving = true;
        best.sort_cost = 0;
      }
      continue;
    }
    do {
      std::vector<AccessPlan::RootAccess> ordered;
      for (size_t i : perm) ordered.push_back(option[i]);
      double cost = CostStrategy(qt, ordered);
      bool preserving = true;
      for (size_t i = 0; i < perm.size(); ++i) {
        if (perm[i] != i) preserving = false;
      }
      double sort_cost = 0;
      if (!preserving) {
        // Sorting the output restores perspective order: N log N row
        // moves, charged in block units.
        double rows = 1.0;
        for (const auto& r : ordered) {
          rows *= std::max(1.0, r.est_cardinality);
        }
        sort_cost = rows * std::log2(std::max(2.0, rows)) /
                    cost_model_.blocking_factor();
        cost += sort_cost;
      }
      ++considered;
      if (cost < best.est_cost) {
        best.roots = std::move(ordered);
        best.est_cost = cost;
        best.order_preserving = preserving;
        best.sort_cost = sort_cost;
      }
    } while (std::next_permutation(perm.begin(), perm.end()));
  }
  best.strategies_considered = considered;
  return best;
}

}  // namespace sim
