#ifndef SIMDB_OPTIMIZER_STATS_H_
#define SIMDB_OPTIMIZER_STATS_H_

// Statistics the Parser/Optimizer feeds its cost model (§5.1: "Cardinality
// of LUCs and relationships, blocking factors, indexes and the cost of
// accessing the first and subsequent instances of a relationship are some
// of the optimization parameters used").

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "luc/mapper.h"

namespace sim {

struct StatsSnapshot {
  struct EvaStats {
    uint64_t pairs = 0;
    double fanout_a = 1.0;  // avg side-B targets per side-A owner
    double fanout_b = 1.0;
  };

  // Lowercase class name -> extent cardinality.
  std::map<std::string, uint64_t> class_cardinality;
  std::vector<EvaStats> evas;  // parallel to phys.evas()
  // Records per page for extent scans (blocking factor).
  double blocking_factor = 40.0;

  uint64_t CardinalityOf(const std::string& cls) const;

  // Reads maintained counters from the mapper (no scans).
  static StatsSnapshot Collect(LucMapper* mapper);
};

}  // namespace sim

#endif  // SIMDB_OPTIMIZER_STATS_H_
