#include "optimizer/stats.h"

#include "common/strings.h"

namespace sim {

uint64_t StatsSnapshot::CardinalityOf(const std::string& cls) const {
  auto it = class_cardinality.find(AsciiLower(cls));
  return it == class_cardinality.end() ? 0 : it->second;
}

StatsSnapshot StatsSnapshot::Collect(LucMapper* mapper) {
  StatsSnapshot s;
  const DirectoryManager& dir = mapper->dir();
  for (const auto& name : dir.class_names()) {
    Result<uint64_t> count = mapper->ExtentCount(name);
    s.class_cardinality[AsciiLower(name)] = count.ok() ? *count : 0;
  }
  const PhysicalSchema& phys = mapper->phys();
  for (size_t i = 0; i < phys.evas().size(); ++i) {
    StatsSnapshot::EvaStats es;
    es.pairs = mapper->EvaPairCount(static_cast<int>(i));
    es.fanout_a = mapper->AvgEvaFanout(static_cast<int>(i), true);
    es.fanout_b = mapper->AvgEvaFanout(static_cast<int>(i), false);
    s.evas.push_back(es);
  }
  return s;
}

}  // namespace sim
