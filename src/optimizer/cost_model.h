#ifndef SIMDB_OPTIMIZER_COST_MODEL_H_
#define SIMDB_OPTIMIZER_COST_MODEL_H_

// Block-access cost model. Costs follow §5.1–5.2: the I/O cost of reaching
// the first instance of a relationship depends on its physical mapping —
// 0 when the value is in the already-fetched record (foreign-key field) or
// in an in-memory direct-key structure, 1 block for hashed keys, index
// height for index-sequential keys — and each delivered target record
// costs one block to fetch. "This technique enables the Optimizer to do
// its job without considering physical mapping details" beyond these
// parameters.

#include "catalog/luc_translation.h"
#include "optimizer/stats.h"
#include "semantics/query_tree.h"

namespace sim {

class CostModel {
 public:
  CostModel(const PhysicalSchema* phys, const StatsSnapshot* stats)
      : phys_(phys), stats_(stats) {}

  // Blocks to scan the whole extent of `cls`.
  double ExtentScanCost(const std::string& cls) const;

  // Blocks to locate one entity through a secondary index and fetch it.
  double IndexLookupCost() const;

  // Blocks to enumerate the targets of one relationship instance set:
  // first-instance cost + per-target record fetches.
  double EvaTraverseCost(int eva_idx, bool from_a) const;

  // First-instance block cost for the EVA's mapping and key organization.
  double FirstInstanceCost(const EvaPhys& eva, bool from_a) const;

  double blocking_factor() const { return stats_->blocking_factor; }
  const StatsSnapshot& stats() const { return *stats_; }

 private:
  const PhysicalSchema* phys_;
  const StatsSnapshot* stats_;
};

}  // namespace sim

#endif  // SIMDB_OPTIMIZER_COST_MODEL_H_
