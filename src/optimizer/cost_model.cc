#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace sim {

double CostModel::ExtentScanCost(const std::string& cls) const {
  // The extent scan touches every page of the class's storage unit; with
  // co-located hierarchies the unit holds the whole family, which is why
  // subclass scans of a colocated unit are costed on the family size.
  Result<int> unit = phys_->UnitOf(cls);
  double records = static_cast<double>(stats_->CardinalityOf(cls));
  if (unit.ok()) {
    double family = 0;
    for (const auto& c : phys_->units()[*unit].classes) {
      family += static_cast<double>(stats_->CardinalityOf(c));
    }
    records = std::max(records, family);
  }
  return std::max(1.0, records / stats_->blocking_factor);
}

double CostModel::IndexLookupCost() const {
  // B+-tree descent (~height) plus one block for the record itself. A
  // typical small index is 2 levels.
  return 3.0;
}

double CostModel::FirstInstanceCost(const EvaPhys& eva, bool from_a) const {
  bool owner_single = from_a ? !eva.a_mv : !eva.b_mv;
  if (eva.mapping == EvaMapping::kForeignKey && owner_single) {
    // The surrogate sits in the already-fetched owner record.
    return 0.0;
  }
  switch (eva.org) {
    case KeyOrganization::kDirect:
      return 0.0;  // in-memory record-number keys
    case KeyOrganization::kHashed:
      return 1.0;  // one bucket page
    case KeyOrganization::kIndexSequential: {
      // Tree height grows with the structure's population.
      size_t idx = 0;
      for (; idx < phys_->evas().size(); ++idx) {
        if (&phys_->evas()[idx] == &eva) break;
      }
      double pairs = idx < stats_->evas.size()
                         ? static_cast<double>(stats_->evas[idx].pairs)
                         : 0.0;
      return std::max(1.0, std::ceil(std::log(std::max(2.0, pairs)) /
                                     std::log(100.0)));
    }
  }
  return 1.0;
}

double CostModel::EvaTraverseCost(int eva_idx, bool from_a) const {
  const EvaPhys& eva = phys_->evas()[eva_idx];
  double fanout = 1.0;
  if (static_cast<size_t>(eva_idx) < stats_->evas.size()) {
    fanout = from_a ? stats_->evas[eva_idx].fanout_a
                    : stats_->evas[eva_idx].fanout_b;
  }
  // First instance + one block per delivered target record.
  return FirstInstanceCost(eva, from_a) + std::max(0.0, fanout) * 1.0;
}

}  // namespace sim
