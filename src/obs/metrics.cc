#include "obs/metrics.h"

namespace sim {
namespace obs {

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

std::vector<uint64_t> Histogram::DefaultLatencyBoundsUs() {
  std::vector<uint64_t> bounds;
  for (uint64_t decade = 1; decade <= 1000000; decade *= 10) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2);
    bounds.push_back(decade * 5);
  }
  bounds.push_back(10000000);  // 10 s
  return bounds;
}

void Histogram::Observe(uint64_t v) {
  size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

MetricsRegistry::Entry* MetricsRegistry::Find(const std::string& name) {
  for (Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

MetricsRegistry::Entry& MetricsRegistry::Register(const std::string& name,
                                                  const std::string& help,
                                                  Kind kind) {
  entries_.emplace_back();
  Entry& e = entries_.back();
  e.name = name;
  e.help = help;
  e.kind = kind;
  return e;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  MutexLock lock(mu_);
  if (Entry* e = Find(name)) return &e->counter;
  return &Register(name, help, Kind::kCounter).counter;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  MutexLock lock(mu_);
  if (Entry* e = Find(name)) return &e->gauge;
  return &Register(name, help, Kind::kGauge).gauge;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<uint64_t> bounds) {
  MutexLock lock(mu_);
  if (Entry* e = Find(name)) return e->histogram.get();
  Entry& e = Register(name, help, Kind::kHistogram);
  if (bounds.empty()) bounds = Histogram::DefaultLatencyBoundsUs();
  e.histogram = std::make_unique<Histogram>(std::move(bounds));
  return e.histogram.get();
}

void MetricsRegistry::RegisterCounterView(const std::string& name,
                                          const std::string& help,
                                          const Counter* cell) {
  MutexLock lock(mu_);
  if (Find(name) != nullptr) return;
  Register(name, help, Kind::kCounterView).view = cell;
}

void MetricsRegistry::RegisterCallback(const std::string& name,
                                       const std::string& help,
                                       std::function<uint64_t()> fn) {
  MutexLock lock(mu_);
  if (Find(name) != nullptr) return;
  Register(name, help, Kind::kCallback).fn = std::move(fn);
}

void MetricsRegistry::RegisterGaugeCallback(const std::string& name,
                                            const std::string& help,
                                            std::function<uint64_t()> fn) {
  MutexLock lock(mu_);
  if (Find(name) != nullptr) return;
  Register(name, help, Kind::kGaugeCallback).fn = std::move(fn);
}

std::string MetricsRegistry::TextExposition() const {
  MutexLock lock(mu_);
  std::string out;
  for (const Entry& e : entries_) {
    out += "# HELP " + e.name + " " + e.help + "\n";
    const char* type = "counter";
    if (e.kind == Kind::kGauge || e.kind == Kind::kGaugeCallback) {
      type = "gauge";
    }
    if (e.kind == Kind::kHistogram) type = "histogram";
    out += "# TYPE " + e.name + " " + type + "\n";
    switch (e.kind) {
      case Kind::kCounter:
        out += e.name + " " + std::to_string(e.counter.value()) + "\n";
        break;
      case Kind::kGauge:
        out += e.name + " " + std::to_string(e.gauge.value()) + "\n";
        break;
      case Kind::kCounterView:
        out += e.name + " " + std::to_string(e.view->value()) + "\n";
        break;
      case Kind::kCallback:
      case Kind::kGaugeCallback:
        out += e.name + " " + std::to_string(e.fn()) + "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e.histogram;
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.bucket(i);
          out += e.name + "_bucket{le=\"" + std::to_string(h.bounds()[i]) +
                 "\"} " + std::to_string(cumulative) + "\n";
        }
        cumulative += h.bucket(h.bounds().size());
        out += e.name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
               "\n";
        out += e.name + "_sum " + std::to_string(h.sum()) + "\n";
        out += e.name + "_count " + std::to_string(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::vector<Sample> MetricsRegistry::Samples() const {
  MutexLock lock(mu_);
  std::vector<Sample> out;
  for (const Entry& e : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        out.push_back({e.name, e.counter.value()});
        break;
      case Kind::kGauge:
        out.push_back({e.name, static_cast<uint64_t>(e.gauge.value())});
        break;
      case Kind::kCounterView:
        out.push_back({e.name, e.view->value()});
        break;
      case Kind::kCallback:
      case Kind::kGaugeCallback:
        out.push_back({e.name, e.fn()});
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e.histogram;
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.bucket(i);
          out.push_back({e.name + "_bucket{le=\"" +
                             std::to_string(h.bounds()[i]) + "\"}",
                         cumulative});
        }
        cumulative += h.bucket(h.bounds().size());
        out.push_back({e.name + "_bucket{le=\"+Inf\"}", cumulative});
        out.push_back({e.name + "_sum", h.sum()});
        out.push_back({e.name + "_count", h.count()});
        break;
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace sim
