#include "obs/trace.h"

#include <cstdio>

namespace sim {
namespace obs {

namespace {

// Minimal JSON string escaping: quotes, backslashes and control bytes.
// Statement text and operator descriptions are ASCII in practice, but a
// string literal inside a traced statement can contain anything.
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string TraceEvent::ToNdjson() const {
  std::string out = "{\"stmt\":" + std::to_string(stmt) + ",\"span\":";
  AppendJsonString(&out, span);
  out += ",\"start_us\":" + std::to_string(start_us) +
         ",\"dur_us\":" + std::to_string(dur_us) +
         ",\"ok\":" + (ok ? "true" : "false");
  for (const auto& [key, value] : attrs) {
    out += ",";
    AppendJsonString(&out, key);
    out += ":" + std::to_string(value);
  }
  if (!detail.empty()) {
    out += ",\"detail\":";
    AppendJsonString(&out, detail);
  }
  out += "}";
  return out;
}

TraceLog::TraceLog(const ObsOptions& options)
    : capacity_(options.trace_capacity_events == 0
                    ? 1
                    : options.trace_capacity_events),
      epoch_(std::chrono::steady_clock::now()) {
  if (!options.trace_ndjson_path.empty()) {
    sink_.open(options.trace_ndjson_path, std::ios::app);
  }
}

uint64_t TraceLog::BeginStatement() {
  return next_stmt_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t TraceLog::NowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceLog::Record(TraceEvent e) {
  MutexLock lock(mu_);
  if (sink_.is_open()) {
    sink_ << e.ToNdjson() << "\n";
    sink_.flush();
  }
  ring_.push_back(std::move(e));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<TraceEvent> TraceLog::Events() const {
  MutexLock lock(mu_);
  return std::vector<TraceEvent>(ring_.begin(), ring_.end());
}

std::string TraceLog::Ndjson() const {
  MutexLock lock(mu_);
  std::string out;
  for (const TraceEvent& e : ring_) {
    out += e.ToNdjson();
    out += "\n";
  }
  return out;
}

Span::Span(TraceLog* log, uint64_t stmt, const char* name) : log_(log) {
  if (log_ == nullptr) return;
  event_.stmt = stmt;
  event_.span = name;
  event_.start_us = log_->NowUs();
  event_.ok = false;  // stages that early-return on error never MarkOk
}

Span::~Span() {
  if (log_ == nullptr) return;
  event_.dur_us = log_->NowUs() - event_.start_us;
  log_->Record(std::move(event_));
}

void Span::AddAttr(const char* key, uint64_t value) {
  if (log_ == nullptr) return;
  event_.attrs.emplace_back(key, value);
}

void Span::SetDetail(std::string detail) {
  if (log_ == nullptr) return;
  event_.detail = std::move(detail);
}

uint64_t Span::ElapsedUs() const {
  if (log_ == nullptr) return 0;
  return log_->NowUs() - event_.start_us;
}

}  // namespace obs
}  // namespace sim
