#ifndef SIMDB_OBS_METRICS_H_
#define SIMDB_OBS_METRICS_H_

// Engine-wide metrics registry. SIM's architecture (§5, Figure 1) is a
// pipeline — Query Driver → Parser/Optimizer → Directory Manager → LUC
// Mapper → data source — and before this layer each stage kept its own
// ad-hoc stats struct (ExecStats, BufferPool::Stats, RetryStats,
// QueryContext::Stats) with no unified surface. The registry is that
// surface: one namespace of named monotonic counters, gauges and
// fixed-bucket latency histograms, exposed as a Prometheus-style text
// exposition (Database::MetricsText, `SHOW METRICS`, simdb_check
// --metrics).
//
// Cost discipline (same as the PR 4 governor): the hot path is one
// relaxed-atomic add per update — no locks, no strings, no branches.
// Registration and exposition take a mutex, but both happen per
// database / per scrape, never per row. Components keep their historical
// stats structs; those are now views over obs::Counter cells that the
// registry exposes by reference (RegisterCounterView) or samples through
// a callback at scrape time (RegisterCallback), so every pre-existing
// accessor keeps working.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace sim {
namespace obs {

// Monotonic counter. Relaxed ordering is deliberate: counters are
// statistics, not synchronization; torn cross-counter snapshots are
// acceptable and each individual load is still atomic.
class Counter {
 public:
  void Add(uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// Instantaneous value (may go down): WAL size, open cursors, ...
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Fixed-bucket histogram (cumulative bucket semantics, like Prometheus):
// bucket i counts observations <= bounds[i], plus an implicit +Inf
// bucket. Bounds are fixed at construction so Observe is a linear probe
// over a small array plus three relaxed adds — no allocation ever.
class Histogram {
 public:
  explicit Histogram(std::vector<uint64_t> bounds);

  // 1 µs .. 10 s in a 1-2-5 progression; the default for latencies.
  static std::vector<uint64_t> DefaultLatencyBoundsUs();

  void Observe(uint64_t v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<uint64_t>& bounds() const { return bounds_; }
  // Non-cumulative count of bucket `i` (i == bounds().size() is +Inf).
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<uint64_t> bounds_;
  std::deque<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> count_{0};
};

// One flattened metric value, as delivered to SHOW METRICS. Histograms
// flatten to name_bucket{le="..."} / name_sum / name_count rows.
struct Sample {
  std::string name;
  uint64_t value = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Creates (or returns the existing) registry-owned metric. The pointer
  // stays valid for the registry's lifetime; callers cache it and update
  // lock-free.
  Counter* GetCounter(const std::string& name, const std::string& help)
      SIM_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, const std::string& help)
      SIM_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<uint64_t> bounds = {})
      SIM_EXCLUDES(mu_);

  // Exposes an externally-owned counter cell (e.g. BufferPool's): the
  // component keeps updating its own Counter, the registry reads it at
  // scrape time. `cell` must outlive the registry.
  void RegisterCounterView(const std::string& name, const std::string& help,
                           const Counter* cell) SIM_EXCLUDES(mu_);

  // Exposes a value computed at scrape time (legacy plain-struct stats:
  // RetryStats, WAL counters). `fn` must stay callable for the registry's
  // lifetime and is invoked under the registry mutex.
  void RegisterCallback(const std::string& name, const std::string& help,
                        std::function<uint64_t()> fn) SIM_EXCLUDES(mu_);

  // Like RegisterCallback, but exposed with `# TYPE ... gauge`: for
  // point-in-time state (degraded flag, quarantined-page count) rather
  // than monotonic totals.
  void RegisterGaugeCallback(const std::string& name, const std::string& help,
                             std::function<uint64_t()> fn) SIM_EXCLUDES(mu_);

  // Prometheus text exposition: # HELP / # TYPE headers followed by
  // name value lines, histograms expanded to _bucket/_sum/_count series.
  std::string TextExposition() const SIM_EXCLUDES(mu_);

  // The same data flattened for SHOW METRICS, in registration order.
  std::vector<Sample> Samples() const SIM_EXCLUDES(mu_);

 private:
  enum class Kind {
    kCounter,
    kGauge,
    kHistogram,
    kCounterView,
    kCallback,
    kGaugeCallback
  };

  struct Entry {
    std::string name;
    std::string help;
    Kind kind;
    Counter counter;                 // kCounter
    Gauge gauge;                     // kGauge
    std::unique_ptr<Histogram> histogram;  // kHistogram
    const Counter* view = nullptr;   // kCounterView
    std::function<uint64_t()> fn;    // kCallback / kGaugeCallback
  };

  Entry* Find(const std::string& name) SIM_REQUIRES(mu_);
  Entry& Register(const std::string& name, const std::string& help, Kind kind)
      SIM_REQUIRES(mu_);

  // Guards registration and scrape. The metric cells themselves are
  // relaxed atomics updated lock-free; only the entry list (and the
  // scrape-time callback invocations) need the lock.
  mutable Mutex mu_;
  std::deque<Entry> entries_
      SIM_GUARDED_BY(mu_);  // deque: stable pointers across registration
};

}  // namespace obs
}  // namespace sim

#endif  // SIMDB_OBS_METRICS_H_
