#ifndef SIMDB_OBS_TRACE_H_
#define SIMDB_OBS_TRACE_H_

// Per-statement tracing. Every statement the Database executes gets a
// statement id and a chain of spans — parse → bind → optimize → map →
// execute — each an RAII Span recording wall time on a steady clock plus
// a handful of numeric attributes (rows, combinations, buffer-pool and
// WAL deltas). Finished spans land in a bounded in-memory ring
// (Database::TraceNdjson renders it) and, when a sink path is
// configured, are appended to an NDJSON event log: one JSON object per
// line, so the log is greppable and tail -f-able without a parser.
//
// A null TraceLog* disables everything: Span's constructor does not even
// read the clock, so the instrumented code paths cost two pointer tests
// per stage when observability is off.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace sim {
namespace obs {

// Observability configuration, carried in DatabaseOptions.
struct ObsOptions {
  // Master switch for per-statement instrumentation (trace spans +
  // statement counters/latency histograms). The component counters that
  // back the historical stats structs are maintained regardless.
  bool enabled = true;
  // Finished trace events kept in memory (oldest evicted first).
  size_t trace_capacity_events = 2048;
  // When non-empty, every finished event is also appended to this file
  // as NDJSON. Failures to open or write are ignored (observability must
  // never fail a statement).
  std::string trace_ndjson_path;
};

// One finished span.
struct TraceEvent {
  uint64_t stmt = 0;         // statement id (chains spans together)
  std::string span;          // "statement", "parse", "bind", ..., "op"
  uint64_t start_us = 0;     // steady-clock offset from the log's epoch
  uint64_t dur_us = 0;
  bool ok = true;
  std::string detail;        // statement text / operator description
  std::vector<std::pair<std::string, uint64_t>> attrs;

  std::string ToNdjson() const;
};

class TraceLog {
 public:
  explicit TraceLog(const ObsOptions& options);

  // Allocates the next statement id (relaxed atomic; ids only need to be
  // unique, not dense across threads).
  uint64_t BeginStatement();

  void Record(TraceEvent e) SIM_EXCLUDES(mu_);

  // Microseconds since the log's epoch (span start stamps).
  uint64_t NowUs() const;

  // Ring snapshot, oldest first.
  std::vector<TraceEvent> Events() const SIM_EXCLUDES(mu_);
  // The ring rendered as NDJSON, one event per line.
  std::string Ndjson() const SIM_EXCLUDES(mu_);

 private:
  const size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> next_stmt_{1};
  // One lock covers the ring and the sink: Record appends to both, and
  // interleaving two statements' lines in the NDJSON file would corrupt
  // the one-object-per-line framing.
  mutable Mutex mu_;
  std::deque<TraceEvent> ring_ SIM_GUARDED_BY(mu_);
  // Open iff a sink path was configured (the open itself happens in the
  // constructor, before the log is shared).
  std::ofstream sink_ SIM_GUARDED_BY(mu_);
};

// RAII span. Constructed against a TraceLog (null = fully disabled) and
// a statement id; records one TraceEvent on destruction. Failure is the
// default for instrumented stages that can return early — call MarkOk()
// on the success path.
class Span {
 public:
  Span(TraceLog* log, uint64_t stmt, const char* name);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  void MarkOk() { event_.ok = true; }
  void Mark(bool ok) { event_.ok = ok; }
  void AddAttr(const char* key, uint64_t value);
  void SetDetail(std::string detail);
  uint64_t ElapsedUs() const;

 private:
  TraceLog* log_;  // null = every member function is a no-op
  TraceEvent event_;
};

}  // namespace obs
}  // namespace sim

#endif  // SIMDB_OBS_TRACE_H_
