#ifndef SIMDB_EXEC_PHYSICAL_PLAN_H_
#define SIMDB_EXEC_PHYSICAL_PLAN_H_

// The physical plan: a Volcano operator tree realizing one AccessPlan
// strategy for a bound query tree. Built once per query, drained by
// Executor::Run or streamed through Database::Cursor.
//
// Tree shape (top to bottom):
//
//   [Limit]  [Distinct]  [Sort]  Project  Filter|Type2Exists
//     NestedLoop/OuterJoinLoop chain over the TYPE 1/3 loop nodes
//       (ExtentScan | IndexProbe | EvaTraverse per node)
//
// The operators reference the QueryTree by node id and by pointers to its
// heap-allocated bound expressions, so the plan stays valid when the
// QueryTree object itself is moved (the streaming cursor relies on this).

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/operators.h"
#include "luc/mapper.h"
#include "optimizer/optimizer.h"
#include "semantics/query_tree.h"

namespace sim {

struct PhysicalPlan {
  OperatorPtr root;
  // The root-access strategy this tree realizes.
  AccessPlan access;
  // The plan reordered roots; Sort restores perspective order.
  bool needs_restore_sort = false;
  // TYPE 1/3 nodes in iteration order (diagnostics, parity tests).
  std::vector<int> loop_nodes;

  // Builds the operator tree for `qt` following `access` (null = extent
  // scans in declaration order). Estimates come from the mapper's
  // maintained counters; Filter selectivity is assumed 1.0 (no predicate
  // statistics yet).
  static Result<PhysicalPlan> Build(const QueryTree& qt,
                                    const AccessPlan* access,
                                    LucMapper* mapper);

  // Indented operator tree, one operator per line with estimated rows;
  // `analyze` adds the actual rows delivered so far.
  std::string Describe(bool analyze = false) const;
};

}  // namespace sim

#endif  // SIMDB_EXEC_PHYSICAL_PLAN_H_
