#include "exec/expr_eval.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>
#include <unordered_set>

#include "common/date.h"
#include "common/strings.h"

namespace sim {

namespace {

// Hash-set support for DISTINCT aggregation.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const {
    return a.StrictEquals(b);
  }
};

Value TriToValue(TriBool t) {
  switch (t) {
    case TriBool::kTrue:
      return Value::Bool(true);
    case TriBool::kFalse:
      return Value::Bool(false);
    case TriBool::kUnknown:
      return Value::Null();
  }
  return Value::Null();
}

TriBool ValueToTri(const Value& v) {
  if (v.is_null()) return TriBool::kUnknown;
  if (v.type() == ValueType::kBool) return MakeTriBool(v.bool_value());
  return TriBool::kUnknown;
}

}  // namespace

Result<Value> ExprEvaluator::Eval(const BExpr& expr) {
  switch (expr.kind) {
    case BExprKind::kLiteral:
      return static_cast<const BLiteral&>(expr).value;
    case BExprKind::kField: {
      const auto& f = static_cast<const BField&>(expr);
      const NodeBinding& b = ctx_->binding(f.node);
      if (!b.bound || b.dummy || b.entity == kInvalidSurrogate) {
        return Value::Null();
      }
      return ctx_->mapper()->GetField(b.entity, f.owner->name, f.attr->name);
    }
    case BExprKind::kNodeValue: {
      const auto& nv = static_cast<const BNodeValue&>(expr);
      const NodeBinding& b = ctx_->binding(nv.node);
      if (!b.bound || b.dummy) return Value::Null();
      return b.value;
    }
    case BExprKind::kNodeRef: {
      const auto& nr = static_cast<const BNodeRef&>(expr);
      const NodeBinding& b = ctx_->binding(nr.node);
      if (!b.bound || b.dummy || b.entity == kInvalidSurrogate) {
        return Value::Null();
      }
      return Value::Surrogate(b.entity);
    }
    case BExprKind::kBinary:
      return EvalBinary(static_cast<const BBinary&>(expr));
    case BExprKind::kUnary: {
      const auto& un = static_cast<const BUnary&>(expr);
      if (un.op == UnaryOp::kNot) {
        SIM_ASSIGN_OR_RETURN(TriBool t, EvalPredicate(*un.operand));
        return TriToValue(TriNot(t));
      }
      SIM_ASSIGN_OR_RETURN(Value v, Eval(*un.operand));
      if (v.is_null()) return Value::Null();
      if (v.type() == ValueType::kInt) return Value::Int(-v.int_value());
      if (v.type() == ValueType::kReal) return Value::Real(-v.real_value());
      return Status::TypeError("unary minus on non-numeric value");
    }
    case BExprKind::kAggregate:
      return EvalAggregate(static_cast<const BAggregate&>(expr));
    case BExprKind::kQuantified: {
      SIM_ASSIGN_OR_RETURN(
          TriBool t,
          EvalQuantifiedStandalone(static_cast<const BQuantified&>(expr)));
      return TriToValue(t);
    }
    case BExprKind::kIsa: {
      const auto& isa = static_cast<const BIsa&>(expr);
      SIM_ASSIGN_OR_RETURN(Value ent, Eval(*isa.entity));
      if (ent.is_null()) return Value::Null();
      SIM_ASSIGN_OR_RETURN(
          bool has,
          ctx_->mapper()->HasRole(ent.surrogate_value(), isa.class_name));
      return Value::Bool(has);
    }
    case BExprKind::kFunction:
      return EvalFunction(static_cast<const BFunction&>(expr));
  }
  return Status::Internal("unhandled bound expression kind");
}

Result<TriBool> ExprEvaluator::EvalPredicate(const BExpr& expr) {
  if (expr.kind == BExprKind::kBinary) {
    const auto& bin = static_cast<const BBinary&>(expr);
    if (bin.op == BinaryOp::kAnd) {
      SIM_ASSIGN_OR_RETURN(TriBool l, EvalPredicate(*bin.lhs));
      if (l == TriBool::kFalse) return TriBool::kFalse;  // short circuit
      SIM_ASSIGN_OR_RETURN(TriBool r, EvalPredicate(*bin.rhs));
      return TriAnd(l, r);
    }
    if (bin.op == BinaryOp::kOr) {
      SIM_ASSIGN_OR_RETURN(TriBool l, EvalPredicate(*bin.lhs));
      if (l == TriBool::kTrue) return TriBool::kTrue;
      SIM_ASSIGN_OR_RETURN(TriBool r, EvalPredicate(*bin.rhs));
      return TriOr(l, r);
    }
    switch (bin.op) {
      case BinaryOp::kEq:
      case BinaryOp::kNeq:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
      case BinaryOp::kLike:
        return EvalComparison(bin.op, *bin.lhs, *bin.rhs);
      default:
        break;
    }
  }
  if (expr.kind == BExprKind::kUnary) {
    const auto& un = static_cast<const BUnary&>(expr);
    if (un.op == UnaryOp::kNot) {
      SIM_ASSIGN_OR_RETURN(TriBool t, EvalPredicate(*un.operand));
      return TriNot(t);
    }
  }
  if (expr.kind == BExprKind::kQuantified) {
    return EvalQuantifiedStandalone(static_cast<const BQuantified&>(expr));
  }
  SIM_ASSIGN_OR_RETURN(Value v, Eval(expr));
  return ValueToTri(v);
}

Result<TriBool> ExprEvaluator::EvalComparison(BinaryOp op, const BExpr& lhs,
                                              const BExpr& rhs) {
  if (rhs.kind == BExprKind::kQuantified) {
    return EvalQuantifiedComparison(op, lhs,
                                    static_cast<const BQuantified&>(rhs),
                                    /*quantified_on_left=*/false);
  }
  if (lhs.kind == BExprKind::kQuantified) {
    return EvalQuantifiedComparison(op, rhs,
                                    static_cast<const BQuantified&>(lhs),
                                    /*quantified_on_left=*/true);
  }
  SIM_ASSIGN_OR_RETURN(Value l, Eval(lhs));
  SIM_ASSIGN_OR_RETURN(Value r, Eval(rhs));
  return CompareValues(op, l, r);
}

Result<TriBool> ExprEvaluator::CompareValues(BinaryOp op, const Value& l,
                                             const Value& r) {
  if (l.is_null() || r.is_null()) return TriBool::kUnknown;
  if (op == BinaryOp::kLike) {
    if (l.type() != ValueType::kString || r.type() != ValueType::kString) {
      return Status::TypeError("LIKE requires string operands");
    }
    return MakeTriBool(LikeMatch(l.string_value(), r.string_value()));
  }
  SIM_ASSIGN_OR_RETURN(int c, l.Compare(r));
  switch (op) {
    case BinaryOp::kEq:
      return MakeTriBool(c == 0);
    case BinaryOp::kNeq:
      return MakeTriBool(c != 0);
    case BinaryOp::kLt:
      return MakeTriBool(c < 0);
    case BinaryOp::kLe:
      return MakeTriBool(c <= 0);
    case BinaryOp::kGt:
      return MakeTriBool(c > 0);
    case BinaryOp::kGe:
      return MakeTriBool(c >= 0);
    default:
      return Status::Internal("not a comparison operator");
  }
}

Result<Value> ExprEvaluator::EvalBinary(const BBinary& bin) {
  switch (bin.op) {
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
    case BinaryOp::kEq:
    case BinaryOp::kNeq:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kLike: {
      SIM_ASSIGN_OR_RETURN(TriBool t, EvalPredicate(bin));
      return TriToValue(t);
    }
    default:
      break;
  }
  SIM_ASSIGN_OR_RETURN(Value l, Eval(*bin.lhs));
  SIM_ASSIGN_OR_RETURN(Value r, Eval(*bin.rhs));
  if (l.is_null() || r.is_null()) return Value::Null();
  // String concatenation via '+'.
  if (bin.op == BinaryOp::kAdd && l.type() == ValueType::kString &&
      r.type() == ValueType::kString) {
    return Value::Str(l.string_value() + r.string_value());
  }
  if (!l.is_numeric() || !r.is_numeric()) {
    return Status::TypeError(std::string("arithmetic on non-numeric values (") +
                             ValueTypeName(l.type()) + ", " +
                             ValueTypeName(r.type()) + ")");
  }
  bool both_int =
      l.type() == ValueType::kInt && r.type() == ValueType::kInt;
  switch (bin.op) {
    case BinaryOp::kAdd:
      if (both_int) return Value::Int(l.int_value() + r.int_value());
      return Value::Real(l.AsReal() + r.AsReal());
    case BinaryOp::kSub:
      if (both_int) return Value::Int(l.int_value() - r.int_value());
      return Value::Real(l.AsReal() - r.AsReal());
    case BinaryOp::kMul:
      if (both_int) return Value::Int(l.int_value() * r.int_value());
      return Value::Real(l.AsReal() * r.AsReal());
    case BinaryOp::kDiv:
      if (r.AsReal() == 0) return Value::Null();  // division by zero -> null
      return Value::Real(l.AsReal() / r.AsReal());
    default:
      return Status::Internal("unhandled arithmetic operator");
  }
}

Result<Value> ExprEvaluator::EvalFunction(const BFunction& fn) {
  std::vector<Value> args;
  for (const BExprPtr& arg : fn.args) {
    SIM_ASSIGN_OR_RETURN(Value v, Eval(*arg));
    args.push_back(std::move(v));
  }
  auto need = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::TypeError(fn.name + " expects " + std::to_string(n) +
                               " argument(s)");
    }
    return Status::Ok();
  };
  // Null propagation: any null argument yields null.
  for (const Value& v : args) {
    if (v.is_null()) return Value::Null();
  }
  if (fn.name == "length") {
    SIM_RETURN_IF_ERROR(need(1));
    if (args[0].type() != ValueType::kString) {
      return Status::TypeError("length expects a string");
    }
    return Value::Int(static_cast<int64_t>(args[0].string_value().size()));
  }
  if (fn.name == "upper" || fn.name == "lower") {
    SIM_RETURN_IF_ERROR(need(1));
    if (args[0].type() != ValueType::kString) {
      return Status::TypeError(fn.name + " expects a string");
    }
    std::string s = args[0].string_value();
    for (char& c : s) {
      c = fn.name == "upper"
              ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
              : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return Value::Str(std::move(s));
  }
  if (fn.name == "abs") {
    SIM_RETURN_IF_ERROR(need(1));
    if (args[0].type() == ValueType::kInt) {
      return Value::Int(std::abs(args[0].int_value()));
    }
    if (args[0].type() == ValueType::kReal) {
      return Value::Real(std::abs(args[0].real_value()));
    }
    return Status::TypeError("abs expects a number");
  }
  if (fn.name == "round") {
    SIM_RETURN_IF_ERROR(need(1));
    if (args[0].type() == ValueType::kInt) return args[0];
    if (args[0].type() == ValueType::kReal) {
      return Value::Int(static_cast<int64_t>(std::llround(args[0].real_value())));
    }
    return Status::TypeError("round expects a number");
  }
  if (fn.name == "year" || fn.name == "month" || fn.name == "day") {
    SIM_RETURN_IF_ERROR(need(1));
    if (args[0].type() != ValueType::kDate) {
      return Status::TypeError(fn.name + " expects a date");
    }
    int y, m, d;
    CivilFromDays(args[0].date_value(), &y, &m, &d);
    if (fn.name == "year") return Value::Int(y);
    if (fn.name == "month") return Value::Int(m);
    return Value::Int(d);
  }
  return Status::NotSupported("unknown function '" + fn.name + "'");
}

Result<std::vector<NodeBinding>> ExprEvaluator::ComputeDomain(int node_id) {
  SIM_ASSIGN_OR_RETURN(std::vector<NodeBinding> domain,
                       ComputeDomainUnfiltered(node_id));
  const QtNode& node = ctx_->qt().nodes[node_id];
  if (node.domain_filter == nullptr) return domain;
  // View roots in aggregate scopes: keep only instances satisfying the
  // view predicate.
  NodeBinding saved = ctx_->binding(node_id);
  std::vector<NodeBinding> filtered;
  for (NodeBinding& b : domain) {
    ctx_->binding(node_id) = b;
    Result<TriBool> pass = EvalPredicate(*node.domain_filter);
    if (!pass.ok()) {
      ctx_->binding(node_id) = saved;
      return pass.status();
    }
    if (*pass == TriBool::kTrue) filtered.push_back(std::move(b));
  }
  ctx_->binding(node_id) = saved;
  return filtered;
}

Result<std::vector<NodeBinding>> ExprEvaluator::ComputeDomainUnfiltered(
    int node_id) {
  const QtNode& node = ctx_->qt().nodes[node_id];
  std::vector<NodeBinding> out;
  switch (node.derivation) {
    case NodeDerivation::kPerspective: {
      SIM_ASSIGN_OR_RETURN(std::vector<SurrogateId> extent,
                           ctx_->mapper()->ExtentOf(node.class_name));
      // Perspective order is surrogate order (§5.1) unless the class
      // declares a system-maintained ordering, which ExtentOf applied.
      Result<const ClassDef*> def =
          ctx_->mapper()->dir().FindClass(node.class_name);
      if (!def.ok() || (*def)->order_by_attr.empty()) {
        std::sort(extent.begin(), extent.end());
      }
      for (SurrogateId s : extent) {
        NodeBinding b;
        b.bound = true;
        b.entity = s;
        out.push_back(b);
      }
      return out;
    }
    case NodeDerivation::kEva: {
      const NodeBinding& parent = ctx_->binding(node.parent);
      if (!parent.bound || parent.dummy ||
          parent.entity == kInvalidSurrogate) {
        return out;
      }
      SIM_ASSIGN_OR_RETURN(
          std::vector<SurrogateId> targets,
          ctx_->mapper()->GetEvaTargets(node.via_owner->name,
                                        node.via_attr->name, parent.entity));
      // Role conversion: keep only entities holding the converted role.
      bool needs_filter =
          !NameEq(node.class_name, node.via_attr->range_class);
      for (SurrogateId t : targets) {
        if (needs_filter) {
          SIM_ASSIGN_OR_RETURN(bool has,
                               ctx_->mapper()->HasRole(t, node.class_name));
          if (!has) continue;
        }
        NodeBinding b;
        b.bound = true;
        b.entity = t;
        b.level = 1;
        out.push_back(b);
      }
      return out;
    }
    case NodeDerivation::kMvDva: {
      const NodeBinding& parent = ctx_->binding(node.parent);
      if (!parent.bound || parent.dummy ||
          parent.entity == kInvalidSurrogate) {
        return out;
      }
      SIM_ASSIGN_OR_RETURN(
          std::vector<Value> values,
          ctx_->mapper()->GetMvValues(parent.entity, node.via_owner->name,
                                      node.via_attr->name));
      for (Value& v : values) {
        NodeBinding b;
        b.bound = true;
        b.value = std::move(v);
        out.push_back(std::move(b));
      }
      return out;
    }
    case NodeDerivation::kTransitiveEva: {
      const NodeBinding& parent = ctx_->binding(node.parent);
      if (!parent.bound || parent.dummy ||
          parent.entity == kInvalidSurrogate) {
        return out;
      }
      // Breadth-first closure with level numbers (§4.7). The start entity
      // is excluded unless reachable through a cycle.
      std::set<SurrogateId> seen;
      std::vector<std::pair<SurrogateId, int>> frontier = {
          {parent.entity, 0}};
      while (!frontier.empty()) {
        std::vector<std::pair<SurrogateId, int>> next;
        for (const auto& [s, level] : frontier) {
          if (ctx_->query_context() != nullptr) {
            SIM_RETURN_IF_ERROR(ctx_->query_context()->Check());
          }
          SIM_ASSIGN_OR_RETURN(
              std::vector<SurrogateId> targets,
              ctx_->mapper()->GetEvaTargets(node.via_owner->name,
                                            node.via_attr->name, s));
          for (SurrogateId t : targets) {
            if (!seen.insert(t).second) continue;
            NodeBinding b;
            b.bound = true;
            b.entity = t;
            b.level = level + 1;
            out.push_back(b);
            next.emplace_back(t, level + 1);
          }
        }
        frontier = std::move(next);
      }
      return out;
    }
  }
  return Status::Internal("unhandled node derivation");
}

Status ExprEvaluator::ForEachCombination(
    const std::vector<int>& loop_nodes,
    const std::function<Result<bool>()>& body) {
  // Recursive nested loops over loop_nodes[i...].
  QueryContext* qctx = ctx_->query_context();
  std::function<Result<bool>(size_t)> recurse =
      [&](size_t i) -> Result<bool> {
    if (i == loop_nodes.size()) {
      if (qctx != nullptr) SIM_RETURN_IF_ERROR(qctx->ChargeCombinations());
      return body();
    }
    int node = loop_nodes[i];
    SIM_ASSIGN_OR_RETURN(std::vector<NodeBinding> domain, ComputeDomain(node));
    for (NodeBinding& b : domain) {
      ctx_->binding(node) = std::move(b);
      SIM_ASSIGN_OR_RETURN(bool keep_going, recurse(i + 1));
      if (!keep_going) {
        ctx_->binding(node) = NodeBinding();
        return false;
      }
    }
    ctx_->binding(node) = NodeBinding();
    return true;
  };
  return recurse(0).status();
}

Result<Value> ExprEvaluator::EvalAggregate(const BAggregate& agg) {
  int64_t count = 0;
  double sum = 0;
  bool any_numeric = false;
  bool all_int = true;
  int64_t int_sum = 0;
  Value min_v, max_v;
  std::unordered_set<Value, ValueHash, ValueEq> distinct_seen;

  Status iterate = ForEachCombination(agg.loop_nodes, [&]() -> Result<bool> {
    SIM_ASSIGN_OR_RETURN(Value v, Eval(*agg.arg));
    if (v.is_null()) return true;  // nulls are skipped by aggregates
    if (agg.distinct && !distinct_seen.insert(v).second) return true;
    ++count;
    if (agg.func == AggFunc::kSum || agg.func == AggFunc::kAvg) {
      if (!v.is_numeric()) {
        return Status::TypeError("SUM/AVG over non-numeric values");
      }
      any_numeric = true;
      sum += v.AsReal();
      if (v.type() == ValueType::kInt) {
        int_sum += v.int_value();
      } else {
        all_int = false;
      }
    }
    if (agg.func == AggFunc::kMin) {
      if (min_v.is_null()) {
        min_v = v;
      } else {
        SIM_ASSIGN_OR_RETURN(int c, v.Compare(min_v));
        if (c < 0) min_v = v;
      }
    }
    if (agg.func == AggFunc::kMax) {
      if (max_v.is_null()) {
        max_v = v;
      } else {
        SIM_ASSIGN_OR_RETURN(int c, v.Compare(max_v));
        if (c > 0) max_v = v;
      }
    }
    return true;
  });
  SIM_RETURN_IF_ERROR(iterate);

  switch (agg.func) {
    case AggFunc::kCount:
      return Value::Int(count);
    case AggFunc::kSum:
      if (!any_numeric) return Value::Null();
      return all_int ? Value::Int(int_sum) : Value::Real(sum);
    case AggFunc::kAvg:
      if (count == 0) return Value::Null();
      return Value::Real(sum / static_cast<double>(count));
    case AggFunc::kMin:
      return min_v;
    case AggFunc::kMax:
      return max_v;
  }
  return Status::Internal("unhandled aggregate function");
}

Result<TriBool> ExprEvaluator::EvalQuantifiedStandalone(const BQuantified& q) {
  // SOME = OR over bindings, ALL = AND, NO = NOT OR — all under 3VL, so
  // false dominates a universal and true dominates an existential, with
  // unknown in between.
  bool any_true = false, any_false = false, any_unknown = false;
  Status iterate = ForEachCombination(q.loop_nodes, [&]() -> Result<bool> {
    SIM_ASSIGN_OR_RETURN(TriBool t, EvalPredicate(*q.value));
    if (t == TriBool::kTrue) any_true = true;
    if (t == TriBool::kFalse) any_false = true;
    if (t == TriBool::kUnknown) any_unknown = true;
    // Early exits on the dominating outcome.
    if ((q.quantifier == Quantifier::kSome ||
         q.quantifier == Quantifier::kNo) &&
        any_true) {
      return false;
    }
    if (q.quantifier == Quantifier::kAll && any_false) return false;
    return true;
  });
  SIM_RETURN_IF_ERROR(iterate);
  switch (q.quantifier) {
    case Quantifier::kSome:
      if (any_true) return TriBool::kTrue;
      return any_unknown ? TriBool::kUnknown : TriBool::kFalse;
    case Quantifier::kNo:
      if (any_true) return TriBool::kFalse;
      return any_unknown ? TriBool::kUnknown : TriBool::kTrue;
    case Quantifier::kAll:
      if (any_false) return TriBool::kFalse;
      return any_unknown ? TriBool::kUnknown : TriBool::kTrue;
  }
  return Status::Internal("unhandled quantifier");
}

Result<TriBool> ExprEvaluator::EvalQuantifiedComparison(
    BinaryOp op, const BExpr& plain, const BQuantified& q,
    bool quantified_on_left) {
  SIM_ASSIGN_OR_RETURN(Value fixed, Eval(plain));
  bool any_true = false, any_false = false, any_unknown = false;
  Status iterate = ForEachCombination(q.loop_nodes, [&]() -> Result<bool> {
    SIM_ASSIGN_OR_RETURN(Value v, Eval(*q.value));
    TriBool t;
    if (quantified_on_left) {
      SIM_ASSIGN_OR_RETURN(t, CompareValues(op, v, fixed));
    } else {
      SIM_ASSIGN_OR_RETURN(t, CompareValues(op, fixed, v));
    }
    if (t == TriBool::kTrue) any_true = true;
    if (t == TriBool::kFalse) any_false = true;
    if (t == TriBool::kUnknown) any_unknown = true;
    if ((q.quantifier == Quantifier::kSome ||
         q.quantifier == Quantifier::kNo) &&
        any_true) {
      return false;
    }
    if (q.quantifier == Quantifier::kAll && any_false) return false;
    return true;
  });
  SIM_RETURN_IF_ERROR(iterate);
  switch (q.quantifier) {
    case Quantifier::kSome:
      if (any_true) return TriBool::kTrue;
      return any_unknown ? TriBool::kUnknown : TriBool::kFalse;
    case Quantifier::kNo:
      if (any_true) return TriBool::kFalse;
      return any_unknown ? TriBool::kUnknown : TriBool::kTrue;
    case Quantifier::kAll:
      if (any_false) return TriBool::kFalse;
      return any_unknown ? TriBool::kUnknown : TriBool::kTrue;
  }
  return Status::Internal("unhandled quantifier");
}

}  // namespace sim
