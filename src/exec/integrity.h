#ifndef SIMDB_EXEC_INTEGRITY_H_
#define SIMDB_EXEC_INTEGRITY_H_

// VERIFY-assertion enforcement (§3.3). At DDL time every assertion is
// parsed and bound with its class as perspective; trigger detection
// records the set of classes the condition reads (its perspective plus
// every class its query tree touches). After an update statement the
// checker re-evaluates only the assertions whose trigger set intersects
// the touched classes:
//  * for entities the statement touched directly that hold the assertion's
//    perspective role, the condition is checked on those entities (the
//    efficient, "query enhancement" subset);
//  * when other trigger classes were touched (the condition reads data
//    beyond its perspective), the checker conservatively re-evaluates the
//    assertion over the whole perspective extent — the paper reports
//    exactly this split ("works efficiently for a subset of constraints;
//    ... arbitrary integrity constraints have only been partially
//    implemented").
// A violated assertion aborts the statement with the declared message;
// conditions evaluating to UNKNOWN are treated as satisfied.

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "catalog/directory.h"
#include "common/status.h"
#include "exec/executor.h"
#include "luc/mapper.h"
#include "semantics/binder.h"

namespace sim {

class IntegrityChecker {
 public:
  IntegrityChecker(const DirectoryManager* dir, LucMapper* mapper)
      : dir_(dir), mapper_(mapper) {}

  // Parses, binds and analyzes every VERIFY in the catalog. Call after
  // DDL changes.
  Status Prepare();

  size_t prepared_count() const { return conditions_.size(); }

  // Checks assertions after a statement that touched `entities` (their
  // surrogates) and `touched_classes` (every class whose attributes,
  // roles or relationships the statement modified).
  Status CheckAfterStatement(const std::vector<SurrogateId>& entities,
                             const std::set<std::string>& touched_classes);

  // Statistics: how many entity-level condition evaluations ran.
  uint64_t evaluations() const { return evaluations_; }

 private:
  struct PreparedVerify {
    const VerifyDef* def = nullptr;
    QueryTree tree;
    std::set<std::string> trigger_classes;  // lowercase
    bool needs_full_recheck = false;  // reads beyond its perspective
  };

  Status CheckOne(const PreparedVerify& v,
                  const std::vector<SurrogateId>& entities,
                  const std::set<std::string>& touched_classes);

  const DirectoryManager* dir_;
  LucMapper* mapper_;
  std::vector<PreparedVerify> conditions_;
  uint64_t evaluations_ = 0;
};

}  // namespace sim

#endif  // SIMDB_EXEC_INTEGRITY_H_
