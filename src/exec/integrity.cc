#include "exec/integrity.h"

#include "common/strings.h"
#include "parser/dml_parser.h"

namespace sim {

Status IntegrityChecker::Prepare() {
  conditions_.clear();
  Binder binder(dir_);
  for (const VerifyDef* def : dir_->AllVerifies()) {
    PreparedVerify v;
    v.def = def;
    SIM_ASSIGN_OR_RETURN(ExprPtr expr,
                         DmlParser::ParseExpressionText(def->condition_text));
    SIM_ASSIGN_OR_RETURN(v.tree,
                         binder.BindCondition(def->class_name, *expr));
    // Trigger detection: every class named by a node of the bound tree,
    // including subclasses of the perspective (their entities hold the
    // perspective role) and ancestor classes providing inherited
    // attributes.
    for (const QtNode& n : v.tree.nodes) {
      if (n.class_name.empty()) continue;
      v.trigger_classes.insert(AsciiLower(n.class_name));
      Result<std::vector<std::string>> descendants =
          dir_->DescendantsOf(n.class_name);
      if (descendants.ok()) {
        for (const auto& d : *descendants) {
          v.trigger_classes.insert(AsciiLower(d));
        }
      }
      if (n.id != v.tree.roots[0]) {
        // Data reached through EVAs/MV DVAs: entity-local checking is not
        // enough when those classes change.
        if (!NameEq(n.class_name, def->class_name)) {
          v.needs_full_recheck = true;
        }
      }
    }
    v.trigger_classes.insert(AsciiLower(def->class_name));
    conditions_.push_back(std::move(v));
  }
  return Status::Ok();
}

Status IntegrityChecker::CheckOne(
    const PreparedVerify& v, const std::vector<SurrogateId>& entities,
    const std::set<std::string>& touched_classes) {
  Executor exec(mapper_);
  // Entities touched directly and holding the perspective role.
  std::vector<SurrogateId> to_check;
  for (SurrogateId s : entities) {
    Result<bool> has = mapper_->HasRole(s, v.def->class_name);
    if (has.ok() && *has) to_check.push_back(s);
  }
  // When trigger classes beyond the perspective family were touched, the
  // statement may have invalidated entities it never named: fall back to
  // the whole extent.
  bool full = false;
  if (v.needs_full_recheck) {
    for (const auto& c : touched_classes) {
      if (NameEq(c, v.def->class_name)) continue;
      Result<bool> within =
          dir_->IsSubclassOrSame(c, v.def->class_name);
      bool in_family = within.ok() && *within;
      if (!in_family && v.trigger_classes.count(AsciiLower(c))) {
        full = true;
        break;
      }
    }
  }
  if (full) {
    SIM_ASSIGN_OR_RETURN(to_check, mapper_->ExtentOf(v.def->class_name));
  }
  for (SurrogateId s : to_check) {
    ++evaluations_;
    SIM_ASSIGN_OR_RETURN(bool ok, exec.EntitySatisfies(v.tree, s));
    // EntitySatisfies returns definite truth; UNKNOWN is tolerated, so we
    // check for definite falsity by testing the negation... Cheaper: a
    // condition is violated only when it evaluates to definite FALSE. We
    // approximate: not-true counts as violation only when the condition
    // evaluates to false under negation.
    if (!ok) {
      // Distinguish unknown from false: evaluate the negation; if the
      // negation is definitely true the condition was definitely false.
      QueryTree neg;
      // Rebind with NOT: reuse tree by wrapping at evaluation time is not
      // possible here, so test falsity via the original: condition unknown
      // means neither it nor its negation is true.
      // Build the negation lazily once per prepared verify would be
      // cleaner; the extra bind is cheap relative to the check itself.
      Binder binder(dir_);
      SIM_ASSIGN_OR_RETURN(
          ExprPtr expr,
          DmlParser::ParseExpressionText("not (" + v.def->condition_text +
                                         ")"));
      SIM_ASSIGN_OR_RETURN(neg, binder.BindCondition(v.def->class_name,
                                                     *expr));
      SIM_ASSIGN_OR_RETURN(bool definitely_false,
                           exec.EntitySatisfies(neg, s));
      if (definitely_false) {
        return Status::Aborted(v.def->message);
      }
    }
  }
  return Status::Ok();
}

Status IntegrityChecker::CheckAfterStatement(
    const std::vector<SurrogateId>& entities,
    const std::set<std::string>& touched_classes) {
  std::set<std::string> touched_lc;
  for (const auto& c : touched_classes) touched_lc.insert(AsciiLower(c));
  for (const PreparedVerify& v : conditions_) {
    bool triggered = false;
    for (const auto& c : touched_lc) {
      if (v.trigger_classes.count(c)) {
        triggered = true;
        break;
      }
    }
    if (!triggered) continue;
    SIM_RETURN_IF_ERROR(CheckOne(v, entities, touched_lc));
  }
  return Status::Ok();
}

}  // namespace sim
