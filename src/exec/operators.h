#ifndef SIMDB_EXEC_OPERATORS_H_
#define SIMDB_EXEC_OPERATORS_H_

// Volcano-style physical operators. A physical plan is a tree of
// PhysicalOperator nodes with the classic Open()/Next()/Close() iterator
// contract; one Next() call delivers one unit of work and the whole
// pipeline streams, so a consumer that stops early (LIMIT, cursor Close)
// stops the scans underneath it.
//
// Two operator families share the interface:
//
//  * binding operators move the machine of §4.5 one step: they bind a QT
//    node in the shared EvalContext and deliver "the current combination
//    advanced" (Row* is ignored). ExtentScan / IndexProbe bind perspective
//    roots; EvaTraverse binds EVA / MV-DVA / transitive children from the
//    parent's current binding; NestedLoop and OuterJoinLoop compose them
//    into the TYPE 1 / TYPE 3 loop nest (OuterJoinLoop emits the §4.5
//    dummy all-null instance when the inner domain is empty).
//  * row operators sit above the loop nest: Filter / Type2Exists apply the
//    selection (the latter evaluating TYPE 2 variables existentially),
//    Project evaluates the target list into Rows (tabular or structured),
//    Sort restores perspective order / applies ORDER BY, Distinct
//    implements TABLE DISTINCT, Limit implements RETRIEVE FIRST n.
//
// Operators never own bindings privately: all range-variable state lives
// in the ExecContext's EvalContext, exactly like the recursive
// interpreter, so expression evaluation is unchanged.
//
// Every operator records the rows it has delivered (across re-opens) and
// carries the planner's estimate, which is what EXPLAIN ANALYZE prints.

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/arena.h"
#include "common/status.h"
#include "exec/expr_eval.h"
#include "exec/output.h"
#include "luc/mapper.h"
#include "semantics/query_tree.h"

namespace sim {

// Per-query execution statistics, shared by the legacy interpreter and
// the operator pipeline.
struct ExecStats {
  uint64_t combinations_examined = 0;
  uint64_t rows_emitted = 0;
  bool sorted_for_order = false;
};

// Everything a running pipeline shares: the bindings (EvalContext), the
// expression evaluator, and the counters. The QueryTree must outlive the
// context; the optional QueryContext (resource governor) must too.
class ExecContext {
 public:
  ExecContext(const QueryTree* qt, LucMapper* mapper,
              QueryContext* qctx = nullptr)
      : eval_(qt, mapper), evaluator_(&eval_) {
    eval_.set_query_context(qctx);
  }

  const QueryTree& qt() const { return eval_.qt(); }
  LucMapper* mapper() { return eval_.mapper(); }
  EvalContext& bindings() { return eval_; }
  ExprEvaluator& evaluator() { return evaluator_; }
  QueryContext* query_context() const { return eval_.query_context(); }

  // Per-statement scratch arena: the governor's when one is attached
  // (reset at statement end by its owner), else a context-owned one that
  // dies with the pipeline. Views into it are valid for the statement.
  Arena& arena() {
    if (QueryContext* qctx = query_context()) return qctx->arena();
    return local_arena_;
  }

  ExecStats stats;
  // When set, every operator's Next measures wall time and buffer-pool
  // fetch/miss deltas (inclusive of its children). Off by default — the
  // per-Next clock reads are too expensive for ordinary execution — and
  // forced on by EXPLAIN ANALYZE.
  bool time_operators = false;
  // Side channel from Project to Sort: the sort key of the row Project
  // just delivered (ORDER BY expressions, then root surrogates when the
  // plan reordered roots).
  std::vector<Value> current_sort_keys;

 private:
  EvalContext eval_;
  ExprEvaluator evaluator_;
  Arena local_arena_;
};

class PhysicalOperator {
 public:
  virtual ~PhysicalOperator() = default;

  // One-line description for EXPLAIN, e.g. "ExtentScan(student X0)".
  virtual std::string Describe() const = 0;

  virtual Status Open(ExecContext& cx) = 0;
  // Delivers the next unit: binding operators advance the combination
  // (out is ignored and may be null); row operators write *out. Returns
  // false when exhausted. This non-virtual wrapper is the pipeline's
  // cooperative cancellation point: every Next anywhere in the tree
  // consults the governor, so deadlines and cancellation stop a scan
  // within one delivered unit.
  Result<bool> Next(ExecContext& cx, Row* out) {
    if (QueryContext* qctx = cx.query_context()) {
      SIM_RETURN_IF_ERROR(qctx->Check());
    }
    if (cx.time_operators) return TimedNext(cx, out);
    SIM_ASSIGN_OR_RETURN(bool has, DoNext(cx, out));
    if (has) ++actual_rows_;
    return has;
  }
  virtual Status Close(ExecContext& cx) = 0;

  virtual std::vector<const PhysicalOperator*> Children() const { return {}; }

  double est_rows = 0;  // planner estimate of total rows delivered
  uint64_t actual_rows() const { return actual_rows_; }
  // Accumulated wall time and buffer-pool deltas across all Next calls,
  // INCLUSIVE of children (a child's Next runs inside its parent's).
  // Only populated when ExecContext::time_operators is set.
  uint64_t time_us() const { return time_ns_ / 1000; }
  uint64_t pool_fetches() const { return pool_fetches_; }
  uint64_t pool_misses() const { return pool_misses_; }
  uint64_t pool_hits() const { return pool_fetches_ - pool_misses_; }

 protected:
  virtual Result<bool> DoNext(ExecContext& cx, Row* out) = 0;

 private:
  Result<bool> TimedNext(ExecContext& cx, Row* out);

  uint64_t actual_rows_ = 0;
  uint64_t time_ns_ = 0;
  uint64_t pool_fetches_ = 0;
  uint64_t pool_misses_ = 0;
};

using OperatorPtr = std::unique_ptr<PhysicalOperator>;

// ----- binding operators -----

// Base of operators that bind one QT node per delivered unit. A binding
// source is (re)opened once per outer combination; Open derives the domain
// from the parent's current binding.
class BindingSource : public PhysicalOperator {
 public:
  explicit BindingSource(int node) : node_(node) {}
  int node() const { return node_; }

 protected:
  // Installs `b` as the node's current binding and applies the node's
  // domain filter (view predicates inside aggregate scopes). Returns true
  // when the binding is accepted.
  Result<bool> AcceptBinding(ExecContext& cx, NodeBinding b);
  void ClearBinding(ExecContext& cx) {
    cx.bindings().binding(node_) = NodeBinding();
  }

  int node_;
};

// Streams the extent of a perspective class in surrogate order (or the
// class's system-maintained order). Uses the LUC mapper's extent cursor
// when physical order is provably surrogate order; otherwise falls back
// to a sorted surrogate list (ids only — field values are never
// materialized).
class ExtentScan : public BindingSource {
 public:
  ExtentScan(int node, std::string class_name)
      : BindingSource(node), class_name_(std::move(class_name)) {}

  std::string Describe() const override;
  Status Open(ExecContext& cx) override;
  Status Close(ExecContext& cx) override;

 protected:
  Result<bool> DoNext(ExecContext& cx, Row* out) override;

 private:
  std::string class_name_;
  bool streaming_ = false;
  std::unique_ptr<LucMapper::ExtentCursor> cursor_;  // streaming path
  std::vector<SurrogateId> ids_;                     // fallback path
  size_t next_ = 0;
};

// Binds a perspective root through a secondary-index equality probe
// (at most one delivered binding).
class IndexProbe : public BindingSource {
 public:
  IndexProbe(int node, std::string index_class, std::string index_attr,
             Value eq_value)
      : BindingSource(node),
        index_class_(std::move(index_class)),
        index_attr_(std::move(index_attr)),
        eq_value_(std::move(eq_value)) {}

  std::string Describe() const override;
  Status Open(ExecContext& cx) override;
  Status Close(ExecContext& cx) override;

 protected:
  Result<bool> DoNext(ExecContext& cx, Row* out) override;

 private:
  std::string index_class_, index_attr_;
  Value eq_value_;
  bool pending_ = false;
  SurrogateId found_ = kInvalidSurrogate;
};

// Binds an EVA / MV-DVA / transitive-closure child node from the parent's
// current binding, one instance per Next. EVA targets stream through the
// mapper's relationship cursor (§5.1); the transitive closure runs an
// incremental BFS that delivers entities in discovery order with level
// numbers (§4.7).
class EvaTraverse : public BindingSource {
 public:
  // `label` is the planner-composed description ("X2 via works-in*"),
  // since the operator itself only stores the node id.
  EvaTraverse(int node, std::string label)
      : BindingSource(node), label_(std::move(label)) {}

  std::string Describe() const override;
  Status Open(ExecContext& cx) override;
  Status Close(ExecContext& cx) override;

 protected:
  Result<bool> DoNext(ExecContext& cx, Row* out) override;

 private:
  std::string label_;
  bool empty_parent_ = false;
  // kEva. Held by value and re-opened in place so the target buffer's
  // capacity is reused across outer rows.
  LucMapper::TargetCursor cursor_;
  bool cursor_active_ = false;
  bool role_filter_ = false;
  // kMvDva
  std::vector<Value> values_;
  size_t next_value_ = 0;
  // kTransitiveEva incremental BFS
  std::deque<std::pair<SurrogateId, int>> expand_;
  std::deque<NodeBinding> ready_;
  std::unordered_set<SurrogateId> seen_;
};

// Nested-loop composition for a TYPE 1 node: for every combination of the
// outer input (or exactly once when there is no outer), re-opens the inner
// binding source and delivers each accepted binding.
class NestedLoop : public PhysicalOperator {
 public:
  NestedLoop(OperatorPtr outer, std::unique_ptr<BindingSource> inner)
      : outer_(std::move(outer)), inner_(std::move(inner)) {}

  std::string Describe() const override;
  Status Open(ExecContext& cx) override;
  Status Close(ExecContext& cx) override;
  std::vector<const PhysicalOperator*> Children() const override;

 protected:
  Result<bool> DoNext(ExecContext& cx, Row* out) override;
  virtual Result<bool> OnInnerExhausted(ExecContext& cx);

  OperatorPtr outer_;  // may be null: drive exactly once
  std::unique_ptr<BindingSource> inner_;
  bool inner_open_ = false;
  bool once_done_ = false;
  bool inner_yielded_ = false;
};

// TYPE 3 variant (§4.5 directed outer join): when the inner domain of one
// outer combination is empty, delivers a single dummy all-null instance
// instead of nothing.
class OuterJoinLoop : public NestedLoop {
 public:
  using NestedLoop::NestedLoop;
  std::string Describe() const override;

 protected:
  Result<bool> OnInnerExhausted(ExecContext& cx) override;
};

// Delivers exactly one (empty) combination — the loop nest of a query
// with no main-perspective nodes, e.g. "Retrieve AVG(Salary of X)".
class OnceOp : public PhysicalOperator {
 public:
  std::string Describe() const override { return "Once"; }
  Status Open(ExecContext& cx) override;
  Status Close(ExecContext& cx) override;

 protected:
  Result<bool> DoNext(ExecContext& cx, Row* out) override;

 private:
  bool done_ = false;
};

// ----- row operators -----

// Applies the selection to each combination (3VL: only definite truth
// passes). Counts combinations_examined. `where` may be null (pure
// counting pass-through).
class Filter : public PhysicalOperator {
 public:
  Filter(OperatorPtr input, const BExpr* where)
      : input_(std::move(input)), where_(where) {}

  std::string Describe() const override;
  Status Open(ExecContext& cx) override;
  Status Close(ExecContext& cx) override;
  std::vector<const PhysicalOperator*> Children() const override;

 protected:
  Result<bool> DoNext(ExecContext& cx, Row* out) override;
  virtual Result<TriBool> EvaluateSelection(ExecContext& cx);

  OperatorPtr input_;
  const BExpr* where_;  // not owned (lives in the QueryTree)
};

// Selection in the presence of TYPE 2 variables: "for some X_{m+1}..X_n
// ... if <selection> is true" — the TYPE 2 domains are iterated
// existentially inside the predicate and never multiply the output.
class Type2Exists : public Filter {
 public:
  Type2Exists(OperatorPtr input, const BExpr* where, std::vector<int> nodes)
      : Filter(std::move(input), where), type2_nodes_(std::move(nodes)) {}

  std::string Describe() const override;

 protected:
  Result<TriBool> EvaluateSelection(ExecContext& cx) override;

 private:
  std::vector<int> type2_nodes_;
};

// Evaluates the target list for each surviving combination. Tabular mode
// delivers one Row per combination (and evaluates the sort key into the
// context when a Sort runs above). Structured mode delivers one record per
// TYPE 1/3 node whose binding changed, tagged with format and level.
class Project : public PhysicalOperator {
 public:
  struct Options {
    bool structured = false;
    bool make_sort_keys = false;     // ORDER BY present or restore needed
    bool restore_root_keys = false;  // append root surrogates to the key
    std::vector<int> home_node;      // structured: per-target home
    std::vector<int> loop_nodes;     // structured: emission order
    std::vector<int> node_depth;     // structured: per node id
  };

  Project(OperatorPtr input, Options options)
      : input_(std::move(input)), options_(std::move(options)) {}

  std::string Describe() const override;
  Status Open(ExecContext& cx) override;
  Status Close(ExecContext& cx) override;
  std::vector<const PhysicalOperator*> Children() const override;

 protected:
  Result<bool> DoNext(ExecContext& cx, Row* out) override;

 private:
  Result<bool> NextTabular(ExecContext& cx, Row* out);
  Result<bool> NextStructured(ExecContext& cx, Row* out);

  OperatorPtr input_;
  Options options_;
  std::vector<NodeBinding> last_emitted_;  // structured change watch
  std::deque<Row> pending_;                // structured multi-record burst
};

// Materializes its input, stable-sorts by the side-channel keys (ORDER BY
// directions first, then ascending root surrogates) and re-delivers.
// Restores the perspective-implied order after a root-reordering plan.
class SortOp : public PhysicalOperator {
 public:
  // `descending` carries one flag per ORDER BY key; key positions beyond it
  // (the appended perspective-order surrogates) always sort ascending.
  SortOp(OperatorPtr input, std::vector<bool> descending)
      : input_(std::move(input)), descending_(std::move(descending)) {}

  std::string Describe() const override;
  Status Open(ExecContext& cx) override;
  Status Close(ExecContext& cx) override;
  std::vector<const PhysicalOperator*> Children() const override;

 protected:
  Result<bool> DoNext(ExecContext& cx, Row* out) override;

 private:
  OperatorPtr input_;
  std::vector<bool> descending_;
  bool sorted_ = false;
  std::vector<Row> rows_;
  std::vector<std::vector<Value>> keys_;
  std::vector<size_t> order_;
  size_t next_ = 0;
};

// Streaming duplicate elimination over full row values (TABLE DISTINCT).
class Distinct : public PhysicalOperator {
 public:
  explicit Distinct(OperatorPtr input) : input_(std::move(input)) {}

  std::string Describe() const override;
  Status Open(ExecContext& cx) override;
  Status Close(ExecContext& cx) override;
  std::vector<const PhysicalOperator*> Children() const override;

 protected:
  Result<bool> DoNext(ExecContext& cx, Row* out) override;

 private:
  OperatorPtr input_;
  // Rows dedupe on a single encoded key (AppendRowKey: same bytes iff
  // StrictEquals row-wise), built in a reused buffer and copied into the
  // per-statement arena on first sight. The set holds views into the
  // arena; Close() clears it before the arena rewinds.
  std::string key_buf_;
  std::unordered_set<std::string_view> seen_;
};

// Stops the pipeline after n delivered rows (RETRIEVE FIRST n). Because
// the pipeline streams, everything below stops scanning too.
class LimitOp : public PhysicalOperator {
 public:
  LimitOp(OperatorPtr input, int64_t limit)
      : input_(std::move(input)), limit_(limit) {}

  std::string Describe() const override;
  Status Open(ExecContext& cx) override;
  Status Close(ExecContext& cx) override;
  std::vector<const PhysicalOperator*> Children() const override;

 protected:
  Result<bool> DoNext(ExecContext& cx, Row* out) override;

 private:
  OperatorPtr input_;
  int64_t limit_;
  int64_t delivered_ = 0;
};

// Null-first three-way comparison used by SortOp (and the legacy
// interpreter's restore sort).
int CompareForSort(const Value& a, const Value& b);

}  // namespace sim

#endif  // SIMDB_EXEC_OPERATORS_H_
