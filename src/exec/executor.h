#ifndef SIMDB_EXEC_EXECUTOR_H_
#define SIMDB_EXEC_EXECUTOR_H_

// The Query Driver. Executes a bound QueryTree with the §4.5 semantics:
// nested loops over the TYPE 1 and TYPE 3 variables in depth-first order,
// existential evaluation of TYPE 2 variables inside the selection, dummy
// all-null instances for empty TYPE 3 domains (directed outer join), and
// perspective-implied output ordering. Supports the fully tabular
// (default), TABLE [DISTINCT] and fully STRUCTURE output forms, and can
// follow an Optimizer AccessPlan for root access paths and iteration
// order (restoring perspective order with an explicit sort when the plan
// is not order-preserving).
//
// Run() compiles the tree into a Volcano operator pipeline (see
// exec/physical_plan.h) and drains it. RunReference() is the original
// recursive interpreter, kept as the independent semantics oracle for the
// pipeline parity tests.

#include <vector>

#include "common/status.h"
#include "exec/expr_eval.h"
#include "exec/operators.h"
#include "exec/output.h"
#include "luc/mapper.h"
#include "obs/trace.h"
#include "optimizer/optimizer.h"
#include "semantics/query_tree.h"

namespace sim {

class Executor {
 public:
  explicit Executor(LucMapper* mapper) : mapper_(mapper) {}

  // Attaches a trace sink: Run emits "map" (plan build + audit) and
  // "execute" (pipeline drain) spans under the given statement id. A null
  // log disables the spans entirely.
  void set_trace(obs::TraceLog* log, uint64_t stmt_id) {
    trace_ = log;
    trace_stmt_ = stmt_id;
  }

  // The shared definition lives in exec/operators.h; the alias keeps the
  // historical Executor::ExecStats spelling working.
  using ExecStats = sim::ExecStats;

  // Runs a Retrieve query tree, optionally following `plan`: builds the
  // physical operator pipeline and drains it into a ResultSet. When `qctx`
  // is given, every operator Next / enumerated combination / emitted row
  // is charged against it (deadline, cancellation, budgets).
  Result<ResultSet> Run(const QueryTree& qt, const AccessPlan* plan = nullptr,
                        QueryContext* qctx = nullptr);

  // The original recursive §4.5 interpreter (materializes every node
  // domain). Produces bit-identical ResultSets to Run; kept as the
  // reference implementation for parity testing. Honors the same governor.
  Result<ResultSet> RunReference(const QueryTree& qt,
                                 const AccessPlan* plan = nullptr,
                                 QueryContext* qctx = nullptr);

  const ExecStats& last_stats() const { return stats_; }

  // True when entity `s`, bound to the (single) root, satisfies the
  // tree's selection (TYPE 2 nodes evaluated existentially). Used for
  // update WHERE clauses and VERIFY conditions.
  Result<bool> EntitySatisfies(const QueryTree& qt, SurrogateId s,
                               QueryContext* qctx = nullptr);

  // Evaluates the tree's single target for entity `s` bound to the root.
  // Non-root TYPE1/3 nodes are bound to their first instance (dummy when
  // empty).
  Result<Value> EvalForEntity(const QueryTree& qt, SurrogateId s);

 private:
  struct RunState {
    const QueryTree* qt = nullptr;
    const AccessPlan* plan = nullptr;
    EvalContext* ctx = nullptr;
    ExprEvaluator* ev = nullptr;
    ResultSet* rs = nullptr;
    std::vector<int> loop_nodes;   // TYPE 1 & 3, iteration order
    std::vector<int> type2_nodes;  // TYPE 2, DFS order
    std::vector<int> home_node;    // per target: structured-output home
    std::vector<int> node_depth;   // per node id: loop depth
    std::vector<NodeBinding> last_emitted;  // structured-mode change watch
    std::vector<std::vector<Value>> sort_keys;  // per emitted row
    bool needs_restore_sort = false;
  };

  Status Recurse(RunState* st, size_t i);
  Status EmitIfSelected(RunState* st);
  Result<std::vector<NodeBinding>> RootDomain(RunState* st, int loop_index,
                                              int node);
  Result<TriBool> EvaluateSelection(RunState* st);

  LucMapper* mapper_;
  ExecStats stats_;
  obs::TraceLog* trace_ = nullptr;
  uint64_t trace_stmt_ = 0;
};

}  // namespace sim

#endif  // SIMDB_EXEC_EXECUTOR_H_
