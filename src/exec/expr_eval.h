#ifndef SIMDB_EXEC_EXPR_EVAL_H_
#define SIMDB_EXEC_EXPR_EVAL_H_

// Bound-expression evaluation over a set of current QT-node bindings.
// Implements SIM's 3-valued logic (§4.9): predicates evaluate to
// true/false/unknown; arithmetic over nulls yields null; a WHERE keeps a
// combination only when definitely true. Aggregates and quantifiers run
// their own nested loops over their local scope nodes (§4.4/§4.6).

#include <functional>
#include <vector>

#include "common/query_context.h"
#include "common/status.h"
#include "common/tribool.h"
#include "common/value.h"
#include "luc/mapper.h"
#include "semantics/query_tree.h"

namespace sim {

// The current instance of one range variable: an entity (EVA/perspective
// nodes) or a value (MV DVA nodes). `bound` distinguishes "not yet bound"
// from a TYPE 3 dummy (all-null) instance.
struct NodeBinding {
  bool bound = false;
  bool dummy = false;
  SurrogateId entity = kInvalidSurrogate;
  Value value;
  int level = 0;  // transitive-closure level (1 = direct)
};

class EvalContext {
 public:
  EvalContext(const QueryTree* qt, LucMapper* mapper)
      : qt_(qt), mapper_(mapper), bindings_(qt->nodes.size()) {}

  const QueryTree& qt() const { return *qt_; }
  LucMapper* mapper() { return mapper_; }
  NodeBinding& binding(int node) { return bindings_[node]; }
  const NodeBinding& binding(int node) const { return bindings_[node]; }

  // Optional resource governor. When set, every enumerated combination
  // (including the existential inner loops of aggregates and quantifiers)
  // and every closure-BFS expansion is charged against it, so deadlines
  // and cancellation reach the places where Type-2 queries burn time.
  void set_query_context(QueryContext* qctx) { qctx_ = qctx; }
  QueryContext* query_context() const { return qctx_; }

 private:
  const QueryTree* qt_;
  LucMapper* mapper_;
  QueryContext* qctx_ = nullptr;
  std::vector<NodeBinding> bindings_;
};

class ExprEvaluator {
 public:
  explicit ExprEvaluator(EvalContext* ctx) : ctx_(ctx) {}

  // Evaluates an expression to a value (unknown booleans become null).
  Result<Value> Eval(const BExpr& expr);

  // Evaluates an expression as a predicate.
  Result<TriBool> EvalPredicate(const BExpr& expr);

  // Computes the domain of a node from its parent's current binding.
  // Perspective nodes range over their class extent; EVA nodes over the
  // related entities (role-conversion filtered); MV DVA nodes over the
  // attribute's values; transitive nodes over the closure (BFS levels).
  Result<std::vector<NodeBinding>> ComputeDomain(int node);

  // Runs `body` for every combination of bindings of `loop_nodes` (DFS
  // order, parents before children). `body` returns false to stop the
  // whole iteration early. Domains here are never padded with dummies.
  Status ForEachCombination(const std::vector<int>& loop_nodes,
                            const std::function<Result<bool>()>& body);

 private:
  Result<std::vector<NodeBinding>> ComputeDomainUnfiltered(int node);
  Result<Value> EvalBinary(const BBinary& bin);
  Result<TriBool> EvalComparison(BinaryOp op, const BExpr& lhs,
                                 const BExpr& rhs);
  Result<TriBool> CompareValues(BinaryOp op, const Value& l, const Value& r);
  Result<Value> EvalAggregate(const BAggregate& agg);
  Result<Value> EvalFunction(const BFunction& fn);
  Result<TriBool> EvalQuantifiedStandalone(const BQuantified& q);
  Result<TriBool> EvalQuantifiedComparison(BinaryOp op, const BExpr& plain,
                                           const BQuantified& q,
                                           bool quantified_on_left);

  EvalContext* ctx_;
};

}  // namespace sim

#endif  // SIMDB_EXEC_EXPR_EVAL_H_
