#include "exec/executor.h"

#include <algorithm>
#include <string>
#include <string_view>
#include <unordered_set>

#include "check/plan_check.h"
#include "common/arena.h"
#include "exec/physical_plan.h"
#include "storage/record_codec.h"

namespace sim {

namespace {

// Finds the loop-deepest main-scope node referenced by an expression
// (structured-output record homes). Returns -1 when none.
void CollectNodes(const BExpr& expr, std::vector<int>* out) {
  switch (expr.kind) {
    case BExprKind::kLiteral:
      return;
    case BExprKind::kField:
      out->push_back(static_cast<const BField&>(expr).node);
      return;
    case BExprKind::kNodeValue:
      out->push_back(static_cast<const BNodeValue&>(expr).node);
      return;
    case BExprKind::kNodeRef:
      out->push_back(static_cast<const BNodeRef&>(expr).node);
      return;
    case BExprKind::kBinary: {
      const auto& b = static_cast<const BBinary&>(expr);
      CollectNodes(*b.lhs, out);
      CollectNodes(*b.rhs, out);
      return;
    }
    case BExprKind::kUnary:
      CollectNodes(*static_cast<const BUnary&>(expr).operand, out);
      return;
    case BExprKind::kAggregate:
      // An aggregate's home is where its loops hang from; approximate with
      // the nodes its argument references outside its own scope — covered
      // by the loop-node parents, so nothing to add here.
      return;
    case BExprKind::kQuantified:
      return;
    case BExprKind::kIsa:
      CollectNodes(*static_cast<const BIsa&>(expr).entity, out);
      return;
    case BExprKind::kFunction:
      for (const auto& arg : static_cast<const BFunction&>(expr).args) {
        CollectNodes(*arg, out);
      }
      return;
  }
}

}  // namespace

Result<ResultSet> Executor::Run(const QueryTree& qt, const AccessPlan* plan,
                                QueryContext* qctx) {
  stats_ = ExecStats();
  ResultSet rs;
  rs.columns = qt.target_labels;
  rs.structured = qt.mode == OutputMode::kStructure;

  PhysicalPlan pplan;
  {
    obs::Span span(trace_, trace_stmt_, "map");
    SIM_ASSIGN_OR_RETURN(pplan, PhysicalPlan::Build(qt, plan, mapper_));
    // Layer-3 audit: refuse to run a structurally malformed operator tree.
    SIM_RETURN_IF_ERROR(ValidatePlanOrError(pplan, qt));
    span.MarkOk();
  }
  ExecContext cx(&qt, mapper_, qctx);
  obs::Span span(trace_, trace_stmt_, "execute");
  SIM_RETURN_IF_ERROR(pplan.root->Open(cx));
  Row row;
  while (true) {
    Result<bool> has = pplan.root->Next(cx, &row);
    if (!has.ok()) {
      // The Next failure is the primary error; a Close failure on the
      // unwind path rides along only if Next somehow succeeded.
      Status fail = has.status();
      fail.Update(pplan.root->Close(cx));
      return fail;
    }
    if (!*has) break;
    if (qctx != nullptr) {
      Status charged = qctx->ChargeRows();
      if (!charged.ok()) {
        charged.Update(pplan.root->Close(cx));
        return charged;
      }
    }
    rs.rows.push_back(std::move(row));
  }
  SIM_RETURN_IF_ERROR(pplan.root->Close(cx));
  cx.stats.rows_emitted = rs.rows.size();
  stats_ = cx.stats;
  span.AddAttr("rows", stats_.rows_emitted);
  span.AddAttr("combinations", stats_.combinations_examined);
  span.MarkOk();
  return rs;
}

Result<ResultSet> Executor::RunReference(const QueryTree& qt,
                                         const AccessPlan* plan,
                                         QueryContext* qctx) {
  stats_ = ExecStats();
  ResultSet rs;
  rs.columns = qt.target_labels;
  rs.structured = qt.mode == OutputMode::kStructure;

  EvalContext ctx(&qt, mapper_);
  ctx.set_query_context(qctx);
  ExprEvaluator ev(&ctx);

  RunState st;
  st.qt = &qt;
  st.plan = plan;
  st.ctx = &ctx;
  st.ev = &ev;
  st.rs = &rs;

  // Iteration order: plan root order (or declaration order), each root
  // followed by its TYPE1/3 descendants depth-first.
  std::vector<int> root_order;
  if (plan != nullptr && !plan->roots.empty()) {
    for (const auto& r : plan->roots) root_order.push_back(r.node);
  } else {
    root_order = qt.roots;
  }
  st.node_depth.assign(qt.nodes.size(), 0);
  for (int r : root_order) {
    std::vector<std::pair<int, int>> stack = {{r, 0}};
    while (!stack.empty()) {
      auto [n, depth] = stack.back();
      stack.pop_back();
      st.node_depth[n] = depth;
      if (qt.nodes[n].label != 2) st.loop_nodes.push_back(n);
      std::vector<int> kids = qt.MainChildren(n);
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        if (qt.nodes[*it].label != 2) stack.push_back({*it, depth + 1});
      }
    }
  }
  for (int n : qt.MainLoopNodes()) {
    if (qt.nodes[n].label == 2) st.type2_nodes.push_back(n);
  }

  // Structured-output homes: the loop-deepest node each target references.
  for (const auto& t : qt.targets) {
    std::vector<int> nodes;
    CollectNodes(*t, &nodes);
    int home = root_order.empty() ? -1 : root_order[0];
    int best_pos = -1;
    for (int n : nodes) {
      if (st.qt->nodes[n].scope >= 0 || st.qt->nodes[n].label == 2) continue;
      auto it = std::find(st.loop_nodes.begin(), st.loop_nodes.end(), n);
      if (it == st.loop_nodes.end()) continue;
      int pos = static_cast<int>(it - st.loop_nodes.begin());
      if (pos > best_pos) {
        best_pos = pos;
        home = n;
      }
    }
    st.home_node.push_back(home);
  }
  st.last_emitted.assign(qt.nodes.size(), NodeBinding());
  st.needs_restore_sort =
      plan != nullptr && !plan->order_preserving;

  SIM_RETURN_IF_ERROR(Recurse(&st, 0));

  // Restore perspective order when the plan reordered roots, then apply
  // ORDER BY, then DISTINCT.
  if (!rs.structured &&
      (st.needs_restore_sort || !qt.order_by.empty())) {
    std::vector<size_t> order(rs.rows.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      const auto& ka = st.sort_keys[a];
      const auto& kb = st.sort_keys[b];
      for (size_t i = 0; i < ka.size() && i < kb.size(); ++i) {
        int c = CompareForSort(ka[i], kb[i]);
        bool desc = i < qt.order_by.size() && qt.order_by[i].descending;
        if (c != 0) return desc ? c > 0 : c < 0;
      }
      return false;
    });
    std::vector<Row> sorted;
    sorted.reserve(rs.rows.size());
    for (size_t i : order) sorted.push_back(std::move(rs.rows[i]));
    rs.rows = std::move(sorted);
    stats_.sorted_for_order = true;
  }
  if (qt.mode == OutputMode::kTableDistinct) {
    // Same encoded-key dedupe as the pipeline's Distinct operator (parity):
    // one memcmp-comparable AppendRowKey buffer per row, keys parked in a
    // statement-local arena.
    Arena arena;
    std::unordered_set<std::string_view> seen;
    std::string key_buf;
    std::vector<Row> unique;
    for (Row& r : rs.rows) {
      key_buf.clear();
      for (const Value& v : r.values) AppendRowKey(v, &key_buf);
      if (seen.find(std::string_view(key_buf)) == seen.end()) {
        seen.insert(arena.CopyString(key_buf));
        unique.push_back(std::move(r));
      }
    }
    rs.rows = std::move(unique);
  }
  // RETRIEVE FIRST n: the reference interpreter truncates after the fact
  // (only the pipeline terminates the scans early).
  if (qt.limit >= 0 && rs.rows.size() > static_cast<size_t>(qt.limit)) {
    rs.rows.resize(static_cast<size_t>(qt.limit));
  }
  stats_.rows_emitted = rs.rows.size();
  return rs;
}

Result<std::vector<NodeBinding>> Executor::RootDomain(RunState* st,
                                                      int /*loop_index*/,
                                                      int node) {
  if (st->plan != nullptr) {
    for (const auto& r : st->plan->roots) {
      if (r.node != node) continue;
      if (r.method == AccessPlan::RootMethod::kIndexEq) {
        SIM_ASSIGN_OR_RETURN(
            std::optional<SurrogateId> found,
            mapper_->LookupByIndex(r.index_class, r.index_attr, r.eq_value));
        std::vector<NodeBinding> out;
        if (found.has_value()) {
          // The index covers the declaring class; the perspective may be a
          // subclass — verify the role.
          SIM_ASSIGN_OR_RETURN(
              bool has,
              mapper_->HasRole(*found, st->qt->nodes[node].class_name));
          if (has) {
            NodeBinding b;
            b.bound = true;
            b.entity = *found;
            out.push_back(b);
          }
        }
        return out;
      }
      break;
    }
  }
  return st->ev->ComputeDomain(node);
}

Status Executor::Recurse(RunState* st, size_t i) {
  if (i == st->loop_nodes.size()) return EmitIfSelected(st);
  int node = st->loop_nodes[i];
  const QtNode& n = st->qt->nodes[node];
  std::vector<NodeBinding> domain;
  if (n.parent < 0) {
    SIM_ASSIGN_OR_RETURN(domain, RootDomain(st, static_cast<int>(i), node));
  } else {
    SIM_ASSIGN_OR_RETURN(domain, st->ev->ComputeDomain(node));
  }
  if (domain.empty() && n.label == 3) {
    // Directed outer join: one dummy all-null instance (§4.5).
    NodeBinding dummy;
    dummy.bound = true;
    dummy.dummy = true;
    st->ctx->binding(node) = dummy;
    SIM_RETURN_IF_ERROR(Recurse(st, i + 1));
    st->ctx->binding(node) = NodeBinding();
    return Status::Ok();
  }
  for (NodeBinding& b : domain) {
    st->ctx->binding(node) = std::move(b);
    SIM_RETURN_IF_ERROR(Recurse(st, i + 1));
  }
  st->ctx->binding(node) = NodeBinding();
  return Status::Ok();
}

Result<TriBool> Executor::EvaluateSelection(RunState* st) {
  const QueryTree& qt = *st->qt;
  if (qt.where == nullptr) return TriBool::kTrue;
  if (st->type2_nodes.empty()) {
    return st->ev->EvalPredicate(*qt.where);
  }
  // "for some X_{m+1} ... X_n ... if <selection> is true" — existential
  // iteration of the TYPE 2 variables.
  bool found = false;
  Status s = st->ev->ForEachCombination(
      st->type2_nodes, [&]() -> Result<bool> {
        SIM_ASSIGN_OR_RETURN(TriBool t, st->ev->EvalPredicate(*qt.where));
        if (t == TriBool::kTrue) {
          found = true;
          return false;  // stop early
        }
        return true;
      });
  SIM_RETURN_IF_ERROR(s);
  return MakeTriBool(found);
}

Status Executor::EmitIfSelected(RunState* st) {
  ++stats_.combinations_examined;
  if (QueryContext* qctx = st->ctx->query_context()) {
    SIM_RETURN_IF_ERROR(qctx->ChargeCombinations());
  }
  SIM_ASSIGN_OR_RETURN(TriBool pass, EvaluateSelection(st));
  if (pass != TriBool::kTrue) return Status::Ok();

  const QueryTree& qt = *st->qt;
  if (qt.mode == OutputMode::kStructure) {
    // Emit a record for every TYPE1/3 node whose binding changed, plus all
    // deeper ones — the fully structured multi-format output.
    size_t first_changed = st->loop_nodes.size();
    for (size_t i = 0; i < st->loop_nodes.size(); ++i) {
      int node = st->loop_nodes[i];
      const NodeBinding& cur = st->ctx->binding(node);
      const NodeBinding& last = st->last_emitted[node];
      bool same = last.bound && cur.bound && last.dummy == cur.dummy &&
                  last.entity == cur.entity &&
                  last.value.StrictEquals(cur.value);
      if (!same) {
        first_changed = i;
        break;
      }
    }
    for (size_t i = first_changed; i < st->loop_nodes.size(); ++i) {
      int node = st->loop_nodes[i];
      Row row;
      row.format_node = node;
      const NodeBinding& b = st->ctx->binding(node);
      row.level = st->node_depth[node] +
                  (b.level > 1 ? b.level - 1 : 0);
      for (size_t t = 0; t < qt.targets.size(); ++t) {
        if (st->home_node[t] != node) continue;
        SIM_ASSIGN_OR_RETURN(Value v, st->ev->Eval(*qt.targets[t]));
        row.values.push_back(std::move(v));
      }
      st->last_emitted[node] = b;
      if (QueryContext* qctx = st->ctx->query_context()) {
        SIM_RETURN_IF_ERROR(qctx->ChargeRows());
      }
      st->rs->rows.push_back(std::move(row));
    }
    return Status::Ok();
  }

  Row row;
  row.values.reserve(qt.targets.size());
  for (const auto& t : qt.targets) {
    SIM_ASSIGN_OR_RETURN(Value v, st->ev->Eval(*t));
    row.values.push_back(std::move(v));
  }
  // Sort keys: ORDER BY expressions first, then root surrogates in
  // declaration order (restores perspective order after plan reordering).
  std::vector<Value> keys;
  for (const auto& o : qt.order_by) {
    SIM_ASSIGN_OR_RETURN(Value v, st->ev->Eval(*o.expr));
    keys.push_back(std::move(v));
  }
  if (st->needs_restore_sort) {
    for (int r : qt.roots) {
      const NodeBinding& b = st->ctx->binding(r);
      keys.push_back(b.bound && !b.dummy ? Value::Surrogate(b.entity)
                                         : Value::Null());
    }
  }
  st->sort_keys.push_back(std::move(keys));
  if (QueryContext* qctx = st->ctx->query_context()) {
    SIM_RETURN_IF_ERROR(qctx->ChargeRows());
  }
  st->rs->rows.push_back(std::move(row));
  return Status::Ok();
}

Result<bool> Executor::EntitySatisfies(const QueryTree& qt, SurrogateId s,
                                       QueryContext* qctx) {
  if (qt.roots.size() != 1) {
    return Status::Internal("EntitySatisfies requires a single-root tree");
  }
  EvalContext ctx(&qt, mapper_);
  ctx.set_query_context(qctx);
  ExprEvaluator ev(&ctx);
  NodeBinding b;
  b.bound = true;
  b.entity = s;
  ctx.binding(qt.roots[0]) = b;
  if (qt.where == nullptr) return true;
  std::vector<int> inner;
  for (int n : qt.MainLoopNodes()) {
    if (n != qt.roots[0]) inner.push_back(n);
  }
  if (inner.empty()) {
    SIM_ASSIGN_OR_RETURN(TriBool t, ev.EvalPredicate(*qt.where));
    return t == TriBool::kTrue;
  }
  bool found = false;
  Status st = ev.ForEachCombination(inner, [&]() -> Result<bool> {
    SIM_ASSIGN_OR_RETURN(TriBool t, ev.EvalPredicate(*qt.where));
    if (t == TriBool::kTrue) {
      found = true;
      return false;
    }
    return true;
  });
  SIM_RETURN_IF_ERROR(st);
  return found;
}

Result<Value> Executor::EvalForEntity(const QueryTree& qt, SurrogateId s) {
  if (qt.roots.size() != 1 || qt.targets.size() != 1) {
    return Status::Internal(
        "EvalForEntity requires a single root and a single target");
  }
  EvalContext ctx(&qt, mapper_);
  ExprEvaluator ev(&ctx);
  NodeBinding b;
  b.bound = true;
  b.entity = s;
  ctx.binding(qt.roots[0]) = b;
  // Bind non-root main nodes to their first instance (or a dummy).
  for (int n : qt.MainLoopNodes()) {
    if (n == qt.roots[0]) continue;
    SIM_ASSIGN_OR_RETURN(std::vector<NodeBinding> domain, ev.ComputeDomain(n));
    if (domain.empty()) {
      NodeBinding dummy;
      dummy.bound = true;
      dummy.dummy = true;
      ctx.binding(n) = dummy;
    } else {
      ctx.binding(n) = domain.front();
    }
  }
  return ev.Eval(*qt.targets[0]);
}

}  // namespace sim
