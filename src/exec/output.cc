#include "exec/output.h"

#include <algorithm>

namespace sim {

std::string ResultSet::ToString() const {
  std::string out;
  if (structured) {
    for (const Row& r : rows) {
      out.append(static_cast<size_t>(r.level) * 2, ' ');
      out += "[" + std::to_string(r.format_node) + "]";
      for (const Value& v : r.values) {
        out += " ";
        out += v.ToString();
      }
      out += "\n";
    }
    return out;
  }
  std::vector<size_t> widths(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) widths[i] = columns[i].size();
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows.size());
  for (const Row& r : rows) {
    std::vector<std::string> line;
    for (size_t i = 0; i < r.values.size(); ++i) {
      std::string s = r.values[i].ToString();
      if (i < widths.size()) widths[i] = std::max(widths[i], s.size());
      line.push_back(std::move(s));
    }
    cells.push_back(std::move(line));
  }
  auto append_line = [&](const std::vector<std::string>& line) {
    for (size_t i = 0; i < line.size(); ++i) {
      if (i > 0) out += "  ";
      out += line[i];
      if (i < widths.size() && i + 1 < line.size()) {
        out.append(widths[i] > line[i].size() ? widths[i] - line[i].size() : 0,
                   ' ');
      }
    }
    out += "\n";
  };
  append_line(columns);
  std::vector<std::string> rule;
  for (size_t w : widths) rule.push_back(std::string(w, '-'));
  append_line(rule);
  for (const auto& line : cells) append_line(line);
  return out;
}

}  // namespace sim
