#ifndef SIMDB_EXEC_UPDATE_EXEC_H_
#define SIMDB_EXEC_UPDATE_EXEC_H_

// Update-statement execution (§4.8):
//  * INSERT <class> — creates an entity with all superclass roles;
//    INSERT <class> FROM <ancestor> WHERE ... — extends existing
//    entities' roles downward;
//  * MODIFY <class> (assignments) WHERE ... — per-entity assignment of
//    immediate and inherited attributes, INCLUDE/EXCLUDE on multi-valued
//    attributes and EVA selector assignment `eva := <class> WITH (...)`;
//  * DELETE <class> WHERE ... — removes the class role and all subclass
//    roles (superclass roles remain; deleting a base-class entity removes
//    it everywhere).
// Every statement runs inside a transaction scope; attribute options,
// REQUIRED checks and VERIFY assertions abort and roll the statement
// back.

#include <set>
#include <vector>

#include "common/status.h"
#include "exec/executor.h"
#include "exec/integrity.h"
#include "luc/mapper.h"
#include "parser/ast.h"
#include "semantics/binder.h"
#include "storage/txn.h"

namespace sim {

class UpdateExecutor {
 public:
  UpdateExecutor(LucMapper* mapper, IntegrityChecker* integrity)
      : mapper_(mapper), binder_(&mapper->dir()), integrity_(integrity) {}

  struct UpdateResult {
    int entities_affected = 0;
    std::vector<SurrogateId> touched;
  };

  Result<UpdateResult> ExecuteInsert(const InsertStmt& stmt, Transaction* txn);
  Result<UpdateResult> ExecuteModify(const ModifyStmt& stmt, Transaction* txn);
  Result<UpdateResult> ExecuteDelete(const DeleteStmt& stmt, Transaction* txn);

  // Entities of `cls` satisfying `where` (nullptr = all). Uses a unique
  // index fast path for top-level equality predicates when available.
  Result<std::vector<SurrogateId>> SelectEntities(const std::string& cls,
                                                  const Expr* where);

 private:
  // Applies one assignment to one entity. `touched_classes` accumulates
  // every class whose data changed (trigger detection input).
  Status ApplyAssignment(const std::string& cls, SurrogateId s,
                         const Assignment& a, Transaction* txn,
                         std::set<std::string>* touched_classes,
                         std::vector<SurrogateId>* touched_entities);

  // Entities selected by an EVA-selector assignment.
  Result<std::vector<SurrogateId>> SelectorTargets(const std::string& cls,
                                                   SurrogateId s,
                                                   const Assignment& a);

  Result<Value> EvalAssignmentValue(const std::string& cls, SurrogateId s,
                                    const Expr& expr);

  LucMapper* mapper_;
  Binder binder_;
  IntegrityChecker* integrity_;
};

}  // namespace sim

#endif  // SIMDB_EXEC_UPDATE_EXEC_H_
