#include "exec/operators.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/strings.h"
#include "storage/buffer_pool.h"
#include "storage/record_codec.h"

namespace sim {

// Instrumented Next: wall time plus buffer-pool fetch/miss deltas around
// DoNext. The measurement is inclusive of children — a child's Next runs
// inside its parent's DoNext — which is what EXPLAIN ANALYZE reports.
Result<bool> PhysicalOperator::TimedNext(ExecContext& cx, Row* out) {
  const BufferPool* pool =
      cx.mapper() != nullptr ? cx.mapper()->pool() : nullptr;
  uint64_t fetches0 = 0;
  uint64_t misses0 = 0;
  if (pool != nullptr) {
    fetches0 = pool->counters().logical_fetches.value();
    misses0 = pool->counters().misses.value();
  }
  const auto start = std::chrono::steady_clock::now();
  Result<bool> has = DoNext(cx, out);
  time_ns_ += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  if (pool != nullptr) {
    pool_fetches_ += pool->counters().logical_fetches.value() - fetches0;
    pool_misses_ += pool->counters().misses.value() - misses0;
  }
  if (!has.ok()) return has.status();
  if (*has) ++actual_rows_;
  return has;
}

namespace {

// Footprint estimate for the memory budget: materializing operators
// charge this per retained row / key vector.
uint64_t ApproxValueBytes(const std::vector<Value>& values) {
  uint64_t n = sizeof(Row);
  for (const Value& v : values) {
    n += sizeof(Value);
    if (v.type() == ValueType::kString) n += v.string_value().size();
  }
  return n;
}

}  // namespace

int CompareForSort(const Value& a, const Value& b) {
  if (a.is_null() && b.is_null()) return 0;
  if (a.is_null()) return -1;
  if (b.is_null()) return 1;
  Result<int> c = a.Compare(b);
  if (!c.ok()) return 0;  // incomparable values keep their order
  return *c;
}

// ----- BindingSource -----

Result<bool> BindingSource::AcceptBinding(ExecContext& cx, NodeBinding b) {
  const QtNode& node = cx.qt().nodes[node_];
  cx.bindings().binding(node_) = std::move(b);
  if (node.domain_filter == nullptr) return true;
  SIM_ASSIGN_OR_RETURN(TriBool pass,
                       cx.evaluator().EvalPredicate(*node.domain_filter));
  return pass == TriBool::kTrue;
}

// ----- ExtentScan -----

std::string ExtentScan::Describe() const {
  return "ExtentScan(X" + std::to_string(node_) + " " + class_name_ + ")";
}

Status ExtentScan::Open(ExecContext& cx) {
  streaming_ = false;
  cursor_.reset();
  ids_.clear();
  next_ = 0;
  LucMapper* m = cx.mapper();
  Result<const ClassDef*> def = m->dir().FindClass(class_name_);
  bool attr_ordered = def.ok() && !(*def)->order_by_attr.empty();
  if (!attr_ordered) {
    SIM_ASSIGN_OR_RETURN(bool phys_ordered,
                         m->ExtentScanInSurrogateOrder(class_name_));
    if (phys_ordered) {
      // Physical scan order is provably surrogate order — stream straight
      // off the unit without materializing the extent.
      SIM_ASSIGN_OR_RETURN(LucMapper::ExtentCursor cur,
                           m->OpenExtentCursor(class_name_));
      cursor_ = std::make_unique<LucMapper::ExtentCursor>(std::move(cur));
      streaming_ = true;
      return Status::Ok();
    }
  }
  // Fallback: surrogate ids only, in perspective order — surrogate order
  // unless the class declares a system-maintained ordering.
  SIM_ASSIGN_OR_RETURN(ids_, m->ExtentOf(class_name_));
  if (!attr_ordered) std::sort(ids_.begin(), ids_.end());
  return Status::Ok();
}

Result<bool> ExtentScan::DoNext(ExecContext& cx, Row* /*out*/) {
  while (true) {
    NodeBinding b;
    b.bound = true;
    if (streaming_) {
      if (!cursor_->Valid()) {
        SIM_RETURN_IF_ERROR(cursor_->status());
        return false;
      }
      b.entity = cursor_->surrogate();
      SIM_RETURN_IF_ERROR(cursor_->Next());
    } else {
      if (next_ >= ids_.size()) return false;
      b.entity = ids_[next_++];
    }
    SIM_ASSIGN_OR_RETURN(bool ok, AcceptBinding(cx, std::move(b)));
    if (ok) return true;
  }
}

Status ExtentScan::Close(ExecContext& cx) {
  cursor_.reset();
  ids_.clear();
  ClearBinding(cx);
  return Status::Ok();
}

// ----- IndexProbe -----

std::string IndexProbe::Describe() const {
  return "IndexProbe(X" + std::to_string(node_) + " " + index_class_ + "." +
         index_attr_ + "=" + eq_value_.ToString() + ")";
}

Status IndexProbe::Open(ExecContext& cx) {
  pending_ = false;
  found_ = kInvalidSurrogate;
  SIM_ASSIGN_OR_RETURN(
      std::optional<SurrogateId> found,
      cx.mapper()->LookupByIndex(index_class_, index_attr_, eq_value_));
  if (found.has_value()) {
    // The index covers the declaring class; the perspective may be a
    // subclass — verify the role.
    SIM_ASSIGN_OR_RETURN(
        bool has,
        cx.mapper()->HasRole(*found, cx.qt().nodes[node_].class_name));
    if (has) {
      pending_ = true;
      found_ = *found;
    }
  }
  return Status::Ok();
}

Result<bool> IndexProbe::DoNext(ExecContext& cx, Row* /*out*/) {
  if (!pending_) return false;
  pending_ = false;
  // Root index probes bypass the domain filter, exactly like the legacy
  // RootDomain path.
  NodeBinding b;
  b.bound = true;
  b.entity = found_;
  cx.bindings().binding(node_) = std::move(b);
  return true;
}

Status IndexProbe::Close(ExecContext& cx) {
  pending_ = false;
  ClearBinding(cx);
  return Status::Ok();
}

// ----- EvaTraverse -----

std::string EvaTraverse::Describe() const {
  return "EvaTraverse(" + label_ + ")";
}

Status EvaTraverse::Open(ExecContext& cx) {
  empty_parent_ = false;
  cursor_active_ = false;
  role_filter_ = false;
  values_.clear();
  next_value_ = 0;
  expand_.clear();
  ready_.clear();
  seen_.clear();

  const QtNode& node = cx.qt().nodes[node_];
  const NodeBinding& parent = cx.bindings().binding(node.parent);
  if (!parent.bound || parent.dummy || parent.entity == kInvalidSurrogate) {
    empty_parent_ = true;
    return Status::Ok();
  }
  switch (node.derivation) {
    case NodeDerivation::kEva: {
      // Re-open the cursor in place: its target buffer is reused across
      // outer rows, so steady-state traversal allocates nothing.
      SIM_RETURN_IF_ERROR(cx.mapper()->ReopenEvaCursor(
          node.via_owner->name, node.via_attr->name, parent.entity, &cursor_));
      cursor_active_ = true;
      // Role conversion: keep only entities holding the converted role.
      role_filter_ = !NameEq(node.class_name, node.via_attr->range_class);
      return Status::Ok();
    }
    case NodeDerivation::kMvDva: {
      SIM_ASSIGN_OR_RETURN(
          values_, cx.mapper()->GetMvValues(parent.entity, node.via_owner->name,
                                            node.via_attr->name));
      return Status::Ok();
    }
    case NodeDerivation::kTransitiveEva: {
      // Incremental BFS (§4.7): the start entity seeds the expansion queue
      // and is excluded from the output unless reachable through a cycle.
      expand_.emplace_back(parent.entity, 0);
      return Status::Ok();
    }
    case NodeDerivation::kPerspective:
      break;
  }
  return Status::Internal("EvaTraverse opened on a perspective node");
}

Result<bool> EvaTraverse::DoNext(ExecContext& cx, Row* /*out*/) {
  if (empty_parent_) return false;
  const QtNode& node = cx.qt().nodes[node_];
  while (true) {
    NodeBinding b;
    switch (node.derivation) {
      case NodeDerivation::kEva: {
        if (!cursor_active_ || !cursor_.Valid()) return false;
        SurrogateId t = cursor_.target();
        cursor_.Next();
        if (role_filter_) {
          SIM_ASSIGN_OR_RETURN(bool has,
                               cx.mapper()->HasRole(t, node.class_name));
          if (!has) continue;
        }
        b.bound = true;
        b.entity = t;
        b.level = 1;
        break;
      }
      case NodeDerivation::kMvDva:
        if (next_value_ >= values_.size()) return false;
        b.bound = true;
        b.value = std::move(values_[next_value_++]);
        break;
      case NodeDerivation::kTransitiveEva: {
        // FIFO expansion delivers entities in exactly the breadth-first
        // discovery order of the materializing implementation.
        while (ready_.empty() && !expand_.empty()) {
          if (QueryContext* qctx = cx.query_context()) {
            SIM_RETURN_IF_ERROR(qctx->Check());
          }
          auto [s, level] = expand_.front();
          expand_.pop_front();
          SIM_ASSIGN_OR_RETURN(
              std::vector<SurrogateId> targets,
              cx.mapper()->GetEvaTargets(node.via_owner->name,
                                         node.via_attr->name, s));
          for (SurrogateId t : targets) {
            if (!seen_.insert(t).second) continue;
            NodeBinding nb;
            nb.bound = true;
            nb.entity = t;
            nb.level = level + 1;
            ready_.push_back(std::move(nb));
            expand_.emplace_back(t, level + 1);
          }
        }
        if (ready_.empty()) return false;
        b = std::move(ready_.front());
        ready_.pop_front();
        break;
      }
      case NodeDerivation::kPerspective:
        return Status::Internal("EvaTraverse on a perspective node");
    }
    SIM_ASSIGN_OR_RETURN(bool ok, AcceptBinding(cx, std::move(b)));
    if (ok) return true;
  }
}

Status EvaTraverse::Close(ExecContext& cx) {
  cursor_active_ = false;
  values_.clear();
  expand_.clear();
  ready_.clear();
  seen_.clear();
  ClearBinding(cx);
  return Status::Ok();
}

// ----- NestedLoop / OuterJoinLoop -----

std::string NestedLoop::Describe() const {
  return "NestedLoop(X" + std::to_string(inner_->node()) + ")";
}

std::string OuterJoinLoop::Describe() const {
  return "OuterJoinLoop(X" + std::to_string(inner_->node()) + ")";
}

std::vector<const PhysicalOperator*> NestedLoop::Children() const {
  std::vector<const PhysicalOperator*> kids;
  if (outer_ != nullptr) kids.push_back(outer_.get());
  kids.push_back(inner_.get());
  return kids;
}

Status NestedLoop::Open(ExecContext& cx) {
  if (outer_ != nullptr) SIM_RETURN_IF_ERROR(outer_->Open(cx));
  inner_open_ = false;
  once_done_ = false;
  inner_yielded_ = false;
  return Status::Ok();
}

Result<bool> NestedLoop::DoNext(ExecContext& cx, Row* /*out*/) {
  while (true) {
    if (inner_open_) {
      SIM_ASSIGN_OR_RETURN(bool has, inner_->Next(cx, nullptr));
      if (has) {
        inner_yielded_ = true;
        return true;
      }
      SIM_RETURN_IF_ERROR(inner_->Close(cx));
      inner_open_ = false;
      SIM_ASSIGN_OR_RETURN(bool dummy, OnInnerExhausted(cx));
      if (dummy) return true;
    }
    if (outer_ != nullptr) {
      SIM_ASSIGN_OR_RETURN(bool has, outer_->Next(cx, nullptr));
      if (!has) return false;
    } else {
      if (once_done_) return false;
      once_done_ = true;
    }
    SIM_RETURN_IF_ERROR(inner_->Open(cx));
    inner_open_ = true;
    inner_yielded_ = false;
  }
}

Result<bool> NestedLoop::OnInnerExhausted(ExecContext& /*cx*/) {
  return false;
}

Result<bool> OuterJoinLoop::OnInnerExhausted(ExecContext& cx) {
  if (inner_yielded_) return false;
  // Directed outer join: one dummy all-null instance (§4.5).
  NodeBinding dummy;
  dummy.bound = true;
  dummy.dummy = true;
  cx.bindings().binding(inner_->node()) = dummy;
  return true;
}

Status NestedLoop::Close(ExecContext& cx) {
  if (inner_open_) {
    SIM_RETURN_IF_ERROR(inner_->Close(cx));
    inner_open_ = false;
  }
  if (outer_ != nullptr) SIM_RETURN_IF_ERROR(outer_->Close(cx));
  return Status::Ok();
}

// ----- OnceOp -----

Status OnceOp::Open(ExecContext& /*cx*/) {
  done_ = false;
  return Status::Ok();
}

Result<bool> OnceOp::DoNext(ExecContext& /*cx*/, Row* /*out*/) {
  if (done_) return false;
  done_ = true;
  return true;
}

Status OnceOp::Close(ExecContext& /*cx*/) { return Status::Ok(); }

// ----- Filter / Type2Exists -----

std::string Filter::Describe() const {
  return where_ == nullptr ? "Filter(pass)" : "Filter(selection)";
}

std::string Type2Exists::Describe() const {
  return "Type2Exists(" + std::to_string(type2_nodes_.size()) + " vars)";
}

std::vector<const PhysicalOperator*> Filter::Children() const {
  return {input_.get()};
}

Status Filter::Open(ExecContext& cx) { return input_->Open(cx); }

Result<bool> Filter::DoNext(ExecContext& cx, Row* out) {
  while (true) {
    SIM_ASSIGN_OR_RETURN(bool has, input_->Next(cx, out));
    if (!has) return false;
    ++cx.stats.combinations_examined;
    if (QueryContext* qctx = cx.query_context()) {
      SIM_RETURN_IF_ERROR(qctx->ChargeCombinations());
    }
    SIM_ASSIGN_OR_RETURN(TriBool pass, EvaluateSelection(cx));
    if (pass == TriBool::kTrue) return true;
  }
}

Result<TriBool> Filter::EvaluateSelection(ExecContext& cx) {
  if (where_ == nullptr) return TriBool::kTrue;
  return cx.evaluator().EvalPredicate(*where_);
}

Result<TriBool> Type2Exists::EvaluateSelection(ExecContext& cx) {
  // "for some X_{m+1} ... X_n ... if <selection> is true" — existential
  // iteration of the TYPE 2 variables.
  bool found = false;
  Status s = cx.evaluator().ForEachCombination(
      type2_nodes_, [&]() -> Result<bool> {
        SIM_ASSIGN_OR_RETURN(TriBool t, cx.evaluator().EvalPredicate(*where_));
        if (t == TriBool::kTrue) {
          found = true;
          return false;  // stop early
        }
        return true;
      });
  SIM_RETURN_IF_ERROR(s);
  return MakeTriBool(found);
}

Status Filter::Close(ExecContext& cx) { return input_->Close(cx); }

// ----- Project -----

std::string Project::Describe() const {
  return options_.structured ? "Project(structured)" : "Project(tabular)";
}

std::vector<const PhysicalOperator*> Project::Children() const {
  return {input_.get()};
}

Status Project::Open(ExecContext& cx) {
  last_emitted_.assign(cx.qt().nodes.size(), NodeBinding());
  pending_.clear();
  return input_->Open(cx);
}

Result<bool> Project::DoNext(ExecContext& cx, Row* out) {
  return options_.structured ? NextStructured(cx, out) : NextTabular(cx, out);
}

Result<bool> Project::NextTabular(ExecContext& cx, Row* out) {
  SIM_ASSIGN_OR_RETURN(bool has, input_->Next(cx, nullptr));
  if (!has) return false;
  const QueryTree& qt = cx.qt();
  out->values.clear();
  out->format_node = -1;
  out->level = 0;
  out->values.reserve(qt.targets.size());
  for (const auto& t : qt.targets) {
    SIM_ASSIGN_OR_RETURN(Value v, cx.evaluator().Eval(*t));
    out->values.push_back(std::move(v));
  }
  if (options_.make_sort_keys) {
    // Sort keys: ORDER BY expressions first, then root surrogates in
    // declaration order (restores perspective order after plan reordering).
    std::vector<Value> keys;
    for (const auto& o : qt.order_by) {
      SIM_ASSIGN_OR_RETURN(Value v, cx.evaluator().Eval(*o.expr));
      keys.push_back(std::move(v));
    }
    if (options_.restore_root_keys) {
      for (int r : qt.roots) {
        const NodeBinding& b = cx.bindings().binding(r);
        keys.push_back(b.bound && !b.dummy ? Value::Surrogate(b.entity)
                                           : Value::Null());
      }
    }
    cx.current_sort_keys = std::move(keys);
  }
  return true;
}

Result<bool> Project::NextStructured(ExecContext& cx, Row* out) {
  const QueryTree& qt = cx.qt();
  while (pending_.empty()) {
    SIM_ASSIGN_OR_RETURN(bool has, input_->Next(cx, nullptr));
    if (!has) return false;
    // Emit a record for every TYPE1/3 node whose binding changed, plus all
    // deeper ones — the fully structured multi-format output.
    size_t first_changed = options_.loop_nodes.size();
    for (size_t i = 0; i < options_.loop_nodes.size(); ++i) {
      int node = options_.loop_nodes[i];
      const NodeBinding& cur = cx.bindings().binding(node);
      const NodeBinding& last = last_emitted_[node];
      bool same = last.bound && cur.bound && last.dummy == cur.dummy &&
                  last.entity == cur.entity &&
                  last.value.StrictEquals(cur.value);
      if (!same) {
        first_changed = i;
        break;
      }
    }
    for (size_t i = first_changed; i < options_.loop_nodes.size(); ++i) {
      int node = options_.loop_nodes[i];
      Row row;
      row.format_node = node;
      const NodeBinding& b = cx.bindings().binding(node);
      row.level = options_.node_depth[node] + (b.level > 1 ? b.level - 1 : 0);
      for (size_t t = 0; t < qt.targets.size(); ++t) {
        if (options_.home_node[t] != node) continue;
        SIM_ASSIGN_OR_RETURN(Value v, cx.evaluator().Eval(*qt.targets[t]));
        row.values.push_back(std::move(v));
      }
      last_emitted_[node] = b;
      pending_.push_back(std::move(row));
    }
  }
  *out = std::move(pending_.front());
  pending_.pop_front();
  return true;
}

Status Project::Close(ExecContext& cx) {
  pending_.clear();
  return input_->Close(cx);
}

// ----- SortOp -----

std::string SortOp::Describe() const { return "Sort"; }

std::vector<const PhysicalOperator*> SortOp::Children() const {
  return {input_.get()};
}

Status SortOp::Open(ExecContext& cx) {
  sorted_ = false;
  rows_.clear();
  keys_.clear();
  order_.clear();
  next_ = 0;
  return input_->Open(cx);
}

Result<bool> SortOp::DoNext(ExecContext& cx, Row* out) {
  if (!sorted_) {
    Row row;
    while (true) {
      SIM_ASSIGN_OR_RETURN(bool has, input_->Next(cx, &row));
      if (!has) break;
      if (QueryContext* qctx = cx.query_context()) {
        SIM_RETURN_IF_ERROR(qctx->ChargeBytes(
            ApproxValueBytes(row.values) +
            ApproxValueBytes(cx.current_sort_keys)));
      }
      rows_.push_back(std::move(row));
      keys_.push_back(std::move(cx.current_sort_keys));
      cx.current_sort_keys.clear();
    }
    order_.resize(rows_.size());
    for (size_t i = 0; i < order_.size(); ++i) order_[i] = i;
    std::stable_sort(order_.begin(), order_.end(), [&](size_t a, size_t b) {
      const auto& ka = keys_[a];
      const auto& kb = keys_[b];
      for (size_t i = 0; i < ka.size() && i < kb.size(); ++i) {
        int c = CompareForSort(ka[i], kb[i]);
        bool desc = i < descending_.size() && descending_[i];
        if (c != 0) return desc ? c > 0 : c < 0;
      }
      return false;
    });
    sorted_ = true;
    cx.stats.sorted_for_order = true;
  }
  if (next_ >= order_.size()) return false;
  *out = std::move(rows_[order_[next_++]]);
  return true;
}

Status SortOp::Close(ExecContext& cx) {
  rows_.clear();
  keys_.clear();
  order_.clear();
  return input_->Close(cx);
}

// ----- Distinct -----

std::string Distinct::Describe() const { return "Distinct"; }

std::vector<const PhysicalOperator*> Distinct::Children() const {
  return {input_.get()};
}

Status Distinct::Open(ExecContext& cx) {
  seen_.clear();
  return input_->Open(cx);
}

Result<bool> Distinct::DoNext(ExecContext& cx, Row* out) {
  while (true) {
    SIM_ASSIGN_OR_RETURN(bool has, input_->Next(cx, out));
    if (!has) return false;
    key_buf_.clear();
    for (const Value& v : out->values) AppendRowKey(v, &key_buf_);
    if (seen_.find(std::string_view(key_buf_)) == seen_.end()) {
      seen_.insert(cx.arena().CopyString(key_buf_));
      if (QueryContext* qctx = cx.query_context()) {
        SIM_RETURN_IF_ERROR(qctx->ChargeBytes(ApproxValueBytes(out->values)));
      }
      return true;
    }
  }
}

Status Distinct::Close(ExecContext& cx) {
  seen_.clear();
  return input_->Close(cx);
}

// ----- LimitOp -----

std::string LimitOp::Describe() const {
  return "Limit(" + std::to_string(limit_) + ")";
}

std::vector<const PhysicalOperator*> LimitOp::Children() const {
  return {input_.get()};
}

Status LimitOp::Open(ExecContext& cx) {
  delivered_ = 0;
  return input_->Open(cx);
}

Result<bool> LimitOp::DoNext(ExecContext& cx, Row* out) {
  if (delivered_ >= limit_) return false;
  SIM_ASSIGN_OR_RETURN(bool has, input_->Next(cx, out));
  if (has) ++delivered_;
  return has;
}

Status LimitOp::Close(ExecContext& cx) { return input_->Close(cx); }

}  // namespace sim
