#include "exec/physical_plan.h"

#include <algorithm>
#include <cmath>
#include <functional>

namespace sim {

namespace {

// Finds the QT nodes an expression references (structured-output record
// homes). Mirrors the legacy executor's rules: aggregates and quantifiers
// contribute nothing (their loops hang from already-covered parents).
void CollectNodes(const BExpr& expr, std::vector<int>* out) {
  switch (expr.kind) {
    case BExprKind::kLiteral:
      return;
    case BExprKind::kField:
      out->push_back(static_cast<const BField&>(expr).node);
      return;
    case BExprKind::kNodeValue:
      out->push_back(static_cast<const BNodeValue&>(expr).node);
      return;
    case BExprKind::kNodeRef:
      out->push_back(static_cast<const BNodeRef&>(expr).node);
      return;
    case BExprKind::kBinary: {
      const auto& b = static_cast<const BBinary&>(expr);
      CollectNodes(*b.lhs, out);
      CollectNodes(*b.rhs, out);
      return;
    }
    case BExprKind::kUnary:
      CollectNodes(*static_cast<const BUnary&>(expr).operand, out);
      return;
    case BExprKind::kAggregate:
      return;
    case BExprKind::kQuantified:
      return;
    case BExprKind::kIsa:
      CollectNodes(*static_cast<const BIsa&>(expr).entity, out);
      return;
    case BExprKind::kFunction:
      // Function arguments do not pull the record home deeper (matches the
      // reference executor).
      return;
  }
}

// Estimated instances a child node delivers per parent combination.
double PerParentEstimate(const QueryTree& qt, int node, LucMapper* mapper) {
  const QtNode& n = qt.nodes[node];
  switch (n.derivation) {
    case NodeDerivation::kPerspective: {
      Result<uint64_t> count = mapper->ExtentCount(n.class_name);
      return count.ok() ? std::max<double>(1.0, static_cast<double>(*count))
                        : 1.0;
    }
    case NodeDerivation::kEva:
    case NodeDerivation::kTransitiveEva: {
      bool is_side_a = true;
      Result<int> eva = mapper->phys().EvaOf(n.via_owner->name,
                                             n.via_attr->name, &is_side_a);
      double fanout =
          eva.ok() ? std::max(mapper->AvgEvaFanout(*eva, is_side_a), 0.01)
                   : 1.0;
      // Closures revisit the structure once per reached entity.
      if (n.derivation == NodeDerivation::kTransitiveEva) fanout *= 4.0;
      return fanout;
    }
    case NodeDerivation::kMvDva:
      return 1.0;
  }
  return 1.0;
}

}  // namespace

Result<PhysicalPlan> PhysicalPlan::Build(const QueryTree& qt,
                                         const AccessPlan* access,
                                         LucMapper* mapper) {
  PhysicalPlan plan;
  if (access != nullptr) plan.access = *access;
  plan.needs_restore_sort = access != nullptr && !access->order_preserving;

  // Iteration order: plan root order (or declaration order), each root
  // followed by its TYPE1/3 descendants depth-first.
  std::vector<int> root_order;
  if (access != nullptr && !access->roots.empty()) {
    for (const auto& r : access->roots) root_order.push_back(r.node);
  } else {
    root_order = qt.roots;
  }
  std::vector<int> node_depth(qt.nodes.size(), 0);
  for (int r : root_order) {
    std::vector<std::pair<int, int>> stack = {{r, 0}};
    while (!stack.empty()) {
      auto [n, depth] = stack.back();
      stack.pop_back();
      node_depth[n] = depth;
      if (qt.nodes[n].label != 2) plan.loop_nodes.push_back(n);
      std::vector<int> kids = qt.MainChildren(n);
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        if (qt.nodes[*it].label != 2) stack.push_back({*it, depth + 1});
      }
    }
  }
  std::vector<int> type2_nodes;
  for (int n : qt.MainLoopNodes()) {
    if (qt.nodes[n].label == 2) type2_nodes.push_back(n);
  }

  // Structured-output homes: the loop-deepest node each target references.
  std::vector<int> home_node;
  for (const auto& t : qt.targets) {
    std::vector<int> nodes;
    CollectNodes(*t, &nodes);
    int home = root_order.empty() ? -1 : root_order[0];
    int best_pos = -1;
    for (int n : nodes) {
      if (qt.nodes[n].scope >= 0 || qt.nodes[n].label == 2) continue;
      auto it =
          std::find(plan.loop_nodes.begin(), plan.loop_nodes.end(), n);
      if (it == plan.loop_nodes.end()) continue;
      int pos = static_cast<int>(it - plan.loop_nodes.begin());
      if (pos > best_pos) {
        best_pos = pos;
        home = n;
      }
    }
    home_node.push_back(home);
  }

  // Loop nest: a left-deep chain, one NestedLoop (TYPE 1) or OuterJoinLoop
  // (TYPE 3) per loop node, each wrapping the node's binding source.
  OperatorPtr chain;
  double cum = 1.0;
  for (int node : plan.loop_nodes) {
    const QtNode& n = qt.nodes[node];
    std::unique_ptr<BindingSource> src;
    if (n.parent < 0) {
      const AccessPlan::RootAccess* ra = nullptr;
      if (access != nullptr) {
        for (const auto& r : access->roots) {
          if (r.node == node) {
            ra = &r;
            break;
          }
        }
      }
      if (ra != nullptr && ra->method == AccessPlan::RootMethod::kIndexEq) {
        src = std::make_unique<IndexProbe>(node, ra->index_class,
                                           ra->index_attr, ra->eq_value);
        cum *= 1.0;
      } else {
        src = std::make_unique<ExtentScan>(node, n.class_name);
        cum *= PerParentEstimate(qt, node, mapper);
      }
    } else {
      std::string label = "X" + std::to_string(node) + " via " +
                          n.via_attr->name;
      if (n.derivation == NodeDerivation::kTransitiveEva) label += "*";
      src = std::make_unique<EvaTraverse>(node, std::move(label));
      cum *= PerParentEstimate(qt, node, mapper);
    }
    src->est_rows = cum;
    OperatorPtr loop;
    if (n.label == 3) {
      loop = std::make_unique<OuterJoinLoop>(std::move(chain), std::move(src));
    } else {
      loop = std::make_unique<NestedLoop>(std::move(chain), std::move(src));
    }
    loop->est_rows = cum;
    chain = std::move(loop);
  }
  if (chain == nullptr) {
    chain = std::make_unique<OnceOp>();
    chain->est_rows = 1.0;
  }

  // Selection (always present: it also counts combinations examined).
  OperatorPtr op;
  if (qt.where != nullptr && !type2_nodes.empty()) {
    op = std::make_unique<Type2Exists>(std::move(chain), qt.where.get(),
                                       std::move(type2_nodes));
  } else {
    op = std::make_unique<Filter>(std::move(chain), qt.where.get());
  }
  op->est_rows = cum;  // selectivity 1.0: no predicate statistics yet

  bool structured = qt.mode == OutputMode::kStructure;
  Project::Options popts;
  popts.structured = structured;
  popts.make_sort_keys =
      !structured && (plan.needs_restore_sort || !qt.order_by.empty());
  popts.restore_root_keys = plan.needs_restore_sort;
  popts.home_node = std::move(home_node);
  popts.loop_nodes = plan.loop_nodes;
  popts.node_depth = std::move(node_depth);
  bool sort = popts.make_sort_keys;
  op = std::make_unique<Project>(std::move(op), std::move(popts));
  op->est_rows = cum;

  if (sort) {
    std::vector<bool> descending;
    for (const auto& o : qt.order_by) descending.push_back(o.descending);
    op = std::make_unique<SortOp>(std::move(op), std::move(descending));
    op->est_rows = cum;
  }
  if (qt.mode == OutputMode::kTableDistinct) {
    op = std::make_unique<Distinct>(std::move(op));
    op->est_rows = cum;
  }
  if (qt.limit >= 0) {
    op = std::make_unique<LimitOp>(std::move(op), qt.limit);
    op->est_rows = std::min(cum, static_cast<double>(qt.limit));
  }
  plan.root = std::move(op);
  return plan;
}

std::string PhysicalPlan::Describe(bool analyze) const {
  std::string out;
  std::function<void(const PhysicalOperator*, int)> render =
      [&](const PhysicalOperator* op, int depth) {
        out.append(static_cast<size_t>(depth) * 2, ' ');
        out += op->Describe();
        out += " (est_rows=" +
               std::to_string(static_cast<uint64_t>(
                   std::llround(std::max(0.0, op->est_rows))));
        if (analyze) {
          out += " actual_rows=" + std::to_string(op->actual_rows());
          out += " time_us=" + std::to_string(op->time_us());
          out += " pool_hits=" + std::to_string(op->pool_hits());
          out += " pool_misses=" + std::to_string(op->pool_misses());
        }
        out += ")\n";
        for (const PhysicalOperator* child : op->Children()) {
          render(child, depth + 1);
        }
      };
  if (root != nullptr) render(root.get(), 0);
  return out;
}

}  // namespace sim
