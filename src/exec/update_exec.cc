#include "exec/update_exec.h"

#include <algorithm>

#include "common/strings.h"
#include "parser/dml_parser.h"

namespace sim {

namespace {

// Extracts a top-level `attr = literal` conjunct usable for an index fast
// path. Returns the attribute name and the literal.
bool FindEqualityProbe(const Expr* where, std::string* attr, Value* value) {
  if (where == nullptr) return false;
  if (where->kind == ExprKind::kBinary) {
    const auto* bin = static_cast<const BinaryExpr*>(where);
    if (bin->op == BinaryOp::kAnd) {
      return FindEqualityProbe(bin->lhs.get(), attr, value) ||
             FindEqualityProbe(bin->rhs.get(), attr, value);
    }
    if (bin->op != BinaryOp::kEq) return false;
    const Expr* ref = bin->lhs.get();
    const Expr* lit = bin->rhs.get();
    if (ref->kind != ExprKind::kQualRef) std::swap(ref, lit);
    if (ref->kind != ExprKind::kQualRef ||
        lit->kind != ExprKind::kLiteral) {
      return false;
    }
    const auto* qr = static_cast<const QualRefExpr*>(ref);
    if (qr->elements.size() > 2) return false;  // extended attr: no probe
    const QualElement& e = qr->elements.front();
    if (e.inverse || e.transitive || !e.as_class.empty()) return false;
    *attr = e.name;
    *value = static_cast<const LiteralExpr*>(lit)->value;
    return true;
  }
  return false;
}

}  // namespace

Result<std::vector<SurrogateId>> UpdateExecutor::SelectEntities(
    const std::string& cls_or_view, const Expr* where) {
  // Views select from their underlying class with the predicate applied.
  std::string cls = cls_or_view;
  if (!mapper_->dir().HasClass(cls_or_view) &&
      mapper_->dir().HasView(cls_or_view)) {
    SIM_ASSIGN_OR_RETURN(const ViewDef* view,
                         mapper_->dir().FindView(cls_or_view));
    cls = view->class_name;
    SIM_ASSIGN_OR_RETURN(std::vector<SurrogateId> base,
                         SelectEntities(cls, where));
    SIM_ASSIGN_OR_RETURN(ExprPtr cond,
                         DmlParser::ParseExpressionText(view->condition_text));
    SIM_ASSIGN_OR_RETURN(QueryTree vqt, binder_.BindCondition(cls, *cond));
    Executor exec(mapper_);
    std::vector<SurrogateId> out;
    for (SurrogateId s : base) {
      SIM_ASSIGN_OR_RETURN(bool sat, exec.EntitySatisfies(vqt, s));
      if (sat) out.push_back(s);
    }
    return out;
  }
  if (where == nullptr) return mapper_->ExtentOf(cls);

  QueryTree qt;
  SIM_ASSIGN_OR_RETURN(qt, binder_.BindCondition(cls, *where));
  Executor exec(mapper_);

  // Index fast path: `unique-attr = literal` narrows the scan to one
  // candidate.
  std::string probe_attr;
  Value probe_value;
  if (FindEqualityProbe(where, &probe_attr, &probe_value) &&
      mapper_->HasIndex(cls, probe_attr)) {
    Result<std::optional<SurrogateId>> hit =
        mapper_->LookupByIndex(cls, probe_attr, probe_value);
    if (hit.ok()) {
      std::vector<SurrogateId> out;
      if (hit->has_value()) {
        SIM_ASSIGN_OR_RETURN(bool has_role, mapper_->HasRole(**hit, cls));
        if (has_role) {
          SIM_ASSIGN_OR_RETURN(bool sat, exec.EntitySatisfies(qt, **hit));
          if (sat) out.push_back(**hit);
        }
      }
      return out;
    }
  }

  SIM_ASSIGN_OR_RETURN(std::vector<SurrogateId> extent, mapper_->ExtentOf(cls));
  std::sort(extent.begin(), extent.end());
  std::vector<SurrogateId> out;
  for (SurrogateId s : extent) {
    SIM_ASSIGN_OR_RETURN(bool sat, exec.EntitySatisfies(qt, s));
    if (sat) out.push_back(s);
  }
  return out;
}

Result<Value> UpdateExecutor::EvalAssignmentValue(const std::string& cls,
                                                  SurrogateId s,
                                                  const Expr& expr) {
  SIM_ASSIGN_OR_RETURN(QueryTree qt, binder_.BindEntityExpr(cls, expr));
  Executor exec(mapper_);
  return exec.EvalForEntity(qt, s);
}

Result<std::vector<SurrogateId>> UpdateExecutor::SelectorTargets(
    const std::string& cls, SurrogateId s, const Assignment& a) {
  SIM_ASSIGN_OR_RETURN(DirectoryManager::ResolvedAttr ra,
                       mapper_->dir().ResolveAttribute(cls, a.attr));
  if (!ra.attr->is_eva()) {
    return Status::InvalidArgument("'" + a.attr +
                                   "' is not an EVA; WITH selector does not "
                                   "apply");
  }
  if (a.mode == Assignment::Mode::kExclude) {
    // "<object name> refers to the same EVA name for exclusions": select
    // among the current targets of the EVA.
    if (!NameEq(a.with_object, a.attr)) {
      return Status::InvalidArgument(
          "EXCLUDE must name the EVA itself ('" + a.attr + "'), got '" +
          a.with_object + "'");
    }
    SIM_ASSIGN_OR_RETURN(
        std::vector<SurrogateId> current,
        mapper_->GetEvaTargets(ra.owner->name, ra.attr->name, s));
    SIM_ASSIGN_OR_RETURN(QueryTree qt,
                         binder_.BindCondition(ra.attr->range_class,
                                               *a.with_expr));
    Executor exec(mapper_);
    std::vector<SurrogateId> out;
    for (SurrogateId t : current) {
      SIM_ASSIGN_OR_RETURN(bool sat, exec.EntitySatisfies(qt, t));
      if (sat) out.push_back(t);
    }
    return out;
  }
  // SET / INCLUDE: "<object name> refers to a class name ... it must be
  // the range class of the EVA."
  SIM_ASSIGN_OR_RETURN(
      bool is_range,
      mapper_->dir().IsSubclassOrSame(a.with_object, ra.attr->range_class));
  if (!is_range) {
    return Status::InvalidArgument("'" + a.with_object +
                                   "' is not the range class of EVA '" +
                                   a.attr + "'");
  }
  return SelectEntities(a.with_object, a.with_expr.get());
}

Status UpdateExecutor::ApplyAssignment(
    const std::string& cls, SurrogateId s, const Assignment& a,
    Transaction* txn, std::set<std::string>* touched_classes,
    std::vector<SurrogateId>* touched_entities) {
  SIM_ASSIGN_OR_RETURN(DirectoryManager::ResolvedAttr ra,
                       mapper_->dir().ResolveAttribute(cls, a.attr));
  touched_classes->insert(ra.owner->name);

  if (ra.attr->is_eva()) {
    std::vector<SurrogateId> selected;
    if (a.is_selector) {
      SIM_ASSIGN_OR_RETURN(selected, SelectorTargets(cls, s, a));
    } else {
      // Non-selector EVA assignment: only `:= null` (clear) is meaningful.
      SIM_ASSIGN_OR_RETURN(Value v, EvalAssignmentValue(cls, s, *a.value));
      if (!v.is_null()) {
        if (v.type() == ValueType::kSurrogate) {
          selected.push_back(v.surrogate_value());
        } else {
          return Status::TypeError(
              "EVA assignment requires a WITH selector, an entity, or null");
        }
      } else if (a.mode != Assignment::Mode::kSet) {
        return Status::InvalidArgument(
            "INCLUDE/EXCLUDE of null on EVA '" + a.attr + "'");
      }
    }
    for (SurrogateId t : selected) touched_entities->push_back(t);
    SIM_ASSIGN_OR_RETURN(const ClassDef* range,
                         mapper_->dir().FindClass(ra.attr->range_class));
    touched_classes->insert(range->name);
    switch (a.mode) {
      case Assignment::Mode::kSet: {
        if (!ra.attr->mv && selected.size() > 1) {
          return Status::ConstraintViolation(
              "assignment selects " + std::to_string(selected.size()) +
              " entities for single-valued EVA '" + a.attr + "'");
        }
        SIM_RETURN_IF_ERROR(
            mapper_->RemoveAllEvaPairs(ra.owner->name, ra.attr->name, s, txn));
        for (SurrogateId t : selected) {
          SIM_RETURN_IF_ERROR(
              mapper_->AddEvaPair(ra.owner->name, ra.attr->name, s, t, txn));
        }
        return Status::Ok();
      }
      case Assignment::Mode::kInclude:
        for (SurrogateId t : selected) {
          SIM_RETURN_IF_ERROR(
              mapper_->AddEvaPair(ra.owner->name, ra.attr->name, s, t, txn));
        }
        return Status::Ok();
      case Assignment::Mode::kExclude:
        for (SurrogateId t : selected) {
          SIM_RETURN_IF_ERROR(mapper_->RemoveEvaPair(ra.owner->name,
                                                     ra.attr->name, s, t,
                                                     txn));
        }
        return Status::Ok();
    }
    return Status::Internal("unhandled assignment mode");
  }

  // DVA assignment.
  if (a.is_selector) {
    return Status::InvalidArgument("WITH selector on DVA '" + a.attr + "'");
  }
  SIM_ASSIGN_OR_RETURN(Value v, EvalAssignmentValue(cls, s, *a.value));
  if (!ra.attr->mv) {
    if (a.mode != Assignment::Mode::kSet) {
      return Status::InvalidArgument(
          "INCLUDE/EXCLUDE on single-valued attribute '" + a.attr + "'");
    }
    return mapper_->SetField(s, ra.owner->name, ra.attr->name, v, txn);
  }
  switch (a.mode) {
    case Assignment::Mode::kSet: {
      // Replace the whole collection with the one value (null clears).
      SIM_ASSIGN_OR_RETURN(
          std::vector<Value> current,
          mapper_->GetMvValues(s, ra.owner->name, ra.attr->name));
      for (const Value& cur : current) {
        SIM_RETURN_IF_ERROR(mapper_->RemoveMvValue(s, ra.owner->name,
                                                   ra.attr->name, cur, txn));
      }
      if (!v.is_null()) {
        SIM_RETURN_IF_ERROR(
            mapper_->AddMvValue(s, ra.owner->name, ra.attr->name, v, txn));
      }
      return Status::Ok();
    }
    case Assignment::Mode::kInclude:
      return mapper_->AddMvValue(s, ra.owner->name, ra.attr->name, v, txn);
    case Assignment::Mode::kExclude:
      return mapper_->RemoveMvValue(s, ra.owner->name, ra.attr->name, v, txn);
  }
  return Status::Internal("unhandled assignment mode");
}

Result<UpdateExecutor::UpdateResult> UpdateExecutor::ExecuteInsert(
    const InsertStmt& stmt, Transaction* txn) {
  UpdateResult result;
  std::set<std::string> touched_classes;
  if (mapper_->dir().HasView(stmt.class_name)) {
    return Status::NotSupported(
        "INSERT through a view is not supported; insert into '" +
        mapper_->dir().FindView(stmt.class_name).value()->class_name +
        "' directly");
  }
  SIM_ASSIGN_OR_RETURN(const ClassDef* cls,
                       mapper_->dir().FindClass(stmt.class_name));
  touched_classes.insert(cls->name);

  std::vector<SurrogateId> targets;
  if (!stmt.from_class.empty()) {
    // Role extension: <from_class> must be an ancestor of <class>.
    SIM_ASSIGN_OR_RETURN(
        bool is_ancestor,
        mapper_->dir().IsSubclassOrSame(cls->name, stmt.from_class));
    if (!is_ancestor || NameEq(cls->name, stmt.from_class)) {
      return Status::InvalidArgument("'" + stmt.from_class +
                                     "' is not a proper ancestor of '" +
                                     cls->name + "'");
    }
    SIM_ASSIGN_OR_RETURN(targets, SelectEntities(stmt.from_class,
                                                 stmt.from_where.get()));
    if (targets.empty()) {
      return Status::NotFound("INSERT ... FROM selects no entity");
    }
    for (SurrogateId s : targets) {
      SIM_RETURN_IF_ERROR(mapper_->AddRole(s, cls->name, txn));
    }
  } else {
    SIM_ASSIGN_OR_RETURN(SurrogateId s, mapper_->CreateEntity(cls->name, txn));
    targets.push_back(s);
  }

  for (SurrogateId s : targets) {
    for (const Assignment& a : stmt.assignments) {
      SIM_RETURN_IF_ERROR(ApplyAssignment(cls->name, s, a, txn,
                                          &touched_classes, &result.touched));
    }
    SIM_RETURN_IF_ERROR(mapper_->CheckRequired(s, cls->name));
    result.touched.push_back(s);
  }
  result.entities_affected = static_cast<int>(targets.size());
  if (integrity_ != nullptr) {
    SIM_RETURN_IF_ERROR(
        integrity_->CheckAfterStatement(result.touched, touched_classes));
  }
  return result;
}

Result<UpdateExecutor::UpdateResult> UpdateExecutor::ExecuteModify(
    const ModifyStmt& stmt, Transaction* txn) {
  UpdateResult result;
  std::set<std::string> touched_classes;
  std::string class_name = stmt.class_name;
  if (mapper_->dir().HasView(class_name)) {
    SIM_ASSIGN_OR_RETURN(const ViewDef* view,
                         mapper_->dir().FindView(class_name));
    class_name = view->class_name;
  }
  SIM_ASSIGN_OR_RETURN(const ClassDef* cls,
                       mapper_->dir().FindClass(class_name));
  touched_classes.insert(cls->name);
  SIM_ASSIGN_OR_RETURN(std::vector<SurrogateId> targets,
                       SelectEntities(stmt.class_name, stmt.where.get()));
  for (SurrogateId s : targets) {
    for (const Assignment& a : stmt.assignments) {
      SIM_RETURN_IF_ERROR(ApplyAssignment(cls->name, s, a, txn,
                                          &touched_classes, &result.touched));
    }
    SIM_RETURN_IF_ERROR(mapper_->CheckRequired(s, cls->name));
    result.touched.push_back(s);
  }
  result.entities_affected = static_cast<int>(targets.size());
  if (integrity_ != nullptr) {
    SIM_RETURN_IF_ERROR(
        integrity_->CheckAfterStatement(result.touched, touched_classes));
  }
  return result;
}

Result<UpdateExecutor::UpdateResult> UpdateExecutor::ExecuteDelete(
    const DeleteStmt& stmt, Transaction* txn) {
  UpdateResult result;
  std::set<std::string> touched_classes;
  std::string class_name = stmt.class_name;
  if (mapper_->dir().HasView(class_name)) {
    SIM_ASSIGN_OR_RETURN(const ViewDef* view,
                         mapper_->dir().FindView(class_name));
    class_name = view->class_name;
  }
  SIM_ASSIGN_OR_RETURN(const ClassDef* cls,
                       mapper_->dir().FindClass(class_name));
  touched_classes.insert(cls->name);
  SIM_ASSIGN_OR_RETURN(std::vector<std::string> descendants,
                       mapper_->dir().DescendantsOf(cls->name));
  for (const auto& d : descendants) touched_classes.insert(d);
  SIM_ASSIGN_OR_RETURN(std::vector<SurrogateId> targets,
                       SelectEntities(stmt.class_name, stmt.where.get()));
  for (SurrogateId s : targets) {
    SIM_RETURN_IF_ERROR(mapper_->DeleteRole(s, cls->name, txn));
    result.touched.push_back(s);
  }
  result.entities_affected = static_cast<int>(targets.size());
  if (integrity_ != nullptr) {
    SIM_RETURN_IF_ERROR(
        integrity_->CheckAfterStatement(result.touched, touched_classes));
  }
  return result;
}

}  // namespace sim
