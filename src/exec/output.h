#ifndef SIMDB_EXEC_OUTPUT_H_
#define SIMDB_EXEC_OUTPUT_H_

// Query output. SIM's "fully tabular" output has one record format; the
// "fully structured" form has one format per TYPE 1/3 variable, each
// record tagged with its format and nesting level (§4.5, §4.7 — the
// structured form preserves the tree shape of transitive closures via
// level numbers).

#include <string>
#include <vector>

#include "common/value.h"

namespace sim {

struct Row {
  std::vector<Value> values;
  // Structured output: the QT node this record describes, and its nesting
  // level. Tabular output leaves these at defaults.
  int format_node = -1;
  int level = 0;
};

class ResultSet {
 public:
  std::vector<std::string> columns;
  std::vector<Row> rows;
  bool structured = false;

  size_t row_count() const { return rows.size(); }

  // Pretty-printed table (tabular) or indented records (structured).
  std::string ToString() const;
};

}  // namespace sim

#endif  // SIMDB_EXEC_OUTPUT_H_
