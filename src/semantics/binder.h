#ifndef SIMDB_SEMANTICS_BINDER_H_
#define SIMDB_SEMANTICS_BINDER_H_

// Qualification and binding (§4.2, §4.4). The binder turns parsed DML into
// a QueryTree:
//  * completes cut-short qualifications ("Name of Advisor" ->
//    "Name of Advisor of Student") by anchoring the rightmost element
//    against the perspectives,
//  * binds identically-qualified EVA / MV-DVA occurrences to one range
//    variable,
//  * opens fresh scopes for aggregates, quantifiers and transitive closure
//    (constructs that break implicit binding),
//  * resolves INVERSE(...) and AS role conversions,
//  * labels every main-query node TYPE 1 / 2 / 3 per §4.5.

#include <map>
#include <string>
#include <vector>

#include "catalog/directory.h"
#include "common/status.h"
#include "parser/ast.h"
#include "semantics/query_tree.h"

namespace sim {

class Binder {
 public:
  explicit Binder(const DirectoryManager* dir) : dir_(dir) {}

  // Binds a full Retrieve statement.
  Result<QueryTree> BindRetrieve(const RetrieveStmt& stmt);

  // Binds a boolean condition with a single perspective class (VERIFY
  // assertions, update-statement WHERE clauses). The resulting tree has one
  // root; the executor supplies the root's binding.
  Result<QueryTree> BindCondition(const std::string& perspective_class,
                                  const Expr& condition);

  // Binds a scalar expression (update assignment right-hand side) with a
  // single perspective class; the expression becomes the tree's only
  // target.
  Result<QueryTree> BindEntityExpr(const std::string& perspective_class,
                                   const Expr& expr);

 private:
  struct Ctx {
    QueryTree* qt = nullptr;
    bool in_target = false;
    int scope = -1;                        // -1 = main query
    std::vector<int>* scope_nodes = nullptr;  // local loop nodes, DFS order
    int anchor_node = -1;  // preferred anchor (aggregate outer suffix)
    bool allow_new_roots = false;  // class names may open new perspectives
    // Derived-attribute expressions bind strictly against their owning
    // entity's node; perspectives are not candidate anchors.
    bool restrict_to_anchor = false;
  };

  // Creates a perspective root. `class_name` may also name a view, in
  // which case the root ranges over the view's underlying class and the
  // view predicate is queued for conjunction into the selection.
  Result<int> MakeRoot(QueryTree* qt, const std::string& class_name,
                       const std::string& ref_var, const Ctx* scope_ctx);

  // Binds queued view predicates and ANDs them into qt->where. Must run
  // before labeling.
  Status ApplyViewConditions(QueryTree* qt);

  Result<BExprPtr> BindExpr(const Expr& expr, Ctx* ctx);
  Result<BExprPtr> BindQualRef(const QualRefExpr& ref, Ctx* ctx);
  // Inlines a derived attribute's stored expression, anchored at `node`.
  Result<BExprPtr> BindDerived(int node,
                               const DirectoryManager::ResolvedAttr& ra,
                               Ctx* ctx);
  Result<BExprPtr> BindAggregate(const AggregateExpr& agg, Ctx* ctx);
  Result<BExprPtr> BindQuantified(const QuantifiedExpr& q, Ctx* ctx);

  // Resolves the rightmost chain element to an anchor node. `consumed` is
  // set when the element itself named the anchor (class or ref var).
  Result<int> ResolveAnchor(const QualElement& last, Ctx* ctx, bool* consumed);

  // Deep qualification completion (§4.2): unique shortest EVA path from a
  // perspective to a class owning `last`. Returns the node at the end of
  // the materialized path, or -1 when no path exists; ambiguity is an
  // error.
  Result<int> CompleteThroughPath(const QualElement& last, Ctx* ctx);

  // Resolves element `e` as an attribute of class `cls`, handling
  // INVERSE(...).
  Result<DirectoryManager::ResolvedAttr> ResolveElemAttr(
      const std::string& cls, const QualElement& e) const;

  // Finds or creates the child node for traversing `ra` from `parent`.
  Result<int> GetOrCreateChild(int parent,
                               const DirectoryManager::ResolvedAttr& ra,
                               const QualElement& e, Ctx* ctx);

  void MarkUsage(QueryTree* qt, int node, bool in_target);
  void LabelTree(QueryTree* qt);

  const DirectoryManager* dir_;
  // (scope, parent, key) -> node id; reset per statement.
  std::map<std::tuple<int, int, std::string>, int> node_keys_;
  int next_scope_ = 0;
  // Guards against cyclic derived-attribute definitions.
  int derived_depth_ = 0;
  // (root node, condition text) pairs queued by MakeRoot for views.
  std::vector<std::pair<int, std::string>> pending_view_conditions_;
};

}  // namespace sim

#endif  // SIMDB_SEMANTICS_BINDER_H_
