#ifndef SIMDB_SEMANTICS_QUERY_TREE_H_
#define SIMDB_SEMANTICS_QUERY_TREE_H_

// The bound form of a DML query: the query tree (QT) of §4.5. Nodes are
// range variables — perspective classes, EVA traversals, multi-valued DVA
// expansions, transitive closures — and edges are the EVAs / MV DVAs that
// derive a child's domain from its parent's current binding. Each node is
// labeled TYPE 1 (target + selection), TYPE 2 (selection only, evaluated
// existentially) or TYPE 3 (target only, outer-joined).
//
// Bound expressions (BExpr) mirror the AST but reference QT nodes and
// resolved attributes instead of names.

#include <memory>
#include <string>
#include <vector>

#include "catalog/directory.h"
#include "common/status.h"
#include "common/value.h"
#include "parser/ast.h"

namespace sim {

struct BExpr;  // bound expressions, defined below

enum class NodeDerivation {
  kPerspective,    // root: ranges over a class extent
  kEva,            // child: entities related to parent via an EVA
  kMvDva,          // child: values of a multi-valued DVA of parent
  kTransitiveEva,  // child: transitive closure of an EVA from parent
};

struct QtNode {
  int id = -1;
  int parent = -1;  // -1 for roots
  NodeDerivation derivation = NodeDerivation::kPerspective;

  // Effective class of the entities this node ranges over (empty for MV
  // DVA value nodes). Role conversion (AS) narrows/widens this relative to
  // the EVA's declared range.
  std::string class_name;

  // For kEva/kMvDva/kTransitiveEva: the traversed attribute, resolved on
  // the parent's class.
  const ClassDef* via_owner = nullptr;
  const AttributeDef* via_attr = nullptr;

  // Explicit range variable name (perspective ref vars), if any.
  std::string ref_var;

  // -1 when the node belongs to the main query; otherwise an opaque scope
  // id grouping the local nodes of one aggregate / quantifier (§4.4:
  // "implicit binding of names is broken" inside these constructs).
  int scope = -1;

  std::vector<int> children;

  // Usage marks set during binding, then folded into the label.
  bool used_in_target = false;
  bool used_in_where = false;

  // TYPE 1 / 2 / 3 per §4.5.
  int label = 1;

  // Optional predicate restricting this node's domain (view roots inside
  // aggregate/quantifier scopes, where the predicate cannot be conjoined
  // into the main selection). Shared so QtNode stays copyable.
  std::shared_ptr<BExpr> domain_filter;
};

// ----- bound expressions -----

enum class BExprKind {
  kLiteral,
  kField,       // single-valued DVA (or subrole) of a node's entity
  kNodeValue,   // current value of an MV-DVA node
  kNodeRef,     // current entity (surrogate) of an entity node
  kBinary,
  kUnary,
  kAggregate,
  kQuantified,
  kIsa,
  kFunction,
};

struct BExpr {
  explicit BExpr(BExprKind k) : kind(k) {}
  virtual ~BExpr() = default;
  BExprKind kind;
};

using BExprPtr = std::unique_ptr<BExpr>;

struct BLiteral : BExpr {
  explicit BLiteral(Value v) : BExpr(BExprKind::kLiteral), value(std::move(v)) {}
  Value value;
};

struct BField : BExpr {
  BField() : BExpr(BExprKind::kField) {}
  int node = -1;
  const ClassDef* owner = nullptr;
  const AttributeDef* attr = nullptr;
};

struct BNodeValue : BExpr {
  explicit BNodeValue(int n) : BExpr(BExprKind::kNodeValue), node(n) {}
  int node;
};

struct BNodeRef : BExpr {
  explicit BNodeRef(int n) : BExpr(BExprKind::kNodeRef), node(n) {}
  int node;
};

struct BBinary : BExpr {
  BBinary(BinaryOp o, BExprPtr l, BExprPtr r)
      : BExpr(BExprKind::kBinary), op(o), lhs(std::move(l)), rhs(std::move(r)) {}
  BinaryOp op;
  BExprPtr lhs, rhs;
};

struct BUnary : BExpr {
  BUnary(UnaryOp o, BExprPtr e)
      : BExpr(BExprKind::kUnary), op(o), operand(std::move(e)) {}
  UnaryOp op;
  BExprPtr operand;
};

struct BAggregate : BExpr {
  BAggregate() : BExpr(BExprKind::kAggregate) {}
  AggFunc func = AggFunc::kCount;
  bool distinct = false;
  // Local loop nodes in DFS order; their domains are derived from already-
  // bound outer nodes when evaluation starts.
  std::vector<int> loop_nodes;
  BExprPtr arg;
};

struct BQuantified : BExpr {
  BQuantified() : BExpr(BExprKind::kQuantified) {}
  Quantifier quantifier = Quantifier::kSome;
  std::vector<int> loop_nodes;
  BExprPtr value;  // compared against the other comparison operand
};

struct BFunction : BExpr {
  BFunction() : BExpr(BExprKind::kFunction) {}
  std::string name;  // lowercase
  std::vector<BExprPtr> args;
};

struct BIsa : BExpr {
  BIsa() : BExpr(BExprKind::kIsa) {}
  BExprPtr entity;
  std::string class_name;
};

// ----- the bound query -----

struct BoundOrderItem {
  BExprPtr expr;
  bool descending = false;
};

struct QueryTree {
  std::vector<QtNode> nodes;
  std::vector<int> roots;  // perspective nodes, declaration order
  OutputMode mode = OutputMode::kDefault;
  std::vector<BExprPtr> targets;
  std::vector<std::string> target_labels;  // display headers
  std::vector<BoundOrderItem> order_by;
  BExprPtr where;  // null = no selection
  // RETRIEVE FIRST n / LIMIT n: stop after n output rows (-1 = no limit).
  int64_t limit = -1;

  // Main-query child nodes of `node` (excludes aggregate-local scopes).
  std::vector<int> MainChildren(int node) const;
  // Main-query nodes of the given label set in DFS order from the roots.
  std::vector<int> MainLoopNodes() const;

  std::string DebugString() const;
};

}  // namespace sim

#endif  // SIMDB_SEMANTICS_QUERY_TREE_H_
