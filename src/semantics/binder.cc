#include "semantics/binder.h"

#include <algorithm>

#include "common/strings.h"
#include "parser/dml_parser.h"

namespace sim {

Result<int> Binder::MakeRoot(QueryTree* qt, const std::string& class_name,
                             const std::string& ref_var, const Ctx* scope_ctx) {
  std::string underlying = class_name;
  std::string view_condition;
  std::string view_ref = ref_var;
  if (!dir_->HasClass(class_name) && dir_->HasView(class_name)) {
    SIM_ASSIGN_OR_RETURN(const ViewDef* view, dir_->FindView(class_name));
    underlying = view->class_name;
    view_condition = view->condition_text;
    // The view name keeps working as a qualifier for this root.
    if (view_ref.empty()) view_ref = view->name;
  }
  SIM_ASSIGN_OR_RETURN(const ClassDef* cls, dir_->FindClass(underlying));
  QtNode node;
  node.id = static_cast<int>(qt->nodes.size());
  node.derivation = NodeDerivation::kPerspective;
  node.class_name = cls->name;
  node.ref_var = view_ref;
  if (scope_ctx != nullptr && scope_ctx->scope >= 0) {
    node.scope = scope_ctx->scope;
    scope_ctx->scope_nodes->push_back(node.id);
  } else {
    qt->roots.push_back(node.id);
  }
  int id = static_cast<int>(qt->nodes.size());
  qt->nodes.push_back(std::move(node));
  if (!view_condition.empty()) {
    pending_view_conditions_.emplace_back(id, view_condition);
  }
  return id;
}

Status Binder::ApplyViewConditions(QueryTree* qt) {
  // A view condition may itself anchor at a view over a view; the loop
  // processes conditions queued during its own iterations.
  for (size_t i = 0; i < pending_view_conditions_.size(); ++i) {
    auto [root, text] = pending_view_conditions_[i];
    SIM_ASSIGN_OR_RETURN(ExprPtr expr, DmlParser::ParseExpressionText(text));
    if (qt->nodes[root].scope < 0) {
      // Main-query view root: conjoin the predicate into the selection so
      // the optimizer sees it (index selection, TYPE 2 labeling).
      Ctx vctx;
      vctx.qt = qt;
      vctx.in_target = false;
      vctx.anchor_node = root;
      vctx.restrict_to_anchor = true;
      SIM_ASSIGN_OR_RETURN(BExprPtr bound, BindExpr(*expr, &vctx));
      if (qt->where == nullptr) {
        qt->where = std::move(bound);
      } else {
        qt->where = std::make_unique<BBinary>(BinaryOp::kAnd,
                                              std::move(qt->where),
                                              std::move(bound));
      }
      continue;
    }
    // Aggregate/quantifier-scope view root: the main selection is not
    // evaluated for its bindings, so the predicate becomes a
    // self-contained existential domain filter on the node itself.
    auto filter = std::make_unique<BQuantified>();
    filter->quantifier = Quantifier::kSome;
    Ctx vctx;
    vctx.qt = qt;
    vctx.in_target = false;
    vctx.scope = next_scope_++;
    vctx.scope_nodes = &filter->loop_nodes;
    vctx.anchor_node = root;
    vctx.restrict_to_anchor = true;
    SIM_ASSIGN_OR_RETURN(filter->value, BindExpr(*expr, &vctx));
    qt->nodes[root].domain_filter = std::move(filter);
  }
  pending_view_conditions_.clear();
  return Status::Ok();
}

Result<QueryTree> Binder::BindRetrieve(const RetrieveStmt& stmt) {
  QueryTree qt;
  qt.mode = stmt.mode;
  qt.limit = stmt.limit;
  node_keys_.clear();
  next_scope_ = 0;
  pending_view_conditions_.clear();

  for (const Perspective& p : stmt.perspectives) {
    SIM_RETURN_IF_ERROR(
        MakeRoot(&qt, p.class_name, p.ref_var, nullptr).status());
  }

  Ctx ctx;
  ctx.qt = &qt;
  ctx.allow_new_roots = stmt.perspectives.empty();

  for (const ExprPtr& t : stmt.targets) {
    ctx.in_target = true;
    SIM_ASSIGN_OR_RETURN(BExprPtr bound, BindExpr(*t, &ctx));
    qt.targets.push_back(std::move(bound));
    qt.target_labels.push_back(t->ToText());
  }
  if (stmt.where != nullptr) {
    ctx.in_target = false;
    SIM_ASSIGN_OR_RETURN(qt.where, BindExpr(*stmt.where, &ctx));
  }
  for (const OrderItem& o : stmt.order_by) {
    ctx.in_target = true;  // ordering exposes values like targets do
    BoundOrderItem item;
    SIM_ASSIGN_OR_RETURN(item.expr, BindExpr(*o.expr, &ctx));
    item.descending = o.descending;
    qt.order_by.push_back(std::move(item));
  }
  // A query may legitimately have no main perspective — e.g.
  // "Retrieve AVG(Salary of Instructor)" ranges only inside the
  // aggregate's scope and produces a single output record.
  SIM_RETURN_IF_ERROR(ApplyViewConditions(&qt));
  LabelTree(&qt);
  return qt;
}

Result<QueryTree> Binder::BindCondition(const std::string& perspective_class,
                                        const Expr& condition) {
  QueryTree qt;
  node_keys_.clear();
  next_scope_ = 0;
  SIM_RETURN_IF_ERROR(
      MakeRoot(&qt, perspective_class, "", nullptr).status());
  Ctx ctx;
  ctx.qt = &qt;
  ctx.in_target = false;
  SIM_ASSIGN_OR_RETURN(qt.where, BindExpr(condition, &ctx));
  SIM_RETURN_IF_ERROR(ApplyViewConditions(&qt));
  LabelTree(&qt);
  return qt;
}

Result<QueryTree> Binder::BindEntityExpr(const std::string& perspective_class,
                                         const Expr& expr) {
  QueryTree qt;
  node_keys_.clear();
  next_scope_ = 0;
  SIM_RETURN_IF_ERROR(
      MakeRoot(&qt, perspective_class, "", nullptr).status());
  Ctx ctx;
  ctx.qt = &qt;
  ctx.in_target = true;
  SIM_ASSIGN_OR_RETURN(BExprPtr bound, BindExpr(expr, &ctx));
  qt.targets.push_back(std::move(bound));
  qt.target_labels.push_back(expr.ToText());
  SIM_RETURN_IF_ERROR(ApplyViewConditions(&qt));
  LabelTree(&qt);
  return qt;
}

Result<BExprPtr> Binder::BindExpr(const Expr& expr, Ctx* ctx) {
  switch (expr.kind) {
    case ExprKind::kLiteral: {
      const auto& lit = static_cast<const LiteralExpr&>(expr);
      return BExprPtr(std::make_unique<BLiteral>(lit.value));
    }
    case ExprKind::kQualRef:
      return BindQualRef(static_cast<const QualRefExpr&>(expr), ctx);
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      SIM_ASSIGN_OR_RETURN(BExprPtr lhs, BindExpr(*bin.lhs, ctx));
      SIM_ASSIGN_OR_RETURN(BExprPtr rhs, BindExpr(*bin.rhs, ctx));
      return BExprPtr(std::make_unique<BBinary>(bin.op, std::move(lhs),
                                                std::move(rhs)));
    }
    case ExprKind::kUnary: {
      const auto& un = static_cast<const UnaryExpr&>(expr);
      SIM_ASSIGN_OR_RETURN(BExprPtr operand, BindExpr(*un.operand, ctx));
      return BExprPtr(std::make_unique<BUnary>(un.op, std::move(operand)));
    }
    case ExprKind::kAggregate:
      return BindAggregate(static_cast<const AggregateExpr&>(expr), ctx);
    case ExprKind::kQuantified:
      return BindQuantified(static_cast<const QuantifiedExpr&>(expr), ctx);
    case ExprKind::kFunction: {
      const auto& fn = static_cast<const FunctionExpr&>(expr);
      auto bound = std::make_unique<BFunction>();
      bound->name = fn.name;
      for (const ExprPtr& arg : fn.args) {
        SIM_ASSIGN_OR_RETURN(BExprPtr barg, BindExpr(*arg, ctx));
        bound->args.push_back(std::move(barg));
      }
      return BExprPtr(std::move(bound));
    }
    case ExprKind::kIsa: {
      const auto& isa = static_cast<const IsaExpr&>(expr);
      auto bound = std::make_unique<BIsa>();
      SIM_ASSIGN_OR_RETURN(bound->entity, BindExpr(*isa.entity, ctx));
      if (bound->entity->kind != BExprKind::kNodeRef) {
        return Status::BindError(
            "left side of ISA must denote an entity, not a value");
      }
      SIM_ASSIGN_OR_RETURN(const ClassDef* cls,
                           dir_->FindClass(isa.class_name));
      bound->class_name = cls->name;
      return BExprPtr(std::move(bound));
    }
  }
  return Status::Internal("unhandled expression kind in binder");
}

Result<DirectoryManager::ResolvedAttr> Binder::ResolveElemAttr(
    const std::string& cls, const QualElement& e) const {
  if (!e.inverse) return dir_->ResolveAttribute(cls, e.name);
  // INVERSE(X): X is an EVA declared elsewhere whose range covers `cls`;
  // the traversal is X's inverse, resolved on `cls`.
  const AttributeDef* found = nullptr;
  for (const auto& cname : dir_->class_names()) {
    SIM_ASSIGN_OR_RETURN(const ClassDef* c, dir_->FindClass(cname));
    const AttributeDef* a = c->FindImmediateAttribute(e.name);
    if (a == nullptr || !a->is_eva()) continue;
    SIM_ASSIGN_OR_RETURN(bool fits, dir_->IsSubclassOrSame(cls, a->range_class));
    if (!fits) {
      SIM_ASSIGN_OR_RETURN(fits, dir_->IsSubclassOrSame(a->range_class, cls));
    }
    if (!fits) continue;
    if (found != nullptr && found != a) {
      return Status::BindError("INVERSE(" + e.name + ") is ambiguous");
    }
    found = a;
  }
  if (found == nullptr) {
    return Status::BindError("INVERSE(" + e.name +
                             ") does not name an EVA with range '" + cls + "'");
  }
  return dir_->ResolveAttribute(cls, found->inverse_name);
}

Result<int> Binder::ResolveAnchor(const QualElement& last, Ctx* ctx,
                                  bool* consumed) {
  QueryTree* qt = ctx->qt;
  // Candidate anchors: the aggregate outer anchor (if any) first, then the
  // main perspectives (unless the context is anchor-restricted, as inside
  // derived-attribute expressions).
  std::vector<int> candidates;
  if (ctx->anchor_node >= 0) candidates.push_back(ctx->anchor_node);
  if (!ctx->restrict_to_anchor) {
    for (int r : qt->roots) candidates.push_back(r);
  }

  // 1. Explicit reference variable.
  for (int r : candidates) {
    if (!qt->nodes[r].ref_var.empty() &&
        NameEq(qt->nodes[r].ref_var, last.name)) {
      *consumed = true;
      return r;
    }
  }
  // 2. Perspective class name (nearest enclosing first).
  for (int r : candidates) {
    if (NameEq(qt->nodes[r].class_name, last.name)) {
      if (!last.as_class.empty()) {
        return Status::NotSupported(
            "role conversion on a perspective reference is not supported");
      }
      *consumed = true;
      return r;
    }
  }
  // 3. Attribute reachable from exactly one candidate.
  std::vector<int> matches;
  for (int r : candidates) {
    if (qt->nodes[r].class_name.empty()) continue;
    Result<DirectoryManager::ResolvedAttr> ra =
        ResolveElemAttr(qt->nodes[r].class_name, last);
    if (ra.ok()) matches.push_back(r);
  }
  if (matches.size() == 1) {
    *consumed = false;
    return matches[0];
  }
  if (matches.size() > 1) {
    // Prefer the aggregate anchor when it matches.
    if (ctx->anchor_node >= 0 && matches[0] == ctx->anchor_node) {
      *consumed = false;
      return matches[0];
    }
    return Status::BindError("qualification of '" + last.name +
                             "' is ambiguous among multiple perspectives");
  }
  // 4. A class name opening a new perspective (queries without FROM, and
  // fresh ranges inside aggregate/quantifier scopes).
  if (!ctx->restrict_to_anchor && (ctx->allow_new_roots || ctx->scope >= 0) &&
      (dir_->HasClass(last.name) || dir_->HasView(last.name))) {
    SIM_ASSIGN_OR_RETURN(int root, MakeRoot(qt, last.name, "", ctx));
    *consumed = true;
    return root;
  }
  // 5. Deep completion: §4.2 allows qualification to be "cut short at any
  // stage where the context is sufficient ... to complete it
  // unambiguously" — e.g. bare `Salary` from STUDENT means `Salary of
  // Advisor of Student`. Search for a unique shortest EVA path from a
  // candidate anchor to a class owning the attribute and materialize the
  // path's nodes.
  SIM_ASSIGN_OR_RETURN(int completed, CompleteThroughPath(last, ctx));
  if (completed >= 0) {
    *consumed = false;
    return completed;
  }
  return Status::BindError("cannot anchor qualification element '" +
                           last.name + "' to any perspective");
}

Result<int> Binder::CompleteThroughPath(const QualElement& last, Ctx* ctx) {
  QueryTree* qt = ctx->qt;
  if (last.inverse || last.transitive) return -1;
  std::vector<int> starts;
  if (ctx->anchor_node >= 0) starts.push_back(ctx->anchor_node);
  for (int r : qt->roots) starts.push_back(r);

  // Breadth-first over EVA traversals (user-declared attributes only;
  // synthesized inverses would create surprising implicit paths). A path
  // is (start node, sequence of resolved EVAs).
  struct PathState {
    int start;
    std::string cls;
    std::vector<DirectoryManager::ResolvedAttr> evas;
  };
  std::vector<PathState> frontier;
  for (int s : starts) {
    if (!qt->nodes[s].class_name.empty()) {
      frontier.push_back({s, qt->nodes[s].class_name, {}});
    }
  }
  constexpr int kMaxDepth = 3;
  for (int depth = 1; depth <= kMaxDepth && !frontier.empty(); ++depth) {
    std::vector<PathState> next;
    std::vector<PathState> hits;
    for (const PathState& st : frontier) {
      Result<std::vector<DirectoryManager::ResolvedAttr>> attrs =
          dir_->AllAttributes(st.cls);
      if (!attrs.ok()) continue;
      for (const auto& ra : *attrs) {
        if (!ra.attr->is_eva() || ra.attr->system_generated) continue;
        PathState extended = st;
        extended.cls = ra.attr->range_class;
        extended.evas.push_back(ra);
        // Does the target attribute resolve on the new class?
        if (dir_->ResolveAttribute(extended.cls, last.name).ok()) {
          hits.push_back(extended);
        }
        next.push_back(std::move(extended));
      }
    }
    if (hits.size() > 1) {
      return Status::BindError("qualification of '" + last.name +
                               "' is ambiguous: multiple completion paths "
                               "exist");
    }
    if (hits.size() == 1) {
      // Materialize the path's nodes.
      int cur = hits[0].start;
      MarkUsage(qt, cur, ctx->in_target);
      for (const auto& ra : hits[0].evas) {
        QualElement step;
        step.name = ra.attr->name;
        SIM_ASSIGN_OR_RETURN(cur, GetOrCreateChild(cur, ra, step, ctx));
        MarkUsage(qt, cur, ctx->in_target);
      }
      return cur;
    }
    frontier = std::move(next);
  }
  return -1;
}

Result<int> Binder::GetOrCreateChild(int parent,
                                     const DirectoryManager::ResolvedAttr& ra,
                                     const QualElement& e, Ctx* ctx) {
  QueryTree* qt = ctx->qt;
  std::string key = AsciiLower(ra.attr->name);
  if (e.transitive) key += "|transitive";
  if (!e.as_class.empty()) key += "|as:" + AsciiLower(e.as_class);
  auto map_key = std::make_tuple(ctx->scope, parent, key);
  auto it = node_keys_.find(map_key);
  if (it != node_keys_.end()) return it->second;

  QtNode node;
  node.id = static_cast<int>(qt->nodes.size());
  node.parent = parent;
  node.via_owner = ra.owner;
  node.via_attr = ra.attr;
  node.scope = ctx->scope;
  if (ra.attr->is_eva()) {
    node.derivation =
        e.transitive ? NodeDerivation::kTransitiveEva : NodeDerivation::kEva;
    SIM_ASSIGN_OR_RETURN(const ClassDef* range,
                         dir_->FindClass(ra.attr->range_class));
    node.class_name = range->name;
    if (!e.as_class.empty()) {
      SIM_ASSIGN_OR_RETURN(const ClassDef* conv,
                           dir_->FindClass(e.as_class));
      SIM_ASSIGN_OR_RETURN(bool down,
                           dir_->IsSubclassOrSame(conv->name, range->name));
      SIM_ASSIGN_OR_RETURN(bool up,
                           dir_->IsSubclassOrSame(range->name, conv->name));
      if (!down && !up) {
        return Status::BindError("role conversion AS " + e.as_class +
                                 " is not in the generalization hierarchy of '" +
                                 range->name + "'");
      }
      node.class_name = conv->name;
    }
    if (e.transitive) {
      // The closure walks one EVA repeatedly; its range must stay within
      // one class family (a cyclic chain, §4.7).
      SIM_ASSIGN_OR_RETURN(bool cyc_a, dir_->IsSubclassOrSame(
                                           ra.attr->range_class,
                                           ra.owner->name));
      SIM_ASSIGN_OR_RETURN(bool cyc_b, dir_->IsSubclassOrSame(
                                           ra.owner->name,
                                           ra.attr->range_class));
      if (!cyc_a && !cyc_b) {
        return Status::BindError("TRANSITIVE(" + ra.attr->name +
                                 ") requires a cyclic EVA");
      }
    }
  } else {
    if (!ra.attr->mv) {
      return Status::BindError("attribute '" + ra.attr->name +
                               "' is single-valued and cannot be a "
                               "qualification step");
    }
    node.derivation = NodeDerivation::kMvDva;
    if (e.transitive) {
      return Status::BindError("TRANSITIVE over a DVA is not meaningful");
    }
  }
  int id = node.id;
  qt->nodes.push_back(std::move(node));
  qt->nodes[parent].children.push_back(id);
  node_keys_[map_key] = id;
  if (ctx->scope >= 0) ctx->scope_nodes->push_back(id);
  return id;
}

void Binder::MarkUsage(QueryTree* qt, int node, bool in_target) {
  if (in_target) {
    qt->nodes[node].used_in_target = true;
  } else {
    qt->nodes[node].used_in_where = true;
  }
}

Result<BExprPtr> Binder::BindQualRef(const QualRefExpr& ref, Ctx* ctx) {
  if (ref.elements.empty()) {
    return Status::Internal("empty qualification chain");
  }
  QueryTree* qt = ctx->qt;
  bool consumed = false;
  SIM_ASSIGN_OR_RETURN(int anchor,
                       ResolveAnchor(ref.elements.back(), ctx, &consumed));
  MarkUsage(qt, anchor, ctx->in_target);

  int count = static_cast<int>(ref.elements.size());
  int start = consumed ? count - 2 : count - 1;
  if (start < 0) {
    // Single element naming the perspective itself: an entity reference.
    return BExprPtr(std::make_unique<BNodeRef>(anchor));
  }
  int cur = anchor;
  for (int i = start; i >= 1; --i) {
    const QualElement& e = ref.elements[i];
    SIM_ASSIGN_OR_RETURN(DirectoryManager::ResolvedAttr ra,
                         ResolveElemAttr(qt->nodes[cur].class_name, e));
    if (!ra.attr->is_eva()) {
      return Status::BindError("'" + e.name +
                               "' is not an EVA; only EVAs can appear in the "
                               "middle of a qualification");
    }
    SIM_ASSIGN_OR_RETURN(cur, GetOrCreateChild(cur, ra, e, ctx));
    MarkUsage(qt, cur, ctx->in_target);
  }

  const QualElement& e0 = ref.elements[0];
  SIM_ASSIGN_OR_RETURN(DirectoryManager::ResolvedAttr ra,
                       ResolveElemAttr(qt->nodes[cur].class_name, e0));
  if (ra.attr->is_eva()) {
    SIM_ASSIGN_OR_RETURN(int node, GetOrCreateChild(cur, ra, e0, ctx));
    MarkUsage(qt, node, ctx->in_target);
    return BExprPtr(std::make_unique<BNodeRef>(node));
  }
  if (ra.attr->mv) {
    SIM_ASSIGN_OR_RETURN(int node, GetOrCreateChild(cur, ra, e0, ctx));
    MarkUsage(qt, node, ctx->in_target);
    return BExprPtr(std::make_unique<BNodeValue>(node));
  }
  if (ra.attr->is_derived) {
    return BindDerived(cur, ra, ctx);
  }
  auto field = std::make_unique<BField>();
  field->node = cur;
  field->owner = ra.owner;
  field->attr = ra.attr;
  return BExprPtr(std::move(field));
}

Result<BExprPtr> Binder::BindDerived(int node,
                                     const DirectoryManager::ResolvedAttr& ra,
                                     Ctx* ctx) {
  if (derived_depth_ >= 8) {
    return Status::BindError("derived attribute '" + ra.attr->name +
                             "' recurses too deeply (cyclic definition?)");
  }
  SIM_ASSIGN_OR_RETURN(ExprPtr expr,
                       DmlParser::ParseExpressionText(ra.attr->derived_text));
  Ctx inner = *ctx;
  inner.anchor_node = node;
  inner.restrict_to_anchor = true;
  inner.allow_new_roots = false;
  ++derived_depth_;
  Result<BExprPtr> bound = BindExpr(*expr, &inner);
  --derived_depth_;
  if (!bound.ok()) {
    return Status::BindError("in derived attribute '" + ra.owner->name + "." +
                             ra.attr->name + "': " +
                             bound.status().message());
  }
  return bound;
}

Result<BExprPtr> Binder::BindAggregate(const AggregateExpr& agg, Ctx* ctx) {
  auto bound = std::make_unique<BAggregate>();
  bound->func = agg.func;
  bound->distinct = agg.distinct;

  // The outer suffix anchors the aggregate. "(AVG(...)) of Department"
  // binds Department (and any EVAs in the suffix) in the *enclosing*
  // scope.
  int anchor = ctx->anchor_node;
  if (!agg.outer.empty()) {
    QualRefExpr outer_ref;
    outer_ref.elements = agg.outer;
    SIM_ASSIGN_OR_RETURN(BExprPtr outer_bound, BindQualRef(outer_ref, ctx));
    if (outer_bound->kind != BExprKind::kNodeRef) {
      return Status::BindError(
          "aggregate qualification suffix must denote entities");
    }
    anchor = static_cast<BNodeRef*>(outer_bound.get())->node;
  }

  Ctx inner;
  inner.qt = ctx->qt;
  inner.in_target = ctx->in_target;
  inner.scope = next_scope_++;
  inner.scope_nodes = &bound->loop_nodes;
  inner.anchor_node = anchor;
  inner.allow_new_roots = true;
  SIM_ASSIGN_OR_RETURN(bound->arg, BindExpr(*agg.arg, &inner));
  return BExprPtr(std::move(bound));
}

Result<BExprPtr> Binder::BindQuantified(const QuantifiedExpr& q, Ctx* ctx) {
  auto bound = std::make_unique<BQuantified>();
  bound->quantifier = q.quantifier;
  Ctx inner;
  inner.qt = ctx->qt;
  inner.in_target = ctx->in_target;
  inner.scope = next_scope_++;
  inner.scope_nodes = &bound->loop_nodes;
  inner.anchor_node = ctx->anchor_node;
  inner.allow_new_roots = true;
  SIM_ASSIGN_OR_RETURN(bound->value, BindExpr(*q.arg, &inner));
  return BExprPtr(std::move(bound));
}

void Binder::LabelTree(QueryTree* qt) {
  // Fold usage over subtrees (main-scope nodes only), then label.
  // Post-order accumulation.
  std::vector<std::pair<bool, bool>> usage(qt->nodes.size(), {false, false});
  // Process nodes in reverse creation order; parents are always created
  // before children, so children are visited first.
  for (int i = static_cast<int>(qt->nodes.size()) - 1; i >= 0; --i) {
    const QtNode& n = qt->nodes[i];
    usage[i].first = usage[i].first || n.used_in_target;
    usage[i].second = usage[i].second || n.used_in_where;
    if (n.parent >= 0 && n.scope < 0) {
      usage[n.parent].first = usage[n.parent].first || usage[i].first;
      usage[n.parent].second = usage[n.parent].second || usage[i].second;
    }
  }
  for (QtNode& n : qt->nodes) {
    if (n.scope >= 0) {
      n.label = 1;
      continue;
    }
    bool is_root = n.parent < 0;
    bool t = usage[n.id].first;
    bool w = usage[n.id].second;
    if (is_root) {
      n.label = 1;
    } else if (t && !w) {
      n.label = 3;
    } else if (!t && w) {
      n.label = 2;
    } else {
      n.label = 1;
    }
  }
}

}  // namespace sim
