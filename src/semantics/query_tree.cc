#include "semantics/query_tree.h"

namespace sim {

std::vector<int> QueryTree::MainChildren(int node) const {
  std::vector<int> out;
  for (int c : nodes[node].children) {
    if (nodes[c].scope < 0) out.push_back(c);
  }
  return out;
}

std::vector<int> QueryTree::MainLoopNodes() const {
  std::vector<int> out;
  std::vector<int> stack(roots.rbegin(), roots.rend());
  while (!stack.empty()) {
    int n = stack.back();
    stack.pop_back();
    out.push_back(n);
    std::vector<int> kids = MainChildren(n);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

std::string QueryTree::DebugString() const {
  std::string out;
  for (const QtNode& n : nodes) {
    out += "X" + std::to_string(n.id) + " [";
    switch (n.derivation) {
      case NodeDerivation::kPerspective:
        out += "perspective " + n.class_name;
        break;
      case NodeDerivation::kEva:
        out += "eva " + (n.via_attr ? n.via_attr->name : "?") + " -> " +
               n.class_name;
        break;
      case NodeDerivation::kMvDva:
        out += "mvdva " + (n.via_attr ? n.via_attr->name : "?");
        break;
      case NodeDerivation::kTransitiveEva:
        out += "transitive " + (n.via_attr ? n.via_attr->name : "?") + " -> " +
               n.class_name;
        break;
    }
    out += "] parent=" + std::to_string(n.parent) +
           " type=" + std::to_string(n.label);
    if (n.scope >= 0) out += " scope=" + std::to_string(n.scope);
    out += "\n";
  }
  return out;
}

}  // namespace sim
