#ifndef SIMDB_LUC_LUC_H_
#define SIMDB_LUC_LUC_H_

// Runtime storage unit: the physical realization of one or more LUCs that
// share a heap file (variable-format mapping) or of a single LUC (one unit
// per class). Records have the uniform shape
//
//   [ surrogate, roles, declared fields... ]
//
// where `roles` is the encoded set of class codes the entity currently
// holds (duplicated into every unit the entity has a record in, so scans
// and reads never need a second unit). A surrogate-keyed primary index
// (direct / hashed / index-sequential per the mapping policy) locates
// records.
//
// Read paths are allocation-lean: records decode through RecordView
// (storage/record_codec.h), so point reads land in a reusable buffer and
// only the requested fields become Values, and the scan cursor defers
// field/role materialization until someone actually asks. The reusable
// buffers are shared state, so point operations take a per-unit latch
// (unit_mu_); scan cursors carry their own buffers and rely on the
// semantic lock manager to exclude writers.

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/luc_translation.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/value.h"
#include "luc/relationship.h"
#include "storage/heap_file.h"
#include "storage/record_codec.h"

namespace sim {

class UnitStore {
 public:
  // `unit_code` tags every record of this unit so that clustered pages
  // shared with other units can be scanned selectively.
  static Result<std::unique_ptr<UnitStore>> Create(BufferPool* pool,
                                                   const UnitPhys* phys,
                                                   uint16_t unit_code,
                                                   KeyOrganization org);

  const UnitPhys& phys() const { return *phys_; }
  uint64_t record_count() const SIM_EXCLUDES(unit_mu_) {
    MutexLock l(unit_mu_);
    return file_.record_count();
  }
  // Pages of the backing heap file (the scrubber's record-validation set).
  const std::vector<PageId>& heap_pages() const { return file_.pages(); }

  // True while the heap-file scan order provably equals surrogate order:
  // every insert so far landed past all earlier records (in scan position)
  // with a larger surrogate, and no record has been relocated. Streaming
  // extent scans can then skip the materialize-and-sort step. Conservative:
  // once broken the flag stays false.
  bool scan_in_surrogate_order() const SIM_EXCLUDES(unit_mu_) {
    MutexLock l(unit_mu_);
    return scan_ordered_;
  }
  // Per-page insert headroom for clustered mappings (see HeapFile).
  void set_reserve_bytes(int bytes) { file_.set_reserve_bytes(bytes); }

  // Inserts the record for surrogate `s`. `fields` must have exactly
  // phys().fields.size() entries. `hint` requests physical clustering next
  // to an existing record's page (kInvalidPageId = no preference).
  Result<RecordId> Insert(SurrogateId s, const std::set<uint16_t>& roles,
                          const std::vector<Value>& fields,
                          PageId hint = kInvalidPageId) SIM_EXCLUDES(unit_mu_);

  Result<bool> Has(SurrogateId s) SIM_EXCLUDES(unit_mu_);

  // Reads roles and fields for `s` (either out-param may be null).
  Status Read(SurrogateId s, std::set<uint16_t>* roles,
              std::vector<Value>* fields) SIM_EXCLUDES(unit_mu_);

  // Reads only declared field `field_idx` (index into phys().fields) —
  // the point lookup of the projection hot path: one buffer reuse, one
  // Value, nothing else materialized.
  Status ReadField(SurrogateId s, int field_idx, Value* out)
      SIM_EXCLUDES(unit_mu_);

  // Role-membership test straight off the encoded record (no set build).
  // Missing records report false, matching the mapper's HasRole contract.
  Result<bool> HasRoleCode(SurrogateId s, uint16_t code)
      SIM_EXCLUDES(unit_mu_);

  // Rewrites the record for `s`.
  Status Update(SurrogateId s, const std::set<uint16_t>& roles,
                const std::vector<Value>& fields) SIM_EXCLUDES(unit_mu_);

  Status Delete(SurrogateId s) SIM_EXCLUDES(unit_mu_);

  // Page currently holding the record of `s` (clustering hints).
  Result<PageId> PageOf(SurrogateId s) SIM_EXCLUDES(unit_mu_);

  // Physically moves the record of `s` onto (or near) `hint` — the
  // reorganization step clustered mappings use after a record has grown.
  Status MoveNear(SurrogateId s, PageId hint) SIM_EXCLUDES(unit_mu_);

  // Full scan. Each position validates the record once; the surrogate is
  // decoded eagerly (every caller needs it), while roles() and fields()
  // materialize lazily and HasRoleCode() answers without materializing
  // anything. References returned by roles()/fields() — and the record
  // view underneath — are valid only until the next Next() call.
  class Cursor {
   public:
    bool Valid() const { return it_.Valid(); }
    SurrogateId surrogate() const { return surrogate_; }
    bool HasRoleCode(uint16_t code) const {
      return RolesContain(roles_view_, code);
    }
    const std::set<uint16_t>& roles() const;
    const std::vector<Value>& fields() const;
    Status Next();
    const Status& status() const { return status_; }

   private:
    friend class UnitStore;
    Cursor(const HeapFile* file, uint16_t unit_code);
    Status DecodeCurrent();
    // Skips records tagged for other units (clustered foreign records).
    void SkipForeign();

    uint16_t unit_code_;
    HeapFile::Iterator it_;
    SurrogateId surrogate_ = kInvalidSurrogate;
    RecordView view_;              // borrows the iterator's record bytes
    std::string_view roles_view_;  // encoded roles field of the current row
    mutable bool roles_cached_ = false;
    mutable bool fields_cached_ = false;
    mutable std::set<uint16_t> roles_;
    mutable std::vector<Value> fields_;
    Status status_;
  };

  Cursor Scan() const;

 private:
  // The auditor iterates the heap directly (so one undecodable record is
  // reported and skipped rather than ending the scan) and reconciles it
  // against the primary index; the corruption injector (tests) mutates
  // both behind the public API's back.
  friend class InvariantChecker;
  friend class CorruptionInjector;
  friend class MapperRehydrator;
  friend class Repairer;

  UnitStore(BufferPool* pool, const UnitPhys* phys, uint16_t unit_code)
      : phys_(phys), unit_code_(unit_code), file_(pool, phys->name) {}

  Result<RecordId> FindRid(SurrogateId s) SIM_REQUIRES(unit_mu_);

  // Fetches the record of `s` into read_buf_ and opens a validated view
  // over it. The view is valid until the next ReadRaw/Read*/HasRoleCode
  // call on this store.
  Status ReadRaw(SurrogateId s, RecordView* view) SIM_REQUIRES(unit_mu_);

  // Encodes [surrogate, roles, fields...] into encode_buf_.
  void EncodeInto(SurrogateId s, const std::set<uint16_t>& roles,
                  const std::vector<Value>& fields) SIM_REQUIRES(unit_mu_);

  // Scan-order bookkeeping for scan_in_surrogate_order().
  void NoteInsert(SurrogateId s, RecordId rid) SIM_REQUIRES(unit_mu_);

  const UnitPhys* phys_;
  uint16_t unit_code_;
  // unit_mu_ latches point operations: the shared read/encode scratch
  // below makes them stateful, so concurrent S-mode readers of the same
  // class would race without it. Scans (Cursor) carry their own buffers
  // and stay latch-free — writers to this unit's records are excluded by
  // the semantic lock manager, including clustered foreign inserts, whose
  // X cover extends to every EVA-related family. The offline friends
  // (auditor, repairer, rehydrator) run under an exclusive scope and
  // access raw state latch-free.
  mutable Mutex unit_mu_;
  HeapFile file_;
  std::unique_ptr<RelKeyedStore> primary_;  // surrogate -> packed RecordId

  // Reused scratch for point reads / record encoding (capacity survives
  // across calls, so steady-state reads and writes allocate nothing).
  std::string read_buf_;
  std::string encode_buf_;

  bool scan_ordered_ = true;
  bool any_records_ = false;
  // Scan position (pages() index, slot) and surrogate of the maximal
  // record inserted so far. Deletes may leave these stale-high, which only
  // makes the flag conservatively break earlier.
  size_t max_page_index_ = 0;
  uint16_t max_slot_ = 0;
  SurrogateId max_surrogate_ = 0;
};

// Encodes / decodes an embedded multi-valued DVA array (stored as one
// string field inside the owner record, §5.2 "stored as arrays in the same
// physical record").
std::string EncodeEmbeddedMv(const std::vector<Value>& values);
Result<std::vector<Value>> DecodeEmbeddedMv(const Value& field);

}  // namespace sim

#endif  // SIMDB_LUC_LUC_H_
