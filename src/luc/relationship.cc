#include "luc/relationship.h"

#include <algorithm>

#include "storage/record_codec.h"

namespace sim {

Result<std::unique_ptr<RelKeyedStore>> RelKeyedStore::Create(
    BufferPool* pool, std::string name, KeyOrganization org) {
  auto store =
      std::unique_ptr<RelKeyedStore>(new RelKeyedStore(std::move(name), org));
  switch (org) {
    case KeyOrganization::kDirect:
      break;
    case KeyOrganization::kHashed: {
      SIM_ASSIGN_OR_RETURN(HashIndex idx,
                           HashIndex::Create(pool, store->name_, 256));
      store->hashed_.emplace(std::move(idx));
      break;
    }
    case KeyOrganization::kIndexSequential: {
      SIM_ASSIGN_OR_RETURN(BPlusTree tree,
                           BPlusTree::Create(pool, store->name_));
      store->tree_.emplace(std::move(tree));
      break;
    }
  }
  return store;
}

Status RelKeyedStore::Add(uint32_t rel_id, SurrogateId key,
                          SurrogateId value) {
  MutexLock l(rel_mu_);
  switch (org_) {
    case KeyOrganization::kDirect:
      direct_.emplace(std::make_pair(rel_id, key), value);
      break;
    case KeyOrganization::kHashed:
      SIM_RETURN_IF_ERROR(hashed_->Insert(EncodeRelKey(rel_id, key), value));
      break;
    case KeyOrganization::kIndexSequential:
      SIM_RETURN_IF_ERROR(tree_->Insert(EncodeRelKey(rel_id, key), value));
      break;
  }
  ++entry_count_;
  return Status::Ok();
}

Status RelKeyedStore::Remove(uint32_t rel_id, SurrogateId key,
                             SurrogateId value) {
  MutexLock l(rel_mu_);
  switch (org_) {
    case KeyOrganization::kDirect: {
      auto range = direct_.equal_range(std::make_pair(rel_id, key));
      for (auto it = range.first; it != range.second; ++it) {
        if (it->second == value) {
          direct_.erase(it);
          if (entry_count_ > 0) --entry_count_;
          return Status::Ok();
        }
      }
      return Status::NotFound("relationship instance not found in " + name_);
    }
    case KeyOrganization::kHashed:
      SIM_RETURN_IF_ERROR(hashed_->Delete(EncodeRelKey(rel_id, key), value));
      break;
    case KeyOrganization::kIndexSequential:
      SIM_RETURN_IF_ERROR(tree_->Delete(EncodeRelKey(rel_id, key), value));
      break;
  }
  if (entry_count_ > 0) --entry_count_;
  return Status::Ok();
}

Result<std::vector<SurrogateId>> RelKeyedStore::Get(uint32_t rel_id,
                                                    SurrogateId key) {
  std::vector<SurrogateId> out;
  SIM_RETURN_IF_ERROR(GetInto(rel_id, key, &out));
  return out;
}

Status RelKeyedStore::GetInto(uint32_t rel_id, SurrogateId key,
                              std::vector<SurrogateId>* out) {
  MutexLock l(rel_mu_);
  switch (org_) {
    case KeyOrganization::kDirect: {
      out->clear();
      auto range = direct_.equal_range(std::make_pair(rel_id, key));
      for (auto it = range.first; it != range.second; ++it) {
        out->push_back(it->second);
      }
      std::sort(out->begin(), out->end());
      return Status::Ok();
    }
    case KeyOrganization::kHashed: {
      SIM_RETURN_IF_ERROR(hashed_->GetAllInto(EncodeRelKey(rel_id, key), out));
      std::sort(out->begin(), out->end());
      return Status::Ok();
    }
    case KeyOrganization::kIndexSequential:
      return tree_->GetAllInto(EncodeRelKey(rel_id, key), out);
  }
  return Status::Internal("unhandled key organization");
}

Result<std::optional<SurrogateId>> RelKeyedStore::GetFirst(uint32_t rel_id,
                                                           SurrogateId key) {
  MutexLock l(rel_mu_);
  switch (org_) {
    case KeyOrganization::kDirect: {
      std::optional<SurrogateId> best;
      auto range = direct_.equal_range(std::make_pair(rel_id, key));
      for (auto it = range.first; it != range.second; ++it) {
        if (!best || it->second < *best) best = it->second;
      }
      return best;
    }
    case KeyOrganization::kHashed: {
      SIM_ASSIGN_OR_RETURN(std::optional<uint64_t> v,
                           hashed_->GetFirst(EncodeRelKey(rel_id, key)));
      if (!v) return std::optional<SurrogateId>();
      return std::optional<SurrogateId>(*v);
    }
    case KeyOrganization::kIndexSequential: {
      SIM_ASSIGN_OR_RETURN(std::optional<uint64_t> v,
                           tree_->GetFirst(EncodeRelKey(rel_id, key)));
      if (!v) return std::optional<SurrogateId>();
      return std::optional<SurrogateId>(*v);
    }
  }
  return Status::Internal("unhandled key organization");
}

Result<bool> RelKeyedStore::Contains(uint32_t rel_id, SurrogateId key,
                                     SurrogateId value) {
  SIM_ASSIGN_OR_RETURN(std::vector<SurrogateId> vals, Get(rel_id, key));
  return std::find(vals.begin(), vals.end(), value) != vals.end();
}

Result<uint64_t> RelKeyedStore::CountFor(uint32_t rel_id, SurrogateId key) {
  SIM_ASSIGN_OR_RETURN(std::vector<SurrogateId> vals, Get(rel_id, key));
  return static_cast<uint64_t>(vals.size());
}

}  // namespace sim
