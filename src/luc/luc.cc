#include "luc/luc.h"

#include "storage/record_codec.h"

namespace sim {

Result<std::unique_ptr<UnitStore>> UnitStore::Create(BufferPool* pool,
                                                     const UnitPhys* phys,
                                                     uint16_t unit_code,
                                                     KeyOrganization org) {
  auto unit =
      std::unique_ptr<UnitStore>(new UnitStore(pool, phys, unit_code));
  SIM_ASSIGN_OR_RETURN(
      unit->primary_,
      RelKeyedStore::Create(pool, phys->name + "$primary", org));
  return unit;
}

void UnitStore::EncodeInto(SurrogateId s, const std::set<uint16_t>& roles,
                           const std::vector<Value>& fields) {
  encode_buf_.clear();
  RecordWriter w(&encode_buf_, unit_code_);
  w.AddSurrogate(s);
  w.AddString(EncodeRoles(roles));
  for (const Value& v : fields) w.Add(v);
  w.Finish();
}

Result<RecordId> UnitStore::Insert(SurrogateId s,
                                   const std::set<uint16_t>& roles,
                                   const std::vector<Value>& fields,
                                   PageId hint) {
  if (fields.size() != phys_->fields.size()) {
    return Status::Internal("field count mismatch inserting into unit " +
                            phys_->name);
  }
  MutexLock l(unit_mu_);
  SIM_ASSIGN_OR_RETURN(std::optional<SurrogateId> existing,
                       primary_->GetFirst(0, s));
  if (existing.has_value()) {
    return Status::AlreadyExists("surrogate already present in unit " +
                                 phys_->name);
  }
  EncodeInto(s, roles, fields);
  RecordId rid;
  if (hint != kInvalidPageId) {
    SIM_ASSIGN_OR_RETURN(rid, file_.InsertNear(hint, encode_buf_));
  } else {
    SIM_ASSIGN_OR_RETURN(rid, file_.Insert(encode_buf_));
  }
  SIM_RETURN_IF_ERROR(primary_->Add(0, s, PackRecordId(rid)));
  NoteInsert(s, rid);
  return rid;
}

void UnitStore::NoteInsert(SurrogateId s, RecordId rid) {
  if (!scan_ordered_) return;
  // Scan position: index of the page in the heap file's page list, then
  // slot. First-fit inserts and adopted clustered pages can place a record
  // before existing ones — that breaks the surrogate-order guarantee.
  size_t page_index = 0;
  bool found = false;
  const std::vector<PageId>& pages = file_.pages();
  for (size_t i = pages.size(); i-- > 0;) {
    if (pages[i] == rid.page) {
      page_index = i;
      found = true;
      break;
    }
  }
  if (!found) {
    scan_ordered_ = false;
    return;
  }
  bool later_pos = !any_records_ || page_index > max_page_index_ ||
                   (page_index == max_page_index_ && rid.slot > max_slot_);
  bool later_surrogate = !any_records_ || s > max_surrogate_;
  if (!later_pos || !later_surrogate) {
    scan_ordered_ = false;
    return;
  }
  any_records_ = true;
  max_page_index_ = page_index;
  max_slot_ = rid.slot;
  max_surrogate_ = s;
}

Result<bool> UnitStore::Has(SurrogateId s) {
  MutexLock l(unit_mu_);
  SIM_ASSIGN_OR_RETURN(std::optional<SurrogateId> packed,
                       primary_->GetFirst(0, s));
  return packed.has_value();
}

Result<RecordId> UnitStore::FindRid(SurrogateId s) {
  SIM_ASSIGN_OR_RETURN(std::optional<SurrogateId> packed,
                       primary_->GetFirst(0, s));
  if (!packed) {
    return Status::NotFound("no record for surrogate " + std::to_string(s) +
                            " in unit " + phys_->name);
  }
  return UnpackRecordId(*packed);
}

Status UnitStore::ReadRaw(SurrogateId s, RecordView* view) {
  SIM_ASSIGN_OR_RETURN(RecordId rid, FindRid(s));
  SIM_RETURN_IF_ERROR(file_.Get(rid, &read_buf_));
  SIM_ASSIGN_OR_RETURN(*view, RecordView::Open(read_buf_));
  if (view->field_count() != phys_->fields.size() + 2) {
    return Status::Corruption("corrupt record in unit " + phys_->name);
  }
  return Status::Ok();
}

Status UnitStore::Read(SurrogateId s, std::set<uint16_t>* roles,
                       std::vector<Value>* fields) {
  MutexLock l(unit_mu_);
  RecordView view;
  SIM_RETURN_IF_ERROR(ReadRaw(s, &view));
  if (roles != nullptr) *roles = DecodeRoles(view.StringField(1));
  if (fields != nullptr) view.DecodeFieldsFrom(2, fields);
  return Status::Ok();
}

Status UnitStore::ReadField(SurrogateId s, int field_idx, Value* out) {
  MutexLock l(unit_mu_);
  RecordView view;
  SIM_RETURN_IF_ERROR(ReadRaw(s, &view));
  *out = view.DecodeField(static_cast<uint16_t>(field_idx + 2));
  return Status::Ok();
}

Result<bool> UnitStore::HasRoleCode(SurrogateId s, uint16_t code) {
  MutexLock l(unit_mu_);
  RecordView view;
  Status st = ReadRaw(s, &view);
  if (st.code() == StatusCode::kNotFound) return false;
  SIM_RETURN_IF_ERROR(st);
  return RolesContain(view.StringField(1), code);
}

Status UnitStore::Update(SurrogateId s, const std::set<uint16_t>& roles,
                         const std::vector<Value>& fields) {
  if (fields.size() != phys_->fields.size()) {
    return Status::Internal("field count mismatch updating unit " +
                            phys_->name);
  }
  MutexLock l(unit_mu_);
  SIM_ASSIGN_OR_RETURN(RecordId rid, FindRid(s));
  EncodeInto(s, roles, fields);
  SIM_ASSIGN_OR_RETURN(RecordId new_rid, file_.Update(rid, encode_buf_));
  if (!(new_rid == rid)) {
    SIM_RETURN_IF_ERROR(primary_->Remove(0, s, PackRecordId(rid)));
    SIM_RETURN_IF_ERROR(primary_->Add(0, s, PackRecordId(new_rid)));
    scan_ordered_ = false;  // the record moved out of its scan position
  }
  return Status::Ok();
}

Status UnitStore::Delete(SurrogateId s) {
  MutexLock l(unit_mu_);
  SIM_ASSIGN_OR_RETURN(RecordId rid, FindRid(s));
  SIM_RETURN_IF_ERROR(file_.Delete(rid));
  return primary_->Remove(0, s, PackRecordId(rid));
}

Result<PageId> UnitStore::PageOf(SurrogateId s) {
  MutexLock l(unit_mu_);
  SIM_ASSIGN_OR_RETURN(RecordId rid, FindRid(s));
  return rid.page;
}

Status UnitStore::MoveNear(SurrogateId s, PageId hint) {
  MutexLock l(unit_mu_);
  SIM_ASSIGN_OR_RETURN(RecordId rid, FindRid(s));
  if (rid.page == hint) return Status::Ok();
  scan_ordered_ = false;  // relocation breaks scan-position order
  std::string data;
  SIM_RETURN_IF_ERROR(file_.Get(rid, &data));
  SIM_RETURN_IF_ERROR(file_.Delete(rid));
  SIM_ASSIGN_OR_RETURN(RecordId new_rid, file_.InsertNear(hint, data));
  SIM_RETURN_IF_ERROR(primary_->Remove(0, s, PackRecordId(rid)));
  return primary_->Add(0, s, PackRecordId(new_rid));
}

UnitStore::Cursor::Cursor(const HeapFile* file, uint16_t unit_code)
    : unit_code_(unit_code), it_(file->Begin()) {
  SkipForeign();
  if (it_.Valid()) status_ = DecodeCurrent();
}

void UnitStore::Cursor::SkipForeign() {
  while (it_.Valid()) {
    Result<uint16_t> tag = PeekRecordType(it_.record());
    if (!tag.ok()) {
      status_ = tag.status();
      return;
    }
    if (*tag == unit_code_) return;
    it_.Next();
  }
}

Status UnitStore::Cursor::Next() {
  it_.Next();
  SkipForeign();
  if (!it_.status().ok()) return it_.status();
  if (!status_.ok()) return status_;
  if (it_.Valid()) SIM_RETURN_IF_ERROR(DecodeCurrent());
  return Status::Ok();
}

Status UnitStore::Cursor::DecodeCurrent() {
  roles_cached_ = false;
  fields_cached_ = false;
  SIM_ASSIGN_OR_RETURN(view_, RecordView::Open(it_.record()));
  if (view_.field_count() < 2) {
    return Status::Corruption("unit record missing surrogate/roles");
  }
  Value s = view_.DecodeField(0);
  if (s.type() != ValueType::kSurrogate) {
    return Status::Corruption("unit record surrogate field has wrong type");
  }
  surrogate_ = s.surrogate_value();
  roles_view_ = view_.StringField(1);
  return Status::Ok();
}

const std::set<uint16_t>& UnitStore::Cursor::roles() const {
  if (!roles_cached_) {
    roles_ = DecodeRoles(roles_view_);
    roles_cached_ = true;
  }
  return roles_;
}

const std::vector<Value>& UnitStore::Cursor::fields() const {
  if (!fields_cached_) {
    view_.DecodeFieldsFrom(2, &fields_);
    fields_cached_ = true;
  }
  return fields_;
}

UnitStore::Cursor UnitStore::Scan() const { return Cursor(&file_, unit_code_); }

std::string EncodeEmbeddedMv(const std::vector<Value>& values) {
  return EncodeRecord(0, values);
}

Result<std::vector<Value>> DecodeEmbeddedMv(const Value& field) {
  if (field.is_null()) return std::vector<Value>();
  uint16_t record_type;
  std::vector<Value> values;
  SIM_RETURN_IF_ERROR(
      DecodeRecord(field.string_view_value(), &record_type, &values));
  return values;
}

}  // namespace sim
