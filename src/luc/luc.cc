#include "luc/luc.h"

#include "storage/record_codec.h"

namespace sim {

Result<std::unique_ptr<UnitStore>> UnitStore::Create(BufferPool* pool,
                                                     const UnitPhys* phys,
                                                     uint16_t unit_code,
                                                     KeyOrganization org) {
  auto unit =
      std::unique_ptr<UnitStore>(new UnitStore(pool, phys, unit_code));
  SIM_ASSIGN_OR_RETURN(
      unit->primary_,
      RelKeyedStore::Create(pool, phys->name + "$primary", org));
  return unit;
}

namespace {

std::vector<Value> AssembleRecord(SurrogateId s,
                                  const std::set<uint16_t>& roles,
                                  const std::vector<Value>& fields) {
  std::vector<Value> all;
  all.reserve(fields.size() + 2);
  all.push_back(Value::Surrogate(s));
  all.push_back(Value::Str(EncodeRoles(roles)));
  all.insert(all.end(), fields.begin(), fields.end());
  return all;
}

}  // namespace

Result<RecordId> UnitStore::Insert(SurrogateId s,
                                   const std::set<uint16_t>& roles,
                                   const std::vector<Value>& fields,
                                   PageId hint) {
  if (fields.size() != phys_->fields.size()) {
    return Status::Internal("field count mismatch inserting into unit " +
                            phys_->name);
  }
  SIM_ASSIGN_OR_RETURN(bool exists, Has(s));
  if (exists) {
    return Status::AlreadyExists("surrogate already present in unit " +
                                 phys_->name);
  }
  std::string encoded =
      EncodeRecord(unit_code_, AssembleRecord(s, roles, fields));
  RecordId rid;
  if (hint != kInvalidPageId) {
    SIM_ASSIGN_OR_RETURN(rid, file_.InsertNear(hint, encoded));
  } else {
    SIM_ASSIGN_OR_RETURN(rid, file_.Insert(encoded));
  }
  SIM_RETURN_IF_ERROR(primary_->Add(0, s, PackRecordId(rid)));
  NoteInsert(s, rid);
  return rid;
}

void UnitStore::NoteInsert(SurrogateId s, RecordId rid) {
  if (!scan_ordered_) return;
  // Scan position: index of the page in the heap file's page list, then
  // slot. First-fit inserts and adopted clustered pages can place a record
  // before existing ones — that breaks the surrogate-order guarantee.
  size_t page_index = 0;
  bool found = false;
  const std::vector<PageId>& pages = file_.pages();
  for (size_t i = pages.size(); i-- > 0;) {
    if (pages[i] == rid.page) {
      page_index = i;
      found = true;
      break;
    }
  }
  if (!found) {
    scan_ordered_ = false;
    return;
  }
  bool later_pos = !any_records_ || page_index > max_page_index_ ||
                   (page_index == max_page_index_ && rid.slot > max_slot_);
  bool later_surrogate = !any_records_ || s > max_surrogate_;
  if (!later_pos || !later_surrogate) {
    scan_ordered_ = false;
    return;
  }
  any_records_ = true;
  max_page_index_ = page_index;
  max_slot_ = rid.slot;
  max_surrogate_ = s;
}

Result<bool> UnitStore::Has(SurrogateId s) {
  SIM_ASSIGN_OR_RETURN(std::vector<SurrogateId> rids, primary_->Get(0, s));
  return !rids.empty();
}

Result<RecordId> UnitStore::FindRid(SurrogateId s) {
  SIM_ASSIGN_OR_RETURN(std::vector<SurrogateId> rids, primary_->Get(0, s));
  if (rids.empty()) {
    return Status::NotFound("no record for surrogate " + std::to_string(s) +
                            " in unit " + phys_->name);
  }
  return UnpackRecordId(rids.front());
}

Status UnitStore::Read(SurrogateId s, std::set<uint16_t>* roles,
                       std::vector<Value>* fields) {
  SIM_ASSIGN_OR_RETURN(RecordId rid, FindRid(s));
  std::string data;
  SIM_RETURN_IF_ERROR(file_.Get(rid, &data));
  uint16_t record_type;
  std::vector<Value> all;
  SIM_RETURN_IF_ERROR(DecodeRecord(data, &record_type, &all));
  if (all.size() != phys_->fields.size() + 2) {
    return Status::Internal("corrupt record in unit " + phys_->name);
  }
  if (roles != nullptr) *roles = DecodeRoles(all[1].string_value());
  if (fields != nullptr) {
    fields->assign(std::make_move_iterator(all.begin() + 2),
                   std::make_move_iterator(all.end()));
  }
  return Status::Ok();
}

Status UnitStore::Update(SurrogateId s, const std::set<uint16_t>& roles,
                         const std::vector<Value>& fields) {
  if (fields.size() != phys_->fields.size()) {
    return Status::Internal("field count mismatch updating unit " +
                            phys_->name);
  }
  SIM_ASSIGN_OR_RETURN(RecordId rid, FindRid(s));
  std::string encoded =
      EncodeRecord(unit_code_, AssembleRecord(s, roles, fields));
  SIM_ASSIGN_OR_RETURN(RecordId new_rid, file_.Update(rid, encoded));
  if (!(new_rid == rid)) {
    SIM_RETURN_IF_ERROR(primary_->Remove(0, s, PackRecordId(rid)));
    SIM_RETURN_IF_ERROR(primary_->Add(0, s, PackRecordId(new_rid)));
    scan_ordered_ = false;  // the record moved out of its scan position
  }
  return Status::Ok();
}

Status UnitStore::Delete(SurrogateId s) {
  SIM_ASSIGN_OR_RETURN(RecordId rid, FindRid(s));
  SIM_RETURN_IF_ERROR(file_.Delete(rid));
  return primary_->Remove(0, s, PackRecordId(rid));
}

Result<PageId> UnitStore::PageOf(SurrogateId s) {
  SIM_ASSIGN_OR_RETURN(RecordId rid, FindRid(s));
  return rid.page;
}

Status UnitStore::MoveNear(SurrogateId s, PageId hint) {
  SIM_ASSIGN_OR_RETURN(RecordId rid, FindRid(s));
  if (rid.page == hint) return Status::Ok();
  scan_ordered_ = false;  // relocation breaks scan-position order
  std::string data;
  SIM_RETURN_IF_ERROR(file_.Get(rid, &data));
  SIM_RETURN_IF_ERROR(file_.Delete(rid));
  SIM_ASSIGN_OR_RETURN(RecordId new_rid, file_.InsertNear(hint, data));
  SIM_RETURN_IF_ERROR(primary_->Remove(0, s, PackRecordId(rid)));
  return primary_->Add(0, s, PackRecordId(new_rid));
}

UnitStore::Cursor::Cursor(const HeapFile* file, uint16_t unit_code)
    : unit_code_(unit_code), it_(file->Begin()) {
  SkipForeign();
  if (it_.Valid()) status_ = DecodeCurrent();
}

void UnitStore::Cursor::SkipForeign() {
  while (it_.Valid()) {
    Result<uint16_t> tag = PeekRecordType(it_.record());
    if (!tag.ok()) {
      status_ = tag.status();
      return;
    }
    if (*tag == unit_code_) return;
    it_.Next();
  }
}

Status UnitStore::Cursor::Next() {
  it_.Next();
  SkipForeign();
  if (!it_.status().ok()) return it_.status();
  if (!status_.ok()) return status_;
  if (it_.Valid()) SIM_RETURN_IF_ERROR(DecodeCurrent());
  return Status::Ok();
}

Status UnitStore::Cursor::DecodeCurrent() {
  uint16_t record_type;
  std::vector<Value> all;
  SIM_RETURN_IF_ERROR(DecodeRecord(it_.record(), &record_type, &all));
  if (all.size() < 2) return Status::Internal("corrupt unit record");
  surrogate_ = all[0].surrogate_value();
  roles_ = DecodeRoles(all[1].string_value());
  fields_.assign(std::make_move_iterator(all.begin() + 2),
                 std::make_move_iterator(all.end()));
  return Status::Ok();
}

UnitStore::Cursor UnitStore::Scan() const { return Cursor(&file_, unit_code_); }

std::string EncodeEmbeddedMv(const std::vector<Value>& values) {
  return EncodeRecord(0, values);
}

Result<std::vector<Value>> DecodeEmbeddedMv(const Value& field) {
  if (field.is_null()) return std::vector<Value>();
  uint16_t record_type;
  std::vector<Value> values;
  SIM_RETURN_IF_ERROR(
      DecodeRecord(field.string_value(), &record_type, &values));
  return values;
}

}  // namespace sim
