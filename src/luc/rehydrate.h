#ifndef SIMDB_LUC_REHYDRATE_H_
#define SIMDB_LUC_REHYDRATE_H_

// Mapper snapshot + rehydration for crash recovery.
//
// The LUC mapper's bootstrap state — next surrogate, heap-file page lists,
// index roots, the in-memory kDirect stores — lives only in RAM; the pages
// it points into are durable but unreachable without it. MapperRehydrator
// closes that gap: Snapshot() serializes the bootstrap state to a compact
// binary blob (logged as a kMetaSnapshot WAL frame before every commit),
// and Rehydrate() reconstructs a fully operational mapper from the blob
// over the recovered pages, so a crashed database reopens queryable with
// zero external input (DESIGN.md §7).
//
// The blob deliberately stores structure *roots*, not contents: a B+-tree
// is re-attached by (root, height, entry count), a hash index by its bucket
// directory, a heap file by its page list. The only contents serialized
// are the kDirect stores (they have no pages) — and even there the big
// one, each unit's surrogate -> RecordId primary index, is rebuilt by
// scanning the unit's own heap pages instead of being dumped, keeping the
// per-commit snapshot small.
//
// Rehydrate() validates the blob's shape against the PhysicalSchema built
// from the replayed DDL (unit/EVA/index counts, key organizations); any
// mismatch — e.g. reopening under a different MappingPolicy than the one
// the database was written with — fails with kInternal rather than
// producing a subtly wrong mapper.

#include <memory>
#include <string>
#include <string_view>

#include "catalog/directory.h"
#include "catalog/luc_translation.h"
#include "common/status.h"
#include "luc/mapper.h"
#include "storage/buffer_pool.h"

namespace sim {

class MapperRehydrator {
 public:
  // Serializes the bootstrap state of `mapper` (deterministic bytes: the
  // same mapper state always snapshots identically).
  static Result<std::string> Snapshot(const LucMapper& mapper);

  // Rebuilds a mapper over already-recovered pages. `dir` and `phys` must
  // be the catalog/schema produced by replaying the same DDL the snapshot
  // was taken under.
  static Result<std::unique_ptr<LucMapper>> Rehydrate(
      const DirectoryManager* dir, const PhysicalSchema* phys,
      BufferPool* pool, std::string_view blob);
};

}  // namespace sim

#endif  // SIMDB_LUC_REHYDRATE_H_
