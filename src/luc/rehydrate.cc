#include "luc/rehydrate.h"

#include <algorithm>
#include <cstring>
#include <tuple>
#include <vector>

#include "luc/luc.h"
#include "luc/relationship.h"
#include "storage/record_codec.h"

namespace sim {

namespace {

constexpr uint32_t kSnapshotMagic = 0x53494D53;  // "SIMS"
constexpr uint32_t kSnapshotVersion = 1;

// --- little-endian primitive codec -----------------------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), 8);
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Result<uint8_t> U8() {
    SIM_RETURN_IF_ERROR(Need(1));
    return static_cast<uint8_t>(data_[off_++]);
  }
  Result<uint32_t> U32() {
    SIM_RETURN_IF_ERROR(Need(4));
    uint32_t v;
    std::memcpy(&v, data_.data() + off_, 4);
    off_ += 4;
    return v;
  }
  Result<uint64_t> U64() {
    SIM_RETURN_IF_ERROR(Need(8));
    uint64_t v;
    std::memcpy(&v, data_.data() + off_, 8);
    off_ += 8;
    return v;
  }
  bool exhausted() const { return off_ == data_.size(); }

 private:
  Status Need(size_t n) {
    if (off_ + n > data_.size()) {
      return Status::Internal("mapper snapshot truncated at byte " +
                              std::to_string(off_));
    }
    return Status::Ok();
  }

  std::string_view data_;
  size_t off_ = 0;
};

Status ShapeError(const std::string& what) {
  return Status::Internal("mapper snapshot does not match the schema (" +
                          what + "); was the database written under a "
                          "different mapping policy?");
}

// --- heap files ------------------------------------------------------------

void EncodeHeap(const HeapFile& file, std::string* out) {
  PutU64(out, file.pages().size());
  for (PageId id : file.pages()) PutU32(out, id);
  PutU64(out, file.record_count());
}

Status DecodeHeap(Reader* r, HeapFile* file) {
  SIM_ASSIGN_OR_RETURN(uint64_t n_pages, r->U64());
  std::vector<PageId> pages;
  pages.reserve(n_pages);
  for (uint64_t i = 0; i < n_pages; ++i) {
    SIM_ASSIGN_OR_RETURN(PageId id, r->U32());
    pages.push_back(id);
  }
  SIM_ASSIGN_OR_RETURN(uint64_t record_count, r->U64());
  return file->Attach(std::move(pages), record_count);
}

}  // namespace

// --- keyed relationship stores ---------------------------------------------

// Serializes a RelKeyedStore: its organization tag, its entry count, then
// the backend state — a sorted triple dump for the page-less kDirect
// organization, structure roots for the page-based ones. `dump_direct`
// false elides the kDirect contents for stores the decoder rebuilds by
// scanning (unit primaries). A named struct (friended by RelKeyedStore)
// rather than free functions: anonymous-namespace helpers cannot be
// granted friendship.
struct RelStoreCodec {
  static void Encode(const RelKeyedStore& store, bool dump_direct,
                     std::string* out);
  static Result<std::unique_ptr<RelKeyedStore>> Decode(
      Reader* r, BufferPool* pool, const std::string& name,
      KeyOrganization expected_org, bool dump_direct);
};

void RelStoreCodec::Encode(const RelKeyedStore& store, bool dump_direct,
                           std::string* out) {
  PutU8(out, static_cast<uint8_t>(store.organization()));
  PutU64(out, store.entry_count());
  switch (store.organization()) {
    case KeyOrganization::kDirect: {
      if (!dump_direct) break;
      std::vector<std::tuple<uint64_t, uint64_t, uint64_t>> entries;
      entries.reserve(store.direct_.size());
      for (const auto& [key, value] : store.direct_) {
        entries.emplace_back(key.first, key.second, value);
      }
      std::sort(entries.begin(), entries.end());
      PutU64(out, entries.size());
      for (const auto& [rel, key, value] : entries) {
        PutU64(out, rel);
        PutU64(out, key);
        PutU64(out, value);
      }
      break;
    }
    case KeyOrganization::kHashed: {
      const HashIndex& idx = *store.hashed_;
      PutU64(out, idx.entry_count());
      PutU32(out, static_cast<uint32_t>(idx.buckets().size()));
      for (PageId id : idx.buckets()) PutU32(out, id);
      break;
    }
    case KeyOrganization::kIndexSequential: {
      const BPlusTree& tree = *store.tree_;
      PutU64(out, tree.entry_count());
      PutU32(out, tree.root());
      PutU32(out, static_cast<uint32_t>(tree.height()));
      break;
    }
  }
}

Result<std::unique_ptr<RelKeyedStore>> RelStoreCodec::Decode(
    Reader* r, BufferPool* pool, const std::string& name,
    KeyOrganization expected_org, bool dump_direct) {
  SIM_ASSIGN_OR_RETURN(uint8_t org_tag, r->U8());
  if (org_tag != static_cast<uint8_t>(expected_org)) {
    return ShapeError("store " + name + " has organization tag " +
                      std::to_string(org_tag));
  }
  SIM_ASSIGN_OR_RETURN(uint64_t entry_count, r->U64());
  auto store = std::unique_ptr<RelKeyedStore>(
      new RelKeyedStore(name, expected_org));
  switch (expected_org) {
    case KeyOrganization::kDirect: {
      if (!dump_direct) break;  // the caller rebuilds the contents
      SIM_ASSIGN_OR_RETURN(uint64_t n, r->U64());
      for (uint64_t i = 0; i < n; ++i) {
        SIM_ASSIGN_OR_RETURN(uint64_t rel, r->U64());
        SIM_ASSIGN_OR_RETURN(uint64_t key, r->U64());
        SIM_ASSIGN_OR_RETURN(uint64_t value, r->U64());
        store->direct_.emplace(std::make_pair(rel, key), value);
      }
      break;
    }
    case KeyOrganization::kHashed: {
      SIM_ASSIGN_OR_RETURN(uint64_t backend_count, r->U64());
      SIM_ASSIGN_OR_RETURN(uint32_t n_buckets, r->U32());
      if (n_buckets == 0) {
        return ShapeError("hash store " + name + " with zero buckets");
      }
      std::vector<PageId> buckets;
      buckets.reserve(n_buckets);
      for (uint32_t i = 0; i < n_buckets; ++i) {
        SIM_ASSIGN_OR_RETURN(PageId id, r->U32());
        buckets.push_back(id);
      }
      store->hashed_.emplace(
          HashIndex::Attach(pool, name, std::move(buckets), backend_count));
      break;
    }
    case KeyOrganization::kIndexSequential: {
      SIM_ASSIGN_OR_RETURN(uint64_t backend_count, r->U64());
      SIM_ASSIGN_OR_RETURN(PageId root, r->U32());
      SIM_ASSIGN_OR_RETURN(uint32_t height, r->U32());
      store->tree_.emplace(BPlusTree::Attach(
          pool, name, root, static_cast<int>(height), backend_count));
      break;
    }
  }
  // A non-dumped kDirect store is rebuilt through Add(), which counts its
  // own entries; pre-seeding the count would double it.
  if (expected_org != KeyOrganization::kDirect || dump_direct) {
    store->entry_count_ = entry_count;
  }
  return store;
}

Result<std::string> MapperRehydrator::Snapshot(const LucMapper& m) {
  std::string out;
  PutU32(&out, kSnapshotMagic);
  PutU32(&out, kSnapshotVersion);
  PutU64(&out, m.next_surrogate_);

  PutU64(&out, m.units_.size());
  for (const auto& unit : m.units_) {
    EncodeHeap(unit->file_, &out);
    RelStoreCodec::Encode(*unit->primary_, /*dump_direct=*/false, &out);
    PutU8(&out, unit->scan_ordered_ ? 1 : 0);
    PutU8(&out, unit->any_records_ ? 1 : 0);
    PutU64(&out, unit->max_page_index_);
    PutU32(&out, unit->max_slot_);
    PutU64(&out, unit->max_surrogate_);
  }

  RelStoreCodec::Encode(*m.common_fwd_, /*dump_direct=*/true, &out);
  RelStoreCodec::Encode(*m.common_inv_, /*dump_direct=*/true, &out);
  RelStoreCodec::Encode(*m.fk_inv_, /*dump_direct=*/true, &out);

  PutU64(&out, m.private_structs_.size());
  for (const auto& [eva_idx, pair] : m.private_structs_) {
    PutU32(&out, static_cast<uint32_t>(eva_idx));
    RelStoreCodec::Encode(*pair.first, /*dump_direct=*/true, &out);
    RelStoreCodec::Encode(*pair.second, /*dump_direct=*/true, &out);
  }

  EncodeHeap(*m.mv_file_, &out);
  RelStoreCodec::Encode(*m.mv_index_, /*dump_direct=*/true, &out);

  PutU64(&out, m.sec_indexes_.size());
  for (const auto& tree : m.sec_indexes_) {
    PutU32(&out, tree->root());
    PutU32(&out, static_cast<uint32_t>(tree->height()));
    PutU64(&out, tree->entry_count());
  }

  PutU64(&out, m.extent_counts_.size());
  for (uint64_t c : m.extent_counts_) PutU64(&out, c);
  PutU64(&out, m.eva_pair_counts_.size());
  for (uint64_t c : m.eva_pair_counts_) PutU64(&out, c);
  return out;
}

Result<std::unique_ptr<LucMapper>> MapperRehydrator::Rehydrate(
    const DirectoryManager* dir, const PhysicalSchema* phys, BufferPool* pool,
    std::string_view blob) {
  Reader r(blob);
  SIM_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kSnapshotMagic) {
    return Status::Internal("mapper snapshot has bad magic");
  }
  SIM_ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (version != kSnapshotVersion) {
    return Status::Internal("mapper snapshot version " +
                            std::to_string(version) + " not supported");
  }

  const MappingPolicy& policy = phys->policy();
  auto m = std::unique_ptr<LucMapper>(new LucMapper(dir, phys, pool));
  SIM_ASSIGN_OR_RETURN(m->next_surrogate_, r.U64());

  SIM_ASSIGN_OR_RETURN(uint64_t n_units, r.U64());
  if (n_units != phys->units().size()) {
    return ShapeError("snapshot has " + std::to_string(n_units) +
                      " units, schema has " +
                      std::to_string(phys->units().size()));
  }
  for (size_t i = 0; i < phys->units().size(); ++i) {
    const UnitPhys* up = &phys->units()[i];
    auto unit = std::unique_ptr<UnitStore>(
        new UnitStore(pool, up, static_cast<uint16_t>(i)));
    unit->set_reserve_bytes(policy.cluster_reserve_bytes);
    SIM_RETURN_IF_ERROR(DecodeHeap(&r, &unit->file_));
    SIM_ASSIGN_OR_RETURN(unit->primary_,
                         RelStoreCodec::Decode(&r, pool, up->name + "$primary",
                                        policy.surrogate_org,
                                        /*dump_direct=*/false));
    SIM_ASSIGN_OR_RETURN(uint8_t ordered, r.U8());
    SIM_ASSIGN_OR_RETURN(uint8_t any, r.U8());
    unit->scan_ordered_ = ordered != 0;
    unit->any_records_ = any != 0;
    SIM_ASSIGN_OR_RETURN(unit->max_page_index_, r.U64());
    SIM_ASSIGN_OR_RETURN(uint32_t max_slot, r.U32());
    unit->max_slot_ = static_cast<uint16_t>(max_slot);
    SIM_ASSIGN_OR_RETURN(unit->max_surrogate_, r.U64());
    if (policy.surrogate_org == KeyOrganization::kDirect) {
      // The in-memory primary index is not dumped: rebuild it by scanning
      // the unit's own pages (skipping clustered foreign records).
      uint64_t rebuilt = 0;
      HeapFile::Iterator it = unit->file_.Begin();
      for (; it.Valid(); it.Next()) {
        SIM_ASSIGN_OR_RETURN(uint16_t tag, PeekRecordType(it.record()));
        if (tag != static_cast<uint16_t>(i)) continue;
        uint16_t record_type;
        std::vector<Value> values;
        SIM_RETURN_IF_ERROR(DecodeRecord(it.record(), &record_type, &values));
        if (values.empty()) {
          return Status::Internal("empty record rebuilding primary of unit " +
                                  up->name);
        }
        SIM_RETURN_IF_ERROR(unit->primary_->Add(
            0, values[0].surrogate_value(), PackRecordId(it.rid())));
        ++rebuilt;
      }
      SIM_RETURN_IF_ERROR(it.status());
      // Quarantined pages are skipped by the iterator, so their records
      // cannot be rebuilt into the primary — a count shortfall there is
      // contained data loss (degraded service, DESIGN.md §13), not a
      // mapping-policy mismatch. REPAIR DATABASE recounts.
      if (rebuilt != unit->file_.record_count() && it.pages_skipped() == 0) {
        return ShapeError("unit " + up->name + " primary rebuild found " +
                          std::to_string(rebuilt) + " records, heap claims " +
                          std::to_string(unit->file_.record_count()));
      }
    }
    m->units_.push_back(std::move(unit));
  }

  SIM_ASSIGN_OR_RETURN(
      m->common_fwd_,
      RelStoreCodec::Decode(&r, pool, "common_eva$fwd", policy.eva_structure_org,
                     /*dump_direct=*/true));
  SIM_ASSIGN_OR_RETURN(
      m->common_inv_,
      RelStoreCodec::Decode(&r, pool, "common_eva$inv", policy.eva_structure_org,
                     /*dump_direct=*/true));
  SIM_ASSIGN_OR_RETURN(
      m->fk_inv_, RelStoreCodec::Decode(&r, pool, "fk$inv", policy.eva_structure_org,
                                 /*dump_direct=*/true));

  SIM_ASSIGN_OR_RETURN(uint64_t n_private, r.U64());
  for (uint64_t p = 0; p < n_private; ++p) {
    SIM_ASSIGN_OR_RETURN(uint32_t eva_idx, r.U32());
    if (eva_idx >= phys->evas().size() ||
        phys->evas()[eva_idx].mapping != EvaMapping::kPrivateStructure) {
      return ShapeError("private structure for eva index " +
                        std::to_string(eva_idx));
    }
    const EvaPhys& eva = phys->evas()[eva_idx];
    std::string base = "eva$" + std::to_string(eva.rel_id);
    SIM_ASSIGN_OR_RETURN(std::unique_ptr<RelKeyedStore> fwd,
                         RelStoreCodec::Decode(&r, pool, base + "$fwd", eva.org,
                                        /*dump_direct=*/true));
    SIM_ASSIGN_OR_RETURN(std::unique_ptr<RelKeyedStore> inv,
                         RelStoreCodec::Decode(&r, pool, base + "$inv", eva.org,
                                        /*dump_direct=*/true));
    m->private_structs_[static_cast<int>(eva_idx)] = {std::move(fwd),
                                                      std::move(inv)};
  }
  // Every kPrivateStructure EVA must have arrived (Init creates them all).
  for (size_t i = 0; i < phys->evas().size(); ++i) {
    if (phys->evas()[i].mapping == EvaMapping::kPrivateStructure &&
        m->private_structs_.count(static_cast<int>(i)) == 0) {
      return ShapeError("missing private structure for eva index " +
                        std::to_string(i));
    }
  }

  m->mv_file_ = std::make_unique<HeapFile>(pool, "mvdva$records");
  SIM_RETURN_IF_ERROR(DecodeHeap(&r, m->mv_file_.get()));
  SIM_ASSIGN_OR_RETURN(
      m->mv_index_,
      RelStoreCodec::Decode(&r, pool, "mvdva$index", policy.eva_structure_org,
                     /*dump_direct=*/true));

  SIM_ASSIGN_OR_RETURN(uint64_t n_indexes, r.U64());
  if (n_indexes != phys->indexes().size()) {
    return ShapeError("snapshot has " + std::to_string(n_indexes) +
                      " secondary indexes, schema has " +
                      std::to_string(phys->indexes().size()));
  }
  for (const IndexPhys& idx : phys->indexes()) {
    SIM_ASSIGN_OR_RETURN(PageId root, r.U32());
    SIM_ASSIGN_OR_RETURN(uint32_t height, r.U32());
    SIM_ASSIGN_OR_RETURN(uint64_t entry_count, r.U64());
    m->sec_indexes_.push_back(std::make_unique<BPlusTree>(BPlusTree::Attach(
        pool, "index$" + idx.class_name + "$" + idx.attr_name, root,
        static_cast<int>(height), entry_count)));
  }

  SIM_ASSIGN_OR_RETURN(uint64_t n_extents, r.U64());
  if (n_extents != dir->class_names().size()) {
    return ShapeError("snapshot has " + std::to_string(n_extents) +
                      " extent counters, catalog has " +
                      std::to_string(dir->class_names().size()) + " classes");
  }
  m->extent_counts_.resize(n_extents);
  for (uint64_t i = 0; i < n_extents; ++i) {
    SIM_ASSIGN_OR_RETURN(m->extent_counts_[i], r.U64());
  }
  SIM_ASSIGN_OR_RETURN(uint64_t n_eva_counts, r.U64());
  if (n_eva_counts != phys->evas().size()) {
    return ShapeError("snapshot has " + std::to_string(n_eva_counts) +
                      " eva counters, schema has " +
                      std::to_string(phys->evas().size()) + " evas");
  }
  m->eva_pair_counts_.resize(n_eva_counts);
  for (uint64_t i = 0; i < n_eva_counts; ++i) {
    SIM_ASSIGN_OR_RETURN(m->eva_pair_counts_[i], r.U64());
  }

  if (!r.exhausted()) {
    return Status::Internal("mapper snapshot has trailing bytes");
  }
  return m;
}

}  // namespace sim
