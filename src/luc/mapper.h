#ifndef SIMDB_LUC_MAPPER_H_
#define SIMDB_LUC_MAPPER_H_

// The LUC Mapper (Figure 1): "extends the capabilities of any underlying
// physical or logical data source and presents a uniform, simplified view
// of data and operations associated with it" (§5.1). Above it sits the
// executor; below it, the storage engine.
//
// The mapper owns:
//  * the runtime storage units (one per UnitPhys),
//  * the relationship structures (shared common structure, private
//    structures, foreign-key inverse indexes),
//  * multi-valued DVA storage (embedded arrays or a shared dependent-LUC
//    heap file),
//  * secondary indexes for UNIQUE attributes,
//  * surrogate allocation.
//
// It maintains structural integrity (§5.1): deleting a role cascades to
// subclass roles, removes every EVA instance the removed roles participate
// in and the MV-DVA records they own, and keeps inverses synchronized at
// all times. It also enforces attribute options (type/range checks,
// UNIQUE, MAX, DISTINCT) on the write path; REQUIRED is checked by
// CheckRequired at statement boundaries.
//
// Every mutation can log an undo action on a Transaction, giving
// statement- and transaction-level rollback.

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "catalog/directory.h"
#include "common/mutex.h"
#include "common/relaxed_counter.h"
#include "catalog/luc_translation.h"
#include "common/status.h"
#include "common/string_pool.h"
#include "common/thread_annotations.h"
#include "common/value.h"
#include "luc/luc.h"
#include "luc/relationship.h"
#include "storage/heap_file.h"
#include "storage/txn.h"

namespace sim {

class LucMapper {
 public:
  // The catalog and physical schema must outlive the mapper and must not
  // change while it exists (schema evolution requires a rebuild).
  static Result<std::unique_ptr<LucMapper>> Create(
      const DirectoryManager* dir, const PhysicalSchema* phys,
      BufferPool* pool);

  const DirectoryManager& dir() const { return *dir_; }
  const PhysicalSchema& phys() const { return *phys_; }
  BufferPool* pool() { return pool_; }

  // --- entity lifecycle ---

  // Creates a new entity whose roles are `cls` plus all its ancestors.
  // All declared fields start null. When `cluster_near` names an existing
  // entity, the new records are placed on that entity's page where
  // possible (clustered physical mapping).
  Result<SurrogateId> CreateEntity(const std::string& cls, Transaction* txn,
                                   SurrogateId cluster_near = kInvalidSurrogate,
                                   const std::string& cluster_near_cls = "");

  // Extends an existing entity with role `cls` (and any missing
  // intermediate ancestor roles) — the INSERT ... FROM operation of §4.8.
  Status AddRole(SurrogateId s, const std::string& cls, Transaction* txn);

  Result<bool> HasRole(SurrogateId s, const std::string& cls);

  // The role set of the entity; `cls` may be any class of its family.
  Result<std::set<uint16_t>> RolesOf(SurrogateId s, const std::string& cls);

  // Removes role `cls` and all its subclass roles; removing the base role
  // deletes the entity entirely (§4.8 delete semantics).
  Status DeleteRole(SurrogateId s, const std::string& cls, Transaction* txn);

  // Physically relocates the primary record of `s` (in the unit of `cls`)
  // next to the record of `near` (in the unit of `near_cls`) — the
  // clustered physical mapping's reorganization step (§5.2).
  Status ClusterNear(SurrogateId s, const std::string& cls, SurrogateId near,
                     const std::string& near_cls);

  // --- single-valued DVAs ---

  // `cls` may be any class that has the attribute (resolution finds the
  // declaring class). Values are coerced and validated against the
  // attribute type; UNIQUE indexes are maintained.
  Status SetField(SurrogateId s, const std::string& cls,
                  const std::string& attr, const Value& v, Transaction* txn);
  Result<Value> GetField(SurrogateId s, const std::string& cls,
                         const std::string& attr);

  // --- multi-valued DVAs ---

  Status AddMvValue(SurrogateId s, const std::string& cls,
                    const std::string& attr, const Value& v, Transaction* txn)
      SIM_EXCLUDES(mv_mu_);
  Status RemoveMvValue(SurrogateId s, const std::string& cls,
                       const std::string& attr, const Value& v,
                       Transaction* txn) SIM_EXCLUDES(mv_mu_);
  Result<std::vector<Value>> GetMvValues(SurrogateId s, const std::string& cls,
                                         const std::string& attr)
      SIM_EXCLUDES(mv_mu_);

  // --- EVAs ---

  // Adds the relationship instance (owner --attr--> target); the inverse
  // becomes visible immediately. Enforces that `target` has the range
  // class role, that a single-valued side is unoccupied, MAX, DISTINCT.
  Status AddEvaPair(const std::string& cls, const std::string& attr,
                    SurrogateId owner, SurrogateId target, Transaction* txn);
  Status RemoveEvaPair(const std::string& cls, const std::string& attr,
                       SurrogateId owner, SurrogateId target,
                       Transaction* txn);
  // Removes every instance of this EVA owned by `owner`.
  Status RemoveAllEvaPairs(const std::string& cls, const std::string& attr,
                           SurrogateId owner, Transaction* txn);
  // Targets are delivered in the EVA's system-maintained order when one
  // is declared (`mv (ordered by <attr>)`), else in surrogate order.
  Result<std::vector<SurrogateId>> GetEvaTargets(const std::string& cls,
                                                 const std::string& attr,
                                                 SurrogateId owner);
  // Same, into a caller-owned buffer (cleared first); per-row traversals
  // reuse the buffer so steady-state probes allocate nothing.
  Status GetEvaTargetsInto(const std::string& cls, const std::string& attr,
                           SurrogateId owner, std::vector<SurrogateId>* out);

  // --- cursors (§5.1: "A cursor can be opened on a LUC or on a
  // relationship and it delivers one record of the LUC at a time") ---

  // Relationship cursor: positioned over the targets of one EVA instance
  // set, delivering one range-LUC record at a time.
  class TargetCursor {
   public:
    bool Valid() const { return index_ < targets_.size(); }
    SurrogateId target() const { return targets_[index_]; }
    void Next() { ++index_; }
    size_t size() const { return targets_.size(); }
    // Reads the current target's record fields from its primary unit.
    Result<std::vector<Value>> ReadRecord();

   private:
    friend class LucMapper;
    LucMapper* mapper_ = nullptr;
    std::string range_class_;
    std::vector<SurrogateId> targets_;
    size_t index_ = 0;
  };

  Result<TargetCursor> OpenEvaCursor(const std::string& cls,
                                     const std::string& attr,
                                     SurrogateId owner);
  // Repositions an existing cursor over a new owner's instance set,
  // reusing its target buffer. Operators that re-open a relationship
  // cursor per outer row use this to stay allocation-free.
  Status ReopenEvaCursor(const std::string& cls, const std::string& attr,
                         SurrogateId owner, TargetCursor* cursor);

  // Class (LUC) cursor: streams the extent of `cls` including subclass
  // members, one entity at a time, without materializing it.
  class ExtentCursor {
   public:
    bool Valid() const { return cursor_.Valid(); }
    SurrogateId surrogate() const { return cursor_.surrogate(); }
    const std::vector<Value>& fields() const { return cursor_.fields(); }
    Status Next();
    const Status& status() const { return cursor_.status(); }

   private:
    friend class LucMapper;
    ExtentCursor(UnitStore::Cursor cursor, uint16_t code)
        : cursor_(std::move(cursor)), code_(code) {}
    void SkipNonMembers();

    UnitStore::Cursor cursor_;
    uint16_t code_;
  };

  Result<ExtentCursor> OpenExtentCursor(const std::string& cls);

  // --- lookup & scans ---

  // Entity with `attr` == v via the secondary index, when one exists.
  Result<std::optional<SurrogateId>> LookupByIndex(const std::string& cls,
                                                   const std::string& attr,
                                                   const Value& v);
  bool HasIndex(const std::string& cls, const std::string& attr) const;

  // Surrogates of every entity holding role `cls` (extent including
  // subclasses, which is SIM's class membership semantics).
  Result<std::vector<SurrogateId>> ExtentOf(const std::string& cls);
  // Maintained count of the extent (no scan).
  Result<uint64_t> ExtentCount(const std::string& cls) const
      SIM_EXCLUDES(counts_mu_);
  // True while an extent cursor over `cls` is guaranteed to deliver
  // entities in surrogate order (the unit's physical scan order has not
  // diverged from insertion/surrogate order).
  Result<bool> ExtentScanInSurrogateOrder(const std::string& cls) const;

  // Every heap page currently owned by a storage unit or the shared MV
  // file — the pages whose records SCRUB DATABASE decodes via RecordView
  // (index pages are covered by checksum verification only).
  std::vector<PageId> HeapPages() const SIM_EXCLUDES(mv_mu_);

  // Monotonic counter bumped by every data mutation (entity lifecycle,
  // field/MV writes, EVA instance changes, reclustering). Lets the
  // optimizer detect stale statistics without scanning.
  uint64_t mutation_count() const { return mutation_count_; }

  // Mutation counts by category — the update-path mirror of the
  // executor's read-side ExecStats. Sampled by the Database's metrics
  // registry at scrape time (simdb_luc_*) from scraper threads while the
  // execution thread mutates, hence RelaxedCounter fields.
  struct Stats {
    RelaxedCounter entities_created;
    RelaxedCounter role_changes;  // AddRole / DeleteRole / ClusterNear
    RelaxedCounter fields_set;    // single-valued DVA writes
    RelaxedCounter mv_changes;    // multi-valued DVA adds / removes
    RelaxedCounter eva_changes;   // EVA instance adds / removes
  };
  const Stats& stats() const { return stats_; }

  // --- integrity support ---

  // Verifies every REQUIRED attribute applicable to role `cls` of `s` is
  // present (non-null / at least one value or target).
  Status CheckRequired(SurrogateId s, const std::string& cls);

  // --- statistics for the optimizer ---

  // Average number of side-B targets per side-A owner of an EVA pair
  // (and vice versa when `from_a` is false).
  double AvgEvaFanout(int eva_idx, bool from_a) const
      SIM_EXCLUDES(counts_mu_);
  uint64_t EvaPairCount(int eva_idx) const SIM_EXCLUDES(counts_mu_);

 private:
  // The offline auditor re-derives every maintained structure from base
  // records; the corruption injector (tests) plants inconsistencies for it
  // to find. Both need the raw structures, not the invariant-preserving
  // API.
  friend class InvariantChecker;
  friend class CorruptionInjector;
  // Snapshots/rebuilds the raw structures for crash recovery.
  friend class MapperRehydrator;
  // REPAIR DATABASE rebuilds every derived structure from the surviving
  // base records after quarantined pages are salvaged (check/repair.h).
  friend class Repairer;

  LucMapper(const DirectoryManager* dir, const PhysicalSchema* phys,
            BufferPool* pool)
      : dir_(dir), phys_(phys), pool_(pool) {}

  Status Init();

  // Declaring class + attribute + unit/field coordinates.
  struct FieldRef {
    const ClassDef* owner = nullptr;
    const AttributeDef* attr = nullptr;
    int unit = -1;
    int field = -1;  // index into unit fields; -1 when not stored
  };
  Result<FieldRef> Resolve(const std::string& cls, const std::string& attr,
                           bool want_field) const SIM_EXCLUDES(cache_mu_);

  // Class code + base-class unit of `cls`, memoized (see the caches below).
  struct ClassInfo {
    uint16_t code = 0;
    int base_unit = -1;
  };
  Result<ClassInfo> ClassInfoOf(const std::string& cls) const
      SIM_EXCLUDES(cache_mu_);

  // Reads the record of `s` in unit `u`.
  Status ReadUnitRecord(int u, SurrogateId s, std::set<uint16_t>* roles,
                        std::vector<Value>* fields);
  // Replaces field `idx` of `s` in unit `u` (no option checks).
  Status WriteUnitField(int u, SurrogateId s, int idx, const Value& v,
                        Transaction* txn);

  // Updates the roles set duplicated in every unit record of the entity.
  Status UpdateRolesEverywhere(SurrogateId s,
                               const std::set<uint16_t>& old_roles,
                               const std::set<uint16_t>& new_roles,
                               Transaction* txn);

  // Per-side descriptors for an EVA instance operation.
  struct EvaSide {
    const EvaPhys* eva = nullptr;
    int eva_idx = -1;
    bool owner_is_a = true;
    bool owner_mv = false;
    int owner_max = -1;
    bool distinct = false;
  };
  Result<EvaSide> ResolveEva(const std::string& cls, const std::string& attr)
      const;

  Result<std::vector<SurrogateId>> GetEvaTargetsUnordered(
      const std::string& cls, const std::string& attr, SurrogateId owner);
  Status GetEvaTargetsUnorderedInto(const std::string& cls,
                                    const std::string& attr, SurrogateId owner,
                                    std::vector<SurrogateId>* out);

  // Structure-level pair maintenance (no option checks).
  Status StructAddPair(const EvaSide& side, SurrogateId owner,
                       SurrogateId target);
  Status StructRemovePair(const EvaSide& side, SurrogateId owner,
                          SurrogateId target);

  // Removes all EVA pairs and MV values owned by role `cls` of `s`,
  // logging undos; used by DeleteRole.
  Status StripRoleData(SurrogateId s, const std::string& cls,
                       Transaction* txn);

  // Secondary index maintenance for one stored field change.
  Status UpdateSecIndex(const FieldRef& ref, SurrogateId s, const Value& old_v,
                        const Value& new_v, Transaction* txn);

  // Sorts surrogates by an attribute of `cls` (system-maintained ordering,
  // §6 extension). Nulls sort last; surrogate order breaks ties.
  Status SortByAttribute(std::vector<SurrogateId>* ids, const std::string& cls,
                         const std::string& attr, bool desc);

  const DirectoryManager* dir_;
  const PhysicalSchema* phys_;
  BufferPool* pool_;

  std::vector<std::unique_ptr<UnitStore>> units_;
  // Common EVA Structure: forward keyed by side-A surrogate, inverse keyed
  // by side-B surrogate.
  std::unique_ptr<RelKeyedStore> common_fwd_;
  std::unique_ptr<RelKeyedStore> common_inv_;
  // Private structures for DISTINCT many:many EVAs, keyed by eva index.
  std::map<int, std::pair<std::unique_ptr<RelKeyedStore>,
                          std::unique_ptr<RelKeyedStore>>>
      private_structs_;
  // Inverse index for foreign-key-mapped EVAs with a multi-valued side.
  std::unique_ptr<RelKeyedStore> fk_inv_;

  // Separate-unit MV DVAs: records [owner, value] in one shared dependent
  // file, located via (mvdva-id, owner) -> packed RecordId. The file's
  // pages mix records of every class, so semantic class-extent locks
  // cannot exclude a reader of one family from a writer of another;
  // mv_mu_ latches all access (including the undo callbacks). The offline
  // friends below (auditor, repairer, rehydrator) run under an exclusive
  // lock-manager scope — or before the database goes concurrent — and
  // read the raw structures latch-free.
  std::unique_ptr<HeapFile> mv_file_;
  std::unique_ptr<RelKeyedStore> mv_index_;
  mutable Mutex mv_mu_;

  // Secondary indexes parallel to phys_->indexes(): key -> surrogate.
  std::vector<std::unique_ptr<BPlusTree>> sec_indexes_;

  // Extent counters keyed by class code; EVA instance counts for fanout
  // statistics. Maintained by writers while the optimizer reads them from
  // concurrent planning threads, hence the counts_mu_ latch (same offline
  // caveat as mv_mu_). next_surrogate_ rides under the same latch: it is
  // only advanced on the serialized write path, but snapshots read it.
  std::vector<uint64_t> extent_counts_;
  // Per-EVA instance counts and per-side distinct owner tracking for
  // fanout statistics.
  std::vector<uint64_t> eva_pair_counts_;
  mutable Mutex counts_mu_;

  SurrogateId next_surrogate_ = 1;
  RelaxedCounter mutation_count_;
  Stats stats_;

  // Memoized name resolution. The catalog and physical schema are frozen
  // while the mapper exists (see Create), so resolutions never go stale.
  // Keys are lowercased "cls.attr" / "cls" built into key_buf_; the
  // transparent hash makes cache hits allocation-free.
  struct SvHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>()(s);
    }
  };
  struct SvEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };
  // cache_mu_ latches the memoized resolutions: they are (re)built on
  // READ paths, so concurrent reader statements race on them without it.
  mutable Mutex cache_mu_;
  mutable std::unordered_map<std::string, FieldRef, SvHash, SvEq>
      resolve_cache_ SIM_GUARDED_BY(cache_mu_);
  mutable std::unordered_map<std::string, ClassInfo, SvHash, SvEq>
      class_cache_ SIM_GUARDED_BY(cache_mu_);
  mutable std::string key_buf_ SIM_GUARDED_BY(cache_mu_);

  // Interned strings for Values the mapper hands out repeatedly (subrole
  // class names). Pooled Values stay valid as long as the mapper — i.e.
  // the database — is open.
  mutable StringPool strings_;
};

}  // namespace sim

#endif  // SIMDB_LUC_MAPPER_H_
