#ifndef SIMDB_LUC_RELATIONSHIP_H_
#define SIMDB_LUC_RELATIONSHIP_H_

// Keyed relationship storage. A RelKeyedStore holds (rel-id, surrogate) ->
// surrogate associations — the runtime form of the Common EVA Structure
// records <surrogate1, rel-id, surrogate2> of §5.2. One store instance
// keyed in the forward direction plus one keyed in the inverse direction
// together implement a relationship structure; "common" structures are
// shared by many EVAs (distinguished by rel-id), "private" ones serve a
// single DISTINCT many:many EVA.
//
// The §5.2 key organizations are all supported:
//   direct          — an in-memory multimap (models record-number keys:
//                     no block accesses for the probe itself),
//   hashed          — the page-based hash index,
//   index sequential— the page-based B+-tree.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/luc_translation.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/value.h"
#include "storage/bptree.h"
#include "storage/buffer_pool.h"
#include "storage/hash_index.h"

namespace sim {

class RelKeyedStore {
 public:
  static Result<std::unique_ptr<RelKeyedStore>> Create(BufferPool* pool,
                                                       std::string name,
                                                       KeyOrganization org);

  const std::string& name() const { return name_; }
  KeyOrganization organization() const { return org_; }
  uint64_t entry_count() const SIM_EXCLUDES(rel_mu_) {
    MutexLock l(rel_mu_);
    return entry_count_;
  }

  // All operations are latched: "common" structures mix associations of
  // every EVA, so a reader traversing one family's relationship shares
  // pages and in-memory state with a writer of a different family — a
  // conflict the class-extent lock manager cannot see.
  Status Add(uint32_t rel_id, SurrogateId key, SurrogateId value)
      SIM_EXCLUDES(rel_mu_);
  Status Remove(uint32_t rel_id, SurrogateId key, SurrogateId value)
      SIM_EXCLUDES(rel_mu_);
  // Values associated with (rel_id, key), in insertion-independent order
  // (sorted for the tree organization).
  Result<std::vector<SurrogateId>> Get(uint32_t rel_id, SurrogateId key)
      SIM_EXCLUDES(rel_mu_);
  // Same, into a caller-owned buffer (cleared first) whose capacity is
  // reused across probes — the per-row traversal hot path.
  Status GetInto(uint32_t rel_id, SurrogateId key,
                 std::vector<SurrogateId>* out) SIM_EXCLUDES(rel_mu_);
  // First (smallest) value under (rel_id, key) without materializing the
  // vector — the single-result hot path (primary index probes).
  Result<std::optional<SurrogateId>> GetFirst(uint32_t rel_id,
                                              SurrogateId key)
      SIM_EXCLUDES(rel_mu_);
  Result<bool> Contains(uint32_t rel_id, SurrogateId key, SurrogateId value);
  Result<uint64_t> CountFor(uint32_t rel_id, SurrogateId key);

 private:
  // Snapshot/rehydrate (luc/rehydrate.cc) serializes the backend state and
  // reconstructs stores through the private constructor.
  friend struct RelStoreCodec;

  RelKeyedStore(std::string name, KeyOrganization org)
      : name_(std::move(name)), org_(org) {}

  struct PairHash {
    size_t operator()(const std::pair<uint64_t, uint64_t>& p) const {
      return std::hash<uint64_t>()(p.first * 0x9e3779b97f4a7c15ULL ^
                                   p.second);
    }
  };

  std::string name_;
  KeyOrganization org_;
  // rel_mu_ guards entry_count_ and the backing structure below. The
  // snapshot codec (RelStoreCodec) reads/builds raw state latch-free: it
  // runs on the serialized commit path or during single-threaded
  // open/recovery.
  mutable Mutex rel_mu_;
  uint64_t entry_count_ = 0;
  // Exactly one of the following backs the store, per org_.
  std::unordered_multimap<std::pair<uint64_t, uint64_t>, SurrogateId, PairHash>
      direct_;
  std::optional<HashIndex> hashed_;
  std::optional<BPlusTree> tree_;
};

}  // namespace sim

#endif  // SIMDB_LUC_RELATIONSHIP_H_
