#include "luc/mapper.h"

#include <algorithm>

#include "common/strings.h"
#include "storage/record_codec.h"

namespace sim {

namespace {

std::string QualKey(const std::string& cls, const std::string& attr) {
  return AsciiLower(cls) + "." + AsciiLower(attr);
}

char LowerChar(char c) {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

// Builds the lowercased cache key into `buf` (no allocation once the
// buffer has grown to steady state).
void LowerInto(std::string_view s, std::string* buf) {
  for (char c : s) buf->push_back(LowerChar(c));
}

}  // namespace

Result<std::unique_ptr<LucMapper>> LucMapper::Create(
    const DirectoryManager* dir, const PhysicalSchema* phys,
    BufferPool* pool) {
  auto mapper =
      std::unique_ptr<LucMapper>(new LucMapper(dir, phys, pool));
  SIM_RETURN_IF_ERROR(mapper->Init());
  return mapper;
}

Status LucMapper::Init() {
  const MappingPolicy& policy = phys_->policy();
  for (size_t i = 0; i < phys_->units().size(); ++i) {
    SIM_ASSIGN_OR_RETURN(
        std::unique_ptr<UnitStore> unit,
        UnitStore::Create(pool_, &phys_->units()[i], static_cast<uint16_t>(i),
                          policy.surrogate_org));
    unit->set_reserve_bytes(policy.cluster_reserve_bytes);
    units_.push_back(std::move(unit));
  }
  SIM_ASSIGN_OR_RETURN(
      common_fwd_,
      RelKeyedStore::Create(pool_, "common_eva$fwd", policy.eva_structure_org));
  SIM_ASSIGN_OR_RETURN(
      common_inv_,
      RelKeyedStore::Create(pool_, "common_eva$inv", policy.eva_structure_org));
  SIM_ASSIGN_OR_RETURN(
      fk_inv_, RelKeyedStore::Create(pool_, "fk$inv", policy.eva_structure_org));
  for (size_t i = 0; i < phys_->evas().size(); ++i) {
    const EvaPhys& eva = phys_->evas()[i];
    if (eva.mapping != EvaMapping::kPrivateStructure) continue;
    SIM_ASSIGN_OR_RETURN(
        std::unique_ptr<RelKeyedStore> fwd,
        RelKeyedStore::Create(pool_, "eva$" + std::to_string(eva.rel_id) +
                                         "$fwd",
                              eva.org));
    SIM_ASSIGN_OR_RETURN(
        std::unique_ptr<RelKeyedStore> inv,
        RelKeyedStore::Create(pool_, "eva$" + std::to_string(eva.rel_id) +
                                         "$inv",
                              eva.org));
    private_structs_[static_cast<int>(i)] = {std::move(fwd), std::move(inv)};
  }
  mv_file_ = std::make_unique<HeapFile>(pool_, "mvdva$records");
  SIM_ASSIGN_OR_RETURN(
      mv_index_,
      RelKeyedStore::Create(pool_, "mvdva$index", policy.eva_structure_org));
  for (const IndexPhys& idx : phys_->indexes()) {
    SIM_ASSIGN_OR_RETURN(
        BPlusTree tree,
        BPlusTree::Create(pool_, "index$" + idx.class_name + "$" +
                                     idx.attr_name));
    sec_indexes_.push_back(std::make_unique<BPlusTree>(std::move(tree)));
  }
  extent_counts_.assign(dir_->class_names().size(), 0);
  eva_pair_counts_.assign(phys_->evas().size(), 0);
  return Status::Ok();
}

Result<LucMapper::FieldRef> LucMapper::Resolve(const std::string& cls,
                                               const std::string& attr,
                                               bool want_field) const {
  MutexLock l(cache_mu_);
  key_buf_.clear();
  LowerInto(cls, &key_buf_);
  key_buf_.push_back('.');
  LowerInto(attr, &key_buf_);
  FieldRef ref;
  auto cached = resolve_cache_.find(std::string_view(key_buf_));
  if (cached != resolve_cache_.end()) {
    ref = cached->second;
  } else {
    SIM_ASSIGN_OR_RETURN(DirectoryManager::ResolvedAttr ra,
                         dir_->ResolveAttribute(cls, attr));
    ref.owner = ra.owner;
    ref.attr = ra.attr;
    SIM_ASSIGN_OR_RETURN(ref.unit, phys_->UnitOf(ra.owner->name));
    const UnitPhys& unit = phys_->units()[ref.unit];
    auto it = unit.field_index.find(QualKey(ra.owner->name, ra.attr->name));
    ref.field = it == unit.field_index.end() ? -1 : it->second;
    resolve_cache_.emplace(key_buf_, ref);
  }
  if (want_field && ref.field < 0) {
    return Status::Internal("attribute '" + cls + "." + attr +
                            "' has no stored field");
  }
  return ref;
}

Result<LucMapper::ClassInfo> LucMapper::ClassInfoOf(
    const std::string& cls) const {
  MutexLock l(cache_mu_);
  key_buf_.clear();
  LowerInto(cls, &key_buf_);
  auto cached = class_cache_.find(std::string_view(key_buf_));
  if (cached != class_cache_.end()) return cached->second;
  ClassInfo info;
  SIM_ASSIGN_OR_RETURN(info.code, phys_->ClassCode(cls));
  SIM_ASSIGN_OR_RETURN(std::string base, dir_->BaseOf(cls));
  SIM_ASSIGN_OR_RETURN(info.base_unit, phys_->UnitOf(base));
  class_cache_.emplace(key_buf_, info);
  return info;
}

Status LucMapper::ReadUnitRecord(int u, SurrogateId s,
                                 std::set<uint16_t>* roles,
                                 std::vector<Value>* fields) {
  return units_[u]->Read(s, roles, fields);
}

Status LucMapper::WriteUnitField(int u, SurrogateId s, int idx,
                                 const Value& v, Transaction* txn) {
  std::set<uint16_t> roles;
  std::vector<Value> fields;
  SIM_RETURN_IF_ERROR(units_[u]->Read(s, &roles, &fields));
  Value old = fields[idx];
  fields[idx] = v;
  SIM_RETURN_IF_ERROR(units_[u]->Update(s, roles, fields));
  if (txn != nullptr) {
    txn->LogUndo([this, u, s, idx, old]() {
      return WriteUnitField(u, s, idx, old, nullptr);
    });
  }
  return Status::Ok();
}

Result<SurrogateId> LucMapper::CreateEntity(const std::string& cls,
                                            Transaction* txn,
                                            SurrogateId cluster_near,
                                            const std::string& cluster_near_cls) {
  ++mutation_count_;
  ++stats_.entities_created;
  SIM_ASSIGN_OR_RETURN(const ClassDef* def, dir_->FindClass(cls));
  SIM_ASSIGN_OR_RETURN(std::vector<std::string> ancestors,
                       dir_->AncestorsOf(cls));
  std::vector<std::string> classes = {def->name};
  classes.insert(classes.end(), ancestors.begin(), ancestors.end());

  std::set<uint16_t> roles;
  std::set<int> unit_set;
  std::vector<int> unit_order;
  for (const auto& c : classes) {
    SIM_ASSIGN_OR_RETURN(uint16_t code, phys_->ClassCode(c));
    roles.insert(code);
    SIM_ASSIGN_OR_RETURN(int u, phys_->UnitOf(c));
    if (unit_set.insert(u).second) unit_order.push_back(u);
  }

  PageId hint = kInvalidPageId;
  if (cluster_near != kInvalidSurrogate && !cluster_near_cls.empty()) {
    Result<int> near_unit = phys_->UnitOf(cluster_near_cls);
    if (near_unit.ok()) {
      Result<PageId> page = units_[*near_unit]->PageOf(cluster_near);
      if (page.ok()) hint = *page;
    }
  }

  SurrogateId s;
  {
    MutexLock l(counts_mu_);
    s = next_surrogate_++;
  }
  for (int u : unit_order) {
    std::vector<Value> fields(phys_->units()[u].fields.size());
    SIM_RETURN_IF_ERROR(units_[u]->Insert(s, roles, fields, hint).status());
    if (txn != nullptr) {
      txn->LogUndo([this, u, s]() { return units_[u]->Delete(s); });
    }
  }
  {
    MutexLock l(counts_mu_);
    for (uint16_t code : roles) ++extent_counts_[code];
  }
  if (txn != nullptr) {
    txn->LogUndo([this, roles]() {
      MutexLock l(counts_mu_);
      for (uint16_t code : roles) --extent_counts_[code];
      return Status::Ok();
    });
  }
  return s;
}

Result<std::set<uint16_t>> LucMapper::RolesOf(SurrogateId s,
                                              const std::string& cls) {
  SIM_ASSIGN_OR_RETURN(ClassInfo info, ClassInfoOf(cls));
  std::set<uint16_t> roles;
  SIM_RETURN_IF_ERROR(units_[info.base_unit]->Read(s, &roles, nullptr));
  return roles;
}

Result<bool> LucMapper::HasRole(SurrogateId s, const std::string& cls) {
  SIM_ASSIGN_OR_RETURN(ClassInfo info, ClassInfoOf(cls));
  return units_[info.base_unit]->HasRoleCode(s, info.code);
}

Status LucMapper::UpdateRolesEverywhere(SurrogateId s,
                                        const std::set<uint16_t>& old_roles,
                                        const std::set<uint16_t>& new_roles,
                                        Transaction* txn) {
  std::set<int> units;
  for (uint16_t code : new_roles) {
    SIM_ASSIGN_OR_RETURN(std::string c, phys_->ClassForCode(code));
    SIM_ASSIGN_OR_RETURN(int u, phys_->UnitOf(c));
    units.insert(u);
  }
  for (int u : units) {
    std::set<uint16_t> roles;
    std::vector<Value> fields;
    Status st = units_[u]->Read(s, &roles, &fields);
    if (st.code() == StatusCode::kNotFound) continue;
    SIM_RETURN_IF_ERROR(st);
    SIM_RETURN_IF_ERROR(units_[u]->Update(s, new_roles, fields));
  }
  if (txn != nullptr) {
    txn->LogUndo([this, s, old_roles, new_roles]() {
      return UpdateRolesEverywhere(s, new_roles, old_roles, nullptr);
    });
  }
  return Status::Ok();
}

Status LucMapper::AddRole(SurrogateId s, const std::string& cls,
                          Transaction* txn) {
  ++mutation_count_;
  ++stats_.role_changes;
  SIM_ASSIGN_OR_RETURN(std::set<uint16_t> old_roles, RolesOf(s, cls));
  SIM_ASSIGN_OR_RETURN(const ClassDef* def, dir_->FindClass(cls));
  SIM_ASSIGN_OR_RETURN(std::vector<std::string> ancestors,
                       dir_->AncestorsOf(cls));
  std::vector<std::string> classes = {def->name};
  classes.insert(classes.end(), ancestors.begin(), ancestors.end());

  std::set<uint16_t> new_roles = old_roles;
  std::vector<std::string> added;
  for (const auto& c : classes) {
    SIM_ASSIGN_OR_RETURN(uint16_t code, phys_->ClassCode(c));
    if (new_roles.insert(code).second) added.push_back(c);
  }
  if (added.empty()) {
    return Status::AlreadyExists("entity already has role '" + cls + "'");
  }
  // Create missing unit records (ancestor units may already exist).
  std::set<int> have_units;
  for (uint16_t code : old_roles) {
    SIM_ASSIGN_OR_RETURN(std::string c, phys_->ClassForCode(code));
    SIM_ASSIGN_OR_RETURN(int u, phys_->UnitOf(c));
    have_units.insert(u);
  }
  for (const auto& c : added) {
    SIM_ASSIGN_OR_RETURN(int u, phys_->UnitOf(c));
    if (!have_units.insert(u).second) continue;
    std::vector<Value> fields(phys_->units()[u].fields.size());
    SIM_RETURN_IF_ERROR(units_[u]->Insert(s, new_roles, fields).status());
    if (txn != nullptr) {
      txn->LogUndo([this, u, s]() { return units_[u]->Delete(s); });
    }
  }
  SIM_RETURN_IF_ERROR(UpdateRolesEverywhere(s, old_roles, new_roles, txn));
  for (const auto& c : added) {
    SIM_ASSIGN_OR_RETURN(uint16_t code, phys_->ClassCode(c));
    MutexLock l(counts_mu_);
    ++extent_counts_[code];
  }
  if (txn != nullptr) {
    std::vector<std::string> added_copy = added;
    txn->LogUndo([this, added_copy]() {
      MutexLock l(counts_mu_);
      for (const auto& c : added_copy) {
        Result<uint16_t> code = phys_->ClassCode(c);
        if (code.ok()) --extent_counts_[*code];
      }
      return Status::Ok();
    });
  }
  return Status::Ok();
}

Status LucMapper::StripRoleData(SurrogateId s, const std::string& cls,
                                Transaction* txn) {
  SIM_ASSIGN_OR_RETURN(const ClassDef* def, dir_->FindClass(cls));
  for (const AttributeDef& a : def->attributes) {
    if (a.is_subrole || a.is_derived) continue;  // computed, nothing stored
    if (a.is_eva()) {
      SIM_RETURN_IF_ERROR(RemoveAllEvaPairs(def->name, a.name, s, txn));
    } else if (a.mv) {
      SIM_ASSIGN_OR_RETURN(std::vector<Value> values,
                           GetMvValues(s, def->name, a.name));
      for (const Value& v : values) {
        SIM_RETURN_IF_ERROR(RemoveMvValue(s, def->name, a.name, v, txn));
      }
    } else if (!a.is_subrole) {
      int idx = phys_->IndexOf(def->name, a.name);
      if (idx >= 0) {
        SIM_ASSIGN_OR_RETURN(Value old, GetField(s, def->name, a.name));
        if (!old.is_null()) {
          SIM_ASSIGN_OR_RETURN(FieldRef ref, Resolve(def->name, a.name, true));
          SIM_RETURN_IF_ERROR(UpdateSecIndex(ref, s, old, Value::Null(), txn));
        }
      }
    }
  }
  return Status::Ok();
}

Status LucMapper::DeleteRole(SurrogateId s, const std::string& cls,
                             Transaction* txn) {
  ++mutation_count_;
  ++stats_.role_changes;
  SIM_ASSIGN_OR_RETURN(std::set<uint16_t> old_roles, RolesOf(s, cls));
  SIM_ASSIGN_OR_RETURN(uint16_t cls_code, phys_->ClassCode(cls));
  if (old_roles.count(cls_code) == 0) {
    return Status::NotFound("entity does not have role '" + cls + "'");
  }
  // Roles to remove: cls plus every descendant role the entity has.
  std::set<uint16_t> removed = {cls_code};
  SIM_ASSIGN_OR_RETURN(std::vector<std::string> descendants,
                       dir_->DescendantsOf(cls));
  for (const auto& d : descendants) {
    SIM_ASSIGN_OR_RETURN(uint16_t code, phys_->ClassCode(d));
    if (old_roles.count(code)) removed.insert(code);
  }
  std::set<uint16_t> new_roles;
  for (uint16_t code : old_roles) {
    if (!removed.count(code)) new_roles.insert(code);
  }

  // 1. Remove relationship instances, MV values and index entries owned by
  // the removed roles.
  for (uint16_t code : removed) {
    SIM_ASSIGN_OR_RETURN(std::string c, phys_->ClassForCode(code));
    SIM_RETURN_IF_ERROR(StripRoleData(s, c, txn));
  }

  // 2. Per affected unit: delete the record when no surviving role is
  // stored there, otherwise null out the removed roles' fields.
  std::set<int> removed_units;
  for (uint16_t code : removed) {
    SIM_ASSIGN_OR_RETURN(std::string c, phys_->ClassForCode(code));
    SIM_ASSIGN_OR_RETURN(int u, phys_->UnitOf(c));
    removed_units.insert(u);
  }
  for (int u : removed_units) {
    const UnitPhys& unit = phys_->units()[u];
    bool keep = false;
    for (const auto& c : unit.classes) {
      SIM_ASSIGN_OR_RETURN(uint16_t code, phys_->ClassCode(c));
      if (new_roles.count(code)) {
        keep = true;
        break;
      }
    }
    std::set<uint16_t> cur_roles;
    std::vector<Value> fields;
    Status st = units_[u]->Read(s, &cur_roles, &fields);
    if (st.code() == StatusCode::kNotFound) continue;
    SIM_RETURN_IF_ERROR(st);
    if (!keep) {
      SIM_RETURN_IF_ERROR(units_[u]->Delete(s));
      if (txn != nullptr) {
        std::vector<Value> fields_copy = fields;
        std::set<uint16_t> roles_copy = cur_roles;
        txn->LogUndo([this, u, s, roles_copy, fields_copy]() {
          return units_[u]->Insert(s, roles_copy, fields_copy).status();
        });
      }
    } else {
      std::vector<Value> new_fields = fields;
      for (size_t f = 0; f < unit.fields.size(); ++f) {
        SIM_ASSIGN_OR_RETURN(uint16_t fcode,
                             phys_->ClassCode(unit.fields[f].class_name));
        if (removed.count(fcode)) new_fields[f] = Value::Null();
      }
      SIM_RETURN_IF_ERROR(units_[u]->Update(s, new_roles, new_fields));
      if (txn != nullptr) {
        std::vector<Value> fields_copy = fields;
        std::set<uint16_t> roles_copy = cur_roles;
        txn->LogUndo([this, u, s, roles_copy, fields_copy]() {
          return units_[u]->Update(s, roles_copy, fields_copy);
        });
      }
    }
  }
  // 3. Update roles in the untouched units.
  if (!new_roles.empty()) {
    SIM_RETURN_IF_ERROR(UpdateRolesEverywhere(s, old_roles, new_roles, txn));
  }
  {
    MutexLock l(counts_mu_);
    for (uint16_t code : removed) --extent_counts_[code];
  }
  if (txn != nullptr) {
    txn->LogUndo([this, removed]() {
      MutexLock l(counts_mu_);
      for (uint16_t code : removed) ++extent_counts_[code];
      return Status::Ok();
    });
  }
  return Status::Ok();
}

Status LucMapper::ClusterNear(SurrogateId s, const std::string& cls,
                              SurrogateId near, const std::string& near_cls) {
  ++mutation_count_;
  ++stats_.role_changes;
  SIM_ASSIGN_OR_RETURN(int unit, phys_->UnitOf(cls));
  SIM_ASSIGN_OR_RETURN(int near_unit, phys_->UnitOf(near_cls));
  SIM_ASSIGN_OR_RETURN(PageId hint, units_[near_unit]->PageOf(near));
  return units_[unit]->MoveNear(s, hint);
}

Status LucMapper::UpdateSecIndex(const FieldRef& ref, SurrogateId s,
                                 const Value& old_v, const Value& new_v,
                                 Transaction* txn) {
  int idx = phys_->IndexOf(ref.owner->name, ref.attr->name);
  if (idx < 0) return Status::Ok();
  if (old_v.StrictEquals(new_v)) return Status::Ok();
  BPlusTree* tree = sec_indexes_[idx].get();
  bool unique = phys_->indexes()[idx].unique;
  // Nulls are omitted from the index (§3.2.1).
  if (!new_v.is_null()) {
    SIM_ASSIGN_OR_RETURN(std::string key, EncodeIndexKey(new_v));
    if (unique) {
      SIM_ASSIGN_OR_RETURN(bool exists, tree->Contains(key));
      if (exists) {
        return Status::ConstraintViolation(
            "unique attribute '" + ref.owner->name + "." + ref.attr->name +
            "' already has value " + new_v.ToString());
      }
    }
    SIM_RETURN_IF_ERROR(tree->Insert(key, s));
    if (txn != nullptr) {
      txn->LogUndo([tree, key, s]() { return tree->Delete(key, s); });
    }
  }
  if (!old_v.is_null()) {
    SIM_ASSIGN_OR_RETURN(std::string key, EncodeIndexKey(old_v));
    SIM_RETURN_IF_ERROR(tree->Delete(key, s));
    if (txn != nullptr) {
      txn->LogUndo([tree, key, s]() { return tree->Insert(key, s); });
    }
  }
  return Status::Ok();
}

Status LucMapper::SetField(SurrogateId s, const std::string& cls,
                           const std::string& attr, const Value& v,
                           Transaction* txn) {
  ++mutation_count_;
  ++stats_.fields_set;
  SIM_ASSIGN_OR_RETURN(FieldRef ref, Resolve(cls, attr, false));
  if (ref.attr->is_eva()) {
    return Status::InvalidArgument("'" + attr +
                                   "' is an EVA; use relationship operations");
  }
  if (ref.attr->is_subrole) {
    return Status::InvalidArgument("subrole attribute '" + attr +
                                   "' is system-maintained and read-only");
  }
  if (ref.attr->is_derived) {
    return Status::InvalidArgument("derived attribute '" + attr +
                                   "' is computed and read-only");
  }
  if (ref.attr->mv) {
    return Status::InvalidArgument("'" + attr +
                                   "' is multi-valued; use MV operations");
  }
  if (ref.field < 0) {
    return Status::Internal("no stored field for '" + attr + "'");
  }
  SIM_ASSIGN_OR_RETURN(bool has_role, HasRole(s, ref.owner->name));
  if (!has_role) {
    return Status::ConstraintViolation("entity does not have role '" +
                                       ref.owner->name + "'");
  }
  SIM_ASSIGN_OR_RETURN(Value coerced, ref.attr->type.CoerceValue(v));
  std::set<uint16_t> roles;
  std::vector<Value> fields;
  SIM_RETURN_IF_ERROR(units_[ref.unit]->Read(s, &roles, &fields));
  Value old = fields[ref.field];
  if (old.StrictEquals(coerced)) return Status::Ok();
  SIM_RETURN_IF_ERROR(UpdateSecIndex(ref, s, old, coerced, txn));
  return WriteUnitField(ref.unit, s, ref.field, coerced, txn);
}

Result<Value> LucMapper::GetField(SurrogateId s, const std::string& cls,
                                  const std::string& attr) {
  SIM_ASSIGN_OR_RETURN(FieldRef ref, Resolve(cls, attr, false));
  if (ref.attr->is_eva()) {
    return Status::InvalidArgument("'" + attr +
                                   "' is an EVA; use GetEvaTargets");
  }
  if (ref.attr->is_subrole && !ref.attr->mv) {
    // Single-valued subrole: the one immediate-subclass role the entity
    // holds from the declared set, if any.
    SIM_ASSIGN_OR_RETURN(std::set<uint16_t> roles, RolesOf(s, cls));
    for (const auto& sym : ref.attr->type.symbols) {
      SIM_ASSIGN_OR_RETURN(uint16_t code, phys_->ClassCode(sym));
      if (roles.count(code)) {
        return Value::PooledStr(&strings_, strings_.Intern(sym));
      }
    }
    return Value::Null();
  }
  if (ref.attr->mv) {
    return Status::InvalidArgument("'" + attr +
                                   "' is multi-valued; use GetMvValues");
  }
  if (ref.field < 0) {
    return Status::Internal("no stored field for '" + attr + "'");
  }
  Value out;
  SIM_RETURN_IF_ERROR(units_[ref.unit]->ReadField(s, ref.field, &out));
  return out;
}

Result<std::vector<Value>> LucMapper::GetMvValues(SurrogateId s,
                                                  const std::string& cls,
                                                  const std::string& attr) {
  SIM_ASSIGN_OR_RETURN(FieldRef ref, Resolve(cls, attr, false));
  if (!ref.attr->is_dva() || !ref.attr->mv) {
    if (ref.attr->is_subrole) {
      // Multi-valued subrole: all held roles from the declared set.
      SIM_ASSIGN_OR_RETURN(std::set<uint16_t> roles, RolesOf(s, cls));
      std::vector<Value> out;
      for (const auto& sym : ref.attr->type.symbols) {
        SIM_ASSIGN_OR_RETURN(uint16_t code, phys_->ClassCode(sym));
        if (roles.count(code)) {
          out.push_back(Value::PooledStr(&strings_, strings_.Intern(sym)));
        }
      }
      return out;
    }
    return Status::InvalidArgument("'" + attr + "' is not a multi-valued DVA");
  }
  if (ref.attr->is_subrole) {
    SIM_ASSIGN_OR_RETURN(std::set<uint16_t> roles, RolesOf(s, cls));
    std::vector<Value> out;
    for (const auto& sym : ref.attr->type.symbols) {
      SIM_ASSIGN_OR_RETURN(uint16_t code, phys_->ClassCode(sym));
      if (roles.count(code)) {
        out.push_back(Value::PooledStr(&strings_, strings_.Intern(sym)));
      }
    }
    return out;
  }
  SIM_ASSIGN_OR_RETURN(int mv_idx,
                       phys_->MvDvaOf(ref.owner->name, ref.attr->name));
  const MvDvaPhys& mv = phys_->mvdvas()[mv_idx];
  if (mv.embedded) {
    std::vector<Value> fields;
    SIM_RETURN_IF_ERROR(units_[ref.unit]->Read(s, nullptr, &fields));
    return DecodeEmbeddedMv(fields[ref.field]);
  }
  MutexLock l(mv_mu_);
  SIM_ASSIGN_OR_RETURN(std::vector<SurrogateId> packed,
                       mv_index_->Get(mv.id, s));
  std::vector<Value> out;
  for (uint64_t p : packed) {
    std::string data;
    SIM_RETURN_IF_ERROR(mv_file_->Get(UnpackRecordId(p), &data));
    uint16_t rt;
    std::vector<Value> rec;
    SIM_RETURN_IF_ERROR(DecodeRecord(data, &rt, &rec));
    if (rec.size() != 2) return Status::Internal("corrupt MV DVA record");
    out.push_back(rec[1]);
  }
  return out;
}

Status LucMapper::AddMvValue(SurrogateId s, const std::string& cls,
                             const std::string& attr, const Value& v,
                             Transaction* txn) {
  ++mutation_count_;
  ++stats_.mv_changes;
  SIM_ASSIGN_OR_RETURN(FieldRef ref, Resolve(cls, attr, false));
  if (!ref.attr->is_dva() || !ref.attr->mv || ref.attr->is_subrole) {
    return Status::InvalidArgument("'" + attr + "' is not a multi-valued DVA");
  }
  SIM_ASSIGN_OR_RETURN(bool has_role, HasRole(s, ref.owner->name));
  if (!has_role) {
    return Status::ConstraintViolation("entity does not have role '" +
                                       ref.owner->name + "'");
  }
  SIM_ASSIGN_OR_RETURN(Value coerced, ref.attr->type.CoerceValue(v));
  if (coerced.is_null()) {
    return Status::InvalidArgument("null cannot be a member of MV DVA '" +
                                   attr + "'");
  }
  SIM_ASSIGN_OR_RETURN(std::vector<Value> current, GetMvValues(s, cls, attr));
  if (ref.attr->distinct) {
    for (const Value& cur : current) {
      if (cur.StrictEquals(coerced)) return Status::Ok();  // set semantics
    }
  }
  if (ref.attr->max_count >= 0 &&
      static_cast<int>(current.size()) >= ref.attr->max_count) {
    return Status::ConstraintViolation(
        "MV DVA '" + attr + "' exceeds MAX " +
        std::to_string(ref.attr->max_count));
  }
  SIM_ASSIGN_OR_RETURN(int mv_idx,
                       phys_->MvDvaOf(ref.owner->name, ref.attr->name));
  const MvDvaPhys& mv = phys_->mvdvas()[mv_idx];
  if (mv.embedded) {
    current.push_back(coerced);
    return WriteUnitField(ref.unit, s, ref.field,
                          Value::Str(EncodeEmbeddedMv(current)), txn);
  }
  std::string rec = EncodeRecord(static_cast<uint16_t>(mv.id),
                                 {Value::Surrogate(s), coerced});
  RecordId rid;
  {
    MutexLock l(mv_mu_);
    SIM_ASSIGN_OR_RETURN(rid, mv_file_->Insert(rec));
    SIM_RETURN_IF_ERROR(mv_index_->Add(mv.id, s, PackRecordId(rid)));
  }
  if (txn != nullptr) {
    uint32_t mv_id = mv.id;
    txn->LogUndo([this, mv_id, s, rid]() {
      MutexLock l(mv_mu_);
      SIM_RETURN_IF_ERROR(mv_file_->Delete(rid));
      return mv_index_->Remove(mv_id, s, PackRecordId(rid));
    });
  }
  return Status::Ok();
}

Status LucMapper::RemoveMvValue(SurrogateId s, const std::string& cls,
                                const std::string& attr, const Value& v,
                                Transaction* txn) {
  ++mutation_count_;
  ++stats_.mv_changes;
  SIM_ASSIGN_OR_RETURN(FieldRef ref, Resolve(cls, attr, false));
  if (!ref.attr->is_dva() || !ref.attr->mv || ref.attr->is_subrole) {
    return Status::InvalidArgument("'" + attr + "' is not a multi-valued DVA");
  }
  SIM_ASSIGN_OR_RETURN(Value coerced, ref.attr->type.CoerceValue(v));
  SIM_ASSIGN_OR_RETURN(int mv_idx,
                       phys_->MvDvaOf(ref.owner->name, ref.attr->name));
  const MvDvaPhys& mv = phys_->mvdvas()[mv_idx];
  if (mv.embedded) {
    SIM_ASSIGN_OR_RETURN(std::vector<Value> current,
                         GetMvValues(s, cls, attr));
    for (size_t i = 0; i < current.size(); ++i) {
      if (current[i].StrictEquals(coerced)) {
        current.erase(current.begin() + i);
        return WriteUnitField(ref.unit, s, ref.field,
                              Value::Str(EncodeEmbeddedMv(current)), txn);
      }
    }
    return Status::NotFound("value not present in MV DVA '" + attr + "'");
  }
  MutexLock l(mv_mu_);
  SIM_ASSIGN_OR_RETURN(std::vector<SurrogateId> packed,
                       mv_index_->Get(mv.id, s));
  for (uint64_t p : packed) {
    RecordId rid = UnpackRecordId(p);
    std::string data;
    SIM_RETURN_IF_ERROR(mv_file_->Get(rid, &data));
    uint16_t rt;
    std::vector<Value> rec;
    SIM_RETURN_IF_ERROR(DecodeRecord(data, &rt, &rec));
    if (rec.size() == 2 && rec[1].StrictEquals(coerced)) {
      SIM_RETURN_IF_ERROR(mv_file_->Delete(rid));
      SIM_RETURN_IF_ERROR(mv_index_->Remove(mv.id, s, p));
      if (txn != nullptr) {
        uint32_t mv_id = mv.id;
        Value val = coerced;
        txn->LogUndo([this, mv_id, s, val]() {
          MutexLock undo_lock(mv_mu_);
          std::string rec2 = EncodeRecord(static_cast<uint16_t>(mv_id),
                                          {Value::Surrogate(s), val});
          SIM_ASSIGN_OR_RETURN(RecordId new_rid, mv_file_->Insert(rec2));
          return mv_index_->Add(mv_id, s, PackRecordId(new_rid));
        });
      }
      return Status::Ok();
    }
  }
  return Status::NotFound("value not present in MV DVA '" + attr + "'");
}

Result<LucMapper::EvaSide> LucMapper::ResolveEva(const std::string& cls,
                                                 const std::string& attr)
    const {
  SIM_ASSIGN_OR_RETURN(DirectoryManager::ResolvedAttr ra,
                       dir_->ResolveAttribute(cls, attr));
  if (!ra.attr->is_eva()) {
    return Status::InvalidArgument("'" + attr + "' is not an EVA");
  }
  EvaSide side;
  SIM_ASSIGN_OR_RETURN(
      side.eva_idx,
      phys_->EvaOf(ra.owner->name, ra.attr->name, &side.owner_is_a));
  side.eva = &phys_->evas()[side.eva_idx];
  side.owner_mv = ra.attr->mv;
  side.owner_max = ra.attr->max_count;
  side.distinct = side.eva->distinct;
  return side;
}

Status LucMapper::StructAddPair(const EvaSide& side, SurrogateId owner,
                                SurrogateId target) {
  const EvaPhys& eva = *side.eva;
  SurrogateId a = side.owner_is_a ? owner : target;
  SurrogateId b = side.owner_is_a ? target : owner;
  switch (eva.mapping) {
    case EvaMapping::kCommonStructure:
    case EvaMapping::kPrivateStructure: {
      RelKeyedStore* fwd = common_fwd_.get();
      RelKeyedStore* inv = common_inv_.get();
      if (eva.mapping == EvaMapping::kPrivateStructure) {
        auto& pair = private_structs_.at(side.eva_idx);
        fwd = pair.first.get();
        inv = pair.second.get();
      }
      if (eva.symmetric) {
        SIM_RETURN_IF_ERROR(fwd->Add(eva.rel_id, a, b));
        if (a != b) SIM_RETURN_IF_ERROR(fwd->Add(eva.rel_id, b, a));
      } else {
        SIM_RETURN_IF_ERROR(fwd->Add(eva.rel_id, a, b));
        SIM_RETURN_IF_ERROR(inv->Add(eva.rel_id, b, a));
      }
      break;
    }
    case EvaMapping::kForeignKey: {
      if (!eva.a_mv) {
        SIM_ASSIGN_OR_RETURN(FieldRef ref,
                             Resolve(eva.class_a, eva.attr_a, true));
        SIM_RETURN_IF_ERROR(WriteUnitField(ref.unit, a, ref.field,
                                           Value::Surrogate(b), nullptr));
      }
      if (!eva.b_mv && !eva.symmetric) {
        SIM_ASSIGN_OR_RETURN(FieldRef ref,
                             Resolve(eva.class_b, eva.attr_b, true));
        SIM_RETURN_IF_ERROR(WriteUnitField(ref.unit, b, ref.field,
                                           Value::Surrogate(a), nullptr));
      } else if (eva.symmetric && a != b) {
        SIM_ASSIGN_OR_RETURN(FieldRef ref,
                             Resolve(eva.class_a, eva.attr_a, true));
        SIM_RETURN_IF_ERROR(WriteUnitField(ref.unit, b, ref.field,
                                           Value::Surrogate(a), nullptr));
      }
      // A multi-valued side traverses through the inverse index.
      if (eva.a_mv) SIM_RETURN_IF_ERROR(fk_inv_->Add(eva.rel_id, a, b));
      if (eva.b_mv) SIM_RETURN_IF_ERROR(fk_inv_->Add(eva.rel_id, b, a));
      break;
    }
  }
  {
    MutexLock l(counts_mu_);
    ++eva_pair_counts_[side.eva_idx];
  }
  return Status::Ok();
}

Status LucMapper::StructRemovePair(const EvaSide& side, SurrogateId owner,
                                   SurrogateId target) {
  const EvaPhys& eva = *side.eva;
  SurrogateId a = side.owner_is_a ? owner : target;
  SurrogateId b = side.owner_is_a ? target : owner;
  switch (eva.mapping) {
    case EvaMapping::kCommonStructure:
    case EvaMapping::kPrivateStructure: {
      RelKeyedStore* fwd = common_fwd_.get();
      RelKeyedStore* inv = common_inv_.get();
      if (eva.mapping == EvaMapping::kPrivateStructure) {
        auto& pair = private_structs_.at(side.eva_idx);
        fwd = pair.first.get();
        inv = pair.second.get();
      }
      if (eva.symmetric) {
        SIM_RETURN_IF_ERROR(fwd->Remove(eva.rel_id, a, b));
        if (a != b) SIM_RETURN_IF_ERROR(fwd->Remove(eva.rel_id, b, a));
      } else {
        SIM_RETURN_IF_ERROR(fwd->Remove(eva.rel_id, a, b));
        SIM_RETURN_IF_ERROR(inv->Remove(eva.rel_id, b, a));
      }
      break;
    }
    case EvaMapping::kForeignKey: {
      if (!eva.a_mv) {
        SIM_ASSIGN_OR_RETURN(FieldRef ref,
                             Resolve(eva.class_a, eva.attr_a, true));
        SIM_RETURN_IF_ERROR(
            WriteUnitField(ref.unit, a, ref.field, Value::Null(), nullptr));
      }
      if (!eva.b_mv && !eva.symmetric) {
        SIM_ASSIGN_OR_RETURN(FieldRef ref,
                             Resolve(eva.class_b, eva.attr_b, true));
        SIM_RETURN_IF_ERROR(
            WriteUnitField(ref.unit, b, ref.field, Value::Null(), nullptr));
      } else if (eva.symmetric && a != b) {
        SIM_ASSIGN_OR_RETURN(FieldRef ref,
                             Resolve(eva.class_a, eva.attr_a, true));
        SIM_RETURN_IF_ERROR(
            WriteUnitField(ref.unit, b, ref.field, Value::Null(), nullptr));
      }
      if (eva.a_mv) SIM_RETURN_IF_ERROR(fk_inv_->Remove(eva.rel_id, a, b));
      if (eva.b_mv) SIM_RETURN_IF_ERROR(fk_inv_->Remove(eva.rel_id, b, a));
      break;
    }
  }
  {
    MutexLock l(counts_mu_);
    if (eva_pair_counts_[side.eva_idx] > 0) --eva_pair_counts_[side.eva_idx];
  }
  return Status::Ok();
}

Result<std::vector<SurrogateId>> LucMapper::GetEvaTargets(
    const std::string& cls, const std::string& attr, SurrogateId owner) {
  std::vector<SurrogateId> targets;
  SIM_RETURN_IF_ERROR(GetEvaTargetsInto(cls, attr, owner, &targets));
  return targets;
}

Status LucMapper::GetEvaTargetsInto(const std::string& cls,
                                    const std::string& attr,
                                    SurrogateId owner,
                                    std::vector<SurrogateId>* out) {
  SIM_ASSIGN_OR_RETURN(DirectoryManager::ResolvedAttr queried,
                       dir_->ResolveAttribute(cls, attr));
  SIM_RETURN_IF_ERROR(GetEvaTargetsUnorderedInto(cls, attr, owner, out));
  if (!queried.attr->order_by_attr.empty()) {
    SIM_RETURN_IF_ERROR(SortByAttribute(out, queried.attr->range_class,
                                        queried.attr->order_by_attr,
                                        queried.attr->order_desc));
  }
  return Status::Ok();
}

Result<std::vector<SurrogateId>> LucMapper::GetEvaTargetsUnordered(
    const std::string& cls, const std::string& attr, SurrogateId owner) {
  std::vector<SurrogateId> out;
  SIM_RETURN_IF_ERROR(GetEvaTargetsUnorderedInto(cls, attr, owner, &out));
  return out;
}

Status LucMapper::GetEvaTargetsUnorderedInto(const std::string& cls,
                                             const std::string& attr,
                                             SurrogateId owner,
                                             std::vector<SurrogateId>* out) {
  SIM_ASSIGN_OR_RETURN(EvaSide side, ResolveEva(cls, attr));
  const EvaPhys& eva = *side.eva;
  switch (eva.mapping) {
    case EvaMapping::kCommonStructure:
    case EvaMapping::kPrivateStructure: {
      RelKeyedStore* fwd = common_fwd_.get();
      RelKeyedStore* inv = common_inv_.get();
      if (eva.mapping == EvaMapping::kPrivateStructure) {
        auto& pair = private_structs_.at(side.eva_idx);
        fwd = pair.first.get();
        inv = pair.second.get();
      }
      if (eva.symmetric || side.owner_is_a) {
        return fwd->GetInto(eva.rel_id, owner, out);
      }
      return inv->GetInto(eva.rel_id, owner, out);
    }
    case EvaMapping::kForeignKey: {
      bool owner_single = side.owner_is_a ? !eva.a_mv : !eva.b_mv;
      if (owner_single) {
        const std::string& c = side.owner_is_a ? eva.class_a : eva.class_b;
        const std::string& at = side.owner_is_a ? eva.attr_a : eva.attr_b;
        SIM_ASSIGN_OR_RETURN(FieldRef ref, Resolve(c, at, true));
        Value v;
        SIM_RETURN_IF_ERROR(units_[ref.unit]->ReadField(owner, ref.field, &v));
        out->clear();
        if (!v.is_null()) out->push_back(v.surrogate_value());
        return Status::Ok();
      }
      return fk_inv_->GetInto(eva.rel_id, owner, out);
    }
  }
  return Status::Internal("unhandled EVA mapping");
}

Status LucMapper::AddEvaPair(const std::string& cls, const std::string& attr,
                             SurrogateId owner, SurrogateId target,
                             Transaction* txn) {
  ++mutation_count_;
  ++stats_.eva_changes;
  SIM_ASSIGN_OR_RETURN(EvaSide side, ResolveEva(cls, attr));
  const EvaPhys& eva = *side.eva;
  const std::string& owner_class = side.owner_is_a ? eva.class_a : eva.class_b;
  const std::string& target_class = side.owner_is_a ? eva.class_b : eva.class_a;
  const std::string& target_attr = side.owner_is_a ? eva.attr_b : eva.attr_a;

  SIM_ASSIGN_OR_RETURN(bool owner_ok, HasRole(owner, owner_class));
  if (!owner_ok) {
    return Status::ConstraintViolation(
        "owner entity lacks role '" + owner_class + "' for EVA '" + attr + "'");
  }
  SIM_ASSIGN_OR_RETURN(bool target_ok, HasRole(target, target_class));
  if (!target_ok) {
    return Status::ConstraintViolation(
        "target entity lacks range role '" + target_class + "' for EVA '" +
        attr + "'");
  }

  SIM_ASSIGN_OR_RETURN(std::vector<SurrogateId> current,
                       GetEvaTargets(cls, attr, owner));
  if (side.distinct || eva.one_to_one()) {
    if (std::find(current.begin(), current.end(), target) != current.end()) {
      return Status::Ok();  // set semantics: already related
    }
  }
  if (!side.owner_mv && !current.empty()) {
    return Status::ConstraintViolation(
        "single-valued EVA '" + attr + "' already has a value");
  }
  if (side.owner_max >= 0 &&
      static_cast<int>(current.size()) >= side.owner_max) {
    return Status::ConstraintViolation("EVA '" + attr + "' exceeds MAX " +
                                       std::to_string(side.owner_max));
  }
  // The inverse side also gains an instance; enforce its options too.
  if (!eva.symmetric) {
    SIM_ASSIGN_OR_RETURN(std::vector<SurrogateId> inv_current,
                         GetEvaTargets(target_class, target_attr, target));
    SIM_ASSIGN_OR_RETURN(DirectoryManager::ResolvedAttr inv_ra,
                         dir_->ResolveAttribute(target_class, target_attr));
    if (!inv_ra.attr->mv && !inv_current.empty()) {
      return Status::ConstraintViolation(
          "inverse EVA '" + target_attr + "' of '" + attr +
          "' is single-valued and already set on the target");
    }
    if (inv_ra.attr->max_count >= 0 &&
        static_cast<int>(inv_current.size()) >= inv_ra.attr->max_count) {
      return Status::ConstraintViolation(
          "inverse EVA '" + target_attr + "' exceeds MAX " +
          std::to_string(inv_ra.attr->max_count));
    }
  }

  SIM_RETURN_IF_ERROR(StructAddPair(side, owner, target));
  if (txn != nullptr) {
    EvaSide side_copy = side;
    txn->LogUndo([this, side_copy, owner, target]() {
      return StructRemovePair(side_copy, owner, target);
    });
  }
  return Status::Ok();
}

Status LucMapper::RemoveEvaPair(const std::string& cls,
                                const std::string& attr, SurrogateId owner,
                                SurrogateId target, Transaction* txn) {
  ++mutation_count_;
  ++stats_.eva_changes;
  SIM_ASSIGN_OR_RETURN(EvaSide side, ResolveEva(cls, attr));
  SIM_ASSIGN_OR_RETURN(std::vector<SurrogateId> current,
                       GetEvaTargets(cls, attr, owner));
  if (std::find(current.begin(), current.end(), target) == current.end()) {
    return Status::NotFound("relationship instance does not exist");
  }
  SIM_RETURN_IF_ERROR(StructRemovePair(side, owner, target));
  if (txn != nullptr) {
    EvaSide side_copy = side;
    txn->LogUndo([this, side_copy, owner, target]() {
      return StructAddPair(side_copy, owner, target);
    });
  }
  return Status::Ok();
}

Status LucMapper::RemoveAllEvaPairs(const std::string& cls,
                                    const std::string& attr,
                                    SurrogateId owner, Transaction* txn) {
  ++mutation_count_;
  ++stats_.eva_changes;
  SIM_ASSIGN_OR_RETURN(std::vector<SurrogateId> targets,
                       GetEvaTargets(cls, attr, owner));
  for (SurrogateId t : targets) {
    SIM_RETURN_IF_ERROR(RemoveEvaPair(cls, attr, owner, t, txn));
  }
  return Status::Ok();
}

Result<std::optional<SurrogateId>> LucMapper::LookupByIndex(
    const std::string& cls, const std::string& attr, const Value& v) {
  SIM_ASSIGN_OR_RETURN(DirectoryManager::ResolvedAttr ra,
                       dir_->ResolveAttribute(cls, attr));
  int idx = phys_->IndexOf(ra.owner->name, ra.attr->name);
  if (idx < 0) {
    return Status::NotFound("no index on '" + cls + "." + attr + "'");
  }
  SIM_ASSIGN_OR_RETURN(Value coerced, ra.attr->type.CoerceValue(v));
  if (coerced.is_null()) return std::optional<SurrogateId>();
  SIM_ASSIGN_OR_RETURN(std::string key, EncodeIndexKey(coerced));
  SIM_ASSIGN_OR_RETURN(std::optional<uint64_t> found,
                       sec_indexes_[idx]->GetFirst(key));
  if (!found.has_value()) return std::optional<SurrogateId>();
  return std::optional<SurrogateId>(*found);
}

bool LucMapper::HasIndex(const std::string& cls,
                         const std::string& attr) const {
  Result<DirectoryManager::ResolvedAttr> ra =
      dir_->ResolveAttribute(cls, attr);
  if (!ra.ok()) return false;
  return phys_->IndexOf(ra->owner->name, ra->attr->name) >= 0;
}

std::vector<PageId> LucMapper::HeapPages() const {
  std::vector<PageId> out;
  for (const std::unique_ptr<UnitStore>& unit : units_) {
    const std::vector<PageId>& pages = unit->heap_pages();
    out.insert(out.end(), pages.begin(), pages.end());
  }
  if (mv_file_ != nullptr) {
    MutexLock l(mv_mu_);
    out.insert(out.end(), mv_file_->pages().begin(), mv_file_->pages().end());
  }
  return out;
}

Result<std::vector<SurrogateId>> LucMapper::ExtentOf(const std::string& cls) {
  SIM_ASSIGN_OR_RETURN(uint16_t code, phys_->ClassCode(cls));
  SIM_ASSIGN_OR_RETURN(int u, phys_->UnitOf(cls));
  std::vector<SurrogateId> out;
  for (UnitStore::Cursor cur = units_[u]->Scan(); cur.Valid();) {
    SIM_RETURN_IF_ERROR(cur.status());
    if (cur.HasRoleCode(code)) out.push_back(cur.surrogate());
    SIM_RETURN_IF_ERROR(cur.Next());
  }
  // System-maintained class ordering (§6 extension).
  SIM_ASSIGN_OR_RETURN(const ClassDef* def, dir_->FindClass(cls));
  if (!def->order_by_attr.empty()) {
    SIM_RETURN_IF_ERROR(
        SortByAttribute(&out, def->name, def->order_by_attr, def->order_desc));
  }
  return out;
}

Status LucMapper::SortByAttribute(std::vector<SurrogateId>* ids,
                                  const std::string& cls,
                                  const std::string& attr, bool desc) {
  std::vector<std::pair<Value, SurrogateId>> keyed;
  keyed.reserve(ids->size());
  for (SurrogateId s : *ids) {
    SIM_ASSIGN_OR_RETURN(Value v, GetField(s, cls, attr));
    keyed.emplace_back(std::move(v), s);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [desc](const auto& a, const auto& b) {
                     const Value& va = a.first;
                     const Value& vb = b.first;
                     if (va.is_null() && vb.is_null()) return a.second < b.second;
                     if (va.is_null()) return false;  // nulls last
                     if (vb.is_null()) return true;
                     Result<int> c = va.Compare(vb);
                     int cv = c.ok() ? *c : 0;
                     if (cv != 0) return desc ? cv > 0 : cv < 0;
                     return a.second < b.second;
                   });
  ids->clear();
  for (auto& [v, s] : keyed) ids->push_back(s);
  return Status::Ok();
}

Result<LucMapper::TargetCursor> LucMapper::OpenEvaCursor(
    const std::string& cls, const std::string& attr, SurrogateId owner) {
  TargetCursor cursor;
  SIM_RETURN_IF_ERROR(ReopenEvaCursor(cls, attr, owner, &cursor));
  return cursor;
}

Status LucMapper::ReopenEvaCursor(const std::string& cls,
                                  const std::string& attr, SurrogateId owner,
                                  TargetCursor* cursor) {
  SIM_ASSIGN_OR_RETURN(DirectoryManager::ResolvedAttr ra,
                       dir_->ResolveAttribute(cls, attr));
  if (!ra.attr->is_eva()) {
    return Status::InvalidArgument("'" + attr + "' is not an EVA");
  }
  cursor->mapper_ = this;
  cursor->range_class_ = ra.attr->range_class;
  cursor->index_ = 0;
  return GetEvaTargetsInto(cls, attr, owner, &cursor->targets_);
}

Result<std::vector<Value>> LucMapper::TargetCursor::ReadRecord() {
  if (!Valid()) return Status::NotFound("cursor exhausted");
  SIM_ASSIGN_OR_RETURN(int u, mapper_->phys().UnitOf(range_class_));
  std::vector<Value> fields;
  SIM_RETURN_IF_ERROR(mapper_->units_[u]->Read(target(), nullptr, &fields));
  return fields;
}

Result<LucMapper::ExtentCursor> LucMapper::OpenExtentCursor(
    const std::string& cls) {
  SIM_ASSIGN_OR_RETURN(uint16_t code, phys_->ClassCode(cls));
  SIM_ASSIGN_OR_RETURN(int u, phys_->UnitOf(cls));
  ExtentCursor cursor(units_[u]->Scan(), code);
  cursor.SkipNonMembers();
  return cursor;
}

void LucMapper::ExtentCursor::SkipNonMembers() {
  while (cursor_.Valid() && !cursor_.HasRoleCode(code_)) {
    if (!cursor_.Next().ok()) return;
  }
}

Status LucMapper::ExtentCursor::Next() {
  SIM_RETURN_IF_ERROR(cursor_.Next());
  SkipNonMembers();
  return cursor_.status();
}

Result<uint64_t> LucMapper::ExtentCount(const std::string& cls) const {
  SIM_ASSIGN_OR_RETURN(uint16_t code, phys_->ClassCode(cls));
  MutexLock l(counts_mu_);
  return extent_counts_[code];
}

Result<bool> LucMapper::ExtentScanInSurrogateOrder(
    const std::string& cls) const {
  SIM_ASSIGN_OR_RETURN(int u, phys_->UnitOf(cls));
  return units_[u]->scan_in_surrogate_order();
}

Status LucMapper::CheckRequired(SurrogateId s, const std::string& cls) {
  SIM_ASSIGN_OR_RETURN(std::vector<DirectoryManager::ResolvedAttr> attrs,
                       dir_->AllAttributes(cls));
  for (const auto& ra : attrs) {
    if (!ra.attr->required || ra.attr->is_subrole) continue;
    // Only roles the entity actually has are checked.
    SIM_ASSIGN_OR_RETURN(bool has_role, HasRole(s, ra.owner->name));
    if (!has_role) continue;
    bool present = false;
    if (ra.attr->is_eva()) {
      SIM_ASSIGN_OR_RETURN(std::vector<SurrogateId> targets,
                           GetEvaTargets(ra.owner->name, ra.attr->name, s));
      present = !targets.empty();
    } else if (ra.attr->mv) {
      SIM_ASSIGN_OR_RETURN(std::vector<Value> values,
                           GetMvValues(s, ra.owner->name, ra.attr->name));
      present = !values.empty();
    } else {
      SIM_ASSIGN_OR_RETURN(Value v, GetField(s, ra.owner->name, ra.attr->name));
      present = !v.is_null();
    }
    if (!present) {
      return Status::ConstraintViolation(
          "required attribute '" + ra.owner->name + "." + ra.attr->name +
          "' is missing on entity " + std::to_string(s));
    }
  }
  return Status::Ok();
}

double LucMapper::AvgEvaFanout(int eva_idx, bool from_a) const {
  const EvaPhys& eva = phys_->evas()[eva_idx];
  const std::string& owner_class = from_a ? eva.class_a : eva.class_b;
  Result<uint16_t> code = phys_->ClassCode(owner_class);
  if (!code.ok()) return 1.0;
  MutexLock l(counts_mu_);
  uint64_t owners = extent_counts_[*code];
  if (owners == 0) return 1.0;
  return static_cast<double>(eva_pair_counts_[eva_idx]) /
         static_cast<double>(owners);
}

uint64_t LucMapper::EvaPairCount(int eva_idx) const {
  MutexLock l(counts_mu_);
  return eva_pair_counts_[eva_idx];
}

}  // namespace sim
