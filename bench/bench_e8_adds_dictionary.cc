// E8 — §6 ADDS dictionary scale. The paper's only quantitative datapoint:
// the ADDS data dictionary is itself a SIM database with 13 base classes,
// 209 subclasses, 39 EVA-inverse pairs, 530 DVAs and one 5-level-deep
// hierarchy. This bench generates a schema with exactly that shape,
// compiles it through the full DDL pipeline (parse -> catalog -> finalize
// -> LUC translation), and runs catalog-resolution and query workloads
// over it. Counters echo the §6 statistics for EXPERIMENTS.md.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "api/database.h"

namespace {

constexpr int kBases = 13;
constexpr int kSubs = 209;
constexpr int kDvas = 530;
constexpr int kEvaPairs = 39;

std::string GenerateAddsSchema() {
  std::string ddl;
  int total_classes = kBases + kSubs;
  int dva_count = 0;
  auto emit_dvas = [&](std::string* body, int owner_index) {
    int want = (owner_index * kDvas) / total_classes;
    int n = want + 3 > dva_count ? (want + 3 - dva_count) : 0;
    for (int i = 0; i < n && dva_count < kDvas; ++i, ++dva_count) {
      *body += "  dva-" + std::to_string(dva_count) + ": string[20];\n";
    }
  };
  std::vector<std::string> eva_decls(kBases);
  for (int e = 0; e < kEvaPairs; ++e) {
    int from = e % kBases;
    int to = (e + 1) % kBases;
    eva_decls[from] += "  to-" + std::to_string(e) + ": base-" +
                       std::to_string(to) + " inverse is from-" +
                       std::to_string(e) + " mv;\n";
  }
  int class_index = 0;
  int subs_made = 0;
  for (int b = 0; b < kBases; ++b) {
    std::string body = eva_decls[b];
    emit_dvas(&body, class_index++);
    if (!body.empty()) body.pop_back();
    ddl += "Class base-" + std::to_string(b) + " (\n" + body + ");\n";
    int subs_here = (b == kBases - 1) ? (kSubs - subs_made)
                                      : (kSubs / kBases);
    std::string parent = "base-" + std::to_string(b);
    for (int s = 0; s < subs_here; ++s, ++subs_made) {
      std::string name = "sub-" + std::to_string(b) + "-" + std::to_string(s);
      std::string super = parent;
      if (b == 0 && s > 0 && s < 4) super = "sub-0-" + std::to_string(s - 1);
      std::string sbody;
      emit_dvas(&sbody, class_index++);
      if (!sbody.empty()) sbody.pop_back();
      ddl += "Subclass " + name + " of " + super + " (\n" + sbody + ");\n";
    }
  }
  return ddl;
}

const std::string& Schema() {
  static const std::string ddl = GenerateAddsSchema();
  return ddl;
}

void BM_CompileAddsSchema(benchmark::State& state) {
  sim::DirectoryManager::SchemaStats stats;
  for (auto _ : state) {
    auto db = sim::Database::Open();
    if (!db.ok()) state.SkipWithError("open failed");
    sim::Status s = (*db)->ExecuteDdl(Schema());
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    stats = (*db)->catalog().ComputeStats();
    benchmark::DoNotOptimize(db);
  }
  state.counters["base_classes"] = stats.base_classes;
  state.counters["subclasses"] = stats.subclasses;
  state.counters["eva_pairs"] = stats.eva_inverse_pairs;
  state.counters["dvas"] = stats.dvas;
  state.counters["max_depth"] = stats.max_depth;
}
BENCHMARK(BM_CompileAddsSchema);

void BM_AttributeResolutionAtDepth5(benchmark::State& state) {
  auto db = sim::Database::Open();
  if (!db.ok() || !(*db)->ExecuteDdl(Schema()).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  // sub-0-3 sits at depth 5; resolve an attribute inherited from base-0.
  const sim::DirectoryManager& dir = (*db)->catalog();
  auto base_attrs = dir.FindClass("base-0");
  if (!base_attrs.ok() || (*base_attrs)->attributes.empty()) {
    state.SkipWithError("no attribute to resolve");
    return;
  }
  std::string attr;
  for (const auto& a : (*base_attrs)->attributes) {
    if (a.is_dva()) {
      attr = a.name;
      break;
    }
  }
  for (auto _ : state) {
    auto ra = dir.ResolveAttribute("sub-0-3", attr);
    if (!ra.ok()) state.SkipWithError(ra.status().ToString().c_str());
    benchmark::DoNotOptimize(ra);
  }
}
BENCHMARK(BM_AttributeResolutionAtDepth5);

void BM_QueryDictionaryData(benchmark::State& state) {
  auto db = sim::Database::Open();
  if (!db.ok() || !(*db)->ExecuteDdl(Schema()).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  // Populate the depth-5 family and query through 5 inheritance levels.
  auto mapper = (*db)->mapper();
  if (!mapper.ok()) {
    state.SkipWithError("no mapper");
    return;
  }
  for (int i = 0; i < 200; ++i) {
    auto s = (*mapper)->CreateEntity("sub-0-3", nullptr);
    if (!s.ok()) {
      state.SkipWithError("load failed");
      return;
    }
    (void)(*mapper)->SetField(*s, "base-0", "dva-0",
                              sim::Value::Str("v" + std::to_string(i)),
                              nullptr);
  }
  for (auto _ : state) {
    auto rs = (*db)->ExecuteQuery(
        "From sub-0-3 Retrieve dva-0 Where dva-0 like \"v1%\"");
    if (!rs.ok()) state.SkipWithError(rs.status().ToString().c_str());
    benchmark::DoNotOptimize(rs);
  }
}
BENCHMARK(BM_QueryDictionaryData);

}  // namespace

BENCHMARK_MAIN();
