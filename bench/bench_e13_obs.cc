// E13 — observability overhead. The obs layer promises a <1% tax on the
// hot path: statement counters and trace spans are per-statement (a few
// relaxed-atomic adds and two clock reads), never per-row, and the pool
// counters were already maintained before the layer existed. This bench
// re-runs the E11 pipeline workload three ways:
//   * obs off      — ObsOptions::enabled = false: no trace log, no
//                    statement counters, spans compile to pointer tests;
//   * obs on       — the default: spans + counters + latency histogram;
//   * obs on+sink  — NDJSON sink attached, the worst case (one formatted
//                    line per span, flushed).
// Compare obs_on against obs_off at the same row count for the headline
// overhead number (EXPERIMENTS.md E13).

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "api/database.h"

namespace {

std::unique_ptr<sim::Database> BuildE5(const sim::DatabaseOptions& options,
                                       int employees, int departments) {
  auto db_result = sim::Database::Open(options);
  if (!db_result.ok()) abort();
  auto db = std::move(*db_result);
  sim::Status s = db->ExecuteDdl(R"(
    Class Dept (
      dept-code: integer unique required;
      budget: integer );
    Class Emp (
      emp-name: string[20];
      works-in: dept inverse is staff );
  )");
  if (!s.ok()) abort();
  auto mapper = db->mapper();
  if (!mapper.ok()) abort();
  std::vector<sim::SurrogateId> depts;
  for (int d = 0; d < departments; ++d) {
    auto dept = (*mapper)->CreateEntity("dept", nullptr);
    if (!dept.ok()) abort();
    (void)(*mapper)->SetField(*dept, "dept", "dept-code", sim::Value::Int(d),
                              nullptr);
    (void)(*mapper)->SetField(*dept, "dept", "budget",
                              sim::Value::Int(1000 * d), nullptr);
    depts.push_back(*dept);
  }
  for (int e = 0; e < employees; ++e) {
    auto emp = (*mapper)->CreateEntity("emp", nullptr);
    if (!emp.ok()) abort();
    (void)(*mapper)->SetField(*emp, "emp", "emp-name",
                              sim::Value::Str("e" + std::to_string(e)),
                              nullptr);
    (void)(*mapper)->AddEvaPair("emp", "works-in", *emp, depts[e % departments],
                                nullptr);
  }
  return db;
}

constexpr const char* kQuery = "From Emp Retrieve emp-name, budget of works-in";

void RunWorkload(benchmark::State& state, const sim::DatabaseOptions& options,
                 const char* label) {
  auto db = BuildE5(options, static_cast<int>(state.range(0)), 10);
  uint64_t rows = 0;
  for (auto _ : state) {
    auto rs = db->ExecuteQuery(kQuery);
    if (!rs.ok()) state.SkipWithError(rs.status().ToString().c_str());
    rows = rs->rows.size();
    benchmark::DoNotOptimize(rs);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.SetLabel(label);
}

void BM_PipelineObsOff(benchmark::State& state) {
  sim::DatabaseOptions options;
  options.obs.enabled = false;
  RunWorkload(state, options, "obs off");
}
BENCHMARK(BM_PipelineObsOff)->Arg(100)->Arg(400)->Arg(1600)->ArgName("emps");

void BM_PipelineObsOn(benchmark::State& state) {
  sim::DatabaseOptions options;  // obs.enabled defaults to true
  RunWorkload(state, options, "obs on");
}
BENCHMARK(BM_PipelineObsOn)->Arg(100)->Arg(400)->Arg(1600)->ArgName("emps");

void BM_PipelineObsOnWithSink(benchmark::State& state) {
  sim::DatabaseOptions options;
  options.obs.trace_ndjson_path = "/tmp/simdb_bench_e13_trace.ndjson";
  RunWorkload(state, options, "obs on + NDJSON sink");
}
BENCHMARK(BM_PipelineObsOnWithSink)
    ->Arg(100)
    ->Arg(400)
    ->Arg(1600)
    ->ArgName("emps");

}  // namespace

BENCHMARK_MAIN();
