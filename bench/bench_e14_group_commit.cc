// E14 — group-commit durability pipeline. A commit is durable only after
// its WAL fsync; with N concurrent committers and fsync-per-commit, the
// device does N fsyncs for N commits even though one barrier after the
// last append would cover them all. The group-commit thread coalesces
// every ticket issued while the previous fsync was in flight into one
// batch: under load the fsync cost is amortized across the batch, so
// commits/sec scales with the device's append bandwidth instead of its
// sync latency. This bench drives the WAL directly (no query layer) with
// 1..8 committer threads, each iteration appending one page image and
// committing it, and compares fsync-per-commit against the group-commit
// pipeline. Headline number (EXPERIMENTS.md E14): items_per_second at
// 8 threads, group vs per-commit.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "storage/page.h"
#include "storage/wal.h"

namespace {

std::string WalPath() {
  // Keep the file on the real filesystem (the repo build dir, not tmpfs):
  // group commit's advantage is amortizing genuine fsync barriers.
  return "bench_e14_scratch.wal";
}

std::unique_ptr<sim::WriteAheadLog> g_wal;

void Setup(bool group_commit) {
  std::remove(WalPath().c_str());
  auto wal = sim::WriteAheadLog::Open(WalPath());
  if (!wal.ok()) abort();
  g_wal = std::move(*wal);
  if (group_commit) g_wal->StartGroupCommit(nullptr);
}

void Teardown(benchmark::State& state) {
  state.counters["commits"] = static_cast<double>(g_wal->stats().commits);
  state.counters["batches"] =
      static_cast<double>(g_wal->stats().group_commit_batches);
  g_wal.reset();
  std::remove(WalPath().c_str());
}

void RunCommitters(benchmark::State& state, bool group_commit) {
  if (state.thread_index() == 0) Setup(group_commit);
  char page[sim::kPageSize] = {};
  std::memset(page + sim::kPageDataStart, 0x5A + state.thread_index(), 64);
  sim::StampPageChecksum(page);
  const sim::PageId page_id =
      static_cast<sim::PageId>(state.thread_index());
  for (auto _ : state) {
    if (!g_wal->AppendPageImage(page_id, page).ok()) {
      state.SkipWithError("append failed");
      break;
    }
    if (!g_wal->AppendCommit().ok()) {
      state.SkipWithError("commit failed");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) Teardown(state);
}

void BM_CommitPerFsync(benchmark::State& state) {
  RunCommitters(state, /*group_commit=*/false);
}

void BM_GroupCommit(benchmark::State& state) {
  RunCommitters(state, /*group_commit=*/true);
}

BENCHMARK(BM_CommitPerFsync)->Threads(1)->Threads(4)->Threads(8)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GroupCommit)->Threads(1)->Threads(4)->Threads(8)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
