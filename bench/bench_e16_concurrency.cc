// E16 — concurrent statements through one Database. Before the lock
// manager, Database required external synchronization: every caller
// wrapped statements in one big mutex, so reader latency included every
// other session's statements and a writer's fsync window. Now readers
// take shared class-extent locks and writers exclusive ones, so the only
// wait a reader ever makes is for an in-flight commit on the class it
// scans — and N readers make that wait *together* instead of queueing.
//
// This host has a single CPU, so the benches measure latency overlap,
// not parallel compute (the same regime as E14: the bottleneck is the
// WAL fsync, not cycles):
//   * BM_ReadersUnderWriteTraffic — 1 vs 4 reader threads issuing scan
//     statements against a class a background writer keeps committing
//     into (file-backed WAL, group commit on). A writer commit holds its
//     exclusive lock through the fsync (strict two-phase locking), so
//     each reader statement waits out the commit window; with 4 readers
//     those waits overlap and aggregate statement throughput scales.
//     Headline (EXPERIMENTS.md E16): items_per_second at 4 threads vs 1.
//   * BM_GroupCommitWriters — 8 writer threads inserting into eight
//     *distinct* classes (disjoint lock families, no contention), each
//     iteration one durable autocommit. End-to-end counterpart of E14's
//     WAL-direct BM_GroupCommit/threads:8: the lock manager must not
//     break commit batching, so commits/sec should stay in the same
//     regime as E14's fsync-per-commit baseline and the batches counter
//     should show many commits per barrier.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "api/database.h"

namespace {

// Keep scratch files on the real filesystem (not tmpfs): both benches
// exist to measure genuine fsync barriers.
constexpr char kReaderDbPath[] = "bench_e16_readers.db";
constexpr char kWriterDbPath[] = "bench_e16_writers.db";

void Nuke(const char* path) {
  std::remove(path);
  std::remove((std::string(path) + ".wal").c_str());
}

std::unique_ptr<sim::Database> OpenFileBacked(const char* path,
                                              std::string_view ddl) {
  Nuke(path);
  sim::DatabaseOptions options;
  options.file_path = path;
  options.group_commit = true;
  auto db = sim::Database::Open(options);
  if (!db.ok()) {
    fprintf(stderr, "e16: open failed: %s\n",
            db.status().ToString().c_str());
    abort();
  }
  sim::Status s = (*db)->ExecuteDdl(ddl);
  if (!s.ok()) {
    fprintf(stderr, "e16: ddl failed: %s\n", s.ToString().c_str());
    abort();
  }
  return std::move(*db);
}

// --- readers under write traffic -------------------------------------------

std::unique_ptr<sim::Database> g_reader_db;
std::thread g_writer;
std::atomic<bool> g_writer_stop{false};
std::atomic<uint64_t> g_writer_commits{0};

void StartReaderFixture() {
  g_reader_db = OpenFileBacked(kReaderDbPath, R"(
    Class Item (
      item-no: integer required;
      label: string[20] );
  )");
  for (int i = 0; i < 64; ++i) {
    std::string stmt = "Insert item (item-no := " + std::to_string(i) +
                       ", label := \"seed\").";
    auto n = g_reader_db->ExecuteUpdate(stmt);
    if (!n.ok()) abort();
  }
  // The write traffic readers contend with: one committed insert after
  // another into the class the readers scan. Each commit holds X(item)
  // through its fsync, so this pins the reader wait the bench measures.
  g_writer_stop.store(false);
  g_writer_commits.store(0);
  g_writer = std::thread([] {
    uint64_t i = 0;
    while (!g_writer_stop.load(std::memory_order_relaxed)) {
      std::string stmt = "Insert item (item-no := " +
                         std::to_string(1000 + i++) +
                         ", label := \"hot\").";
      if (!g_reader_db->ExecuteUpdate(stmt).ok()) break;
      g_writer_commits.fetch_add(1, std::memory_order_relaxed);
    }
  });
}

void StopReaderFixture(benchmark::State& state) {
  g_writer_stop.store(true);
  g_writer.join();
  state.counters["writer_commits"] =
      static_cast<double>(g_writer_commits.load());
  state.counters["lock_waits"] =
      static_cast<double>(g_reader_db->lock_stats().waits.value());
  g_reader_db.reset();
  Nuke(kReaderDbPath);
}

void BM_ReadersUnderWriteTraffic(benchmark::State& state) {
  if (state.thread_index() == 0) StartReaderFixture();
  uint64_t rows = 0;
  for (auto _ : state) {
    auto rs = g_reader_db->ExecuteQuery("From Item Retrieve item-no");
    if (!rs.ok()) {
      state.SkipWithError(rs.status().ToString().c_str());
      break;
    }
    rows += rs->rows.size();
  }
  benchmark::DoNotOptimize(rows);
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) StopReaderFixture(state);
}

BENCHMARK(BM_ReadersUnderWriteTraffic)->Threads(1)->Threads(4)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// --- eight writers, disjoint classes ---------------------------------------

std::unique_ptr<sim::Database> g_writer_db;

void BM_GroupCommitWriters(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_writer_db = OpenFileBacked(kWriterDbPath, R"(
      Class W0 ( v: integer );  Class W1 ( v: integer );
      Class W2 ( v: integer );  Class W3 ( v: integer );
      Class W4 ( v: integer );  Class W5 ( v: integer );
      Class W6 ( v: integer );  Class W7 ( v: integer );
    )");
  }
  const std::string stmt = "Insert w" + std::to_string(state.thread_index()) +
                           " (v := 1).";
  for (auto _ : state) {
    auto n = g_writer_db->ExecuteUpdate(stmt);
    if (!n.ok()) {
      state.SkipWithError(n.status().ToString().c_str());
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["lock_acquisitions"] = static_cast<double>(
        g_writer_db->lock_stats().acquisitions.value());
    g_writer_db.reset();
    Nuke(kWriterDbPath);
  }
}

BENCHMARK(BM_GroupCommitWriters)->Threads(1)->Threads(8)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
