// E12 — resource-governor overhead and abort latency. The governor puts a
// cooperative check in every operator Next() and a charge on every
// combination / delivered row, so the question is what an ordinary query
// pays for it. Measured on the E5 workload (each employee with their
// department's budget via a schema EVA):
//   * full drain, ungoverned — no limits set: the fast path skips all
//     charging (QueryContext::limited() is false);
//   * full drain, governed — generous deadline + combination / row / byte
//     budgets active, so every check and charge actually runs;
//   * abort latency — a deadline of 0 against a cross join whose full
//     enumeration would examine millions of combinations: the time
//     reported is how quickly an in-flight statement dies.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "api/database.h"

namespace {

std::unique_ptr<sim::Database> BuildE5(int employees, int departments,
                                       sim::QueryContext::Limits governor) {
  sim::DatabaseOptions options;
  options.governor = governor;
  auto db_result = sim::Database::Open(options);
  if (!db_result.ok()) abort();
  auto db = std::move(*db_result);
  sim::Status s = db->ExecuteDdl(R"(
    Class Dept (
      dept-code: integer unique required;
      budget: integer );
    Class Emp (
      emp-name: string[20];
      works-in: dept inverse is staff );
  )");
  if (!s.ok()) abort();
  auto mapper = db->mapper();
  if (!mapper.ok()) abort();
  std::vector<sim::SurrogateId> depts;
  for (int d = 0; d < departments; ++d) {
    auto dept = (*mapper)->CreateEntity("dept", nullptr);
    if (!dept.ok()) abort();
    (void)(*mapper)->SetField(*dept, "dept", "dept-code", sim::Value::Int(d),
                              nullptr);
    (void)(*mapper)->SetField(*dept, "dept", "budget",
                              sim::Value::Int(1000 * d), nullptr);
    depts.push_back(*dept);
  }
  for (int e = 0; e < employees; ++e) {
    auto emp = (*mapper)->CreateEntity("emp", nullptr);
    if (!emp.ok()) abort();
    (void)(*mapper)->SetField(*emp, "emp", "emp-name",
                              sim::Value::Str("e" + std::to_string(e)),
                              nullptr);
    (void)(*mapper)->AddEvaPair("emp", "works-in", *emp, depts[e % departments],
                                nullptr);
  }
  return db;
}

sim::QueryContext::Limits GenerousLimits() {
  sim::QueryContext::Limits limits;
  limits.deadline_ms = 60000;
  limits.max_combinations = 1ull << 40;
  limits.max_rows = 1ull << 30;
  limits.max_bytes = 1ull << 40;
  return limits;
}

constexpr const char* kQuery = "From Emp Retrieve emp-name, budget of works-in";

void Drain(benchmark::State& state, sim::Database* db) {
  uint64_t rows = 0;
  for (auto _ : state) {
    auto rs = db->ExecuteQuery(kQuery);
    if (!rs.ok()) state.SkipWithError(rs.status().ToString().c_str());
    rows = rs->rows.size();
    benchmark::DoNotOptimize(rs);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_DrainUngoverned(benchmark::State& state) {
  auto db = BuildE5(static_cast<int>(state.range(0)), 10,
                    sim::QueryContext::Limits());
  Drain(state, db.get());
  state.SetLabel("no limits: charging fast-path skipped");
}
BENCHMARK(BM_DrainUngoverned)->Arg(100)->Arg(400)->Arg(1600)->ArgName("emps");

void BM_DrainGoverned(benchmark::State& state) {
  auto db = BuildE5(static_cast<int>(state.range(0)), 10, GenerousLimits());
  Drain(state, db.get());
  state.SetLabel("deadline + budgets active on every check");
}
BENCHMARK(BM_DrainGoverned)->Arg(100)->Arg(400)->Arg(1600)->ArgName("emps");

void BM_DeadlineAbortLatency(benchmark::State& state) {
  // The cross join over `emps` employees would examine range^2 combinations
  // ungoverned; with deadline 0 each iteration measures how long a doomed
  // statement takes to die (parse + bind + plan + first governor check).
  sim::QueryContext::Limits limits;
  limits.deadline_ms = 0;
  auto db = BuildE5(static_cast<int>(state.range(0)), 10, limits);
  const std::string cross =
      "From Emp a, Emp b Retrieve emp-name of a Where "
      "budget of works-in of b < 0";
  for (auto _ : state) {
    auto rs = db->ExecuteQuery(cross);
    if (rs.ok()) state.SkipWithError("expected kDeadlineExceeded");
    benchmark::DoNotOptimize(rs);
  }
  state.SetLabel("deadline 0 kills the cross join");
}
BENCHMARK(BM_DeadlineAbortLatency)->Arg(1600)->ArgName("emps");

}  // namespace

BENCHMARK_MAIN();
