// E10 — §5.1 optimizer. Measures (a) cost-based strategy choice vs the
// naive perspective-order nested-loop execution, (b) optimization time
// itself (strategy enumeration is cheap), and (c) the order-preservation
// machinery: a reordered plan must pay a sort to restore perspective
// order, and the optimizer only picks it when the reordering still wins.

#include <benchmark/benchmark.h>

#include <string>

#include "workload.h"

namespace {

using sim::bench::BuildUniversity;
using sim::bench::WorkloadParams;

std::unique_ptr<sim::Database> Build(bool use_optimizer, int students) {
  WorkloadParams params;
  params.students = students;
  params.instructors = 50;
  sim::DatabaseOptions options;
  options.use_optimizer = use_optimizer;
  return BuildUniversity(params, options);
}

void BM_SelectiveQuery(benchmark::State& state) {
  bool optimized = state.range(0) != 0;
  int students = static_cast<int>(state.range(1));
  auto db = Build(optimized, students);
  std::string query =
      "From Person Retrieve Name Where soc-sec-no = 100000007";
  for (auto _ : state) {
    auto rs = db->ExecuteQuery(query);
    if (!rs.ok()) state.SkipWithError(rs.status().ToString().c_str());
    if (rs->rows.size() != 1) state.SkipWithError("wrong result");
    benchmark::DoNotOptimize(rs);
  }
  state.SetLabel(optimized ? "cost-based (index probe)"
                           : "naive (extent scan)");
}
BENCHMARK(BM_SelectiveQuery)
    ->ArgsProduct({{1, 0}, {500, 2000}})
    ->ArgNames({"optimizer", "students"});

void BM_MultiPerspectiveJoinOrder(benchmark::State& state) {
  bool optimized = state.range(0) != 0;
  auto db = Build(optimized, 1000);
  // department x person with a selective person predicate: the optimizer
  // reorders (person probe first) and pays the restore sort.
  std::string query =
      "From department, person Retrieve name of department, name of person "
      "Where soc-sec-no of person = 100000007";
  for (auto _ : state) {
    auto rs = db->ExecuteQuery(query);
    if (!rs.ok()) state.SkipWithError(rs.status().ToString().c_str());
    benchmark::DoNotOptimize(rs);
  }
  if (optimized) {
    const sim::AccessPlan& plan = db->last_plan();
    state.counters["strategies"] = plan.strategies_considered;
    state.counters["order_preserving"] = plan.order_preserving ? 1 : 0;
    state.counters["sort_cost_est"] = plan.sort_cost;
  }
  state.SetLabel(optimized ? "cost-based" : "naive");
}
BENCHMARK(BM_MultiPerspectiveJoinOrder)
    ->Arg(1)
    ->Arg(0)
    ->ArgName("optimizer");

void BM_OptimizeOnly(benchmark::State& state) {
  auto db = Build(true, 1000);
  std::string query =
      "From department, person Retrieve name of department, name of person "
      "Where soc-sec-no of person = 100000007";
  // Warm mapper.
  if (!db->ExecuteQuery(query).ok()) abort();
  for (auto _ : state) {
    auto text = db->Explain(query);
    if (!text.ok()) state.SkipWithError(text.status().ToString().c_str());
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_OptimizeOnly);

}  // namespace

BENCHMARK_MAIN();
