// E1 — Figure 1 (architecture): per-module cost breakdown of query
// processing. Measures each stage of the Figure-1 pipeline in isolation —
// Parser, Binder (qualification/binding), Optimizer (strategy
// enumeration), and the full Query Driver execution — for three
// representative DML queries.

#include <benchmark/benchmark.h>

#include "parser/dml_parser.h"
#include "semantics/binder.h"
#include "workload.h"

namespace {

using sim::bench::BuildUniversity;
using sim::bench::WorkloadParams;

const char* kQueries[] = {
    // Q0: simple perspective scan with selection.
    "From Student Retrieve Name Where student-nbr > 2000",
    // Q1: extended attributes + outer join.
    "From Student Retrieve Name, Name of Advisor, "
    "Name of assigned-department of Advisor",
    // Q2: aggregate + quantifier.
    "From Instructor Retrieve Name, count(advisees) of Instructor "
    "Where salary > 40000",
};

std::unique_ptr<sim::Database>& Db() {
  static std::unique_ptr<sim::Database> db = [] {
    WorkloadParams params;
    params.students = 500;
    return BuildUniversity(params);
  }();
  return db;
}

void BM_Parse(benchmark::State& state) {
  const char* query = kQueries[state.range(0)];
  for (auto _ : state) {
    auto stmt = sim::DmlParser::ParseStatement(query);
    if (!stmt.ok()) state.SkipWithError(stmt.status().ToString().c_str());
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_Parse)->Arg(0)->Arg(1)->Arg(2);

void BM_ParseBind(benchmark::State& state) {
  const char* query = kQueries[state.range(0)];
  auto& db = Db();
  for (auto _ : state) {
    auto stmt = sim::DmlParser::ParseStatement(query);
    if (!stmt.ok()) state.SkipWithError(stmt.status().ToString().c_str());
    sim::Binder binder(&db->catalog());
    auto qt = binder.BindRetrieve(
        static_cast<const sim::RetrieveStmt&>(**stmt));
    if (!qt.ok()) state.SkipWithError(qt.status().ToString().c_str());
    benchmark::DoNotOptimize(qt);
  }
}
BENCHMARK(BM_ParseBind)->Arg(0)->Arg(1)->Arg(2);

void BM_ParseBindOptimize(benchmark::State& state) {
  const char* query = kQueries[state.range(0)];
  auto& db = Db();
  auto mapper = db->mapper();
  if (!mapper.ok()) {
    state.SkipWithError("no mapper");
    return;
  }
  for (auto _ : state) {
    auto stmt = sim::DmlParser::ParseStatement(query);
    sim::Binder binder(&db->catalog());
    auto qt = binder.BindRetrieve(
        static_cast<const sim::RetrieveStmt&>(**stmt));
    sim::Optimizer optimizer(*mapper);
    auto plan = optimizer.Optimize(*qt);
    if (!plan.ok()) state.SkipWithError(plan.status().ToString().c_str());
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_ParseBindOptimize)->Arg(0)->Arg(1)->Arg(2);

void BM_FullQuery(benchmark::State& state) {
  const char* query = kQueries[state.range(0)];
  auto& db = Db();
  uint64_t rows = 0;
  for (auto _ : state) {
    auto rs = db->ExecuteQuery(query);
    if (!rs.ok()) state.SkipWithError(rs.status().ToString().c_str());
    rows += rs->rows.size();
    benchmark::DoNotOptimize(rs);
  }
  state.counters["rows_per_iter"] = static_cast<double>(
      rows / std::max<uint64_t>(1, state.iterations()));
}
BENCHMARK(BM_FullQuery)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
