// E7 — §3.3 integrity enforcement overhead. Measures update throughput
// with (a) no VERIFY assertions, (b) an entity-local assertion (the
// efficient trigger-detection subset), and (c) a cross-class assertion
// that forces the conservative full-extent recheck — the split the paper
// itself describes ("a trigger detection / query enhancement mechanism
// that works efficiently for a subset of constraints").

#include <benchmark/benchmark.h>

#include <string>

#include "api/database.h"

namespace {

enum VerifyVariant {
  kNoVerify = 0,
  kLocalVerify = 1,       // condition reads only the entity's own DVAs
  kCrossClassVerify = 2,  // condition reads a related class
};

std::unique_ptr<sim::Database> Build(int variant, int population) {
  auto db_result = sim::Database::Open();
  if (!db_result.ok()) abort();
  auto db = std::move(*db_result);
  sim::Status s = db->ExecuteDdl(R"(
    Class Account (
      acct-no: integer unique required;
      balance: integer;
      overdraft: integer;
      owner: customer inverse is accounts );
    Class Customer (
      cust-no: integer unique required;
      rating: integer );
  )");
  if (!s.ok()) abort();
  if (variant == kLocalVerify) {
    s = db->ExecuteDdl(
        "Verify positive on Account assert balance + overdraft >= 0 "
        "else \"overdrawn\";");
    if (!s.ok()) abort();
  } else if (variant == kCrossClassVerify) {
    s = db->ExecuteDdl(
        "Verify rated on Account assert balance <= 1000 * rating of owner "
        "else \"balance exceeds rating\";");
    if (!s.ok()) abort();
  }
  auto mapper = db->mapper();
  if (!mapper.ok()) abort();
  std::vector<sim::SurrogateId> customers;
  for (int i = 0; i < 20; ++i) {
    auto c = (*mapper)->CreateEntity("customer", nullptr);
    if (!c.ok()) abort();
    (void)(*mapper)->SetField(*c, "customer", "cust-no", sim::Value::Int(i),
                              nullptr);
    (void)(*mapper)->SetField(*c, "customer", "rating", sim::Value::Int(100),
                              nullptr);
    customers.push_back(*c);
  }
  for (int i = 0; i < population; ++i) {
    auto a = (*mapper)->CreateEntity("account", nullptr);
    if (!a.ok()) abort();
    (void)(*mapper)->SetField(*a, "account", "acct-no", sim::Value::Int(i),
                              nullptr);
    (void)(*mapper)->SetField(*a, "account", "balance", sim::Value::Int(100),
                              nullptr);
    (void)(*mapper)->SetField(*a, "account", "overdraft",
                              sim::Value::Int(500), nullptr);
    (void)(*mapper)->AddEvaPair("account", "owner", *a, customers[i % 20],
                                nullptr);
  }
  return db;
}

void BM_ModifyUnderVerify(benchmark::State& state) {
  int variant = static_cast<int>(state.range(0));
  int population = static_cast<int>(state.range(1));
  auto db = Build(variant, population);
  int i = 0;
  for (auto _ : state) {
    int acct = i++ % population;
    auto n = db->ExecuteUpdate(
        "Modify account (balance := balance + 1) Where acct-no = " +
        std::to_string(acct));
    if (!n.ok()) state.SkipWithError(n.status().ToString().c_str());
    benchmark::DoNotOptimize(n);
  }
  switch (variant) {
    case kNoVerify:
      state.SetLabel("no verify");
      break;
    case kLocalVerify:
      state.SetLabel("entity-local verify");
      break;
    case kCrossClassVerify:
      state.SetLabel("cross-class verify (full recheck)");
      break;
  }
}
BENCHMARK(BM_ModifyUnderVerify)
    ->ArgsProduct({{kNoVerify, kLocalVerify, kCrossClassVerify}, {100, 400}})
    ->ArgNames({"verify", "accounts"});

// Violation path: the statement must abort and roll back; measures the
// cost of detection + undo.
void BM_ViolationRollback(benchmark::State& state) {
  auto db = Build(kLocalVerify, 100);
  for (auto _ : state) {
    auto n = db->ExecuteUpdate(
        "Modify account (balance := 0 - 10000) Where acct-no = 1");
    if (n.ok()) {
      state.SkipWithError("violation not detected");
      break;
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetLabel("abort + statement rollback");
}
BENCHMARK(BM_ViolationRollback);

}  // namespace

BENCHMARK_MAIN();
