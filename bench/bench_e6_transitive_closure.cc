// E6 — §4.7 transitive closure. Sweeps prerequisite-chain depth and
// fan-out and measures TRANSITIVE(...) evaluation, including the paper's
// example-5 aggregation (count distinct over the closure).

#include <benchmark/benchmark.h>

#include <string>

#include "api/database.h"

namespace {

// Builds `chains` prerequisite chains of length `depth`, or a tree with
// the given fan-out when fanout > 1.
std::unique_ptr<sim::Database> BuildCourses(int depth, int fanout) {
  auto db_result = sim::Database::Open();
  if (!db_result.ok()) abort();
  auto db = std::move(*db_result);
  sim::Status s = db->ExecuteDdl(R"(
    Class Course (
      course-no: integer unique required;
      title: string[30];
      prerequisites: course inverse is prerequisite-of mv );
  )");
  if (!s.ok()) abort();
  auto mapper = db->mapper();
  if (!mapper.ok()) abort();
  // Node 0 is the root (the course we query). Its prerequisite DAG is a
  // complete `fanout`-ary tree of the given depth.
  std::vector<sim::SurrogateId> current;
  int next_no = 0;
  auto make_course = [&]() {
    auto c = (*mapper)->CreateEntity("course", nullptr);
    if (!c.ok()) abort();
    (void)(*mapper)->SetField(*c, "course", "course-no",
                              sim::Value::Int(next_no), nullptr);
    (void)(*mapper)->SetField(
        *c, "course", "title", sim::Value::Str("C" + std::to_string(next_no)),
        nullptr);
    ++next_no;
    return *c;
  };
  sim::SurrogateId root = make_course();
  current.push_back(root);
  for (int level = 1; level <= depth; ++level) {
    std::vector<sim::SurrogateId> next;
    for (sim::SurrogateId parent : current) {
      for (int f = 0; f < fanout; ++f) {
        sim::SurrogateId child = make_course();
        (void)(*mapper)->AddEvaPair("course", "prerequisites", parent, child,
                                    nullptr);
        next.push_back(child);
      }
    }
    current = std::move(next);
    if (current.size() > 4096) break;  // bound tree growth
  }
  return db;
}

void BM_TransitiveClosure(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  int fanout = static_cast<int>(state.range(1));
  auto db = BuildCourses(depth, fanout);
  uint64_t reached = 0;
  for (auto _ : state) {
    auto rs = db->ExecuteQuery(
        "From Course Retrieve Title of Transitive(prerequisites) "
        "Where course-no = 0");
    if (!rs.ok()) state.SkipWithError(rs.status().ToString().c_str());
    reached = rs->rows.size();
    benchmark::DoNotOptimize(rs);
  }
  state.counters["closure_size"] = static_cast<double>(reached);
}
BENCHMARK(BM_TransitiveClosure)
    ->ArgsProduct({{2, 4, 8, 16, 32}, {1}})
    ->ArgsProduct({{2, 4, 6}, {2}})
    ->ArgsProduct({{2, 3, 4}, {3}})
    ->ArgNames({"depth", "fanout"});

void BM_CountDistinctClosure(benchmark::State& state) {
  // Paper example 5 at scale.
  int depth = static_cast<int>(state.range(0));
  auto db = BuildCourses(depth, 2);
  int64_t count = 0;
  for (auto _ : state) {
    auto rs = db->ExecuteQuery(
        "From Course Retrieve count distinct (transitive(prerequisites)) "
        "Where course-no = 0");
    if (!rs.ok()) state.SkipWithError(rs.status().ToString().c_str());
    count = rs->rows[0].values[0].int_value();
    benchmark::DoNotOptimize(rs);
  }
  state.counters["prerequisites"] = static_cast<double>(count);
}
BENCHMARK(BM_CountDistinctClosure)->Arg(2)->Arg(4)->Arg(6)->ArgName("depth");

}  // namespace

BENCHMARK_MAIN();
