// E9 — §5.2 multi-valued DVA mapping: bounded MV DVAs embed as arrays in
// the owner record ("stored as arrays in the same physical record with
// their owner"); unbounded ones live in a separate dependent storage
// unit. Measures value-list reads and appends under both mappings, plus
// the embed-policy ablation (forcing bounded attributes into the separate
// unit).

#include <benchmark/benchmark.h>

#include <string>

#include "api/database.h"

namespace {

std::unique_ptr<sim::Database> Build(bool embed_policy, int population,
                                     int values_per_entity) {
  sim::DatabaseOptions options;
  options.mapping.embed_bounded_mvdva = embed_policy;
  options.buffer_pool_frames = 64;
  auto db_result = sim::Database::Open(options);
  if (!db_result.ok()) abort();
  auto db = std::move(*db_result);
  sim::Status s = db->ExecuteDdl(R"(
    Class Item (
      item-no: integer unique required;
      tags-bounded: string mv (max 8);
      tags-unbounded: string mv );
  )");
  if (!s.ok()) abort();
  auto mapper = db->mapper();
  if (!mapper.ok()) abort();
  for (int i = 0; i < population; ++i) {
    auto e = (*mapper)->CreateEntity("item", nullptr);
    if (!e.ok()) abort();
    (void)(*mapper)->SetField(*e, "item", "item-no", sim::Value::Int(i),
                              nullptr);
    for (int v = 0; v < values_per_entity; ++v) {
      std::string tag = "tag-" + std::to_string(i) + "-" + std::to_string(v);
      (void)(*mapper)->AddMvValue(*e, "item", "tags-bounded",
                                  sim::Value::Str(tag), nullptr);
      (void)(*mapper)->AddMvValue(*e, "item", "tags-unbounded",
                                  sim::Value::Str(tag), nullptr);
    }
  }
  return db;
}

void BM_ReadMvValues(benchmark::State& state) {
  bool embedded_attr = state.range(0) != 0;  // bounded(embedded) vs unbounded
  bool embed_policy = state.range(1) != 0;
  auto db = Build(embed_policy, 500, 6);
  auto mapper = db->mapper();
  auto extent = (*mapper)->ExtentOf("item");
  if (!extent.ok() || extent->empty()) {
    state.SkipWithError("no items");
    return;
  }
  const char* attr = embedded_attr ? "tags-bounded" : "tags-unbounded";
  sim::BufferPool& pool = db->buffer_pool();
  uint64_t fetches = 0, reads = 0;
  size_t i = 0;
  for (auto _ : state) {
    sim::SurrogateId s = (*extent)[i++ % extent->size()];
    pool.ResetStats();
    auto values = (*mapper)->GetMvValues(s, "item", attr);
    if (!values.ok()) state.SkipWithError(values.status().ToString().c_str());
    benchmark::DoNotOptimize(values);
    fetches += pool.stats().logical_fetches;
    ++reads;
  }
  if (reads > 0) {
    state.counters["fetches_per_read"] =
        static_cast<double>(fetches) / static_cast<double>(reads);
  }
  std::string label = std::string(attr) +
                      (embed_policy ? " / embed-policy-on"
                                    : " / embed-policy-off");
  state.SetLabel(label);
}
BENCHMARK(BM_ReadMvValues)
    ->ArgsProduct({{1, 0}, {1, 0}})
    ->ArgNames({"bounded_attr", "embed_policy"});

void BM_AppendMvValue(benchmark::State& state) {
  bool embedded_attr = state.range(0) != 0;
  auto db = Build(true, 500, 2);
  auto mapper = db->mapper();
  auto extent = (*mapper)->ExtentOf("item");
  const char* attr = embedded_attr ? "tags-bounded" : "tags-unbounded";
  size_t i = 0;
  int counter = 0;
  for (auto _ : state) {
    sim::SurrogateId s = (*extent)[i++ % extent->size()];
    std::string tag = "extra-" + std::to_string(counter++);
    sim::Status st =
        (*mapper)->AddMvValue(s, "item", attr, sim::Value::Str(tag), nullptr);
    if (st.code() == sim::StatusCode::kConstraintViolation) {
      // Bounded attribute reached MAX on this entity; clear one value.
      auto values = (*mapper)->GetMvValues(s, "item", attr);
      if (values.ok() && !values->empty()) {
        (void)(*mapper)->RemoveMvValue(s, "item", attr, values->front(),
                                       nullptr);
      }
      continue;
    }
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetLabel(embedded_attr ? "embedded array" : "separate unit");
}
BENCHMARK(BM_AppendMvValue)->Arg(1)->Arg(0)->ArgName("bounded_attr");

}  // namespace

BENCHMARK_MAIN();
